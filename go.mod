module colibri

go 1.22
