// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each sub-benchmark name encodes the paper's sweep parameters, so
//
//	go test -bench=Fig3 -benchmem
//
// produces the series of the corresponding figure. cmd/colibri-bench runs
// the same experiments with wall-clock measurement and prints them in the
// paper's table shapes; EXPERIMENTS.md records paper-vs-measured values.
package colibri_test

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"testing"
	"time"

	"colibri/internal/admission"
	"colibri/internal/cryptoutil"
	"colibri/internal/cserv"
	"colibri/internal/experiments"
	"colibri/internal/gateway"
	"colibri/internal/netsim"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// reportMpps attaches the paper's headline unit (million packets per second)
// to a benchmark, from the total packet count over the timed section.
func reportMpps(b *testing.B, pkts int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(pkts)/s/1e6, "Mpps")
	}
}

// BenchmarkFig3SegRAdmission: SegR admission processing time vs. the number
// of existing SegRs on the same interface pair and the same-source ratio
// (paper: flat lines well under 1250 µs — constant time).
func BenchmarkFig3SegRAdmission(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 2000, 10_000} {
		for _, ratio := range []float64{0, 0.1, 0.5, 0.9} {
			b.Run(fmt.Sprintf("existing=%d/ratio=%.1f", n, ratio), func(b *testing.B) {
				_, st := workload.TransitAS(2, 100_000_000)
				src := topology.MustIA(1, 500)
				if err := workload.PopulateSegRs(st, n, ratio, src, 1, 2, rng); err != nil {
					b.Fatal(err)
				}
				req := admission.Request{
					ID:  reservation.ID{SrcAS: src, Num: 1 << 24},
					Src: src, In: 1, Eg: 2, MaxKbps: 50,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := st.AdmitSegR(req); err != nil {
						b.Fatal(err)
					}
					st.Release(req.ID)
				}
			})
		}
	}
}

// BenchmarkFig4EERAdmission: EER admission at a transit AS vs. existing EERs
// over the same SegR and SegRs with the same source (paper: flat, >2000
// admissions per second per core).
func BenchmarkFig4EERAdmission(b *testing.B) {
	for _, s := range []int{1, 5000, 10_000} {
		for _, n := range []int{10, 1000, 100_000} {
			b.Run(fmt.Sprintf("eers=%d/s=%d", n, s), func(b *testing.B) {
				store, segID, err := workload.EERPopulation(s, n)
				if err != nil {
					b.Fatal(err)
				}
				id := reservation.ID{SrcAS: topology.MustIA(1, 77), Num: 1 << 24}
				v := reservation.Version{Ver: 1, BwKbps: 1, ExpT: workload.Epoch + 16}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := store.AdmitEERVersion(&reservation.EER{ID: id}, []reservation.ID{segID}, v, workload.Epoch); err != nil {
						b.Fatal(err)
					}
					if err := store.RemoveEERVersion(id, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5Gateway: gateway packet construction vs. path length and
// installed reservations, single worker, random reservation IDs (paper:
// 0.4–2.5 Mpps depending on the point; decreasing in both parameters).
func BenchmarkFig5Gateway(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, hops := range []int{2, 4, 8, 16} {
		for _, r := range []int{1, 1 << 10, 1 << 15, 1 << 17, 1 << 20} {
			b.Run(fmt.Sprintf("hops=%d/r=%d", hops, r), func(b *testing.B) {
				gw, _ := workload.GatewayPopulation(r, hops, rng)
				ids := workload.RandomResIDs(1<<16, r, rng)
				w := gw.NewWorker()
				out := make([]byte, 2048)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				reportMpps(b, int64(b.N))
			})
		}
	}
}

// BenchmarkFig6BorderRouter: stateless border-router validation (the other
// curve of Fig. 6; paper: 2.15 Mpps per core, 34.4 Mpps on 16 cores). The
// parallel variant sweeps workers via -cpu, e.g. -cpu=1,2,4.
func BenchmarkFig6BorderRouter(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	gw, routers := workload.GatewayPopulation(1024, 4, rng)
	w4 := gw.NewWorker()
	pkts := make([][]byte, 4096)
	for i := range pkts {
		buf := make([]byte, 512)
		sz, err := w4.Build(uint32(1+i%1024), nil, buf, workload.EpochNs+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pkt := buf[:sz]
		packet.SetCurrHopInPlace(pkt, 3)
		pkts[i] = pkt
	}
	last := routers[3]
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := last.NewWorker()
		i := 0
		for pb.Next() {
			if _, err := w.Process(pkts[i%len(pkts)], workload.EpochNs); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	reportMpps(b, int64(b.N))
}

// BenchmarkFig6GatewayParallel: gateway throughput with parallel workers
// (sweep via -cpu), 4-hop paths, 2^15 reservations as in the paper's
// "realistic parameters" point.
func BenchmarkFig6GatewayParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	gw, _ := workload.GatewayPopulation(1<<15, 4, rng)
	ids := workload.RandomResIDs(1<<16, 1<<15, rng)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := gw.NewWorker()
		out := make([]byte, 2048)
		i := rng.Intn(1 << 16)
		for pb.Next() {
			if _, err := w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	reportMpps(b, int64(b.N))
}

// BenchmarkFig6GatewayBatch: the batched construction pipeline vs. batch
// size, single worker, 2^10 reservations over 4-hop paths (the σ working
// set fits the schedule cache). batch=1 is the paper-faithful uncached
// single-packet path; larger batches run BuildBatch with the σ-schedule
// cache enabled. One iteration builds one batch; the Mpps metric is
// per-packet and directly comparable across batch sizes.
func BenchmarkFig6GatewayBatch(b *testing.B) {
	const r, hops = 1 << 10, 4
	for _, batch := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			ids := workload.RandomResIDs(1<<16, r, rng)
			if batch == 1 {
				gw, _ := workload.GatewayPopulation(r, hops, rng)
				w := gw.NewWorker()
				out := make([]byte, 2048)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				reportMpps(b, int64(b.N))
				return
			}
			// 4× the σ working set: at 2-way associativity, random tag
			// placement leaves ~8% of tags overflowing a 2×-sized cache
			// but only ~1% at 4× (Poisson tails); overflowing tags take
			// the admission-bypass software path.
			gw, _ := workload.GatewayPopulationWithOptions(r, hops, rng,
				gateway.Options{SchedCacheEntries: 4 * r * hops}, 0)
			w := gw.NewWorker()
			reqs := make([]gateway.BuildReq, batch)
			res := make([]gateway.BuildRes, batch)
			for i := range reqs {
				reqs[i].Out = make([]byte, 2048)
			}
			fill := func(base int) {
				for j := range reqs {
					reqs[j].ResID = ids[(base+j)%len(ids)]
				}
			}
			// Warm the σ-cipher cache over the full working set before
			// timing, so the one-time cipher expansions are not counted.
			for base := 0; base < len(ids); base += batch {
				fill(base)
				w.BuildBatch(reqs, res, workload.EpochNs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fill(i * batch)
				if n := w.BuildBatch(reqs, res, workload.EpochNs+int64(i)); n != batch {
					b.Fatalf("built %d/%d: %v", n, batch, res[0].Err)
				}
			}
			reportMpps(b, int64(b.N)*int64(batch))
		})
	}
}

// BenchmarkFig6BorderRouterBatch: batched stateless validation vs. batch
// size over the same population as BenchmarkFig6BorderRouter. batch=1 is
// the uncached single-packet Process path; larger batches run ProcessBatch
// with the σ-derivation cache enabled.
func BenchmarkFig6BorderRouterBatch(b *testing.B) {
	const r, hops = 1 << 10, 4
	mkPkts := func(gw *gateway.Gateway) [][]byte {
		w := gw.NewWorker()
		pkts := make([][]byte, 4096)
		for i := range pkts {
			buf := make([]byte, 512)
			sz, err := w.Build(uint32(1+i%r), nil, buf, workload.EpochNs+int64(i))
			if err != nil {
				b.Fatal(err)
			}
			pkt := buf[:sz]
			packet.SetCurrHopInPlace(pkt, hops-1)
			pkts[i] = pkt
		}
		return pkts
	}
	for _, batch := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			if batch == 1 {
				gw, routers := workload.GatewayPopulation(r, hops, rng)
				pkts := mkPkts(gw)
				w := routers[hops-1].NewWorker()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Process(pkts[i%len(pkts)], workload.EpochNs); err != nil {
						b.Fatal(err)
					}
				}
				reportMpps(b, int64(b.N))
				return
			}
			// 4× the distinct last-hop σ inputs, for the same conflict-miss
			// reason as the gateway bench above.
			gw, routers := workload.GatewayPopulationWithOptions(r, hops, rng,
				gateway.Options{}, 4*r)
			pkts := mkPkts(gw)
			w := routers[hops-1].NewWorker()
			verdicts := make([]router.BatchVerdict, batch)
			// Warm the σ-derivation cache before timing: each distinct σ
			// input appears once per sweep, so sweep enough times that hot
			// entries reach the hardware-promotion threshold outside the
			// timed loop.
			for s := 0; s < 20; s++ {
				for i := 0; i+batch <= len(pkts); i += batch {
					w.ProcessBatch(pkts[i:i+batch], verdicts, workload.EpochNs)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % (len(pkts) - batch + 1)
				if n := w.ProcessBatch(pkts[off:off+batch], verdicts, workload.EpochNs); n != batch {
					b.Fatalf("passed %d/%d: %v", n, batch, verdicts[0].Err)
				}
			}
			reportMpps(b, int64(b.N)*int64(batch))
		})
	}
}

// reportMppsPerWorker adds the per-worker-normalized rate: aggregate Mpps
// divided by the number of workers that can actually run concurrently
// (min(workers, GOMAXPROCS) — on a 1-CPU host every sweep point serializes
// onto one core, so the normalized series measures fan-out overhead there,
// not scaling).
func reportMppsPerWorker(b *testing.B, pkts int64, workers int) {
	eff := workers
	if p := runtime.GOMAXPROCS(0); eff > p {
		eff = p
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(pkts)/s/1e6/float64(eff), "Mpps/worker")
	}
}

// BenchmarkFig6Parallel: the RSS-sharded data plane — border-router
// validation (router.Sharded.ProcessBatch) and gateway construction
// (gateway.Sharded.BuildBatch) fanned over per-core shards, workers ∈
// {1,2,4,8}. Shards is fixed at 8 so flow placement — and therefore every
// per-flow decision — is identical across the sweep; only the degree of
// parallelism varies. Mpps is the aggregate rate; Mpps/worker is the
// normalized series whose flatness is the scaling claim (meaningful only
// where GOMAXPROCS ≥ workers). Caches are warmed before timing and the
// timed loop must be allocation-free.
func BenchmarkFig6Parallel(b *testing.B) {
	const r, hops, shards, batch = 1 << 10, 4, 8, 256
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("router/workers=%d", workers), func(b *testing.B) {
			rng := rand.New(rand.NewSource(16))
			gw, _, secrets := workload.GatewayPopulationWithSecrets(r, hops, rng)
			w := gw.NewWorker()
			pkts := make([][]byte, 4096)
			for i := range pkts {
				buf := make([]byte, 512)
				sz, err := w.Build(uint32(1+i%r), nil, buf, workload.EpochNs+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				pkt := buf[:sz]
				packet.SetCurrHopInPlace(pkt, hops-1)
				pkts[i] = pkt
			}
			sh := router.NewSharded(router.ShardedConfig{
				Router: router.Config{
					IA:                topology.MustIA(1, hops),
					Secret:            secrets[hops-1],
					SigmaCacheEntries: 4 * r,
				},
				Shards:  shards,
				Workers: workers,
			})
			defer sh.Close()
			verdicts := make([]router.BatchVerdict, batch)
			// Warm every shard's σ-cache past the promotion threshold and
			// grow the scatter/gather scratch outside the timed loop.
			for s := 0; s < 20; s++ {
				for i := 0; i+batch <= len(pkts); i += batch {
					sh.ProcessBatch(pkts[i:i+batch], verdicts, workload.EpochNs)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % (len(pkts) - batch + 1)
				if n := sh.ProcessBatch(pkts[off:off+batch], verdicts, workload.EpochNs); n != batch {
					b.Fatalf("passed %d/%d: %v", n, batch, verdicts[0].Err)
				}
			}
			total := int64(b.N) * int64(batch)
			reportMpps(b, total)
			reportMppsPerWorker(b, total, workers)
		})
		b.Run(fmt.Sprintf("gateway/workers=%d", workers), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			sg := gateway.NewSharded(topology.MustIA(1, 11),
				gateway.Options{SchedCacheEntries: 4 * r * hops / shards}, shards, workers)
			defer sg.Close()
			path := make([]packet.HopField, hops)
			for i := range path {
				path[i] = packet.HopField{In: topology.IfID(2 * i), Eg: topology.IfID(2*i + 1)}
			}
			auths := make([]cryptoutil.Key, hops)
			for i := range auths {
				rng.Read(auths[i][:])
			}
			for id := 1; id <= r; id++ {
				res := packet.ResInfo{
					SrcAS:  topology.MustIA(1, 11),
					ResID:  uint32(id),
					BwKbps: 1 << 30,
					ExpT:   workload.Epoch + reservation.EERLifetimeSeconds,
					Ver:    1,
				}
				if err := sg.Install(res, packet.EERInfo{SrcHost: 1, DstHost: 2}, path, auths); err != nil {
					b.Fatal(err)
				}
			}
			ids := workload.RandomResIDs(1<<16, r, rng)
			reqs := make([]gateway.BuildReq, batch)
			outs := make([]gateway.BuildRes, batch)
			for i := range reqs {
				reqs[i].Out = make([]byte, 2048)
			}
			fill := func(base int) {
				for j := range reqs {
					reqs[j].ResID = ids[(base+j)%len(ids)]
				}
			}
			for base := 0; base < len(ids); base += batch {
				fill(base)
				sg.BuildBatch(reqs, outs, workload.EpochNs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fill(i * batch)
				if n := sg.BuildBatch(reqs, outs, workload.EpochNs+int64(i)); n != batch {
					b.Fatalf("built %d/%d: %v", n, batch, outs[0].Err)
				}
			}
			total := int64(b.N) * int64(batch)
			reportMpps(b, total)
			reportMppsPerWorker(b, total, workers)
		})
	}
}

// BenchmarkTable2DataPlaneProtection runs the full three-phase simulated
// measurement of Table 2 (dominated by the discrete-event simulation, not
// per-op cost; the per-phase Gbps rows are what matters — see
// TestTable2Protection and cmd/colibri-bench).
func BenchmarkTable2DataPlaneProtection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAppendixEPayloadSize: gateway construction for growing payload
// sizes (paper: forwarding rate independent of payload size).
func BenchmarkAppendixEPayloadSize(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	gw, _ := workload.GatewayPopulation(1<<15, 4, rng)
	ids := workload.RandomResIDs(1<<16, 1<<15, rng)
	for _, p := range []int{0, 100, 500, 1000, 1500} {
		b.Run(fmt.Sprintf("payload=%d", p), func(b *testing.B) {
			payload := make([]byte, p)
			w := gw.NewWorker()
			out := make([]byte, 4096)
			// MB/s scales with payload while ns/op stays flat — the
			// appendix's "rate independent of payload size" claim.
			b.SetBytes(int64(packet.DataLen(4, p)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Build(ids[i%len(ids)], payload, out, workload.EpochNs+int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead compares the data-plane hot paths with and
// without telemetry instruments attached: the border router's Process
// (per-packet counters + drop tracer when Config.Telemetry is set) and the
// gateway's Build (per-phase wall-clock histograms after EnableTelemetry).
// The off/on delta is the observability tax recorded in EXPERIMENTS.md.
func BenchmarkTelemetryOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	gwOff, routers, secrets := workload.GatewayPopulationWithSecrets(1024, 4, rng)
	ids := workload.RandomResIDs(1<<16, 1024, rng)

	// Last-hop packets: delivery does not mutate the buffer.
	w4 := gwOff.NewWorker()
	pkts := make([][]byte, 4096)
	for i := range pkts {
		buf := make([]byte, 512)
		sz, err := w4.Build(ids[i%len(ids)], nil, buf, workload.EpochNs+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pkt := buf[:sz]
		packet.SetCurrHopInPlace(pkt, 3)
		pkts[i] = pkt
	}

	routerBench := func(rt *router.Router) func(b *testing.B) {
		return func(b *testing.B) {
			w := rt.NewWorker()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Process(pkts[i%len(pkts)], workload.EpochNs); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("router/off", routerBench(routers[3]))
	b.Run("router/on", routerBench(router.New(router.Config{
		IA:        topology.MustIA(1, 4),
		Secret:    secrets[3],
		Telemetry: telemetry.NewRegistry("bench"),
	})))

	b.Run("gateway/off", func(b *testing.B) {
		w := gwOff.NewWorker()
		out := make([]byte, 2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gateway/on", func(b *testing.B) {
		gwOn, _, _ := workload.GatewayPopulationWithSecrets(1024, 4, rng)
		gwOn.EnableTelemetry(telemetry.NewRegistry("bench"))
		w := gwOn.NewWorker()
		out := make([]byte, 2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCServThroughput: the §6.2 headline claims — a single core
// processes >800 SegReqs/s and >2000 EEReqs/s. The numbers here are the
// admission-and-store path; the full handler (with DRKey verification)
// is benchmarked in internal/cserv.
func BenchmarkCServThroughput(b *testing.B) {
	b.Run("segr", func(b *testing.B) {
		_, st := workload.TransitAS(2, 100_000_000)
		src := topology.MustIA(1, 500)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := admission.Request{
				ID:  reservation.ID{SrcAS: src, Num: uint32(i + 1)},
				Src: src, In: 1, Eg: 2, MaxKbps: 1,
			}
			if _, err := st.AdmitSegR(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eer", func(b *testing.B) {
		store, segID, err := workload.EERPopulation(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		v := reservation.Version{Ver: 1, BwKbps: 1, ExpT: workload.Epoch + 16}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := reservation.ID{SrcAS: topology.MustIA(1, 77), Num: uint32(i + 1)}
			if err := store.AdmitEERVersion(&reservation.EER{ID: id}, []reservation.ID{segID}, v, workload.Epoch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCPlane: renewal throughput of the sharded control-plane engine
// (cserv.CPlane) vs. concurrent-EER population, admission implementation and
// shard count. One iteration is one full renewal wave over the population
// via RenewBatch; the ns/renew and renews/s metrics are per-EER, directly
// comparable across populations. Populations above 10^4 (including the
// million-EER point) run only without -short; the naive O(n) admission is
// skipped at 10^6 where its quadratic SegR-setup phase alone would dominate
// the suite.
func BenchmarkCPlane(b *testing.B) {
	sizes := []int{1_000, 10_000}
	if !testing.Short() {
		sizes = append(sizes, 100_000, 1_000_000)
	}
	impls := []string{admission.ImplNaive, admission.ImplMemoized, admission.ImplRestree}
	for _, n := range sizes {
		for _, impl := range impls {
			if impl == admission.ImplNaive && n > 100_000 {
				continue
			}
			for _, shards := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("eers=%d/impl=%s/shards=%d", n, impl, shards), func(b *testing.B) {
					segrs := n / 10
					var now uint32 = 1_000_000
					src := topology.MustIA(1, 7)
					topo := topology.New()
					topo.AddAS(topology.MustIA(1, 1), true)
					capKbps := uint64(segrs) * 2_000
					if capKbps < 1_000_000 {
						capKbps = 1_000_000
					}
					for i := 1; i <= 4; i++ {
						nbr := topology.MustIA(1, topology.ASID(100+i))
						topo.AddAS(nbr, true)
						topo.MustConnect(topology.MustIA(1, 1), topology.IfID(i), nbr, 1,
							topology.LinkCore, topology.LinkSpec{CapacityKbps: capKbps})
					}
					cp, err := cserv.NewCPlane(cserv.CPlaneConfig{
						AS:            topo.AS(topology.MustIA(1, 1)),
						Split:         admission.DefaultSplit,
						Shards:        shards,
						AdmissionImpl: impl,
						LedgerEpochs:  64,
						Clock:         func() uint32 { return now },
					})
					if err != nil {
						b.Fatal(err)
					}
					segID := func(i int) reservation.ID { return reservation.ID{SrcAS: src, Num: uint32(i)} }
					eerID := func(i int) reservation.ID { return reservation.ID{SrcAS: src, Num: uint32(1<<30 | i)} }
					for i := 0; i < segrs; i++ {
						if _, err := cp.AddSegR(admission.Request{
							ID: segID(i), Src: src,
							In: topology.IfID(1 + i%4), Eg: topology.IfID(1 + (i+1)%4),
							MaxKbps: 1_000,
						}); err != nil {
							b.Fatal(err)
						}
					}
					items := make([]cserv.EERRenewal, n)
					results := make([]cserv.RenewResult, n)
					for i := 0; i < n; i++ {
						if err := cp.SetupEER(eerID(i), segID(i%segrs), 100, now+16); err != nil {
							b.Fatal(err)
						}
						items[i] = cserv.EERRenewal{EER: eerID(i), Seg: segID(i % segrs), BwKbps: 100}
					}
					wave := func() {
						now += 4
						for i := range items {
							items[i].ExpT = now + 16
						}
						cp.RenewBatch(items, results)
					}
					wave() // warm up ledger heaps and map buckets
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						wave()
					}
					b.StopTimer()
					for i := range results {
						if results[i].Err != nil {
							b.Fatalf("renewal %d: %v", i, results[i].Err)
						}
					}
					renewals := int64(b.N) * int64(n)
					if sec := b.Elapsed().Seconds(); sec > 0 {
						b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(renewals), "ns/renew")
						b.ReportMetric(float64(renewals)/sec, "renews/s")
					}
				})
			}
		}
	}
}

// BenchmarkVetSelf measures the colibri-vet invariant gate on this
// repository — the fixed cost every CI run and pre-commit hook pays. It
// shells out exactly as CI does (`go run ./cmd/colibri-vet -json ./...`),
// so the figure includes toolchain start-up and the nomalloc check's
// escape-analysis rebuilds, and it fails if the tree is not clean.
func BenchmarkVetSelf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmd := exec.Command("go", "run", "./cmd/colibri-vet", "-json", "./...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			b.Fatalf("colibri-vet failed: %v\n%s", err, out)
		}
	}
}

// TestVetSelfBudget is the CI smoke for the gate's cost: one BenchmarkVetSelf
// iteration must stay under 2× the EXPERIMENTS.md figure (≈4.1 s wall →
// 8.2 s budget) so the eight-check analyzer can't silently grow past
// pre-commit-hook viability. Gated behind COLIBRI_VET_BUDGET=1 because the
// figure is calibrated to the CI container class; the budget in seconds can
// be overridden through the variable's value for other hardware.
func TestVetSelfBudget(t *testing.T) {
	budgetEnv := os.Getenv("COLIBRI_VET_BUDGET")
	if budgetEnv == "" {
		t.Skip("set COLIBRI_VET_BUDGET=1 (or a budget in seconds) to enforce the gate-cost budget")
	}
	budget := 8.2 * float64(time.Second)
	if secs, err := time.ParseDuration(budgetEnv + "s"); err == nil && secs > time.Second {
		budget = float64(secs)
	}
	// Warm the build cache first: the budget measures the analyzer, not a
	// cold toolchain.
	if out, err := exec.Command("go", "build", "./cmd/colibri-vet").CombinedOutput(); err != nil {
		t.Fatalf("building colibri-vet: %v\n%s", err, out)
	}
	start := time.Now()
	out, err := exec.Command("go", "run", "./cmd/colibri-vet", "-json", "./...").CombinedOutput()
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("colibri-vet failed: %v\n%s", err, out)
	}
	if float64(wall) > budget {
		t.Fatalf("colibri-vet took %.1fs, over the %.1fs budget (2× the EXPERIMENTS.md figure) — profile the new checks or update the figure",
			wall.Seconds(), budget/float64(time.Second))
	}
	t.Logf("colibri-vet self-run: %.1fs (budget %.1fs)", wall.Seconds(), budget/float64(time.Second))
}

// BenchmarkNetsimScale measures discrete-event throughput of the two netsim
// engines on generated 100- and 1000-AS topologies (one shard per AS,
// shortest-path forwarding, two flows per AS). "seq" is the sequential
// reference engine; "par/N" the safe-window parallel engine with N workers.
// Both simulate the identical event sequence — the equivalence suite proves
// the traces bit-identical — so events/s and Mpps compare engines, not
// workloads. One iteration is one full simulated run.
func BenchmarkNetsimScale(b *testing.B) {
	for _, ases := range []int{100, 1000} {
		if ases == 1000 && testing.Short() {
			continue
		}
		for _, workers := range []int{0, 1, 4, 8} {
			mode := "seq"
			if workers > 0 {
				mode = fmt.Sprintf("par/%d", workers)
			}
			b.Run(fmt.Sprintf("as=%d/%s", ases, mode), func(b *testing.B) {
				cfg := experiments.ScaleConfig{ASes: ases, Seed: 1, DurationNs: 20e6}
				var events, pkts uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := netsim.NewSim()
					delivered := experiments.BuildScale(cfg, s)
					if workers == 0 {
						s.Run(0)
					} else {
						s.RunParallel(0, workers)
					}
					events += s.Executed()
					p, _, _ := delivered()
					pkts += p
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(events)/sec/1e6, "Mevents/s")
				}
				reportMpps(b, int64(pkts))
			})
		}
	}
}
