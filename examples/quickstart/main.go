// Quickstart: build a topology, bootstrap segment reservations, request an
// end-to-end reservation between two hosts, and send protected traffic.
package main

import (
	"fmt"
	"log"

	"colibri"
)

func main() {
	// The paper's Fig. 1 topology: source AS 1-11 (two uplinks), cores 1-1
	// and 2-1, destination AS 2-11.
	topo := colibri.TwoISDTopology()
	net, err := colibri.NewNetwork(topo, colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Operators bootstrap segment reservations (up/core/down) from traffic
	// forecasts; AutoSetupSegRs reserves a uniform mesh.
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		log.Fatal(err)
	}

	// Attach end hosts.
	src, err := net.AddHost(colibri.MustIA(1, 11), 0x0a000001)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := net.AddHost(colibri.MustIA(2, 11), 0x14000001)
	if err != nil {
		log.Fatal(err)
	}

	// One call sets up the end-to-end reservation: the local Colibri
	// service picks joinable segment reservations, chains the request
	// through the on-path ASes, and installs the hop authenticators at the
	// gateway.
	sess, err := src.RequestEER(dst, 8*colibri.Mbps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reserved %d kbps over a %d-AS path\n",
		sess.BandwidthKbps(), sess.PathLen())

	// Traffic now flows with a worst-case bandwidth guarantee: the gateway
	// stamps per-hop MACs, each border router validates statelessly.
	for i := 0; i < 5; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte(fmt.Sprintf("hello %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("destination received %d protected packets\n", dst.Received)
	for _, p := range dst.Inbox {
		fmt.Printf("  %q\n", p)
	}
}
