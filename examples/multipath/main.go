// Multipath: path choice in action (§2.1). The source AS is multihomed;
// when one up-segment's reservation is exhausted, new reservations fall
// back to the alternative segment automatically — and an application can
// hold reservations on both paths at once for aggregate bandwidth, as a
// multipath transport would.
package main

import (
	"fmt"
	"log"

	"colibri"
)

func main() {
	topo := colibri.TwoISDTopology() // 1-11 is multihomed via 1-2 and 1-3
	net, err := colibri.NewNetwork(topo, colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Size the up-segments at 100 Mbps each; the shared core and down
	// segments get 400 Mbps, so the up-segments are the bottleneck.
	node := net.Node(colibri.MustIA(1, 11))
	for _, seg := range net.Registry.UpSegments(colibri.MustIA(1, 11)) {
		if _, err := node.CServ.SetupSegment(seg, 0, 100*colibri.Mbps); err != nil {
			log.Fatal(err)
		}
	}
	core := net.Registry.CoreSegments(colibri.MustIA(1, 1), colibri.MustIA(2, 1))[0]
	if _, err := net.Node(colibri.MustIA(1, 1)).CServ.SetupSegment(core, 0, 400*colibri.Mbps); err != nil {
		log.Fatal(err)
	}
	down := net.Registry.DownSegments(colibri.MustIA(2, 11))[0]
	if _, err := net.Node(colibri.MustIA(2, 1)).CServ.SetupSegment(down, 0, 400*colibri.Mbps); err != nil {
		log.Fatal(err)
	}

	src, err := net.AddHost(colibri.MustIA(1, 11), 1)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := net.AddHost(colibri.MustIA(2, 11), 2)
	if err != nil {
		log.Fatal(err)
	}

	// First 90 Mbps reservation: takes (most of) one up-segment.
	sessA, err := src.RequestEER(dst, 90*colibri.Mbps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session A: %d kbps\n", sessA.BandwidthKbps())

	// Second 90 Mbps cannot fit on the same up-segment: the daemon falls
	// back to the alternative path transparently.
	sessB, err := src.RequestEER(dst, 90*colibri.Mbps)
	if err != nil {
		log.Fatalf("no fallback path: %v", err)
	}
	fmt.Printf("session B: %d kbps (alternative up-segment)\n", sessB.BandwidthKbps())

	// A multipath sender stripes across both reservations: 180 Mbps
	// aggregate where a single path could carry at most 100.
	for i := 0; i < 10; i++ {
		net.Clock.Advance(1e6)
		s := sessA
		if i%2 == 1 {
			s = sessB
		}
		if err := s.Send([]byte(fmt.Sprintf("chunk %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("destination received %d striped chunks over two disjoint reserved paths\n", dst.Received)

	// A third reservation of the same size finds no room anywhere.
	if _, err := src.RequestEER(dst, 90*colibri.Mbps); err != nil {
		fmt.Println("third 90 Mbps request correctly refused: both up-segments are full")
	} else {
		log.Fatal("over-admission!")
	}
	fmt.Println("✓ multipath reservations demonstrated")
}
