// Videostream: the paper's motivating workload — a video stream with a
// known bitrate reserves exactly that bandwidth and periodically renews the
// 16-second reservation ahead of expiry, so playback never stalls even
// while a neighbouring flow floods its own reservation.
//
// Demonstrates: rate-matched reservations, seamless renewal (§4.2), and the
// isolation between reservations (a flooding neighbour loses packets, the
// stream does not).
package main

import (
	"fmt"
	"log"

	"colibri"
)

const (
	bitrateKbps = 6_000 // a 1080p stream
	frameBytes  = 25_000
	fps         = 30
	seconds     = 60
)

func main() {
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		log.Fatal(err)
	}
	server, err := net.AddHost(colibri.MustIA(1, 11), 1)
	if err != nil {
		log.Fatal(err)
	}
	viewer, err := net.AddHost(colibri.MustIA(2, 11), 2)
	if err != nil {
		log.Fatal(err)
	}
	noisyNeighbor, err := net.AddHost(colibri.MustIA(1, 11), 3)
	if err != nil {
		log.Fatal(err)
	}

	// The stream reserves its known bitrate — "the host can base the
	// amount of requested bandwidth on the expected traffic, e.g., the
	// known bitrate of a video stream" (§3.3). Monitoring counts the total
	// packet size including the Colibri header (§4.8), so the reservation
	// includes ~2% headroom for header overhead.
	stream, err := server.RequestEER(viewer, bitrateKbps*102/100)
	if err != nil {
		log.Fatal(err)
	}
	// The neighbour reserves a little but floods a lot.
	noisy, err := noisyNeighbor.RequestEER(viewer, 1_000)
	if err != nil {
		log.Fatal(err)
	}

	frame := make([]byte, frameBytes)
	flood := make([]byte, 1500)
	var streamSent, streamLost, noisyLost int
	frameInterval := int64(1e9) / fps

	for sec := 0; sec < seconds; sec++ {
		// Renew 4 s before expiry: a new version is created while the old
		// one stays valid — no interruption (§4.2).
		if sec > 0 && sec%12 == 0 {
			if err := stream.Renew(bitrateKbps); err != nil {
				log.Fatalf("renewal at t=%ds: %v", sec, err)
			}
		}
		for f := 0; f < fps; f++ {
			net.Clock.Advance(frameInterval)
			streamSent++
			if err := stream.Send(frame); err != nil {
				streamLost++
			}
			// The neighbour floods 10 packets per frame tick (~36 Mbps on
			// a 1 Mbps reservation): its own gateway polices it.
			for k := 0; k < 10; k++ {
				if err := noisy.Send(flood); err != nil {
					noisyLost++
				}
			}
		}
		net.Tick()
	}

	fmt.Printf("stream:   %d frames sent, %d lost (%.2f%%)\n",
		streamSent, streamLost, 100*float64(streamLost)/float64(streamSent))
	fmt.Printf("neighbor: %d flood packets dropped by its own gateway\n", noisyLost)
	fmt.Printf("viewer:   received %d packets in total\n", viewer.Received)
	if streamLost > 0 {
		log.Fatal("the guaranteed stream lost packets!")
	}
	fmt.Println("✓ 60 s of video at guaranteed bitrate, zero loss, across 4 renewals")
}
