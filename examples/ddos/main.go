// DDoS: the §5 attack catalogue against a live deployment — unauthentic
// Colibri packets, replayed authentic packets, and a source AS that ignores
// its monitoring duty — and the defense each one runs into.
package main

import (
	"fmt"
	"log"
	"strings"

	"colibri"
)

func main() {
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{
		EnableReplaySuppression: true,
		EnableOFD:               true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1 * colibri.Gbps); err != nil {
		log.Fatal(err)
	}
	victim, err := net.AddHost(colibri.MustIA(1, 11), 1)
	if err != nil {
		log.Fatal(err)
	}
	target, err := net.AddHost(colibri.MustIA(2, 11), 2)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := victim.RequestEER(target, 800) // 800 kbps
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("✓ victim holds an 800 kbps reservation to the target")
	grant := sess.Grant()
	src := colibri.MustIA(1, 11)

	// --- Attack 1: unauthentic Colibri traffic (bogus HVFs) -------------
	fmt.Println("\n● attack 1: 1000 packets claiming the victim's reservation, forged HVFs")
	forged := 0
	for i := 0; i < 1000; i++ {
		net.Clock.Advance(1e5)
		buf := grant.Stamp(make([]byte, 100), net.Clock.NowNs(), true)
		if err := net.InjectPacket(buf, src); err != nil {
			forged++
		}
	}
	fmt.Printf("  %d/1000 dropped at the first border router (cryptographic check)\n", forged)

	// --- Attack 2: replay of captured authentic packets ------------------
	fmt.Println("\n● attack 2: an on-path adversary replays one captured packet 1000×")
	buf := grant.Stamp([]byte("authentic"), net.Clock.NowNs(), false)
	if err := net.InjectPacket(append([]byte(nil), buf...), src); err != nil {
		log.Fatal(err)
	}
	replays := 0
	for i := 0; i < 1000; i++ {
		net.Clock.Advance(1e4)
		cp := append([]byte(nil), buf...)
		if err := net.InjectPacket(cp, src); err != nil &&
			strings.Contains(err.Error(), "duplicate") {
			replays++
		}
	}
	fmt.Printf("  original delivered once; %d/1000 replays suppressed in-network\n", replays)

	// --- Attack 3: overuse by a negligent source AS ----------------------
	fmt.Println("\n● attack 3: the source AS stops policing and floods at ~100×")
	var overuse, blocked int
	payload := make([]byte, 1000)
	for i := 0; i < 200_000 && blocked == 0; i++ {
		net.Clock.Advance(1e5)
		raw := grant.Stamp(payload, net.Clock.NowNs(), false)
		err := net.InjectPacket(raw, src)
		switch {
		case err == nil:
		case strings.Contains(err.Error(), "overuse"):
			overuse++
		case strings.Contains(err.Error(), "blocklist"):
			blocked++
		}
	}
	fmt.Printf("  OFD flagged the flow; deterministic monitor confirmed %d overuses;\n", overuse)
	if blocked > 0 {
		fmt.Println("  the source AS is now blocklisted — even legitimate packets drop:")
		if err := sess.Send([]byte("legit")); err != nil {
			fmt.Printf("    %v\n", err)
		}
	} else {
		log.Fatal("blocklisting never happened")
	}
	fmt.Println("\n✓ all three §5 attack classes defeated")
}
