// Operator: the AS-operator view of Colibri (§3.2) — bootstrap segment
// reservations from a traffic forecast, let the renewal automation keep
// them alive with demand-adjusted bandwidth, request reachability via a
// down-segment, and read the service metrics.
package main

import (
	"fmt"
	"log"

	"colibri"
	"colibri/internal/cserv"
	"colibri/internal/reservation"
)

func main() {
	net, err := colibri.NewNetwork(colibri.TwoISDTopology(), colibri.Options{})
	if err != nil {
		log.Fatal(err)
	}

	srcSvc := net.Node(colibri.MustIA(1, 11)).CServ
	coreSvc := net.Node(colibri.MustIA(1, 1)).CServ
	dstSvc := net.Node(colibri.MustIA(2, 11)).CServ

	// 1. The source AS reserves its up-segments from a forecast.
	fmt.Println("◆ source AS reserves up-segments (forecast: 500 Mbps each)")
	for _, seg := range net.Registry.UpSegments(colibri.MustIA(1, 11)) {
		segr, err := srcSvc.SetupSegment(seg, 100*colibri.Mbps, 500*colibri.Mbps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s granted %d kbps\n", segr.ID, segr.Active.BwKbps)
	}
	// 2. Core segment between the ISDs.
	coreSeg := net.Registry.CoreSegments(colibri.MustIA(1, 1), colibri.MustIA(2, 1))[0]
	if _, err := coreSvc.SetupSegment(coreSeg, 0, 1*colibri.Gbps); err != nil {
		log.Fatal(err)
	}
	// 3. The destination AS wants to be reachable: it requests a
	//    down-segment reservation from its core (§3.3 — down-SegRs are set
	//    up by the first AS upon explicit request by the last).
	fmt.Println("◆ destination AS requests a down-SegR from its core")
	downSeg := net.Registry.DownSegments(colibri.MustIA(2, 11))[0]
	if err := dstSvc.RequestDownSegment(downSeg, 0, 1*colibri.Gbps); err != nil {
		log.Fatal(err)
	}

	// Hosts use the reserved mesh.
	src, _ := net.AddHost(colibri.MustIA(1, 11), 1)
	dst, _ := net.AddHost(colibri.MustIA(2, 11), 2)
	sess, err := src.RequestEER(dst, 20*colibri.Mbps)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Send([]byte("hello")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("◆ EER of %d kbps in service over the operator's mesh\n", sess.BandwidthKbps())

	// 4. Time passes; the automation renews expiring SegRs with a forecast
	//    that scales demand up 20 % ("shifting traffic demands", §4.2).
	fmt.Println("◆ 280 s later: auto-renewal with a +20% demand forecast")
	net.Clock.Advance(280e9)
	grow := func(_ reservation.ID, cur uint64) (uint64, uint64) { return 0, cur * 120 / 100 }
	for _, iaKey := range net.Topo.SortedIAs() {
		n, err := net.Node(iaKey).CServ.AutoRenew(60, grow)
		if err != nil {
			log.Fatalf("auto-renew at %s: %v", iaKey, err)
		}
		if n > 0 {
			fmt.Printf("  %s renewed+activated %d SegRs\n", iaKey, n)
		}
	}

	// 5. The metrics tell the operator what the service did.
	fmt.Println("◆ control-plane metrics:")
	for _, svc := range []*cserv.Service{srcSvc, coreSvc, dstSvc} {
		fmt.Printf("  %s: %s\n", svc.IA(), svc.Metrics().Snapshot())
	}
	fmt.Println("✓ operator workflow complete")
}
