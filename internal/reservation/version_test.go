package reservation

import (
	"math/rand"
	"testing"
)

// TestAddVersionOrderedInsert is the regression test for the ordered-insert
// AddVersion: versions arriving in any order must end up ascending by Ver
// without a per-call re-sort, duplicates must be rejected, and the
// MaxEERVersions bound must evict the oldest versions first.
func TestAddVersionOrderedInsert(t *testing.T) {
	t.Run("out-of-order arrivals", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 200; trial++ {
			e := &EER{}
			perm := rng.Perm(MaxEERVersions)
			for _, p := range perm {
				v := Version{Ver: uint16(p + 1), BwKbps: uint64(100 * (p + 1)), ExpT: 1000}
				if err := e.AddVersion(v); err != nil {
					t.Fatalf("trial %d: AddVersion(%d): %v", trial, v.Ver, err)
				}
			}
			for i := 1; i < len(e.Versions); i++ {
				if e.Versions[i-1].Ver >= e.Versions[i].Ver {
					t.Fatalf("trial %d perm %v: versions not ascending: %v", trial, perm, e.Versions)
				}
			}
			if len(e.Versions) != MaxEERVersions {
				t.Fatalf("trial %d: len = %d, want %d", trial, len(e.Versions), MaxEERVersions)
			}
		}
	})

	t.Run("duplicate rejected", func(t *testing.T) {
		e := &EER{}
		if err := e.AddVersion(Version{Ver: 3, BwKbps: 100}); err != nil {
			t.Fatal(err)
		}
		if err := e.AddVersion(Version{Ver: 3, BwKbps: 200}); err == nil {
			t.Fatal("duplicate Ver accepted")
		}
		if len(e.Versions) != 1 || e.Versions[0].BwKbps != 100 {
			t.Fatalf("duplicate mutated versions: %v", e.Versions)
		}
	})

	t.Run("oldest evicted", func(t *testing.T) {
		e := &EER{}
		for v := uint16(1); v <= MaxEERVersions+2; v++ {
			if err := e.AddVersion(Version{Ver: v, BwKbps: uint64(v)}); err != nil {
				t.Fatal(err)
			}
		}
		if len(e.Versions) != MaxEERVersions {
			t.Fatalf("len = %d, want %d", len(e.Versions), MaxEERVersions)
		}
		if e.Versions[0].Ver != 3 || e.Versions[len(e.Versions)-1].Ver != MaxEERVersions+2 {
			t.Fatalf("eviction kept wrong window: %v", e.Versions)
		}
	})

	t.Run("out-of-order insert below full window", func(t *testing.T) {
		e := &EER{}
		for _, v := range []uint16{10, 30, 40, 20} {
			if err := e.AddVersion(Version{Ver: v}); err != nil {
				t.Fatal(err)
			}
		}
		want := []uint16{10, 20, 30, 40}
		for i, w := range want {
			if e.Versions[i].Ver != w {
				t.Fatalf("versions = %v, want Vers %v", e.Versions, want)
			}
		}
	})
}

// BenchmarkAddVersionChurn measures the renewal-churn shape the ordered
// insert optimizes: monotonically increasing versions at the window bound.
func BenchmarkAddVersionChurn(b *testing.B) {
	e := &EER{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.AddVersion(Version{Ver: uint16(i), BwKbps: 100, ExpT: uint32(i + 16)}); err != nil {
			b.Fatal(err)
		}
	}
}
