// Package reservation models Colibri reservations and the per-AS
// reservation store: segment reservations (SegRs) with a single active and
// at most one pending version (§4.2), and end-to-end reservations (EERs)
// with multiple concurrently valid versions, all mapped to one reservation
// ID for monitoring.
//
// The store keeps each AS's local view: on-path ASes store their interface
// pair and granted bandwidth; the initiator AS additionally stores the full
// segment and the returned tokens/hop authenticators.
package reservation

import (
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

// ID identifies a reservation globally: the CServ of the source AS assigns
// locally unique numbers, so (SrcAS, Num) is globally unique (§4.3).
type ID struct {
	SrcAS topology.IA
	Num   uint32
}

func (id ID) String() string { return fmt.Sprintf("%s#%d", id.SrcAS, id.Num) }

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id.SrcAS.IsZero() && id.Num == 0 }

// Less orders IDs by (SrcAS, Num), the canonical order for deterministic
// iteration over reservation maps.
func (id ID) Less(o ID) bool {
	if id.SrcAS != o.SrcAS {
		return id.SrcAS < o.SrcAS
	}
	return id.Num < o.Num
}

// DerivedBits is the tag width of Derived: policies that mint per-generation
// or per-time-slice sub-IDs (internal/policy's flyover and Hummingbird
// modes) keep flow Nums below 1<<(32-DerivedBits) so the shift cannot
// collide two flows.
const DerivedBits = 12

// Derived returns the sub-ID of id for a tag (a flyover generation or a
// Hummingbird slice index): Num' = Num<<DerivedBits | tag mod 2^DerivedBits.
// Tags wrap at 2^DerivedBits; callers reuse a tag only after the prior
// holder's record has expired (generations and slices are short-lived, so a
// wrap is thousands of lifetimes away from its predecessor).
func (id ID) Derived(tag uint32) ID {
	return ID{SrcAS: id.SrcAS, Num: id.Num<<DerivedBits | tag&(1<<DerivedBits-1)}
}

// Lifetimes from §3.3: SegRs live ~5 minutes, EERs 16 seconds.
const (
	SegRLifetimeSeconds = 300
	EERLifetimeSeconds  = 16
	// MaxEERVersions bounds concurrently valid versions of one EER.
	MaxEERVersions = 4
)

// Version is one (version, bandwidth, expiry) incarnation of a reservation.
type Version struct {
	Ver    uint16
	BwKbps uint64
	ExpT   uint32
}

// Expired reports whether the version is expired at time now.
func (v Version) Expired(now uint32) bool { return now >= v.ExpT }

// SegR is one AS's record of a segment reservation.
type SegR struct {
	ID      ID
	SegType segment.Type
	// In, Eg are this AS's interfaces for the reservation (0 at ends).
	In, Eg topology.IfID
	// MinKbps is the smallest bandwidth the initiator accepts; renewals may
	// renegotiate within [MinKbps, requested].
	MinKbps uint64
	// Active is the currently usable version.
	Active Version
	// Pending is a renewed version awaiting explicit activation, if any.
	Pending *Version

	// AllocatedEERKbps is the total EER bandwidth admitted over this SegR at
	// this AS (the Σ checked by transit-AS admission, §4.7).
	AllocatedEERKbps uint64

	// Initiator-only state:
	// Seg is the full segment (nil at transit ASes).
	Seg *segment.Segment
	// Tokens are the per-hop SegR tokens of Eq. (3), initiator-only.
	Tokens [][packet.HVFLen]byte
}

// AvailableEERKbps returns how much EER bandwidth is still free under the
// active version.
func (s *SegR) AvailableEERKbps() uint64 {
	if s.Active.BwKbps <= s.AllocatedEERKbps {
		return 0
	}
	return s.Active.BwKbps - s.AllocatedEERKbps
}

// EER is one AS's record of an end-to-end reservation.
type EER struct {
	ID ID
	// SegIDs are the underlying segment reservations, in path order (1–3).
	SegIDs []ID
	// In, Eg are this AS's interfaces on the EER path.
	In, Eg  topology.IfID
	SrcHost uint32
	DstHost uint32
	// Versions are the concurrently valid versions, ascending by Ver.
	Versions []Version

	// Initiator-only state:
	// Path is the full end-to-end path (source AS / gateway only).
	Path []packet.HopField
	// HopAuths are the per-hop authenticators σ_i of Eq. (4), source-AS only.
	HopAuths []cryptoutil.Key
}

// MaxBwKbps returns the largest bandwidth among non-expired versions; this
// is the rate the monitors enforce ("a sender using multiple versions of the
// same EER can obtain at most the maximum bandwidth of all valid versions",
// §4.8).
func (e *EER) MaxBwKbps(now uint32) uint64 {
	var m uint64
	for _, v := range e.Versions {
		if !v.Expired(now) && v.BwKbps > m {
			m = v.BwKbps
		}
	}
	return m
}

// LatestVersion returns the non-expired version with the highest Ver, or nil
// ("the gateway generally uses a single version (the latest one)").
func (e *EER) LatestVersion(now uint32) *Version {
	for i := len(e.Versions) - 1; i >= 0; i-- {
		if !e.Versions[i].Expired(now) {
			return &e.Versions[i]
		}
	}
	return nil
}

// AddVersion inserts a new version keeping ascending order and the
// MaxEERVersions bound (oldest evicted first). Duplicate version numbers are
// rejected.
//
// The slice is kept ordered on insert — a backward scan plus shift, like the
// ID.Less ordering discipline of the store — rather than re-sorted per call:
// under renewal churn every EER gets a new version each lifetime, and the
// common case (monotonically increasing Ver) is a single append with zero
// element moves.
func (e *EER) AddVersion(v Version) error {
	// Find the insertion point from the back; renewals almost always carry
	// the highest Ver yet, so this loop usually exits immediately.
	i := len(e.Versions)
	for i > 0 && e.Versions[i-1].Ver > v.Ver {
		i--
	}
	if i > 0 && e.Versions[i-1].Ver == v.Ver {
		return fmt.Errorf("reservation: EER %s already has version %d", e.ID, v.Ver)
	}
	e.Versions = append(e.Versions, Version{})
	copy(e.Versions[i+1:], e.Versions[i:])
	e.Versions[i] = v
	if len(e.Versions) > MaxEERVersions {
		copy(e.Versions, e.Versions[len(e.Versions)-MaxEERVersions:])
		e.Versions = e.Versions[:MaxEERVersions]
	}
	return nil
}

// DropExpired removes expired versions and reports whether any remain.
func (e *EER) DropExpired(now uint32) bool {
	kept := e.Versions[:0]
	for _, v := range e.Versions {
		if !v.Expired(now) {
			kept = append(kept, v)
		}
	}
	e.Versions = kept
	return len(kept) > 0
}
