package reservation

import (
	"errors"
	"testing"

	"colibri/internal/segment"
)

func TestAdjustEERVersionDown(t *testing.T) {
	s := NewStore(ia(1, 1))
	if s.Local() != ia(1, 1) {
		t.Fatal("Local() wrong")
	}
	sid := s.NextID()
	if err := s.AddSegR(newSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	if err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 1, BwKbps: 800, ExpT: now + 16}, now); err != nil {
		t.Fatal(err)
	}
	// Backward pass reduced the grant to 500: the SegR charge follows.
	if err := s.AdjustEERVersion(eid, 1, 500); err != nil {
		t.Fatal(err)
	}
	r, _ := s.GetSegR(sid)
	if r.AllocatedEERKbps != 500 {
		t.Errorf("allocated = %d", r.AllocatedEERKbps)
	}
	e, _ := s.GetEER(eid)
	if e.Versions[0].BwKbps != 500 {
		t.Errorf("version bw = %d", e.Versions[0].BwKbps)
	}
	// Adjusting back up re-charges (used when a later version raises max).
	if err := s.AdjustEERVersion(eid, 1, 700); err != nil {
		t.Fatal(err)
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 700 {
		t.Errorf("allocated after raise = %d", r.AllocatedEERKbps)
	}
}

func TestAdjustEERVersionErrors(t *testing.T) {
	s := NewStore(ia(1, 1))
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	if err := s.AdjustEERVersion(eid, 1, 100); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing EER: %v", err)
	}
	sid := s.NextID()
	_ = s.AddSegR(newSegR(sid, 1000))
	_ = s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 1, BwKbps: 100, ExpT: now + 16}, now)
	if err := s.AdjustEERVersion(eid, 9, 100); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
}

func TestRemoveEERVersion(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid := s.NextID()
	_ = s.AddSegR(newSegR(sid, 1000))
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	admit := func(ver uint16, bw uint64) {
		t.Helper()
		if err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
			Version{Ver: ver, BwKbps: bw, ExpT: now + 16}, now); err != nil {
			t.Fatal(err)
		}
	}
	admit(1, 300)
	admit(2, 600)
	r, _ := s.GetSegR(sid)
	if r.AllocatedEERKbps != 600 {
		t.Fatalf("allocated = %d", r.AllocatedEERKbps)
	}
	// Removing the max version drops the charge to the remaining max.
	if err := s.RemoveEERVersion(eid, 2); err != nil {
		t.Fatal(err)
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 300 {
		t.Errorf("allocated after remove = %d", r.AllocatedEERKbps)
	}
	// Removing an unknown version errors; removing the last one deletes the
	// EER and zeroes the charge.
	if err := s.RemoveEERVersion(eid, 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
	if err := s.RemoveEERVersion(eid, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetEER(eid); !errors.Is(err, ErrNotFound) {
		t.Error("EER survived its last version")
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 0 {
		t.Errorf("allocated after last removal = %d", r.AllocatedEERKbps)
	}
	if err := s.RemoveEERVersion(eid, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing EER: %v", err)
	}
}

func TestInitiatedSegRs(t *testing.T) {
	s := NewStore(ia(1, 1))
	a := s.NextID()
	local := newSegR(a, 100)
	local.Seg = &segment.Segment{Type: segment.Up, Hops: []segment.Hop{{IA: ia(1, 1)}}}
	_ = s.AddSegR(local)
	b := s.NextID()
	_ = s.AddSegR(newSegR(b, 100)) // transit view: no segment attached
	got := s.InitiatedSegRs()
	if len(got) != 1 || got[0].ID != a {
		t.Errorf("InitiatedSegRs = %v", got)
	}
}
