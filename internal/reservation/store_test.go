package reservation

import (
	"errors"
	"testing"
	"testing/quick"

	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

const now = uint32(1_700_000_000)

func newSegR(id ID, bw uint64) *SegR {
	return &SegR{
		ID:     id,
		In:     1,
		Eg:     2,
		Active: Version{Ver: 1, BwKbps: bw, ExpT: now + SegRLifetimeSeconds},
	}
}

func TestNextIDUnique(t *testing.T) {
	s := NewStore(ia(1, 1))
	seen := make(map[ID]bool)
	for i := 0; i < 100; i++ {
		id := s.NextID()
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		if id.SrcAS != ia(1, 1) {
			t.Fatalf("ID has wrong source AS %s", id.SrcAS)
		}
		seen[id] = true
	}
}

func TestSegRLifecycle(t *testing.T) {
	s := NewStore(ia(1, 1))
	id := s.NextID()
	r := newSegR(id, 1000)
	if err := s.AddSegR(r); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSegR(r); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate add: %v", err)
	}
	got, err := s.GetSegR(id)
	if err != nil || got.Active.BwKbps != 1000 {
		t.Fatalf("GetSegR: %v, %+v", err, got)
	}
	if err := s.ConfirmSegR(id, 800); err != nil {
		t.Fatal(err)
	}
	got, _ = s.GetSegR(id)
	if got.Active.BwKbps != 800 {
		t.Errorf("confirmed bw = %d", got.Active.BwKbps)
	}
	s.DeleteSegR(id)
	if _, err := s.GetSegR(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete: %v", err)
	}
	if err := s.ConfirmSegR(id, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("confirm missing: %v", err)
	}
}

func TestPendingActivation(t *testing.T) {
	s := NewStore(ia(1, 1))
	id := s.NextID()
	if err := s.AddSegR(newSegR(id, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivatePending(id); !errors.Is(err, ErrNoPending) {
		t.Errorf("activate without pending: %v", err)
	}
	if err := s.SetPending(id, Version{Ver: 2, BwKbps: 2000, ExpT: now + 600}); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivatePending(id); err != nil {
		t.Fatal(err)
	}
	r, _ := s.GetSegR(id)
	if r.Active.Ver != 2 || r.Active.BwKbps != 2000 || r.Pending != nil {
		t.Errorf("after activation: %+v", r)
	}
}

func TestActivationOverAllocationGuard(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid := s.NextID()
	if err := s.AddSegR(newSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 1, BwKbps: 700, ExpT: now + EERLifetimeSeconds}, now)
	if err != nil {
		t.Fatal(err)
	}
	// Pending smaller than the 700 kbps already allocated must be refused.
	if err := s.SetPending(sid, Version{Ver: 2, BwKbps: 500, ExpT: now + 600}); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivatePending(sid); !errors.Is(err, ErrOverAllocation) {
		t.Errorf("want ErrOverAllocation, got %v", err)
	}
	// A large-enough pending activates fine.
	if err := s.SetPending(sid, Version{Ver: 3, BwKbps: 700, ExpT: now + 600}); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivatePending(sid); err != nil {
		t.Error(err)
	}
}

func TestAdmitEERChecksCapacity(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid := s.NextID()
	if err := s.AddSegR(newSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	mk := func(num uint32, bw uint64, ver uint16) error {
		return s.AdmitEERVersion(&EER{ID: ID{SrcAS: ia(1, 9), Num: num}}, []ID{sid},
			Version{Ver: ver, BwKbps: bw, ExpT: now + EERLifetimeSeconds}, now)
	}
	if err := mk(1, 600, 1); err != nil {
		t.Fatal(err)
	}
	if err := mk(2, 600, 1); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-capacity admit: %v", err)
	}
	if err := mk(2, 400, 1); err != nil {
		t.Errorf("exact-fit admit: %v", err)
	}
	r, _ := s.GetSegR(sid)
	if r.AllocatedEERKbps != 1000 || r.AvailableEERKbps() != 0 {
		t.Errorf("allocated=%d available=%d", r.AllocatedEERKbps, r.AvailableEERKbps())
	}
}

func TestAdmitEERVersionsShareBudget(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid := s.NextID()
	if err := s.AddSegR(newSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	admit := func(ver uint16, bw uint64) error {
		return s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
			Version{Ver: ver, BwKbps: bw, ExpT: now + EERLifetimeSeconds}, now)
	}
	if err := admit(1, 600); err != nil {
		t.Fatal(err)
	}
	// A second version of the same EER at equal bw must not double-charge.
	if err := admit(2, 600); err != nil {
		t.Fatal(err)
	}
	r, _ := s.GetSegR(sid)
	if r.AllocatedEERKbps != 600 {
		t.Errorf("allocated = %d, want 600 (versions share budget)", r.AllocatedEERKbps)
	}
	// A higher-bw version charges only the delta.
	if err := admit(3, 900); err != nil {
		t.Fatal(err)
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 900 {
		t.Errorf("allocated = %d, want 900", r.AllocatedEERKbps)
	}
	// Duplicate version number is rejected and does not change accounting.
	if err := admit(3, 950); err == nil {
		t.Error("duplicate version accepted")
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 900 {
		t.Errorf("allocated after failed admit = %d, want 900", r.AllocatedEERKbps)
	}
	e, err := s.GetEER(eid)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MaxBwKbps(now); got != 900 {
		t.Errorf("MaxBwKbps = %d", got)
	}
	if v := e.LatestVersion(now); v == nil || v.Ver != 3 {
		t.Errorf("LatestVersion = %+v", v)
	}
}

func TestCleanupReleasesBandwidth(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid := s.NextID()
	if err := s.AddSegR(newSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	// Version 1 expires soon; version 2 lives longer at lower bw.
	if err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 1, BwKbps: 800, ExpT: now + 5}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 2, BwKbps: 300, ExpT: now + 16}, now); err != nil {
		t.Fatal(err)
	}
	r, _ := s.GetSegR(sid)
	if r.AllocatedEERKbps != 800 {
		t.Fatalf("allocated = %d, want 800", r.AllocatedEERKbps)
	}
	// After v1 expires, only 300 remains charged.
	s.Cleanup(now + 6)
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 300 {
		t.Errorf("allocated after cleanup = %d, want 300", r.AllocatedEERKbps)
	}
	// After all versions expire, the EER disappears entirely.
	s.Cleanup(now + 20)
	if _, err := s.GetEER(eid); !errors.Is(err, ErrNotFound) {
		t.Errorf("EER not removed: %v", err)
	}
	r, _ = s.GetSegR(sid)
	if r.AllocatedEERKbps != 0 {
		t.Errorf("allocated after full expiry = %d", r.AllocatedEERKbps)
	}
}

func TestCleanupSegRs(t *testing.T) {
	s := NewStore(ia(1, 1))
	// Expired active, no pending → removed.
	id1 := s.NextID()
	r1 := newSegR(id1, 100)
	r1.Active.ExpT = now - 1
	_ = s.AddSegR(r1)
	// Expired active with live pending → failover to pending.
	id2 := s.NextID()
	r2 := newSegR(id2, 100)
	r2.Active.ExpT = now - 1
	r2.Pending = &Version{Ver: 2, BwKbps: 150, ExpT: now + 100}
	_ = s.AddSegR(r2)
	// Live active → kept.
	id3 := s.NextID()
	_ = s.AddSegR(newSegR(id3, 100))

	removed := s.Cleanup(now)
	if len(removed) != 1 || removed[0] != id1 {
		t.Errorf("removed = %v, want [%s]", removed, id1)
	}
	got, err := s.GetSegR(id2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Active.Ver != 2 || got.Pending != nil {
		t.Errorf("failover to pending did not happen: %+v", got)
	}
	if _, err := s.GetSegR(id3); err != nil {
		t.Error("live SegR removed")
	}
	segs, eers := s.Counts()
	if segs != 2 || eers != 0 {
		t.Errorf("Counts = %d, %d", segs, eers)
	}
}

func TestEERVersionBoundsQuick(t *testing.T) {
	f := func(vers []uint16) bool {
		e := &EER{ID: ID{SrcAS: ia(1, 1), Num: 1}}
		for i, v := range vers {
			_ = e.AddVersion(Version{Ver: v, BwKbps: uint64(i), ExpT: now + 16})
		}
		if len(e.Versions) > MaxEERVersions {
			return false
		}
		for i := 1; i < len(e.Versions); i++ {
			if e.Versions[i-1].Ver >= e.Versions[i].Ver {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdmitEERMissingOrExpiredSegR(t *testing.T) {
	s := NewStore(ia(1, 1))
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	err := s.AdmitEERVersion(&EER{ID: eid}, []ID{{SrcAS: ia(1, 1), Num: 99}},
		Version{Ver: 1, BwKbps: 10, ExpT: now + 16}, now)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("missing SegR: %v", err)
	}
	sid := s.NextID()
	r := newSegR(sid, 100)
	r.Active.ExpT = now - 1
	_ = s.AddSegR(r)
	err = s.AdmitEERVersion(&EER{ID: eid}, []ID{sid},
		Version{Ver: 1, BwKbps: 10, ExpT: now + 16}, now)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("expired SegR: %v", err)
	}
}

func TestTransferASChargesBothSegRs(t *testing.T) {
	s := NewStore(ia(1, 1))
	sid1, sid2 := s.NextID(), s.NextID()
	_ = s.AddSegR(newSegR(sid1, 1000))
	_ = s.AddSegR(newSegR(sid2, 500))
	eid := ID{SrcAS: ia(1, 9), Num: 1}
	err := s.AdmitEERVersion(&EER{ID: eid}, []ID{sid1, sid2},
		Version{Ver: 1, BwKbps: 400, ExpT: now + 16}, now)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s.GetSegR(sid1)
	r2, _ := s.GetSegR(sid2)
	if r1.AllocatedEERKbps != 400 || r2.AllocatedEERKbps != 400 {
		t.Errorf("allocations: %d, %d", r1.AllocatedEERKbps, r2.AllocatedEERKbps)
	}
	// The smaller SegR gates the next admission.
	err = s.AdmitEERVersion(&EER{ID: ID{SrcAS: ia(1, 9), Num: 2}}, []ID{sid1, sid2},
		Version{Ver: 1, BwKbps: 200, ExpT: now + 16}, now)
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("want ErrInsufficient from smaller SegR, got %v", err)
	}
	// No partial charge must remain on the first SegR.
	r1, _ = s.GetSegR(sid1)
	if r1.AllocatedEERKbps != 400 {
		t.Errorf("partial charge leaked: %d", r1.AllocatedEERKbps)
	}
}

func TestIDStringAndZero(t *testing.T) {
	var zero ID
	if !zero.IsZero() {
		t.Error("zero ID not zero")
	}
	id := ID{SrcAS: ia(1, 2), Num: 7}
	if id.IsZero() || id.String() != "1-2#7" {
		t.Errorf("ID = %s", id)
	}
}
