package reservation

import "fmt"

// AdjustEERVersion changes the bandwidth of an existing EER version (the
// backward pass of a setup/renewal, where the final grant is the minimum
// over all on-path ASes) and re-balances the SegR charging accordingly.
func (s *Store) AdjustEERVersion(id ID, ver uint16, finalKbps uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.eers[id]
	if !ok {
		return fmt.Errorf("%w: EER %s", ErrNotFound, id)
	}
	found := false
	for i := range e.Versions {
		if e.Versions[i].Ver == ver {
			e.Versions[i].BwKbps = finalKbps
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: EER %s version %d", ErrNotFound, id, ver)
	}
	s.rebalanceLocked(e)
	return nil
}

// RemoveEERVersion removes one version (rollback of a failed setup),
// releasing its SegR charge; the EER record disappears with its last
// version.
func (s *Store) RemoveEERVersion(id ID, ver uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.eers[id]
	if !ok {
		return fmt.Errorf("%w: EER %s", ErrNotFound, id)
	}
	kept := e.Versions[:0]
	found := false
	for _, v := range e.Versions {
		if v.Ver == ver {
			found = true
			continue
		}
		kept = append(kept, v)
	}
	if !found {
		return fmt.Errorf("%w: EER %s version %d", ErrNotFound, id, ver)
	}
	e.Versions = kept
	s.rebalanceLocked(e)
	if len(e.Versions) == 0 {
		delete(s.eers, id)
		delete(s.contrib, id)
	}
	return nil
}

// rebalanceLocked recomputes the EER's max-version contribution and adjusts
// the charge on its SegRs by the delta. Increases are applied even past a
// SegR's capacity bound here — callers check availability before admitting;
// this path only runs for adjust-down and removal.
func (s *Store) rebalanceLocked(e *EER) {
	var newMax uint64
	for _, v := range e.Versions {
		if v.BwKbps > newMax {
			newMax = v.BwKbps
		}
	}
	old := s.contrib[e.ID]
	if newMax == old {
		return
	}
	for _, sid := range e.SegIDs {
		sr, ok := s.segs[sid]
		if !ok {
			continue
		}
		if newMax > old {
			sr.AllocatedEERKbps += newMax - old
		} else if delta := old - newMax; sr.AllocatedEERKbps >= delta {
			sr.AllocatedEERKbps -= delta
		} else {
			sr.AllocatedEERKbps = 0
		}
	}
	s.contrib[e.ID] = newMax
}
