package reservation

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"colibri/internal/topology"
)

// Store is one AS's reservation database. It is safe for concurrent use and
// maintains the EER-over-SegR bandwidth accounting that transit-AS admission
// checks (§4.7). In the paper this is "a transactional database" inside the
// CServ; here the setup flow's reserve-then-confirm/rollback discipline is
// provided by the SegR lifecycle methods.
type Store struct {
	mu     sync.RWMutex
	local  topology.IA
	segs   map[ID]*SegR
	eers   map[ID]*EER
	nextID uint32

	// contrib tracks, per EER, the bandwidth currently charged against its
	// underlying SegRs, so version changes adjust by delta.
	contrib map[ID]uint64
}

// Store errors.
var (
	ErrNotFound       = errors.New("reservation: not found")
	ErrExists         = errors.New("reservation: already exists")
	ErrNoPending      = errors.New("reservation: no pending version")
	ErrOverAllocation = errors.New("reservation: activation would over-allocate EER bandwidth")
	ErrInsufficient   = errors.New("reservation: insufficient bandwidth in segment reservation")
)

// NewStore builds an empty store for the given AS.
func NewStore(local topology.IA) *Store {
	return &Store{
		local:   local,
		segs:    make(map[ID]*SegR),
		eers:    make(map[ID]*EER),
		contrib: make(map[ID]uint64),
	}
}

// Local returns the owning AS.
func (s *Store) Local() topology.IA { return s.local }

// NextID allocates the next reservation number for locally initiated
// reservations; the resulting (SrcAS, Num) pair is globally unique.
func (s *Store) NextID() ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return ID{SrcAS: s.local, Num: s.nextID}
}

// AddSegR inserts a new segment reservation record.
func (s *Store) AddSegR(r *SegR) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segs[r.ID]; ok {
		return fmt.Errorf("%w: SegR %s", ErrExists, r.ID)
	}
	s.segs[r.ID] = r
	return nil
}

// GetSegR returns the segment reservation, or ErrNotFound.
func (s *Store) GetSegR(id ID) (*SegR, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.segs[id]
	if !ok {
		return nil, fmt.Errorf("%w: SegR %s", ErrNotFound, id)
	}
	return r, nil
}

// DeleteSegR removes a segment reservation (failure cleanup on the setup
// path, or expiry).
func (s *Store) DeleteSegR(id ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.segs, id)
}

// ConfirmSegR finalizes the granted bandwidth of the active version after
// the backward pass of a setup ("each AS locally stores the final amount of
// bandwidth granted", §3.3).
func (s *Store) ConfirmSegR(id ID, finalKbps uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: SegR %s", ErrNotFound, id)
	}
	r.Active.BwKbps = finalKbps
	return nil
}

// SetPending records a renewed version awaiting activation (§4.2: "only a
// single version of a SegR can exist at any time and a pending version …
// must be activated explicitly").
func (s *Store) SetPending(id ID, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: SegR %s", ErrNotFound, id)
	}
	r.Pending = &v
	return nil
}

// ClearPending discards a pending version that will never be activated
// (e.g. a renewal that was ultimately refused or granted zero bandwidth),
// so the SegR becomes due for renewal again instead of being stuck behind
// a dead pending version.
func (s *Store) ClearPending(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: SegR %s", ErrNotFound, id)
	}
	r.Pending = nil
	return nil
}

// ActivatePending switches the SegR to its pending version. It fails with
// ErrOverAllocation if already-admitted EER bandwidth would exceed the new
// version ("ensure that no over-allocation with EERs can occur").
func (s *Store) ActivatePending(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: SegR %s", ErrNotFound, id)
	}
	if r.Pending == nil {
		return fmt.Errorf("%w: SegR %s", ErrNoPending, id)
	}
	if r.Pending.BwKbps < r.AllocatedEERKbps {
		return fmt.Errorf("%w: SegR %s pending %d kbps < allocated %d kbps",
			ErrOverAllocation, id, r.Pending.BwKbps, r.AllocatedEERKbps)
	}
	r.Active = *r.Pending
	r.Pending = nil
	return nil
}

// AdmitEERVersion checks available bandwidth on the given local SegRs and,
// if sufficient, records the version and charges the bandwidth delta against
// each SegR. This is the transit-AS admission of §4.7 plus the accounting
// that all versions of one EER share a single budget (the max over valid
// versions). eer describes the record to create on first sight of the ID.
func (s *Store) AdmitEERVersion(eer *EER, segIDs []ID, v Version, now uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	existing, ok := s.eers[eer.ID]
	if !ok {
		existing = eer
		existing.Versions = nil
	}
	oldContrib := s.contrib[eer.ID]
	// The new contribution if this version is admitted.
	newMax := oldContrib
	if v.BwKbps > newMax {
		newMax = v.BwKbps
	}
	delta := newMax - oldContrib
	if delta > 0 {
		segs := make([]*SegR, 0, len(segIDs))
		for _, sid := range segIDs {
			sr, ok := s.segs[sid]
			if !ok {
				return fmt.Errorf("%w: SegR %s", ErrNotFound, sid)
			}
			if sr.Active.Expired(now) {
				return fmt.Errorf("%w: SegR %s expired", ErrNotFound, sid)
			}
			if sr.AvailableEERKbps() < delta {
				return fmt.Errorf("%w: SegR %s has %d kbps free, need %d",
					ErrInsufficient, sid, sr.AvailableEERKbps(), delta)
			}
			segs = append(segs, sr)
		}
		for _, sr := range segs {
			sr.AllocatedEERKbps += delta
		}
	}
	if err := existing.AddVersion(v); err != nil {
		// Undo the charge on duplicate version numbers.
		if delta > 0 {
			for _, sid := range segIDs {
				if sr, ok := s.segs[sid]; ok {
					sr.AllocatedEERKbps -= delta
				}
			}
		}
		return err
	}
	if !ok {
		existing.SegIDs = append([]ID(nil), segIDs...)
		s.eers[eer.ID] = existing
	}
	s.contrib[eer.ID] = newMax
	return nil
}

// LiveVersion returns the EER's most recent live version — the highest
// version number whose expiry is still in the future. The handlers use it
// to identify the version a renewal replaces, identically to the CPlane's
// single-record LookupEER, so the transfer-split accounting stays in step
// across both admission modes.
func (s *Store) LiveVersion(id ID, now uint32) (bwKbps uint64, ver uint16, expT uint32, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, found := s.eers[id]
	if !found {
		return 0, 0, 0, false
	}
	for i := len(e.Versions) - 1; i >= 0; i-- {
		if v := e.Versions[i]; v.ExpT > now {
			return v.BwKbps, v.Ver, v.ExpT, true
		}
	}
	return 0, 0, 0, false
}

// GetEER returns the EER record, or ErrNotFound.
func (s *Store) GetEER(id ID) (*EER, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.eers[id]
	if !ok {
		return nil, fmt.Errorf("%w: EER %s", ErrNotFound, id)
	}
	return e, nil
}

// Cleanup removes expired reservations: EER versions past their expiry
// (releasing SegR bandwidth), EERs with no versions left, and SegRs whose
// active and pending versions are both expired. It returns the IDs of
// removed SegRs so the caller can release admission-state aggregates.
func (s *Store) Cleanup(now uint32) (removedSegRs []ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range sortedIDs(s.eers) {
		e := s.eers[id]
		alive := e.DropExpired(now)
		newMax := e.MaxBwKbps(now)
		old := s.contrib[id]
		if newMax < old {
			delta := old - newMax
			for _, sid := range e.SegIDs {
				if sr, ok := s.segs[sid]; ok {
					if sr.AllocatedEERKbps >= delta {
						sr.AllocatedEERKbps -= delta
					} else {
						sr.AllocatedEERKbps = 0
					}
				}
			}
			s.contrib[id] = newMax
		}
		if !alive {
			delete(s.eers, id)
			delete(s.contrib, id)
		}
	}
	for _, id := range sortedIDs(s.segs) {
		r := s.segs[id]
		activeDead := r.Active.Expired(now)
		pendingDead := r.Pending == nil || r.Pending.Expired(now)
		if activeDead && !pendingDead {
			// An expired active with a live pending: switch over (the
			// initiator failed to activate in time; keep service alive).
			r.Active = *r.Pending
			r.Pending = nil
			continue
		}
		if activeDead && pendingDead {
			delete(s.segs, id)
			removedSegRs = append(removedSegRs, id)
		}
	}
	return removedSegRs
}

// InitiatedSegRs returns the SegRs initiated by this AS (those carrying the
// full segment), for the renewal automation of §3.2.
func (s *Store) InitiatedSegRs() []*SegR {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*SegR
	for _, id := range sortedIDs(s.segs) {
		if r := s.segs[id]; r.Seg != nil {
			out = append(out, r)
		}
	}
	return out
}

// sortedIDs returns the map's keys in canonical ID order, so maintenance
// paths (cleanup, renewal enumeration) touch reservations — and emit any
// downstream traces — in the same order every run.
func sortedIDs[V any](m map[ID]V) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Counts returns the number of stored SegRs and EERs.
func (s *Store) Counts() (segRs, eers int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs), len(s.eers)
}
