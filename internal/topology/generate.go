package topology

import (
	"fmt"
	"math/rand"
)

// GenSpec parameterizes the Internet-like hierarchical generator.
type GenSpec struct {
	// ISDs is the number of isolation domains (≥1).
	ISDs int
	// CoresPerISD is the number of core ASes per ISD (≥1). Cores within an
	// ISD form a full mesh; across ISDs, each core connects to Rand cores of
	// every other ISD (at least one).
	CoresPerISD int
	// ProvidersPerISD is the number of mid-tier (transit) ASes per ISD.
	// Each attaches to ProviderUplinks core ASes of its ISD.
	ProvidersPerISD int
	// LeavesPerISD is the number of leaf ASes per ISD. Each attaches to
	// LeafUplinks providers (or cores if there are no providers).
	LeavesPerISD int
	// ProviderUplinks and LeafUplinks control multihoming degree (≥1).
	ProviderUplinks int
	LeafUplinks     int
	// CoreLinkKbps, TransitLinkKbps, AccessLinkKbps set link capacities;
	// zero values use defaults (100G / 40G / 10G).
	CoreLinkKbps    uint64
	TransitLinkKbps uint64
	AccessLinkKbps  uint64
	// Seed makes the generated wiring deterministic.
	Seed int64
}

// Defaults used by Generate for zero fields.
const (
	defaultCoreLinkKbps    = 100_000_000
	defaultTransitLinkKbps = 40_000_000
	defaultAccessLinkKbps  = 10_000_000
)

func (s *GenSpec) setDefaults() {
	if s.ISDs == 0 {
		s.ISDs = 1
	}
	if s.CoresPerISD == 0 {
		s.CoresPerISD = 1
	}
	if s.ProviderUplinks == 0 {
		s.ProviderUplinks = 1
	}
	if s.LeafUplinks == 0 {
		s.LeafUplinks = 1
	}
	if s.CoreLinkKbps == 0 {
		s.CoreLinkKbps = defaultCoreLinkKbps
	}
	if s.TransitLinkKbps == 0 {
		s.TransitLinkKbps = defaultTransitLinkKbps
	}
	if s.AccessLinkKbps == 0 {
		s.AccessLinkKbps = defaultAccessLinkKbps
	}
}

// nextIf hands out fresh interface IDs per AS.
type ifAlloc map[IA]IfID

func (a ifAlloc) next(ia IA) IfID {
	a[ia]++
	return a[ia]
}

// Generate builds a hierarchical Internet-like topology: per ISD a core mesh,
// a transit tier, and leaf ASes; ISD cores are interconnected. AS numbering:
// cores are 1..C, providers C+1..C+P, leaves C+P+1.. within each ISD.
func Generate(spec GenSpec) *Topology {
	spec.setDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	t := New()
	alloc := make(ifAlloc)

	cores := make([][]IA, spec.ISDs)
	providers := make([][]IA, spec.ISDs)
	for i := 0; i < spec.ISDs; i++ {
		isd := ISD(i + 1)
		next := ASID(1)
		for c := 0; c < spec.CoresPerISD; c++ {
			ia := MustIA(isd, next)
			next++
			t.AddAS(ia, true)
			cores[i] = append(cores[i], ia)
		}
		for p := 0; p < spec.ProvidersPerISD; p++ {
			ia := MustIA(isd, next)
			next++
			t.AddAS(ia, false)
			providers[i] = append(providers[i], ia)
		}
		for l := 0; l < spec.LeavesPerISD; l++ {
			ia := MustIA(isd, next)
			next++
			t.AddAS(ia, false)
		}
	}

	coreSpec := LinkSpec{CapacityKbps: spec.CoreLinkKbps, LatencyNs: 5e6}
	transitSpec := LinkSpec{CapacityKbps: spec.TransitLinkKbps, LatencyNs: 2e6}
	accessSpec := LinkSpec{CapacityKbps: spec.AccessLinkKbps, LatencyNs: 1e6}

	// Intra-ISD core mesh.
	for i := range cores {
		cs := cores[i]
		for x := 0; x < len(cs); x++ {
			for y := x + 1; y < len(cs); y++ {
				t.MustConnect(cs[x], alloc.next(cs[x]), cs[y], alloc.next(cs[y]), LinkCore, coreSpec)
			}
		}
	}
	// Inter-ISD core links: connect core x of ISD i to core (x mod len) of
	// every other ISD, plus one random extra for diversity.
	for i := 0; i < spec.ISDs; i++ {
		for j := i + 1; j < spec.ISDs; j++ {
			for x, ca := range cores[i] {
				cb := cores[j][x%len(cores[j])]
				t.MustConnect(ca, alloc.next(ca), cb, alloc.next(cb), LinkCore, coreSpec)
			}
			if len(cores[i]) > 1 && len(cores[j]) > 1 {
				ca := cores[i][rng.Intn(len(cores[i]))]
				cb := cores[j][rng.Intn(len(cores[j]))]
				t.MustConnect(ca, alloc.next(ca), cb, alloc.next(cb), LinkCore, coreSpec)
			}
		}
	}
	// Providers under cores; leaves under providers (or cores).
	for i := 0; i < spec.ISDs; i++ {
		isd := ISD(i + 1)
		for p, prov := range providers[i] {
			for u := 0; u < spec.ProviderUplinks && u < len(cores[i]); u++ {
				core := cores[i][(p+u)%len(cores[i])]
				t.MustConnect(core, alloc.next(core), prov, alloc.next(prov), LinkParent, transitSpec)
			}
		}
		parents := providers[i]
		parentSpec := accessSpec
		if len(parents) == 0 {
			parents = cores[i]
			parentSpec = transitSpec
		}
		base := spec.CoresPerISD + spec.ProvidersPerISD
		for l := 0; l < spec.LeavesPerISD; l++ {
			leaf := MustIA(isd, ASID(base+l+1))
			for u := 0; u < spec.LeafUplinks && u < len(parents); u++ {
				par := parents[(l+u)%len(parents)]
				t.MustConnect(par, alloc.next(par), leaf, alloc.next(leaf), LinkParent, parentSpec)
			}
		}
	}
	return t
}

// Line builds a chain of n ASes 1-1 … 1-n, the first `coreCount` of which are
// core. Consecutive ASes are connected; core-core pairs by core links,
// otherwise provider-customer with the lower index as provider. Useful for
// path-length-controlled experiments (Figs. 5–6 use paths of 2–16 ASes).
func Line(n, coreCount int, spec LinkSpec) *Topology {
	if n < 1 {
		panic("topology: Line needs n >= 1")
	}
	if coreCount < 1 || coreCount > n {
		coreCount = 1
	}
	t := New()
	for i := 1; i <= n; i++ {
		t.AddAS(MustIA(1, ASID(i)), i <= coreCount)
	}
	alloc := make(ifAlloc)
	for i := 1; i < n; i++ {
		a, b := MustIA(1, ASID(i)), MustIA(1, ASID(i+1))
		typ := LinkParent
		if i+1 <= coreCount {
			typ = LinkCore
		}
		t.MustConnect(a, alloc.next(a), b, alloc.next(b), typ, spec)
	}
	return t
}

// Star builds one core AS (1-1) with n leaves (1-2 … 1-(n+1)) attached by
// provider-customer links.
func Star(n int, spec LinkSpec) *Topology {
	t := New()
	hub := MustIA(1, 1)
	t.AddAS(hub, true)
	alloc := make(ifAlloc)
	for i := 0; i < n; i++ {
		leaf := MustIA(1, ASID(i+2))
		t.AddAS(leaf, false)
		t.MustConnect(hub, alloc.next(hub), leaf, alloc.next(leaf), LinkParent, spec)
	}
	return t
}

// TwoISD builds the small fixed topology used throughout the tests and
// examples, mirroring Fig. 1 of the paper: source AS S (1-11) is a leaf
// multihomed under transit ASes X (1-2) and X' (1-3), both customers of the
// ISD-1 core Y (1-1); Y connects over an inter-ISD core link to W (2-1),
// whose customer is the destination AS Z (2-11).
//
//	          1-2 (X)
//	1-11 (S) <        > 1-1 (Y) — 2-1 (W) — 2-11 (Z)
//	          1-3 (X')
//
// S thus has two up-segments (via X and X'), giving real path choice.
func TwoISD(spec LinkSpec) *Topology {
	t := New()
	y := MustIA(1, 1)
	x := MustIA(1, 2)
	x2 := MustIA(1, 3)
	s := MustIA(1, 11)
	w := MustIA(2, 1)
	z := MustIA(2, 11)
	t.AddAS(y, true)
	t.AddAS(x, false)
	t.AddAS(x2, false)
	t.AddAS(s, false)
	t.AddAS(w, true)
	t.AddAS(z, false)
	alloc := make(ifAlloc)
	t.MustConnect(y, alloc.next(y), x, alloc.next(x), LinkParent, spec)
	t.MustConnect(y, alloc.next(y), x2, alloc.next(x2), LinkParent, spec)
	t.MustConnect(x, alloc.next(x), s, alloc.next(s), LinkParent, spec)
	t.MustConnect(x2, alloc.next(x2), s, alloc.next(s), LinkParent, spec)
	t.MustConnect(y, alloc.next(y), w, alloc.next(w), LinkCore, spec)
	t.MustConnect(w, alloc.next(w), z, alloc.next(z), LinkParent, spec)
	return t
}

// String renders a human-readable summary of the topology.
func (t *Topology) String() string {
	s := fmt.Sprintf("topology: %d ASes, %d links\n", len(t.ASes), len(t.Links))
	for _, ia := range t.SortedIAs() {
		as := t.ASes[ia]
		role := "leaf"
		if as.Core {
			role = "core"
		}
		s += fmt.Sprintf("  %s (%s):", ia, role)
		for _, id := range as.SortedIfIDs() {
			intf := as.Interfaces[id]
			s += fmt.Sprintf(" %d->%s#%d(%s)", id, intf.Neighbor, intf.NeighborIf, intf.Type)
		}
		s += "\n"
	}
	return s
}
