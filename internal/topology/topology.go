// Package topology models a path-aware inter-domain network in the style of
// SCION: autonomous systems (ASes) grouped into isolation domains (ISDs),
// distinguished into core and non-core ASes, connected by inter-domain links
// attached to per-AS interfaces.
//
// The topology is the static substrate on which Colibri operates: path
// segments are discovered over it (package segment), reservations are made
// along its interface pairs, and the simulator (package netsim) uses its link
// capacities and latencies.
package topology

import (
	"fmt"
	"sort"
)

// ISD identifies an isolation domain.
type ISD uint16

// ASID identifies an AS within the global numbering space (48 bits used).
type ASID uint64

// IA is the combined ISD-AS identifier: ISD in the top 16 bits, AS in the
// lower 48. The zero IA is invalid.
type IA uint64

// MustIA builds an IA from an ISD and AS number.
func MustIA(isd ISD, as ASID) IA {
	if as >= 1<<48 {
		panic(fmt.Sprintf("AS number %d exceeds 48 bits", as))
	}
	return IA(uint64(isd)<<48 | uint64(as))
}

// ISD returns the isolation-domain part of the IA.
func (ia IA) ISD() ISD { return ISD(ia >> 48) }

// AS returns the AS-number part of the IA.
func (ia IA) AS() ASID { return ASID(ia & (1<<48 - 1)) }

// IsZero reports whether the IA is the invalid zero value.
func (ia IA) IsZero() bool { return ia == 0 }

func (ia IA) String() string { return fmt.Sprintf("%d-%d", ia.ISD(), ia.AS()) }

// IfID identifies an interface within one AS. Interface IDs are unique per
// AS and chosen by each AS independently, as in SCION. IfID 0 denotes "no
// interface" (the local AS boundary at path ends).
type IfID uint16

// LinkType classifies the business relationship of an inter-domain link.
type LinkType uint8

const (
	// LinkCore connects two core ASes (possibly in different ISDs).
	LinkCore LinkType = iota
	// LinkParent connects a provider (parent) to a customer (child). The
	// link is stored on the parent side; the child side sees LinkChild.
	LinkParent
	// LinkChild is the customer side of a provider-customer link.
	LinkChild
	// LinkPeer connects two non-core ASes laterally. Peering links are
	// modelled but not used for segment construction in this reproduction.
	LinkPeer
)

func (t LinkType) String() string {
	switch t {
	case LinkCore:
		return "core"
	case LinkParent:
		return "parent"
	case LinkChild:
		return "child"
	case LinkPeer:
		return "peer"
	default:
		return fmt.Sprintf("linktype(%d)", uint8(t))
	}
}

// Link is one direction-less inter-domain link between two AS interfaces.
// Capacity is the usable bandwidth in kbps; Latency is the one-way
// propagation delay in nanoseconds (kept as int64 to stay stdlib-friendly in
// hot paths).
type Link struct {
	A, B         IA
	AIf, BIf     IfID
	CapacityKbps uint64
	LatencyNs    int64
}

// Interface is one AS-side endpoint of a link.
type Interface struct {
	ID         IfID
	Type       LinkType // relationship as seen from this AS
	Neighbor   IA
	NeighborIf IfID
	Link       *Link
}

// CapacityKbps returns the capacity of the attached link.
func (intf *Interface) CapacityKbps() uint64 { return intf.Link.CapacityKbps }

// AS is one autonomous system in the topology.
type AS struct {
	IA         IA
	Core       bool
	Interfaces map[IfID]*Interface

	// InternalCapacityKbps bounds traffic crossing the AS fabric between
	// any interface pair; 0 means unconstrained.
	InternalCapacityKbps uint64
}

// Interface returns the interface with the given ID, or nil.
func (a *AS) Interface(id IfID) *Interface { return a.Interfaces[id] }

// SortedIfIDs returns the AS's interface IDs in ascending order, useful for
// deterministic iteration.
func (a *AS) SortedIfIDs() []IfID {
	ids := make([]IfID, 0, len(a.Interfaces))
	for id := range a.Interfaces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Neighbors returns the distinct neighbor IAs of the AS.
func (a *AS) Neighbors() []IA {
	seen := make(map[IA]bool, len(a.Interfaces))
	var out []IA
	for _, id := range a.SortedIfIDs() {
		n := a.Interfaces[id].Neighbor
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Topology is an immutable-after-build snapshot of the inter-domain graph.
type Topology struct {
	ASes  map[IA]*AS
	Links []*Link
}

// New returns an empty topology ready for building.
func New() *Topology {
	return &Topology{ASes: make(map[IA]*AS)}
}

// AddAS inserts an AS. It panics if the IA is zero or already present; the
// builder API is for test/setup code where that is a programming error.
func (t *Topology) AddAS(ia IA, core bool) *AS {
	if ia.IsZero() {
		panic("topology: zero IA")
	}
	if _, ok := t.ASes[ia]; ok {
		panic(fmt.Sprintf("topology: duplicate AS %s", ia))
	}
	as := &AS{IA: ia, Core: core, Interfaces: make(map[IfID]*Interface)}
	t.ASes[ia] = as
	return as
}

// AS returns the AS with the given IA, or nil.
func (t *Topology) AS(ia IA) *AS { return t.ASes[ia] }

// LinkSpec describes one link for Connect.
type LinkSpec struct {
	CapacityKbps uint64
	LatencyNs    int64
}

// DefaultLinkCapacityKbps is used when a LinkSpec leaves capacity zero
// (40 Gbps, matching the paper's testbed links).
const DefaultLinkCapacityKbps = 40_000_000

// Connect links interface aIf of AS a with interface bIf of AS b. The link
// type is the relationship as seen from a: LinkCore for core-core links,
// LinkParent if a is b's provider. It returns an error on unknown ASes,
// duplicate interfaces, or a relationship inconsistent with the core flags.
func (t *Topology) Connect(a IA, aIf IfID, b IA, bIf IfID, typ LinkType, spec LinkSpec) (*Link, error) {
	asA, asB := t.ASes[a], t.ASes[b]
	if asA == nil {
		return nil, fmt.Errorf("topology: unknown AS %s", a)
	}
	if asB == nil {
		return nil, fmt.Errorf("topology: unknown AS %s", b)
	}
	if aIf == 0 || bIf == 0 {
		return nil, fmt.Errorf("topology: interface ID 0 is reserved")
	}
	if _, ok := asA.Interfaces[aIf]; ok {
		return nil, fmt.Errorf("topology: AS %s interface %d already in use", a, aIf)
	}
	if _, ok := asB.Interfaces[bIf]; ok {
		return nil, fmt.Errorf("topology: AS %s interface %d already in use", b, bIf)
	}
	var typB LinkType
	switch typ {
	case LinkCore:
		if !asA.Core || !asB.Core {
			return nil, fmt.Errorf("topology: core link %s-%s requires two core ASes", a, b)
		}
		typB = LinkCore
	case LinkParent:
		typB = LinkChild
	case LinkChild:
		typB = LinkParent
	case LinkPeer:
		typB = LinkPeer
	default:
		return nil, fmt.Errorf("topology: invalid link type %v", typ)
	}
	if spec.CapacityKbps == 0 {
		spec.CapacityKbps = DefaultLinkCapacityKbps
	}
	l := &Link{A: a, B: b, AIf: aIf, BIf: bIf, CapacityKbps: spec.CapacityKbps, LatencyNs: spec.LatencyNs}
	asA.Interfaces[aIf] = &Interface{ID: aIf, Type: typ, Neighbor: b, NeighborIf: bIf, Link: l}
	asB.Interfaces[bIf] = &Interface{ID: bIf, Type: typB, Neighbor: a, NeighborIf: aIf, Link: l}
	t.Links = append(t.Links, l)
	return l, nil
}

// MustConnect is Connect for setup code; it panics on error.
func (t *Topology) MustConnect(a IA, aIf IfID, b IA, bIf IfID, typ LinkType, spec LinkSpec) *Link {
	l, err := t.Connect(a, aIf, b, bIf, typ, spec)
	if err != nil {
		panic(err)
	}
	return l
}

// CoreASes returns the core ASes, sorted by IA for determinism.
func (t *Topology) CoreASes() []*AS {
	var out []*AS
	for _, as := range t.ASes {
		if as.Core {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IA < out[j].IA })
	return out
}

// NonCoreASes returns the non-core ASes, sorted by IA.
func (t *Topology) NonCoreASes() []*AS {
	var out []*AS
	for _, as := range t.ASes {
		if !as.Core {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IA < out[j].IA })
	return out
}

// SortedIAs returns all IAs in ascending order.
func (t *Topology) SortedIAs() []IA {
	out := make([]IA, 0, len(t.ASes))
	for ia := range t.ASes {
		out = append(out, ia)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: every interface's link endpoints are
// consistent, neighbor references resolve, and ISDs each have at least one
// core AS.
func (t *Topology) Validate() error {
	isdHasCore := make(map[ISD]bool)
	for ia, as := range t.ASes {
		if as.IA != ia {
			return fmt.Errorf("AS map key %s != AS.IA %s", ia, as.IA)
		}
		if as.Core {
			isdHasCore[ia.ISD()] = true
		} else if _, ok := isdHasCore[ia.ISD()]; !ok {
			isdHasCore[ia.ISD()] = false
		}
		for id, intf := range as.Interfaces {
			if intf.ID != id {
				return fmt.Errorf("AS %s: interface map key %d != ID %d", ia, id, intf.ID)
			}
			nb := t.ASes[intf.Neighbor]
			if nb == nil {
				return fmt.Errorf("AS %s if %d: unknown neighbor %s", ia, id, intf.Neighbor)
			}
			back := nb.Interfaces[intf.NeighborIf]
			if back == nil || back.Neighbor != ia || back.NeighborIf != id {
				return fmt.Errorf("AS %s if %d: neighbor %s does not link back", ia, id, intf.Neighbor)
			}
			if intf.Link == nil || intf.Link.CapacityKbps == 0 {
				return fmt.Errorf("AS %s if %d: missing or zero-capacity link", ia, id)
			}
		}
	}
	for isd, has := range isdHasCore {
		if !has {
			return fmt.Errorf("ISD %d has no core AS", isd)
		}
	}
	return nil
}
