package topology

import (
	"testing"
	"testing/quick"
)

func TestIAParts(t *testing.T) {
	cases := []struct {
		isd ISD
		as  ASID
	}{
		{1, 1},
		{0, 0},
		{65535, 1<<48 - 1},
		{12, 4242},
	}
	for _, c := range cases {
		ia := MustIA(c.isd, c.as)
		if ia.ISD() != c.isd || ia.AS() != c.as {
			t.Errorf("MustIA(%d,%d) roundtrip got (%d,%d)", c.isd, c.as, ia.ISD(), ia.AS())
		}
	}
}

func TestIARoundTripQuick(t *testing.T) {
	f := func(isd uint16, as uint64) bool {
		as &= 1<<48 - 1
		ia := MustIA(ISD(isd), ASID(as))
		return ia.ISD() == ISD(isd) && ia.AS() == ASID(as)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustIAPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 49-bit AS")
		}
	}()
	MustIA(1, 1<<48)
}

func TestIAString(t *testing.T) {
	if got := MustIA(3, 77).String(); got != "3-77" {
		t.Errorf("String() = %q, want %q", got, "3-77")
	}
}

func TestConnectWiresBothSides(t *testing.T) {
	topo := New()
	a := MustIA(1, 1)
	b := MustIA(1, 2)
	topo.AddAS(a, true)
	topo.AddAS(b, false)
	l, err := topo.Connect(a, 7, b, 9, LinkParent, LinkSpec{CapacityKbps: 1000, LatencyNs: 42})
	if err != nil {
		t.Fatal(err)
	}
	ifa := topo.AS(a).Interface(7)
	ifb := topo.AS(b).Interface(9)
	if ifa == nil || ifb == nil {
		t.Fatal("interfaces not created")
	}
	if ifa.Neighbor != b || ifa.NeighborIf != 9 || ifa.Type != LinkParent {
		t.Errorf("side A wrong: %+v", ifa)
	}
	if ifb.Neighbor != a || ifb.NeighborIf != 7 || ifb.Type != LinkChild {
		t.Errorf("side B wrong: %+v", ifb)
	}
	if ifa.Link != l || ifb.Link != l {
		t.Error("interfaces do not share the link")
	}
	if ifa.CapacityKbps() != 1000 {
		t.Errorf("capacity = %d, want 1000", ifa.CapacityKbps())
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConnectErrors(t *testing.T) {
	topo := New()
	a := MustIA(1, 1)
	b := MustIA(1, 2)
	c := MustIA(1, 3)
	topo.AddAS(a, true)
	topo.AddAS(b, false)
	topo.AddAS(c, false)

	if _, err := topo.Connect(MustIA(9, 9), 1, b, 1, LinkParent, LinkSpec{}); err == nil {
		t.Error("expected error for unknown AS a")
	}
	if _, err := topo.Connect(a, 1, MustIA(9, 9), 1, LinkParent, LinkSpec{}); err == nil {
		t.Error("expected error for unknown AS b")
	}
	if _, err := topo.Connect(a, 0, b, 1, LinkParent, LinkSpec{}); err == nil {
		t.Error("expected error for interface 0")
	}
	if _, err := topo.Connect(a, 1, b, 1, LinkCore, LinkSpec{}); err == nil {
		t.Error("expected error for core link to non-core AS")
	}
	if _, err := topo.Connect(a, 1, b, 1, LinkParent, LinkSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Connect(a, 1, c, 1, LinkParent, LinkSpec{}); err == nil {
		t.Error("expected error for duplicate interface on a")
	}
	if _, err := topo.Connect(c, 1, b, 1, LinkParent, LinkSpec{}); err == nil {
		t.Error("expected error for duplicate interface on b")
	}
}

func TestConnectDefaultCapacity(t *testing.T) {
	topo := New()
	a, b := MustIA(1, 1), MustIA(1, 2)
	topo.AddAS(a, true)
	topo.AddAS(b, true)
	l := topo.MustConnect(a, 1, b, 1, LinkCore, LinkSpec{})
	if l.CapacityKbps != DefaultLinkCapacityKbps {
		t.Errorf("default capacity = %d, want %d", l.CapacityKbps, DefaultLinkCapacityKbps)
	}
}

func TestAddASDuplicatePanics(t *testing.T) {
	topo := New()
	topo.AddAS(MustIA(1, 1), true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate AS")
		}
	}()
	topo.AddAS(MustIA(1, 1), false)
}

func TestGenerateHierarchical(t *testing.T) {
	topo := Generate(GenSpec{
		ISDs: 3, CoresPerISD: 2, ProvidersPerISD: 2, LeavesPerISD: 4,
		ProviderUplinks: 2, LeafUplinks: 2, Seed: 1,
	})
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantASes := 3 * (2 + 2 + 4)
	if len(topo.ASes) != wantASes {
		t.Errorf("#ASes = %d, want %d", len(topo.ASes), wantASes)
	}
	if got := len(topo.CoreASes()); got != 6 {
		t.Errorf("#core = %d, want 6", got)
	}
	// Every leaf must be multihomed to 2 providers.
	for _, as := range topo.NonCoreASes() {
		if len(as.Interfaces) < 1 {
			t.Errorf("AS %s has no interfaces", as.IA)
		}
	}
	// Core mesh within each ISD.
	for isd := ISD(1); isd <= 3; isd++ {
		a := topo.AS(MustIA(isd, 1))
		foundPeer := false
		for _, id := range a.SortedIfIDs() {
			intf := a.Interfaces[id]
			if intf.Type == LinkCore && intf.Neighbor == MustIA(isd, 2) {
				foundPeer = true
			}
		}
		if !foundPeer {
			t.Errorf("ISD %d: cores 1 and 2 not meshed", isd)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{ISDs: 2, CoresPerISD: 3, ProvidersPerISD: 2, LeavesPerISD: 3, Seed: 7}
	a := Generate(spec)
	b := Generate(spec)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		la, lb := a.Links[i], b.Links[i]
		if la.A != lb.A || la.B != lb.B || la.AIf != lb.AIf || la.BIf != lb.BIf {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
}

func TestLine(t *testing.T) {
	topo := Line(5, 2, LinkSpec{})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.ASes) != 5 || len(topo.Links) != 4 {
		t.Fatalf("Line(5): %d ASes %d links", len(topo.ASes), len(topo.Links))
	}
	if !topo.AS(MustIA(1, 1)).Core || !topo.AS(MustIA(1, 2)).Core || topo.AS(MustIA(1, 3)).Core {
		t.Error("core flags wrong")
	}
	// Link 1-2 is core, 2-3 parent.
	if topo.AS(MustIA(1, 1)).Interface(1).Type != LinkCore {
		t.Error("1-1 to 1-2 should be core link")
	}
	if topo.AS(MustIA(1, 2)).Interface(2).Type != LinkParent {
		t.Error("1-2 to 1-3 should be parent link")
	}
}

func TestStar(t *testing.T) {
	topo := Star(8, LinkSpec{})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	hub := topo.AS(MustIA(1, 1))
	if len(hub.Interfaces) != 8 {
		t.Errorf("hub has %d interfaces, want 8", len(hub.Interfaces))
	}
	if got := hub.Neighbors(); len(got) != 8 {
		t.Errorf("hub neighbors = %d, want 8", len(got))
	}
}

func TestTwoISD(t *testing.T) {
	topo := TwoISD(LinkSpec{})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.ASes) != 6 {
		t.Fatalf("#ASes = %d, want 6", len(topo.ASes))
	}
	if got := len(topo.CoreASes()); got != 2 {
		t.Errorf("#core = %d, want 2", got)
	}
	// S is multihomed under X and X'.
	if got := len(topo.AS(MustIA(1, 11)).Interfaces); got != 2 {
		t.Errorf("S has %d interfaces, want 2", got)
	}
}

func TestValidateCatchesISDWithoutCore(t *testing.T) {
	topo := New()
	topo.AddAS(MustIA(1, 1), false)
	if err := topo.Validate(); err == nil {
		t.Error("expected validation error for ISD without core")
	}
}

func TestLinkTypeString(t *testing.T) {
	for typ, want := range map[LinkType]string{
		LinkCore: "core", LinkParent: "parent", LinkChild: "child", LinkPeer: "peer", LinkType(99): "linktype(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("LinkType(%d).String() = %q, want %q", typ, got, want)
		}
	}
}
