package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(int64(i), EvSegSetup, "1-11/1", true, "")
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.TimeNs != int64(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(0) // default capacity
	tr.Record(5, EvDrop, "", false, "router: hop validation field mismatch")
	tr.Record(6, EvEESetup, "1-11/2", true, "")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != EvDrop || evs[1].Kind != EvEESetup {
		t.Fatalf("events = %+v", evs)
	}
	if !strings.Contains(evs[0].String(), "FAIL") || !strings.Contains(evs[0].String(), "mismatch") {
		t.Fatalf("String() = %q", evs[0])
	}
	if !strings.Contains(evs[1].String(), "ok") {
		t.Fatalf("String() = %q", evs[1])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	const workers, per = 8, 1_000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Record(int64(j), EvEERenew, "1-11/9", true, "")
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			evs := tr.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("non-contiguous seqs: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	if tr.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", tr.Total(), workers*per)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvSegSetup, EvSegRenew, EvSegActivate, EvEESetup, EvEERenew, EvEEExpire, EvDrop}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "event(") || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
}
