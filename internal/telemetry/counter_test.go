package telemetry

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

// TestCounterConcurrent checks that concurrent sharded increments are all
// accounted and that concurrent reads are monotone (run with -race).
func TestCounterConcurrent(t *testing.T) {
	const writers, perWriter = 8, 10_000
	c := NewCounter()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				v := c.Value()
				if v < last {
					t.Errorf("Value went backwards: %d then %d", last, v)
					return
				}
				last = v
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	var writersWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("Value = %d, want %d", got, writers*perWriter)
	}
}

func TestGaugeAddSetValue(t *testing.T) {
	g := NewGauge()
	g.Add(10)
	g.Dec()
	g.Inc()
	if got := g.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("after Set: Value = %d, want -3", got)
	}
	g.Add(5)
	if got := g.Value(); got != 2 {
		t.Fatalf("after Set+Add: Value = %d, want 2", got)
	}
}

func TestGaugeConcurrentUpDown(t *testing.T) {
	g := NewGauge()
	const workers, rounds = 8, 5_000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("balanced inc/dec left Value = %d", got)
	}
}
