package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// WriteJSON renders one or more snapshots as an indented JSON array (a
// single object when exactly one snapshot is given).
func WriteJSON(w io.Writer, snaps ...Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if len(snaps) == 1 {
		return enc.Encode(snaps[0])
	}
	return enc.Encode(snaps)
}

// WriteText renders snapshots as aligned, sorted human-readable tables:
// counters and gauges one per line, histograms as summary statistics
// (count, mean, p50/p95/p99, max), traces as their retained events.
// Instruments with no activity (zero counters, empty histograms) are
// skipped so the report stays readable.
func WriteText(w io.Writer, snaps ...Snapshot) error {
	for i, s := range snaps {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeTextOne(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeTextOne(w io.Writer, s Snapshot) error {
	if _, err := fmt.Fprintf(w, "== telemetry: %s ==\n", s.Label); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, name := range sortedKeys(s.Counters) {
		if s.Counters[name] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(tw, "counter\t%s\t%d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(tw, "gauge\t%s\t%d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(tw, "histogram\t%s\tcount=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d\n",
			name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, name := range sortedKeys(s.Traces) {
		evs := s.Traces[name]
		if len(evs) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "trace %s (last %d):\n", name, len(evs)); err != nil {
			return err
		}
		for _, e := range evs {
			if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
