package telemetry

import "testing"

// The instrument micro-benchmarks back the "≤ a few ns per hot-path event"
// budget of DESIGN.md §4; BenchmarkTelemetryOverhead at the repo root
// measures the same instruments embedded in the router and gateway paths.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewGauge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xFFFF))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(int64(i & 0xFFFF))
			i++
		}
	})
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(int64(i), EvDrop, "1-11/1", false, "replay")
	}
}
