// Package telemetry is the unified, low-overhead observability substrate of
// this Colibri implementation: sharded lock-free counters and gauges for the
// router/gateway hot paths, log₂-bucketed histograms for latency and size
// distributions, a ring-buffer tracer for reservation-lifecycle events, and
// a per-AS registry with snapshot/diff and JSON + aligned-text exporters.
//
// Design constraints (see DESIGN.md §4):
//
//   - Hot-path instruments must cost no more than a few nanoseconds per
//     event and never allocate. Counters and gauges are therefore arrays of
//     cache-line-padded atomics; a writer picks its shard from a cheap hash
//     of a stack address, which differs across goroutine stacks, so
//     concurrent workers do not contend on one cache line.
//   - Everything is stdlib-only and works with virtual clocks: instruments
//     never read the wall clock themselves; callers pass timestamps where
//     one is needed (the tracer).
//   - Reads (Value, Snapshot) are wait-free with respect to writers and may
//     observe a value mid-update only in the sense that concurrent
//     increments are linearized per shard; sums are monotone for counters.
package telemetry

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// shardCount is the number of shards per counter/gauge: the smallest power
// of two covering GOMAXPROCS at init, capped so that one instrument stays
// small (32 shards × 128 B = 4 KiB).
var shardCount = func() int {
	n := runtime.GOMAXPROCS(0)
	if n > 32 {
		n = 32
	}
	if n < 1 {
		n = 1
	}
	// Round up to a power of two so shard selection is a mask.
	return 1 << bits.Len(uint(n-1))
}()

// paddedU64 occupies two cache lines so neighbouring shards never share one
// (64-byte lines, and the adjacent-line prefetcher pulls pairs).
type paddedU64 struct {
	v atomic.Uint64
	_ [120]byte
}

// paddedI64 is the signed twin for gauges.
type paddedI64 struct {
	v atomic.Int64
	_ [120]byte
}

// shardHint returns a per-goroutine-ish shard index: the address of a stack
// variable differs across goroutine stacks (and is stable enough within
// one), so concurrent writers spread over shards without any registration.
// The value is mixed so that allocation-order regularities in stack bases
// do not collapse everything into one shard. It never allocates.
func shardHint() uint64 {
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	p ^= p >> 17
	p *= 0x9E3779B97F4A7C15
	return p >> 56
}

// Counter is a monotone sum, sharded across padded atomics. The zero value
// is not usable; create with NewCounter or Registry.Counter.
type Counter struct {
	shards []paddedU64
	mask   uint64
}

// NewCounter builds a standalone counter (instruments owned by a Registry
// are created through it instead, so they appear in snapshots).
func NewCounter() *Counter {
	return &Counter{shards: make([]paddedU64, shardCount), mask: uint64(shardCount - 1)}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c.mask == 0 {
		// Single shard (single-P runtime): skip the shard hash entirely —
		// this keeps Add at the cost of one uncontended atomic add.
		c.shards[0].v.Add(n)
		return
	}
	c.shards[shardHint()&c.mask].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum across shards. Concurrent Adds may or may
// not be included; successive Values never decrease.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a last-value-wins instrument for levels (occupancy, queue depth)
// with sharded Add/Inc/Dec for concurrent up-down counting. Set overwrites
// the whole gauge; mixing Set with concurrent Add is approximate (a Set
// zeroes the other shards non-atomically), which is acceptable for the
// sampled occupancy gauges it exists for. The zero value is not usable.
type Gauge struct {
	shards []paddedI64
	mask   uint64
}

// NewGauge builds a standalone gauge.
func NewGauge() *Gauge {
	return &Gauge{shards: make([]paddedI64, shardCount), mask: uint64(shardCount - 1)}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g.mask == 0 {
		g.shards[0].v.Add(delta)
		return
	}
	g.shards[shardHint()&g.mask].v.Add(delta)
}

// Inc increases the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decreases the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set overwrites the gauge with v.
func (g *Gauge) Set(v int64) {
	g.shards[0].v.Store(v)
	for i := 1; i < len(g.shards); i++ {
		g.shards[i].v.Store(0)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	var sum int64
	for i := range g.shards {
		sum += g.shards[i].v.Load()
	}
	return sum
}
