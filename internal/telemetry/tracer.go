package telemetry

import (
	"fmt"
	"sync"
)

// EventKind classifies a lifecycle event.
type EventKind uint8

// Lifecycle event kinds: segment-reservation setup/renewal/activation, EER
// setup/renewal/expiry, data-plane drop verdicts, and best-effort
// demotion/re-promotion of flows whose renewal failed/recovered.
const (
	EvSegSetup EventKind = iota + 1
	EvSegRenew
	EvSegActivate
	EvEESetup
	EvEERenew
	EvEEExpire
	EvDrop
	EvDemote
	EvPromote
)

func (k EventKind) String() string {
	switch k {
	case EvSegSetup:
		return "seg-setup"
	case EvSegRenew:
		return "seg-renew"
	case EvSegActivate:
		return "seg-activate"
	case EvEESetup:
		return "ee-setup"
	case EvEERenew:
		return "ee-renew"
	case EvEEExpire:
		return "ee-expire"
	case EvDrop:
		return "drop"
	case EvDemote:
		return "demote"
	case EvPromote:
		return "promote"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle event.
type Event struct {
	// Seq numbers events in recording order (1-based, monotone per tracer).
	Seq uint64 `json:"seq"`
	// TimeNs is the caller-supplied timestamp (virtual or wall clock).
	TimeNs int64 `json:"time_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Res names the reservation involved ("" when not applicable).
	Res string `json:"res,omitempty"`
	// OK is the outcome (true for successful setups/renewals; false for
	// failures and drops).
	OK bool `json:"ok"`
	// Detail carries a failure reason or drop verdict.
	Detail string `json:"detail,omitempty"`
}

func (e Event) String() string {
	out := fmt.Sprintf("#%d t=%dns %s", e.Seq, e.TimeNs, e.Kind)
	if e.Res != "" {
		out += " " + e.Res
	}
	if e.OK {
		out += " ok"
	} else {
		out += " FAIL"
	}
	if e.Detail != "" {
		out += " (" + e.Detail + ")"
	}
	return out
}

// Tracer is a fixed-capacity ring buffer of lifecycle events: recording
// never allocates after construction and old events are overwritten, so a
// tracer can stay attached to a long-running service at constant memory.
// Lifecycle events are control-plane-rate (setups, renewals, drops), so a
// mutex — not sharding — guards the ring. Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// DefaultTraceCap is the ring capacity used when a caller passes 0.
const DefaultTraceCap = 256

// NewTracer builds a tracer holding the last capacity events (0 →
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(nowNs int64, kind EventKind, res string, ok bool, detail string) {
	t.mu.Lock()
	t.total++
	t.buf[(t.total-1)%uint64(len(t.buf))] = Event{
		Seq: t.total, TimeNs: nowNs, Kind: kind, Res: res, OK: ok, Detail: detail,
	}
	t.mu.Unlock()
}

// Total returns how many events were ever recorded.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capacity := uint64(len(t.buf))
	if n > capacity {
		n = capacity
	}
	out := make([]Event, 0, n)
	start := t.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.buf[(start+i)%capacity])
	}
	return out
}
