package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// TestHistogramBucketBoundaries pins the bucket mapping: bucket 0 is v ≤ 0,
// bucket i covers [2^(i-1), 2^i).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1025, 11}, {1 << 40, 41}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	h := NewHistogram()
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(1024)
	s := h.Snapshot()
	if s.Count != 4 || s.Buckets[0] != 1 || s.Buckets[1] != 2 || s.Buckets[11] != 1 {
		t.Fatalf("unexpected snapshot %+v", s)
	}
	if s.Sum != 1026 || s.Max != 1024 {
		t.Fatalf("sum/max = %d/%d, want 1026/1024", s.Sum, s.Max)
	}
}

// TestHistogramQuantileOracle (testing/quick) checks every estimated
// quantile against a sorted-sample oracle: the estimate must fall within
// the log₂ bucket of the true sample quantile (the histogram's guaranteed
// resolution), and p0 ≤ p50 ≤ p100.
func TestHistogramQuantileOracle(t *testing.T) {
	property := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%512) + 1
		h := NewHistogram()
		samples := make([]int64, n)
		for i := range samples {
			// Mix scales so several buckets fill.
			v := rng.Int63n(1 << uint(1+rng.Intn(30)))
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		qs := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
		prev := -1.0
		for _, q := range qs {
			est := s.Quantile(q)
			if est < prev {
				t.Logf("quantiles not monotone: q=%v est=%v prev=%v", q, est, prev)
				return false
			}
			prev = est
			// Oracle: the true sample at rank ceil(q·n).
			rank := int(q*float64(n)+0.9999999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			truth := samples[rank]
			b := bucketOf(truth)
			var lo, hi float64
			if b == 0 {
				lo, hi = 0, 0
			} else {
				lo = float64(uint64(1) << (b - 1))
				hi = lo * 2
			}
			if est < lo || est > hi {
				t.Logf("q=%v: est %v outside bucket [%v,%v] of true %d", q, est, lo, hi, truth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeSubAssociative checks the snapshot algebra: Merge is
// associative and commutative, and Sub undoes Merge.
func TestHistogramMergeSubAssociative(t *testing.T) {
	mk := func(seed int64, n int) HistSnapshot {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1 << 20))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 100), mk(2, 57), mk(3, 211)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left != right {
		t.Fatal("Merge is not associative")
	}
	if a.Merge(b) != b.Merge(a) {
		t.Fatal("Merge is not commutative")
	}
	undone := a.Merge(b).Sub(a)
	// Sub keeps the merged Max (documented); compare the rest.
	undone.Max = b.Max
	if undone != b {
		t.Fatalf("Sub did not undo Merge:\n got %+v\nwant %+v", undone, b)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 5_000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(int64(i*per + j))
			}
		}(i)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != workers*per-1 {
		t.Fatalf("Max = %d, want %d", s.Max, workers*per-1)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}
