package telemetry

import "sync"

// Registry owns the named instruments of one component (conventionally one
// per AS, labelled by its IA). Lookup is get-or-create and cheap enough for
// setup paths; hot paths should nevertheless capture the returned pointer
// once rather than re-resolving the name per event. Safe for concurrent use.
type Registry struct {
	label string

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracers  map[string]*Tracer
}

// NewRegistry builds an empty registry with a display label.
func NewRegistry(label string) *Registry {
	return &Registry{
		label:    label,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracers:  make(map[string]*Tracer),
	}
}

// Label returns the registry's display label.
func (r *Registry) Label() string { return r.label }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Tracer returns the named tracer, creating it with the given ring capacity
// (0 → DefaultTraceCap) on first use; the capacity of an existing tracer is
// not changed.
func (r *Registry) Tracer(name string, capacity int) *Tracer {
	r.mu.RLock()
	t, ok := r.tracers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.tracers[name]; !ok {
		t = NewTracer(capacity)
		r.tracers[name] = t
	}
	return t
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Label      string                  `json:"label"`
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Traces     map[string][]Event      `json:"traces,omitempty"`
}

// Snapshot captures all instruments. Instruments created concurrently with
// the call may or may not be included.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Label:      r.label,
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Traces:     make(map[string][]Event, len(r.tracers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, t := range r.tracers {
		s.Traces[name] = t.Events()
	}
	return s
}

// Diff returns the activity between prev and s (two snapshots of the same
// registry, prev taken earlier): counters and histograms are subtracted,
// gauges keep their current level, and traces keep only events recorded
// after prev.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Label:      s.Label,
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
		Traces:     make(map[string][]Event, len(s.Traces)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - min(v, prev.Counters[name])
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	for name, evs := range s.Traces {
		var lastSeen uint64
		if p := prev.Traces[name]; len(p) > 0 {
			lastSeen = p[len(p)-1].Seq
		}
		kept := make([]Event, 0, len(evs))
		for _, e := range evs {
			if e.Seq > lastSeen {
				kept = append(kept, e)
			}
		}
		out.Traces[name] = kept
	}
	return out
}
