package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry("as 1-11")
	if r.Label() != "as 1-11" {
		t.Fatalf("Label = %q", r.Label())
	}
	c1 := r.Counter("router.processed")
	c2 := r.Counter("router.processed")
	if c1 != c2 {
		t.Fatal("Counter lookup is not stable")
	}
	if r.Gauge("gw.resident") != r.Gauge("gw.resident") {
		t.Fatal("Gauge lookup is not stable")
	}
	if r.Histogram("gw.hvf_ns") != r.Histogram("gw.hvf_ns") {
		t.Fatal("Histogram lookup is not stable")
	}
	if r.Tracer("lifecycle", 16) != r.Tracer("lifecycle", 32) {
		t.Fatal("Tracer lookup is not stable")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry("x")
	c := r.Counter("events")
	g := r.Gauge("level")
	h := r.Histogram("lat")
	tr := r.Tracer("trace", 8)

	c.Add(10)
	g.Set(3)
	h.Observe(100)
	tr.Record(1, EvSegSetup, "a", true, "")
	before := r.Snapshot()

	c.Add(5)
	g.Set(7)
	h.Observe(200)
	h.Observe(300)
	tr.Record(2, EvSegRenew, "a", true, "")
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counters["events"] != 5 {
		t.Fatalf("diff counter = %d, want 5", d.Counters["events"])
	}
	if d.Gauges["level"] != 7 {
		t.Fatalf("diff gauge = %d, want current level 7", d.Gauges["level"])
	}
	if d.Histograms["lat"].Count != 2 {
		t.Fatalf("diff histogram count = %d, want 2", d.Histograms["lat"].Count)
	}
	if len(d.Traces["trace"]) != 1 || d.Traces["trace"][0].Kind != EvSegRenew {
		t.Fatalf("diff trace = %+v", d.Traces["trace"])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry("as 2-11")
	r.Counter("drops").Add(3)
	r.Histogram("sz").Observe(512)
	r.Tracer("lc", 4).Record(9, EvEESetup, "2-11/7", false, "rate limited")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back.Label != "as 2-11" || back.Counters["drops"] != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Histograms["sz"].Count != 1 || back.Traces["lc"][0].Detail != "rate limited" {
		t.Fatalf("round trip lost data: %+v", back)
	}

	// Multiple snapshots encode as an array.
	buf.Reset()
	if err := WriteJSON(&buf, r.Snapshot(), r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var many []Snapshot
	if err := json.Unmarshal(buf.Bytes(), &many); err != nil || len(many) != 2 {
		t.Fatalf("array round trip: err=%v n=%d", err, len(many))
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry("as 1-2")
	r.Counter("router.drop.bad_hvf").Add(12)
	r.Counter("router.drop.stale") // zero: must be skipped
	r.Gauge("monitor.flows").Set(4)
	for i := int64(1); i <= 100; i++ {
		r.Histogram("gateway.hvf_ns").Observe(i * 10)
	}
	r.Tracer("cserv.lifecycle", 8).Record(42, EvSegActivate, "1-2/1", true, "")
	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"telemetry: as 1-2",
		"router.drop.bad_hvf",
		"monitor.flows",
		"gateway.hvf_ns",
		"count=100",
		"seg-activate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "router.drop.stale") {
		t.Errorf("zero counter should be skipped:\n%s", out)
	}
}
