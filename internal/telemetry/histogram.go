package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumHistBuckets is the number of log₂ buckets: bucket 0 holds values ≤ 0,
// bucket i (1 ≤ i ≤ 64) holds values in [2^(i-1), 2^i).
const NumHistBuckets = 65

// histShard is one shard's bucket array plus sum and max. Shards are
// separate array elements of >8 cache lines each, so two goroutines on
// different shards touch disjoint lines with high probability.
type histShard struct {
	buckets [NumHistBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	_       [40]byte // round the shard up to a cache-line multiple
}

// Histogram is a log₂-bucketed distribution of non-negative int64 values
// (latency nanoseconds, packet sizes). Observing costs two atomic adds plus
// a read-mostly max update; quantiles are interpolated from the buckets at
// snapshot time. The zero value is not usable; create with NewHistogram or
// Registry.Histogram.
type Histogram struct {
	shards []histShard
	mask   uint64
}

// NewHistogram builds a standalone histogram.
func NewHistogram() *Histogram {
	return &Histogram{shards: make([]histShard, shardCount), mask: uint64(shardCount - 1)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Negative values count as 0.
func (h *Histogram) Observe(v int64) {
	s := &h.shards[0]
	if h.mask != 0 {
		s = &h.shards[shardHint()&h.mask]
	}
	s.buckets[bucketOf(v)].Add(1)
	if v > 0 {
		s.sum.Add(uint64(v))
		for {
			cur := s.max.Load()
			if uint64(v) <= cur || s.max.CompareAndSwap(cur, uint64(v)) {
				break
			}
		}
	}
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumHistBuckets; b++ {
			n := sh.buckets[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Snapshots form a
// commutative monoid under Merge; Sub undoes a Merge (used by Snapshot.Diff
// to express "what happened between two snapshots").
type HistSnapshot struct {
	Count   uint64                 `json:"count"`
	Sum     uint64                 `json:"sum"`
	Max     uint64                 `json:"max"`
	Buckets [NumHistBuckets]uint64 `json:"buckets"`
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation inside the containing log₂ bucket. The estimate is always
// within the true sample's bucket bounds, i.e. off by at most a factor of 2.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: ceil(q·n), at least 1.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumHistBuckets; b++ {
		n := s.Buckets[b]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << (b - 1))
			hi := lo * 2
			if s.Max > 0 && float64(s.Max) >= lo && float64(s.Max) < hi {
				// The global max lives in this bucket: tighten the upper edge.
				hi = float64(s.Max)
			}
			frac := float64(rank-cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(s.Max)
}

// Merge returns the element-wise sum of two snapshots (as if all samples
// had been observed by one histogram; Max is the larger of the two).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for b := range out.Buckets {
		out.Buckets[b] += o.Buckets[b]
	}
	return out
}

// Sub returns the samples present in s but not in prev, assuming prev is an
// earlier snapshot of the same histogram. Max cannot be un-merged and is
// carried over from s.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := s
	out.Count -= min(out.Count, prev.Count)
	out.Sum -= min(out.Sum, prev.Sum)
	for b := range out.Buckets {
		out.Buckets[b] -= min(out.Buckets[b], prev.Buckets[b])
	}
	return out
}
