package cserv

import (
	"sync"
	"testing"

	"colibri/internal/admission"
	"colibri/internal/topology"
)

// TestCPlaneTickRenewRace runs Tick expiry concurrently with RenewBatch
// waves — under -race this proves the shard mutexes cover everything the two
// paths share (the static shardown/atomics invariants cross-checked
// dynamically). The clock advances from the ticking goroutine, so renewals
// race against genuine expiries: an individual renewal may fail when Tick
// reaped its record first, but the engine must stay consistent — no renewal
// may both succeed and leave a reaped record, and counts must reconcile at
// the end.
func TestCPlaneTickRenewRace(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 4, admission.ImplRestree, clk)

	const nSeg = 64
	items := make([]EERRenewal, 0, nSeg)
	for i := uint32(0); i < nSeg; i++ {
		req := segReq(i, topology.ASID(10+i%7), topology.IfID(1+i%4), topology.IfID(1+(i+1)%4), 2_000)
		if _, err := cp.AddSegR(req); err != nil {
			t.Fatal(err)
		}
		if err := cp.SetupEER(eid(i), req.ID, 500, clk.now()+8); err != nil {
			t.Fatal(err)
		}
		items = append(items, EERRenewal{EER: eid(i), Seg: req.ID, BwKbps: 500, ExpT: 0})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.step(1)
			cp.Tick()
			cp.Counts()
		}
	}()

	results := make([]RenewResult, len(items))
	for wave := 0; wave < 200; wave++ {
		now := clk.now()
		for i := range items {
			items[i].ExpT = now + 8
		}
		cp.RenewBatch(items, results)
		for i, r := range results {
			// A renewal may fail when the ticking goroutine reaped the
			// record first; a success must report the granted bandwidth.
			if r.Err == nil && r.Granted == 0 {
				t.Fatalf("wave %d renewal %d: success with zero grant", wave, i)
			}
		}
	}
	close(stop)
	wg.Wait()

	cp.Tick()
	ct := cp.Counts()
	if ct.SegRs != nSeg {
		t.Fatalf("SegRs = %d after the run, want %d (segment reservations never expire here)", ct.SegRs, nSeg)
	}
	if ct.EERs < 0 || ct.EERs > nSeg {
		t.Fatalf("EERs = %d out of range [0,%d]", ct.EERs, nSeg)
	}
}
