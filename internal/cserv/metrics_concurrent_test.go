package cserv

import (
	"sync"
	"testing"
)

// TestMetricsSnapshotConcurrent runs incrementers against snapshotters
// (run with -race): every observed snapshot must be monotone per field,
// and the final state exact.
func TestMetricsSnapshotConcurrent(t *testing.T) {
	var m Metrics
	m.init("test", nil)

	const incrementers = 4
	const perGoroutine = 5000

	var writersWG sync.WaitGroup
	for g := 0; g < incrementers; g++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perGoroutine; i++ {
				m.SegSetupOK.Add(1)
				m.EESetupOK.Add(1)
				m.AuthFailures.Add(1)
			}
		}()
	}

	stop := make(chan struct{})
	var readersWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			var last MetricsSnapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if s.SegSetupOK < last.SegSetupOK ||
					s.EESetupOK < last.EESetupOK ||
					s.AuthFailures < last.AuthFailures {
					t.Errorf("snapshot went backwards: %+v after %+v", s, last)
					return
				}
				last = s
			}
		}()
	}

	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	want := uint64(incrementers * perGoroutine)
	s := m.Snapshot()
	if s.SegSetupOK != want || s.EESetupOK != want || s.AuthFailures != want {
		t.Errorf("final snapshot %+v, want %d in each incremented field", s, want)
	}
	if s.SegRenewFail != 0 || s.RateLimited != 0 {
		t.Errorf("untouched counters nonzero: %+v", s)
	}
}
