package cserv

import (
	"encoding/binary"
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

// Down-segment reservation requests (§3.3): "SegRs are always initiated by
// the first AS on the segment. For down-SegRs, the first AS only sets up a
// SegR upon an explicit request by the last AS." The last AS (the leaf that
// wants to be reachable) sends a DownSegReq to the core AS at the segment's
// head, which — subject to its own policy — initiates the setup.

const tagDownReq = 6

// DownSegReq asks the AS at the head of seg to initiate a down-SegR.
type DownSegReq struct {
	// Requester is the last AS of the segment (the beneficiary).
	Requester topology.IA
	// Seg is the requested down-segment, head first.
	Seg     []PathHop
	MinKbps uint64
	MaxKbps uint64
	// Mac authenticates the body with K_{head→Requester}.
	Mac [cryptoutil.MACSize]byte
}

// Body returns the MAC-covered canonical encoding.
func (r *DownSegReq) Body() []byte {
	b := []byte{tagDownReq}
	b = binary.BigEndian.AppendUint64(b, uint64(r.Requester))
	b = appendHops(b, r.Seg)
	b = binary.BigEndian.AppendUint64(b, r.MinKbps)
	b = binary.BigEndian.AppendUint64(b, r.MaxKbps)
	return b
}

// Marshal appends the MAC to the body.
func (r *DownSegReq) Marshal() []byte { return append(r.Body(), r.Mac[:]...) }

// UnmarshalDownSegReq parses a DownSegReq.
func UnmarshalDownSegReq(data []byte) (*DownSegReq, error) {
	d := decoder{buf: data}
	if d.u8() != tagDownReq {
		return nil, ErrBadTag
	}
	r := &DownSegReq{}
	r.Requester = topology.IA(d.u64())
	r.Seg = d.hops()
	r.MinKbps = d.u64()
	r.MaxKbps = d.u64()
	d.bytes(r.Mac[:])
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// RequestDownSegment (called at the segment's *last* AS) asks the head AS
// to initiate a down-SegR over the given segment. On success the head AS
// has registered the new SegR in the directory, where this AS's hosts will
// find it.
func (s *Service) RequestDownSegment(seg *segment.Segment, minKbps, maxKbps uint64) error {
	if seg.Type != segment.Down {
		return fmt.Errorf("cserv: RequestDownSegment needs a down-segment, got %v", seg.Type)
	}
	if seg.DstIA() != s.ia {
		return fmt.Errorf("cserv: down-segment ends at %s, not at this AS %s", seg.DstIA(), s.ia)
	}
	head := seg.SrcIA()
	req := &DownSegReq{
		Requester: s.ia,
		Seg:       HopsFromSegment(seg),
		MinKbps:   minKbps,
		MaxKbps:   maxKbps,
	}
	key, err := s.keys.Get(head, s.clock())
	if err != nil {
		return err
	}
	cryptoutil.MustCMAC(key).SumInto(&req.Mac, req.Body())
	data, err := s.transport.Call(head, req.Marshal())
	if err != nil {
		return err
	}
	resp, err := UnmarshalSegSetupResp(data)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%w: down-SegR refused at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
	}
	return nil
}

// handleDownReq processes a DownSegReq at the segment's head AS.
func (s *Service) handleDownReq(req *DownSegReq) *SegSetupResp {
	fail := func(format string, args ...any) *SegSetupResp {
		return &SegSetupResp{Reason: fmt.Sprintf(format, args...)}
	}
	if len(req.Seg) < 2 || req.Seg[0].IA != s.ia {
		return fail("segment does not start at this AS")
	}
	if req.Seg[len(req.Seg)-1].IA != req.Requester {
		return fail("requester %s is not the segment's last AS", req.Requester)
	}
	// Authenticate the requester with the on-the-fly key K_{me→Requester}.
	key, _ := s.engine.Level1(req.Requester, s.clock())
	var want [cryptoutil.MACSize]byte
	cryptoutil.MustCMAC(key).SumInto(&want, req.Body())
	if !cryptoutil.ConstantTimeEqual(want[:], req.Mac[:]) {
		return fail("authentication failed")
	}
	if !s.rate.Allow(req.Requester, s.clock()) {
		return fail("rate limited")
	}
	hops := make([]segment.Hop, len(req.Seg))
	for i, h := range req.Seg {
		hops[i] = segment.Hop{IA: h.IA, In: h.In, Eg: h.Eg}
	}
	seg := &segment.Segment{Type: segment.Down, Hops: hops}
	segr, err := s.SetupSegment(seg, req.MinKbps, req.MaxKbps)
	if err != nil {
		return fail("setup: %v", err)
	}
	return &SegSetupResp{OK: true, FinalKbps: segr.Active.BwKbps}
}
