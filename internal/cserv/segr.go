package cserv

import (
	"fmt"

	"colibri/internal/admission"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/telemetry"
)

// SetupSegment initiates a segment reservation over the given discovered
// segment (§3.3, Fig. 1a): the request chains through the on-path CServs,
// each performing the bounded-tube-fairness admission, and the response
// carries the final grant and the per-AS SegR tokens back. On success the
// reservation is stored locally (with segment and tokens) and registered in
// the directory.
func (s *Service) SetupSegment(seg *segment.Segment, minKbps, maxKbps uint64) (*reservation.SegR, error) {
	if seg.SrcIA() != s.ia {
		return nil, fmt.Errorf("cserv: segment starts at %s, not at this AS %s", seg.SrcIA(), s.ia)
	}
	now := s.clock()
	req := &SegSetupReq{
		ID:      s.store.NextID(),
		SegType: seg.Type,
		Path:    HopsFromSegment(seg),
		MinKbps: minKbps,
		MaxKbps: maxKbps,
		ExpT:    now + reservation.SegRLifetimeSeconds,
		Ver:     1,
	}
	macs, err := s.computeMacs(req.Path, req.Body())
	if err != nil {
		return nil, err
	}
	req.Macs = macs
	resp := s.processSegSetup(req, 0, maxKbps)
	if !resp.OK {
		return nil, fmt.Errorf("%w: SegR setup failed at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
	}
	segr, err := s.store.GetSegR(req.ID)
	if err != nil {
		return nil, err
	}
	segr.Seg = seg
	segr.Tokens = resp.Tokens
	if s.dir != nil {
		s.dir.Register(&Offer{
			ID:   req.ID,
			Seg:  seg,
			Bw:   resp.FinalKbps,
			ExpT: req.ExpT,
		})
	}
	return segr, nil
}

// RenewSegment renews an existing locally initiated SegR: the new version
// becomes pending at every on-path AS and must be activated explicitly with
// ActivateSegment (§4.2).
func (s *Service) RenewSegment(id reservation.ID, minKbps, maxKbps uint64) (uint16, uint64, error) {
	segr, err := s.store.GetSegR(id)
	if err != nil {
		return 0, 0, err
	}
	if segr.Seg == nil {
		return 0, 0, fmt.Errorf("cserv: SegR %s was not initiated here", id)
	}
	now := s.clock()
	newVer := segr.Active.Ver + 1
	if segr.Pending != nil && segr.Pending.Ver >= newVer {
		newVer = segr.Pending.Ver + 1
	}
	req := &SegSetupReq{
		ID:      id,
		SegType: segr.SegType,
		Path:    HopsFromSegment(segr.Seg),
		MinKbps: minKbps,
		MaxKbps: maxKbps,
		ExpT:    now + reservation.SegRLifetimeSeconds,
		Ver:     newVer,
		Renewal: true,
	}
	macs, err := s.computeMacs(req.Path, req.Body())
	if err != nil {
		return 0, 0, err
	}
	req.Macs = macs
	resp := s.processSegSetup(req, 0, maxKbps)
	if !resp.OK {
		return 0, 0, fmt.Errorf("%w: SegR renewal failed at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
	}
	return newVer, resp.FinalKbps, nil
}

// ActivateSegment switches a locally initiated SegR to its pending version
// at every on-path AS.
func (s *Service) ActivateSegment(id reservation.ID, ver uint16) error {
	segr, err := s.store.GetSegR(id)
	if err != nil {
		return err
	}
	if segr.Seg == nil {
		return fmt.Errorf("cserv: SegR %s was not initiated here", id)
	}
	req := &SegActivateReq{ID: id, Ver: ver, Path: HopsFromSegment(segr.Seg)}
	macs, err := s.computeMacs(req.Path, req.Body())
	if err != nil {
		return err
	}
	req.Macs = macs
	resp := s.processSegActivate(req, 0)
	if !resp.OK {
		return fmt.Errorf("%w: activation failed at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
	}
	// Refresh the directory offer with the now-active bandwidth.
	if s.dir != nil {
		if cur, err := s.store.GetSegR(id); err == nil {
			s.dir.Register(&Offer{ID: id, Seg: segr.Seg, Bw: cur.Active.BwKbps, ExpT: cur.Active.ExpT})
		}
	}
	return nil
}

// processSegSetup handles a setup/renewal request at hop idx: verify, rate
// limit, admit, forward, and on the unwinding response pass confirm (and
// compute the Eq. 3 token) or roll back.
func (s *Service) processSegSetup(req *SegSetupReq, idx int, accum uint64) (resp_ *SegSetupResp) {
	defer func() {
		kind := telemetry.EvSegSetup
		switch {
		case resp_.OK && req.Renewal:
			s.metrics.SegRenewOK.Add(1)
			kind = telemetry.EvSegRenew
		case resp_.OK:
			s.metrics.SegSetupOK.Add(1)
		case req.Renewal:
			s.metrics.SegRenewFail.Add(1)
			kind = telemetry.EvSegRenew
		default:
			s.metrics.SegSetupFail.Add(1)
		}
		s.metrics.Trace(int64(s.clock())*1e9, kind, req.ID.String(), resp_.OK, resp_.Reason)
	}()
	fail := func(format string, args ...any) *SegSetupResp {
		return &SegSetupResp{FailedAt: uint8(idx), Reason: fmt.Sprintf(format, args...)}
	}
	if idx > 0 { // the initiator trusts itself
		if err := s.verifySourceMac(req.ID.SrcAS, req.Body(), req.Macs, idx); err != nil {
			s.metrics.AuthFailures.Add(1)
			return fail("authentication: %v", err)
		}
		if !s.rate.Allow(req.ID.SrcAS, s.clock()) {
			s.metrics.RateLimited.Add(1)
			return fail("rate limited")
		}
	}
	hop := req.Path[idx]
	admReq := admission.Request{
		ID:      req.ID,
		Src:     req.ID.SrcAS,
		In:      hop.In,
		Eg:      hop.Eg,
		MinKbps: req.MinKbps,
		MaxKbps: req.MaxKbps,
		// The validity window lets time-aware implementations (restree)
		// expire the reservation on their own; the memoized default ignores
		// it and relies on Tick's explicit release.
		ExpT: req.ExpT,
	}

	// Idempotent retry detection: a lost response leaves every hop
	// downstream of the loss committed, so a retried request (same ID and
	// Ver — the idempotency key — with the same expiry) finds its own
	// state here. Answer from that state instead of admitting again:
	// re-running admission on a retry would double-count the reservation.
	// dupActive additionally marks a renewal whose version was already
	// activated (response of the activation round lost), where re-creating
	// a pending version would regress the switch.
	var dup, dupActive bool
	var grant uint64
	if existing, gerr := s.store.GetSegR(req.ID); gerr == nil {
		switch {
		case req.Renewal && existing.Pending != nil && existing.Pending.Ver == req.Ver && existing.Pending.ExpT == req.ExpT:
			dup, grant = true, existing.Pending.BwKbps
		case req.Renewal && existing.Active.Ver == req.Ver && existing.Active.ExpT == req.ExpT:
			dup, dupActive, grant = true, true, existing.Active.BwKbps
		case !req.Renewal && existing.Active.Ver == req.Ver && existing.Active.ExpT == req.ExpT:
			dup, grant = true, existing.Active.BwKbps
		}
	}
	var undoRenew func()
	var err error
	if dup {
		s.metrics.DedupHits.Add(1)
	} else if req.Renewal {
		grant, undoRenew, err = s.renewSegR(admReq)
	} else {
		grant, err = s.admitSegR(admReq)
	}
	if err != nil {
		s.metrics.AdmReject.Add(1)
		if req.Renewal {
			// RenewSegRWithUndo restored the pre-renewal snapshot: the flow
			// falls back to its still-active old version.
			s.metrics.AdmFallback.Add(1)
		}
		return fail("admission: %v", err)
	}
	rollback := func() {
		if dup {
			// Retried request over committed state: keep it; the original
			// round owns its lifecycle.
			return
		}
		if req.Renewal {
			if undoRenew != nil {
				undoRenew()
			}
		} else {
			s.abortSegR(req.ID)
			s.store.DeleteSegR(req.ID)
		}
	}
	if grant < accum {
		accum = grant
	}
	if !req.Renewal && !dup {
		segr := &reservation.SegR{
			ID:      req.ID,
			SegType: req.SegType,
			In:      hop.In,
			Eg:      hop.Eg,
			MinKbps: req.MinKbps,
			Active:  reservation.Version{Ver: req.Ver, BwKbps: grant, ExpT: req.ExpT},
		}
		if err := s.store.AddSegR(segr); err != nil {
			s.abortSegR(req.ID)
			return fail("store: %v", err)
		}
	}

	var resp *SegSetupResp
	if idx == len(req.Path)-1 {
		resp = &SegSetupResp{
			OK:        true,
			FinalKbps: accum,
			Tokens:    make([][packet.HVFLen]byte, len(req.Path)),
		}
	} else {
		resp = s.forwardSegSetup(req, idx, accum)
	}
	if !resp.OK {
		rollback()
		return resp
	}

	// Response pass: fix the final grant locally and add our token.
	final := resp.FinalKbps
	if dupActive {
		// Version already activated by the original round; nothing to
		// re-record.
	} else if req.Renewal {
		if err := s.store.SetPending(req.ID, reservation.Version{Ver: req.Ver, BwKbps: final, ExpT: req.ExpT}); err != nil {
			rollback()
			return fail("pending: %v", err)
		}
	} else {
		if err := s.store.ConfirmSegR(req.ID, final); err != nil {
			rollback()
			return fail("confirm: %v", err)
		}
	}
	if err := s.adjustSegR(req.ID, final); err != nil {
		rollback()
		return fail("adjust: %v", err)
	}
	res := &packet.ResInfo{
		SrcAS:  req.ID.SrcAS,
		ResID:  req.ID.Num,
		BwKbps: uint32(final),
		ExpT:   req.ExpT,
		Ver:    req.Ver,
	}
	resp.Tokens[idx] = s.segToken(res, packet.HopField{In: hop.In, Eg: hop.Eg})
	return resp
}

// forwardSegSetup sends the request to the next on-path CServ.
func (s *Service) forwardSegSetup(req *SegSetupReq, idx int, accum uint64) *SegSetupResp {
	next := req.Path[idx+1].IA
	fwd := *req
	fwd.AccumKbps = accum
	data, err := s.transport.Call(next, fwd.Marshal())
	if err != nil {
		return &SegSetupResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("transport: %v", err)}
	}
	resp, err := UnmarshalSegSetupResp(data)
	if err != nil {
		return &SegSetupResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("response: %v", err)}
	}
	return resp
}

// processSegActivate handles an activation request at hop idx.
func (s *Service) processSegActivate(req *SegActivateReq, idx int) *SegSetupResp {
	fail := func(format string, args ...any) *SegSetupResp {
		return &SegSetupResp{FailedAt: uint8(idx), Reason: fmt.Sprintf(format, args...)}
	}
	if idx > 0 {
		if err := s.verifySourceMac(req.ID.SrcAS, req.Body(), req.Macs, idx); err != nil {
			return fail("authentication: %v", err)
		}
		if !s.rate.Allow(req.ID.SrcAS, s.clock()) {
			return fail("rate limited")
		}
	}
	segr, err := s.store.GetSegR(req.ID)
	if err != nil {
		return fail("lookup: %v", err)
	}
	if segr.Active.Ver == req.Ver {
		// Retried activation: this hop already switched, and because each
		// hop commits only after its downstream forward succeeded, every
		// hop after us is active too — answer OK without forwarding.
		s.metrics.DedupHits.Add(1)
		return &SegSetupResp{OK: true, FinalKbps: segr.Active.BwKbps}
	}
	if segr.Pending == nil || segr.Pending.Ver != req.Ver {
		return fail("no pending version %d", req.Ver)
	}
	// Refuse before forwarding if the switch would over-allocate locally, so
	// downstream ASes are never activated ahead of a doomed local switch. In
	// CPlane mode the EER demand lives in the per-SegR ledger, not the store.
	allocated := segr.AllocatedEERKbps
	if s.cp != nil {
		if m, ok := s.cp.SegDemandMax(req.ID); ok {
			allocated = m
		}
	}
	if segr.Pending.BwKbps < allocated {
		return fail("pending version %d (%d kbps) below allocated EER bandwidth (%d kbps)",
			req.Ver, segr.Pending.BwKbps, allocated)
	}
	if idx < len(req.Path)-1 {
		next := req.Path[idx+1].IA
		data, err := s.transport.Call(next, req.Marshal())
		if err != nil {
			return fail("transport: %v", err)
		}
		resp, err := UnmarshalSegSetupResp(data)
		if err != nil {
			return fail("response: %v", err)
		}
		if !resp.OK {
			return resp
		}
	}
	if err := s.store.ActivatePending(req.ID); err != nil {
		return fail("activate: %v", err)
	}
	s.metrics.SegActivate.Add(1)
	s.metrics.Trace(int64(s.clock())*1e9, telemetry.EvSegActivate, req.ID.String(), true, "")
	return &SegSetupResp{OK: true, FinalKbps: segr.Active.BwKbps}
}
