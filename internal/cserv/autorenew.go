package cserv

import (
	"errors"
	"fmt"
	"sort"

	"colibri/internal/reservation"
)

// Forecast decides the bandwidth range for a SegR's next period, given its
// current grant — the hook for the traffic prediction of §3.2 ("since link
// utilization often exhibits repeating patterns over time, an AS can
// forecast future requirements and reserve appropriate bandwidth for
// segments in advance").
type Forecast func(id reservation.ID, currentKbps uint64) (minKbps, maxKbps uint64)

// SameBandwidth forecasts the current grant again.
func SameBandwidth(_ reservation.ID, current uint64) (uint64, uint64) {
	return 0, current
}

// ErrZeroGrant marks a renewal that technically succeeded but was granted
// zero bandwidth while the old version still had some: treating it as
// success would activate a worthless version, so AutoRenew keeps the old
// version instead and reports this error.
var ErrZeroGrant = errors.New("cserv: renewal granted zero bandwidth")

// AutoRenew renews and activates every locally initiated SegR whose active
// version expires within lead seconds, using the forecast (SameBandwidth if
// nil). It returns how many SegRs were renewed and the joined errors of the
// ones that failed; failed renewals keep their current version until expiry
// (§4.2's seamlessness applies: the old version serves until then) and are
// retried on the next pass: a pending version stranded by a failed
// activation is re-activated (or discarded when unusable) rather than
// blocking the SegR from due-selection forever.
func (s *Service) AutoRenew(lead uint32, f Forecast) (int, error) {
	if f == nil {
		f = SameBandwidth
	}
	now := s.clock()
	due := make([]*reservation.SegR, 0)
	for _, segr := range s.store.InitiatedSegRs() {
		if segr.Active.ExpT <= now+lead {
			due = append(due, segr)
		}
	}
	// Deterministic order for reproducible tests and fair bandwidth
	// contention across runs.
	sort.Slice(due, func(i, j int) bool { return due[i].ID.Num < due[j].ID.Num })

	renewed := 0
	var errs []error
	for _, segr := range due {
		if segr.Pending != nil {
			// A previous pass renewed but failed to activate. Retry the
			// activation if the pending version is worth activating;
			// otherwise discard it and renew afresh below.
			if segr.Pending.BwKbps > 0 && segr.Pending.ExpT > now {
				if err := s.ActivateSegment(segr.ID, segr.Pending.Ver); err != nil {
					errs = append(errs, fmt.Errorf("activate %s: %w", segr.ID, err))
					continue
				}
				renewed++
				continue
			}
			_ = s.store.ClearPending(segr.ID)
		}
		minK, maxK := f(segr.ID, segr.Active.BwKbps)
		ver, final, err := s.RenewSegment(segr.ID, minK, maxK)
		if err != nil {
			errs = append(errs, fmt.Errorf("renew %s: %w", segr.ID, err))
			continue
		}
		if final == 0 && segr.Active.BwKbps > 0 {
			// A zero-bandwidth grant for a version that had bandwidth is a
			// failed renewal, not a success (activating it would demote the
			// segment to nothing while claiming health). Keep the old
			// version, drop the dead pending, and retry next pass.
			_ = s.store.ClearPending(segr.ID)
			s.metrics.RenewZeroBw.Add(1)
			errs = append(errs, fmt.Errorf("renew %s: %w", segr.ID, ErrZeroGrant))
			continue
		}
		if err := s.ActivateSegment(segr.ID, ver); err != nil {
			errs = append(errs, fmt.Errorf("activate %s: %w", segr.ID, err))
			continue
		}
		renewed++
	}
	return renewed, errors.Join(errs...)
}
