package cserv

import (
	"bytes"
	"fmt"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// cpFabric builds a TwoISD fabric whose CServs run on a sharded CPlane.
func cpFabric(t testing.TB, shards int, mutate func(ia topology.IA, cfg *Config)) *fabric {
	return twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		cfg.CPlaneShards = shards
		if mutate != nil {
			mutate(iaKey, cfg)
		}
	})
}

// TestCPlaneLiveDifferential replays one operation sequence — EER setups up
// to oversubscription, then constant-bandwidth renewal waves — against a
// classic single-store fabric and a CPlane-backed one, and demands identical
// per-operation decisions: same grants, same refusals. The legacy store
// charges the max over versions (a same-bandwidth renewal has delta zero)
// and the CPlane replaces the version, so the two models must agree on this
// sequence exactly.
func TestCPlaneLiveDifferential(t *testing.T) {
	legacy := twoISDFabric(t, nil)
	cp := cpFabric(t, 1, nil)
	legacy.setupAllSegRs(t, 50_000)
	cp.setupAllSegRs(t, 50_000)

	type outcome struct {
		ok bool
		bw uint64
	}
	run := func(f *fabric) []outcome {
		src := f.services[ia(1, 11)]
		f.clock.Store(t0)
		var log []outcome
		var grants []*EERGrant
		// Ten 8 Mbps setups against 50 Mbps SegRs: six fit, four are refused.
		for i := uint32(0); i < 10; i++ {
			g, err := src.RequestEER(100+i, 200+i, ia(2, 11), 8_000)
			log = append(log, outcome{err == nil, grantBw(g)})
			if err == nil {
				grants = append(grants, g)
			}
		}
		// Three keep-alive waves at the same bandwidth, one second apart
		// (the per-EER renewal throttle allows one per second).
		for wave := 0; wave < 3; wave++ {
			f.clock.Store(t0 + 1 + uint32(wave))
			for i, g := range grants {
				ng, err := src.RenewEER(g, uint64(g.Res.BwKbps))
				log = append(log, outcome{err == nil, grantBw(ng)})
				if err == nil {
					grants[i] = ng
				}
			}
		}
		return log
	}

	lg, cg := run(legacy), run(cp)
	if len(lg) != len(cg) {
		t.Fatalf("operation counts diverge: legacy %d, cplane %d", len(lg), len(cg))
	}
	for i := range lg {
		if lg[i] != cg[i] {
			t.Errorf("op %d: legacy %+v, cplane %+v", i, lg[i], cg[i])
		}
	}
	// The workload must have exercised all three decision kinds: full grants
	// (the six fitting setups, and renewals — the transfer split credits the
	// replaced version's charge, so a keep-alive at the same bandwidth always
	// fits), refusals (the four oversubscribed setups), and partial renewal
	// grants: the first renewal wave lands while the split still carries the
	// whole wave's pre-renewal demand, so its first renewal is fair-share
	// capped to the remaining 2 Mbps (§4.2) and that flow keeps renewing at
	// the shrunk bandwidth in the later waves — 3 partials in 24 admissions.
	admitted, partial := 0, 0
	for _, o := range lg {
		if o.ok {
			admitted++
		}
		if o.ok && o.bw != 0 && o.bw != 8_000 {
			partial++
		}
	}
	if admitted != 24 || partial != 3 {
		t.Errorf("admitted %d of %d operations (%d partial), want 24 (3 partial)", admitted, len(lg), partial)
	}
}

func grantBw(g *EERGrant) uint64 {
	if g == nil {
		return 0
	}
	return uint64(g.Res.BwKbps)
}

// TestCPlaneLiveNoOverAdmission drives a multi-shard CPlane fabric into
// oversubscription and checks the aggregate invariant: at every AS, the
// maximum EER demand charged to a SegR never exceeds the SegR's own active
// bandwidth, even though the capacity is split across shards.
func TestCPlaneLiveNoOverAdmission(t *testing.T) {
	f := cpFabric(t, 4, nil)
	up, core, down := f.setupAllSegRs(t, 50_000)
	src := f.services[ia(1, 11)]
	admitted := 0
	for i := uint32(0); i < 40; i++ {
		if _, err := src.RequestEER(100+i, 200+i, ia(2, 11), 3_000); err == nil {
			admitted++
		}
	}
	if admitted == 0 || admitted > 16 {
		t.Fatalf("admitted %d 3 Mbps EERs against 50 Mbps SegRs", admitted)
	}
	for _, iaKey := range f.topo.SortedIAs() {
		svc := f.services[iaKey]
		for _, segr := range []*reservation.SegR{up, core, down} {
			m, ok := svc.CPlane().SegDemandMax(segr.ID)
			if !ok {
				continue // this AS is not on that SegR's path
			}
			if m > segr.Active.BwKbps {
				t.Errorf("AS %s over-admitted SegR %s: demand %d > active %d",
					iaKey, segr.ID, m, segr.Active.BwKbps)
			}
		}
	}
}

// TestEEBatchRenewWire round-trips the batch request and response encodings.
func TestEEBatchRenewWire(t *testing.T) {
	req := &EEBatchRenewReq{
		SegIDs: []reservation.ID{{SrcAS: ia(1, 11), Num: 7}, {SrcAS: ia(1, 1), Num: 9}},
		Splits: []uint8{2},
		Path: []PathHop{
			{IA: ia(1, 11), In: 0, Eg: 1}, {IA: ia(1, 2), In: 2, Eg: 3}, {IA: ia(1, 1), In: 4, Eg: 0},
		},
		Items: []EEBatchItem{
			{ID: reservation.ID{SrcAS: ia(1, 11), Num: 100}, Ver: 3, BwKbps: 8_000, ExpT: t0 + 16, SrcHost: 1, DstHost: 2},
			{ID: reservation.ID{SrcAS: ia(1, 11), Num: 101}, Ver: 2, BwKbps: 4_000, ExpT: t0 + 16, SrcHost: 3, DstHost: 4},
		},
		Macs:   make([][16]byte, 3),
		Accums: []uint64{8_000, 4_000},
		Status: []uint8{EEItemOK, EEItemThrottled},
	}
	req.Macs[1][0] = 0xab
	got, err := UnmarshalEEBatchRenewReq(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), req.Marshal()) {
		t.Fatalf("request round-trip mismatch:\n%+v\n%+v", got, req)
	}
	resp := &EEBatchRenewResp{
		OK:       true,
		Granted:  []uint64{8_000, 0},
		Status:   []uint8{EEItemOK, EEItemRefused},
		EncAuths: [][]byte{{1, 2, 3}, nil, {4, 5}, nil, nil, {6}},
	}
	gotR, err := UnmarshalEEBatchRenewResp(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotR.Marshal(), resp.Marshal()) {
		t.Fatalf("response round-trip mismatch:\n%+v\n%+v", gotR, resp)
	}
}

// TestEEBatchRenewEndToEnd renews a wave of EERs in one batched round trip
// through the live CPlane-backed path and checks the grants match what the
// per-EER path would produce: version bumped, bandwidth kept, and hop
// authenticators that verify against each on-path AS's own Eq. 4.
func TestEEBatchRenewEndToEnd(t *testing.T) {
	f := cpFabric(t, 4, nil)
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	var prevs []*EERGrant
	bws := []uint64{8_000, 4_000, 2_000, 6_000, 1_000}
	for i, bw := range bws {
		g, err := src.RequestEER(uint32(100+i), uint32(200+i), ia(2, 11), bw)
		if err != nil {
			t.Fatalf("setup %d: %v", i, err)
		}
		prevs = append(prevs, g)
	}
	f.clock.Store(t0 + 1)
	grants, errs := src.RenewEERBatch(prevs, bws)
	for i := range grants {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		g := grants[i]
		if g.Res.Ver != 2 || uint64(g.Res.BwKbps) != bws[i] || g.Res.ExpT != t0+1+reservation.EERLifetimeSeconds {
			t.Fatalf("item %d grant: %+v", i, g.Res)
		}
		for h, ph := range g.PathHops {
			svc := f.services[ph.IA]
			want := svc.hopAuth(&g.Res, &g.EER, packet.HopField{In: ph.In, Eg: ph.Eg})
			if g.HopAuths[h] != want {
				t.Errorf("item %d hop %d (%s): σ mismatch", i, h, ph.IA)
			}
		}
	}
	// Renewing the *fresh* versions again in the same second is throttled
	// per EER — but a straggler retrying its *committed* renewal (same
	// version) is answered from the idempotent dedup, not throttled.
	_, errs = src.RenewEERBatch(grants, bws)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("item %d renewed twice in one second", i)
		}
	}
	before := src.Metrics().DedupHits.Value()
	retry, rerrs := src.RenewEERBatch([]*EERGrant{prevs[2]}, []uint64{bws[2]})
	if rerrs[0] != nil || retry[0].Res.Ver != 2 || uint64(retry[0].Res.BwKbps) != bws[2] {
		t.Fatalf("dedup retry: grant=%+v err=%v", retry[0], rerrs[0])
	}
	if src.Metrics().DedupHits.Value() == before {
		t.Error("retried renewal was re-admitted instead of deduplicated")
	}
}

// TestEEBatchRenewDifferential replays the same renewal workload through the
// batched path and the per-EER path on twin CPlane fabrics and demands
// identical grants and refusals — including the oversubscribed tail.
func TestEEBatchRenewDifferential(t *testing.T) {
	single := cpFabric(t, 4, nil)
	batched := cpFabric(t, 4, nil)
	single.setupAllSegRs(t, 50_000)
	batched.setupAllSegRs(t, 50_000)

	setup := func(f *fabric) []*EERGrant {
		src := f.services[ia(1, 11)]
		var gs []*EERGrant
		for i := uint32(0); i < 6; i++ {
			g, err := src.RequestEER(100+i, 200+i, ia(2, 11), 8_000)
			if err != nil {
				t.Fatalf("setup %d: %v", i, err)
			}
			gs = append(gs, g)
		}
		return gs
	}
	sg, bg := setup(single), setup(batched)
	single.clock.Store(t0 + 1)
	batched.clock.Store(t0 + 1)

	bws := make([]uint64, len(sg))
	for i, g := range sg {
		bws[i] = uint64(g.Res.BwKbps)
	}
	var singleOut []string
	for i, g := range sg {
		ng, err := single.services[ia(1, 11)].RenewEER(g, bws[i])
		singleOut = append(singleOut, fmt.Sprintf("%v/%d", err == nil, grantBw(ng)))
	}
	grants, errs := batched.services[ia(1, 11)].RenewEERBatch(bg, bws)
	for i := range grants {
		got := fmt.Sprintf("%v/%d", errs[i] == nil, grantBw(grants[i]))
		if got != singleOut[i] {
			t.Errorf("item %d: per-EER path %s, batched path %s", i, singleOut[i], got)
		}
	}
}

// TestKeeperFleetBatchedFailover replays the keeper failover scenario
// (renew → transport death → demotion at expiry → recovery → re-promotion)
// through KeeperFleet's batched waves, where the downstream loss of a whole
// wave demotes every flow at once and the recovering wave re-promotes them
// by re-admission at the hops that lost the records.
func TestKeeperFleetBatchedFailover(t *testing.T) {
	gate := &gateTransport{}
	f := cpFabric(t, 4, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(1, 11) {
			gate.inner = cfg.Transport
			cfg.Transport = gate
		}
	})
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	gw := &fakeInstaller{}
	fleet := NewKeeperFleet(src)
	fleet.BatchSize = 3 // force multiple waves per tick
	const n = 8
	for i := uint32(0); i < n; i++ {
		g, err := src.RequestEER(100+i, 200+i, ia(2, 11), 2_000)
		if err != nil {
			t.Fatal(err)
		}
		fleet.Add(NewEERKeeper(src, gw, g, 4))
	}

	// Fresh grants: nothing due.
	if failed := fleet.Tick(); failed != 0 || gw.installs != 0 {
		t.Fatalf("fresh tick: failed=%d installs=%d", failed, gw.installs)
	}
	// Lead window: one batched wave renews everything.
	f.clock.Store(t0 + 13)
	if failed := fleet.Tick(); failed != 0 {
		t.Fatalf("renewal tick failed %d items", failed)
	}
	if gw.installs != n {
		t.Fatalf("installs = %d, want %d", gw.installs, n)
	}
	for _, k := range fleet.Keepers() {
		if k.Renewals != 1 || k.Grant().Res.Ver != 2 {
			t.Fatalf("keeper state: renewals=%d ver=%d", k.Renewals, k.Grant().Res.Ver)
		}
	}
	exp := fleet.Keepers()[0].Grant().Res.ExpT

	// Transport dies mid-lifetime: failures tolerated, no demotion.
	gate.fail.Store(true)
	f.clock.Store(exp - 3)
	if failed := fleet.Tick(); failed != n || fleet.Demoted() != 0 {
		t.Fatalf("mid-life outage: failed=%d demoted=%d", failed, fleet.Demoted())
	}
	// Still down when the versions die: the whole fleet falls back to
	// best-effort.
	f.clock.Store(exp - 1)
	if failed := fleet.Tick(); failed != n || fleet.Demoted() != n {
		t.Fatalf("at expiry: failed=%d demoted=%d", failed, fleet.Demoted())
	}
	if got := src.Metrics().Demotions.Value(); got != n {
		t.Fatalf("Demotions = %d, want %d", got, n)
	}
	// Recovery after expiry: downstream hops have expired the records, so
	// the batched renewal re-admits them and every flow re-promotes.
	gate.fail.Store(false)
	f.clock.Store(exp + 2)
	if failed := fleet.Tick(); failed != 0 {
		t.Fatalf("recovery tick failed %d items", failed)
	}
	if fleet.Demoted() != 0 {
		t.Fatalf("%d flows still demoted after recovery", fleet.Demoted())
	}
	if got := src.Metrics().Promotions.Value(); got != n {
		t.Fatalf("Promotions = %d, want %d", got, n)
	}
}
