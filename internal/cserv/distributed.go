package cserv

import (
	"fmt"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// SubServicePool implements the distributed CServ of Appendix D for ASes
// whose reservation load exceeds one machine: EER handling is decomposed
// into sub-services, each owning a disjoint subset of the AS's segment
// reservations, while a coordinator keeps the complete SegR view needed for
// SegR admission.
//
// The decomposition is valid because "the decision of an AS to admit an EER
// depends only on the state of the adjacent SegRs that are used in the
// requested reservation" — so, as the appendix requires of the load
// balancer, "all EEReqs based on the same underlying SegR are processed by
// the same sub-service", and sub-services never contend.
//
// Each sub-service is backed by its own reservation.Store (its own lock
// domain, standing in for its own machine); AssignSegR replicates a SegR's
// record to its owning sub-service.
type SubServicePool struct {
	local  topology.IA
	shards []*reservation.Store
}

// NewSubServicePool creates n sub-services for the AS.
func NewSubServicePool(local topology.IA, n int) *SubServicePool {
	if n < 1 {
		n = 1
	}
	p := &SubServicePool{local: local, shards: make([]*reservation.Store, n)}
	for i := range p.shards {
		p.shards[i] = reservation.NewStore(local)
	}
	return p
}

// shardOf routes a SegR to its owning sub-service. The appendix routes by
// ingress/egress interface; hashing the globally unique reservation ID
// spreads load evenly with the same correctness property (one SegR → one
// sub-service).
func (p *SubServicePool) shardOf(id reservation.ID) *reservation.Store {
	h := uint64(id.SrcAS)*0x9E3779B97F4A7C15 + uint64(id.Num)
	h ^= h >> 29
	return p.shards[h%uint64(len(p.shards))]
}

// AssignSegR installs a SegR at its owning sub-service (the coordinator
// calls this after SegR admission).
func (p *SubServicePool) AssignSegR(segr *reservation.SegR) error {
	return p.shardOf(segr.ID).AddSegR(segr)
}

// AdmitEER admits one EER version over the SegRs, which must share a
// sub-service. EERs spanning two SegRs at a transfer AS are supported when
// both land on the same shard; otherwise the appendix's two-step
// decomposition (ingress then egress sub-service) applies, which this pool
// surfaces as ErrCrossShard for the caller to split.
func (p *SubServicePool) AdmitEER(eer *reservation.EER, segIDs []reservation.ID, v reservation.Version, now uint32) error {
	if len(segIDs) == 0 {
		return fmt.Errorf("cserv: no segment reservations given")
	}
	shard := p.shardOf(segIDs[0])
	for _, id := range segIDs[1:] {
		if p.shardOf(id) != shard {
			return ErrCrossShard
		}
	}
	return shard.AdmitEERVersion(eer, segIDs, v, now)
}

// ErrCrossShard indicates a transfer-AS EER whose two SegRs live on
// different sub-services; the caller performs the appendix's split
// admission (ingress sub-service, then egress sub-service).
var ErrCrossShard = fmt.Errorf("cserv: segment reservations owned by different sub-services")

// AdmitEERSplit performs the two-step transfer-AS admission across shards:
// each SegR's owning sub-service checks and charges independently, with
// rollback of the first on failure of the second ("the decision can be
// split into two separate problems", App. D).
func (p *SubServicePool) AdmitEERSplit(eer *reservation.EER, segIDs []reservation.ID, v reservation.Version, now uint32) error {
	admitted := make([]*reservation.Store, 0, len(segIDs))
	for _, id := range segIDs {
		shard := p.shardOf(id)
		e := &reservation.EER{
			ID: eer.ID, In: eer.In, Eg: eer.Eg,
			SrcHost: eer.SrcHost, DstHost: eer.DstHost,
		}
		if err := shard.AdmitEERVersion(e, []reservation.ID{id}, v, now); err != nil {
			for _, s := range admitted {
				_ = s.RemoveEERVersion(eer.ID, v.Ver)
			}
			return err
		}
		admitted = append(admitted, shard)
	}
	return nil
}

// Cleanup runs expiry on all sub-services and returns the removed SegRs.
func (p *SubServicePool) Cleanup(now uint32) []reservation.ID {
	var removed []reservation.ID
	for _, s := range p.shards {
		removed = append(removed, s.Cleanup(now)...)
	}
	return removed
}

// Shards returns the number of sub-services.
func (p *SubServicePool) Shards() int { return len(p.shards) }

// SegR returns the record of a SegR from its owning sub-service.
func (p *SubServicePool) SegR(id reservation.ID) (*reservation.SegR, error) {
	return p.shardOf(id).GetSegR(id)
}
