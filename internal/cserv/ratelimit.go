package cserv

import (
	"sync"

	"colibri/internal/topology"
)

// RateLimiter bounds control-plane requests per source AS per second (§5.3:
// "the CServ can very efficiently filter unauthentic packets and employ
// per-AS rate limiting"). A fixed one-second window keeps per-AS state to a
// single counter.
type RateLimiter struct {
	mu     sync.Mutex
	perSec int
	window uint32
	counts map[topology.IA]int
}

// NewRateLimiter allows perSec requests per source AS per second.
func NewRateLimiter(perSec int) *RateLimiter {
	return &RateLimiter{perSec: perSec, counts: make(map[topology.IA]int)}
}

// Allow reports whether another request from src fits the current window.
func (r *RateLimiter) Allow(src topology.IA, now uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now != r.window {
		r.window = now
		clear(r.counts)
	}
	if r.counts[src] >= r.perSec {
		return false
	}
	r.counts[src]++
	return true
}

// Tick lets the limiter drop stale state (called from Service.Tick).
func (r *RateLimiter) Tick(now uint32) {
	r.mu.Lock()
	if now != r.window {
		r.window = now
		clear(r.counts)
	}
	r.mu.Unlock()
}
