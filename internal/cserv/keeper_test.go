package cserv

import (
	"errors"
	"sync/atomic"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/topology"
)

// gateTransport fails every call while armed — a link that is down (or a
// crashed next-hop CServ) from the initiator's point of view.
type gateTransport struct {
	inner Transport
	fail  atomic.Bool
}

func (g *gateTransport) Call(dst topology.IA, msg []byte) ([]byte, error) {
	if g.fail.Load() {
		return nil, errors.New("gate: transport down")
	}
	return g.inner.Call(dst, msg)
}

// fakeInstaller records the keeper's gateway interactions, mirroring the
// real gateway's semantics (Install of a fresh version clears demotion).
type fakeInstaller struct {
	installs int
	demotes  int
	promotes int
	demoted  bool
}

func (fi *fakeInstaller) Install(packet.ResInfo, packet.EERInfo, []packet.HopField, []cryptoutil.Key) error {
	fi.installs++
	fi.demoted = false
	return nil
}

func (fi *fakeInstaller) Demote(uint32) bool {
	was := fi.demoted
	fi.demoted = true
	if !was {
		fi.demotes++
	}
	return !was
}

func (fi *fakeInstaller) Promote(uint32) bool {
	was := fi.demoted
	fi.demoted = false
	if was {
		fi.promotes++
	}
	return was
}

// TestKeeperDemotesAndRepromotes drives the §3.2/§4.2 failover end to end:
// renewals succeed → failures within the lead window are tolerated while an
// older version still serves → the flow is demoted exactly when the newest
// version dies → renewal recovery re-promotes it.
func TestKeeperDemotesAndRepromotes(t *testing.T) {
	gate := &gateTransport{}
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(1, 11) {
			gate.inner = cfg.Transport
			cfg.Transport = gate
		}
	})
	f.setupAllSegRs(t, 50_000)
	src := f.services[ia(1, 11)]
	grant, err := src.RequestEER(1, 2, ia(2, 11), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	gw := &fakeInstaller{}
	k := NewEERKeeper(src, gw, grant, 4)

	// Fresh version: Tick is a no-op.
	if err := k.Tick(); err != nil || k.Renewals != 0 || gw.installs != 0 {
		t.Fatalf("fresh tick: err=%v renewals=%d installs=%d", err, k.Renewals, gw.installs)
	}

	// Inside the lead window: renew and install.
	f.clock.Store(t0 + 13) // exp t0+16 <= now+4
	if err := k.Tick(); err != nil {
		t.Fatalf("renewal tick: %v", err)
	}
	if k.Renewals != 1 || gw.installs != 1 {
		t.Fatalf("after renewal: renewals=%d installs=%d", k.Renewals, gw.installs)
	}
	exp := k.Grant().Res.ExpT // t0+29

	// Transport dies. A failure while the newest version still has life
	// left is tolerated — no demotion yet.
	gate.fail.Store(true)
	f.clock.Store(exp - 3)
	if err := k.Tick(); err == nil {
		t.Fatal("renewal over a dead transport succeeded")
	}
	if gw.demotes != 0 || k.Demoted() {
		t.Fatalf("demoted while old version still serving (demotes=%d)", gw.demotes)
	}

	// The newest version is about to die and renewal still fails: demote.
	f.clock.Store(exp - 1)
	if err := k.Tick(); err == nil {
		t.Fatal("renewal over a dead transport succeeded")
	}
	if gw.demotes != 1 || !k.Demoted() {
		t.Fatalf("not demoted at expiry (demotes=%d demoted=%v)", gw.demotes, k.Demoted())
	}

	// Still down: keeper keeps trying, but does not demote twice.
	f.clock.Store(exp + 1)
	if err := k.Tick(); err == nil {
		t.Fatal("renewal over a dead transport succeeded")
	}
	if gw.demotes != 1 {
		t.Fatalf("double demotion (demotes=%d)", gw.demotes)
	}

	// Transport recovers: the next renewal installs a fresh version and
	// re-promotes the flow.
	gate.fail.Store(false)
	f.clock.Store(exp + 3)
	if err := k.Tick(); err != nil {
		t.Fatalf("recovery tick: %v", err)
	}
	if k.Demoted() || gw.installs != 2 {
		t.Fatalf("after recovery: demoted=%v installs=%d", k.Demoted(), gw.installs)
	}
	if k.Renewals != 2 || k.Failures != 3 {
		t.Fatalf("counters: renewals=%d failures=%d", k.Renewals, k.Failures)
	}
	if got := src.Metrics().Demotions.Value(); got != 1 {
		t.Errorf("Demotions = %d, want 1", got)
	}
	if got := src.Metrics().Promotions.Value(); got != 1 {
		t.Errorf("Promotions = %d, want 1", got)
	}
}
