package cserv

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/drkey"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

// fabric wires all CServs and key servers of a topology in-process.
type fabric struct {
	topo     *topology.Topology
	reg      *segment.Registry
	dir      *Directory
	services map[topology.IA]*Service
	keySrvs  map[topology.IA]*drkey.Server
	clock    atomic.Uint32
}

func (f *fabric) Call(dst topology.IA, msg []byte) ([]byte, error) {
	s, ok := f.services[dst]
	if !ok {
		return nil, errors.New("fabric: no CServ at " + dst.String())
	}
	return s.HandleMsg(msg)
}

func (f *fabric) QueryKeyServer(dst topology.IA, req []byte) ([]byte, error) {
	ks, ok := f.keySrvs[dst]
	if !ok {
		return nil, errors.New("fabric: no key server at " + dst.String())
	}
	return ks.Handle(req)
}

func (f *fabric) now() uint32 { return f.clock.Load() }

const t0 = uint32(1_700_000_000)

// newFabric builds services for every AS of the topology.
func newFabric(t testing.TB, topo *topology.Topology, mutate func(ia topology.IA, cfg *Config)) *fabric {
	t.Helper()
	f := &fabric{
		topo:     topo,
		reg:      segment.Discover(topo, segment.DiscoverOpts{}),
		dir:      NewDirectory(),
		services: make(map[topology.IA]*Service),
		keySrvs:  make(map[topology.IA]*drkey.Server),
	}
	f.clock.Store(t0)

	ids := make([]*drkey.Identity, 0, len(topo.ASes))
	engines := make(map[topology.IA]*drkey.Engine)
	for _, iaKey := range topo.SortedIAs() {
		id := drkey.NewIdentity(iaKey)
		ids = append(ids, id)
		engines[iaKey] = drkey.NewEngine(iaKey, drkey.RandomMaster(), 0)
		f.keySrvs[iaKey] = drkey.NewServer(engines[iaKey], id)
	}
	trust := drkey.NewTrustStore(ids...)
	for _, iaKey := range topo.SortedIAs() {
		cfg := Config{
			AS:        topo.AS(iaKey),
			Topo:      topo,
			Secret:    asSecret(iaKey),
			Engine:    engines[iaKey],
			Keys:      drkey.NewStore(iaKey, f, trust),
			Directory: f.dir,
			Transport: f,
			Clock:     f.now,
		}
		if mutate != nil {
			mutate(iaKey, &cfg)
		}
		f.services[iaKey] = New(cfg)
	}
	return f
}

// asSecret derives a deterministic per-AS data-plane secret for tests.
func asSecret(iaKey topology.IA) cryptoutil.Key {
	var k cryptoutil.Key
	k[0] = byte(iaKey >> 48)
	k[1] = byte(iaKey)
	k[15] = 0x5a
	return k
}

func twoISDFabric(t testing.TB, mutate func(ia topology.IA, cfg *Config)) *fabric {
	return newFabric(t, topology.TwoISD(topology.LinkSpec{}), mutate)
}

// setupAllSegRs creates the up-, core-, and down-SegRs covering
// 1-11 → 2-11 on the TwoISD topology and returns them.
func (f *fabric) setupAllSegRs(t testing.TB, bwKbps uint64) (up, core, down *reservation.SegR) {
	t.Helper()
	upSeg := f.reg.UpSegments(ia(1, 11))[0]
	coreSeg := f.reg.CoreSegments(ia(1, 1), ia(2, 1))[0]
	downSeg := f.reg.DownSegments(ia(2, 11))[0]

	var err error
	up, err = f.services[ia(1, 11)].SetupSegment(upSeg, 0, bwKbps)
	if err != nil {
		t.Fatalf("up SegR: %v", err)
	}
	core, err = f.services[ia(1, 1)].SetupSegment(coreSeg, 0, bwKbps)
	if err != nil {
		t.Fatalf("core SegR: %v", err)
	}
	down, err = f.services[ia(2, 1)].SetupSegment(downSeg, 0, bwKbps)
	if err != nil {
		t.Fatalf("down SegR: %v", err)
	}
	return up, core, down
}

func TestSegmentSetup(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0] // 1-11 → 1-2 → 1-1
	segr, err := f.services[ia(1, 11)].SetupSegment(seg, 1000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if segr.Active.BwKbps != 50_000 {
		t.Errorf("granted %d kbps", segr.Active.BwKbps)
	}
	if len(segr.Tokens) != seg.Len() {
		t.Errorf("%d tokens for %d hops", len(segr.Tokens), seg.Len())
	}
	// Every on-path AS stores the reservation at the final bandwidth.
	for _, h := range seg.Hops {
		r, err := f.services[h.IA].Store().GetSegR(segr.ID)
		if err != nil {
			t.Fatalf("AS %s has no SegR: %v", h.IA, err)
		}
		if r.Active.BwKbps != 50_000 || r.Active.Ver != 1 {
			t.Errorf("AS %s stored %+v", h.IA, r.Active)
		}
	}
	// The token matches the on-path AS's own Eq. 3 computation.
	res := &packet.ResInfo{SrcAS: segr.ID.SrcAS, ResID: segr.ID.Num,
		BwKbps: 50_000, ExpT: segr.Active.ExpT, Ver: 1}
	midAS := seg.Hops[1]
	want := f.services[midAS.IA].segToken(res, packet.HopField{In: midAS.In, Eg: midAS.Eg})
	if segr.Tokens[1] != want {
		t.Error("returned token does not match on-path computation")
	}
	// Registered in the directory.
	if f.dir.Len() != 1 {
		t.Errorf("directory has %d offers", f.dir.Len())
	}
}

func TestSegmentSetupMinRefused(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	// The access link is 40 Gbps with 75% reservable = 30 Gbps; demanding
	// a 35 Gbps minimum must fail, leaving no state anywhere.
	_, err := f.services[ia(1, 11)].SetupSegment(seg, 35_000_000, 35_000_000)
	if err == nil {
		t.Fatal("over-capacity minimum granted")
	}
	for _, h := range seg.Hops {
		segs, _ := f.services[h.IA].Store().Counts()
		if segs != 0 {
			t.Errorf("AS %s kept %d temporary SegRs after failure", h.IA, segs)
		}
	}
}

func TestSegmentRenewalAndActivation(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	segr, err := src.SetupSegment(seg, 0, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	ver, final, err := src.RenewSegment(segr.ID, 0, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || final != 40_000 {
		t.Fatalf("renewal: ver=%d final=%d", ver, final)
	}
	// Pending everywhere, active unchanged.
	for _, h := range seg.Hops {
		r, _ := f.services[h.IA].Store().GetSegR(segr.ID)
		if r.Active.BwKbps != 20_000 || r.Pending == nil || r.Pending.BwKbps != 40_000 {
			t.Fatalf("AS %s state: active %+v pending %+v", h.IA, r.Active, r.Pending)
		}
	}
	if err := src.ActivateSegment(segr.ID, ver); err != nil {
		t.Fatal(err)
	}
	for _, h := range seg.Hops {
		r, _ := f.services[h.IA].Store().GetSegR(segr.ID)
		if r.Active.BwKbps != 40_000 || r.Active.Ver != 2 || r.Pending != nil {
			t.Fatalf("AS %s after activation: %+v", h.IA, r)
		}
	}
}

func TestEERSetupEndToEnd(t *testing.T) {
	f := twoISDFabric(t, nil)
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	grant, err := src.RequestEER(0x0a000001, 0x14000001, ia(2, 11), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Res.BwKbps != 8_000 {
		t.Errorf("final bw = %d", grant.Res.BwKbps)
	}
	if len(grant.Path) != 5 || len(grant.HopAuths) != 5 {
		t.Fatalf("path %d hops, %d hop auths", len(grant.Path), len(grant.HopAuths))
	}
	// Each σ_i matches the on-path AS's own Eq. 4 computation.
	for i, ph := range grant.PathHops {
		svc := f.services[ph.IA]
		want := svc.hopAuth(&grant.Res, &grant.EER, packet.HopField{In: ph.In, Eg: ph.Eg})
		if grant.HopAuths[i] != want {
			t.Errorf("hop %d (%s): σ mismatch", i, ph.IA)
		}
	}
	// Every on-path AS accounts the EER against its SegRs.
	for _, ph := range grant.PathHops {
		if _, err := f.services[ph.IA].Store().GetEER(grant.ID); err != nil {
			t.Errorf("AS %s has no EER record: %v", ph.IA, err)
		}
	}
}

func TestEERRenewalVersions(t *testing.T) {
	f := twoISDFabric(t, nil)
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	g1, err := src.RequestEER(1, 2, ia(2, 11), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := src.RenewEER(g1, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Res.Ver != 2 || g2.Res.BwKbps != 12_000 {
		t.Fatalf("renewed grant: %+v", g2.Res)
	}
	// Both versions coexist at a transit AS; budget is the max, not sum.
	e, err := f.services[ia(1, 2)].Store().GetEER(g1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Versions) != 2 {
		t.Fatalf("transit AS has %d versions", len(e.Versions))
	}
	if got := e.MaxBwKbps(f.now()); got != 12_000 {
		t.Errorf("MaxBwKbps = %d", got)
	}
}

func TestEERInsufficientSegRRolledBack(t *testing.T) {
	f := twoISDFabric(t, nil)
	// Core SegR is the bottleneck: 10 Mbps only.
	upSeg := f.reg.UpSegments(ia(1, 11))[0]
	coreSeg := f.reg.CoreSegments(ia(1, 1), ia(2, 1))[0]
	downSeg := f.reg.DownSegments(ia(2, 11))[0]
	if _, err := f.services[ia(1, 11)].SetupSegment(upSeg, 0, 100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := f.services[ia(1, 1)].SetupSegment(coreSeg, 0, 10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := f.services[ia(2, 1)].SetupSegment(downSeg, 0, 100_000); err != nil {
		t.Fatal(err)
	}
	src := f.services[ia(1, 11)]
	// First EER takes 8 of the 10 Mbps.
	if _, err := src.RequestEER(1, 2, ia(2, 11), 8_000); err != nil {
		t.Fatal(err)
	}
	// Second cannot fit 8 Mbps anywhere (core exhausted): refused.
	if _, err := src.RequestEER(3, 4, ia(2, 11), 8_000); err == nil {
		t.Fatal("over-committing EER accepted")
	}
	// No residual versions of the failed EER linger at the early hops.
	for _, iaKey := range []topology.IA{ia(1, 11), ia(1, 2), ia(1, 3)} {
		_, eers := f.services[iaKey].Store().Counts()
		if eers > 1 {
			t.Errorf("AS %s has %d EER records after rollback", iaKey, eers)
		}
	}
}

func TestControlPlaneAuthRejected(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	req := &SegSetupReq{
		ID:      src.Store().NextID(),
		SegType: seg.Type,
		Path:    HopsFromSegment(seg),
		MaxKbps: 1000,
		ExpT:    t0 + 300,
		Ver:     1,
	}
	// Garbage MACs: hop 1 must refuse with an authentication failure.
	req.Macs = make([][cryptoutil.MACSize]byte, len(req.Path))
	resp := src.processSegSetup(req, 0, req.MaxKbps)
	if resp.OK {
		t.Fatal("forged request accepted")
	}
	if resp.FailedAt != 1 || !strings.Contains(resp.Reason, "authentication") {
		t.Errorf("failure = hop %d, %q", resp.FailedAt, resp.Reason)
	}
}

func TestRateLimiting(t *testing.T) {
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		cfg.RateLimit = 2
	})
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	ok, limited := 0, 0
	for i := 0; i < 4; i++ {
		if _, err := src.SetupSegment(seg, 0, 1000); err != nil {
			if strings.Contains(err.Error(), "rate limited") {
				limited++
			} else {
				t.Fatal(err)
			}
		} else {
			ok++
		}
	}
	if ok != 2 || limited != 2 {
		t.Errorf("ok=%d limited=%d, want 2/2", ok, limited)
	}
	// Next second the budget refreshes.
	f.clock.Store(t0 + 1)
	if _, err := src.SetupSegment(seg, 0, 1000); err != nil {
		t.Errorf("after window turnover: %v", err)
	}
}

func TestHostPolicyEnforced(t *testing.T) {
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(1, 11) {
			cfg.Policy = &HostCapPolicy{DefaultCapKbps: 10_000}
		}
	})
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	if _, err := src.RequestEER(7, 2, ia(2, 11), 8_000); err != nil {
		t.Fatal(err)
	}
	if _, err := src.RequestEER(7, 2, ia(2, 11), 8_000); err == nil {
		t.Fatal("host exceeded its cap")
	}
	// A different host is unaffected.
	if _, err := src.RequestEER(8, 2, ia(2, 11), 8_000); err != nil {
		t.Errorf("other host blocked: %v", err)
	}
}

func TestDestinationVeto(t *testing.T) {
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(2, 11) {
			cfg.DstApprove = func(req *EESetupReq) bool { return req.DstHost != 99 }
		}
	})
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	if _, err := src.RequestEER(1, 99, ia(2, 11), 1_000); err == nil {
		t.Fatal("vetoed destination accepted")
	}
	if _, err := src.RequestEER(1, 2, ia(2, 11), 1_000); err != nil {
		t.Fatal(err)
	}
}

func TestTickReleasesExpired(t *testing.T) {
	f := twoISDFabric(t, nil)
	up, _, _ := f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	if _, err := src.RequestEER(1, 2, ia(2, 11), 8_000); err != nil {
		t.Fatal(err)
	}
	transit := f.services[ia(1, 2)]
	r, _ := transit.Store().GetSegR(up.ID)
	if r.AllocatedEERKbps != 8_000 {
		t.Fatalf("allocated = %d", r.AllocatedEERKbps)
	}
	// EERs live 16 s; advance past expiry and tick.
	f.clock.Store(t0 + reservation.EERLifetimeSeconds + 1)
	transit.Tick()
	r, _ = transit.Store().GetSegR(up.ID)
	if r.AllocatedEERKbps != 0 {
		t.Errorf("allocated after expiry = %d", r.AllocatedEERKbps)
	}
	// Advance past SegR expiry: SegRs vanish and admission state empties.
	f.clock.Store(t0 + reservation.SegRLifetimeSeconds + 1)
	transit.Tick()
	segs, eers := transit.Store().Counts()
	if segs != 0 || eers != 0 {
		t.Errorf("counts after SegR expiry: %d, %d", segs, eers)
	}
	if transit.Admission().Len() != 0 {
		t.Errorf("admission still tracks %d reservations", transit.Admission().Len())
	}
}

func TestDirectoryWhitelist(t *testing.T) {
	f := twoISDFabric(t, nil)
	f.setupAllSegRs(t, 100_000)
	// Restrict the up SegR's offer to some other AS.
	chains, err := f.services[ia(1, 11)].SegRsTo(ia(2, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) == 0 {
		t.Fatal("no chains before whitelist change")
	}
	for _, chain := range chains {
		for _, off := range chain {
			if off.Seg.Type == segment.Up {
				off.Whitelist = map[topology.IA]bool{ia(9, 9): true}
			}
		}
	}
	if _, err := f.services[ia(1, 11)].SegRsTo(ia(2, 11)); err == nil {
		t.Error("whitelisted-away offers still usable")
	}
}

func TestSegRsToOrdering(t *testing.T) {
	f := twoISDFabric(t, nil)
	f.setupAllSegRs(t, 100_000)
	// Also set up the alternative up-SegR via 1-3: two chains now exist.
	alt := f.reg.UpSegments(ia(1, 11))[1]
	if _, err := f.services[ia(1, 11)].SetupSegment(alt, 0, 100_000); err != nil {
		t.Fatal(err)
	}
	chains, err := f.services[ia(1, 11)].SegRsTo(ia(2, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < 2 {
		t.Fatalf("%d chains, want ≥ 2 (path choice)", len(chains))
	}
	for i := 1; i < len(chains); i++ {
		if chainLen(chains[i-1]) > chainLen(chains[i]) {
			t.Error("chains not sorted by length")
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	segReq := &SegSetupReq{
		ID:      reservation.ID{SrcAS: ia(1, 11), Num: 7},
		SegType: segment.Up,
		Path: []PathHop{
			{IA: ia(1, 11), Eg: 1},
			{IA: ia(1, 1), In: 2},
		},
		MinKbps:   100,
		MaxKbps:   1000,
		ExpT:      t0,
		Ver:       3,
		Renewal:   true,
		Macs:      make([][cryptoutil.MACSize]byte, 2),
		AccumKbps: 555,
	}
	segReq.Macs[0][0] = 0xAA
	data := segReq.Marshal()
	got, err := UnmarshalSegSetupReq(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != segReq.ID || got.Ver != 3 || !got.Renewal || got.AccumKbps != 555 ||
		len(got.Path) != 2 || got.Path[1].In != 2 || got.Macs[0][0] != 0xAA {
		t.Errorf("SegSetupReq round trip: %+v", got)
	}

	eeReq := &EESetupReq{
		ID:      reservation.ID{SrcAS: ia(1, 11), Num: 9},
		SegIDs:  []reservation.ID{{SrcAS: ia(1, 11), Num: 1}, {SrcAS: ia(1, 1), Num: 2}},
		Splits:  []uint8{2},
		Path:    segReq.Path,
		BwKbps:  8000,
		ExpT:    t0,
		Ver:     1,
		SrcHost: 5,
		DstHost: 6,
		Macs:    make([][cryptoutil.MACSize]byte, 2),
	}
	got2, err := UnmarshalEESetupReq(eeReq.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got2.ID != eeReq.ID || len(got2.SegIDs) != 2 || got2.Splits[0] != 2 ||
		got2.SrcHost != 5 || got2.DstHost != 6 {
		t.Errorf("EESetupReq round trip: %+v", got2)
	}

	resp := &SegSetupResp{OK: true, FinalKbps: 123, Tokens: [][packet.HVFLen]byte{{1, 2, 3, 4}}}
	got3, err := UnmarshalSegSetupResp(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got3.OK || got3.FinalKbps != 123 || got3.Tokens[0] != [4]byte{1, 2, 3, 4} {
		t.Errorf("SegSetupResp round trip: %+v", got3)
	}

	eresp := &EESetupResp{OK: false, FailedAt: 2, Reason: "no", EncAuths: [][]byte{{9, 9}}}
	got4, err := UnmarshalEESetupResp(eresp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got4.OK || got4.FailedAt != 2 || got4.Reason != "no" || len(got4.EncAuths[0]) != 2 {
		t.Errorf("EESetupResp round trip: %+v", got4)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalSegSetupReq(nil); err == nil {
		t.Error("nil SegSetupReq accepted")
	}
	if _, err := UnmarshalSegSetupReq([]byte{tagEESetup}); err == nil {
		t.Error("wrong tag accepted")
	}
	if _, err := UnmarshalEESetupReq([]byte{tagEESetup, 1, 2}); err == nil {
		t.Error("truncated EESetupReq accepted")
	}
	if _, err := UnmarshalSegActivateReq([]byte{tagSegActivate}); err == nil {
		t.Error("truncated SegActivateReq accepted")
	}
}

// BenchmarkSegRHandleAtLastHop measures the paper's §6 quantity at unit
// level: the time between a marshaled SegReq arriving at a CServ and the
// response leaving it (the measured AS is the last hop, so no forwarding).
func BenchmarkSegRHandleAtLastHop(b *testing.B) {
	// The virtual clock never advances here, so disable per-second rate
	// limiting to avoid measuring the limiter's refusals.
	f := twoISDFabric(b, func(_ topology.IA, cfg *Config) { cfg.RateLimit = 1 << 30 })
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	last := f.services[seg.DstIA()]
	// Pre-populate existing reservations at the measured AS.
	for i := 0; i < 1000; i++ {
		if _, err := src.SetupSegment(seg, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
	const batch = 2048
	reqs := make([][]byte, batch)
	ids := make([]reservation.ID, batch)
	mkBatch := func(gen int) {
		for i := range reqs {
			req := &SegSetupReq{
				ID:      reservation.ID{SrcAS: ia(1, 11), Num: uint32(1<<30 + gen*batch + i)},
				SegType: seg.Type,
				Path:    HopsFromSegment(seg),
				MaxKbps: 10,
				ExpT:    t0 + 300,
				Ver:     1,
			}
			macs, err := src.computeMacs(req.Path, req.Body())
			if err != nil {
				b.Fatal(err)
			}
			req.Macs = macs
			req.AccumKbps = 10
			reqs[i] = req.Marshal()
			ids[i] = req.ID
		}
	}
	mkBatch(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%batch == 0 {
			b.StopTimer()
			for _, id := range ids {
				last.Admission().Release(id)
				last.Store().DeleteSegR(id)
			}
			mkBatch(i / batch)
			b.StartTimer()
		}
		data, err := last.HandleMsg(reqs[i%batch])
		if err != nil {
			b.Fatal(err)
		}
		resp, err := UnmarshalSegSetupResp(data)
		if err != nil || !resp.OK {
			b.Fatalf("refused: %v %s", err, resp.Reason)
		}
	}
}
