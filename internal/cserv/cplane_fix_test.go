// cplane_fix_test.go — regressions for the control-plane edge-case sweep:
// exact per-shard capacity splitting, the dedup/stale/reject counter split,
// and the worker-parallel shard-bucketed RenewBatch.
package cserv

import (
	"errors"
	"sync"
	"testing"

	"colibri/internal/admission"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// TestShardedASCapacityExact is the regression for the capacity/K rounding
// bug: per-shard link (and internal-fabric) capacities must sum EXACTLY to
// the physical value for every capacity, including caps below the shard
// count — the old maxU64(1, cap/K) floor let K shards of a (K−1)-Kbps link
// admit more than the link carries, and otherwise silently lost up to K−1
// Kbps.
func TestShardedASCapacityExact(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, capKbps := range []uint64{0, 1, 2, 3, 5, 7, 8, 1000, 1001, 1003} {
			as := cplaneAS(t, 3, 1_000)
			as.InternalCapacityKbps = capKbps
			// Set the capacity directly: the topology builder substitutes a
			// default for 0, and this regression needs the exact raw values.
			as.Interfaces[topology.IfID(1)].Link.CapacityKbps = capKbps
			var linkSum, internalSum uint64
			for i := 0; i < shards; i++ {
				clone := shardedAS(as, shards, i)
				internalSum += clone.InternalCapacityKbps
				linkSum += clone.Interfaces[topology.IfID(1)].Link.CapacityKbps
			}
			if shards == 1 {
				// Degenerate case returns the AS unchanged.
				linkSum = as.Interfaces[topology.IfID(1)].Link.CapacityKbps
				internalSum = as.InternalCapacityKbps
			}
			if linkSum != capKbps {
				t.Fatalf("shards=%d cap=%d: link shares sum to %d", shards, capKbps, linkSum)
			}
			if internalSum != capKbps {
				t.Fatalf("shards=%d cap=%d: internal shares sum to %d", shards, capKbps, internalSum)
			}
		}
	}
}

// TestShardShareSpread pins the remainder distribution: shares differ by at
// most one and the low-indexed shards carry the remainder.
func TestShardShareSpread(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, capKbps := range []uint64{0, 1, 3, 9, 1001} {
			var sum uint64
			lo, hi := ^uint64(0), uint64(0)
			for i := 0; i < shards; i++ {
				s := shardShare(capKbps, shards, i)
				sum += s
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if sum != capKbps {
				t.Fatalf("shards=%d cap=%d: sum=%d", shards, capKbps, sum)
			}
			if hi-lo > 1 {
				t.Fatalf("shards=%d cap=%d: shares spread %d..%d", shards, capKbps, lo, hi)
			}
		}
	}
}

// TestCPlaneCounterSplit is the regression for the reject-counter
// conflation: a renewal of an unknown (expired) EER must count as Stale,
// not Rejects, and an idempotent duplicate setup as Dedups — both
// distinguishable from a real ErrInsufficient refusal.
func TestCPlaneCounterSplit(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 4, admission.ImplRestree, clk)
	seg := segReq(1, 50, 1, 2, 10_000)
	if _, err := cp.AddSegR(seg); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetupEER(eid(1), seg.ID, 10_000, clk.now()+16); err != nil {
		t.Fatal(err)
	}

	items := []EERRenewal{
		{EER: eid(99), Seg: seg.ID, BwKbps: 100, ExpT: clk.now() + 16}, // never admitted → stale
		{EER: eid(1), Seg: seg.ID, BwKbps: 10_000, ExpT: clk.now() + 16},
	}
	results := make([]RenewResult, len(items))
	cp.RenewBatch(items, results)
	if !errors.Is(results[0].Err, ErrUnknownEER) {
		t.Fatalf("unknown renewal err=%v, want ErrUnknownEER", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("live renewal err=%v", results[1].Err)
	}

	// A second full-size EER cannot fit → a real refusal.
	if err := cp.SetupEER(eid(2), seg.ID, 10_000, clk.now()+16); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("oversubscribed setup err=%v", err)
	}
	// Retrying the committed setup is dedup, not refusal.
	if err := cp.SetupEER(eid(1), seg.ID, 10_000, clk.now()+16); err == nil {
		t.Fatal("duplicate setup unexpectedly admitted")
	}

	ct := cp.Counts()
	if ct.Stale != 1 || ct.Dedups != 1 || ct.Rejects != 1 {
		t.Fatalf("stale=%d dedups=%d rejects=%d, want 1/1/1", ct.Stale, ct.Dedups, ct.Rejects)
	}
}

// buildRenewScenario admits nSeg SegRs with one EER each and returns a
// renewal wave over them (some items target unknown EERs, some oversubscribe).
func buildRenewScenario(t *testing.T, cp *CPlane, clk *cpClock, nSeg int) []EERRenewal {
	t.Helper()
	items := make([]EERRenewal, 0, nSeg)
	for i := uint32(0); i < uint32(nSeg); i++ {
		req := segReq(i, topology.ASID(10+i%13), topology.IfID(1+i%4), topology.IfID(1+(i+1)%4), 2_000)
		if _, err := cp.AddSegR(req); err != nil {
			t.Fatal(err)
		}
		if err := cp.SetupEER(eid(i), req.ID, 400+uint64(i%5)*100, clk.now()+16); err != nil {
			t.Fatal(err)
		}
		want := uint64(500 + int(i%7)*300) // some renewals oversubscribe
		it := EERRenewal{EER: eid(i), Seg: req.ID, BwKbps: want, ExpT: clk.now() + 16, Ver: uint16(i % 8)}
		if i%11 == 0 {
			it.EER = eid(i + 100_000) // unknown → stale
		}
		items = append(items, it)
	}
	return items
}

// TestCPlaneRenewBatchWorkersEquivalent requires the shard-bucketed fan-out
// to produce bit-identical per-item results and counts at every worker
// count (shards are lock-disjoint and buckets preserve item order).
func TestCPlaneRenewBatchWorkersEquivalent(t *testing.T) {
	run := func(workers int) ([]RenewResult, CPlaneCounts) {
		clk := newCPClock(1000)
		cp, err := NewCPlane(CPlaneConfig{
			AS:            cplaneAS(t, 4, 1_000_000),
			Split:         admission.DefaultSplit,
			Shards:        8,
			AdmissionImpl: admission.ImplRestree,
			Clock:         clk.now,
			Workers:       workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		items := buildRenewScenario(t, cp, clk, 500)
		results := make([]RenewResult, len(items))
		cp.RenewBatch(items, results)
		return results, cp.Counts()
	}
	base, baseCt := run(1)
	for _, w := range []int{2, 4, 8} {
		got, gotCt := run(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d item %d: %+v, want %+v", w, i, got[i], base[i])
			}
		}
		if gotCt != baseCt {
			t.Fatalf("workers=%d counts %+v, want %+v", w, gotCt, baseCt)
		}
	}
}

// TestCPlaneRenewBatchConcurrentWaves drives concurrent shard-bucketed
// waves (batchMu serializes dispatches) interleaved with single-op traffic;
// under -race this validates the fan-out's ownership discipline.
func TestCPlaneRenewBatchConcurrentWaves(t *testing.T) {
	clk := newCPClock(1000)
	cp, err := NewCPlane(CPlaneConfig{
		AS:            cplaneAS(t, 4, 1_000_000),
		Split:         admission.DefaultSplit,
		Shards:        8,
		AdmissionImpl: admission.ImplRestree,
		Clock:         clk.now,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	items := buildRenewScenario(t, cp, clk, 400)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]EERRenewal, len(items))
			copy(mine, items)
			results := make([]RenewResult, len(mine))
			for round := 0; round < 10; round++ {
				cp.RenewBatch(mine, results)
			}
		}(g)
	}
	// Single-op traffic concurrent with the waves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(0); i < 200; i++ {
			id := reservation.ID{SrcAS: ia(3, 9), Num: i}
			seg := items[int(i)%len(items)].Seg
			if err := cp.SetupEER(id, seg, 1, clk.now()+16); err == nil {
				cp.TeardownEER(id, seg)
			}
			_, _, _, _ = cp.LookupEER(items[int(i)%len(items)].EER, seg)
		}
	}()
	wg.Wait()
	cp.Tick()
	if ct := cp.Counts(); ct.EERs < 0 || ct.SegRs < 0 {
		t.Fatalf("negative counts: %+v", ct)
	}
}
