package cserv

import (
	"encoding/binary"
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// EERGrant is the result of a successful EER setup or renewal, ready to be
// installed at the Colibri gateway. PathHops and Splits retain the request
// parameters so renewals can be issued over the same reservation.
type EERGrant struct {
	ID       reservation.ID
	Res      packet.ResInfo
	EER      packet.EERInfo
	Path     []packet.HopField
	PathHops []PathHop
	Splits   []uint8
	HopAuths []cryptoutil.Key
	SegIDs   []reservation.ID
}

// RequestEER performs a complete EER setup on behalf of a local end host
// (§3.3, Fig. 1b): pick joinable SegRs to the destination AS from the
// directory, chain the request through the on-path CServs, collect and
// decrypt the hop authenticators. Chains are tried in order until one
// admits the reservation — the path choice of §2.1.
func (s *Service) RequestEER(srcHost, dstHost uint32, dstIA topology.IA, bwKbps uint64) (*EERGrant, error) {
	chains, err := s.SegRsTo(dstIA)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, chain := range chains {
		grant, err := s.requestEEROverChain(srcHost, dstHost, bwKbps, chain)
		if err == nil {
			return grant, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cserv: no segment reservations towards %s", dstIA)
	}
	return nil, lastErr
}

func (s *Service) requestEEROverChain(srcHost, dstHost uint32, bwKbps uint64, chain []*Offer) (*EERGrant, error) {
	segs := make([]*segment.Segment, len(chain))
	segIDs := make([]reservation.ID, len(chain))
	for i, off := range chain {
		segs[i] = off.Seg
		segIDs[i] = off.ID
	}
	path, err := segment.Join(segs...)
	if err != nil {
		return nil, err
	}
	// Transfer-AS positions: cumulative segment ends.
	splits := make([]uint8, 0, len(segs)-1)
	pos := 0
	for i := 0; i < len(segs)-1; i++ {
		pos += segs[i].Len() - 1
		splits = append(splits, uint8(pos))
	}
	now := s.clock()
	req := &EESetupReq{
		ID:      s.store.NextID(),
		SegIDs:  segIDs,
		Splits:  splits,
		Path:    HopsFromPath(path),
		BwKbps:  bwKbps,
		ExpT:    now + reservation.EERLifetimeSeconds,
		Ver:     1,
		SrcHost: srcHost,
		DstHost: dstHost,
	}
	return s.launchEE(req)
}

// RenewEER renews an existing EER for a new version with possibly different
// bandwidth. Multiple versions remain valid concurrently, enabling seamless
// transition (§4.2).
func (s *Service) RenewEER(prev *EERGrant, newBwKbps uint64) (*EERGrant, error) {
	now := s.clock()
	req := &EESetupReq{
		ID:      prev.ID,
		SegIDs:  prev.SegIDs,
		Splits:  prev.Splits,
		Path:    prev.PathHops,
		BwKbps:  newBwKbps,
		ExpT:    now + reservation.EERLifetimeSeconds,
		Ver:     prev.Res.Ver + 1,
		SrcHost: prev.EER.SrcHost,
		DstHost: prev.EER.DstHost,
		Renewal: true,
	}
	return s.launchEE(req)
}

// launchEE signs and runs an EE request from hop 0.
func (s *Service) launchEE(req *EESetupReq) (*EERGrant, error) {
	macs, err := s.computeMacs(req.Path, req.Body())
	if err != nil {
		return nil, err
	}
	req.Macs = macs
	resp := s.processEESetup(req, 0, req.BwKbps)
	if !resp.OK {
		return nil, fmt.Errorf("%w: EER setup failed at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
	}
	grant := &EERGrant{
		ID: req.ID,
		Res: packet.ResInfo{
			SrcAS:  req.ID.SrcAS,
			ResID:  req.ID.Num,
			BwKbps: uint32(resp.FinalKbps),
			ExpT:   req.ExpT,
			Ver:    req.Ver,
		},
		EER:      packet.EERInfo{SrcHost: req.SrcHost, DstHost: req.DstHost},
		Path:     HopFields(req.Path),
		PathHops: append([]PathHop(nil), req.Path...),
		Splits:   append([]uint8(nil), req.Splits...),
		SegIDs:   append([]reservation.ID(nil), req.SegIDs...),
	}
	// Decrypt the hop authenticators (Eq. 5): AS_i sealed σ_i under
	// K_{AS_i→us}, which we hold in the key store.
	now := s.clock()
	grant.HopAuths = make([]cryptoutil.Key, len(req.Path))
	for i, enc := range resp.EncAuths {
		var key cryptoutil.Key
		if req.Path[i].IA == s.ia {
			key, _ = s.engine.Level1(s.ia, now)
		} else {
			key, err = s.keys.Get(req.Path[i].IA, now)
			if err != nil {
				return nil, err
			}
		}
		pt, err := cryptoutil.Open(key, enc, eerAuthAD(req.ID, uint8(i)))
		if err != nil {
			return nil, fmt.Errorf("cserv: opening hop authenticator %d: %w", i, err)
		}
		copy(grant.HopAuths[i][:], pt)
	}
	return grant, nil
}

// eerAuthAD binds an encrypted hop authenticator to its reservation and hop.
func eerAuthAD(id reservation.ID, hop uint8) []byte {
	var ad [13]byte
	binary.BigEndian.PutUint64(ad[0:8], uint64(id.SrcAS))
	binary.BigEndian.PutUint32(ad[8:12], id.Num)
	ad[12] = hop
	return ad[:]
}

// segsCovering returns the indices into req.SegIDs of the segment
// reservations this hop participates in (one normally, two at transfer
// ASes).
func segsCovering(req *EESetupReq, idx int) []int {
	return coveringSegs(len(req.SegIDs), req.Splits, len(req.Path), idx)
}

// coveringSegs is the chain-geometry core of segsCovering, shared with the
// batch-renewal handler (whose items all ride the same SegR chain).
func coveringSegs(nSeg int, splits []uint8, pathLen, idx int) []int {
	if nSeg == 1 {
		return []int{0}
	}
	start := 0
	var covering []int
	for k := 0; k < nSeg; k++ {
		end := pathLen - 1
		if k < len(splits) {
			end = int(splits[k])
		}
		if idx >= start && idx <= end {
			covering = append(covering, k)
		}
		start = end
	}
	return covering
}

// processEESetup handles an EER setup/renewal request at hop idx.
func (s *Service) processEESetup(req *EESetupReq, idx int, accum uint64) (resp_ *EESetupResp) {
	defer func() {
		kind := telemetry.EvEESetup
		switch {
		case resp_.OK && req.Renewal:
			s.metrics.EERenewOK.Add(1)
			kind = telemetry.EvEERenew
		case resp_.OK:
			s.metrics.EESetupOK.Add(1)
		case req.Renewal:
			s.metrics.EERenewFail.Add(1)
			kind = telemetry.EvEERenew
		default:
			s.metrics.EESetupFail.Add(1)
		}
		s.metrics.Trace(int64(s.clock())*1e9, kind, req.ID.String(), resp_.OK, resp_.Reason)
	}()
	fail := func(format string, args ...any) *EESetupResp {
		return &EESetupResp{FailedAt: uint8(idx), Reason: fmt.Sprintf(format, args...)}
	}
	if idx > 0 {
		if err := s.verifySourceMac(req.ID.SrcAS, req.Body(), req.Macs, idx); err != nil {
			s.metrics.AuthFailures.Add(1)
			return fail("authentication: %v", err)
		}
		if !s.rate.Allow(req.ID.SrcAS, s.clock()) {
			s.metrics.RateLimited.Add(1)
			return fail("rate limited")
		}
	}
	hop := req.Path[idx]
	now := s.clock()
	// The covering SegRs decide where this AS's admission state lives: one
	// segment normally, two at a transfer AS (§4.7). The CPlane keys its EER
	// record by the primary (first local) covering segment, so the dedup
	// below needs it before any store lookup.
	covering := segsCovering(req, idx)
	if len(covering) == 0 {
		return fail("hop %d is not covered by any segment reservation", idx)
	}
	// Idempotent retry detection (idempotency key: (ID, Ver) with matching
	// expiry): a lost response leaves every hop downstream of the loss
	// committed, so a retried request finds its own version here. Answer
	// from it instead of admitting again — and decide before the renewal
	// rate limiter, which must not throttle the retry of the very renewal
	// it just admitted.
	var dup bool
	var dupKbps uint64
	if s.cp != nil {
		if bw, ver, expT, ok := s.cp.LookupEER(req.ID, req.SegIDs[covering[0]]); ok && ver == req.Ver && expT == req.ExpT {
			dup, dupKbps = true, bw
		}
	} else if existing, gerr := s.store.GetEER(req.ID); gerr == nil {
		for _, v := range existing.Versions {
			if v.Ver == req.Ver && v.ExpT == req.ExpT {
				dup, dupKbps = true, v.BwKbps
				break
			}
		}
	}
	if dup {
		s.metrics.DedupHits.Add(1)
	}
	// Per-EER renewal rate limiting (§4.2: e.g. one renewal per second).
	if req.Renewal && !dup && !s.renewLim.Allow(req.ID, now) {
		s.metrics.RenewThrottle.Add(1)
		return fail("renewal rate limit: EER %s already renewed this second", req.ID)
	}

	// Source-AS policy (§4.7: "the source AS has a direct business
	// relationship with the end host").
	if idx == 0 {
		if err := s.policy.AllowEER(req.SrcHost, req.BwKbps); err != nil {
			return fail("policy: %v", err)
		}
	}
	// Destination approval (§3.3: the destination host "also has to
	// explicitly accept the EER request").
	if idx == len(req.Path)-1 && !s.dstApprove(req) {
		return fail("destination refused")
	}

	localSegIDs := make([]reservation.ID, 0, 2)
	segRs := make([]*reservation.SegR, 0, 2)
	for _, k := range covering {
		sr, err := s.store.GetSegR(req.SegIDs[k])
		if err != nil {
			return fail("segment reservation: %v", err)
		}
		localSegIDs = append(localSegIDs, sr.ID)
		segRs = append(segRs, sr)
	}

	// prev* capture the live record this request replaces: the transfer split
	// credits it as freed headroom and returns its charge once the new version
	// commits, and a downstream failure reinstates it (the CPlane holds one
	// version per EER; the store's rollback instead removes the added version
	// from the list). Store.LiveVersion mirrors CPlane.LookupEER so both
	// admission modes account identically.
	var prevBw uint64
	var prevExpT uint32
	var prevVer uint16
	var hadPrev bool
	if !dup {
		if s.cp != nil {
			prevBw, prevVer, prevExpT, hadPrev = s.cp.LookupEER(req.ID, localSegIDs[0])
		} else {
			prevBw, prevVer, prevExpT, hadPrev = s.store.LiveVersion(req.ID, now)
		}
	}

	// Transfer-AS proportional split between up- and core-SegR (§4.7). The
	// split accumulates demand/grant per Admit; every exit path below must
	// return exactly what it no longer claims — refusal, admission failure,
	// downstream rollback, and the final clamp to the path-wide minimum —
	// so the split tracks precisely the live committed charges (dead demand
	// otherwise accumulates until the fair-share cap refuses everything;
	// the renewal-storm recovery at 10⁶ flows found every one of these).
	grant := accum
	if dup {
		grant = dupKbps
	}
	var tAdmitted bool
	var tCapped, tGrant uint64
	var tUp, tCore reservation.ID
	if !dup && len(segRs) == 2 && segRs[0].SegType == segment.Up && segRs[1].SegType == segment.Core {
		up, core := segRs[0], segRs[1]
		upAvail, coreAvail := up.AvailableEERKbps(), core.AvailableEERKbps()
		if s.cp != nil {
			upAvail = s.cp.SegAvail(up.ID, now, req.ExpT)
			coreAvail = s.cp.SegAvail(core.ID, now, req.ExpT)
		}
		if req.Renewal && hadPrev && prevExpT > now {
			// The ledger (or store) still carries this EER's own live charge,
			// which the renewal replaces — RenewEERPath removes it before
			// probing, and the store's versions share one max-over-versions
			// budget. Credit it so the split sees the true post-renewal
			// headroom, identically in both admission modes.
			upAvail += prevBw
			coreAvail += prevBw
		}
		asked := grant
		grant = s.transfer.Admit(core.ID, up.ID, asked,
			up.Active.BwKbps, core.Active.BwKbps,
			upAvail, coreAvail)
		tCapped = asked
		if tCapped > up.Active.BwKbps {
			tCapped = up.Active.BwKbps
		}
		// A *setup* is granted in full or refused (§4.7: "the intended
		// bandwidth is granted if there is sufficient available bandwidth");
		// only renewals may be granted a reduced amount (§4.2).
		if grant == 0 || (!req.Renewal && grant < asked) {
			s.transfer.Release(core.ID, up.ID, tCapped, grant)
			s.metrics.AdmReject.Add(1)
			if req.Renewal {
				// The EER's previous versions stay valid: the flow falls
				// back to them instead of being torn down.
				s.metrics.AdmFallback.Add(1)
			}
			return fail("transfer split: only %d of %d kbps available on core SegR %s",
				grant, asked, core.ID)
		}
		tAdmitted, tGrant, tUp, tCore = true, grant, up.ID, core.ID
	}
	// releaseT undoes the split admission in full — for every path on which
	// this hop's new version does not survive.
	releaseT := func() {
		if tAdmitted {
			s.transfer.Release(tCore, tUp, tCapped, tGrant)
			tAdmitted = false
		}
	}

	// Admit (reserve) the requested bandwidth against the local SegRs; the
	// backward pass adjusts it down to the path-wide minimum.
	eer := &reservation.EER{
		ID:      req.ID,
		In:      hop.In,
		Eg:      hop.Eg,
		SrcHost: req.SrcHost,
		DstHost: req.DstHost,
	}
	v := reservation.Version{Ver: req.Ver, BwKbps: grant, ExpT: req.ExpT}
	if !dup {
		if s.cp != nil {
			var aerr error
			if req.Renewal && hadPrev {
				var g uint64
				if g, aerr = s.cp.RenewEERPath(req.ID, localSegIDs, grant, req.ExpT, req.Ver); aerr == nil {
					// Renewals may legally shrink to the free bandwidth (§4.2).
					grant = g
				}
			} else {
				// A fresh setup — or a renewal of an EER this AS no longer
				// holds (version expired, or state lost in a crash): admit it
				// anew so the flow re-promotes instead of staying demoted.
				aerr = s.cp.SetupEERPath(req.ID, localSegIDs, grant, req.ExpT, req.Ver)
			}
			if aerr != nil {
				releaseT()
				s.metrics.AdmReject.Add(1)
				if req.Renewal {
					s.metrics.AdmFallback.Add(1)
				}
				return fail("admission: %v", aerr)
			}
		} else {
			if err := s.store.AdmitEERVersion(eer, localSegIDs, v, now); err != nil {
				releaseT()
				s.metrics.AdmReject.Add(1)
				if req.Renewal {
					s.metrics.AdmFallback.Add(1)
				}
				return fail("admission: %v", err)
			}
		}
	}
	rollback := func() {
		if dup {
			// Retried request over committed state: the original round
			// owns this version's lifecycle.
			return
		}
		releaseT()
		if s.cp != nil {
			if req.Renewal && hadPrev {
				s.cp.RestoreEERPath(req.ID, localSegIDs, prevBw, prevExpT, prevVer)
			} else {
				s.cp.TeardownEERPath(req.ID, localSegIDs)
			}
			return
		}
		_ = s.store.RemoveEERVersion(req.ID, req.Ver)
	}

	var resp *EESetupResp
	if idx == len(req.Path)-1 {
		resp = &EESetupResp{
			OK:        true,
			FinalKbps: grant,
			EncAuths:  make([][]byte, len(req.Path)),
		}
	} else {
		next := req.Path[idx+1].IA
		fwd := *req
		fwd.AccumKbps = grant
		data, err := s.transport.Call(next, fwd.Marshal())
		if err != nil {
			resp = &EESetupResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("transport: %v", err)}
		} else if resp, err = UnmarshalEESetupResp(data); err != nil {
			resp = &EESetupResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("response: %v", err)}
		}
	}
	if !resp.OK {
		rollback()
		return resp
	}

	final := resp.FinalKbps
	if final < grant {
		if s.cp != nil {
			s.cp.AdjustEERPath(req.ID, localSegIDs, final)
		} else if err := s.store.AdjustEERVersion(req.ID, req.Ver, final); err != nil {
			rollback()
			return fail("adjust: %v", err)
		}
	}
	// Compute σ_i (Eq. 4) over the final reservation parameters and seal it
	// for the source AS (Eq. 5).
	res := &packet.ResInfo{
		SrcAS:  req.ID.SrcAS,
		ResID:  req.ID.Num,
		BwKbps: uint32(final),
		ExpT:   req.ExpT,
		Ver:    req.Ver,
	}
	eerInfo := &packet.EERInfo{SrcHost: req.SrcHost, DstHost: req.DstHost}
	sigma := s.hopAuth(res, eerInfo, packet.HopField{In: hop.In, Eg: hop.Eg})
	key, _ := s.engine.Level1(req.ID.SrcAS, now)
	sealed, err := cryptoutil.Seal(key, sigma[:], eerAuthAD(req.ID, uint8(idx)))
	if err != nil {
		rollback()
		return fail("seal: %v", err)
	}
	if tAdmitted {
		// The version is committed: clamp the split's record of it to the
		// final path-wide grant, and return the replaced live version's
		// charge — the split tracks live committed bandwidth, not request
		// history (final ≤ grant ≤ capped by construction).
		s.transfer.Release(tCore, tUp, tCapped-final, tGrant-final)
		if req.Renewal && hadPrev && prevExpT > now {
			s.transfer.Release(tCore, tUp, prevBw, prevBw)
		}
		tAdmitted = false
	}
	resp.EncAuths[idx] = sealed
	return resp
}
