package cserv

import (
	"errors"
	"testing"

	"colibri/internal/topology"
)

// flakyTransport fails the first n calls, then delegates.
type flakyTransport struct {
	inner Transport
	fails int
	calls int
}

func (f *flakyTransport) Call(dst topology.IA, msg []byte) ([]byte, error) {
	f.calls++
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("flaky: injected failure")
	}
	if f.inner == nil {
		return []byte("ok"), nil
	}
	return f.inner.Call(dst, msg)
}

func TestRetryTransportRetriesUntilSuccess(t *testing.T) {
	inner := &flakyTransport{fails: 2}
	rt := NewRetryTransport(inner, RetryPolicy{}, nil)
	resp, err := rt.Call(ia(1, 1), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok" {
		t.Fatalf("resp %q", resp)
	}
	if inner.calls != 3 || rt.Attempts.Value() != 3 || rt.Retries.Value() != 2 {
		t.Fatalf("calls=%d attempts=%d retries=%d, want 3/3/2",
			inner.calls, rt.Attempts.Value(), rt.Retries.Value())
	}
}

func TestRetryTransportDeadline(t *testing.T) {
	inner := &flakyTransport{fails: 1 << 30}
	rt := NewRetryTransport(inner, RetryPolicy{
		MaxAttempts: 10, BaseBackoffNs: 400e6, DeadlineNs: 1e9,
	}, nil)
	_, err := rt.Call(ia(1, 1), []byte{1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if rt.Timeouts.Value() != 1 {
		t.Fatalf("Timeouts=%d, want 1", rt.Timeouts.Value())
	}
	// The 400 ms base backoff doubles: waits alone blow the 1 s deadline
	// well before 10 attempts.
	if inner.calls >= 10 {
		t.Fatalf("deadline did not bound attempts: %d calls", inner.calls)
	}
}

// TestRetryTransportDeadlineWithNowOnly is the regression for the
// mixed-clock accounting bug: with a Now hook but NO Sleep hook (an
// instantaneous in-process transport observed through a virtual clock that
// backoff cannot advance), waits used to be credited to a private clock the
// deadline check never read, so DeadlineNs could not trip from backoff and
// the loop always ran to ErrExhausted.
func TestRetryTransportDeadlineWithNowOnly(t *testing.T) {
	inner := &flakyTransport{fails: 1 << 30}
	rt := NewRetryTransport(inner, RetryPolicy{
		MaxAttempts: 10, BaseBackoffNs: 400e6, MaxBackoffNs: 400e6, DeadlineNs: 1e9,
	}, nil)
	rt.Now = func() int64 { return 42 } // static: calls are instantaneous
	_, err := rt.Call(ia(1, 1), []byte{1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline (backoff must count against the deadline)", err)
	}
	if inner.calls >= 10 {
		t.Fatalf("deadline did not bound attempts: %d calls", inner.calls)
	}
}

// TestRetryTransportDeadlineWithSleepOnly covers the mirrored mix: a Sleep
// hook with no Now hook (nothing to read time from) must still account
// waits locally.
func TestRetryTransportDeadlineWithSleepOnly(t *testing.T) {
	inner := &flakyTransport{fails: 1 << 30}
	rt := NewRetryTransport(inner, RetryPolicy{
		MaxAttempts: 10, BaseBackoffNs: 400e6, MaxBackoffNs: 400e6, DeadlineNs: 1e9,
	}, nil)
	var slept int64
	rt.Sleep = func(d int64) { slept += d }
	_, err := rt.Call(ia(1, 1), []byte{1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if slept == 0 {
		t.Fatal("Sleep hook never invoked")
	}
}

func TestRetryTransportExhausted(t *testing.T) {
	inner := &flakyTransport{fails: 1 << 30}
	rt := NewRetryTransport(inner, RetryPolicy{
		MaxAttempts: 3, BaseBackoffNs: 10, MaxBackoffNs: 20, DeadlineNs: 1e18,
	}, nil)
	_, err := rt.Call(ia(1, 1), []byte{1})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if inner.calls != 3 || rt.Exhausted.Value() != 1 {
		t.Fatalf("calls=%d exhausted=%d, want 3/1", inner.calls, rt.Exhausted.Value())
	}
}

// backoffSchedule runs a failing call and records the virtual-time waits.
func backoffSchedule(seed uint64) []int64 {
	var waits []int64
	rt := NewRetryTransport(&flakyTransport{fails: 1 << 30}, RetryPolicy{
		MaxAttempts: 5, BaseBackoffNs: 50e6, MaxBackoffNs: 400e6, DeadlineNs: 1e18, Seed: seed,
	}, nil)
	rt.Sleep = func(d int64) { waits = append(waits, d) }
	_, _ = rt.Call(ia(1, 1), []byte{9, 9})
	return waits
}

func TestRetryBackoffDeterministicJitter(t *testing.T) {
	a, b := backoffSchedule(1), backoffSchedule(1)
	if len(a) != 4 {
		t.Fatalf("%d waits for 5 attempts", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
	}
	c := backoffSchedule(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
	// Exponential envelope: each wait sits in [backoff, 1.5*backoff] for
	// backoff = 50, 100, 200, 400 ms.
	base := int64(50e6)
	for i, w := range a {
		if w < base || w > base+base/2 {
			t.Fatalf("wait %d = %dns outside [%d, %d]", i, w, base, base+base/2)
		}
		if base < 400e6 {
			base *= 2
		}
	}
}

// lossyResponses completes calls downstream but, while armed, pretends the
// response was lost on the way back — once per distinct message. This is
// the partial-failure mode that leaves downstream hops committed.
type lossyResponses struct {
	inner Transport
	armed bool
	seen  map[string]bool
	drops int
}

func (l *lossyResponses) Call(dst topology.IA, msg []byte) ([]byte, error) {
	resp, err := l.inner.Call(dst, msg)
	if err != nil || !l.armed {
		return resp, err
	}
	if l.seen == nil {
		l.seen = make(map[string]bool)
	}
	k := string(msg)
	if !l.seen[k] {
		l.seen[k] = true
		l.drops++
		return nil, errors.New("lossy: response lost")
	}
	return resp, nil
}

// retriedFabric builds a TwoISD fabric whose 1-11 CServ speaks through a
// response-losing link wrapped in a RetryTransport.
func retriedFabric(t *testing.T) (*fabric, *lossyResponses) {
	lossy := &lossyResponses{}
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(1, 11) {
			lossy.inner = cfg.Transport
			cfg.Transport = NewRetryTransport(lossy, RetryPolicy{}, nil)
		}
	})
	return f, lossy
}

func TestRetriedSetupIsDeduplicated(t *testing.T) {
	f, lossy := retriedFabric(t)
	lossy.armed = true
	seg := f.reg.UpSegments(ia(1, 11))[0] // 1-11 → 1-2 → 1-1
	segr, err := f.services[ia(1, 11)].SetupSegment(seg, 1000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.drops == 0 {
		t.Fatal("test did not exercise a lost response")
	}
	if segr.Active.BwKbps != 50_000 {
		t.Fatalf("granted %d", segr.Active.BwKbps)
	}
	dedup := uint64(0)
	for _, h := range seg.Hops {
		s := f.services[h.IA]
		r, err := s.Store().GetSegR(segr.ID)
		if err != nil {
			t.Fatalf("AS %s missing SegR after retried setup: %v", h.IA, err)
		}
		if r.Active.Ver != 1 || r.Active.BwKbps != 50_000 {
			t.Fatalf("AS %s stored %+v", h.IA, r.Active)
		}
		// The retry must not double-charge admission: exactly the final
		// grant is allocated at the egress tube.
		if h.Eg != 0 {
			if got := s.Admission().AllocatedKbps(h.Eg); got != 50_000 {
				t.Fatalf("AS %s allocated %d kbps at eg %d, want 50000", h.IA, got, h.Eg)
			}
		}
		dedup += s.Metrics().DedupHits.Value()
	}
	if dedup == 0 {
		t.Fatal("no dedup hits recorded on a retried setup")
	}
}

func TestRetriedRenewAndActivateAreDeduplicated(t *testing.T) {
	f, lossy := retriedFabric(t)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	segr, err := src.SetupSegment(seg, 1000, 50_000)
	if err != nil {
		t.Fatal(err)
	}

	lossy.armed = true // every new message loses its first response
	ver, final, err := src.RenewSegment(segr.ID, 0, 50_000)
	if err != nil {
		t.Fatalf("retried renewal failed: %v", err)
	}
	if ver != 2 || final != 50_000 {
		t.Fatalf("renewal gave ver %d bw %d", ver, final)
	}
	for _, h := range seg.Hops {
		r, _ := f.services[h.IA].Store().GetSegR(segr.ID)
		if r.Pending == nil || r.Pending.Ver != 2 || r.Pending.BwKbps != 50_000 {
			t.Fatalf("AS %s pending %+v after retried renewal", h.IA, r.Pending)
		}
		if h.Eg != 0 {
			if got := f.services[h.IA].Admission().AllocatedKbps(h.Eg); got != 50_000 {
				t.Fatalf("AS %s allocated %d kbps after retried renewal", h.IA, got)
			}
		}
	}

	if err := src.ActivateSegment(segr.ID, ver); err != nil {
		t.Fatalf("retried activation failed: %v", err)
	}
	for _, h := range seg.Hops {
		r, _ := f.services[h.IA].Store().GetSegR(segr.ID)
		if r.Active.Ver != 2 || r.Pending != nil {
			t.Fatalf("AS %s active %+v pending %v after retried activation", h.IA, r.Active, r.Pending)
		}
	}
	if lossy.drops < 2 {
		t.Fatalf("only %d responses lost; renewal+activation should each lose one", lossy.drops)
	}
}

// failTag fails the first n calls carrying the given message tag.
type failTag struct {
	inner Transport
	tag   byte
	fails int
}

func (ft *failTag) Call(dst topology.IA, msg []byte) ([]byte, error) {
	if ft.fails > 0 && len(msg) > 0 && msg[0] == ft.tag {
		ft.fails--
		return nil, errors.New("injected: transport down")
	}
	return ft.inner.Call(dst, msg)
}

func TestAutoRenewRecoversFromActivationFailure(t *testing.T) {
	ft := &failTag{tag: tagSegActivate}
	f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
		if iaKey == ia(1, 11) {
			ft.inner = cfg.Transport
			cfg.Transport = ft
		}
	})
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	segr, err := src.SetupSegment(seg, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}

	f.clock.Store(t0 + 250) // active expires at t0+300: due with lead 60
	ft.fails = 1
	renewed, err := src.AutoRenew(60, nil)
	if err == nil || renewed != 0 {
		t.Fatalf("pass 1: renewed=%d err=%v, want activation failure", renewed, err)
	}
	cur, _ := src.Store().GetSegR(segr.ID)
	if cur.Pending == nil {
		t.Fatal("pass 1 should leave the renewed version pending")
	}

	// The stranding bug: with due-selection requiring Pending == nil, this
	// second pass would skip the SegR forever and the reservation would
	// expire. It must instead retry the activation and recover.
	renewed, err = src.AutoRenew(60, nil)
	if err != nil || renewed != 1 {
		t.Fatalf("pass 2: renewed=%d err=%v, want clean recovery", renewed, err)
	}
	cur, _ = src.Store().GetSegR(segr.ID)
	if cur.Active.Ver != 2 || cur.Pending != nil {
		t.Fatalf("after recovery: active %+v pending %v", cur.Active, cur.Pending)
	}
	for _, h := range seg.Hops {
		r, _ := f.services[h.IA].Store().GetSegR(segr.ID)
		if r.Active.Ver != 2 {
			t.Fatalf("AS %s still on version %d", h.IA, r.Active.Ver)
		}
	}
}

func TestAutoRenewZeroGrantKeepsOldVersion(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	segr, err := src.SetupSegment(seg, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}

	// Choke the transit AS: its tube now has zero capacity, so the renewal
	// is "admitted" with a zero-bandwidth grant (legal when MinKbps == 0).
	transit := seg.Hops[1]
	f.services[transit.IA].Admission().SetTubeCapKbps(transit.In, transit.Eg, 0)

	f.clock.Store(t0 + 250)
	renewed, err := src.AutoRenew(60, nil)
	if !errors.Is(err, ErrZeroGrant) || renewed != 0 {
		t.Fatalf("renewed=%d err=%v, want ErrZeroGrant", renewed, err)
	}
	cur, _ := src.Store().GetSegR(segr.ID)
	if cur.Active.Ver != 1 || cur.Active.BwKbps != 10_000 {
		t.Fatalf("old version not kept: %+v", cur.Active)
	}
	if cur.Pending != nil {
		t.Fatal("dead zero-bandwidth pending not cleared")
	}
	if src.Metrics().RenewZeroBw.Value() != 1 {
		t.Fatalf("RenewZeroBw=%d, want 1", src.Metrics().RenewZeroBw.Value())
	}

	// Capacity returns: the next pass renews and activates normally.
	f.services[transit.IA].Admission().SetTubeCapKbps(transit.In, transit.Eg, 30_000_000)
	f.clock.Store(t0 + 251)
	renewed, err = src.AutoRenew(60, nil)
	if err != nil || renewed != 1 {
		t.Fatalf("recovery pass: renewed=%d err=%v", renewed, err)
	}
	cur, _ = src.Store().GetSegR(segr.ID)
	if cur.Active.Ver != 2 || cur.Active.BwKbps != 10_000 {
		t.Fatalf("recovery produced %+v", cur.Active)
	}
}
