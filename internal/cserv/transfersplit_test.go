package cserv

import (
	"testing"

	"colibri/internal/topology"
)

// These tests pin the transfer-split release discipline (§4.7): the split's
// demand/granted aggregates must track exactly the live committed EER
// charges. Each test drives one path that used to leak dead demand — found
// by the 10⁶-flow renewal storm, where the accumulated leak crossed the
// core-SegR capacity and the fair-share cap refused every recovery
// re-admission (demotions 10⁶, re-promotions 0).

// TestTransferSplitRollbackRelease renews through a transfer AS whose
// downstream link is dead: the transfer AS admits into the split, then the
// forward call fails and the item rolls back. Repeated failed waves must not
// accumulate demand — once the link heals, every renewal must still be
// granted in full. Runs in both admission modes, which share the handlers.
func TestTransferSplitRollbackRelease(t *testing.T) {
	for _, mode := range []struct {
		name   string
		shards int
	}{{"legacy", 0}, {"cplane", 1}} {
		t.Run(mode.name, func(t *testing.T) {
			gate := &gateTransport{}
			f := twoISDFabric(t, func(iaKey topology.IA, cfg *Config) {
				cfg.CPlaneShards = mode.shards
				if iaKey == ia(1, 1) {
					gate.inner = cfg.Transport
					cfg.Transport = gate
				}
			})
			f.setupAllSegRs(t, 50_000)
			src := f.services[ia(1, 11)]
			var grants []*EERGrant
			for i := uint32(0); i < 5; i++ {
				g, err := src.RequestEER(100+i, 200+i, ia(2, 11), 8_000)
				if err != nil {
					t.Fatalf("setup %d: %v", i, err)
				}
				grants = append(grants, g)
			}
			// Five renewal waves against a dead transfer-AS downstream link:
			// each item is admitted into the split at hop 1-1, then rolled
			// back when the forward call fails.
			gate.fail.Store(true)
			for wave := uint32(1); wave <= 5; wave++ {
				f.clock.Store(t0 + wave)
				for i, g := range grants {
					if _, err := src.RenewEER(g, 8_000); err == nil {
						t.Fatalf("wave %d item %d renewed through a dead link", wave, i)
					}
				}
			}
			// Healed: the failed waves must have left no residue, so every
			// flow renews at its full bandwidth (40 of 50 Mbps committed —
			// no contention, nothing may be shaved or refused).
			gate.fail.Store(false)
			f.clock.Store(t0 + 6)
			for i, g := range grants {
				ng, err := src.RenewEER(g, 8_000)
				if err != nil {
					t.Fatalf("item %d after heal: %v", i, err)
				}
				if bw := grantBw(ng); bw != 8_000 {
					t.Fatalf("item %d after heal: granted %d kbps, want 8000", i, bw)
				}
			}
		})
	}
}

// TestTransferSplitRenewalRelease runs many constant-bandwidth keep-alive
// waves at 80% utilization: each committed renewal must return the replaced
// version's split charge, or demand doubles on the first wave and the
// fair-share cap starts shaving grants on the second.
func TestTransferSplitRenewalRelease(t *testing.T) {
	for _, mode := range []struct {
		name   string
		shards int
	}{{"legacy", 0}, {"cplane", 1}} {
		t.Run(mode.name, func(t *testing.T) {
			f := twoISDFabric(t, func(_ topology.IA, cfg *Config) {
				cfg.CPlaneShards = mode.shards
			})
			f.setupAllSegRs(t, 50_000)
			src := f.services[ia(1, 11)]
			var grants []*EERGrant
			for i := uint32(0); i < 5; i++ {
				g, err := src.RequestEER(100+i, 200+i, ia(2, 11), 8_000)
				if err != nil {
					t.Fatalf("setup %d: %v", i, err)
				}
				grants = append(grants, g)
			}
			for wave := uint32(1); wave <= 10; wave++ {
				f.clock.Store(t0 + wave)
				for i, g := range grants {
					ng, err := src.RenewEER(g, 8_000)
					if err != nil {
						t.Fatalf("wave %d item %d: %v", wave, i, err)
					}
					if bw := grantBw(ng); bw != 8_000 {
						t.Fatalf("wave %d item %d: granted %d kbps, want 8000", wave, i, bw)
					}
					grants[i] = ng
				}
			}
		})
	}
}

// TestTransferSplitExpiryRelease lets a fleet of EERs expire without renewal
// and re-establishes the same load: CPlane.Tick must report the expired
// transfer-hop records so the service returns their split charges, or the
// dead demand blocks re-admission forever (the storm's crash-recovery
// failure mode, in miniature).
func TestTransferSplitExpiryRelease(t *testing.T) {
	f := cpFabric(t, 2, nil)
	f.setupAllSegRs(t, 50_000)
	src := f.services[ia(1, 11)]
	for i := uint32(0); i < 6; i++ {
		if _, err := src.RequestEER(100+i, 200+i, ia(2, 11), 8_000); err != nil {
			t.Fatalf("setup %d: %v", i, err)
		}
	}
	// Past the 16 s EER lifetime, unrenewed: housekeeping expires the
	// records and, via the expiry hook, their transfer-split charges.
	f.clock.Store(t0 + 17)
	for _, iaKey := range f.topo.SortedIAs() {
		f.services[iaKey].Tick()
	}
	// The same load again as fresh flows: 48 of 50 Mbps must fit in full.
	for i := uint32(0); i < 6; i++ {
		g, err := src.RequestEER(300+i, 400+i, ia(2, 11), 8_000)
		if err != nil {
			t.Fatalf("re-establish %d: %v", i, err)
		}
		if bw := grantBw(g); bw != 8_000 {
			t.Fatalf("re-establish %d: granted %d kbps, want 8000", i, bw)
		}
	}
}
