package cserv

import (
	"errors"
	"sync"
	"testing"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

func poolSegR(id reservation.ID, bw uint64) *reservation.SegR {
	return &reservation.SegR{
		ID: id, In: 1, Eg: 2,
		Active: reservation.Version{Ver: 1, BwKbps: bw, ExpT: t0 + 300},
	}
}

func TestSubServicePoolRouting(t *testing.T) {
	p := NewSubServicePool(ia(1, 1), 4)
	if p.Shards() != 4 {
		t.Fatalf("shards = %d", p.Shards())
	}
	// Install many SegRs; each must be retrievable through the pool.
	for i := uint32(1); i <= 100; i++ {
		id := reservation.ID{SrcAS: ia(1, 1), Num: i}
		if err := p.AssignSegR(poolSegR(id, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(1); i <= 100; i++ {
		id := reservation.ID{SrcAS: ia(1, 1), Num: i}
		if _, err := p.SegR(id); err != nil {
			t.Fatalf("SegR %d not found: %v", i, err)
		}
	}
}

func TestSubServicePoolAdmitsAndIsolates(t *testing.T) {
	p := NewSubServicePool(ia(1, 1), 4)
	sid := reservation.ID{SrcAS: ia(1, 1), Num: 1}
	if err := p.AssignSegR(poolSegR(sid, 1000)); err != nil {
		t.Fatal(err)
	}
	eer := &reservation.EER{ID: reservation.ID{SrcAS: ia(1, 9), Num: 1}}
	v := reservation.Version{Ver: 1, BwKbps: 600, ExpT: t0 + 16}
	if err := p.AdmitEER(eer, []reservation.ID{sid}, v, t0); err != nil {
		t.Fatal(err)
	}
	// Over-capacity on the same SegR is refused by its owning shard.
	eer2 := &reservation.EER{ID: reservation.ID{SrcAS: ia(1, 9), Num: 2}}
	v2 := reservation.Version{Ver: 1, BwKbps: 600, ExpT: t0 + 16}
	if err := p.AdmitEER(eer2, []reservation.ID{sid}, v2, t0); !errors.Is(err, reservation.ErrInsufficient) {
		t.Errorf("over-capacity: %v", err)
	}
	sr, err := p.SegR(sid)
	if err != nil {
		t.Fatal(err)
	}
	if sr.AllocatedEERKbps != 600 {
		t.Errorf("allocated = %d", sr.AllocatedEERKbps)
	}
}

func TestSubServicePoolCrossShardSplit(t *testing.T) {
	p := NewSubServicePool(ia(1, 1), 8)
	// Find two SegRs on different shards.
	var a, b reservation.ID
	for i := uint32(1); ; i++ {
		id := reservation.ID{SrcAS: ia(1, 1), Num: i}
		if a.IsZero() {
			a = id
			continue
		}
		if p.shardOf(id) != p.shardOf(a) {
			b = id
			break
		}
	}
	if err := p.AssignSegR(poolSegR(a, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignSegR(poolSegR(b, 500)); err != nil {
		t.Fatal(err)
	}
	eer := &reservation.EER{ID: reservation.ID{SrcAS: ia(1, 9), Num: 1}}
	v := reservation.Version{Ver: 1, BwKbps: 400, ExpT: t0 + 16}
	// Direct admission reports the cross-shard condition…
	if err := p.AdmitEER(eer, []reservation.ID{a, b}, v, t0); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard: %v", err)
	}
	// …and the App. D split admission handles it, charging both.
	if err := p.AdmitEERSplit(eer, []reservation.ID{a, b}, v, t0); err != nil {
		t.Fatal(err)
	}
	ra, _ := p.SegR(a)
	rb, _ := p.SegR(b)
	if ra.AllocatedEERKbps != 400 || rb.AllocatedEERKbps != 400 {
		t.Errorf("allocations: %d, %d", ra.AllocatedEERKbps, rb.AllocatedEERKbps)
	}
	// Failure at the second SegR rolls back the first.
	eer2 := &reservation.EER{ID: reservation.ID{SrcAS: ia(1, 9), Num: 2}}
	v2 := reservation.Version{Ver: 1, BwKbps: 400, ExpT: t0 + 16}
	if err := p.AdmitEERSplit(eer2, []reservation.ID{a, b}, v2, t0); err == nil {
		t.Fatal("over-capacity split admission succeeded")
	}
	ra, _ = p.SegR(a)
	if ra.AllocatedEERKbps != 400 {
		t.Errorf("rollback leaked: %d", ra.AllocatedEERKbps)
	}
}

// TestSubServicePoolParallel drives admissions from many goroutines across
// shards — the scaling mode of App. D (run with -race).
func TestSubServicePoolParallel(t *testing.T) {
	p := NewSubServicePool(ia(1, 1), 8)
	const segs = 64
	for i := uint32(1); i <= segs; i++ {
		id := reservation.ID{SrcAS: ia(1, 1), Num: i}
		if err := p.AssignSegR(poolSegR(id, 1<<30)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sid := reservation.ID{SrcAS: ia(1, 1), Num: uint32(1 + (g*500+i)%segs)}
				eer := &reservation.EER{ID: reservation.ID{SrcAS: ia(1, topology.ASID(100+g)), Num: uint32(i + 1)}}
				v := reservation.Version{Ver: 1, BwKbps: 10, ExpT: t0 + 16}
				if err := p.AdmitEER(eer, []reservation.ID{sid}, v, t0); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All admitted bandwidth is accounted.
	var total uint64
	for i := uint32(1); i <= segs; i++ {
		sr, err := p.SegR(reservation.ID{SrcAS: ia(1, 1), Num: i})
		if err != nil {
			t.Fatal(err)
		}
		total += sr.AllocatedEERKbps
	}
	if total != 8*500*10 {
		t.Errorf("total allocated = %d, want %d", total, 8*500*10)
	}
	// Cleanup across shards works.
	removed := p.Cleanup(t0 + 1000)
	if len(removed) != segs {
		t.Errorf("cleanup removed %d SegRs", len(removed))
	}
}
