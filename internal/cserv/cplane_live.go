// cplane_live.go — the CPlane surface consumed by the live request path
// (service.go / segr.go / eer.go) when a Service runs in CPlane mode
// (Config.CPlaneShards > 0).
//
// The batch engine in cplane.go keeps its one-lock-per-op discipline; the
// live path additionally needs
//
//   - SegR admission wrappers that mirror admission.Admitter's renewal/
//     adjust/abort surface while keeping the per-shard segBw cache and the
//     EER demand ledgers coherent,
//   - EER operations over one OR two covering SegRs: at a transfer AS an
//     EER entering on an up-segment and leaving on a core-segment consumes
//     bandwidth on both (§4.7), and the two SegRs may live in different
//     shards,
//   - version-aware lookup for the handlers' idempotent dedup of retried
//     requests, and
//   - forced SegR drop for the store-cleanup path.
//
// Lock discipline: every function here acquires the shards it needs in
// ascending shard-index order and holds them to completion (deferred
// unlock). Single-lock operations elsewhere never acquire a second shard
// lock while holding one, so ordered acquisition keeps the engine
// deadlock-free; DropSegR takes its locks strictly one at a time.
package cserv

import (
	"sort"

	"colibri/internal/admission"
	"colibri/internal/reservation"
	"colibri/internal/restree"
)

// LookupEER returns the admitted record of an EER — bandwidth, protocol
// version, and expiry — for the handlers' idempotent dedup. seg must be the
// EER's primary covering SegR (the first local covering segment, which is
// what the handlers admit under).
func (c *CPlane) LookupEER(eer, seg reservation.ID) (bwKbps uint64, ver uint16, expT uint32, ok bool) {
	sh := c.shardFor(seg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.eers[eer]
	if !ok || e.seg != seg {
		return 0, 0, 0, false
	}
	return e.bw, e.ver, e.expT, true
}

// SegAvail returns the bandwidth available to new EER admissions over the
// SegR during [fromT, toT): the SegR's grant minus the ledger's maximum
// demand over the window. Unknown SegRs have nothing available.
func (c *CPlane) SegAvail(seg reservation.ID, fromT, toT uint32) uint64 {
	sh := c.shardFor(seg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	led, ok := sh.ledgers[seg]
	if !ok {
		return 0
	}
	led.Advance(fromT)
	free := sh.segBw[seg]
	m := led.MaxDemand(fromT, toT)
	if uint64(m) >= free {
		return 0
	}
	return free - uint64(m)
}

// SegDemandMax returns the maximum outstanding EER demand on the SegR from
// now to the end of any admitted EER's lifetime — the CPlane-mode
// replacement for the store's AllocatedEERKbps in the activation
// over-allocation check. ok is false for unknown SegRs.
func (c *CPlane) SegDemandMax(seg reservation.ID) (uint64, bool) {
	now := c.clock()
	sh := c.shardFor(seg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	led, ok := sh.ledgers[seg]
	if !ok {
		return 0, false
	}
	led.Advance(now)
	// EER charges never extend past one lifetime from admission, so two
	// lifetimes from now bounds every live window without approaching the
	// ledger horizon.
	m := led.MaxDemand(now, now+2*reservation.EERLifetimeSeconds)
	if m < 0 {
		m = 0
	}
	return uint64(m), true
}

// RenewSegRWithUndo re-admits a SegR on its shard with fresh scale factors,
// returning an undo closure restoring the pre-renewal snapshot (admitter
// state and cached grant). EER charges are untouched in both directions —
// admitted versions keep their allocations until expiry (§4.2).
func (c *CPlane) RenewSegRWithUndo(req admission.Request) (uint64, func(), error) {
	sh := c.shardFor(req.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prev, ok := sh.segBw[req.ID]
	if !ok {
		return 0, nil, ErrUnknownSegR
	}
	grant, undo, err := sh.adm.RenewSegRWithUndo(req)
	if err != nil {
		c.rejects.Add(1)
		return 0, nil, err
	}
	sh.segBw[req.ID] = grant
	c.renews.Add(1)
	wrapped := func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if undo != nil {
			undo()
		}
		sh.segBw[req.ID] = prev
	}
	return grant, wrapped, nil
}

// AdjustSegR lowers a SegR's grant to the backward-pass minimum, mirroring
// admission.Admitter.AdjustGrant while keeping the segBw cache coherent.
func (c *CPlane) AdjustSegR(id reservation.ID, finalKbps uint64) error {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.segBw[id]; !ok {
		return ErrUnknownSegR
	}
	if err := sh.adm.AdjustGrant(id, finalKbps); err != nil {
		return err
	}
	sh.segBw[id] = finalKbps
	return nil
}

// AbortSegR rolls back a fresh AddSegR after a downstream setup failure.
// It must only be used for setups — the ledger is dropped with the SegR, so
// aborting a renewal would orphan admitted EER charges (renewals roll back
// through their undo closure instead).
func (c *CPlane) AbortSegR(id reservation.ID) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.segBw[id]; !ok {
		return
	}
	sh.adm.Release(id)
	delete(sh.segBw, id)
	delete(sh.ledgers, id)
	c.segCount.Add(-1)
}

// pathShards returns the shard indices to lock for a covering-SegR set in
// ascending order; b is -1 when one lock suffices (single seg, or both segs
// hash to the same shard).
func (c *CPlane) pathShards(segs []reservation.ID) (a, b int) {
	a = c.shardIndex(segs[0])
	b = -1
	if len(segs) > 1 {
		if i := c.shardIndex(segs[1]); i != a {
			b = i
		}
	}
	if b >= 0 && b < a {
		a, b = b, a
	}
	return a, b
}

// normPath collapses a degenerate two-entry covering set (same SegR twice)
// to a single entry so the two-seg paths can assume distinct segments.
func normPath(segs []reservation.ID) []reservation.ID {
	if len(segs) == 2 && segs[0] == segs[1] {
		return segs[:1]
	}
	return segs
}

// SetupEERPath admits an EER of bwKbps until expT against its covering
// SegRs at this AS — one for most hops, two at a transfer AS (§4.7), in
// which case the demand must fit under BOTH SegRs' grants and is charged on
// both ledgers. Admission is full-or-nothing. The record carries ver for
// idempotent dedup; segs[0] is the primary segment that owns the record.
func (c *CPlane) SetupEERPath(eer reservation.ID, segs []reservation.ID, bwKbps uint64, expT uint32, ver uint16) error {
	segs = normPath(segs)
	if len(segs) == 1 {
		sh := c.shardFor(segs[0])
		now := c.clock()
		sh.mu.Lock()
		err := sh.setupEERLocked(eer, segs[0], bwKbps, now, now, expT, ver)
		sh.mu.Unlock()
		if err != nil {
			if err == restree.ErrExists {
				c.dedups.Add(1)
			} else {
				c.rejects.Add(1)
			}
			return err
		}
		c.eerCount.Add(1)
		c.admits.Add(1)
		return nil
	}
	now := c.clock()
	a, b := c.pathShards(segs)
	c.shards[a].mu.Lock()
	defer c.shards[a].mu.Unlock()
	if b >= 0 {
		c.shards[b].mu.Lock()
		defer c.shards[b].mu.Unlock()
	}
	prim := c.shardFor(segs[0])
	if _, dup := prim.eers[eer]; dup {
		c.dedups.Add(1)
		return restree.ErrExists
	}
	var leds [2]*restree.Ledger[reservation.ID]
	for k, seg := range segs {
		sh := c.shardFor(seg)
		led, ok := sh.ledgers[seg]
		if !ok {
			c.rejects.Add(1)
			return ErrUnknownSegR
		}
		led.Advance(now)
		free := sh.segBw[seg]
		if m := led.MaxDemand(now, expT); uint64(m) >= free {
			free = 0
		} else {
			free -= uint64(m)
		}
		if bwKbps > free {
			c.rejects.Add(1)
			return ErrInsufficient
		}
		leds[k] = led
	}
	if err := leds[0].Reserve(eer, now, expT, int64(bwKbps)); err != nil {
		c.rejects.Add(1)
		return err
	}
	if err := leds[1].Reserve(eer, now, expT, int64(bwKbps)); err != nil {
		leds[0].Teardown(eer)
		c.rejects.Add(1)
		return err
	}
	prim.eers[eer] = cpEER{seg: segs[0], seg2: segs[1], bw: bwKbps, expT: expT, ver: ver}
	c.eerCount.Add(1)
	c.admits.Add(1)
	return nil
}

// RenewEERPath renews an EER over its covering SegRs, granting
// min(requested, free) where free is evaluated against EVERY covering SegR
// at this AS. A zero grant restores the previous version when it is still
// live (§4.2 fallback) and reports ErrInsufficient; an EER with no record
// reports ErrUnknownEER. Callers needing rollback capture the previous
// record via LookupEER beforehand and reinstate it with RestoreEERPath.
func (c *CPlane) RenewEERPath(eer reservation.ID, segs []reservation.ID, bwKbps uint64, expT uint32, ver uint16) (uint64, error) {
	segs = normPath(segs)
	if len(segs) == 1 {
		it := EERRenewal{EER: eer, Seg: segs[0], BwKbps: bwKbps, ExpT: expT, Ver: ver}
		sh := c.shardFor(segs[0])
		now := c.clock()
		sh.mu.Lock()
		g, err, gone := sh.renewEERLocked(&it, now)
		sh.mu.Unlock()
		switch {
		case err == nil:
			c.renews.Add(1)
		case err == ErrUnknownEER:
			c.stale.Add(1)
		default:
			c.rejects.Add(1)
		}
		if gone {
			c.eerCount.Add(-1)
		}
		return g, err
	}
	now := c.clock()
	a, b := c.pathShards(segs)
	c.shards[a].mu.Lock()
	defer c.shards[a].mu.Unlock()
	if b >= 0 {
		c.shards[b].mu.Lock()
		defer c.shards[b].mu.Unlock()
	}
	prim := c.shardFor(segs[0])
	e, ok := prim.eers[eer]
	if !ok || e.seg != segs[0] || e.seg2 != segs[1] {
		c.stale.Add(1)
		return 0, ErrUnknownEER
	}
	led0 := prim.ledgers[segs[0]]
	led1 := c.shardFor(segs[1]).ledgers[segs[1]]
	if led0 == nil || led1 == nil {
		c.rejects.Add(1)
		return 0, ErrUnknownSegR
	}
	led0.Advance(now)
	led1.Advance(now)
	// A renewal replaces the version: remove the old charges before probing.
	led0.Teardown(eer)
	led1.Teardown(eer)
	free := c.shardFor(segs[0]).segBw[segs[0]]
	if m := led0.MaxDemand(now, expT); uint64(m) >= free {
		free = 0
	} else {
		free -= uint64(m)
	}
	f2 := c.shardFor(segs[1]).segBw[segs[1]]
	if m := led1.MaxDemand(now, expT); uint64(m) >= f2 {
		f2 = 0
	} else {
		f2 -= uint64(m)
	}
	if f2 < free {
		free = f2
	}
	grant := bwKbps
	if grant > free {
		grant = free
	}
	if grant == 0 {
		if e.expT > now {
			if led0.Reserve(eer, now, e.expT, int64(e.bw)) == nil &&
				led1.Reserve(eer, now, e.expT, int64(e.bw)) == nil {
				c.rejects.Add(1)
				return 0, ErrInsufficient
			}
			led0.Teardown(eer)
			led1.Teardown(eer)
		}
		delete(prim.eers, eer)
		c.eerCount.Add(-1)
		c.rejects.Add(1)
		return 0, ErrInsufficient
	}
	if err := reservePair(led0, led1, eer, now, expT, int64(grant)); err != nil {
		// Window invalid: restore the old version if still live.
		if e.expT > now &&
			led0.Reserve(eer, now, e.expT, int64(e.bw)) == nil &&
			led1.Reserve(eer, now, e.expT, int64(e.bw)) == nil {
			c.rejects.Add(1)
			return 0, err
		}
		led0.Teardown(eer)
		led1.Teardown(eer)
		delete(prim.eers, eer)
		c.eerCount.Add(-1)
		c.rejects.Add(1)
		return 0, err
	}
	prim.eers[eer] = cpEER{seg: segs[0], seg2: segs[1], bw: grant, expT: expT, ver: ver}
	c.renews.Add(1)
	return grant, nil
}

// reservePair charges both ledgers or neither.
func reservePair(led0, led1 *restree.Ledger[reservation.ID], eer reservation.ID, now, expT uint32, bw int64) error {
	if err := led0.Reserve(eer, now, expT, bw); err != nil {
		return err
	}
	if err := led1.Reserve(eer, now, expT, bw); err != nil {
		led0.Teardown(eer)
		return err
	}
	return nil
}

// RestoreEERPath force-reinstates a previous EER version after a downstream
// failure rolled back a setup or renewal: the current charges are removed
// and the given version is re-charged WITHOUT an admission check (it is the
// caller's own prior state, which fits by construction once the newer
// charge is gone). An already-expired version (expT <= now) removes the
// record entirely.
func (c *CPlane) RestoreEERPath(eer reservation.ID, segs []reservation.ID, bwKbps uint64, expT uint32, ver uint16) {
	segs = normPath(segs)
	now := c.clock()
	a, b := c.pathShards(segs)
	c.shards[a].mu.Lock()
	defer c.shards[a].mu.Unlock()
	if b >= 0 {
		c.shards[b].mu.Lock()
		defer c.shards[b].mu.Unlock()
	}
	prim := c.shardFor(segs[0])
	_, had := prim.eers[eer]
	alive := 0
	for _, seg := range segs {
		if led := c.shardFor(seg).ledgers[seg]; led != nil {
			led.Teardown(eer)
			if expT > now && led.Reserve(eer, now, expT, int64(bwKbps)) == nil {
				alive++
			}
		}
	}
	if expT <= now || alive < len(segs) {
		// Nothing to restore (or a partial restore that must not stand):
		// drop every charge and the record.
		for _, seg := range segs {
			if led := c.shardFor(seg).ledgers[seg]; led != nil {
				led.Teardown(eer)
			}
		}
		if had {
			delete(prim.eers, eer)
			c.eerCount.Add(-1)
		}
		return
	}
	rec := cpEER{seg: segs[0], bw: bwKbps, expT: expT, ver: ver}
	if len(segs) == 2 {
		rec.seg2 = segs[1]
	}
	prim.eers[eer] = rec
	if !had {
		c.eerCount.Add(1)
	}
}

// AdjustEERPath lowers an EER's charge to the backward-pass final grant
// (the response leg shrinking a grant to the path-wide minimum). A zero
// final removes the record. Unknown EERs are a no-op.
func (c *CPlane) AdjustEERPath(eer reservation.ID, segs []reservation.ID, finalKbps uint64) {
	segs = normPath(segs)
	now := c.clock()
	a, b := c.pathShards(segs)
	c.shards[a].mu.Lock()
	defer c.shards[a].mu.Unlock()
	if b >= 0 {
		c.shards[b].mu.Lock()
		defer c.shards[b].mu.Unlock()
	}
	prim := c.shardFor(segs[0])
	e, ok := prim.eers[eer]
	if !ok || e.seg != segs[0] {
		return
	}
	alive := 0
	for _, seg := range segs {
		if led := c.shardFor(seg).ledgers[seg]; led != nil {
			led.Teardown(eer)
			if finalKbps > 0 && e.expT > now &&
				led.Reserve(eer, now, e.expT, int64(finalKbps)) == nil {
				alive++
			}
		}
	}
	if finalKbps == 0 || e.expT <= now || alive < len(segs) {
		for _, seg := range segs {
			if led := c.shardFor(seg).ledgers[seg]; led != nil {
				led.Teardown(eer)
			}
		}
		delete(prim.eers, eer)
		c.eerCount.Add(-1)
		return
	}
	e.bw = finalKbps
	prim.eers[eer] = e
}

// TeardownEERPath removes an EER and its charges on every covering SegR.
// Unknown EERs are a no-op.
func (c *CPlane) TeardownEERPath(eer reservation.ID, segs []reservation.ID) {
	segs = normPath(segs)
	a, b := c.pathShards(segs)
	c.shards[a].mu.Lock()
	defer c.shards[a].mu.Unlock()
	if b >= 0 {
		c.shards[b].mu.Lock()
		defer c.shards[b].mu.Unlock()
	}
	prim := c.shardFor(segs[0])
	e, ok := prim.eers[eer]
	if !ok || e.seg != segs[0] {
		return
	}
	for _, seg := range segs {
		if led := c.shardFor(seg).ledgers[seg]; led != nil {
			led.Teardown(eer)
		}
	}
	delete(prim.eers, eer)
	c.eerCount.Add(-1)
}

// DropSegR force-removes a SegR (store cleanup of an expired or torn-down
// segment) along with every EER record referencing it — including
// transfer-AS records whose OTHER covering segment survives: a §4.7 EER
// loses its reservation when either covering SegR goes. Locks are taken
// strictly one at a time; iteration collects keys and sorts them so runs
// are deterministic.
func (c *CPlane) DropSegR(id reservation.ID) {
	type foreignDrop struct {
		shard int
		seg   reservation.ID
		eer   reservation.ID
	}
	var foreign []foreignDrop
	removed := 0
	for si, sh := range c.shards {
		sh.mu.Lock()
		var victims []reservation.ID
		for eid, e := range sh.eers {
			if e.seg == id || e.seg2 == id {
				victims = append(victims, eid)
			}
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].Less(victims[j]) })
		for _, eid := range victims {
			e := sh.eers[eid]
			if led := sh.ledgers[e.seg]; led != nil {
				led.Teardown(eid)
			}
			if e.seg2 != (reservation.ID{}) {
				if s2 := c.shardIndex(e.seg2); s2 == si {
					if led := sh.ledgers[e.seg2]; led != nil {
						led.Teardown(eid)
					}
				} else {
					foreign = append(foreign, foreignDrop{shard: s2, seg: e.seg2, eer: eid})
				}
			}
			delete(sh.eers, eid)
			removed++
		}
		sh.mu.Unlock()
	}
	for _, d := range foreign {
		sh := c.shards[d.shard]
		sh.mu.Lock()
		if led := sh.ledgers[d.seg]; led != nil {
			led.Teardown(d.eer)
		}
		sh.mu.Unlock()
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.segBw[id]; ok {
		sh.adm.Release(id)
		delete(sh.segBw, id)
		delete(sh.ledgers, id)
		c.segCount.Add(-1)
	}
	sh.mu.Unlock()
	c.eerCount.Add(-int64(removed))
}
