package cserv

import (
	"fmt"
	"sort"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

// Directory implements the dissemination of segment reservations of
// Appendix C: initiators register their SegRs (optionally with an AS
// whitelist), and CServs query it to assemble SegR chains covering a
// destination. In a deployment this is the hierarchy of CServ caches
// contacting remote CServs; here one shared directory with per-query
// filtering models the same information flow (cache invalidation of App. C
// corresponds to Expire/Unregister).
type Directory struct {
	mu     sync.RWMutex
	offers map[reservation.ID]*Offer
}

// Offer is one registered segment reservation available for EER creation.
type Offer struct {
	ID  reservation.ID
	Seg *segment.Segment
	// Bw is the currently active bandwidth (informational, for chain
	// selection).
	Bw   uint64
	ExpT uint32
	// Whitelist restricts which ASes may build EERs over the SegR
	// (nil = public), per Appendix C.
	Whitelist map[topology.IA]bool
}

// usableBy reports whether the offer admits use by the given AS.
func (o *Offer) usableBy(ia topology.IA) bool {
	return o.Whitelist == nil || o.Whitelist[ia]
}

// NewDirectory builds an empty directory.
func NewDirectory() *Directory {
	return &Directory{offers: make(map[reservation.ID]*Offer)}
}

// Register inserts or refreshes an offer.
func (d *Directory) Register(o *Offer) {
	d.mu.Lock()
	d.offers[o.ID] = o
	d.mu.Unlock()
}

// Unregister removes an offer.
func (d *Directory) Unregister(id reservation.ID) {
	d.mu.Lock()
	delete(d.offers, id)
	d.mu.Unlock()
}

// Expire drops offers past their expiry.
func (d *Directory) Expire(now uint32) {
	d.mu.Lock()
	for id, o := range d.offers {
		if now >= o.ExpT {
			delete(d.offers, id)
		}
	}
	d.mu.Unlock()
}

// Len returns the number of registered offers.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.offers)
}

// chains enumerates joinable offer sequences from src to dst usable by
// requester, shortest paths first, capped at limit.
func (d *Directory) chains(src, dst, requester topology.IA, limit int) [][]*Offer {
	d.mu.RLock()
	var ups, cores, downs []*Offer
	// Collection order is irrelevant: each bucket is sorted by ID below
	// before enumeration.
	//colibri:allow(determinism)
	for _, o := range d.offers {
		if !o.usableBy(requester) {
			continue
		}
		switch o.Seg.Type {
		case segment.Up:
			if o.Seg.SrcIA() == src {
				ups = append(ups, o)
			}
		case segment.Core:
			cores = append(cores, o)
		case segment.Down:
			if o.Seg.DstIA() == dst {
				downs = append(downs, o)
			}
		}
	}
	d.mu.RUnlock()

	// The offers map iterates in random order; sort each bucket so chain
	// enumeration — and therefore path selection and every control-plane
	// trace downstream of it — is deterministic across runs.
	for _, bucket := range [][]*Offer{ups, cores, downs} {
		sort.Slice(bucket, func(i, j int) bool {
			if bucket[i].ID.SrcAS != bucket[j].ID.SrcAS {
				return bucket[i].ID.SrcAS < bucket[j].ID.SrcAS
			}
			return bucket[i].ID.Num < bucket[j].ID.Num
		})
	}

	var out [][]*Offer
	try := func(chain ...*Offer) {
		segs := make([]*segment.Segment, len(chain))
		for i, o := range chain {
			segs[i] = o.Seg
		}
		if _, err := segment.Join(segs...); err == nil {
			out = append(out, append([]*Offer(nil), chain...))
		}
	}
	// Single-segment chains.
	for _, u := range ups {
		if u.Seg.DstIA() == dst {
			try(u)
		}
	}
	for _, dn := range downs {
		if dn.Seg.SrcIA() == src {
			try(dn)
		}
	}
	for _, c := range cores {
		if c.Seg.SrcIA() == src && c.Seg.DstIA() == dst {
			try(c)
		}
	}
	// Two-segment chains.
	for _, u := range ups {
		for _, dn := range downs {
			if u.Seg.DstIA() == dn.Seg.SrcIA() {
				try(u, dn)
			}
		}
		for _, c := range cores {
			if u.Seg.DstIA() == c.Seg.SrcIA() && c.Seg.DstIA() == dst {
				try(u, c)
			}
		}
	}
	for _, c := range cores {
		if c.Seg.SrcIA() != src {
			continue
		}
		for _, dn := range downs {
			if c.Seg.DstIA() == dn.Seg.SrcIA() {
				try(c, dn)
			}
		}
	}
	// Three-segment chains.
	for _, u := range ups {
		for _, c := range cores {
			if u.Seg.DstIA() != c.Seg.SrcIA() {
				continue
			}
			for _, dn := range downs {
				if c.Seg.DstIA() == dn.Seg.SrcIA() {
					try(u, c, dn)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return chainLen(out[i]) < chainLen(out[j]) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func chainLen(chain []*Offer) int {
	n := 0
	for _, o := range chain {
		n += o.Seg.Len() - 1
	}
	return n + 1
}

// SegRsTo returns joinable SegR chains from this AS to dstIA, shortest
// first. It is what the end-host daemon queries before an EER request
// (Appendix C).
func (s *Service) SegRsTo(dstIA topology.IA) ([][]*Offer, error) {
	if s.dir == nil {
		return nil, fmt.Errorf("cserv: no directory configured")
	}
	chains := s.dir.chains(s.ia, dstIA, s.ia, 8)
	if len(chains) == 0 {
		return nil, fmt.Errorf("cserv: no segment reservations from %s to %s", s.ia, dstIA)
	}
	return chains, nil
}
