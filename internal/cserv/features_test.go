package cserv

import (
	"strings"
	"testing"
)

func TestDownSegmentRequest(t *testing.T) {
	f := twoISDFabric(t, nil)
	leaf := f.services[ia(2, 11)]
	downSeg := f.reg.DownSegments(ia(2, 11))[0] // 2-1 → 2-11
	if err := leaf.RequestDownSegment(downSeg, 1000, 50_000); err != nil {
		t.Fatal(err)
	}
	// The head AS (2-1) initiated and registered the SegR.
	if f.dir.Len() != 1 {
		t.Fatalf("directory has %d offers", f.dir.Len())
	}
	segs, _ := f.services[ia(2, 1)].Store().Counts()
	if segs != 1 {
		t.Errorf("head AS stores %d SegRs", segs)
	}
	// The requester AS stores its on-path view too.
	segs, _ = leaf.Store().Counts()
	if segs != 1 {
		t.Errorf("requester stores %d SegRs", segs)
	}
}

func TestDownSegmentRequestValidation(t *testing.T) {
	f := twoISDFabric(t, nil)
	leaf := f.services[ia(2, 11)]
	upSeg := f.reg.UpSegments(ia(1, 11))[0]
	if err := leaf.RequestDownSegment(upSeg, 0, 1000); err == nil {
		t.Error("up-segment accepted by RequestDownSegment")
	}
	otherDown := f.reg.DownSegments(ia(1, 11))[0]
	if err := leaf.RequestDownSegment(otherDown, 0, 1000); err == nil {
		t.Error("down-segment for another AS accepted")
	}
	// A forged requester (MAC computed with the wrong key) is refused by
	// the head AS.
	downSeg := f.reg.DownSegments(ia(2, 11))[0]
	req := &DownSegReq{
		Requester: ia(2, 11),
		Seg:       HopsFromSegment(downSeg),
		MaxKbps:   1000,
	}
	// No/garbage MAC.
	data, err := f.Call(ia(2, 1), req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := UnmarshalSegSetupResp(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Reason, "authentication") {
		t.Errorf("forged down request: %+v", resp)
	}
}

func TestEERRenewalThrottled(t *testing.T) {
	f := twoISDFabric(t, nil)
	f.setupAllSegRs(t, 100_000)
	src := f.services[ia(1, 11)]
	g, err := src.RequestEER(1, 2, ia(2, 11), 1_000)
	if err != nil {
		t.Fatal(err)
	}
	// First renewal within the second passes; the second is throttled.
	g2, err := src.RenewEER(g, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.RenewEER(g2, 1_000); err == nil {
		t.Fatal("second renewal within one second accepted")
	}
	if src.Metrics().Snapshot().RenewThrottle == 0 {
		t.Error("throttle not counted")
	}
	// Next second it is allowed again.
	f.clock.Store(t0 + 1)
	if _, err := src.RenewEER(g2, 1_000); err != nil {
		t.Errorf("renewal after window: %v", err)
	}
}

func TestMetricsCounting(t *testing.T) {
	f := twoISDFabric(t, nil)
	seg := f.reg.UpSegments(ia(1, 11))[0]
	src := f.services[ia(1, 11)]
	segr, err := src.SetupSegment(seg, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	ver, _, err := src.RenewSegment(segr.ID, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ActivateSegment(segr.ID, ver); err != nil {
		t.Fatal(err)
	}
	// Over-capacity setup fails and counts.
	if _, err := src.SetupSegment(seg, 1<<40, 1<<40); err == nil {
		t.Fatal("impossible setup accepted")
	}
	m := src.Metrics().Snapshot()
	if m.SegSetupOK != 1 || m.SegRenewOK != 1 || m.SegActivate != 1 || m.SegSetupFail == 0 {
		t.Errorf("metrics: %s", m)
	}
	if !strings.Contains(m.String(), "seg setup 1/") {
		t.Errorf("String(): %s", m)
	}
	// Transit AS counted the same requests from its side.
	transit := f.services[seg.Hops[1].IA]
	tm := transit.Metrics().Snapshot()
	if tm.SegSetupOK != 1 || tm.SegRenewOK != 1 {
		t.Errorf("transit metrics: %s", tm)
	}
}

func TestDownReqRoundTrip(t *testing.T) {
	req := &DownSegReq{
		Requester: ia(2, 11),
		Seg: []PathHop{
			{IA: ia(2, 1), Eg: 4},
			{IA: ia(2, 11), In: 1},
		},
		MinKbps: 5,
		MaxKbps: 10,
	}
	req.Mac[3] = 0xBB
	got, err := UnmarshalDownSegReq(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Requester != req.Requester || len(got.Seg) != 2 ||
		got.MinKbps != 5 || got.MaxKbps != 10 || got.Mac[3] != 0xBB {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := UnmarshalDownSegReq([]byte{tagDownReq, 1}); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := UnmarshalDownSegReq([]byte{tagSegSetup}); err == nil {
		t.Error("wrong tag accepted")
	}
}

func TestHandleDownReqSegmentChecks(t *testing.T) {
	f := twoISDFabric(t, nil)
	head := f.services[ia(2, 1)]
	downSeg := f.reg.DownSegments(ia(2, 11))[0]

	// Segment not starting at the head AS.
	bad := &DownSegReq{Requester: ia(2, 11), Seg: HopsFromSegment(downSeg)[1:], MaxKbps: 10}
	if resp := head.handleDownReq(bad); resp.OK {
		t.Error("segment not starting here accepted")
	}
	// Requester not the last AS.
	bad2 := &DownSegReq{Requester: ia(1, 11), Seg: HopsFromSegment(downSeg), MaxKbps: 10}
	if resp := head.handleDownReq(bad2); resp.OK {
		t.Error("wrong requester accepted")
	}
}
