package cserv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"colibri/internal/reservation"
)

// Metrics counts the service's control-plane activity. All counters are
// safe for concurrent use; Snapshot returns a consistent copy.
type Metrics struct {
	SegSetupOK    atomic.Uint64
	SegSetupFail  atomic.Uint64
	SegRenewOK    atomic.Uint64
	SegRenewFail  atomic.Uint64
	SegActivate   atomic.Uint64
	EESetupOK     atomic.Uint64
	EESetupFail   atomic.Uint64
	EERenewOK     atomic.Uint64
	EERenewFail   atomic.Uint64
	AuthFailures  atomic.Uint64
	RateLimited   atomic.Uint64
	RenewThrottle atomic.Uint64
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	SegSetupOK, SegSetupFail  uint64
	SegRenewOK, SegRenewFail  uint64
	SegActivate               uint64
	EESetupOK, EESetupFail    uint64
	EERenewOK, EERenewFail    uint64
	AuthFailures, RateLimited uint64
	RenewThrottle             uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		SegSetupOK:    m.SegSetupOK.Load(),
		SegSetupFail:  m.SegSetupFail.Load(),
		SegRenewOK:    m.SegRenewOK.Load(),
		SegRenewFail:  m.SegRenewFail.Load(),
		SegActivate:   m.SegActivate.Load(),
		EESetupOK:     m.EESetupOK.Load(),
		EESetupFail:   m.EESetupFail.Load(),
		EERenewOK:     m.EERenewOK.Load(),
		EERenewFail:   m.EERenewFail.Load(),
		AuthFailures:  m.AuthFailures.Load(),
		RateLimited:   m.RateLimited.Load(),
		RenewThrottle: m.RenewThrottle.Load(),
	}
}

func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"seg setup %d/%d renew %d/%d activate %d | ee setup %d/%d renew %d/%d | auth-fail %d rate-limited %d renew-throttled %d",
		s.SegSetupOK, s.SegSetupFail, s.SegRenewOK, s.SegRenewFail, s.SegActivate,
		s.EESetupOK, s.EESetupFail, s.EERenewOK, s.EERenewFail,
		s.AuthFailures, s.RateLimited, s.RenewThrottle)
}

// renewLimiter enforces §4.2's per-EER renewal rate limit ("CServs can
// rate-limit the amount of renewal requests for an EER (e.g., to one per
// second)").
type renewLimiter struct {
	mu   sync.Mutex
	last map[reservation.ID]uint32
}

func newRenewLimiter() *renewLimiter {
	return &renewLimiter{last: make(map[reservation.ID]uint32)}
}

// Allow admits at most one renewal per EER per second.
func (l *renewLimiter) Allow(id reservation.ID, now uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.last[id]; ok && t == now {
		return false
	}
	l.last[id] = now
	return true
}

// Expire drops stale entries (called from Tick).
func (l *renewLimiter) Expire(now uint32) {
	l.mu.Lock()
	for id, t := range l.last {
		if now > t+2*reservation.EERLifetimeSeconds {
			delete(l.last, id)
		}
	}
	l.mu.Unlock()
}
