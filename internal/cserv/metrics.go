package cserv

import (
	"fmt"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/telemetry"
)

// Metrics counts the service's control-plane activity. It is a thin shim
// over a telemetry.Registry: each field is a sharded telemetry.Counter, so
// existing callers keep their `metrics.X.Add(1)` call shape while the
// counters appear in registry snapshots next to the rest of the stack's
// instruments. All counters are safe for concurrent use; Snapshot returns
// a consistent copy (each value is an atomic read and never decreases).
type Metrics struct {
	SegSetupOK    *telemetry.Counter
	SegSetupFail  *telemetry.Counter
	SegRenewOK    *telemetry.Counter
	SegRenewFail  *telemetry.Counter
	SegActivate   *telemetry.Counter
	EESetupOK     *telemetry.Counter
	EESetupFail   *telemetry.Counter
	EERenewOK     *telemetry.Counter
	EERenewFail   *telemetry.Counter
	AuthFailures  *telemetry.Counter
	RateLimited   *telemetry.Counter
	RenewThrottle *telemetry.Counter
	// Resilience counters (see retry.go, keeper.go and the dedup paths in
	// segr.go/eer.go): retried requests recognized and answered
	// idempotently, renewals refused for granting zero bandwidth, and
	// flows demoted to / re-promoted from best-effort.
	DedupHits   *telemetry.Counter
	RenewZeroBw *telemetry.Counter
	Demotions   *telemetry.Counter
	Promotions  *telemetry.Counter
	// Admission-outcome counters: the per-request OK/Fail counters above
	// count protocol outcomes, which hides *why* requests fail. AdmReject
	// counts requests the admission algorithm itself refused (SegR or EER,
	// setup or renewal); AdmFallback counts failed renewals where the
	// previous reservation snapshot was restored and the flow continues on
	// its old version instead of being torn down.
	AdmReject   *telemetry.Counter
	AdmFallback *telemetry.Counter

	reg   *telemetry.Registry
	trace *telemetry.Tracer
}

// init binds the shim to a registry (creating a private one when reg is
// nil, so a Service always has working metrics).
func (m *Metrics) init(label string, reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.NewRegistry(label)
	}
	m.reg = reg
	m.SegSetupOK = reg.Counter("cserv.seg_setup_ok")
	m.SegSetupFail = reg.Counter("cserv.seg_setup_fail")
	m.SegRenewOK = reg.Counter("cserv.seg_renew_ok")
	m.SegRenewFail = reg.Counter("cserv.seg_renew_fail")
	m.SegActivate = reg.Counter("cserv.seg_activate")
	m.EESetupOK = reg.Counter("cserv.ee_setup_ok")
	m.EESetupFail = reg.Counter("cserv.ee_setup_fail")
	m.EERenewOK = reg.Counter("cserv.ee_renew_ok")
	m.EERenewFail = reg.Counter("cserv.ee_renew_fail")
	m.AuthFailures = reg.Counter("cserv.auth_failures")
	m.RateLimited = reg.Counter("cserv.rate_limited")
	m.RenewThrottle = reg.Counter("cserv.renew_throttle")
	m.DedupHits = reg.Counter("cserv.dedup_hits")
	m.RenewZeroBw = reg.Counter("cserv.renew_zero_bw")
	m.Demotions = reg.Counter("cserv.demotions")
	m.Promotions = reg.Counter("cserv.promotions")
	m.AdmReject = reg.Counter("admission.reject")
	m.AdmFallback = reg.Counter("admission.fallback")
	m.trace = reg.Tracer("cserv.lifecycle", 0)
}

// Registry exposes the backing telemetry registry (for exporters and for
// attaching further instruments of the same AS).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// Trace records a reservation-lifecycle event on the service's tracer.
func (m *Metrics) Trace(nowNs int64, kind telemetry.EventKind, res string, ok bool, detail string) {
	m.trace.Record(nowNs, kind, res, ok, detail)
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	SegSetupOK, SegSetupFail  uint64
	SegRenewOK, SegRenewFail  uint64
	SegActivate               uint64
	EESetupOK, EESetupFail    uint64
	EERenewOK, EERenewFail    uint64
	AuthFailures, RateLimited uint64
	RenewThrottle             uint64
	DedupHits, RenewZeroBw    uint64
	Demotions, Promotions     uint64
	AdmReject, AdmFallback    uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		SegSetupOK:    m.SegSetupOK.Value(),
		SegSetupFail:  m.SegSetupFail.Value(),
		SegRenewOK:    m.SegRenewOK.Value(),
		SegRenewFail:  m.SegRenewFail.Value(),
		SegActivate:   m.SegActivate.Value(),
		EESetupOK:     m.EESetupOK.Value(),
		EESetupFail:   m.EESetupFail.Value(),
		EERenewOK:     m.EERenewOK.Value(),
		EERenewFail:   m.EERenewFail.Value(),
		AuthFailures:  m.AuthFailures.Value(),
		RateLimited:   m.RateLimited.Value(),
		RenewThrottle: m.RenewThrottle.Value(),
		DedupHits:     m.DedupHits.Value(),
		RenewZeroBw:   m.RenewZeroBw.Value(),
		Demotions:     m.Demotions.Value(),
		Promotions:    m.Promotions.Value(),
		AdmReject:     m.AdmReject.Value(),
		AdmFallback:   m.AdmFallback.Value(),
	}
}

func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"seg setup %d/%d renew %d/%d activate %d | ee setup %d/%d renew %d/%d | auth-fail %d rate-limited %d renew-throttled %d | dedup %d zero-bw %d demote %d promote %d | adm reject %d fallback %d",
		s.SegSetupOK, s.SegSetupFail, s.SegRenewOK, s.SegRenewFail, s.SegActivate,
		s.EESetupOK, s.EESetupFail, s.EERenewOK, s.EERenewFail,
		s.AuthFailures, s.RateLimited, s.RenewThrottle,
		s.DedupHits, s.RenewZeroBw, s.Demotions, s.Promotions,
		s.AdmReject, s.AdmFallback)
}

// renewLimiter enforces §4.2's per-EER renewal rate limit ("CServs can
// rate-limit the amount of renewal requests for an EER (e.g., to one per
// second)").
type renewLimiter struct {
	mu   sync.Mutex
	last map[reservation.ID]uint32
}

func newRenewLimiter() *renewLimiter {
	return &renewLimiter{last: make(map[reservation.ID]uint32)}
}

// Allow admits at most one renewal per EER per second.
func (l *renewLimiter) Allow(id reservation.ID, now uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.last[id]; ok && t == now {
		return false
	}
	l.last[id] = now
	return true
}

// Expire drops stale entries (called from Tick).
func (l *renewLimiter) Expire(now uint32) {
	l.mu.Lock()
	for id, t := range l.last {
		if now > t+2*reservation.EERLifetimeSeconds {
			delete(l.last, id)
		}
	}
	l.mu.Unlock()
}
