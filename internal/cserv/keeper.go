package cserv

import (
	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/telemetry"
)

// GatewayInstaller is the slice of the Colibri gateway the keeper drives:
// installing renewed versions and demoting/re-promoting flows. Implemented
// by *gateway.Gateway.
type GatewayInstaller interface {
	Install(res packet.ResInfo, eer packet.EERInfo, path []packet.HopField, auths []cryptoutil.Key) error
	Demote(resID uint32) bool
	Promote(resID uint32) bool
}

// EERKeeper keeps one EER alive: it renews within a lead time before
// expiry, installs fresh versions at the gateway, and implements the
// failover of §3.2/§4.2 — when renewal keeps failing until the newest
// version is about to expire, the flow is demoted to best-effort at the
// gateway instead of blackholing, and the keeper continues trying; the
// next successful renewal re-promotes the flow to its reserved class.
//
// Not safe for concurrent use; drive it from one maintenance loop.
type EERKeeper struct {
	svc     *Service
	gw      GatewayInstaller
	grant   *EERGrant
	lead    uint32
	demoted bool

	// Renewals and Failures count successful and failed renewal attempts.
	Renewals uint64
	Failures uint64
}

// NewEERKeeper builds a keeper for an already-granted (and installed) EER.
// leadSeconds is how long before expiry renewal starts (clamped to ≥ 1).
func NewEERKeeper(svc *Service, gw GatewayInstaller, grant *EERGrant, leadSeconds uint32) *EERKeeper {
	if leadSeconds < 1 {
		leadSeconds = 1
	}
	return &EERKeeper{svc: svc, gw: gw, grant: grant, lead: leadSeconds}
}

// Grant returns the newest granted version.
func (k *EERKeeper) Grant() *EERGrant { return k.grant }

// Demoted reports whether the flow is currently demoted to best-effort.
func (k *EERKeeper) Demoted() bool { return k.demoted }

// Tick runs one maintenance step at the service's current time: a no-op
// while the newest version is fresh, otherwise a renewal attempt with
// demotion/re-promotion bookkeeping. The returned error is the renewal
// failure, if any; the flow keeps working (reserved or best-effort) either
// way.
func (k *EERKeeper) Tick() error {
	if !k.due(k.svc.clock()) {
		return nil
	}
	g, err := k.svc.RenewEER(k.grant, uint64(k.grant.Res.BwKbps))
	return k.applyOutcome(g, err)
}

// due reports whether the keeper wants a renewal attempt at now: inside the
// lead window, or any time while demoted (re-promotion retries, §3.2).
func (k *EERKeeper) due(now uint32) bool {
	return k.demoted || k.grant.Res.ExpT <= now+k.lead
}

// applyOutcome applies one renewal attempt's result — the same
// demotion/re-promotion bookkeeping whether the attempt traveled alone
// (Tick) or in a batched wave (KeeperFleet).
func (k *EERKeeper) applyOutcome(g *EERGrant, err error) error {
	now := k.svc.clock()
	exp := k.grant.Res.ExpT
	if err == nil && g.Res.BwKbps == 0 && k.grant.Res.BwKbps > 0 {
		// A zero-bandwidth grant for a flow that had bandwidth is a failed
		// renewal (the satellite of the SameBandwidth bug): don't install
		// the dead version, keep serving on the old one.
		k.svc.metrics.RenewZeroBw.Add(1)
		err = ErrZeroGrant
	}
	if err != nil {
		k.Failures++
		// Old versions serve seamlessly until expiry (§4.2), so failure
		// alone is not demotion; only when the newest version is dead or
		// dying this second does the flow drop to best-effort.
		if !k.demoted && exp <= now+1 {
			k.demoted = true
			k.gw.Demote(k.grant.Res.ResID)
			k.svc.metrics.Demotions.Add(1)
			k.svc.metrics.Trace(int64(now)*1e9, telemetry.EvDemote, k.grant.ID.String(), false, "renewal failed")
		}
		return err
	}
	if ierr := k.gw.Install(g.Res, g.EER, g.Path, g.HopAuths); ierr != nil {
		k.Failures++
		return ierr
	}
	k.grant = g
	k.Renewals++
	if k.demoted {
		k.demoted = false
		k.svc.metrics.Promotions.Add(1)
		k.svc.metrics.Trace(int64(now)*1e9, telemetry.EvPromote, g.ID.String(), true, "")
	}
	return nil
}

// KeeperFleet maintains many EERKeepers and renews the due ones in batched
// waves: keepers whose grants ride the same SegR chain (same SegIDs, Splits,
// and Path) are grouped and sent as EEBatchRenewReqs of at most BatchSize
// items, so a renewal storm costs one MAC verification and one shard-lock
// sweep per wave instead of per EER. Per-keeper semantics (zero-grant
// detection, demote/re-promote, counters) are exactly EERKeeper.Tick's.
//
// Not safe for concurrent use; drive it from one maintenance loop.
type KeeperFleet struct {
	svc     *Service
	keepers []*EERKeeper
	// BatchSize caps one wave's item count (bounding message size and the
	// blast radius of a transport failure, which fails the whole wave).
	BatchSize int
}

// DefaultBatchSize is KeeperFleet's wave-size cap when BatchSize is 0.
const DefaultBatchSize = 4096

// NewKeeperFleet builds an empty fleet over one source AS's service.
func NewKeeperFleet(svc *Service) *KeeperFleet {
	return &KeeperFleet{svc: svc, BatchSize: DefaultBatchSize}
}

// Add registers a keeper with the fleet.
func (f *KeeperFleet) Add(k *EERKeeper) { f.keepers = append(f.keepers, k) }

// Len returns the number of keepers in the fleet.
func (f *KeeperFleet) Len() int { return len(f.keepers) }

// Keepers returns the fleet's keepers in insertion order.
func (f *KeeperFleet) Keepers() []*EERKeeper { return f.keepers }

// Demoted counts keepers currently demoted to best-effort.
func (f *KeeperFleet) Demoted() int {
	n := 0
	for _, k := range f.keepers {
		if k.demoted {
			n++
		}
	}
	return n
}

// chainKey is a grant's batching signature: items in one EEBatchRenewReq
// must share the SegR chain and path verbatim.
func chainKey(g *EERGrant) string {
	b := make([]byte, 0, 64)
	for _, id := range g.SegIDs {
		b = appendID(b, id)
	}
	b = append(b, 0xff)
	b = append(b, g.Splits...)
	b = append(b, 0xff)
	b = appendHops(b, g.PathHops)
	return string(b)
}

// Tick runs one maintenance step: collect the due keepers, group them by
// chain signature (insertion-ordered — no map iteration, so runs are
// deterministic), renew each group in waves of at most BatchSize, and apply
// each item's outcome to its keeper. It returns the number of renewal
// attempts that failed this tick.
func (f *KeeperFleet) Tick() int {
	now := f.svc.clock()
	groupOf := make(map[string]int)
	var groups [][]*EERKeeper
	for _, k := range f.keepers {
		if !k.due(now) {
			continue
		}
		key := chainKey(k.grant)
		gi, ok := groupOf[key]
		if !ok {
			gi = len(groups)
			groupOf[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], k)
	}
	size := f.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	failures := 0
	for _, group := range groups {
		for off := 0; off < len(group); off += size {
			wave := group[off:min(off+size, len(group))]
			prevs := make([]*EERGrant, len(wave))
			bws := make([]uint64, len(wave))
			for i, k := range wave {
				prevs[i] = k.grant
				bws[i] = uint64(k.grant.Res.BwKbps)
			}
			grants, errs := f.svc.RenewEERBatch(prevs, bws)
			for i, k := range wave {
				if k.applyOutcome(grants[i], errs[i]) != nil {
					failures++
				}
			}
		}
	}
	return failures
}
