package cserv

import (
	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/telemetry"
)

// GatewayInstaller is the slice of the Colibri gateway the keeper drives:
// installing renewed versions and demoting/re-promoting flows. Implemented
// by *gateway.Gateway.
type GatewayInstaller interface {
	Install(res packet.ResInfo, eer packet.EERInfo, path []packet.HopField, auths []cryptoutil.Key) error
	Demote(resID uint32) bool
	Promote(resID uint32) bool
}

// EERKeeper keeps one EER alive: it renews within a lead time before
// expiry, installs fresh versions at the gateway, and implements the
// failover of §3.2/§4.2 — when renewal keeps failing until the newest
// version is about to expire, the flow is demoted to best-effort at the
// gateway instead of blackholing, and the keeper continues trying; the
// next successful renewal re-promotes the flow to its reserved class.
//
// Not safe for concurrent use; drive it from one maintenance loop.
type EERKeeper struct {
	svc     *Service
	gw      GatewayInstaller
	grant   *EERGrant
	lead    uint32
	demoted bool

	// Renewals and Failures count successful and failed renewal attempts.
	Renewals uint64
	Failures uint64
}

// NewEERKeeper builds a keeper for an already-granted (and installed) EER.
// leadSeconds is how long before expiry renewal starts (clamped to ≥ 1).
func NewEERKeeper(svc *Service, gw GatewayInstaller, grant *EERGrant, leadSeconds uint32) *EERKeeper {
	if leadSeconds < 1 {
		leadSeconds = 1
	}
	return &EERKeeper{svc: svc, gw: gw, grant: grant, lead: leadSeconds}
}

// Grant returns the newest granted version.
func (k *EERKeeper) Grant() *EERGrant { return k.grant }

// Demoted reports whether the flow is currently demoted to best-effort.
func (k *EERKeeper) Demoted() bool { return k.demoted }

// Tick runs one maintenance step at the service's current time: a no-op
// while the newest version is fresh, otherwise a renewal attempt with
// demotion/re-promotion bookkeeping. The returned error is the renewal
// failure, if any; the flow keeps working (reserved or best-effort) either
// way.
func (k *EERKeeper) Tick() error {
	now := k.svc.clock()
	exp := k.grant.Res.ExpT
	if !k.demoted && exp > now+k.lead {
		return nil
	}
	g, err := k.svc.RenewEER(k.grant, uint64(k.grant.Res.BwKbps))
	if err == nil && g.Res.BwKbps == 0 && k.grant.Res.BwKbps > 0 {
		// A zero-bandwidth grant for a flow that had bandwidth is a failed
		// renewal (the satellite of the SameBandwidth bug): don't install
		// the dead version, keep serving on the old one.
		k.svc.metrics.RenewZeroBw.Add(1)
		err = ErrZeroGrant
	}
	if err != nil {
		k.Failures++
		// Old versions serve seamlessly until expiry (§4.2), so failure
		// alone is not demotion; only when the newest version is dead or
		// dying this second does the flow drop to best-effort.
		if !k.demoted && exp <= now+1 {
			k.demoted = true
			k.gw.Demote(k.grant.Res.ResID)
			k.svc.metrics.Demotions.Add(1)
			k.svc.metrics.Trace(int64(now)*1e9, telemetry.EvDemote, k.grant.ID.String(), false, "renewal failed")
		}
		return err
	}
	if ierr := k.gw.Install(g.Res, g.EER, g.Path, g.HopAuths); ierr != nil {
		k.Failures++
		return ierr
	}
	k.grant = g
	k.Renewals++
	if k.demoted {
		k.demoted = false
		k.svc.metrics.Promotions.Add(1)
		k.svc.metrics.Trace(int64(now)*1e9, telemetry.EvPromote, g.ID.String(), true, "")
	}
	return nil
}
