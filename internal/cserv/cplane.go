// cplane.go — CPlane, a sharded, batched control-plane engine for one AS.
//
// The single-lock Service is the faithful protocol implementation; CPlane is
// the capacity answer for the million-flow regime the paper targets (§6: "a
// single CServ instance can handle the renewal load of hundreds of thousands
// of EERs"). It partitions the reservation state by a hash of the owning
// SegR's ID into 2^k independent shards. Each shard owns
//
//   - an admission.Admitter over a clone of the AS whose link capacities are
//     divided by the shard count (so the sum of all shards' grants respects
//     the physical capacities),
//   - a restree demand ledger per SegR tracking admitted EER bandwidth over
//     discretized time (see internal/restree and DESIGN.md §7), and
//   - the EER records admitted against those SegRs.
//
// A reservation never spans shards: an EER lives in the shard of its SegR,
// so every operation takes exactly one shard lock and shards never deadlock
// against each other. RenewBatch processes a whole renewal wave shard-major
// — one lock acquisition per shard per batch instead of one per renewal —
// and is allocation-free in steady state. Aggregate counters are atomics so
// Counts never takes a lock.
package cserv

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"colibri/internal/admission"
	"colibri/internal/reservation"
	"colibri/internal/restree"
	"colibri/internal/shardpool"
	"colibri/internal/topology"
)

// CPlane errors. All are sentinels: the batch paths must not allocate.
var (
	ErrUnknownSegR = errors.New("cplane: unknown segment reservation")
	ErrSegRInUse   = errors.New("cplane: segment reservation has live EERs")
	ErrUnknownEER  = errors.New("cplane: unknown end-to-end reservation")
	// ErrInsufficient rejects an EER setup or renewal whose demand exceeds
	// the SegR's free bandwidth over the requested window (setups are
	// full-or-nothing; renewals fall back to the previous version).
	ErrInsufficient = errors.New("cplane: insufficient bandwidth on segment reservation")
	// ErrTransferEER marks an EER charged against two SegRs (a transfer-AS
	// record, §4.7): its renewal must go through RenewEERPath, which locks
	// both owning shards, not through the single-shard batch path.
	ErrTransferEER = errors.New("cplane: transfer-AS EER requires path renewal")
)

// CPlaneConfig configures a sharded control-plane engine.
type CPlaneConfig struct {
	AS    *topology.AS
	Split admission.TrafficSplit
	// Shards is the number of independent state partitions; it must be a
	// power of two. 0 selects 1.
	Shards int
	// AdmissionImpl names the SegR admission implementation per shard
	// (admission.Impl*); empty selects the memoized default.
	AdmissionImpl string
	// EpochSeconds is the demand-ledger discretization (default 4 s);
	// LedgerEpochs the ring horizon in epochs (default 128, i.e. 512 s —
	// comfortably above the 16 s EER lifetime and the 300 s SegR lifetime).
	EpochSeconds uint32
	LedgerEpochs int
	// Clock supplies control-plane time in Unix seconds. Required.
	Clock func() uint32
	// Workers sets how many goroutines RenewBatch fans shard buckets across
	// (shards are lock-disjoint, so a worker per shard is safe). 0 or 1 runs
	// inline on the caller's goroutine with no pool goroutines; call Close
	// when done with a multi-worker engine.
	Workers int
}

// CPlane is the sharded engine. Methods are safe for concurrent use; calls
// touching different shards proceed in parallel.
type CPlane struct {
	shards []*cplaneShard
	mask   uint64
	clock  func() uint32

	epochSec     uint32
	ledgerEpochs int

	segCount atomic.Int64
	eerCount atomic.Int64
	admits   atomic.Uint64
	renews   atomic.Uint64
	// rejects counts real refusals (ErrInsufficient and kin); dedups counts
	// idempotent duplicates (restree.ErrExists on a retried setup); stale
	// counts renewals of EERs that no longer exist (ErrUnknownEER). The
	// split lets chaos experiments tell retry dedup from capacity refusal.
	rejects atomic.Uint64
	dedups  atomic.Uint64
	stale   atomic.Uint64

	// onExpire, when set, receives each transfer-AS record (one with two
	// covering SegRs) that Tick expires, after the shard lock is released.
	// The Service uses it to return the record's charge to the §4.7
	// transfer-split accounting, which otherwise never learns that an EER
	// lapsed without being renewed.
	onExpire func(seg, seg2 reservation.ID, bwKbps uint64)

	// Batch fan-out state. batchMu serializes RenewBatch callers (the pool
	// handles one dispatch at a time); buckets/cur*/batchStats are owned by
	// the dispatching goroutine between Dispatch barriers, with each worker
	// touching only its shard's bucket, stats slot, and result indices.
	pool       *shardpool.Pool
	batchMu    sync.Mutex
	buckets    [][]int32
	curItems   []EERRenewal
	curResults []RenewResult
	curNow     uint32
	batchStats []cpBatchStats
}

// cpBatchStats collects one shard bucket's outcome tallies during a
// RenewBatch dispatch, merged into the atomics after the barrier.
type cpBatchStats struct {
	renews, rejects, stale uint64
	expired                int64
}

// cplaneShard is one shard's admission state, owned by the CPlane front end:
// reached only under sh.mu from CPlane's methods, never aliased out
// (colibri-vet enforces this).
//
//colibri:shardowned
type cplaneShard struct {
	mu  sync.Mutex
	adm admission.Admitter
	// segBw caches each SegR's current grant (the admitter's GrantOf would
	// need its internal lock; the cache is updated under sh.mu at the only
	// write sites, AddSegR and RenewSegR).
	segBw map[reservation.ID]uint64
	// ledgers holds one EER demand profile per SegR.
	ledgers map[reservation.ID]*restree.Ledger[reservation.ID]
	eers    map[reservation.ID]cpEER
}

// cpEER is the shard-local record of one admitted EER version. seg2 is the
// second charged SegR at a transfer AS (§4.7: an EER entering on an up
// segment and leaving on a core segment consumes bandwidth on both); it is
// the zero ID everywhere else. ver is the protocol version of the admitted
// record, used by the live request path for idempotent dedup of retries.
type cpEER struct {
	seg  reservation.ID
	seg2 reservation.ID
	bw   uint64
	expT uint32
	ver  uint16
}

// NewCPlane builds the engine. It panics when cfg.Clock is nil or
// cfg.Shards is not a power of two, and surfaces admission-implementation
// errors from admission.NewAdmitter.
func NewCPlane(cfg CPlaneConfig) (*CPlane, error) {
	if cfg.Clock == nil {
		panic("cserv: CPlaneConfig.Clock is required")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards&(cfg.Shards-1) != 0 {
		panic("cserv: CPlaneConfig.Shards must be a power of two")
	}
	if cfg.EpochSeconds == 0 {
		cfg.EpochSeconds = 4
	}
	if cfg.LedgerEpochs == 0 {
		cfg.LedgerEpochs = 128
	}
	c := &CPlane{
		shards:       make([]*cplaneShard, cfg.Shards),
		mask:         uint64(cfg.Shards - 1),
		clock:        cfg.Clock,
		epochSec:     cfg.EpochSeconds,
		ledgerEpochs: cfg.LedgerEpochs,
		buckets:      make([][]int32, cfg.Shards),
		batchStats:   make([]cpBatchStats, cfg.Shards),
	}
	for i := range c.shards {
		adm, err := admission.NewAdmitter(cfg.AdmissionImpl, shardedAS(cfg.AS, cfg.Shards, i), cfg.Split, cfg.Clock)
		if err != nil {
			return nil, err
		}
		c.shards[i] = &cplaneShard{
			adm:     adm,
			segBw:   make(map[reservation.ID]uint64),
			ledgers: make(map[reservation.ID]*restree.Ledger[reservation.ID]),
			eers:    make(map[reservation.ID]cpEER),
		}
	}
	c.pool = shardpool.New(cfg.Workers, c.runBatchShard)
	return c, nil
}

// OnExpire registers the expiry callback invoked by Tick for each expired
// transfer-AS record (see the field doc). Set it before the first Tick;
// it must not call back into the CPlane.
func (c *CPlane) OnExpire(fn func(seg, seg2 reservation.ID, bwKbps uint64)) {
	c.onExpire = fn
}

// Close releases the batch worker goroutines of a multi-worker engine; it is
// a no-op for the default inline configuration. No call may be in flight.
func (c *CPlane) Close() { c.pool.Close() }

// Workers returns the RenewBatch fan-out width.
func (c *CPlane) Workers() int { return c.pool.Workers() }

// shardedAS clones an AS for shard i of `shards`, dividing every link
// capacity (and the internal fabric bound) so the per-shard shares sum
// EXACTLY to the physical value: shard i receives cap/shards plus one of the
// cap%shards remainder units. Low-capacity links may legitimately get 0 on
// some shards — rounding every shard up to 1 would let K shards of a
// (K-1)-Kbps link admit more than the link carries.
func shardedAS(as *topology.AS, shards, i int) *topology.AS {
	if shards <= 1 {
		return as
	}
	out := &topology.AS{
		IA:         as.IA,
		Core:       as.Core,
		Interfaces: make(map[topology.IfID]*topology.Interface, len(as.Interfaces)),
	}
	out.InternalCapacityKbps = shardShare(as.InternalCapacityKbps, shards, i)
	for _, id := range as.SortedIfIDs() {
		intf := *as.Interfaces[id]
		link := *intf.Link
		link.CapacityKbps = shardShare(link.CapacityKbps, shards, i)
		intf.Link = &link
		out.Interfaces[id] = &intf
	}
	return out
}

// shardShare splits cap across `shards` with the remainder spread over the
// lowest-indexed shards, so the shares sum exactly to cap.
func shardShare(cap uint64, shards, i int) uint64 {
	share := cap / uint64(shards)
	if uint64(i) < cap%uint64(shards) {
		share++
	}
	return share
}

// shardIndex maps a reservation ID to its shard index with a splitmix64-
// style finalizer, so consecutive Nums from one source spread across shards.
//
//colibri:nomalloc
func (c *CPlane) shardIndex(id reservation.ID) int {
	x := uint64(id.SrcAS)*0x9e3779b97f4a7c15 + uint64(id.Num)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & c.mask)
}

//colibri:nomalloc
func (c *CPlane) shardFor(id reservation.ID) *cplaneShard {
	return c.shards[c.shardIndex(id)]
}

// AddSegR admits a segment reservation on its shard and provisions its EER
// demand ledger. The request's MaxKbps is the demand; the returned grant is
// the bandwidth available to EERs over this SegR at this AS.
func (c *CPlane) AddSegR(req admission.Request) (uint64, error) {
	sh := c.shardFor(req.ID)
	sh.mu.Lock()
	_, known := sh.ledgers[req.ID]
	grant, err := sh.adm.AdmitSegR(req)
	if err != nil {
		sh.mu.Unlock()
		c.rejects.Add(1)
		return 0, err
	}
	sh.segBw[req.ID] = grant
	if !known {
		// Re-admitting a known ID (an idempotent replay or a version bump)
		// must not wipe the ledger of EERs already charged against it.
		sh.ledgers[req.ID] = restree.NewLedger[reservation.ID](c.ledgerEpochs, c.epochSec)
	}
	sh.mu.Unlock()
	if !known {
		c.segCount.Add(1)
	}
	c.admits.Add(1)
	return grant, nil
}

// RenewSegR re-admits a SegR with fresh scale factors. EER versions already
// admitted keep their allocations (they remain valid until expiry, §4.2);
// only future EER admissions see the new grant.
func (c *CPlane) RenewSegR(req admission.Request) (uint64, error) {
	sh := c.shardFor(req.ID)
	sh.mu.Lock()
	if _, ok := sh.segBw[req.ID]; !ok {
		sh.mu.Unlock()
		return 0, ErrUnknownSegR
	}
	grant, err := sh.adm.RenewSegR(req)
	if err != nil {
		sh.mu.Unlock()
		c.rejects.Add(1)
		return 0, err
	}
	sh.segBw[req.ID] = grant
	sh.mu.Unlock()
	c.renews.Add(1)
	return grant, nil
}

// TeardownSegR releases a SegR. It fails with ErrSegRInUse while EERs are
// still admitted against it (tear those down or let them expire first).
func (c *CPlane) TeardownSegR(id reservation.ID) error {
	sh := c.shardFor(id)
	now := c.clock()
	sh.mu.Lock()
	led, ok := sh.ledgers[id]
	if !ok {
		sh.mu.Unlock()
		return ErrUnknownSegR
	}
	led.Advance(now)
	if led.Len() > 0 {
		sh.mu.Unlock()
		return ErrSegRInUse
	}
	sh.adm.Release(id)
	delete(sh.segBw, id)
	delete(sh.ledgers, id)
	sh.mu.Unlock()
	c.segCount.Add(-1)
	return nil
}

// SetupEER admits an EER of bwKbps over the given SegR until expT.
// Admission is full-or-nothing: the demand must fit under the SegR's grant
// at every epoch of [now, expT), checked in O(log epochs) on the ledger.
func (c *CPlane) SetupEER(eer, seg reservation.ID, bwKbps uint64, expT uint32) error {
	return c.SetupEERAt(eer, seg, bwKbps, 0, expT)
}

// SetupEERAt is SetupEER with an explicit charge window [startT, expT) — the
// windowed variant used by time-sliced (Hummingbird-style) reservation
// policies whose grants are decoupled from the setup instant. startT == 0
// anchors at now; a startT in the past is clamped to now (the elapsed part of
// the window cannot be used, so charging it would only inflate demand). The
// window may start in the future: demand is charged only over [startT, expT),
// so back-to-back slices concatenate seamlessly without double-charging the
// handover epoch, and a slice bought ahead of time holds its bandwidth
// against competing setups from the moment it is admitted.
func (c *CPlane) SetupEERAt(eer, seg reservation.ID, bwKbps uint64, startT, expT uint32) error {
	sh := c.shardFor(seg)
	now := c.clock()
	if startT < now {
		startT = now
	}
	sh.mu.Lock()
	err := sh.setupEERLocked(eer, seg, bwKbps, now, startT, expT, 0)
	sh.mu.Unlock()
	if err != nil {
		// A duplicate setup is an idempotent retry hitting committed state,
		// not a refusal — count it separately so dedup stays tellable from
		// capacity rejection.
		if err == restree.ErrExists {
			c.dedups.Add(1)
		} else {
			c.rejects.Add(1)
		}
		return err
	}
	c.eerCount.Add(1)
	c.admits.Add(1)
	return nil
}

//colibri:nomalloc
func (sh *cplaneShard) setupEERLocked(eer, seg reservation.ID, bwKbps uint64, now, startT, expT uint32, ver uint16) error {
	led, ok := sh.ledgers[seg]
	if !ok {
		return ErrUnknownSegR
	}
	led.Advance(now)
	if _, dup := sh.eers[eer]; dup {
		return restree.ErrExists
	}
	if startT == 0 {
		startT = now
	}
	free := sh.segBw[seg]
	if m := led.MaxDemand(startT, expT); uint64(m) >= free {
		free = 0
	} else {
		free -= uint64(m)
	}
	if bwKbps > free {
		return ErrInsufficient
	}
	if err := led.Reserve(eer, startT, expT, int64(bwKbps)); err != nil {
		return err
	}
	sh.eers[eer] = cpEER{seg: seg, bw: bwKbps, expT: expT, ver: ver}
	return nil
}

// TeardownEER removes an EER (seg names its segment reservation, which
// determines the shard). Unknown EERs are a no-op, mirroring Release.
func (c *CPlane) TeardownEER(eer, seg reservation.ID) {
	sh := c.shardFor(seg)
	sh.mu.Lock()
	e, ok := sh.eers[eer]
	if ok && e.seg == seg {
		if led := sh.ledgers[seg]; led != nil {
			led.Teardown(eer)
		}
		delete(sh.eers, eer)
	}
	sh.mu.Unlock()
	if ok {
		c.eerCount.Add(-1)
	}
}

// EERRenewal is one entry of a renewal batch. Ver is the protocol version
// the renewed record will carry (callers that do not track versions may
// leave it 0).
type EERRenewal struct {
	EER, Seg reservation.ID
	BwKbps   uint64
	ExpT     uint32
	Ver      uint16
}

// RenewResult reports one renewal's outcome. Err is a sentinel
// (ErrUnknownEER, ErrInsufficient, or a restree window error).
type RenewResult struct {
	Granted uint64
	Err     error
}

// RenewEER renews a single EER; see RenewBatch for the semantics. It takes
// only the owning shard's lock and never touches the batch machinery.
func (c *CPlane) RenewEER(eer, seg reservation.ID, bwKbps uint64, expT uint32) (uint64, error) {
	it := EERRenewal{EER: eer, Seg: seg, BwKbps: bwKbps, ExpT: expT}
	sh := c.shardFor(seg)
	now := c.clock()
	sh.mu.Lock()
	g, err, gone := sh.renewEERLocked(&it, now)
	sh.mu.Unlock()
	switch {
	case err == nil:
		c.renews.Add(1)
	case err == ErrUnknownEER:
		c.stale.Add(1)
	default:
		c.rejects.Add(1)
	}
	if gone {
		c.eerCount.Add(-1)
	}
	return g, err
}

// RenewBatch processes a renewal wave shard-major: items are bucketed by
// owning shard in one pass, then each bucket is processed under a single
// acquisition of its shard lock — the batched analogue of §4.2's
// per-request renewals. Buckets fan out across the configured Workers
// (shards are lock-disjoint, and each worker writes only its bucket's
// result indices and stats slot, so the dispatch is race-free); results are
// identical at every worker count. results[i] receives the outcome of
// items[i]; the two slices must have equal length. A renewal is granted
// min(requested, free) bandwidth over [now, ExpT); a zero grant restores
// the previous version (the flow falls back to it) and reports
// ErrInsufficient. The method is allocation-free in steady state.
//
//colibri:nomalloc
func (c *CPlane) RenewBatch(items []EERRenewal, results []RenewResult) {
	if len(items) != len(results) {
		batchLenMismatch()
	}
	c.batchMu.Lock()
	c.curNow = c.clock()
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
	for i := range items {
		b := c.shardIndex(items[i].Seg)
		c.buckets[b] = append(c.buckets[b], int32(i))
	}
	c.curItems, c.curResults = items, results
	c.pool.Dispatch(len(c.shards))
	c.curItems, c.curResults = nil, nil
	var renews, rejects, stale uint64
	var expired int64
	for i := range c.batchStats {
		st := &c.batchStats[i]
		renews += st.renews
		rejects += st.rejects
		stale += st.stale
		expired += st.expired
		*st = cpBatchStats{}
	}
	c.batchMu.Unlock()
	c.renews.Add(renews)
	c.rejects.Add(rejects)
	c.stale.Add(stale)
	c.eerCount.Add(-expired)
}

// runBatchShard drains one shard's bucket of the in-flight RenewBatch. It
// runs on a pool worker (or inline); the Dispatch barrier orders its writes
// before the dispatcher's reads.
//
//colibri:nomalloc
func (c *CPlane) runBatchShard(si int) {
	sh := c.shards[si]
	st := &c.batchStats[si]
	sh.mu.Lock()
	for _, i := range c.buckets[si] {
		g, err, gone := sh.renewEERLocked(&c.curItems[i], c.curNow)
		c.curResults[i] = RenewResult{Granted: g, Err: err}
		switch {
		case err == nil:
			st.renews++
		case err == ErrUnknownEER:
			st.stale++
		default:
			st.rejects++
		}
		if gone {
			st.expired++
		}
	}
	sh.mu.Unlock()
}

// batchLenMismatch stays out of line so the panic value is not attributed
// to RenewBatch's nomalloc-annotated range by escape analysis.
//
//go:noinline
func batchLenMismatch() {
	panic("cserv: RenewBatch items/results length mismatch")
}

// renewEERLocked is the per-item core of RenewBatch. gone reports that the
// EER record was dropped (its old version had already expired and the
// renewal was refused).
//
//colibri:nomalloc
func (sh *cplaneShard) renewEERLocked(it *EERRenewal, now uint32) (grant uint64, err error, gone bool) {
	e, ok := sh.eers[it.EER]
	if !ok || e.seg != it.Seg {
		return 0, ErrUnknownEER, false
	}
	if e.seg2 != (reservation.ID{}) {
		// Transfer-AS record: its second charge lives in another shard, so
		// the single-shard batch path must not touch it (RenewEERPath does).
		return 0, ErrTransferEER, false
	}
	led := sh.ledgers[it.Seg]
	if led == nil {
		return 0, ErrUnknownSegR, false
	}
	led.Advance(now)
	// Remove the old version's contribution before probing: a renewal
	// replaces the version, it does not stack on it. Teardown reports false
	// when Advance already expired the entry.
	led.Teardown(it.EER)
	free := sh.segBw[it.Seg]
	if m := led.MaxDemand(now, it.ExpT); uint64(m) >= free {
		free = 0
	} else {
		free -= uint64(m)
	}
	grant = it.BwKbps
	if grant > free {
		grant = free
	}
	if grant == 0 {
		// Refused. Restore the previous version if it is still live so the
		// flow keeps its old allocation until expiry (§4.2 fallback).
		if e.expT > now {
			if rerr := led.Reserve(it.EER, now, e.expT, int64(e.bw)); rerr != nil {
				delete(sh.eers, it.EER)
				return 0, rerr, true
			}
			return 0, ErrInsufficient, false
		}
		delete(sh.eers, it.EER)
		return 0, ErrInsufficient, true
	}
	if rerr := led.Reserve(it.EER, now, it.ExpT, int64(grant)); rerr != nil {
		// Window invalid (e.g. ExpT beyond the ledger horizon): restore.
		if e.expT > now {
			if led.Reserve(it.EER, now, e.expT, int64(e.bw)) == nil {
				return 0, rerr, false
			}
		}
		delete(sh.eers, it.EER)
		return 0, rerr, true
	}
	sh.eers[it.EER] = cpEER{seg: e.seg, bw: grant, expT: it.ExpT, ver: it.Ver}
	return grant, nil, false
}

// Tick expires EERs whose versions have lapsed and advances every ledger.
// It returns the number of EERs removed. Iteration is over sorted IDs so
// runs are deterministic (colibri-vet: determinism).
func (c *CPlane) Tick() int {
	now := c.clock()
	total := 0
	for _, sh := range c.shards {
		var expired []cpEER
		sh.mu.Lock()
		var ids []reservation.ID
		for id := range sh.eers {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		for _, id := range ids {
			e := sh.eers[id]
			if e.expT <= now {
				if led := sh.ledgers[e.seg]; led != nil {
					led.Teardown(id)
				}
				// seg2's ledger (possibly in another shard) self-cleans: an
				// expired charge lies entirely in the past and Advance drops it.
				if e.seg2 != (reservation.ID{}) && c.onExpire != nil {
					expired = append(expired, e)
				}
				delete(sh.eers, id)
				total++
			}
		}
		var segs []reservation.ID
		for id := range sh.ledgers {
			segs = append(segs, id)
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].Less(segs[j]) })
		for _, id := range segs {
			sh.ledgers[id].Advance(now)
		}
		sh.mu.Unlock()
		for _, e := range expired {
			c.onExpire(e.seg, e.seg2, e.bw)
		}
	}
	c.eerCount.Add(-int64(total))
	return total
}

// SegRAudit is one SegR's conservation snapshot: the bandwidth granted to
// the SegR at this AS and the peak EER demand its ledger carries over the
// audited window. PeakKbps > GrantKbps at any time is an over-admission —
// the invariant the transfer-split leak of the 10⁶-EER storm violated.
type SegRAudit struct {
	Seg reservation.ID
	// GrantKbps is the SegR's current grant (the EER admission ceiling).
	GrantKbps uint64
	// PeakKbps is the maximum aggregate EER demand charged on the SegR's
	// ledger over any epoch intersecting the audited window.
	PeakKbps uint64
	// LiveEERs is the number of live ledger entries after lazy expiry.
	LiveEERs int
}

// AuditLedgers snapshots every SegR's grant and peak admitted EER demand
// over [fromT, toT), in ID order. Each shard is advanced to now first, so
// lapsed charges do not count against the window. The result is
// deterministic for a given engine state; conservation tests assert
// PeakKbps <= GrantKbps on every row.
func (c *CPlane) AuditLedgers(fromT, toT uint32) []SegRAudit {
	now := c.clock()
	var rows []SegRAudit
	for _, sh := range c.shards {
		sh.mu.Lock()
		var segs []reservation.ID
		for id := range sh.ledgers {
			segs = append(segs, id)
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].Less(segs[j]) })
		for _, id := range segs {
			led := sh.ledgers[id]
			led.Advance(now)
			rows = append(rows, SegRAudit{
				Seg:       id,
				GrantKbps: sh.segBw[id],
				PeakKbps:  uint64(led.MaxDemand(fromT, toT)),
				LiveEERs:  led.Len(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Seg.Less(rows[j].Seg) })
	return rows
}

// AllocatedKbps sums the shards' granted SegR bandwidth at an egress
// interface. Because shardedAS splits every physical capacity exactly across
// shards, the sum never exceeds the egress's reservable share — the
// aggregate half of the conservation invariant.
func (c *CPlane) AllocatedKbps(eg topology.IfID) uint64 {
	var total uint64
	for _, sh := range c.shards {
		sh.mu.Lock()
		total += sh.adm.AllocatedKbps(eg)
		sh.mu.Unlock()
	}
	return total
}

// CPlaneCounts is a lock-free snapshot of the engine's aggregate state.
// Rejects are real capacity/window refusals; Dedups are idempotent
// duplicates of committed state (retried setups); Stale are renewals of
// EERs that had already expired or were never admitted.
type CPlaneCounts struct {
	SegRs, EERs             int64
	Admits, Renews, Rejects uint64
	Dedups, Stale           uint64
}

// Counts reads the aggregate counters without taking any shard lock.
//
//colibri:nomalloc
func (c *CPlane) Counts() CPlaneCounts {
	return CPlaneCounts{
		SegRs:   c.segCount.Load(),
		EERs:    c.eerCount.Load(),
		Admits:  c.admits.Load(),
		Renews:  c.renews.Load(),
		Rejects: c.rejects.Load(),
		Dedups:  c.dedups.Load(),
		Stale:   c.stale.Load(),
	}
}

// Shards returns the shard count (for sizing batches and reports).
func (c *CPlane) Shards() int { return len(c.shards) }
