// batchrenew.go — the batched EER renewal message (tag 6) and its handler.
//
// A renewal storm is the control plane's steady-state load: every live EER
// renews once per lifetime (16 s, §4.2), so a million flows mean ~60 k
// renewals per second arriving at each on-path CServ. Sending each as its
// own EESetupReq costs one MAC verification, one rate-limit token, and one
// transport round per EER per hop. EEBatchRenewReq amortizes all three: a
// wave of renewals that share one SegR chain (same SegIDs, Splits, and Path
// — the common case, since a source AS's flows to one destination ride the
// same chain) travels as one message with one MAC per hop, and the handler
// feeds the single-segment items of the wave to CPlane.RenewBatch, which
// takes each shard lock once per wave instead of once per renewal.
//
// The per-item protocol semantics mirror processEESetup's renewal leg:
// idempotent dedup by (ID, Ver, ExpT), the per-EER renewal throttle, grants
// shrinking to the path-wide minimum on the response pass, and rollback to
// the previous version when a downstream hop fails.
package cserv

import (
	"encoding/binary"
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Per-item status codes of a batch renewal. They travel in the request's
// mutable tail (an upstream refusal tells downstream hops to skip the item)
// and in the response (the source learns each item's fate).
const (
	// EEItemOK: the item is live — admitted at every hop so far.
	EEItemOK uint8 = 0
	// EEItemRefused: a hop refused the renewal (insufficient bandwidth); the
	// flow falls back to its previous version until expiry (§4.2).
	EEItemRefused uint8 = 1
	// EEItemStale: a hop no longer held the EER's record (expired or lost in
	// a crash) and re-admission failed too.
	EEItemStale uint8 = 2
	// EEItemThrottled: the per-EER renewal rate limit rejected the item.
	EEItemThrottled uint8 = 3
)

// EEBatchItem is one renewal of an EEBatchRenewReq.
type EEBatchItem struct {
	ID      reservation.ID
	Ver     uint16
	BwKbps  uint64
	ExpT    uint32
	SrcHost uint32
	DstHost uint32
}

// EEBatchRenewReq renews a wave of EERs that share one SegR chain. SegIDs,
// Splits, and Path have EESetupReq's meaning and apply to every item. Accums
// and Status are AS-added mutable data (outside the source's MACs, like
// EESetupReq.AccumKbps): Accums[i] carries item i's running-minimum grant and
// Status[i] its first refusal, so downstream hops skip dead items.
type EEBatchRenewReq struct {
	SegIDs []reservation.ID
	Splits []uint8
	Path   []PathHop
	Items  []EEBatchItem
	Macs   [][cryptoutil.MACSize]byte
	Accums []uint64
	Status []uint8
}

// Body returns the MAC-covered canonical encoding.
func (r *EEBatchRenewReq) Body() []byte {
	b := make([]byte, 0, 64+16*len(r.Path)+32*len(r.Items))
	b = append(b, tagEEBatchRenew)
	b = append(b, byte(len(r.SegIDs)))
	for _, id := range r.SegIDs {
		b = appendID(b, id)
	}
	b = append(b, byte(len(r.Splits)))
	b = append(b, r.Splits...)
	b = appendHops(b, r.Path)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Items)))
	for i := range r.Items {
		it := &r.Items[i]
		b = appendID(b, it.ID)
		b = binary.BigEndian.AppendUint16(b, it.Ver)
		b = binary.BigEndian.AppendUint64(b, it.BwKbps)
		b = binary.BigEndian.AppendUint32(b, it.ExpT)
		b = binary.BigEndian.AppendUint32(b, it.SrcHost)
		b = binary.BigEndian.AppendUint32(b, it.DstHost)
	}
	return b
}

// Marshal appends the MACs and the mutable per-item tail to the body.
func (r *EEBatchRenewReq) Marshal() []byte {
	b := appendMacs(r.Body(), r.Macs)
	for i := range r.Items {
		b = binary.BigEndian.AppendUint64(b, r.Accums[i])
		b = append(b, r.Status[i])
	}
	return b
}

// UnmarshalEEBatchRenewReq parses an EEBatchRenewReq.
func UnmarshalEEBatchRenewReq(data []byte) (*EEBatchRenewReq, error) {
	d := decoder{buf: data}
	if d.u8() != tagEEBatchRenew {
		return nil, ErrBadTag
	}
	r := &EEBatchRenewReq{}
	nseg := int(d.u8())
	for i := 0; i < nseg && d.err == nil; i++ {
		r.SegIDs = append(r.SegIDs, d.id())
	}
	nsplit := int(d.u8())
	for i := 0; i < nsplit && d.err == nil; i++ {
		r.Splits = append(r.Splits, d.u8())
	}
	r.Path = d.hops()
	n := int(d.u32())
	if d.err == nil {
		r.Items = make([]EEBatchItem, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.Items = append(r.Items, EEBatchItem{
			ID: d.id(), Ver: d.u16(), BwKbps: d.u64(),
			ExpT: d.u32(), SrcHost: d.u32(), DstHost: d.u32(),
		})
	}
	r.Macs = d.macs()
	if d.err == nil {
		r.Accums = make([]uint64, 0, n)
		r.Status = make([]uint8, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.Accums = append(r.Accums, d.u64())
		r.Status = append(r.Status, d.u8())
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// EEBatchRenewResp travels the reverse path. OK reports the batch was
// processed end to end (individual items may still be refused — see Status);
// !OK means a hop could not process the batch at all and every hop rolled
// back every item. EncAuths is item-major flattened: EncAuths[i*len(Path)+h]
// is AS h's sealed hop authenticator for item i (empty for dead items).
type EEBatchRenewResp struct {
	OK       bool
	FailedAt uint8
	Reason   string
	Granted  []uint64
	Status   []uint8
	EncAuths [][]byte
}

// Marshal encodes the response.
func (r *EEBatchRenewResp) Marshal() []byte {
	b := []byte{boolByte(r.OK), r.FailedAt}
	b = appendString(b, r.Reason)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Granted)))
	for i := range r.Granted {
		b = binary.BigEndian.AppendUint64(b, r.Granted[i])
		b = append(b, r.Status[i])
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.EncAuths)))
	for _, ea := range r.EncAuths {
		b = binary.BigEndian.AppendUint16(b, uint16(len(ea)))
		b = append(b, ea...)
	}
	return b
}

// UnmarshalEEBatchRenewResp parses an EEBatchRenewResp.
func UnmarshalEEBatchRenewResp(data []byte) (*EEBatchRenewResp, error) {
	d := decoder{buf: data}
	r := &EEBatchRenewResp{}
	r.OK = d.u8() == 1
	r.FailedAt = d.u8()
	r.Reason = d.str()
	n := int(d.u32())
	if d.err == nil {
		r.Granted = make([]uint64, 0, n)
		r.Status = make([]uint8, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.Granted = append(r.Granted, d.u64())
		r.Status = append(r.Status, d.u8())
	}
	na := int(d.u32())
	for i := 0; i < na && d.err == nil; i++ {
		m := int(d.u16())
		if m == 0 {
			r.EncAuths = append(r.EncAuths, nil)
			continue
		}
		ea := make([]byte, m)
		d.bytes(ea)
		r.EncAuths = append(r.EncAuths, ea)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// eeBatchState tracks one item's fate at this hop during the forward pass.
type eeBatchState struct {
	grant    uint64
	status   uint8
	dup      bool
	admitted bool
	hadPrev  bool
	prevBw   uint64
	prevExpT uint32
	prevVer  uint16
	// Transfer-split accounting (§4.7): what this item added via Admit, so
	// every non-surviving path returns it exactly (see processEESetup's
	// releaseT — the split tracks live committed charges only). prevReleased
	// records that the forward pass already returned the replaced version's
	// charge, which a rollback must re-add when it reinstates that version.
	tAdmitted       bool
	prevReleased    bool
	tCapped, tGrant uint64
}

// processEEBatchRenew handles a batched renewal wave at hop idx: one MAC
// verification and one rate-limit token for the whole wave, per-item dedup /
// throttle / admission, a single shard-major CPlane.RenewBatch for the
// single-segment items (transfer-AS hops renew item-by-item through
// RenewEERPath, which locks both owning shards), then forward and the
// response-pass adjust/seal. A transport-level downstream failure rolls back
// every non-duplicate item this hop admitted.
func (s *Service) processEEBatchRenew(req *EEBatchRenewReq, idx int) (resp_ *EEBatchRenewResp) {
	defer func() {
		if resp_.OK {
			for i := range resp_.Status {
				if resp_.Status[i] == EEItemOK {
					s.metrics.EERenewOK.Add(1)
				} else {
					s.metrics.EERenewFail.Add(1)
				}
			}
		} else {
			s.metrics.EERenewFail.Add(uint64(len(req.Items)))
		}
		s.metrics.Trace(int64(s.clock())*1e9, telemetry.EvEERenew,
			fmt.Sprintf("batch[%d]", len(req.Items)), resp_.OK, resp_.Reason)
	}()
	fail := func(format string, args ...any) *EEBatchRenewResp {
		return &EEBatchRenewResp{FailedAt: uint8(idx), Reason: fmt.Sprintf(format, args...)}
	}
	if len(req.Items) == 0 || len(req.Accums) != len(req.Items) || len(req.Status) != len(req.Items) {
		return fail("malformed batch")
	}
	if idx > 0 {
		if err := s.verifySourceMac(req.Items[0].ID.SrcAS, req.Body(), req.Macs, idx); err != nil {
			s.metrics.AuthFailures.Add(1)
			return fail("authentication: %v", err)
		}
		// One rate-limit token per wave: the batch is one control message,
		// and per-item charging would make batching pointless under §5.3's
		// per-AS budget.
		if !s.rate.Allow(req.Items[0].ID.SrcAS, s.clock()) {
			s.metrics.RateLimited.Add(1)
			return fail("rate limited")
		}
	}
	now := s.clock()
	covering := coveringSegs(len(req.SegIDs), req.Splits, len(req.Path), idx)
	if len(covering) == 0 {
		return fail("hop %d is not covered by any segment reservation", idx)
	}
	localSegIDs := make([]reservation.ID, 0, 2)
	segRs := make([]*reservation.SegR, 0, 2)
	for _, k := range covering {
		sr, err := s.store.GetSegR(req.SegIDs[k])
		if err != nil {
			return fail("segment reservation: %v", err)
		}
		localSegIDs = append(localSegIDs, sr.ID)
		segRs = append(segRs, sr)
	}
	transferHop := len(segRs) == 2 && segRs[0].SegType == segment.Up && segRs[1].SegType == segment.Core
	hop := req.Path[idx]

	states := make([]eeBatchState, len(req.Items))
	// Forward pass, stage 1: dedup, throttle, previous-version capture, and
	// the transfer-AS split. Single-segment renewals are deferred into one
	// shard-major wave; two-segment records (transfer and core/down hops)
	// and re-admissions run inline through the path ops.
	waveEligible := s.cp != nil && len(localSegIDs) == 1
	var waveItems []EERRenewal
	var waveIdx []int
	if waveEligible {
		waveItems = make([]EERRenewal, 0, len(req.Items))
		waveIdx = make([]int, 0, len(req.Items))
	}
	for i := range req.Items {
		it := &req.Items[i]
		st := &states[i]
		if req.Status[i] != EEItemOK {
			st.status = req.Status[i]
			continue
		}
		asked := req.Accums[i]
		if asked > it.BwKbps {
			asked = it.BwKbps
		}
		// Idempotent retry dedup, before the throttle (a retry of the very
		// renewal the throttle just admitted must not be throttled).
		if s.cp != nil {
			bw, ver, expT, ok := s.cp.LookupEER(it.ID, localSegIDs[0])
			if ok && ver == it.Ver && expT == it.ExpT {
				st.dup, st.grant = true, bw
				s.metrics.DedupHits.Add(1)
				continue
			}
			st.hadPrev, st.prevBw, st.prevVer, st.prevExpT = ok, bw, ver, expT
		} else if existing, gerr := s.store.GetEER(it.ID); gerr == nil {
			for _, v := range existing.Versions {
				if v.Ver == it.Ver && v.ExpT == it.ExpT {
					st.dup, st.grant = true, v.BwKbps
					break
				}
			}
			if st.dup {
				s.metrics.DedupHits.Add(1)
				continue
			}
			// Replaced-version capture, mirroring the CPlane branch so the
			// transfer split releases identically in both modes.
			st.prevBw, st.prevVer, st.prevExpT, st.hadPrev = s.store.LiveVersion(it.ID, now)
		}
		if !s.renewLim.Allow(it.ID, now) {
			s.metrics.RenewThrottle.Add(1)
			st.status = EEItemThrottled
			continue
		}
		grant := asked
		if transferHop {
			up, core := segRs[0], segRs[1]
			upAvail, coreAvail := up.AvailableEERKbps(), core.AvailableEERKbps()
			if s.cp != nil {
				upAvail = s.cp.SegAvail(up.ID, now, it.ExpT)
				coreAvail = s.cp.SegAvail(core.ID, now, it.ExpT)
			}
			if st.hadPrev && st.prevExpT > now {
				// The renewal replaces this EER's own live charge; credit it so
				// the split sees the post-renewal headroom — identically in both
				// admission modes (the store's versions share one budget).
				upAvail += st.prevBw
				coreAvail += st.prevBw
			}
			grant = s.transfer.Admit(core.ID, up.ID, asked,
				up.Active.BwKbps, core.Active.BwKbps, upAvail, coreAvail)
			st.tCapped = asked
			if st.tCapped > up.Active.BwKbps {
				st.tCapped = up.Active.BwKbps
			}
			if grant == 0 {
				s.transfer.Release(core.ID, up.ID, st.tCapped, grant)
				s.metrics.AdmReject.Add(1)
				s.metrics.AdmFallback.Add(1)
				st.status = EEItemRefused
				continue
			}
			st.tAdmitted, st.tGrant = true, grant
		}
		switch {
		case waveEligible && st.hadPrev:
			// Deferred into the shard-major wave below.
			waveItems = append(waveItems, EERRenewal{
				EER: it.ID, Seg: localSegIDs[0], BwKbps: grant, ExpT: it.ExpT, Ver: it.Ver,
			})
			waveIdx = append(waveIdx, i)
		case s.cp != nil && st.hadPrev:
			g, err := s.cp.RenewEERPath(it.ID, localSegIDs, grant, it.ExpT, it.Ver)
			if err != nil {
				s.releaseBatchTransfer(localSegIDs, st)
				s.metrics.AdmReject.Add(1)
				s.metrics.AdmFallback.Add(1)
				st.status = EEItemRefused
				continue
			}
			st.grant, st.admitted = g, true
		case s.cp != nil:
			// No record here (expired, or lost in a crash): re-admit so the
			// flow re-promotes instead of staying demoted (§3.2).
			if err := s.cp.SetupEERPath(it.ID, localSegIDs, grant, it.ExpT, it.Ver); err != nil {
				s.releaseBatchTransfer(localSegIDs, st)
				s.metrics.AdmReject.Add(1)
				s.metrics.AdmFallback.Add(1)
				st.status = EEItemStale
				continue
			}
			st.grant, st.admitted = grant, true
		default:
			eer := &reservation.EER{
				ID: it.ID, In: hop.In, Eg: hop.Eg,
				SrcHost: it.SrcHost, DstHost: it.DstHost,
			}
			v := reservation.Version{Ver: it.Ver, BwKbps: grant, ExpT: it.ExpT}
			if err := s.store.AdmitEERVersion(eer, localSegIDs, v, now); err != nil {
				s.releaseBatchTransfer(localSegIDs, st)
				s.metrics.AdmReject.Add(1)
				s.metrics.AdmFallback.Add(1)
				st.status = EEItemRefused
				continue
			}
			st.grant, st.admitted = grant, true
		}
		if st.tAdmitted {
			// Settle the split to the admitted charge immediately: release the
			// over-ask (capped − grant) and the replaced version's live charge,
			// exactly as sequential per-EER processing would have done before
			// the next renewal's Admit — later items in the wave must see the
			// same intermediate demand, or the two paths' grants diverge.
			s.transfer.Release(localSegIDs[1], localSegIDs[0], st.tCapped-st.tGrant, 0)
			st.tCapped = st.tGrant
			if st.hadPrev && st.prevExpT > now {
				s.transfer.Release(localSegIDs[1], localSegIDs[0], st.prevBw, st.prevBw)
				st.prevReleased = true
			}
		}
	}
	// Forward pass, stage 2: the deferred single-segment renewals as ONE
	// shard-major wave — each shard lock is taken once for the whole batch,
	// fanned across the CPlane's workers.
	if len(waveItems) > 0 {
		waveResults := make([]RenewResult, len(waveItems))
		s.cp.RenewBatch(waveItems, waveResults)
		for w, i := range waveIdx {
			st := &states[i]
			if err := waveResults[w].Err; err != nil {
				s.metrics.AdmReject.Add(1)
				s.metrics.AdmFallback.Add(1)
				st.status = EEItemRefused
				continue
			}
			st.grant, st.admitted = waveResults[w].Granted, true
		}
	}
	rollbackAll := func() {
		for i := range req.Items {
			st := &states[i]
			if !st.admitted || st.dup {
				continue
			}
			s.rollbackBatchItem(&req.Items[i], localSegIDs, st)
		}
	}

	// Propagate this hop's outcomes into the mutable tail and forward.
	for i := range req.Items {
		req.Accums[i] = states[i].grant
		if req.Status[i] == EEItemOK {
			req.Status[i] = states[i].status
		}
	}
	var resp *EEBatchRenewResp
	if idx == len(req.Path)-1 {
		resp = &EEBatchRenewResp{
			OK:       true,
			Granted:  make([]uint64, len(req.Items)),
			Status:   make([]uint8, len(req.Items)),
			EncAuths: make([][]byte, len(req.Items)*len(req.Path)),
		}
		copy(resp.Granted, req.Accums)
		copy(resp.Status, req.Status)
	} else {
		next := req.Path[idx+1].IA
		data, err := s.transport.Call(next, req.Marshal())
		if err != nil {
			resp = &EEBatchRenewResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("transport: %v", err)}
		} else if resp, err = UnmarshalEEBatchRenewResp(data); err != nil {
			resp = &EEBatchRenewResp{FailedAt: uint8(idx + 1), Reason: fmt.Sprintf("response: %v", err)}
		}
	}
	if !resp.OK || len(resp.Granted) != len(req.Items) || len(resp.EncAuths) != len(req.Items)*len(req.Path) {
		rollbackAll()
		if resp.OK {
			return fail("malformed downstream response")
		}
		return resp
	}

	// Response pass: adjust live items to the path-wide minimum, roll back
	// items a downstream hop killed, and seal this AS's hop authenticators.
	keys := make(map[topology.IA]cryptoutil.Key, 1)
	for i := range req.Items {
		it := &req.Items[i]
		st := &states[i]
		if resp.Status[i] != EEItemOK {
			if st.admitted && !st.dup {
				s.rollbackBatchItem(it, localSegIDs, st)
			}
			continue
		}
		final := resp.Granted[i]
		if final < st.grant {
			if s.cp != nil {
				s.cp.AdjustEERPath(it.ID, localSegIDs, final)
			} else if err := s.store.AdjustEERVersion(it.ID, it.Ver, final); err != nil {
				// Keep the wave alive; only this item dies.
				if st.admitted && !st.dup {
					s.rollbackBatchItem(it, localSegIDs, st)
				}
				resp.Status[i] = EEItemRefused
				resp.Granted[i] = 0
				continue
			}
		}
		res := &packet.ResInfo{
			SrcAS:  it.ID.SrcAS,
			ResID:  it.ID.Num,
			BwKbps: uint32(final),
			ExpT:   it.ExpT,
			Ver:    it.Ver,
		}
		eerInfo := &packet.EERInfo{SrcHost: it.SrcHost, DstHost: it.DstHost}
		sigma := s.hopAuth(res, eerInfo, packet.HopField{In: hop.In, Eg: hop.Eg})
		key, ok := keys[it.ID.SrcAS]
		if !ok {
			key, _ = s.engine.Level1(it.ID.SrcAS, now)
			keys[it.ID.SrcAS] = key
		}
		sealed, err := cryptoutil.Seal(key, sigma[:], eerAuthAD(it.ID, uint8(idx)))
		if err != nil {
			if st.admitted && !st.dup {
				s.rollbackBatchItem(it, localSegIDs, st)
			}
			resp.Status[i] = EEItemRefused
			resp.Granted[i] = 0
			continue
		}
		if st.tAdmitted {
			// Committed: clamp the split's record of this item — already
			// settled to its grant in the forward pass — down to the final
			// path-wide grant (the split tracks live committed bandwidth only).
			s.transfer.Release(localSegIDs[1], localSegIDs[0], st.tCapped-final, st.tGrant-final)
			st.tAdmitted = false
		}
		resp.EncAuths[i*len(req.Path)+idx] = sealed
	}
	return resp
}

// releaseBatchTransfer returns an item's transfer-split admission in full —
// called on every path where the item's new version does not survive this
// hop. tAdmitted is only ever set at a transfer hop, where localSegIDs is
// the [up, core] pair.
func (s *Service) releaseBatchTransfer(localSegIDs []reservation.ID, st *eeBatchState) {
	if !st.tAdmitted {
		return
	}
	s.transfer.Release(localSegIDs[1], localSegIDs[0], st.tCapped, st.tGrant)
	st.tAdmitted = false
}

// rollbackBatchItem undoes one admitted batch item: the CPlane reinstates the
// previous version (or drops the record when this hop re-admitted a lost
// EER); the store removes the added version.
func (s *Service) rollbackBatchItem(it *EEBatchItem, localSegIDs []reservation.ID, st *eeBatchState) {
	s.releaseBatchTransfer(localSegIDs, st)
	if st.prevReleased {
		// The rollback reinstates the previous version below; re-add the
		// charge the forward pass returned for it.
		s.transfer.Charge(localSegIDs[1], localSegIDs[0], st.prevBw, st.prevBw)
		st.prevReleased = false
	}
	if s.cp != nil {
		if st.hadPrev {
			s.cp.RestoreEERPath(it.ID, localSegIDs, st.prevBw, st.prevExpT, st.prevVer)
		} else {
			s.cp.TeardownEERPath(it.ID, localSegIDs)
		}
		return
	}
	_ = s.store.RemoveEERVersion(it.ID, it.Ver)
}

// RenewEERBatch renews a wave of EERs that share one chain (same SegIDs,
// Splits, and Path — callers group by chain signature, see KeeperFleet) in a
// single batched round trip. newBwKbps[i] is the bandwidth requested for
// prevs[i]. It returns one grant or one error per item; a transport-level
// batch failure yields the same error for every item.
func (s *Service) RenewEERBatch(prevs []*EERGrant, newBwKbps []uint64) ([]*EERGrant, []error) {
	grants := make([]*EERGrant, len(prevs))
	errs := make([]error, len(prevs))
	if len(prevs) == 0 {
		return grants, errs
	}
	if len(newBwKbps) != len(prevs) {
		for i := range errs {
			errs[i] = fmt.Errorf("cserv: RenewEERBatch: %d bandwidths for %d items", len(newBwKbps), len(prevs))
		}
		return grants, errs
	}
	now := s.clock()
	req := &EEBatchRenewReq{
		SegIDs: prevs[0].SegIDs,
		Splits: prevs[0].Splits,
		Path:   prevs[0].PathHops,
		Items:  make([]EEBatchItem, len(prevs)),
		Accums: make([]uint64, len(prevs)),
		Status: make([]uint8, len(prevs)),
	}
	for i, p := range prevs {
		req.Items[i] = EEBatchItem{
			ID:      p.ID,
			Ver:     p.Res.Ver + 1,
			BwKbps:  newBwKbps[i],
			ExpT:    now + reservation.EERLifetimeSeconds,
			SrcHost: p.EER.SrcHost,
			DstHost: p.EER.DstHost,
		}
		req.Accums[i] = newBwKbps[i]
	}
	macs, err := s.computeMacs(req.Path, req.Body())
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return grants, errs
	}
	req.Macs = macs
	resp := s.processEEBatchRenew(req, 0)
	if !resp.OK {
		for i := range errs {
			errs[i] = fmt.Errorf("%w: batch renewal failed at hop %d: %s", ErrRefused, resp.FailedAt, resp.Reason)
		}
		return grants, errs
	}
	// Decrypt the hop authenticators (Eq. 5) for the surviving items; level-1
	// keys are fetched once per hop, not once per item.
	hopKeys := make([]cryptoutil.Key, len(req.Path))
	for h, ph := range req.Path {
		if ph.IA == s.ia {
			hopKeys[h], _ = s.engine.Level1(s.ia, now)
		} else {
			hopKeys[h], err = s.keys.Get(ph.IA, now)
			if err != nil {
				for i := range errs {
					errs[i] = err
				}
				return grants, errs
			}
		}
	}
	for i, p := range prevs {
		switch resp.Status[i] {
		case EEItemOK:
		case EEItemStale:
			errs[i] = fmt.Errorf("%w: renewal of %s: stale at some hop and re-admission failed", ErrRefused, p.ID)
			continue
		case EEItemThrottled:
			errs[i] = fmt.Errorf("%w: renewal of %s throttled", ErrRefused, p.ID)
			continue
		default:
			errs[i] = fmt.Errorf("%w: renewal of %s refused", ErrRefused, p.ID)
			continue
		}
		it := &req.Items[i]
		g := &EERGrant{
			ID: p.ID,
			Res: packet.ResInfo{
				SrcAS:  p.ID.SrcAS,
				ResID:  p.ID.Num,
				BwKbps: uint32(resp.Granted[i]),
				ExpT:   it.ExpT,
				Ver:    it.Ver,
			},
			EER:      packet.EERInfo{SrcHost: it.SrcHost, DstHost: it.DstHost},
			Path:     HopFields(req.Path),
			PathHops: p.PathHops,
			Splits:   p.Splits,
			SegIDs:   p.SegIDs,
			HopAuths: make([]cryptoutil.Key, len(req.Path)),
		}
		bad := false
		for h := range req.Path {
			enc := resp.EncAuths[i*len(req.Path)+h]
			pt, oerr := cryptoutil.Open(hopKeys[h], enc, eerAuthAD(p.ID, uint8(h)))
			if oerr != nil {
				errs[i] = fmt.Errorf("cserv: opening hop authenticator %d of %s: %w", h, p.ID, oerr)
				bad = true
				break
			}
			copy(g.HopAuths[h][:], pt)
		}
		if bad {
			continue
		}
		grants[i] = g
	}
	return grants, errs
}
