// Package cserv implements the Colibri service (CServ), the per-AS
// control-plane component of §3.2–§4.4: it initiates, admits, renews, and
// activates segment reservations; admits end-to-end reservations over them;
// authenticates every control-plane message with DRKey-derived symmetric
// keys; registers and disseminates SegRs (Appendix C); and rate-limits
// requests per source AS.
//
// Inter-AS communication is synchronous request/response over a Transport
// (the paper uses gRPC over QUIC): a setup request chains through the
// on-path CServs and the response returns through the same chain, letting
// every AS confirm or roll back its temporary reservation — the
// "transactional" behaviour of §3.3.
package cserv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/topology"
)

// Wire format: all integers big-endian; slices length-prefixed with uint16.
// Every request carries one 16-byte CMAC per on-path AS over the request
// body (§4.5: MAC_{K_{AS_i→SrcAS}}(payload)), appended after the body.

// Message type tags.
const (
	tagSegSetup     = 1
	tagSegRenew     = 2
	tagSegActivate  = 3
	tagEESetup      = 4
	tagEERenew      = 5
	tagEEBatchRenew = 7
)

// Errors of the wire layer.
var (
	ErrTruncated = errors.New("cserv: truncated message")
	ErrBadTag    = errors.New("cserv: unexpected message tag")
)

// PathHop is one AS of a request path with its local interfaces.
type PathHop struct {
	IA     topology.IA
	In, Eg topology.IfID
}

// HopsFromSegment converts a segment to request path hops.
func HopsFromSegment(seg *segment.Segment) []PathHop {
	hops := make([]PathHop, seg.Len())
	for i, h := range seg.Hops {
		hops[i] = PathHop{IA: h.IA, In: h.In, Eg: h.Eg}
	}
	return hops
}

// HopsFromPath converts an end-to-end path to request path hops.
func HopsFromPath(p *segment.Path) []PathHop {
	hops := make([]PathHop, p.Len())
	for i, h := range p.Hops {
		hops[i] = PathHop{IA: h.IA, In: h.In, Eg: h.Eg}
	}
	return hops
}

// HopFields converts path hops to packet hop fields.
func HopFields(hops []PathHop) []packet.HopField {
	out := make([]packet.HopField, len(hops))
	for i, h := range hops {
		out[i] = packet.HopField{In: h.In, Eg: h.Eg}
	}
	return out
}

// SegSetupReq is the segment-reservation setup request (§4.4). The same
// structure carries renewals (tag differs) since renewals re-negotiate the
// same fields over the existing reservation.
type SegSetupReq struct {
	ID      reservation.ID
	SegType segment.Type
	Path    []PathHop
	MinKbps uint64
	MaxKbps uint64
	ExpT    uint32
	Ver     uint16
	// Renewal marks this request as a renewal of an existing SegR.
	Renewal bool
	// Macs[i] authenticates Body() towards Path[i].IA.
	Macs [][cryptoutil.MACSize]byte
	// AccumKbps is the running minimum of the grants of the ASes traversed
	// so far ("it then updates the request with the granted amount of
	// bandwidth and forwards it", §3.3). It is AS-added data and therefore
	// outside the source's MACs; in the paper each AS authenticates its own
	// additions with its DRKey key, which the synchronous response chain
	// models here.
	AccumKbps uint64
}

// Body returns the MAC-covered canonical encoding.
func (r *SegSetupReq) Body() []byte {
	b := make([]byte, 0, 64+8*len(r.Path))
	tag := byte(tagSegSetup)
	if r.Renewal {
		tag = tagSegRenew
	}
	b = append(b, tag)
	b = appendID(b, r.ID)
	b = append(b, byte(r.SegType), boolByte(r.Renewal))
	b = appendHops(b, r.Path)
	b = binary.BigEndian.AppendUint64(b, r.MinKbps)
	b = binary.BigEndian.AppendUint64(b, r.MaxKbps)
	b = binary.BigEndian.AppendUint32(b, r.ExpT)
	b = binary.BigEndian.AppendUint16(b, r.Ver)
	return b
}

// Marshal appends the MACs and the mutable accumulator to the body.
func (r *SegSetupReq) Marshal() []byte {
	return binary.BigEndian.AppendUint64(appendMacs(r.Body(), r.Macs), r.AccumKbps)
}

// UnmarshalSegSetupReq parses a SegSetupReq.
func UnmarshalSegSetupReq(data []byte) (*SegSetupReq, error) {
	d := decoder{buf: data}
	tag := d.u8()
	r := &SegSetupReq{}
	r.ID = d.id()
	r.SegType = segment.Type(d.u8())
	r.Renewal = d.u8() == 1
	r.Path = d.hops()
	r.MinKbps = d.u64()
	r.MaxKbps = d.u64()
	r.ExpT = d.u32()
	r.Ver = d.u16()
	r.Macs = d.macs()
	r.AccumKbps = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if tag != tagSegSetup && tag != tagSegRenew {
		return nil, ErrBadTag
	}
	return r, nil
}

// SegSetupResp travels the reverse path. Grants accumulate per AS on the
// forward pass; on success FinalKbps is the minimum and Tokens carries the
// Eq. (3) token of each AS, ordered like the path.
type SegSetupResp struct {
	OK        bool
	FailedAt  uint8 // path index of the refusing AS (when !OK)
	Reason    string
	FinalKbps uint64
	Tokens    [][packet.HVFLen]byte
}

// Marshal encodes the response.
func (r *SegSetupResp) Marshal() []byte {
	b := []byte{boolByte(r.OK), r.FailedAt}
	b = appendString(b, r.Reason)
	b = binary.BigEndian.AppendUint64(b, r.FinalKbps)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Tokens)))
	for _, tok := range r.Tokens {
		b = append(b, tok[:]...)
	}
	return b
}

// UnmarshalSegSetupResp parses a SegSetupResp.
func UnmarshalSegSetupResp(data []byte) (*SegSetupResp, error) {
	d := decoder{buf: data}
	r := &SegSetupResp{}
	r.OK = d.u8() == 1
	r.FailedAt = d.u8()
	r.Reason = d.str()
	r.FinalKbps = d.u64()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		var tok [packet.HVFLen]byte
		d.bytes(tok[:])
		r.Tokens = append(r.Tokens, tok)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// SegActivateReq switches a SegR to its pending version (§4.2).
type SegActivateReq struct {
	ID   reservation.ID
	Ver  uint16
	Path []PathHop
	Macs [][cryptoutil.MACSize]byte
}

// Body returns the MAC-covered canonical encoding.
func (r *SegActivateReq) Body() []byte {
	b := []byte{tagSegActivate}
	b = appendID(b, r.ID)
	b = binary.BigEndian.AppendUint16(b, r.Ver)
	b = appendHops(b, r.Path)
	return b
}

// Marshal appends the MACs to the body.
func (r *SegActivateReq) Marshal() []byte { return appendMacs(r.Body(), r.Macs) }

// UnmarshalSegActivateReq parses a SegActivateReq.
func UnmarshalSegActivateReq(data []byte) (*SegActivateReq, error) {
	d := decoder{buf: data}
	if d.u8() != tagSegActivate {
		return nil, ErrBadTag
	}
	r := &SegActivateReq{}
	r.ID = d.id()
	r.Ver = d.u16()
	r.Path = d.hops()
	r.Macs = d.macs()
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// EESetupReq is the end-to-end-reservation setup request (§4.4). SegIDs are
// the underlying segment reservations; Splits are the path indices of the
// transfer ASes joining them (len(SegIDs)-1 entries).
type EESetupReq struct {
	ID      reservation.ID
	SegIDs  []reservation.ID
	Splits  []uint8
	Path    []PathHop
	BwKbps  uint64
	ExpT    uint32
	Ver     uint16
	SrcHost uint32
	DstHost uint32
	Renewal bool
	Macs    [][cryptoutil.MACSize]byte
	// AccumKbps mirrors SegSetupReq.AccumKbps for EER requests.
	AccumKbps uint64
}

// Body returns the MAC-covered canonical encoding.
func (r *EESetupReq) Body() []byte {
	tag := byte(tagEESetup)
	if r.Renewal {
		tag = tagEERenew
	}
	b := []byte{tag}
	b = appendID(b, r.ID)
	b = append(b, byte(len(r.SegIDs)))
	for _, id := range r.SegIDs {
		b = appendID(b, id)
	}
	b = append(b, byte(len(r.Splits)))
	b = append(b, r.Splits...)
	b = appendHops(b, r.Path)
	b = binary.BigEndian.AppendUint64(b, r.BwKbps)
	b = binary.BigEndian.AppendUint32(b, r.ExpT)
	b = binary.BigEndian.AppendUint16(b, r.Ver)
	b = binary.BigEndian.AppendUint32(b, r.SrcHost)
	b = binary.BigEndian.AppendUint32(b, r.DstHost)
	b = append(b, boolByte(r.Renewal))
	return b
}

// Marshal appends the MACs and the mutable accumulator to the body.
func (r *EESetupReq) Marshal() []byte {
	return binary.BigEndian.AppendUint64(appendMacs(r.Body(), r.Macs), r.AccumKbps)
}

// UnmarshalEESetupReq parses an EESetupReq.
func UnmarshalEESetupReq(data []byte) (*EESetupReq, error) {
	d := decoder{buf: data}
	tag := d.u8()
	r := &EESetupReq{}
	r.ID = d.id()
	nseg := int(d.u8())
	for i := 0; i < nseg && d.err == nil; i++ {
		r.SegIDs = append(r.SegIDs, d.id())
	}
	nsplit := int(d.u8())
	for i := 0; i < nsplit && d.err == nil; i++ {
		r.Splits = append(r.Splits, d.u8())
	}
	r.Path = d.hops()
	r.BwKbps = d.u64()
	r.ExpT = d.u32()
	r.Ver = d.u16()
	r.SrcHost = d.u32()
	r.DstHost = d.u32()
	r.Renewal = d.u8() == 1
	r.Macs = d.macs()
	r.AccumKbps = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if tag != tagEESetup && tag != tagEERenew {
		return nil, ErrBadTag
	}
	return r, nil
}

// EESetupResp travels the reverse path; on success, EncAuths[i] carries
// AEAD_{K_{AS_i→SrcAS}}(σ_i) for the source AS's gateway (Eq. 5).
type EESetupResp struct {
	OK        bool
	FailedAt  uint8
	Reason    string
	FinalKbps uint64
	EncAuths  [][]byte
}

// Marshal encodes the response.
func (r *EESetupResp) Marshal() []byte {
	b := []byte{boolByte(r.OK), r.FailedAt}
	b = appendString(b, r.Reason)
	b = binary.BigEndian.AppendUint64(b, r.FinalKbps)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.EncAuths)))
	for _, ea := range r.EncAuths {
		b = binary.BigEndian.AppendUint16(b, uint16(len(ea)))
		b = append(b, ea...)
	}
	return b
}

// UnmarshalEESetupResp parses an EESetupResp.
func UnmarshalEESetupResp(data []byte) (*EESetupResp, error) {
	d := decoder{buf: data}
	r := &EESetupResp{}
	r.OK = d.u8() == 1
	r.FailedAt = d.u8()
	r.Reason = d.str()
	r.FinalKbps = d.u64()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		m := int(d.u16())
		ea := make([]byte, m)
		d.bytes(ea)
		r.EncAuths = append(r.EncAuths, ea)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// --- encoding helpers ---

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendID(b []byte, id reservation.ID) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(id.SrcAS))
	return binary.BigEndian.AppendUint32(b, id.Num)
}

func appendHops(b []byte, hops []PathHop) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(hops)))
	for _, h := range hops {
		b = binary.BigEndian.AppendUint64(b, uint64(h.IA))
		b = binary.BigEndian.AppendUint16(b, uint16(h.In))
		b = binary.BigEndian.AppendUint16(b, uint16(h.Eg))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendMacs(b []byte, macs [][cryptoutil.MACSize]byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(macs)))
	for _, m := range macs {
		b = append(b, m[:]...)
	}
	return b
}

// decoder is a cursor with sticky error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < n {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) bytes(dst []byte) {
	if !d.need(len(dst)) {
		return
	}
	copy(dst, d.buf)
	d.buf = d.buf[len(dst):]
}

func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) id() reservation.ID {
	return reservation.ID{SrcAS: topology.IA(d.u64()), Num: d.u32()}
}

func (d *decoder) hops() []PathHop {
	n := int(d.u16())
	if n > packet.MaxHops {
		d.err = fmt.Errorf("cserv: %d hops exceeds maximum", n)
		return nil
	}
	hops := make([]PathHop, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		hops = append(hops, PathHop{
			IA: topology.IA(d.u64()),
			In: topology.IfID(d.u16()),
			Eg: topology.IfID(d.u16()),
		})
	}
	return hops
}

func (d *decoder) macs() [][cryptoutil.MACSize]byte {
	n := int(d.u16())
	if n > packet.MaxHops {
		d.err = fmt.Errorf("cserv: %d MACs exceeds maximum", n)
		return nil
	}
	macs := make([][cryptoutil.MACSize]byte, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var m [cryptoutil.MACSize]byte
		d.bytes(m[:])
		macs = append(macs, m)
	}
	return macs
}
