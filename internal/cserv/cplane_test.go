package cserv

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"colibri/internal/admission"
	"colibri/internal/reservation"
	"colibri/internal/restree"
	"colibri/internal/topology"
)

// cplaneAS builds a transit AS with ifaces interfaces of linkKbps each,
// the shape every CPlane test admits against.
func cplaneAS(t testing.TB, ifaces int, linkKbps uint64) *topology.AS {
	t.Helper()
	topo := topology.New()
	center := ia(1, 1)
	topo.AddAS(center, true)
	for i := 1; i <= ifaces; i++ {
		n := ia(1, topology.ASID(100+i))
		topo.AddAS(n, true)
		topo.MustConnect(center, topology.IfID(i), n, 1, topology.LinkCore,
			topology.LinkSpec{CapacityKbps: linkKbps})
	}
	return topo.AS(center)
}

// cpClock is a virtual control-plane clock shared with a CPlane under test.
type cpClock struct{ t atomic.Uint32 }

func newCPClock(start uint32) *cpClock {
	c := &cpClock{}
	c.t.Store(start)
	return c
}
func (c *cpClock) now() uint32   { return c.t.Load() }
func (c *cpClock) step(d uint32) { c.t.Add(d) }

func newTestCPlane(t testing.TB, shards int, impl string, clk *cpClock) *CPlane {
	t.Helper()
	cp, err := NewCPlane(CPlaneConfig{
		AS:            cplaneAS(t, 4, 1_000_000),
		Split:         admission.DefaultSplit,
		Shards:        shards,
		AdmissionImpl: impl,
		Clock:         clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func segReq(num uint32, src topology.ASID, in, eg topology.IfID, maxKbps uint64) admission.Request {
	return admission.Request{
		ID:      reservation.ID{SrcAS: ia(1, src), Num: num},
		Src:     ia(1, src),
		In:      in,
		Eg:      eg,
		MaxKbps: maxKbps,
	}
}

func eid(num uint32) reservation.ID { return reservation.ID{SrcAS: ia(2, 7), Num: num} }

func TestCPlaneLifecycle(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 1, admission.ImplMemoized, clk)

	seg := segReq(1, 50, 1, 2, 10_000)
	grant, err := cp.AddSegR(seg)
	if err != nil || grant != 10_000 {
		t.Fatalf("AddSegR: grant=%d err=%v", grant, err)
	}

	if err := cp.SetupEER(eid(1), seg.ID, 6_000, clk.now()+16); err != nil {
		t.Fatalf("SetupEER: %v", err)
	}
	// Full-or-nothing: 5000 over the remaining 4000 must be refused whole.
	if err := cp.SetupEER(eid(2), seg.ID, 5_000, clk.now()+16); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("oversubscribed setup: err=%v, want ErrInsufficient", err)
	}
	if err := cp.SetupEER(eid(1), seg.ID, 1_000, clk.now()+16); !errors.Is(err, restree.ErrExists) {
		t.Fatalf("duplicate setup: err=%v, want restree.ErrExists", err)
	}
	if err := cp.SetupEER(eid(3), seg.ID, 4_000, clk.now()+16); err != nil {
		t.Fatalf("exact-fit setup: %v", err)
	}

	// Renewal shrinks to the free bandwidth: eid(1) asks to grow to 8000 but
	// only 6000 (its own) + 0 free is available → granted 6000.
	g, err := cp.RenewEER(eid(1), seg.ID, 8_000, clk.now()+16)
	if err != nil || g != 6_000 {
		t.Fatalf("RenewEER truncation: grant=%d err=%v", g, err)
	}

	if err := cp.TeardownSegR(seg.ID); !errors.Is(err, ErrSegRInUse) {
		t.Fatalf("TeardownSegR with live EERs: err=%v, want ErrSegRInUse", err)
	}
	cp.TeardownEER(eid(1), seg.ID)
	cp.TeardownEER(eid(3), seg.ID)
	if err := cp.TeardownSegR(seg.ID); err != nil {
		t.Fatalf("TeardownSegR after EER teardown: %v", err)
	}
	if err := cp.TeardownSegR(seg.ID); !errors.Is(err, ErrUnknownSegR) {
		t.Fatalf("double teardown: err=%v, want ErrUnknownSegR", err)
	}

	ct := cp.Counts()
	if ct.SegRs != 0 || ct.EERs != 0 {
		t.Fatalf("counts not drained: %+v", ct)
	}
	if ct.Rejects != 1 {
		t.Fatalf("rejects=%d, want 1 (oversubscribed setup only)", ct.Rejects)
	}
	if ct.Dedups != 1 {
		t.Fatalf("dedups=%d, want 1 (duplicate setup is an idempotent retry, not a refusal)", ct.Dedups)
	}
	if ct.Stale != 0 {
		t.Fatalf("stale=%d, want 0", ct.Stale)
	}
}

func TestCPlaneExpiryFreesBandwidth(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 1, admission.ImplMemoized, clk)
	seg := segReq(1, 50, 1, 2, 10_000)
	if _, err := cp.AddSegR(seg); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetupEER(eid(1), seg.ID, 10_000, clk.now()+16); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetupEER(eid(2), seg.ID, 10_000, clk.now()+16); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient while eid(1) holds all bandwidth, got %v", err)
	}
	// A setup whose window starts after eid(1)'s expiry epoch would still
	// collide inside the discretization slack; past the full lifetime it
	// must succeed without any Tick (lazy expiry on the ledger).
	clk.step(32)
	if err := cp.SetupEER(eid(2), seg.ID, 10_000, clk.now()+16); err != nil {
		t.Fatalf("setup after expiry: %v", err)
	}
	// Tick reaps the stale EER record.
	if n := cp.Tick(); n != 1 {
		t.Fatalf("Tick removed %d EERs, want 1", n)
	}
	if ct := cp.Counts(); ct.EERs != 1 {
		t.Fatalf("EERs=%d after Tick, want 1", ct.EERs)
	}
}

func TestCPlaneRenewalFallback(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 1, admission.ImplMemoized, clk)
	seg := segReq(1, 50, 1, 2, 10_000)
	if _, err := cp.AddSegR(seg); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetupEER(eid(1), seg.ID, 4_000, clk.now()+300); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetupEER(eid(2), seg.ID, 6_000, clk.now()+16); err != nil {
		t.Fatal(err)
	}
	// eid(2) wants to grow to 8000, but only 6000 is free → granted 6000.
	if g, err := cp.RenewEER(eid(2), seg.ID, 8_000, clk.now()+16); err != nil || g != 6_000 {
		t.Fatalf("partial renewal: grant=%d err=%v", g, err)
	}
	// Fill the SegR completely, then a renewal that cannot get anything
	// must restore the old version rather than tearing the flow down.
	if g, err := cp.RenewEER(eid(1), seg.ID, 4_000, clk.now()+300); err != nil || g != 4_000 {
		t.Fatalf("refresh eid(1): grant=%d err=%v", g, err)
	}
	// Now shrink segBw by renewing the SegR down to 4000: eid(2)'s next
	// renewal finds zero free bandwidth (4000 grant − 4000 for eid(1)).
	r := seg
	r.MaxKbps = 4_000
	if _, err := cp.RenewSegR(r); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RenewEER(eid(2), seg.ID, 6_000, clk.now()+16); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("zero-grant renewal: err=%v, want ErrInsufficient", err)
	}
	// The old version survived: it still blocks an equal-size setup.
	if err := cp.SetupEER(eid(3), seg.ID, 1, clk.now()+10); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("old version not restored: setup err=%v, want ErrInsufficient", err)
	}
}

// TestCPlaneShardDeterminism runs one op sequence against two independent
// engines and requires bit-identical grants, rejections and counts.
func TestCPlaneShardDeterminism(t *testing.T) {
	run := func() (grants []uint64, ct CPlaneCounts) {
		clk := newCPClock(1000)
		cp := newTestCPlane(t, 4, admission.ImplRestree, clk)
		var segs []reservation.ID
		rng := uint64(1)
		for i := uint32(0); i < 200; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			src := topology.ASID(10 + rng%37)
			req := segReq(i, src, topology.IfID(1+i%4), topology.IfID(1+(i+1)%4), 2_000+uint64(rng%1000))
			g, err := cp.AddSegR(req)
			if err != nil {
				grants = append(grants, 0)
				continue
			}
			grants = append(grants, g)
			segs = append(segs, req.ID)
			if err := cp.SetupEER(eid(i), req.ID, g/2, clk.now()+16); err == nil {
				grants = append(grants, g/2)
			}
			if i%17 == 0 {
				clk.step(5)
				cp.Tick()
			}
		}
		items := make([]EERRenewal, 0, len(segs))
		for i, id := range segs {
			items = append(items, EERRenewal{EER: eid(uint32(i)), Seg: id, BwKbps: 3_000, ExpT: clk.now() + 16})
		}
		results := make([]RenewResult, len(items))
		cp.RenewBatch(items, results)
		for _, r := range results {
			grants = append(grants, r.Granted)
		}
		return grants, cp.Counts()
	}
	g1, c1 := run()
	g2, c2 := run()
	if len(g1) != len(g2) {
		t.Fatalf("grant streams differ in length: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("grant %d differs: %d vs %d", i, g1[i], g2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("counts differ: %+v vs %+v", c1, c2)
	}
}

// TestCPlaneShardedCapacityConserved checks the capacity split: with K
// shards the total granted SegR bandwidth stays within the physical EER
// share of each egress link.
func TestCPlaneShardedCapacityConserved(t *testing.T) {
	const linkKbps = 100_000
	clk := newCPClock(1000)
	cp, err := NewCPlane(CPlaneConfig{
		AS:     cplaneAS(t, 2, linkKbps),
		Split:  admission.DefaultSplit,
		Shards: 4,
		Clock:  clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i := uint32(0); i < 4000; i++ {
		g, err := cp.AddSegR(segReq(i, topology.ASID(10+i%50), 1, 2, 1_000))
		if err == nil {
			total += g
		}
	}
	cap := admission.DefaultSplit.EERShare(linkKbps)
	if total > cap {
		t.Fatalf("total granted %d kbps exceeds physical EER share %d kbps", total, cap)
	}
	if total == 0 {
		t.Fatal("nothing admitted")
	}
}

// TestCPlaneConcurrent exercises the engine from many goroutines; run under
// -race it validates the locking discipline and the atomic counters.
func TestCPlaneConcurrent(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 4, admission.ImplRestree, clk)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * 10_000)
			for i := uint32(0); i < 300; i++ {
				req := segReq(base+i, topology.ASID(10+uint64(w)), topology.IfID(1+i%4), topology.IfID(1+(i+1)%4), 500)
				if _, err := cp.AddSegR(req); err != nil {
					continue
				}
				eer := reservation.ID{SrcAS: ia(2, topology.ASID(1+uint64(w))), Num: i}
				if err := cp.SetupEER(eer, req.ID, 100, clk.now()+16); err == nil {
					if _, err := cp.RenewEER(eer, req.ID, 120, clk.now()+16); err != nil &&
						!errors.Is(err, ErrInsufficient) {
						t.Errorf("RenewEER: %v", err)
					}
					cp.TeardownEER(eer, req.ID)
				}
				if i%3 == 0 {
					if err := cp.TeardownSegR(req.ID); err != nil && !errors.Is(err, ErrSegRInUse) {
						t.Errorf("TeardownSegR: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	cp.Tick()
	ct := cp.Counts()
	if ct.SegRs < 0 || ct.EERs < 0 {
		t.Fatalf("negative counts: %+v", ct)
	}
}

// TestCPlaneRenewBatchZeroAlloc pins the hot path: a full renewal wave over
// a warmed-up engine must not allocate.
func TestCPlaneRenewBatchZeroAlloc(t *testing.T) {
	clk := newCPClock(1000)
	cp := newTestCPlane(t, 4, admission.ImplRestree, clk)
	const nSeg = 64
	items := make([]EERRenewal, 0, nSeg)
	for i := uint32(0); i < nSeg; i++ {
		req := segReq(i, topology.ASID(10+i%7), topology.IfID(1+i%4), topology.IfID(1+(i+1)%4), 2_000)
		if _, err := cp.AddSegR(req); err != nil {
			t.Fatal(err)
		}
		if err := cp.SetupEER(eid(i), req.ID, 500, clk.now()+16); err != nil {
			t.Fatal(err)
		}
		items = append(items, EERRenewal{EER: eid(i), Seg: req.ID, BwKbps: 500, ExpT: 0})
	}
	results := make([]RenewResult, len(items))
	wave := func() {
		clk.step(4)
		for i := range items {
			items[i].ExpT = clk.now() + 16
		}
		cp.RenewBatch(items, results)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("renewal %d failed: %v", i, r.Err)
			}
		}
	}
	for i := 0; i < 20; i++ { // warm up: heap slices, map buckets, ledgers
		wave()
	}
	if avg := testing.AllocsPerRun(50, wave); avg != 0 {
		t.Fatalf("RenewBatch allocates %.1f times per wave, want 0", avg)
	}
}
