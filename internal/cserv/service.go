package cserv

import (
	"errors"
	"fmt"
	"sync"

	"colibri/internal/admission"
	"colibri/internal/cryptoutil"
	"colibri/internal/drkey"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/segment"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Transport carries control-plane messages between CServs (gRPC over QUIC
// in the paper's implementation): Call delivers a marshaled request to the
// CServ of dst and returns its marshaled response synchronously.
type Transport interface {
	Call(dst topology.IA, msg []byte) ([]byte, error)
}

// Policy is the source AS's intra-AS admission policy for its hosts ("it
// falls to the AS in which H_S is situated to set limits on the maximum
// bandwidth that H_S can request", §3.3).
type Policy interface {
	AllowEER(srcHost uint32, bwKbps uint64) error
}

// AllowAll grants every host request.
type AllowAll struct{}

// AllowEER implements Policy.
func (AllowAll) AllowEER(uint32, uint64) error { return nil }

// HostCapPolicy limits each host to a fixed total; zero cap means the
// default cap applies.
type HostCapPolicy struct {
	DefaultCapKbps uint64
	PerHost        map[uint32]uint64

	mu   sync.Mutex
	used map[uint32]uint64
}

// AllowEER implements Policy.
func (p *HostCapPolicy) AllowEER(srcHost uint32, bwKbps uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	capKbps := p.DefaultCapKbps
	if c, ok := p.PerHost[srcHost]; ok {
		capKbps = c
	}
	if p.used == nil {
		p.used = make(map[uint32]uint64)
	}
	if p.used[srcHost]+bwKbps > capKbps {
		return fmt.Errorf("cserv: host %d exceeds its EER cap (%d + %d > %d kbps)",
			srcHost, p.used[srcHost], bwKbps, capKbps)
	}
	p.used[srcHost] += bwKbps
	return nil
}

// ReleaseEER returns host budget when an EER expires.
func (p *HostCapPolicy) ReleaseEER(srcHost uint32, bwKbps uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used[srcHost] >= bwKbps {
		p.used[srcHost] -= bwKbps
	} else {
		p.used[srcHost] = 0
	}
}

// Config assembles a Service.
type Config struct {
	AS    *topology.AS
	Topo  *topology.Topology
	Split admission.TrafficSplit
	// Secret is the AS's data-plane secret K_i used for SegR tokens and hop
	// authenticators; shared with the AS's border routers.
	Secret cryptoutil.Key
	// Engine derives DRKey level-1 keys on the fly (fast side).
	Engine *drkey.Engine
	// Keys fetches and caches remote level-1 keys (slow side).
	Keys *drkey.Store
	// Directory is the (possibly shared) SegR registry of Appendix C.
	Directory *Directory
	// Transport reaches remote CServs.
	Transport Transport
	// Clock returns the current Unix time in seconds.
	Clock func() uint32
	// Policy guards host EER requests at the source AS (default AllowAll).
	Policy Policy
	// DstApprove lets the destination AS/host veto an EER request (§3.3:
	// the destination "also has to explicitly accept"); default accepts.
	DstApprove func(req *EESetupReq) bool
	// RateLimit is the per-source-AS control-request budget per second
	// (default 1000; §5.3 "per-AS rate limiting").
	RateLimit int
	// AdmissionImpl selects the SegR admission implementation:
	// admission.ImplMemoized (default), admission.ImplNaive, or
	// admission.ImplRestree. All three are validated differentially
	// (FuzzAdmissionEquivalence); restree additionally time-bounds
	// reservations and expires them without an explicit release.
	AdmissionImpl string
	// CPlaneShards, when > 0, routes the live request path's admission state
	// through a sharded CPlane engine instead of the single-lock Admitter and
	// the store's EER accounting: SegR admission goes to per-shard admitters,
	// EER demand to per-SegR restree ledgers, and renewal waves to the
	// shard-major RenewBatch. The store keeps the SegR protocol state
	// (versions, tokens, idempotency keys) in both modes. Must be a power of
	// two; 0 keeps the classic single-store path.
	CPlaneShards int
	// CPlaneWorkers fans RenewBatch shard buckets across this many goroutines
	// (0 or 1 = inline). Only meaningful with CPlaneShards > 0; call Close on
	// the Service when using more than one worker.
	CPlaneWorkers int
	// Telemetry is the AS-wide registry the service's metrics and lifecycle
	// tracer attach to; a private registry is created when nil.
	Telemetry *telemetry.Registry
}

// Service is one AS's Colibri service.
type Service struct {
	ia    topology.IA
	as    *topology.AS
	topo  *topology.Topology
	split admission.TrafficSplit

	store    *reservation.Store
	adm      admission.Admitter
	transfer *admission.TransferSplit
	// cp is the sharded control-plane engine; nil in classic mode. When set,
	// SegR admission and EER demand accounting run through it (see
	// cplane_live.go) and the store carries only protocol state.
	cp *CPlane

	secret  cryptoutil.Key
	engine  *drkey.Engine
	keys    *drkey.Store
	macPool sync.Pool // *cryptoutil.CBCMAC keyed by secret

	dir        *Directory
	transport  Transport
	clock      func() uint32
	policy     Policy
	dstApprove func(req *EESetupReq) bool
	rate       *RateLimiter
	renewLim   *renewLimiter
	metrics    Metrics
}

// New builds a Service.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		panic("cserv: Config.Clock is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = AllowAll{}
	}
	if cfg.DstApprove == nil {
		cfg.DstApprove = func(*EESetupReq) bool { return true }
	}
	if cfg.RateLimit == 0 {
		cfg.RateLimit = 1000
	}
	if cfg.Split == (admission.TrafficSplit{}) {
		cfg.Split = admission.DefaultSplit
	}
	adm, err := admission.NewAdmitter(cfg.AdmissionImpl, cfg.AS, cfg.Split, cfg.Clock)
	if err != nil {
		panic(err)
	}
	var cp *CPlane
	if cfg.CPlaneShards > 0 {
		cp, err = NewCPlane(CPlaneConfig{
			AS:            cfg.AS,
			Split:         cfg.Split,
			Shards:        cfg.CPlaneShards,
			AdmissionImpl: cfg.AdmissionImpl,
			Clock:         cfg.Clock,
			Workers:       cfg.CPlaneWorkers,
		})
		if err != nil {
			panic(err)
		}
	}
	s := &Service{
		ia:         cfg.AS.IA,
		as:         cfg.AS,
		topo:       cfg.Topo,
		split:      cfg.Split,
		store:      reservation.NewStore(cfg.AS.IA),
		adm:        adm,
		cp:         cp,
		transfer:   admission.NewTransferSplit(),
		secret:     cfg.Secret,
		engine:     cfg.Engine,
		keys:       cfg.Keys,
		dir:        cfg.Directory,
		transport:  cfg.Transport,
		clock:      cfg.Clock,
		policy:     cfg.Policy,
		dstApprove: cfg.DstApprove,
		rate:       NewRateLimiter(cfg.RateLimit),
		renewLim:   newRenewLimiter(),
	}
	s.macPool.New = func() any { return cryptoutil.MustCBCMAC(s.secret) }
	s.metrics.init("cserv "+cfg.AS.IA.String(), cfg.Telemetry)
	if cp != nil {
		// An EER that lapses without being renewed must return its charge to
		// the §4.7 transfer-split accounting, or dead demand accumulates until
		// the fair-share cap refuses every re-admission (the renewal-storm
		// recovery path found this at 10⁶ flows). Only up→core records ever
		// admitted through the split; the core+down pair at the far transfer
		// AS carries no split charge.
		cp.OnExpire(func(seg, seg2 reservation.ID, bwKbps uint64) {
			up, err := s.store.GetSegR(seg)
			if err != nil || up.SegType != segment.Up {
				return
			}
			core, err := s.store.GetSegR(seg2)
			if err != nil || core.SegType != segment.Core {
				return
			}
			s.transfer.Release(core.ID, up.ID, bwKbps, bwKbps)
		})
	}
	return s
}

// IA returns the service's AS.
func (s *Service) IA() topology.IA { return s.ia }

// Store exposes the reservation database (border routers and the gateway of
// the same AS read it; tests inspect it).
func (s *Service) Store() *reservation.Store { return s.store }

// Admission exposes the admission state (for metrics and tests).
func (s *Service) Admission() admission.Admitter { return s.adm }

// CPlane exposes the sharded control-plane engine; nil in classic mode.
func (s *Service) CPlane() *CPlane { return s.cp }

// Close releases background resources (the CPlane's batch workers). Safe to
// call on classic-mode services; no request may be in flight.
func (s *Service) Close() {
	if s.cp != nil {
		s.cp.Close()
	}
}

// admitSegR dispatches SegR admission to the CPlane or the single admitter.
func (s *Service) admitSegR(req admission.Request) (uint64, error) {
	if s.cp != nil {
		return s.cp.AddSegR(req)
	}
	return s.adm.AdmitSegR(req)
}

// renewSegR dispatches a SegR renewal, returning the snapshot-restoring undo.
func (s *Service) renewSegR(req admission.Request) (uint64, func(), error) {
	if s.cp != nil {
		return s.cp.RenewSegRWithUndo(req)
	}
	return s.adm.RenewSegRWithUndo(req)
}

// adjustSegR dispatches the backward-pass grant shrink.
func (s *Service) adjustSegR(id reservation.ID, finalKbps uint64) error {
	if s.cp != nil {
		return s.cp.AdjustSegR(id, finalKbps)
	}
	return s.adm.AdjustGrant(id, finalKbps)
}

// abortSegR dispatches the rollback of a fresh (non-renewal) SegR admission.
func (s *Service) abortSegR(id reservation.ID) {
	if s.cp != nil {
		s.cp.AbortSegR(id)
		return
	}
	s.adm.Release(id)
}

// Secret returns the AS data-plane secret shared with the border routers.
func (s *Service) Secret() cryptoutil.Key { return s.secret }

// Metrics returns the service's control-plane counters.
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Service-level errors.
var (
	ErrAuth        = errors.New("cserv: control-plane authentication failed")
	ErrRateLimited = errors.New("cserv: source AS rate-limited")
	ErrNotOnPath   = errors.New("cserv: this AS is not on the request path")
	ErrRefused     = errors.New("cserv: request refused")
)

// HandleMsg dispatches a marshaled control message from a remote CServ and
// returns the marshaled response. This is the Transport server side.
func (s *Service) HandleMsg(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	switch data[0] {
	case tagSegSetup, tagSegRenew:
		req, err := UnmarshalSegSetupReq(data)
		if err != nil {
			return nil, err
		}
		idx, err := s.hopIndex(req.Path)
		if err != nil {
			return nil, err
		}
		resp := s.processSegSetup(req, idx, accumFromReq(req))
		return resp.Marshal(), nil
	case tagSegActivate:
		req, err := UnmarshalSegActivateReq(data)
		if err != nil {
			return nil, err
		}
		idx, err := s.hopIndex(req.Path)
		if err != nil {
			return nil, err
		}
		resp := s.processSegActivate(req, idx)
		return resp.Marshal(), nil
	case tagEESetup, tagEERenew:
		req, err := UnmarshalEESetupReq(data)
		if err != nil {
			return nil, err
		}
		idx, err := s.hopIndex(req.Path)
		if err != nil {
			return nil, err
		}
		// As with accumFromReq: forwarders always set AccumKbps and zero is
		// a real accumulated grant, not "unset".
		accum := req.AccumKbps
		if accum > req.BwKbps {
			accum = req.BwKbps
		}
		resp := s.processEESetup(req, idx, accum)
		return resp.Marshal(), nil
	case tagEEBatchRenew:
		req, err := UnmarshalEEBatchRenewReq(data)
		if err != nil {
			return nil, err
		}
		idx, err := s.hopIndex(req.Path)
		if err != nil {
			return nil, err
		}
		return s.processEEBatchRenew(req, idx).Marshal(), nil
	case tagDownReq:
		req, err := UnmarshalDownSegReq(data)
		if err != nil {
			return nil, err
		}
		return s.handleDownReq(req).Marshal(), nil
	default:
		return nil, ErrBadTag
	}
}

func (s *Service) hopIndex(path []PathHop) (int, error) {
	for i, h := range path {
		if h.IA == s.ia {
			return i, nil
		}
	}
	return 0, ErrNotOnPath
}

// accumFromReq reads the accumulated grant forwarded by the previous hop.
// Forwarders always set AccumKbps, and zero is a real value (a renewal can
// legally be granted 0 kbps upstream), so it must not be read as "unset" —
// that would resurrect the full demand downstream of a zero grant. The
// value is clamped to the requested maximum for robustness.
func accumFromReq(req *SegSetupReq) uint64 {
	if req.AccumKbps > req.MaxKbps {
		return req.MaxKbps
	}
	return req.AccumKbps
}

// verifySourceMac checks the DRKey MAC for this AS: the source computed
// MAC_{K_{me→SrcAS}}(body), which we re-derive on the fly (§4.5).
func (s *Service) verifySourceMac(srcAS topology.IA, body []byte, macs [][cryptoutil.MACSize]byte, idx int) error {
	if idx >= len(macs) {
		return fmt.Errorf("%w: missing MAC for hop %d", ErrAuth, idx)
	}
	key, _ := s.engine.Level1(srcAS, s.clock())
	var want [cryptoutil.MACSize]byte
	cryptoutil.MustCMAC(key).SumInto(&want, body)
	if !cryptoutil.ConstantTimeEqual(want[:], macs[idx][:]) {
		return ErrAuth
	}
	return nil
}

// computeMacs builds the per-AS request MACs at the initiator, fetching
// K_{AS_i→me} from each on-path AS's key server (slow side, cached per
// epoch).
func (s *Service) computeMacs(path []PathHop, body []byte) ([][cryptoutil.MACSize]byte, error) {
	now := s.clock()
	macs := make([][cryptoutil.MACSize]byte, len(path))
	for i, h := range path {
		var key cryptoutil.Key
		if h.IA == s.ia {
			key, _ = s.engine.Level1(s.ia, now)
		} else {
			var err error
			key, err = s.keys.Get(h.IA, now)
			if err != nil {
				return nil, err
			}
		}
		cryptoutil.MustCMAC(key).SumInto(&macs[i], body)
	}
	return macs, nil
}

// segToken computes the Eq. (3) SegR token for this AS.
func (s *Service) segToken(res *packet.ResInfo, hf packet.HopField) [packet.HVFLen]byte {
	var input [packet.SegAuthLen]byte
	packet.SegAuthInput(&input, res, hf)
	mac := s.macPool.Get().(*cryptoutil.CBCMAC)
	var full [cryptoutil.MACSize]byte
	mac.SumInto(&full, input[:])
	s.macPool.Put(mac)
	var tok [packet.HVFLen]byte
	copy(tok[:], full[:packet.HVFLen])
	return tok
}

// hopAuth computes the Eq. (4) hop authenticator σ for this AS.
func (s *Service) hopAuth(res *packet.ResInfo, eer *packet.EERInfo, hf packet.HopField) cryptoutil.Key {
	var input [packet.EERAuthLen]byte
	packet.EERAuthInput(&input, res, eer, hf)
	mac := s.macPool.Get().(*cryptoutil.CBCMAC)
	var full [cryptoutil.MACSize]byte
	mac.SumInto(&full, input[:])
	s.macPool.Put(mac)
	return cryptoutil.Key(full)
}

// Tick advances housekeeping: expiry cleanup in the store, releasing
// admission aggregates of removed SegRs. Call it periodically (once per
// second suffices).
func (s *Service) Tick() {
	now := s.clock()
	removed := s.store.Cleanup(now)
	for _, id := range removed {
		if s.cp != nil {
			// DropSegR also tears down the EER charges riding on the SegR —
			// including transfer-AS records whose other segment survives.
			s.cp.DropSegR(id)
		} else {
			s.adm.Release(id)
		}
		s.transfer.DropCore(id)
		if s.dir != nil {
			s.dir.Unregister(id)
		}
	}
	if s.cp != nil {
		s.cp.Tick()
	}
	if s.dir != nil {
		s.dir.Expire(now)
	}
	s.rate.Tick(now)
	s.renewLim.Expire(now)
}
