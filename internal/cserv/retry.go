package cserv

import (
	"errors"
	"fmt"

	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Retry/timeout errors. ErrDeadline means the per-request deadline expired
// before an attempt succeeded; ErrExhausted means every allowed attempt
// failed within the deadline. Both wrap the last transport error.
var (
	ErrDeadline  = errors.New("cserv: request deadline exceeded")
	ErrExhausted = errors.New("cserv: request retries exhausted")
)

// RetryPolicy bounds the retry loop of a RetryTransport. The zero value is
// filled in with the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseBackoffNs is the delay before the first retry; it doubles per
	// attempt up to MaxBackoffNs.
	BaseBackoffNs int64
	MaxBackoffNs  int64
	// DeadlineNs bounds the whole request including backoff waits.
	DeadlineNs int64
	// Seed drives the deterministic jitter stream.
	Seed uint64
}

// Default retry parameters (also documented in DESIGN.md §Failure
// semantics): 4 attempts, 50 ms base backoff doubling to at most 400 ms,
// all within a 1 s deadline.
const (
	DefaultMaxAttempts   = 4
	DefaultBaseBackoffNs = 50 * 1e6
	DefaultMaxBackoffNs  = 400 * 1e6
	DefaultDeadlineNs    = 1e9
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoffNs <= 0 {
		p.BaseBackoffNs = DefaultBaseBackoffNs
	}
	if p.MaxBackoffNs <= 0 {
		p.MaxBackoffNs = DefaultMaxBackoffNs
	}
	if p.DeadlineNs <= 0 {
		p.DeadlineNs = DefaultDeadlineNs
	}
	return p
}

// RetryTransport wraps a Transport with per-request deadlines and bounded
// retries using exponential backoff plus deterministic jitter. Time is
// whatever the Now/Sleep hooks say — in simulations they are driven by
// virtual time, so retry schedules are reproducible; when both hooks are
// nil the transport keeps a private virtual clock advanced only by its own
// backoff waits (calls themselves are instantaneous, as with in-process
// transports).
//
// Retried requests reach committed downstream state: the request handlers
// in segr.go/eer.go recognize an (ID, Ver) they already hold and answer
// idempotently instead of double-admitting (see the dedup paths there).
type RetryTransport struct {
	Inner  Transport
	Policy RetryPolicy
	// Now returns the current virtual time in ns (nil: private clock).
	Now func() int64
	// Sleep advances virtual time by d ns (nil: backoff is accounted but
	// not slept — correct for single-threaded simulations where the caller
	// owns the clock).
	Sleep func(d int64)

	// Attempts counts transport calls, Retries the re-tries among them,
	// Timeouts deadline expiries, and Exhausted attempt-budget expiries.
	Attempts  *telemetry.Counter
	Retries   *telemetry.Counter
	Timeouts  *telemetry.Counter
	Exhausted *telemetry.Counter
}

// NewRetryTransport wraps inner, registering the outcome counters on reg
// (which may be nil for unregistered private counters).
func NewRetryTransport(inner Transport, policy RetryPolicy, reg *telemetry.Registry) *RetryTransport {
	if reg == nil {
		reg = telemetry.NewRegistry("retry")
	}
	return &RetryTransport{
		Inner:     inner,
		Policy:    policy.withDefaults(),
		Attempts:  reg.Counter("cserv.rpc_attempts"),
		Retries:   reg.Counter("cserv.rpc_retries"),
		Timeouts:  reg.Counter("cserv.rpc_timeouts"),
		Exhausted: reg.Counter("cserv.rpc_exhausted"),
	}
}

// Call implements Transport.
func (t *RetryTransport) Call(dst topology.IA, msg []byte) ([]byte, error) {
	pol := t.Policy.withDefaults()
	now := func() int64 {
		if t.Now != nil {
			return t.Now()
		}
		return 0
	}
	// waited accounts backoff that the deadline check cannot observe through
	// Now: with no Sleep hook nothing advances the caller's clock, and with
	// no Now hook there is no clock to read — in both cases the wait must be
	// charged locally or backoff would never count against DeadlineNs. Only
	// when both hooks are present does Sleep visibly advance Now.
	var waited int64
	// Jitter stream: deterministic in (seed, destination, message front),
	// so two runs of the same scenario back off identically while distinct
	// requests don't retry in lockstep.
	jseed := pol.Seed ^ uint64(dst)<<24 ^ 0x9e3779b97f4a7c15
	for _, b := range msg[:min(len(msg), 8)] {
		jseed = jseed*1099511628211 + uint64(b)
	}
	start := now()
	backoff := pol.BaseBackoffNs
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			t.Retries.Add(1)
		}
		t.Attempts.Add(1)
		resp, err := t.Inner.Call(dst, msg)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt == pol.MaxAttempts-1 {
			break // no point backing off after the final attempt
		}
		wait := backoff + int64(splitmix64(jseed+uint64(attempt))%uint64(backoff/2+1))
		if now()-start+waited+wait >= pol.DeadlineNs {
			t.Timeouts.Add(1)
			return nil, fmt.Errorf("%w after %d attempt(s): %v", ErrDeadline, attempt+1, lastErr)
		}
		if t.Sleep != nil {
			t.Sleep(wait)
		}
		if t.Now == nil || t.Sleep == nil {
			waited += wait
		}
		if backoff < pol.MaxBackoffNs {
			backoff *= 2
			if backoff > pol.MaxBackoffNs {
				backoff = pol.MaxBackoffNs
			}
		}
	}
	t.Exhausted.Add(1)
	return nil, fmt.Errorf("%w (%d attempts): %v", ErrExhausted, pol.MaxAttempts, lastErr)
}

// splitmix64 is the same mixing function as netsim.Rand, duplicated to
// keep cserv free of a netsim dependency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
