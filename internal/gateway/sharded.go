// RSS-style sharded gateway: the multi-core face of packet construction.
//
// Unlike the router (which shards by ResID ‖ src-host read off the wire),
// the gateway shards by ResID alone: the reservation is the unit of
// placement, because all of an EER's state — the installed Entry, its hop
// authenticators, the deterministic token bucket, the Ts uniqueness
// counter — is per-reservation. Hashing the ResID with the same splitmix64
// finalizer pins each reservation wholly to one shard, so shard state is
// disjoint by construction: the per-shard token bucket holds the FULL
// reserved rate (no capacity split, no shared reserve needed), and per-shard
// lastTs counters still yield globally valid timestamps because uniqueness
// is only required per (SrcAS, ResID, Ts) and one reservation never spans
// shards.
//
// Telemetry merges by name: all shards attach to one registry, whose
// counters are lock-free and whose gauges are maintained with deltas, so
// dashboards see gateway-wide totals under the unchanged series names.
// σ-schedule cache hit/miss counts are folded into
// gateway.cache.{hits,misses} at Merge.
package gateway

import (
	"runtime"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/shardpool"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// shardG is one shard's gateway plus its scatter/gather scratch. All of it
// is owned by the Sharded front end: filled by the dispatching goroutine,
// consumed by the shard's pool worker between Dispatch barriers, and never
// aliased out (colibri-vet enforces this).
//
//colibri:shardowned
type shardG struct {
	g *Gateway
	w *Worker
	// reqs/idx/outs are the shard's slice of the current batch: filled by
	// the dispatching goroutine, consumed by the shard's worker, read back
	// after the barrier. Reused across batches.
	reqs  []BuildReq
	idx   []int32
	outs  []BuildRes
	built int
	nowNs int64
	// pad keeps neighbouring shards' hot scratch off one cache line.
	_ [64]byte
}

// Sharded fans BuildBatch out over per-core gateway shards.
type Sharded struct {
	shards []*shardG
	pool   *shardpool.Pool
	mask   uint64

	// cacheHits/cacheMisses receive σ-schedule-cache deltas at Merge under
	// the stable names gateway.cache.{hits,misses}.
	cacheHits, cacheMisses *telemetry.Counter
	lastHits, lastMisses   uint64
}

// NewSharded builds a sharded gateway for the AS: `shards` flow shards
// (rounded up to a power of two; default workers) fanned out over `workers`
// pool goroutines (default GOMAXPROCS; 1 = inline). opts apply to every
// shard — with SchedCacheEntries > 0 each shard worker owns a private
// σ-schedule cache, the core-local-cache half of the RSS design. Close
// releases the pool.
func NewSharded(srcAS topology.IA, opts Options, shards, workers int) *Sharded {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = workers
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded{
		shards: make([]*shardG, n),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		g := NewWithOptions(srcAS, opts)
		s.shards[i] = &shardG{g: g, w: g.NewWorker()}
	}
	s.pool = shardpool.New(workers, s.runShard)
	return s
}

// shardOfRes finalizes a reservation ID with splitmix64 and masks it to a
// shard (same finalizer as the router's flow-key hash, keyed by ResID only —
// the reservation is the gateway's unit of placement).
func shardOfRes(resID uint32, mask uint64) int {
	x := uint64(resID) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x & mask)
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Workers returns the worker-pool size.
func (s *Sharded) Workers() int { return s.pool.Workers() }

// ShardOf returns the shard owning a reservation.
func (s *Sharded) ShardOf(resID uint32) int { return shardOfRes(resID, s.mask) }

// Install registers an EER's state on its owning shard. (Control-plane entry
// points call through the owning shard's gateway in place rather than via a
// helper returning it: shardG state must not alias out of the Sharded.)
func (s *Sharded) Install(res packet.ResInfo, eer packet.EERInfo, path []packet.HopField, auths []cryptoutil.Key) error {
	return s.shards[shardOfRes(res.ResID, s.mask)].g.Install(res, eer, path, auths)
}

// Remove drops an EER's state.
func (s *Sharded) Remove(resID uint32) {
	s.shards[shardOfRes(resID, s.mask)].g.Remove(resID)
}

// Demote marks a flow best-effort-only on its shard.
func (s *Sharded) Demote(resID uint32) bool {
	return s.shards[shardOfRes(resID, s.mask)].g.Demote(resID)
}

// Promote clears a flow's demotion on its shard.
func (s *Sharded) Promote(resID uint32) bool {
	return s.shards[shardOfRes(resID, s.mask)].g.Promote(resID)
}

// Demoted reports whether the flow is currently demoted.
func (s *Sharded) Demoted(resID uint32) bool {
	return s.shards[shardOfRes(resID, s.mask)].g.Demoted(resID)
}

// Expire removes expired reservations on every shard and returns the total
// dropped.
func (s *Sharded) Expire(nowSec uint32) int {
	total := 0
	for _, sh := range s.shards {
		total += sh.g.Expire(nowSec)
	}
	return total
}

// Len returns the number of installed reservations across shards.
func (s *Sharded) Len() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.g.Len()
	}
	return total
}

// EnableTelemetry attaches every shard to the registry. Counters are shared
// by name and gauges are delta-maintained, so the registry reports
// gateway-wide totals under the same series a single gateway publishes;
// gateway.cache.{hits,misses} additionally receive σ-schedule-cache deltas
// at every Merge.
func (s *Sharded) EnableTelemetry(reg *telemetry.Registry) {
	for _, sh := range s.shards {
		sh.g.EnableTelemetry(reg)
	}
	s.cacheHits = reg.Counter("gateway.cache.hits")
	s.cacheMisses = reg.Counter("gateway.cache.misses")
}

// runShard builds one shard's slice of the current batch on a pool worker.
func (s *Sharded) runShard(shard int) {
	sh := s.shards[shard]
	if len(sh.reqs) == 0 {
		sh.built = 0
		return
	}
	sh.built = sh.w.BuildBatch(sh.reqs, sh.outs, sh.nowNs)
}

// BuildBatch partitions reqs by owning shard, builds every shard's slice on
// the worker pool, and scatters the outcomes back into outs (which must be
// at least as long as reqs) at their original positions, returning the
// number of packets built. Per-reservation semantics match a single
// gateway's BuildBatch exactly — a reservation's requests are handled by its
// one shard in batch order — and timestamps stay unique per reservation.
//
//colibri:nomalloc
func (s *Sharded) BuildBatch(reqs []BuildReq, outs []BuildRes, nowNs int64) int {
	if len(outs) < len(reqs) {
		panic("gateway: outs shorter than reqs") //colibri:allow(nomalloc) — cold misuse guard
	}
	for _, sh := range s.shards {
		sh.reqs = sh.reqs[:0]
		sh.idx = sh.idx[:0]
		sh.outs = sh.outs[:0]
		sh.nowNs = nowNs
	}
	for i := range reqs {
		sh := s.shards[shardOfRes(reqs[i].ResID, s.mask)]
		sh.reqs = append(sh.reqs, reqs[i]) //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		sh.idx = append(sh.idx, int32(i))  //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		if cap(sh.outs) < len(sh.reqs) {
			sh.outs = append(sh.outs[:cap(sh.outs)], BuildRes{}) //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		}
		sh.outs = sh.outs[:len(sh.reqs)]
	}
	s.pool.Dispatch(len(s.shards))
	built := 0
	for _, sh := range s.shards {
		for j := range sh.idx {
			outs[sh.idx[j]] = sh.outs[j]
		}
		built += sh.built
	}
	return built
}

// Merge folds per-shard σ-schedule-cache hit/miss counts into the stable
// gateway.cache.{hits,misses} counters (no-op without telemetry). The
// gateway has no other cross-shard state: reservations never span shards.
func (s *Sharded) Merge() {
	if s.cacheHits == nil {
		return
	}
	hits, misses := s.CacheStats()
	s.cacheHits.Add(hits - s.lastHits)
	s.cacheMisses.Add(misses - s.lastMisses)
	s.lastHits, s.lastMisses = hits, misses
}

// CacheStats sums the σ-schedule cache hit/miss counts over all shard
// workers.
func (s *Sharded) CacheStats() (hits, misses uint64) {
	for _, sh := range s.shards {
		h, m := sh.w.SchedCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Close releases the worker pool. The Sharded must be idle.
func (s *Sharded) Close() { s.pool.Close() }
