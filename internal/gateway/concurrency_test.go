package gateway

import (
	"errors"
	"sync"
	"testing"

	"colibri/internal/packet"
)

// TestConcurrentWorkersAndInstalls hammers the gateway from several worker
// goroutines while reservations are installed, renewed, and removed
// concurrently (run with -race). Build must never corrupt packets: every
// successful build decodes to a consistent packet.
func TestConcurrentWorkersAndInstalls(t *testing.T) {
	g := New(srcAS)
	for id := uint32(1); id <= 64; id++ {
		res := testRes(id, 1_000_000)
		if err := g.Install(res, packet.EERInfo{SrcHost: id}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}
	var workers, mutator sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: reinstalls (renewals) and removes/reinstalls.
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		ver := uint16(2)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := uint32(1 + i%64)
			res := testRes(id, 1_000_000)
			res.Ver = ver
			if err := g.Install(res, packet.EERInfo{SrcHost: id}, tPath, tAuths); err != nil {
				t.Error(err)
				return
			}
			if i%97 == 0 {
				g.Remove(id)
				res.Ver++
				if err := g.Install(res, packet.EERInfo{SrcHost: id}, tPath, tAuths); err != nil {
					t.Error(err)
					return
				}
			}
			if i%1000 == 999 {
				ver++
			}
		}
	}()

	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			worker := g.NewWorker()
			buf := make([]byte, 1024)
			var pkt packet.Packet
			for i := 0; i < 5000; i++ {
				id := uint32(1 + (w*5000+i)%64)
				n, err := worker.Build(id, []byte("c"), buf, baseNs+int64(i))
				if err != nil {
					// Remove/Install races may briefly miss the entry or
					// hit the shared rate budget; both are valid outcomes.
					if errors.Is(err, ErrUnknownRes) || errors.Is(err, ErrRateExceeded) {
						continue
					}
					t.Error(err)
					return
				}
				if _, err := pkt.DecodeFromBytes(buf[:n]); err != nil {
					t.Errorf("worker %d built an undecodable packet: %v", w, err)
					return
				}
				if pkt.Res.ResID != id {
					t.Errorf("worker %d: packet for %d claims %d", w, id, pkt.Res.ResID)
					return
				}
			}
		}(w)
	}
	// Wait for the workers, then stop the mutator.
	workers.Wait()
	close(stop)
	mutator.Wait()
}
