// Package gateway implements the Colibri gateway (§3.2, §4.6): the per-AS
// component through which all Colibri traffic of local end hosts passes. It
// maps reservation IDs to the state obtained during EER setup (path,
// reservation metadata, hop authenticators), performs deterministic
// per-flow monitoring (token bucket), stamps the high-precision unique
// timestamp, and computes the per-packet hop validation fields
//
//	V_i = MAC_{σ_i}(Ts ‖ PktSize)[0:4]    (Eq. 6)
//
// for every on-path AS before handing the packet to the border router.
//
// The gateway is stateful by design; the paper's Fig. 5 evaluates exactly
// this state's cache behaviour under growing reservation counts.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"colibri/internal/cryptoutil"
	"colibri/internal/monitor"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Entry is the per-EER state installed after setup or renewal. The hop
// authenticators are stored as raw keys and by default expanded per packet,
// exactly as the paper's DPDK gateway does with hardware AES key
// expansion — caching expanded schedules multiplies the per-reservation
// memory footprint whose cache behaviour Fig. 5 evaluates, which is why
// the σ-schedule cache is an explicit opt-in (Options.SchedCacheEntries)
// with its own bounded memory.
type Entry struct {
	Res  packet.ResInfo
	EER  packet.EERInfo
	Path []packet.HopField
	// auths are the hop authenticators σ_i in path order.
	auths []cryptoutil.Key
	// MonitorKbps is the rate enforced by deterministic monitoring: the
	// maximum over the EER's valid versions (§4.8).
	MonitorKbps uint64
	// epoch is the gateway-wide install sequence number of this entry.
	// Workers key cached σ schedules by (ResID, hop, epoch), so a renewal
	// (which replaces the Entry and bumps the epoch) invalidates every
	// cached schedule of the old authenticators without any cache walk.
	epoch uint32
	// demoted marks a flow whose renewal ultimately failed: Build refuses
	// it with ErrDemoted so the caller sends best-effort instead of
	// blackholing on a reservation about to die (§3.2's graceful
	// degradation). Install of a fresh version clears it (re-promotion).
	// Atomic because workers read it outside the gateway lock.
	demoted atomic.Bool
}

// Options configure optional gateway features.
type Options struct {
	// SchedCacheEntries, when > 0, gives every worker a private σ-schedule
	// cache of that many entries (rounded up to a power of two), so the
	// AES key expansion runs once per (reservation, hop) per renewal epoch
	// instead of once per packet; entries that stay hot are promoted to
	// hardware AES where available. Memory is bounded at ≈ 240 B × entries
	// per worker plus the promoted ciphers (see cryptoutil.SchedCache).
	// The default 0 keeps the paper-faithful uncached path, whose
	// state-size cache behaviour Fig. 5 measures.
	SchedCacheEntries int
}

// Gateway errors.
var (
	ErrUnknownRes   = errors.New("gateway: unknown reservation")
	ErrExpired      = errors.New("gateway: reservation expired")
	ErrRateExceeded = errors.New("gateway: reservation bandwidth exceeded")
	ErrBufTooSmall  = errors.New("gateway: output buffer too small")
	// ErrDemoted means the flow is demoted to best-effort until its next
	// successful renewal; the caller should send the payload as best-effort
	// traffic rather than drop it.
	ErrDemoted = errors.New("gateway: reservation demoted to best-effort")
)

// Gateway is one AS's Colibri gateway. Install/Remove and Worker.Build are
// safe for concurrent use.
type Gateway struct {
	srcAS topology.IA
	opts  Options
	mu    sync.RWMutex
	byID  map[uint32]*Entry
	mon   *monitor.FlowMonitor
	// installSeq numbers installs; each Entry records its value as the
	// σ-schedule cache epoch. Written only by Install.
	installSeq atomic.Uint32 //colibri:singlewriter
	// lastTs backs the uniqueness of timestamps across all flows. Written
	// only by reserveTs (the build path's timestamp reservation).
	lastTs atomic.Uint64 //colibri:singlewriter
	// tel holds the optional per-packet-phase instruments; nil (the
	// default) keeps Build free of timing calls.
	tel atomic.Pointer[gwTelemetry]
}

// gwTelemetry bundles the gateway's instruments: wall-clock histograms for
// the three phases of Build (state lookup, token-bucket policing, HVF
// computation + serialization), outcome counters, and the resident-state
// gauge whose cache behaviour Fig. 5 measures.
type gwTelemetry struct {
	lookupNs   *telemetry.Histogram
	bucketNs   *telemetry.Histogram
	hvfNs      *telemetry.Histogram
	pktBytes   *telemetry.Histogram
	built      *telemetry.Counter
	rejected   *telemetry.Counter
	expired    *telemetry.Counter
	demotions  *telemetry.Counter
	promotions *telemetry.Counter
	resident   *telemetry.Gauge
	trace      *telemetry.Tracer
}

// EnableTelemetry attaches the gateway's instruments to the AS-wide
// registry and turns on per-packet-phase timing in Build. Enabling is safe
// at any time (the pointer is swapped atomically); the per-flow monitor's
// occupancy gauge is wired as well.
func (g *Gateway) EnableTelemetry(reg *telemetry.Registry) {
	t := &gwTelemetry{
		lookupNs:   reg.Histogram("gateway.lookup_ns"),
		bucketNs:   reg.Histogram("gateway.tokenbucket_ns"),
		hvfNs:      reg.Histogram("gateway.hvf_ns"),
		pktBytes:   reg.Histogram("gateway.pkt_bytes"),
		built:      reg.Counter("gateway.built"),
		rejected:   reg.Counter("gateway.rejected"),
		expired:    reg.Counter("gateway.expired"),
		demotions:  reg.Counter("gateway.demotions"),
		promotions: reg.Counter("gateway.promotions"),
		resident:   reg.Gauge("gateway.reservations"),
		trace:      reg.Tracer("gateway.lifecycle", 0),
	}
	// The resident gauge is maintained with deltas (not Set), so the shard
	// gateways of a sharded front end can share one registry and the gauge
	// sums to the true total. Enable telemetry at most once per gateway.
	g.mu.RLock()
	t.resident.Add(int64(len(g.byID)))
	g.mu.RUnlock()
	g.mon.SetGauge(reg.Gauge("monitor.flows"))
	g.tel.Store(t)
}

// New builds a gateway for the AS with default options (uncached σ path).
func New(srcAS topology.IA) *Gateway { return NewWithOptions(srcAS, Options{}) }

// NewWithOptions builds a gateway with explicit options.
func NewWithOptions(srcAS topology.IA, opts Options) *Gateway {
	return &Gateway{
		srcAS: srcAS,
		opts:  opts,
		byID:  make(map[uint32]*Entry),
		mon:   monitor.NewFlowMonitor(),
	}
}

// Install registers (or replaces, on renewal) the state of an EER. auths
// are the decrypted hop authenticators σ_i in path order.
func (g *Gateway) Install(res packet.ResInfo, eer packet.EERInfo, path []packet.HopField, auths []cryptoutil.Key) error {
	if res.SrcAS != g.srcAS {
		return fmt.Errorf("gateway: reservation of AS %s installed at %s", res.SrcAS, g.srcAS)
	}
	if len(path) != len(auths) {
		return fmt.Errorf("gateway: %d hops but %d authenticators", len(path), len(auths))
	}
	e := &Entry{
		Res:         res,
		EER:         eer,
		Path:        append([]packet.HopField(nil), path...),
		auths:       append([]cryptoutil.Key(nil), auths...),
		MonitorKbps: uint64(res.BwKbps),
		epoch:       g.installSeq.Add(1),
	}
	g.mu.Lock()
	promoted := false
	fresh := true
	if old, ok := g.byID[res.ResID]; ok {
		fresh = false
		if old.MonitorKbps > e.MonitorKbps {
			// All versions share one monitored budget: the maximum (§4.8).
			e.MonitorKbps = old.MonitorKbps
		}
		// A fresh version over a demoted flow re-promotes it to its
		// reserved class (the new entry starts undemoted).
		promoted = old.demoted.Load()
	}
	g.byID[res.ResID] = e
	g.mu.Unlock()
	if t := g.tel.Load(); t != nil {
		if fresh {
			t.resident.Inc()
		}
		if promoted {
			t.promotions.Add(1)
			t.trace.Record(int64(res.ExpT)*1e9, telemetry.EvPromote,
				reservation.ID{SrcAS: g.srcAS, Num: res.ResID}.String(), true, "renewed")
		}
	}
	// Pre-create the monitoring state so the per-packet path never
	// allocates.
	g.mon.Ensure(reservation.ID{SrcAS: g.srcAS, Num: res.ResID}, e.MonitorKbps, 0)
	return nil
}

// Demote marks a flow as best-effort-only: Build returns ErrDemoted for it
// until a fresh version is installed or Promote is called. It reports
// whether the flow transitioned (false: unknown or already demoted).
func (g *Gateway) Demote(resID uint32) bool {
	g.mu.RLock()
	e, ok := g.byID[resID]
	g.mu.RUnlock()
	changed := ok && e.demoted.CompareAndSwap(false, true)
	if changed {
		if t := g.tel.Load(); t != nil {
			t.demotions.Add(1)
			t.trace.Record(0, telemetry.EvDemote,
				reservation.ID{SrcAS: g.srcAS, Num: resID}.String(), false, "renewal failed")
		}
	}
	return changed
}

// Promote clears a flow's demotion without reinstalling (e.g. when the old
// version turns out to still be serving). It reports whether the flow
// transitioned.
func (g *Gateway) Promote(resID uint32) bool {
	g.mu.RLock()
	e, ok := g.byID[resID]
	g.mu.RUnlock()
	changed := ok && e.demoted.CompareAndSwap(true, false)
	if changed {
		if t := g.tel.Load(); t != nil {
			t.promotions.Add(1)
			t.trace.Record(0, telemetry.EvPromote,
				reservation.ID{SrcAS: g.srcAS, Num: resID}.String(), true, "")
		}
	}
	return changed
}

// Demoted reports whether the flow is currently demoted.
func (g *Gateway) Demoted(resID uint32) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.byID[resID]
	return ok && e.demoted.Load()
}

// Remove drops an EER's state (expiry).
func (g *Gateway) Remove(resID uint32) {
	g.mu.Lock()
	_, present := g.byID[resID]
	delete(g.byID, resID)
	g.mu.Unlock()
	g.mon.Forget(reservation.ID{SrcAS: g.srcAS, Num: resID})
	if t := g.tel.Load(); t != nil && present {
		t.resident.Dec()
	}
}

// Expire removes reservations whose current version has expired and returns
// how many were dropped.
func (g *Gateway) Expire(nowSec uint32) int {
	g.mu.Lock()
	var dropped []uint32
	for id, e := range g.byID {
		if nowSec >= e.Res.ExpT {
			delete(g.byID, id)
			dropped = append(dropped, id)
		}
	}
	g.mu.Unlock()
	for _, id := range dropped {
		g.mon.Forget(reservation.ID{SrcAS: g.srcAS, Num: id})
	}
	if t := g.tel.Load(); t != nil && len(dropped) > 0 {
		t.expired.Add(uint64(len(dropped)))
		t.resident.Add(-int64(len(dropped)))
		nowNs := int64(nowSec) * 1e9
		for _, id := range dropped {
			t.trace.Record(nowNs, telemetry.EvEEExpire,
				reservation.ID{SrcAS: g.srcAS, Num: id}.String(), true, "")
		}
	}
	return len(dropped)
}

// Len returns the number of installed reservations.
func (g *Gateway) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byID)
}

// reserveTs hands out n strictly increasing timestamps ≥ nowNs, unique
// across the gateway ("Ts … uniquely identifies the packet for the
// particular source"); the batch owns [base, base+n). In steady state
// (lastTs at or ahead of the clock) this is a single atomic Add per batch;
// the CAS loop only runs when the wall clock overtakes lastTs, and then
// only to push it forward before the Add claims the range.
func (g *Gateway) reserveTs(nowNs int64, n uint64) (base uint64) {
	for {
		last := g.lastTs.Load()
		if last >= uint64(nowNs) {
			return g.lastTs.Add(n) - n + 1
		}
		if g.lastTs.CompareAndSwap(last, uint64(nowNs)-1) {
			return g.lastTs.Add(n) - n + 1
		}
	}
}

// BuildReq describes one packet of a batch: the reservation to send on,
// the payload, and the caller-owned output buffer.
type BuildReq struct {
	ResID   uint32
	Payload []byte
	Out     []byte
}

// BuildRes is the per-packet outcome of BuildBatch: the serialized length
// in Out, or a sentinel error (ErrUnknownRes, ErrExpired, ErrBufTooSmall,
// ErrRateExceeded). Errors are bare sentinels — no per-packet allocation.
type BuildRes struct {
	N   int
	Err error
}

// Worker holds per-goroutine scratch state for packet construction; create
// one per worker goroutine with NewWorker.
type Worker struct {
	g      *Gateway
	pkt    packet.Packet
	hvfIn  [packet.HVFInputLen]byte
	macOut [cryptoutil.MACSize]byte
	ks     cryptoutil.AESSchedule
	// cache holds expanded σ schedules when Options.SchedCacheEntries > 0.
	cache *cryptoutil.SchedCache

	// Batch scratch, grown to the largest batch seen and then reused.
	entries []*Entry
	ids     []reservation.ID
	rates   []uint64
	sizes   []uint32
	allowed []bool
	// One-element batch backing Build.
	req1 [1]BuildReq
	res1 [1]BuildRes
}

// NewWorker creates a packet-building worker.
func (g *Gateway) NewWorker() *Worker {
	w := &Worker{g: g}
	if g.opts.SchedCacheEntries > 0 {
		w.cache = cryptoutil.NewSchedCache(g.opts.SchedCacheEntries)
	}
	return w
}

// SchedCacheStats returns the worker's σ-schedule cache hit/miss counts
// (zero when caching is disabled).
func (w *Worker) SchedCacheStats() (hits, misses uint64) {
	if w.cache == nil {
		return 0, 0
	}
	return w.cache.Stats()
}

// buildHVFsCached computes the packet's HVFs through the σ-schedule cache.
// The cache is keyed by (ResID, hop) and epoch-invalidated on renewal:
// equal tags at equal epochs always carry equal σ, so a hit is exact. A
// cached cipher is used immediately (it is only valid until the next
// lookup); bypassed hops fall back to the worker's private expansion.
func (w *Worker) buildHVFsCached(e *Entry, pkt *packet.Packet) {
	base := uint64(e.Res.ResID) << 8
	for h := range e.auths {
		if blk := w.cache.Schedule(base|uint64(h), e.epoch, &e.auths[h]); blk != nil {
			blk.Encrypt(w.macOut[:], w.hvfIn[:])
		} else { // admission bypass: software expansion, no allocation
			cryptoutil.ExpandAES128(&w.ks, &e.auths[h])
			cryptoutil.EncryptAES128(&w.ks, &w.macOut, &w.hvfIn)
		}
		copy(pkt.HVFs[h*packet.HVFLen:(h+1)*packet.HVFLen], w.macOut[:packet.HVFLen])
	}
}

// grow sizes the batch scratch for n requests without allocating on the
// steady state.
func (w *Worker) grow(n int) {
	if cap(w.entries) >= n {
		w.entries = w.entries[:n]
		w.ids = w.ids[:n]
		w.rates = w.rates[:n]
		w.sizes = w.sizes[:n]
		w.allowed = w.allowed[:n]
		return
	}
	w.entries = make([]*Entry, n)
	w.ids = make([]reservation.ID, n)
	w.rates = make([]uint64, n)
	w.sizes = make([]uint32, n)
	w.allowed = make([]bool, n)
}

// Build assembles a complete Colibri data packet for the reservation into
// out: deterministic monitoring, timestamping, HVF computation for all
// on-path ASes, serialization. It returns the packet length. Build is a
// batch of one — BuildBatch is the primary pipeline.
func (w *Worker) Build(resID uint32, payload []byte, out []byte, nowNs int64) (int, error) {
	w.req1[0] = BuildReq{ResID: resID, Payload: payload, Out: out}
	w.BuildBatch(w.req1[:], w.res1[:], nowNs)
	return w.res1[0].N, w.res1[0].Err
}

// BuildBatch assembles one packet per request at a common instant nowNs,
// writing per-packet outcomes into outs (which must be at least as long as
// reqs) and returning the number of packets built. The per-packet fixed
// costs are paid once per batch: one RLock'd state lookup pass, one locked
// token-bucket pass, one atomic timestamp reservation for the whole batch,
// and one telemetry sample per phase with counters bumped by Add(n).
// Packets that fail keep their reservation-budget semantics from the
// single-packet path: unknown/expired/too-small consume nothing; policing
// consumes only for conforming packets.
//
//colibri:nomalloc
func (w *Worker) BuildBatch(reqs []BuildReq, outs []BuildRes, nowNs int64) int {
	g := w.g
	n := len(reqs)
	if n == 0 {
		return 0
	}
	if len(outs) < n {
		panic("gateway: outs shorter than reqs") //colibri:allow(nomalloc) — cold misuse guard
	}
	// Phase timing (lookup → token bucket → HVF+serialize) is enabled by
	// EnableTelemetry; with tel == nil, BuildBatch performs no clock reads.
	tel := g.tel.Load()
	var phaseStart int64
	if tel != nil {
		phaseStart = monoNow()
	}
	w.grow(n) //colibri:allow(nomalloc) — amortized scratch growth, reused across batches
	nowSec := uint32(nowNs / 1e9)

	// Phase 1: one RLock for the whole batch's state lookups.
	g.mu.RLock()
	for i := 0; i < n; i++ {
		w.entries[i] = g.byID[reqs[i].ResID]
	}
	g.mu.RUnlock()
	for i := 0; i < n; i++ {
		outs[i] = BuildRes{}
		e := w.entries[i]
		w.sizes[i] = 0
		if e == nil {
			outs[i].Err = ErrUnknownRes
			continue
		}
		if nowSec >= e.Res.ExpT {
			outs[i].Err = ErrExpired
			w.entries[i] = nil
			continue
		}
		if e.demoted.Load() {
			outs[i].Err = ErrDemoted
			w.entries[i] = nil
			continue
		}
		sz := packet.DataLen(len(e.Path), len(reqs[i].Payload))
		if len(reqs[i].Out) < sz {
			outs[i].Err = ErrBufTooSmall
			w.entries[i] = nil
			continue
		}
		w.ids[i] = reservation.ID{SrcAS: g.srcAS, Num: reqs[i].ResID}
		w.rates[i] = e.MonitorKbps
		w.sizes[i] = uint32(sz)
	}
	if tel != nil {
		now := monoNow()
		tel.lookupNs.Observe(now - phaseStart)
		phaseStart = now
	}

	// Phase 2: deterministic monitoring over the total packet sizes, all
	// versions sharing the reservation's budget (§4.8) — one lock
	// acquisition and at most one bucket refill per flow for the batch.
	g.mon.AllowBatch(w.ids[:n], w.rates[:n], w.sizes[:n], nowNs, w.allowed[:n])
	toBuild := uint64(0)
	for i := 0; i < n; i++ {
		if w.entries[i] == nil {
			continue
		}
		if !w.allowed[i] {
			outs[i].Err = ErrRateExceeded
			w.entries[i] = nil
			continue
		}
		toBuild++
	}
	if tel != nil {
		now := monoNow()
		tel.bucketNs.Observe(now - phaseStart)
		phaseStart = now
	}

	// Phase 3: timestamps, HVFs, serialization. One atomic Add claims the
	// whole batch's unique timestamp range.
	built := 0
	if toBuild > 0 {
		ts := g.reserveTs(nowNs, toBuild)
		pkt := &w.pkt
		for i := 0; i < n; i++ {
			e := w.entries[i]
			if e == nil {
				continue
			}
			pkt.Type = packet.TData
			pkt.CurrHop = 0
			pkt.Res = e.Res
			pkt.EER = e.EER
			pkt.Path = e.Path
			pkt.Payload = reqs[i].Payload
			pkt.Ts = ts
			ts++
			packet.HVFInput(&w.hvfIn, pkt.Ts, w.sizes[i])
			if cap(pkt.HVFs) < len(e.Path)*packet.HVFLen {
				pkt.HVFs = make([]byte, len(e.Path)*packet.HVFLen) //colibri:allow(nomalloc) — grows to the longest path seen, then reused
			} else {
				pkt.HVFs = pkt.HVFs[:len(e.Path)*packet.HVFLen]
			}
			if w.cache != nil {
				w.buildHVFsCached(e, pkt)
			} else {
				for h := range e.auths {
					cryptoutil.ExpandAES128(&w.ks, &e.auths[h])
					cryptoutil.EncryptAES128(&w.ks, &w.macOut, &w.hvfIn)
					copy(pkt.HVFs[h*packet.HVFLen:(h+1)*packet.HVFLen], w.macOut[:packet.HVFLen])
				}
			}
			sz, err := pkt.SerializeTo(reqs[i].Out)
			outs[i] = BuildRes{N: sz, Err: err}
			if err == nil {
				built++
				if tel != nil {
					tel.pktBytes.Observe(int64(sz))
				}
			}
		}
	}
	if tel != nil {
		tel.hvfNs.Observe(monoNow() - phaseStart)
		if built > 0 {
			tel.built.Add(uint64(built))
		}
		if rej := n - built; rej > 0 {
			tel.rejected.Add(uint64(rej))
		}
	}
	return built
}
