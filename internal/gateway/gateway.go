// Package gateway implements the Colibri gateway (§3.2, §4.6): the per-AS
// component through which all Colibri traffic of local end hosts passes. It
// maps reservation IDs to the state obtained during EER setup (path,
// reservation metadata, hop authenticators), performs deterministic
// per-flow monitoring (token bucket), stamps the high-precision unique
// timestamp, and computes the per-packet hop validation fields
//
//	V_i = MAC_{σ_i}(Ts ‖ PktSize)[0:4]    (Eq. 6)
//
// for every on-path AS before handing the packet to the border router.
//
// The gateway is stateful by design; the paper's Fig. 5 evaluates exactly
// this state's cache behaviour under growing reservation counts.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colibri/internal/cryptoutil"
	"colibri/internal/monitor"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Entry is the per-EER state installed after setup or renewal. The hop
// authenticators are stored as raw keys and expanded per packet, exactly as
// the paper's DPDK gateway does with hardware AES key expansion — caching
// expanded schedules would multiply the per-reservation memory footprint
// whose cache behaviour Fig. 5 evaluates.
type Entry struct {
	Res  packet.ResInfo
	EER  packet.EERInfo
	Path []packet.HopField
	// auths are the hop authenticators σ_i in path order.
	auths []cryptoutil.Key
	// MonitorKbps is the rate enforced by deterministic monitoring: the
	// maximum over the EER's valid versions (§4.8).
	MonitorKbps uint64
}

// Gateway errors.
var (
	ErrUnknownRes   = errors.New("gateway: unknown reservation")
	ErrExpired      = errors.New("gateway: reservation expired")
	ErrRateExceeded = errors.New("gateway: reservation bandwidth exceeded")
	ErrBufTooSmall  = errors.New("gateway: output buffer too small")
)

// Gateway is one AS's Colibri gateway. Install/Remove and Worker.Build are
// safe for concurrent use.
type Gateway struct {
	srcAS topology.IA
	mu    sync.RWMutex
	byID  map[uint32]*Entry
	mon   *monitor.FlowMonitor
	// lastTs backs the uniqueness of timestamps across all flows.
	lastTs atomic.Uint64
	// tel holds the optional per-packet-phase instruments; nil (the
	// default) keeps Build free of timing calls.
	tel atomic.Pointer[gwTelemetry]
}

// gwTelemetry bundles the gateway's instruments: wall-clock histograms for
// the three phases of Build (state lookup, token-bucket policing, HVF
// computation + serialization), outcome counters, and the resident-state
// gauge whose cache behaviour Fig. 5 measures.
type gwTelemetry struct {
	lookupNs *telemetry.Histogram
	bucketNs *telemetry.Histogram
	hvfNs    *telemetry.Histogram
	pktBytes *telemetry.Histogram
	built    *telemetry.Counter
	rejected *telemetry.Counter
	expired  *telemetry.Counter
	resident *telemetry.Gauge
	trace    *telemetry.Tracer
}

// EnableTelemetry attaches the gateway's instruments to the AS-wide
// registry and turns on per-packet-phase timing in Build. Enabling is safe
// at any time (the pointer is swapped atomically); the per-flow monitor's
// occupancy gauge is wired as well.
func (g *Gateway) EnableTelemetry(reg *telemetry.Registry) {
	t := &gwTelemetry{
		lookupNs: reg.Histogram("gateway.lookup_ns"),
		bucketNs: reg.Histogram("gateway.tokenbucket_ns"),
		hvfNs:    reg.Histogram("gateway.hvf_ns"),
		pktBytes: reg.Histogram("gateway.pkt_bytes"),
		built:    reg.Counter("gateway.built"),
		rejected: reg.Counter("gateway.rejected"),
		expired:  reg.Counter("gateway.expired"),
		resident: reg.Gauge("gateway.reservations"),
		trace:    reg.Tracer("gateway.lifecycle", 0),
	}
	g.mu.RLock()
	t.resident.Set(int64(len(g.byID)))
	g.mu.RUnlock()
	g.mon.SetGauge(reg.Gauge("monitor.flows"))
	g.tel.Store(t)
}

// New builds a gateway for the AS.
func New(srcAS topology.IA) *Gateway {
	return &Gateway{
		srcAS: srcAS,
		byID:  make(map[uint32]*Entry),
		mon:   monitor.NewFlowMonitor(),
	}
}

// Install registers (or replaces, on renewal) the state of an EER. auths
// are the decrypted hop authenticators σ_i in path order.
func (g *Gateway) Install(res packet.ResInfo, eer packet.EERInfo, path []packet.HopField, auths []cryptoutil.Key) error {
	if res.SrcAS != g.srcAS {
		return fmt.Errorf("gateway: reservation of AS %s installed at %s", res.SrcAS, g.srcAS)
	}
	if len(path) != len(auths) {
		return fmt.Errorf("gateway: %d hops but %d authenticators", len(path), len(auths))
	}
	e := &Entry{
		Res:         res,
		EER:         eer,
		Path:        append([]packet.HopField(nil), path...),
		auths:       append([]cryptoutil.Key(nil), auths...),
		MonitorKbps: uint64(res.BwKbps),
	}
	g.mu.Lock()
	if old, ok := g.byID[res.ResID]; ok && old.MonitorKbps > e.MonitorKbps {
		// All versions share one monitored budget: the maximum (§4.8).
		e.MonitorKbps = old.MonitorKbps
	}
	g.byID[res.ResID] = e
	n := len(g.byID)
	g.mu.Unlock()
	if t := g.tel.Load(); t != nil {
		t.resident.Set(int64(n))
	}
	// Pre-create the monitoring state so the per-packet path never
	// allocates.
	g.mon.Ensure(reservation.ID{SrcAS: g.srcAS, Num: res.ResID}, e.MonitorKbps, 0)
	return nil
}

// Remove drops an EER's state (expiry).
func (g *Gateway) Remove(resID uint32) {
	g.mu.Lock()
	delete(g.byID, resID)
	n := len(g.byID)
	g.mu.Unlock()
	g.mon.Forget(reservation.ID{SrcAS: g.srcAS, Num: resID})
	if t := g.tel.Load(); t != nil {
		t.resident.Set(int64(n))
	}
}

// Expire removes reservations whose current version has expired and returns
// how many were dropped.
func (g *Gateway) Expire(nowSec uint32) int {
	g.mu.Lock()
	var dropped []uint32
	for id, e := range g.byID {
		if nowSec >= e.Res.ExpT {
			delete(g.byID, id)
			dropped = append(dropped, id)
		}
	}
	n := len(g.byID)
	g.mu.Unlock()
	for _, id := range dropped {
		g.mon.Forget(reservation.ID{SrcAS: g.srcAS, Num: id})
	}
	if t := g.tel.Load(); t != nil && len(dropped) > 0 {
		t.expired.Add(uint64(len(dropped)))
		t.resident.Set(int64(n))
		nowNs := int64(nowSec) * 1e9
		for _, id := range dropped {
			t.trace.Record(nowNs, telemetry.EvEEExpire,
				reservation.ID{SrcAS: g.srcAS, Num: id}.String(), true, "")
		}
	}
	return len(dropped)
}

// Len returns the number of installed reservations.
func (g *Gateway) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byID)
}

// nextTs returns a strictly increasing timestamp ≥ nowNs, unique across the
// gateway ("Ts … uniquely identifies the packet for the particular source").
func (g *Gateway) nextTs(nowNs int64) uint64 {
	for {
		last := g.lastTs.Load()
		ts := uint64(nowNs)
		if ts <= last {
			ts = last + 1
		}
		if g.lastTs.CompareAndSwap(last, ts) {
			return ts
		}
	}
}

// Worker holds per-goroutine scratch state for packet construction; create
// one per worker goroutine with NewWorker.
type Worker struct {
	g      *Gateway
	pkt    packet.Packet
	hvfIn  [packet.HVFInputLen]byte
	macOut [cryptoutil.MACSize]byte
	ks     cryptoutil.AESSchedule
}

// NewWorker creates a packet-building worker.
func (g *Gateway) NewWorker() *Worker { return &Worker{g: g} }

// Build assembles a complete Colibri data packet for the reservation into
// out: deterministic monitoring, timestamping, HVF computation for all
// on-path ASes, serialization. It returns the packet length.
func (w *Worker) Build(resID uint32, payload []byte, out []byte, nowNs int64) (int, error) {
	g := w.g
	// Phase timing (lookup → token bucket → HVF+serialize) is enabled by
	// EnableTelemetry; with tel == nil, Build performs no clock reads.
	tel := g.tel.Load()
	var phaseStart time.Time
	if tel != nil {
		phaseStart = time.Now()
	}
	g.mu.RLock()
	e, ok := g.byID[resID]
	g.mu.RUnlock()
	if !ok {
		if tel != nil {
			tel.rejected.Inc()
		}
		return 0, fmt.Errorf("%w: %d", ErrUnknownRes, resID)
	}
	if uint32(nowNs/1e9) >= e.Res.ExpT {
		if tel != nil {
			tel.rejected.Inc()
		}
		return 0, fmt.Errorf("%w: %d", ErrExpired, resID)
	}
	if tel != nil {
		now := time.Now()
		tel.lookupNs.Observe(now.Sub(phaseStart).Nanoseconds())
		phaseStart = now
	}

	pkt := &w.pkt
	pkt.Type = packet.TData
	pkt.CurrHop = 0
	pkt.Res = e.Res
	pkt.EER = e.EER
	pkt.Path = e.Path
	pkt.Payload = payload
	n := pkt.Length()
	if len(out) < n {
		return 0, ErrBufTooSmall
	}

	// Deterministic monitoring over the total packet size, all versions
	// sharing the reservation's budget (§4.8).
	id := reservation.ID{SrcAS: g.srcAS, Num: resID}
	allowed := g.mon.Allow(id, e.MonitorKbps, uint32(n), nowNs)
	if tel != nil {
		now := time.Now()
		tel.bucketNs.Observe(now.Sub(phaseStart).Nanoseconds())
		phaseStart = now
	}
	if !allowed {
		if tel != nil {
			tel.rejected.Inc()
		}
		return 0, fmt.Errorf("%w: %d", ErrRateExceeded, resID)
	}

	pkt.Ts = g.nextTs(nowNs)
	packet.HVFInput(&w.hvfIn, pkt.Ts, uint32(n))
	if cap(pkt.HVFs) < len(e.Path)*packet.HVFLen {
		pkt.HVFs = make([]byte, len(e.Path)*packet.HVFLen)
	} else {
		pkt.HVFs = pkt.HVFs[:len(e.Path)*packet.HVFLen]
	}
	for i := range e.auths {
		cryptoutil.SigmaMAC(&w.ks, &e.auths[i], &w.macOut, &w.hvfIn)
		copy(pkt.HVFs[i*packet.HVFLen:(i+1)*packet.HVFLen], w.macOut[:packet.HVFLen])
	}
	sz, err := pkt.SerializeTo(out)
	if tel != nil {
		tel.hvfNs.Observe(time.Since(phaseStart).Nanoseconds())
		if err == nil {
			tel.built.Inc()
			tel.pktBytes.Observe(int64(sz))
		}
	}
	return sz, err
}
