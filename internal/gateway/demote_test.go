package gateway

import (
	"errors"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/telemetry"
)

func TestDemotePromote(t *testing.T) {
	g := New(srcAS)
	reg := telemetry.NewRegistry("gw")
	g.EnableTelemetry(reg)
	res := testRes(7, 8000)
	if err := g.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)

	if g.Demoted(7) {
		t.Fatal("fresh install reported demoted")
	}
	if g.Demote(99) {
		t.Error("demoting an unknown reservation reported a transition")
	}
	if !g.Demote(7) {
		t.Fatal("demote did not transition")
	}
	if g.Demote(7) {
		t.Error("second demote reported a transition")
	}
	if !g.Demoted(7) {
		t.Fatal("Demoted false after Demote")
	}
	if _, err := w.Build(7, []byte("x"), buf, baseNs); !errors.Is(err, ErrDemoted) {
		t.Fatalf("build on demoted flow: %v", err)
	}

	if !g.Promote(7) {
		t.Fatal("promote did not transition")
	}
	if g.Promote(7) {
		t.Error("second promote reported a transition")
	}
	if _, err := w.Build(7, []byte("x"), buf, baseNs); err != nil {
		t.Fatalf("build after promote: %v", err)
	}

	if got := reg.Counter("gateway.demotions").Value(); got != 1 {
		t.Errorf("demotions counter = %d, want 1", got)
	}
	if got := reg.Counter("gateway.promotions").Value(); got != 1 {
		t.Errorf("promotions counter = %d, want 1", got)
	}
}

// Installing a fresh version over a demoted flow re-promotes it: the gateway
// serves the new version in the reserved class without an explicit Promote.
func TestInstallRepromotesDemotedFlow(t *testing.T) {
	g := New(srcAS)
	reg := telemetry.NewRegistry("gw")
	g.EnableTelemetry(reg)
	res := testRes(7, 8000)
	if err := g.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	if !g.Demote(7) {
		t.Fatal("demote did not transition")
	}
	res2 := res
	res2.Ver++
	res2.ExpT += 16
	if err := g.Install(res2, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	if g.Demoted(7) {
		t.Fatal("flow still demoted after installing a fresh version")
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	if _, err := w.Build(7, []byte("x"), buf, baseNs); err != nil {
		t.Fatalf("build after reinstall: %v", err)
	}
	if got := reg.Counter("gateway.promotions").Value(); got != 1 {
		t.Errorf("promotions counter = %d, want 1", got)
	}
}
