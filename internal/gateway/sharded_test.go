package gateway

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/telemetry"
)

// installFleet installs nRes reservations (IDs 1..nRes) on both gateways.
// Rates are mixed so some flows hit ErrRateExceeded under pressure.
func installFleet(t *testing.T, single *Gateway, sharded *Sharded, nRes int) {
	t.Helper()
	for i := 1; i <= nRes; i++ {
		rate := uint32(8000)
		if i%5 == 0 {
			rate = 100 // tight: overused under the test workload
		}
		res := testRes(uint32(i), rate)
		if i%7 == 0 {
			res.ExpT = uint32(baseNs/1e9) + 1 // expires mid-test
		}
		if err := single.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedGatewayDifferential: for the same request stream, the sharded
// gateway must reproduce a single gateway's per-slot outcomes (N, Err)
// exactly — success/failure, error kind, and serialized length — across
// every worker count. Payload bytes must match too; only the Ts field may
// differ (per-shard counters), so it is masked before comparison.
func TestShardedGatewayDifferential(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			single := NewWithOptions(srcAS, Options{SchedCacheEntries: 64})
			sh := NewSharded(srcAS, Options{SchedCacheEntries: 64}, 8, workers)
			const nRes = 40
			installFleet(t, single, sh, nRes)
			w := single.NewWorker()

			rng := rand.New(rand.NewSource(seed))
			const batches, batchSz = 30, 64
			nowNs := baseNs
			reqsA := make([]BuildReq, batchSz)
			reqsB := make([]BuildReq, batchSz)
			outsA := make([]BuildRes, batchSz)
			outsB := make([]BuildRes, batchSz)
			for i := range reqsA {
				reqsA[i].Out = make([]byte, 2048)
				reqsB[i].Out = make([]byte, 2048)
			}
			for b := 0; b < batches; b++ {
				nowNs += int64(50+rng.Intn(200)) * 1e6
				for i := range reqsA {
					resID := uint32(1 + rng.Intn(nRes+4)) // some unknown IDs
					payload := make([]byte, 100+rng.Intn(900))
					rng.Read(payload)
					short := rng.Intn(40) == 0
					reqsA[i].ResID, reqsB[i].ResID = resID, resID
					reqsA[i].Payload, reqsB[i].Payload = payload, payload
					if short {
						reqsA[i].Out = reqsA[i].Out[:8]
						reqsB[i].Out = reqsB[i].Out[:8]
					} else {
						reqsA[i].Out = reqsA[i].Out[:cap(reqsA[i].Out)]
						reqsB[i].Out = reqsB[i].Out[:cap(reqsB[i].Out)]
					}
				}
				nA := w.BuildBatch(reqsA, outsA, nowNs)
				nB := sh.BuildBatch(reqsB, outsB, nowNs)
				if nA != nB {
					t.Fatalf("workers=%d seed=%d batch %d: built %d (single) vs %d (sharded)", workers, seed, b, nA, nB)
				}
				for i := range outsA {
					if outsA[i].N != outsB[i].N || !errors.Is(outsB[i].Err, outsA[i].Err) {
						t.Fatalf("workers=%d seed=%d batch %d slot %d: (N=%d err=%v) vs (N=%d err=%v)",
							workers, seed, b, i, outsA[i].N, outsA[i].Err, outsB[i].N, outsB[i].Err)
					}
					if outsA[i].Err != nil {
						continue
					}
					bufA := append([]byte(nil), reqsA[i].Out[:outsA[i].N]...)
					bufB := append([]byte(nil), reqsB[i].Out[:outsB[i].N]...)
					// Mask what legitimately differs: Ts (per-shard counters
					// allocate different slots) and the Ts-keyed HVFs.
					maskTsAndHVFs(bufA)
					maskTsAndHVFs(bufB)
					if !bytes.Equal(bufA, bufB) {
						t.Fatalf("workers=%d seed=%d batch %d slot %d: packet bytes differ outside Ts/HVFs", workers, seed, b, i)
					}
				}
			}
			sh.Close()
		}
	}
}

// maskTsAndHVFs zeroes the timestamp and every hop's HVF in a serialized
// packet, the only fields allowed to differ between single and sharded
// builds. After DecodeFromBytes the HVFs slice aliases buf, so zeroing it
// zeroes the serialized bytes in place; Ts lives at offset 40:48.
func maskTsAndHVFs(buf []byte) {
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(buf); err != nil {
		panic(err)
	}
	binary.BigEndian.PutUint64(buf[40:48], 0)
	for i := range pkt.HVFs {
		pkt.HVFs[i] = 0
	}
}

// TestShardedGatewayMergeRace drives BuildBatch while Merge, CacheStats,
// Len, and telemetry snapshots run concurrently from another goroutine —
// under -race this proves the build path shares no unsynchronized state with
// the reconciliation path (the static shardown/atomics invariants,
// cross-checked dynamically), and every slot's outcome must still be
// well-formed.
func TestShardedGatewayMergeRace(t *testing.T) {
	sh := NewSharded(srcAS, Options{SchedCacheEntries: 64}, 4, 4)
	defer sh.Close()
	reg := telemetry.NewRegistry("gw-race")
	sh.EnableTelemetry(reg)
	const nRes = 32
	for i := 1; i <= nRes; i++ {
		if err := sh.Install(testRes(uint32(i), 8000), packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.Merge()
			sh.CacheStats()
			sh.Len()
			reg.Snapshot()
		}
	}()

	rng := rand.New(rand.NewSource(7))
	const batches, batchSz = 40, 64
	reqs := make([]BuildReq, batchSz)
	outs := make([]BuildRes, batchSz)
	for i := range reqs {
		reqs[i].Out = make([]byte, 2048)
	}
	nowNs := baseNs
	for b := 0; b < batches; b++ {
		nowNs += int64(10+rng.Intn(50)) * 1e6
		for i := range reqs {
			reqs[i].ResID = uint32(1 + rng.Intn(nRes))
			payload := make([]byte, 64+rng.Intn(256))
			rng.Read(payload)
			reqs[i].Payload = payload
			reqs[i].Out = reqs[i].Out[:cap(reqs[i].Out)]
		}
		built := sh.BuildBatch(reqs, outs, nowNs)
		if built < 0 || built > batchSz {
			t.Fatalf("batch %d: built %d out of range", b, built)
		}
		for i := range outs {
			if outs[i].Err == nil && outs[i].N == 0 {
				t.Fatalf("batch %d slot %d: zero-length success", b, i)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedGatewayTsMonotonePerRes: per reservation, timestamps must be
// strictly increasing across batches even though each shard keeps its own
// lastTs — a reservation never spans shards, so shard-local uniqueness is
// global uniqueness.
func TestShardedGatewayTsMonotonePerRes(t *testing.T) {
	sh := NewSharded(srcAS, Options{}, 4, 4)
	defer sh.Close()
	const nRes = 9
	for i := 1; i <= nRes; i++ {
		if err := sh.Install(testRes(uint32(i), 1<<30), packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}
	lastTs := map[uint32]uint64{}
	reqs := make([]BuildReq, 27)
	outs := make([]BuildRes, len(reqs))
	for i := range reqs {
		reqs[i] = BuildReq{ResID: uint32(1 + i%nRes), Out: make([]byte, 2048)}
	}
	for b := 0; b < 50; b++ {
		nowNs := baseNs + int64(b)*1e6
		sh.BuildBatch(reqs, outs, nowNs)
		for i := range outs {
			if outs[i].Err != nil {
				t.Fatalf("batch %d slot %d: %v", b, i, outs[i].Err)
			}
			var pkt packet.Packet
			if _, err := pkt.DecodeFromBytes(reqs[i].Out[:outs[i].N]); err != nil {
				t.Fatal(err)
			}
			if prev, ok := lastTs[pkt.Res.ResID]; ok && pkt.Ts <= prev {
				t.Fatalf("res %d: Ts %d not after %d", pkt.Res.ResID, pkt.Ts, prev)
			}
			lastTs[pkt.Res.ResID] = pkt.Ts
		}
	}
}

// TestShardedGatewayPlacementAndLifecycle: control-plane calls must land on
// the owning shard, and Len/Expire must aggregate across shards.
func TestShardedGatewayPlacementAndLifecycle(t *testing.T) {
	sh := NewSharded(srcAS, Options{}, 8, 2)
	defer sh.Close()
	for i := 1; i <= 32; i++ {
		res := testRes(uint32(i), 8000)
		if i%4 == 0 {
			res.ExpT = uint32(baseNs/1e9) + 1
		}
		if err := sh.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}
	if got := sh.Len(); got != 32 {
		t.Fatalf("Len=%d, want 32", got)
	}
	if !sh.Demote(3) || !sh.Demoted(3) {
		t.Error("Demote(3) did not stick")
	}
	if !sh.Promote(3) || sh.Demoted(3) {
		t.Error("Promote(3) did not clear the demotion")
	}
	sh.Remove(5)
	if got := sh.Len(); got != 31 {
		t.Fatalf("Len after Remove=%d, want 31", got)
	}
	if dropped := sh.Expire(uint32(baseNs/1e9) + 10); dropped != 8 {
		t.Fatalf("Expire dropped %d, want 8", dropped)
	}
	if got := sh.Len(); got != 23 {
		t.Fatalf("Len after Expire=%d, want 23", got)
	}
}

// TestShardedGatewayTelemetry: shards sharing one registry must sum into the
// single gateway's series names (delta-maintained resident gauge), and Merge
// must fold σ-cache hits/misses into gateway.cache.{hits,misses}.
func TestShardedGatewayTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry("gw")
	sh := NewSharded(srcAS, Options{SchedCacheEntries: 64}, 4, 2)
	defer sh.Close()
	sh.EnableTelemetry(reg)
	const nRes = 16
	for i := 1; i <= nRes; i++ {
		if err := sh.Install(testRes(uint32(i), 1<<30), packet.EERInfo{}, tPath, tAuths); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Gauge("gateway.reservations").Value(); got != nRes {
		t.Fatalf("resident gauge %d, want %d (shards must sum, not overwrite)", got, nRes)
	}
	sh.Remove(2)
	if got := reg.Gauge("gateway.reservations").Value(); got != nRes-1 {
		t.Fatalf("resident gauge after Remove %d, want %d", got, nRes-1)
	}
	reqs := make([]BuildReq, 32)
	outs := make([]BuildRes, len(reqs))
	for i := range reqs {
		reqs[i] = BuildReq{ResID: uint32(3 + i%8), Out: make([]byte, 2048)}
	}
	for b := 0; b < 4; b++ {
		sh.BuildBatch(reqs, outs, baseNs+int64(b)*1e6)
	}
	sh.Merge()
	hits, misses := sh.CacheStats()
	if hits == 0 {
		t.Fatal("repeated builds produced no σ-cache hits")
	}
	if got := reg.Counter("gateway.cache.hits").Value(); got != hits {
		t.Fatalf("gateway.cache.hits=%d, want %d", got, hits)
	}
	if got := reg.Counter("gateway.cache.misses").Value(); got != misses {
		t.Fatalf("gateway.cache.misses=%d, want %d", got, misses)
	}
	// A second Merge with no traffic in between must add nothing.
	sh.Merge()
	if got := reg.Counter("gateway.cache.hits").Value(); got != hits {
		t.Fatalf("idle Merge changed gateway.cache.hits to %d", got)
	}
}
