package gateway

import (
	"errors"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/topology"
)

var (
	srcAS  = topology.MustIA(1, 11)
	tPath  = []packet.HopField{{Eg: 1}, {In: 2, Eg: 3}, {In: 4}}
	tAuths = []cryptoutil.Key{{1}, {2}, {3}}
	baseNs = int64(1_700_000_000) * 1e9
)

func testRes(resID uint32, bwKbps uint32) packet.ResInfo {
	return packet.ResInfo{
		SrcAS:  srcAS,
		ResID:  resID,
		BwKbps: bwKbps,
		ExpT:   uint32(baseNs/1e9) + 16,
		Ver:    1,
	}
}

func TestBuildProducesValidPacket(t *testing.T) {
	g := New(srcAS)
	res := testRes(7, 8000)
	eer := packet.EERInfo{SrcHost: 1, DstHost: 2}
	if err := g.Install(res, eer, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	n, err := w.Build(7, []byte("hello"), buf, baseNs)
	if err != nil {
		t.Fatal(err)
	}
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if pkt.Type != packet.TData || pkt.CurrHop != 0 || pkt.Res != res || pkt.EER != eer {
		t.Errorf("decoded packet: %+v", pkt)
	}
	if string(pkt.Payload) != "hello" {
		t.Errorf("payload %q", pkt.Payload)
	}
	// HVF must equal MAC_{σ_i}(Ts ‖ PktSize)[:4].
	var in [packet.HVFInputLen]byte
	packet.HVFInput(&in, pkt.Ts, uint32(n))
	for i, a := range tAuths {
		var mac [cryptoutil.MACSize]byte
		cryptoutil.MACOneBlock(cryptoutil.NewBlock(a), &mac, &in)
		if !cryptoutil.ConstantTimeEqual(mac[:packet.HVFLen], pkt.HVF(i)) {
			t.Errorf("HVF %d mismatch", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := New(srcAS)
	w := g.NewWorker()
	buf := make([]byte, 2048)
	if _, err := w.Build(99, nil, buf, baseNs); !errors.Is(err, ErrUnknownRes) {
		t.Errorf("unknown reservation: %v", err)
	}
	res := testRes(7, 8000)
	if err := g.Install(res, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Build(7, nil, buf[:4], baseNs); !errors.Is(err, ErrBufTooSmall) {
		t.Errorf("small buffer: %v", err)
	}
	expired := (int64(res.ExpT) + 1) * 1e9
	if _, err := w.Build(7, nil, buf, expired); !errors.Is(err, ErrExpired) {
		t.Errorf("expired: %v", err)
	}
}

func TestInstallValidation(t *testing.T) {
	g := New(srcAS)
	res := testRes(1, 100)
	res.SrcAS = topology.MustIA(9, 9)
	if err := g.Install(res, packet.EERInfo{}, tPath, tAuths); err == nil {
		t.Error("foreign reservation installed")
	}
	res = testRes(1, 100)
	if err := g.Install(res, packet.EERInfo{}, tPath, tAuths[:2]); err == nil {
		t.Error("mismatched auths installed")
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 1_000_000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	var pkt packet.Packet
	var last uint64
	for i := 0; i < 1000; i++ {
		// Same nominal time for every packet: Ts must still be unique.
		n, err := w.Build(7, nil, buf, baseNs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pkt.DecodeFromBytes(buf[:n]); err != nil {
			t.Fatal(err)
		}
		if pkt.Ts <= last {
			t.Fatalf("Ts %d not increasing after %d", pkt.Ts, last)
		}
		last = pkt.Ts
	}
}

func TestGatewayEnforcesReservation(t *testing.T) {
	g := New(srcAS)
	// 8 Mbps: 1000-byte packets at 1 ms conform, at 0.25 ms they do not.
	if err := g.Install(testRes(7, 8000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	payload := make([]byte, 1000)
	var passed, dropped int
	for i := 1; i <= 4000; i++ {
		_, err := w.Build(7, payload, buf, baseNs+int64(i)*25e4)
		switch {
		case err == nil:
			passed++
		case errors.Is(err, ErrRateExceeded):
			dropped++
		default:
			t.Fatal(err)
		}
	}
	// 4000 packets in 1 s at 4× rate: ≈ 1000 pass (packet > 1000 B with
	// header, so slightly fewer).
	if passed > 1100 || passed < 800 {
		t.Errorf("passed %d of 4000 at 4× rate", passed)
	}
	if dropped == 0 {
		t.Error("no drops at 4× rate")
	}
}

func TestRenewalRaisesMonitoredRate(t *testing.T) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 8000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	// Renewal doubles the bandwidth; versions share the max budget.
	res2 := testRes(7, 16000)
	res2.Ver = 2
	if err := g.Install(res2, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	payload := make([]byte, 1000)
	var passed int
	for i := 1; i <= 2000; i++ {
		if _, err := w.Build(7, payload, buf, baseNs+int64(i)*5e5); err == nil {
			passed++
		}
	}
	// 2000 pps × 1000 B ≈ 16 Mbps: nearly everything passes now.
	if passed < 1800 {
		t.Errorf("passed %d of 2000 after renewal", passed)
	}
}

func TestRenewalAtLowerBwKeepsMaxBudget(t *testing.T) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 16000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	res2 := testRes(7, 8000)
	res2.Ver = 2
	if err := g.Install(res2, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	// While both versions are valid the budget stays at the max (16 Mbps).
	w := g.NewWorker()
	buf := make([]byte, 2048)
	payload := make([]byte, 1000)
	var passed int
	for i := 1; i <= 2000; i++ {
		if _, err := w.Build(7, payload, buf, baseNs+int64(i)*5e5); err == nil {
			passed++
		}
	}
	if passed < 1800 {
		t.Errorf("passed %d of 2000 with max-version budget", passed)
	}
}

func TestRemove(t *testing.T) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 8000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Remove(7)
	if g.Len() != 0 {
		t.Fatalf("Len after Remove = %d", g.Len())
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	if _, err := w.Build(7, nil, buf, baseNs); !errors.Is(err, ErrUnknownRes) {
		t.Errorf("after remove: %v", err)
	}
}

func BenchmarkBuild4Hops(b *testing.B) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 100_000_000), packet.EERInfo{},
		[]packet.HopField{{Eg: 1}, {In: 1, Eg: 2}, {In: 1, Eg: 2}, {In: 4}},
		make([]cryptoutil.Key, 4)); err != nil {
		b.Fatal(err)
	}
	w := g.NewWorker()
	buf := make([]byte, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Build(7, nil, buf, baseNs+int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
