package gateway

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
)

// TestBuildBatchMixed: a batch mixing valid, unknown, expired, and
// undersized-buffer requests must fail exactly the bad slots, succeed the
// good ones, and report the success count.
func TestBuildBatchMixed(t *testing.T) {
	g := New(srcAS)
	if err := g.Install(testRes(7, 8000), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	shortLived := testRes(8, 8000)
	shortLived.ExpT = uint32(baseNs/1e9) + 1
	if err := g.Install(shortLived, packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	nowNs := baseNs + 2*int64(1e9) // res 8 expired, res 7 still valid

	mk := func(n int) []byte { return make([]byte, n) }
	reqs := []BuildReq{
		{ResID: 7, Payload: []byte("a"), Out: mk(2048)},
		{ResID: 99, Out: mk(2048)},                   // unknown
		{ResID: 7, Payload: []byte("b"), Out: mk(4)}, // buffer too small
		{ResID: 8, Out: mk(2048)},                    // expired
		{ResID: 7, Payload: []byte("c"), Out: mk(2048)},
	}
	outs := make([]BuildRes, len(reqs))
	w := g.NewWorker()
	if n := w.BuildBatch(reqs, outs, nowNs); n != 2 {
		t.Fatalf("BuildBatch returned %d successes, want 2", n)
	}
	wantErrs := []error{nil, ErrUnknownRes, ErrBufTooSmall, ErrExpired, nil}
	for i, want := range wantErrs {
		if want == nil {
			if outs[i].Err != nil {
				t.Errorf("slot %d: unexpected error %v", i, outs[i].Err)
				continue
			}
			var pkt packet.Packet
			if _, err := pkt.DecodeFromBytes(reqs[i].Out[:outs[i].N]); err != nil {
				t.Errorf("slot %d: undecodable packet: %v", i, err)
			}
		} else if !errors.Is(outs[i].Err, want) {
			t.Errorf("slot %d: err = %v, want %v", i, outs[i].Err, want)
		}
	}
}

// TestBatchTimestampUniqueness: two workers building batches concurrently
// against the same gateway at the same nominal time must never emit two
// packets with the same timestamp — the batched Ts reservation takes one
// atomic slot-range per batch, and ranges must not overlap (run with
// -race).
func TestBatchTimestampUniqueness(t *testing.T) {
	const workers, rounds, batch = 2, 200, 16
	g := New(srcAS)
	if err := g.Install(testRes(7, 1<<30), packet.EERInfo{}, tPath, tAuths); err != nil {
		t.Fatal(err)
	}
	tsCh := make(chan []uint64, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := g.NewWorker()
			reqs := make([]BuildReq, batch)
			outs := make([]BuildRes, batch)
			for i := range reqs {
				reqs[i] = BuildReq{ResID: 7, Out: make([]byte, 2048)}
			}
			seen := make([]uint64, 0, rounds*batch)
			var pkt packet.Packet
			for r := 0; r < rounds; r++ {
				// Same nominal time every round: uniqueness must come
				// from the reservation scheme, not the clock.
				if n := w.BuildBatch(reqs, outs, baseNs); n != batch {
					t.Errorf("built %d/%d: %v", n, batch, outs[0].Err)
					return
				}
				for i := range outs {
					if _, err := pkt.DecodeFromBytes(reqs[i].Out[:outs[i].N]); err != nil {
						t.Errorf("undecodable packet: %v", err)
						return
					}
					seen = append(seen, pkt.Ts)
				}
			}
			tsCh <- seen
		}()
	}
	wg.Wait()
	close(tsCh)
	all := make(map[uint64]struct{})
	for seen := range tsCh {
		for _, ts := range seen {
			if _, dup := all[ts]; dup {
				t.Fatalf("duplicate timestamp %d across concurrent batches", ts)
			}
			all[ts] = struct{}{}
		}
	}
	if len(all) != workers*rounds*batch {
		t.Fatalf("collected %d timestamps, want %d", len(all), workers*rounds*batch)
	}
}

// TestCachedMatchesUncachedDifferential: a gateway with the σ-schedule
// cache (deliberately tiny: evictions, bypasses, and hardware promotions
// all trigger) must emit byte-identical packets to an uncached gateway fed
// the exact same install/renew/build sequence — including across renewals,
// which must invalidate cached schedules through the epoch.
func TestCachedMatchesUncachedDifferential(t *testing.T) {
	const nRes, rounds, batch = 32, 400, 8
	rng := rand.New(rand.NewSource(99))

	gwU := New(srcAS)
	gwC := NewWithOptions(srcAS, Options{SchedCacheEntries: 8})

	vers := make([]uint16, nRes+1)
	install := func(id uint32) {
		vers[id]++
		a := make([]cryptoutil.Key, len(tPath))
		for h := range a {
			rng.Read(a[h][:]) // renewal rotates the hop authenticators
		}
		res := testRes(id, 1<<30)
		res.Ver = vers[id]
		for _, g := range []*Gateway{gwU, gwC} {
			if err := g.Install(res, packet.EERInfo{SrcHost: id}, tPath, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id := uint32(1); id <= nRes; id++ {
		install(id)
	}

	wU, wC := gwU.NewWorker(), gwC.NewWorker()
	reqsU := make([]BuildReq, batch)
	reqsC := make([]BuildReq, batch)
	outsU := make([]BuildRes, batch)
	outsC := make([]BuildRes, batch)
	for i := range reqsU {
		reqsU[i].Out = make([]byte, 2048)
		reqsC[i].Out = make([]byte, 2048)
	}
	renewals := 0
	for r := 0; r < rounds; r++ {
		if rng.Intn(5) == 0 { // random EER renewal
			install(uint32(1 + rng.Intn(nRes)))
			renewals++
		}
		for i := range reqsU {
			id := uint32(1 + rng.Intn(nRes))
			reqsU[i].ResID, reqsC[i].ResID = id, id
		}
		nowNs := baseNs + int64(r)*1e6
		nU := wU.BuildBatch(reqsU, outsU, nowNs)
		nC := wC.BuildBatch(reqsC, outsC, nowNs)
		if nU != batch || nC != batch {
			t.Fatalf("round %d: built %d/%d (uncached) %d/%d (cached): %v %v",
				r, nU, batch, nC, batch, outsU[0].Err, outsC[0].Err)
		}
		for i := range outsU {
			if outsU[i].N != outsC[i].N ||
				!bytes.Equal(reqsU[i].Out[:outsU[i].N], reqsC[i].Out[:outsC[i].N]) {
				t.Fatalf("round %d slot %d: cached and uncached packets differ", r, i)
			}
		}
	}
	if renewals == 0 {
		t.Fatal("fixture never renewed")
	}
	hits, misses := wC.SchedCacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("σ-schedule cache not exercised: hits=%d misses=%d", hits, misses)
	}
}
