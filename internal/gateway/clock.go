package gateway

import "time"

// This file is the package's single clock seam. The only wall-clock reads in
// the gateway are the telemetry phase timers in BuildBatch; routing them
// through monoNow keeps the package deterministic under an injected clock
// (tests, netsim replays) and concentrates the audited time.Now call sites
// in one place for colibri-vet's determinism check.

// clockBase anchors the monotonic reading so monoNow never goes backwards
// under wall-clock adjustments.
var clockBase = time.Now()

// monoNow returns the current monotonic timestamp in nanoseconds. All
// gateway timing must go through this seam.
var monoNow = func() int64 {
	return time.Since(clockBase).Nanoseconds()
}

// SetClock replaces the gateway's telemetry clock (e.g. with a virtual
// stepped clock for reproducible runs) and returns a function restoring the
// previous one. Not safe for use concurrently with running workers.
func SetClock(f func() int64) (restore func()) {
	old := monoNow
	monoNow = f
	return func() { monoNow = old }
}
