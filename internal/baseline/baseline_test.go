package baseline

import (
	"errors"
	"testing"
)

func TestRSVPReserveAndForward(t *testing.T) {
	r := NewRSVPRouter(10_000)
	f := FlowID{Src: 1, Dst: 2, Port: 80}
	if err := r.Forward(f, 100, 0); !errors.Is(err, ErrNoState) {
		t.Errorf("forward without state: %v", err)
	}
	if err := r.Reserve(f, 8_000, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Forward(f, 1000, 1e6); err != nil {
		t.Errorf("conforming packet: %v", err)
	}
	// A second flow beyond capacity is refused.
	if err := r.Reserve(FlowID{Src: 3, Dst: 4}, 5_000, 0); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("over-capacity reserve: %v", err)
	}
	// Re-reserving the same flow adjusts, not adds.
	if err := r.Reserve(f, 2_000, 0); err != nil {
		t.Errorf("re-reserve: %v", err)
	}
	if err := r.Reserve(FlowID{Src: 3, Dst: 4}, 5_000, 0); err != nil {
		t.Errorf("after downsize: %v", err)
	}
}

func TestRSVPPolicesRate(t *testing.T) {
	r := NewRSVPRouter(100_000)
	f := FlowID{Src: 1, Dst: 2}
	if err := r.Reserve(f, 8_000, 0); err != nil {
		t.Fatal(err)
	}
	var passed int
	for i := 1; i <= 2000; i++ {
		if err := r.Forward(f, 1000, int64(i)*5e5); err == nil { // 2× rate
			passed++
		}
	}
	if passed < 900 || passed > 1200 {
		t.Errorf("passed %d of 2000 at 2× rate", passed)
	}
}

func TestRSVPSoftStateExpiry(t *testing.T) {
	r := NewRSVPRouter(100_000)
	f := FlowID{Src: 1, Dst: 2}
	if err := r.Reserve(f, 1000, 0); err != nil {
		t.Fatal(err)
	}
	// Un-refreshed state stops forwarding after the timeout…
	if err := r.Forward(f, 100, 91e9); !errors.Is(err, ErrNoState) {
		t.Errorf("expired soft state forwarded: %v", err)
	}
	// …and is reclaimed.
	if n := r.ExpireSoftState(91e9); n != 1 {
		t.Errorf("expired %d flows", n)
	}
	if r.Flows() != 0 {
		t.Errorf("flows = %d", r.Flows())
	}
	// Refresh keeps state alive.
	if err := r.Reserve(f, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(f, 89e9); err != nil {
		t.Fatal(err)
	}
	if err := r.Forward(f, 100, 170e9); err != nil {
		t.Errorf("refreshed flow dropped: %v", err)
	}
	if err := r.Refresh(FlowID{Src: 9, Dst: 9}, 0); !errors.Is(err, ErrNoState) {
		t.Errorf("refresh of unknown flow: %v", err)
	}
}

func TestRSVPStateGrowsPerFlow(t *testing.T) {
	// The scalability contrast: an IntServ transit router's state grows
	// linearly with flows; a Colibri transit AS keeps only SegRs.
	r := NewRSVPRouter(1 << 40)
	for i := 0; i < 10_000; i++ {
		if err := r.Reserve(FlowID{Src: uint64(i), Dst: 1}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.Flows() != 10_000 {
		t.Errorf("flows = %d", r.Flows())
	}
}

func TestRefreshLoad(t *testing.T) {
	// 1 M flows × 5 hops / 30 s = 166 666 msgs/s network-wide.
	got := RefreshLoad(1_000_000, 5, 30)
	if got < 166_000 || got > 167_000 {
		t.Errorf("RefreshLoad = %f", got)
	}
}

func TestDiffServNoProtection(t *testing.T) {
	// Victim marks 4 Mbps premium; attacker floods 400 Mbps premium into a
	// 40 Mbps link. DiffServ gives the victim only its proportional share
	// (~1%), where Colibri guarantees the full reservation (Table 2).
	victim, attacker := DiffServShare(4_000, 400_000, 40_000)
	if victim+attacker > 41_000 {
		t.Errorf("delivered more than the link: %d + %d", victim, attacker)
	}
	if victim > 2_000 {
		t.Errorf("victim got %d kbps — DiffServ should NOT protect it", victim)
	}
	if attacker < 30_000 {
		t.Errorf("attacker got %d kbps", attacker)
	}
}

func TestDiffServUncontended(t *testing.T) {
	victim, _ := DiffServShare(4_000, 0, 40_000)
	if victim < 3_800 {
		t.Errorf("uncontended victim got %d kbps", victim)
	}
}

func BenchmarkRSVPForward(b *testing.B) {
	r := NewRSVPRouter(1 << 40)
	for i := 0; i < 1<<15; i++ {
		if err := r.Reserve(FlowID{Src: uint64(i), Dst: 1}, 1<<20, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := FlowID{Src: uint64(i % (1 << 15)), Dst: 1}
		if err := r.Forward(f, 100, int64(i)*1000); err != nil {
			b.Fatal(err)
		}
	}
}
