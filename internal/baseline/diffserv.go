package baseline

import (
	"colibri/internal/netsim"
	"colibri/internal/qos"
)

// DiffServShare simulates the DiffServ failure mode: victim and attacker
// both mark their packets with the premium class (nothing stops the
// attacker — there is no admission control and no authentication), so the
// victim's delivered rate collapses to its proportional share of the link.
//
// It returns the victim's and attacker's delivered rates in kbps over one
// simulated second on a link of linkKbps.
func DiffServShare(victimKbps, attackerKbps, linkKbps uint64) (victimOut, attackerOut uint64) {
	sim := netsim.NewSim()
	sink := netsim.NewCounter()
	port := netsim.NewPort(sim, "out", linkKbps, 0, qos.StrictPriority, sink, 0)
	node := netsim.NodeFunc(func(p *netsim.Packet, _ int) { port.Send(p) })

	const pktBytes = 1500
	const durNs = int64(1e9)
	mk := func(rate uint64, label string) {
		if rate == 0 {
			return
		}
		(&netsim.Source{
			Sim: sim, Dst: node, RateKbps: rate, PktBytes: pktBytes, StopNs: durNs,
			Make: func() *netsim.Packet {
				// Both flows claim the premium class: DiffServ cannot tell
				// them apart.
				return &netsim.Packet{WireSize: pktBytes, Class: qos.ClassEER, Meta: label}
			},
		}).Start(0)
	}
	mk(victimKbps, "victim")
	mk(attackerKbps, "attacker")
	sim.Run(durNs)
	// Delivered kbps over the 1 s run: bytes × 8 bits ÷ 1000.
	toKbps := func(bytes uint64) uint64 { return bytes * 8 / 1000 }
	return toKbps(sink.ByLabel["victim"]), toKbps(sink.ByLabel["attacker"])
}
