// Package baseline implements the two archetypal resource-reservation
// architectures the paper positions Colibri against (§1, §8):
//
//   - IntServ/RSVP: strict per-flow end-to-end reservations with per-flow
//     state and policing at *every* on-path router, maintained by periodic
//     soft-state refresh messages. Strong guarantees, but state and
//     signaling grow with the number of flows at every router — the
//     control- and data-plane scalability failure Colibri's SegR/EER
//     hierarchy and stateless routers avoid.
//
//   - DiffServ: stateless per-hop traffic classes with no admission control
//     and no signaling. Scales perfectly, but provides no guarantee: any
//     sender can claim the priority class, so an adversary in the same
//     class squeezes the victim to its proportional share.
//
// The tests and benchmarks in this package quantify both failure modes;
// EXPERIMENTS.md records the comparison against Colibri's guarantees.
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"colibri/internal/monitor"
)

// FlowID identifies an IntServ flow (the classic 5-tuple, condensed).
type FlowID struct {
	Src, Dst uint64
	Port     uint16
}

// flowState is the per-flow router state RSVP installs: reservation
// parameters plus the policing bucket. Roughly 100 bytes per flow per
// router in this compact representation; real RSVP state blocks are larger.
type flowState struct {
	rateKbps    uint64
	bucket      *monitor.TokenBucket
	lastRefresh int64
}

// RSVPRouter is one on-path router of the IntServ baseline. Unlike a
// Colibri border router it must keep and consult per-flow state for every
// packet, and expire flows whose soft state is not refreshed.
type RSVPRouter struct {
	mu    sync.RWMutex
	flows map[FlowID]*flowState
	// CapacityKbps bounds admitted bandwidth (simple parameter-based
	// admission as in RSVP/IntServ).
	CapacityKbps uint64
	allocated    uint64
	// RefreshTimeoutNs expires un-refreshed soft state (RSVP default 90 s).
	RefreshTimeoutNs int64
}

// Baseline errors.
var (
	ErrNoCapacity = errors.New("baseline: insufficient capacity")
	ErrNoState    = errors.New("baseline: no reservation state for flow")
)

// NewRSVPRouter builds a router with the given capacity.
func NewRSVPRouter(capacityKbps uint64) *RSVPRouter {
	return &RSVPRouter{
		flows:            make(map[FlowID]*flowState),
		CapacityKbps:     capacityKbps,
		RefreshTimeoutNs: 90 * 1e9,
	}
}

// Reserve installs per-flow state (the RESV message of RSVP).
func (r *RSVPRouter) Reserve(f FlowID, rateKbps uint64, nowNs int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.flows[f]; ok {
		r.allocated -= old.rateKbps
	}
	if r.allocated+rateKbps > r.CapacityKbps {
		return fmt.Errorf("%w: %d + %d > %d kbps", ErrNoCapacity, r.allocated, rateKbps, r.CapacityKbps)
	}
	r.allocated += rateKbps
	r.flows[f] = &flowState{
		rateKbps:    rateKbps,
		bucket:      monitor.NewTokenBucket(rateKbps, monitor.BurstBytesFor(rateKbps), nowNs),
		lastRefresh: nowNs,
	}
	return nil
}

// Refresh renews one flow's soft state; RSVP requires this per flow, per
// router, per refresh period — the signaling load that dooms its
// control-plane scalability.
func (r *RSVPRouter) Refresh(f FlowID, nowNs int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.flows[f]
	if !ok {
		return ErrNoState
	}
	st.lastRefresh = nowNs
	return nil
}

// Forward polices one packet against the flow's reservation: a per-flow
// state lookup on the fast path, which Colibri routers avoid entirely.
func (r *RSVPRouter) Forward(f FlowID, sizeBytes uint32, nowNs int64) error {
	r.mu.RLock()
	st, ok := r.flows[f]
	r.mu.RUnlock()
	if !ok {
		return ErrNoState
	}
	if nowNs-st.lastRefresh > r.RefreshTimeoutNs {
		return fmt.Errorf("%w: soft state expired", ErrNoState)
	}
	r.mu.Lock() // the bucket mutates; RSVP routers serialize per-flow state
	okRate := st.bucket.Allow(nowNs, sizeBytes)
	r.mu.Unlock()
	if !okRate {
		return errors.New("baseline: flow exceeds reservation")
	}
	return nil
}

// Flows returns the number of per-flow state entries.
func (r *RSVPRouter) Flows() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.flows)
}

// ExpireSoftState drops flows that missed their refresh window and returns
// how many were removed.
func (r *RSVPRouter) ExpireSoftState(nowNs int64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for f, st := range r.flows {
		if nowNs-st.lastRefresh > r.RefreshTimeoutNs {
			r.allocated -= st.rateKbps
			delete(r.flows, f)
			n++
		}
	}
	return n
}

// RefreshLoad computes RSVP's control-message rate for a path: flows ×
// pathLen / refreshPeriod messages per second — compare with Colibri, where
// transit state is per-SegR (thousands of times fewer) and EER renewals
// touch only the reservation's ASes once per lifetime.
func RefreshLoad(flows, pathLen int, refreshSeconds float64) float64 {
	return float64(flows*pathLen) / refreshSeconds
}
