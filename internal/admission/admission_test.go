package admission

import (
	"errors"
	"math/rand"
	"testing"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

// testAS builds an AS with n interfaces of linkKbps capacity each.
func testAS(t testing.TB, n int, linkKbps uint64) *topology.AS {
	t.Helper()
	topo := topology.New()
	center := topo.AddAS(ia(1, 1), true)
	for i := 1; i <= n; i++ {
		nb := ia(1, topology.ASID(i+1))
		topo.AddAS(nb, true)
		topo.MustConnect(ia(1, 1), topology.IfID(i), nb, 1, topology.LinkCore,
			topology.LinkSpec{CapacityKbps: linkKbps})
	}
	return center
}

func req(num uint32, src topology.IA, in, eg topology.IfID, min, max uint64) Request {
	return Request{
		ID:      reservation.ID{SrcAS: src, Num: num},
		Src:     src,
		In:      in,
		Eg:      eg,
		MinKbps: min,
		MaxKbps: max,
	}
}

func TestAdmitBasicGrant(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	// Sole request: gets its full demand (≤ 75% share of 100 Mbps).
	g, err := st.AdmitSegR(req(1, ia(1, 9), 1, 2, 1000, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if g != 10_000 {
		t.Errorf("grant = %d, want full demand 10000", g)
	}
	if st.AllocatedKbps(2) != 10_000 || st.GrantOf(reservation.ID{SrcAS: ia(1, 9), Num: 1}) != 10_000 {
		t.Error("accounting wrong after admit")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestAdmitErrors(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	if _, err := st.AdmitSegR(req(1, ia(1, 9), 1, 2, 0, 0)); !errors.Is(err, ErrZeroDemand) {
		t.Errorf("zero demand: %v", err)
	}
	if _, err := st.AdmitSegR(req(1, ia(1, 9), 7, 2, 0, 100)); !errors.Is(err, ErrUnknownIf) {
		t.Errorf("unknown ingress: %v", err)
	}
	if _, err := st.AdmitSegR(req(1, ia(1, 9), 1, 7, 0, 100)); !errors.Is(err, ErrUnknownIf) {
		t.Errorf("unknown egress: %v", err)
	}
	if _, err := st.AdmitSegR(req(1, ia(1, 9), 1, 2, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AdmitSegR(req(1, ia(1, 9), 1, 2, 100, 100)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestAdmitRejectsBelowMinimum(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	// Fill the egress with 60 sources of 10 Mbps demand each (75 Mbps
	// reservable): later identical requests must receive shrinking shares.
	for i := uint32(0); i < 60; i++ {
		if _, err := st.AdmitSegR(req(i, ia(1, topology.ASID(100+i)), 1, 2, 0, 10_000)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// A newcomer demanding its full 10 Mbps as minimum cannot be satisfied.
	_, err := st.AdmitSegR(req(999, ia(1, 999), 1, 2, 10_000, 10_000))
	if !errors.Is(err, ErrBelowMinimum) {
		t.Errorf("want ErrBelowMinimum, got %v", err)
	}
	// The same demand with minimum 0 is admitted (possibly at zero grant)…
	g, err := st.AdmitSegR(req(999, ia(1, 999), 1, 2, 0, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if g >= 10_000 {
		t.Errorf("fair-share grant = %d", g)
	}
	// …and after one renewal round of all 61 reservations, it converges to
	// its fair share of capacity.
	for round := 0; round < 3; round++ {
		for i := uint32(0); i < 60; i++ {
			if _, err := st.RenewSegR(req(i, ia(1, topology.ASID(100+i)), 1, 2, 0, 10_000)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.RenewSegR(req(999, ia(1, 999), 1, 2, 0, 10_000)); err != nil {
			t.Fatal(err)
		}
	}
	g = st.GrantOf(reservation.ID{SrcAS: ia(1, 999), Num: 999})
	fair := DefaultSplit.EERShare(100_000) / 61
	if g < fair*8/10 {
		t.Errorf("newcomer grant %d after renewals, fair share %d", g, fair)
	}
}

// TestCapacityNeverExceeded is the §5.1 safety property: the sum of all
// grants at an egress never exceeds the reservable capacity, under random
// admissions, releases, and renewals.
func TestCapacityNeverExceeded(t *testing.T) {
	const linkKbps = 100_000
	capEg := DefaultSplit.EERShare(linkKbps)
	st := NewState(testAS(t, 3, linkKbps), DefaultSplit)
	rng := rand.New(rand.NewSource(42))
	var live []Request
	total := func() uint64 {
		var sum uint64
		for _, r := range live {
			sum += st.GrantOf(r.ID)
		}
		return sum
	}
	for i := 0; i < 3000; i++ {
		switch {
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			st.Release(live[k].ID)
			live = append(live[:k], live[k+1:]...)
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			r := live[k]
			r.MaxKbps = uint64(1 + rng.Intn(30_000))
			if _, err := st.RenewSegR(r); err == nil {
				live[k] = r
			}
		default:
			r := req(uint32(i+1000), ia(1, topology.ASID(rng.Intn(50)+10)),
				topology.IfID(rng.Intn(2)+1), 3, 0, uint64(1+rng.Intn(30_000)))
			if _, err := st.AdmitSegR(r); err == nil {
				live = append(live, r)
			}
		}
		if got := st.AllocatedKbps(3); got > capEg {
			t.Fatalf("iteration %d: allocated %d > capacity %d", i, got, capEg)
		}
		if got, want := st.AllocatedKbps(3), total(); got != want {
			t.Fatalf("iteration %d: allocEg %d != Σ grants %d", i, got, want)
		}
	}
}

// TestFairnessConvergence checks that equal competitors converge to equal
// grants within a few renewal cycles.
func TestFairnessConvergence(t *testing.T) {
	const linkKbps = 100_000
	capEg := DefaultSplit.EERShare(linkKbps) // 75_000
	st := NewState(testAS(t, 2, linkKbps), DefaultSplit)
	const n = 10
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = req(uint32(i+1), ia(1, topology.ASID(10+i)), 1, 2, 0, 20_000)
		if _, err := st.AdmitSegR(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Renew everyone a few rounds.
	for round := 0; round < 5; round++ {
		for i := range reqs {
			if _, err := st.RenewSegR(reqs[i]); err != nil {
				t.Fatalf("round %d renew %d: %v", round, i, err)
			}
		}
	}
	fair := capEg / n // 7_500 each (demand 20k each, 10× oversubscribed)
	for i := range reqs {
		g := st.GrantOf(reqs[i].ID)
		if g < fair*8/10 || g > fair*12/10 {
			t.Errorf("request %d grant %d not within 20%% of fair share %d", i, g, fair)
		}
	}
}

// TestBotnetSizeIndependence checks the §5.2 property: a benign source's
// grant does not collapse as the number of adversarial sources grows,
// because adversarial demand is bounded by its ingress capacity (step 1).
func TestBotnetSizeIndependence(t *testing.T) {
	const linkKbps = 100_000
	grantWithAttackers := func(k int) uint64 {
		st := NewState(testAS(t, 3, linkKbps), DefaultSplit)
		benign := req(1, ia(1, 5), 1, 3, 0, 10_000)
		if _, err := st.AdmitSegR(benign); err != nil {
			t.Fatal(err)
		}
		// k attacker sources, all arriving through ingress 2, each
		// demanding 50 Mbps.
		for i := 0; i < k; i++ {
			_, _ = st.AdmitSegR(req(uint32(100+i), ia(1, topology.ASID(1000+i)), 2, 3, 0, 50_000))
		}
		// Converge over renewal rounds.
		for round := 0; round < 5; round++ {
			if _, err := st.RenewSegR(benign); err != nil {
				t.Fatalf("k=%d renew: %v", k, err)
			}
			for i := 0; i < k; i++ {
				_, _ = st.RenewSegR(req(uint32(100+i), ia(1, topology.ASID(1000+i)), 2, 3, 0, 50_000))
			}
		}
		return st.GrantOf(benign.ID)
	}
	g10 := grantWithAttackers(10)
	g100 := grantWithAttackers(100)
	if g10 == 0 || g100 == 0 {
		t.Fatalf("benign source starved: g10=%d g100=%d", g10, g100)
	}
	// Growing the botnet 10× must not shrink the benign grant by more than
	// a small factor (the adversarial adjusted demand is ingress-bounded).
	if g100 < g10/2 {
		t.Errorf("benign grant collapsed with botnet size: %d → %d", g10, g100)
	}
}

func TestRenewFailureRestoresOldReservation(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	r := req(1, ia(1, 9), 1, 2, 1000, 10_000)
	g, err := st.AdmitSegR(r)
	if err != nil {
		t.Fatal(err)
	}
	// Renewal demanding an impossible minimum fails…
	bad := r
	bad.MinKbps = 80_000
	bad.MaxKbps = 80_000
	if _, err := st.RenewSegR(bad); err == nil {
		t.Fatal("impossible renewal succeeded")
	}
	// …but the old reservation survives intact.
	if got := st.GrantOf(r.ID); got != g {
		t.Errorf("grant after failed renewal = %d, want %d", got, g)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	st.Release(reservation.ID{SrcAS: ia(1, 9), Num: 77})
	if st.Len() != 0 {
		t.Error("release of unknown ID changed state")
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	r := req(1, ia(1, 9), 1, 2, 0, 50_000)
	if _, err := st.AdmitSegR(r); err != nil {
		t.Fatal(err)
	}
	st.Release(r.ID)
	if st.AllocatedKbps(2) != 0 {
		t.Errorf("allocated after release = %d", st.AllocatedKbps(2))
	}
	// Full capacity available again.
	g, err := st.AdmitSegR(req(2, ia(1, 8), 1, 2, 50_000, 50_000))
	if err != nil || g != 50_000 {
		t.Errorf("grant after release = %d, %v", g, err)
	}
}

func TestTubeCapOverride(t *testing.T) {
	st := NewState(testAS(t, 2, 100_000), DefaultSplit)
	st.SetTubeCapKbps(1, 2, 5_000)
	g, err := st.AdmitSegR(req(1, ia(1, 9), 1, 2, 0, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if g > 5_000 {
		t.Errorf("grant %d exceeds tube cap 5000", g)
	}
}

func TestInternalIngressUnconstrained(t *testing.T) {
	// Requests originating at this AS enter via interface 0, which is
	// unconstrained unless InternalCapacityKbps is set.
	st := NewState(testAS(t, 1, 100_000), DefaultSplit)
	g, err := st.AdmitSegR(req(1, ia(1, 1), 0, 1, 0, 70_000))
	if err != nil {
		t.Fatal(err)
	}
	if g != 70_000 {
		t.Errorf("grant = %d", g)
	}
}

func TestTransferSplitProportional(t *testing.T) {
	ts := NewTransferSplit()
	core := reservation.ID{SrcAS: ia(1, 1), Num: 1}
	up1 := reservation.ID{SrcAS: ia(1, 2), Num: 1}
	up2 := reservation.ID{SrcAS: ia(1, 3), Num: 1}
	const coreCap = 1000

	// No contention: full grants.
	g := ts.Admit(core, up1, 300, 10_000, coreCap, 10_000, 1000)
	if g != 300 {
		t.Errorf("uncontended grant = %d", g)
	}
	// Demand now exceeds the core SegR: up2 asks 1500 (total 1800 > 1000).
	// Its fair share is 1000×1500/1800 = 833.
	g = ts.Admit(core, up2, 1500, 10_000, coreCap, 10_000, 700)
	if g > 833 || g == 0 {
		t.Errorf("contended grant = %d, want ≤ 833 and > 0", g)
	}
	// up1 asks again for 500: its fair share is 1000×800/2300 = 347,
	// already granted 300 → at most 47 more.
	g = ts.Admit(core, up1, 500, 10_000, coreCap, 10_000, 700-g)
	if g > 48 {
		t.Errorf("second up1 grant = %d, want ≤ 48", g)
	}
}

func TestTransferSplitRelease(t *testing.T) {
	ts := NewTransferSplit()
	core := reservation.ID{SrcAS: ia(1, 1), Num: 1}
	up := reservation.ID{SrcAS: ia(1, 2), Num: 1}
	g := ts.Admit(core, up, 800, 1000, 1000, 1000, 1000)
	if g != 800 {
		t.Fatalf("grant = %d", g)
	}
	ts.Release(core, up, 800, 800)
	// After release, the full core is available again.
	g = ts.Admit(core, up, 900, 1000, 1000, 1000, 1000)
	if g != 900 {
		t.Errorf("grant after release = %d", g)
	}
	ts.DropCore(core)
	g = ts.Admit(core, up, 100, 1000, 1000, 1000, 1000)
	if g != 100 {
		t.Errorf("grant after DropCore = %d", g)
	}
}

// BenchmarkAdmitConstantTime demonstrates the Fig. 3 property at unit level:
// admission time with 10 000 pre-existing SegRs on the same interface pair.
func BenchmarkAdmitConstantTime(b *testing.B) {
	st := NewState(testAS(b, 2, 100_000_000), DefaultSplit)
	for i := uint32(0); i < 10_000; i++ {
		if _, err := st.AdmitSegR(req(i, ia(1, topology.ASID(10+i%100)), 1, 2, 0, 1000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := req(uint32(100_000+i), ia(1, 7), 1, 2, 0, 1000)
		if _, err := st.AdmitSegR(r); err != nil {
			b.Fatal(err)
		}
		st.Release(r.ID)
	}
}
