package admission

import (
	"errors"
	"sort"
	"testing"

	"colibri/internal/topology"
)

// FuzzAdmissionEquivalence drives identical op sequences — setup, renew,
// teardown, time advancement across epochs, tube-cap changes — through the
// naive, memoized and restree implementations and requires equivalent
// results:
//
//   - memoized vs restree grants must be bit-identical (both accumulate the
//     float adjusted-demand total in the same operation order, and the
//     integer demand aggregates are exact in either representation);
//   - naive grants must agree within 1 kbps: the naive implementation re-sums
//     the adjusted demands of the *live* set in insertion order, which is a
//     different (deterministic) float evaluation order than the memoized
//     add/subtract history, so the last ulp of the proportional share — and
//     hence the truncated grant — may differ by one.
//
// Timed reservations auto-expire in the restree implementation; the harness
// mirrors each expiry into the other two as an explicit release in the same
// (expiry epoch, admission order) order, so all three always see the same
// live set.
func FuzzAdmissionEquivalence(f *testing.F) {
	// Ops are 4-byte groups: opcode, selector, and two parameter bytes.
	op := func(code, sel, p0, p1 byte) []byte { return []byte{code, sel, p0, p1} }
	cat := func(ops ...[]byte) []byte {
		var out []byte
		for _, o := range ops {
			out = append(out, o...)
		}
		return out
	}
	// Epoch-boundary seed: admit a short-lived reservation, advance exactly
	// onto its expiry epoch boundary, then admit again and renew.
	f.Add(cat(
		op(0, 1, 10, 0), // admit, lifetime from p0
		op(4, 7, 0, 0),  // advance time
		op(0, 2, 50, 1),
		op(4, 15, 0, 0),
		op(2, 0, 80, 2), // renew first live entry
		op(4, 15, 0, 0),
		op(3, 0, 0, 0), // release
	))
	// Zero-grant seed: zero tube capacity forces adj = 0 and a zero grant
	// (admitted with MinKbps == 0), then churn on top.
	f.Add(cat(
		op(5, 1, 0, 0), // tube cap 0 on ingress 1
		op(0, 1, 40, 0),
		op(0, 1, 60, 0),
		op(5, 1, 3, 0), // raise tube cap
		op(2, 0, 90, 3),
		op(4, 9, 0, 0),
		op(3, 1, 0, 0),
	))
	// Contention seed: many large demands through one ingress.
	f.Add(cat(
		op(0, 1, 200, 40), op(0, 1, 210, 40), op(0, 3, 220, 40),
		op(0, 5, 230, 40), op(4, 3, 0, 0), op(2, 1, 240, 40),
		op(3, 0, 0, 0), op(0, 7, 250, 40),
	))
	f.Fuzz(runEquivalence)
}

// TestAdmissionEquivalenceSeeds runs the fuzz harness deterministically so
// the differential check is exercised by plain `go test` too.
func TestAdmissionEquivalenceSeeds(t *testing.T) {
	data := make([]byte, 0, 4*256)
	// A pseudo-random but fixed op tape (simple LCG, no global rand).
	x := uint32(12345)
	for i := 0; i < 256; i++ {
		x = x*1664525 + 1013904223
		data = append(data, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	runEquivalence(t, data)
}

const (
	equivEpochSec = 4
	equivHorizon  = 64
)

type equivLive struct {
	req      Request
	endEpoch int64
	seq      uint64
}

func runEquivalence(t *testing.T, data []byte) {
	as := testAS(t, 3, 50_000)
	now := uint32(1_000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: equivEpochSec, HorizonEpochs: equivHorizon,
		Clock: func() uint32 { return now },
	})
	mem := NewState(as, DefaultSplit)
	nai := NewNaiveState(as, DefaultSplit)

	var live []equivLive
	var seq uint64
	nextNum := uint32(1)

	// expire mirrors restree's advanceLocked into the other implementations:
	// every live entry whose window ended at or before now is released in
	// (expiry epoch, admission order) order.
	expire := func() {
		cur := int64(now / equivEpochSec)
		var due []equivLive
		kept := live[:0]
		for _, l := range live {
			if l.endEpoch <= cur {
				due = append(due, l)
			} else {
				kept = append(kept, l)
			}
		}
		live = kept
		sort.Slice(due, func(i, j int) bool {
			if due[i].endEpoch != due[j].endEpoch {
				return due[i].endEpoch < due[j].endEpoch
			}
			return due[i].seq < due[j].seq
		})
		for _, l := range due {
			mem.Release(l.req.ID)
			nai.Release(l.req.ID)
		}
	}

	checkErrs := func(opName string, em, en, er error) {
		for _, sentinel := range []error{ErrZeroDemand, ErrDuplicate, ErrUnknownIf, ErrBelowMinimum} {
			if errors.Is(em, sentinel) != errors.Is(er, sentinel) ||
				errors.Is(en, sentinel) != errors.Is(er, sentinel) {
				t.Fatalf("%s: divergent error class: memoized=%v naive=%v restree=%v", opName, em, en, er)
			}
		}
		if errors.Is(er, ErrWindow) {
			t.Fatalf("%s: restree rejected window: %v (harness must keep windows valid)", opName, er)
		}
		if (em == nil) != (er == nil) || (en == nil) != (er == nil) {
			t.Fatalf("%s: divergent accept/reject: memoized=%v naive=%v restree=%v", opName, em, en, er)
		}
	}
	// drift bounds the naive implementation's divergence: each grant may
	// differ by one ulp-truncation, and once the free-capacity term binds,
	// earlier differences feed back through allocEg — so the allowed
	// per-grant divergence is the accumulated drift plus one.
	var drift uint64
	checkGrants := func(opName string, gm, gn, gr uint64) {
		if gm != gr {
			t.Fatalf("%s: memoized grant %d != restree grant %d", opName, gm, gr)
		}
		dn := uint64(0)
		if gn > gm {
			dn = gn - gm
		} else {
			dn = gm - gn
		}
		if dn > drift+1 {
			t.Fatalf("%s: naive grant %d vs memoized %d (Δ %d > drift bound %d)",
				opName, gn, gm, dn, drift+1)
		}
		drift += dn
	}

	mkReq := func(sel, p0, p1 byte) Request {
		r := req(nextNum, ia(1, topology.ASID(10+sel%8)),
			topology.IfID(sel%2+1), 3, 0, uint64(1+uint64(p0)|uint64(p1)<<8)*37)
		nextNum++
		// Lifetime 4..227 s: always a valid window well inside the horizon
		// (64 epochs × 4 s = 256 s).
		r.ExpT = now + equivEpochSec + uint32(p0)%224
		return r
	}

	ops := 0
	for i := 0; i+4 <= len(data) && ops < 400; i, ops = i+4, ops+1 {
		code, sel, p0, p1 := data[i], data[i+1], data[i+2], data[i+3]
		switch code % 6 {
		case 0, 1: // admit
			if len(live) >= 128 {
				continue
			}
			expire()
			r := mkReq(sel, p0, p1)
			gm, em := mem.AdmitSegR(r)
			gn, en := nai.AdmitSegR(r)
			gr, er := res.AdmitSegR(r)
			checkErrs("admit", em, en, er)
			if er == nil {
				checkGrants("admit", gm, gn, gr)
				seq++
				live = append(live, equivLive{
					req:      r,
					endEpoch: int64((uint64(r.ExpT) + equivEpochSec - 1) / equivEpochSec),
					seq:      seq,
				})
			}
		case 2: // renew
			if len(live) == 0 {
				continue
			}
			expire()
			if len(live) == 0 {
				continue
			}
			k := int(sel) % len(live)
			r := live[k].req
			r.MaxKbps = uint64(1+uint64(p0)|uint64(p1)<<8) * 37
			r.ExpT = now + equivEpochSec + uint32(p0)%224
			gm, em := mem.RenewSegR(r)
			gn, en := nai.RenewSegR(r)
			gr, er := res.RenewSegR(r)
			checkErrs("renew", em, en, er)
			if er == nil {
				checkGrants("renew", gm, gn, gr)
				seq++
				live[k] = equivLive{
					req:      r,
					endEpoch: int64((uint64(r.ExpT) + equivEpochSec - 1) / equivEpochSec),
					seq:      seq,
				}
			}
		case 3: // release
			if len(live) == 0 {
				continue
			}
			expire()
			if len(live) == 0 {
				continue
			}
			k := int(sel) % len(live)
			id := live[k].req.ID
			mem.Release(id)
			nai.Release(id)
			res.Release(id)
			live = append(live[:k], live[k+1:]...)
		case 4: // advance time
			now += 1 + uint32(sel)%32
		case 5: // tube-cap change (0 exercises the zero-grant path)
			in := topology.IfID(sel%2 + 1)
			capKbps := uint64(p0%4) * 9_000
			mem.SetTubeCapKbps(in, 3, capKbps)
			nai.SetTubeCapKbps(in, 3, capKbps)
			res.SetTubeCapKbps(in, 3, capKbps)
		}
	}
	expire()
	if lm, lr := mem.Len(), res.Len(); lm != lr {
		t.Fatalf("final Len: memoized %d != restree %d", lm, lr)
	}
	if am, ar := mem.AllocatedKbps(3), res.AllocatedKbps(3); am != ar {
		t.Fatalf("final AllocatedKbps: memoized %d != restree %d", am, ar)
	}
	an := nai.AllocatedKbps(3)
	am := mem.AllocatedKbps(3)
	tol := int64(drift) + 1
	if d := int64(an) - int64(am); d < -tol || d > tol {
		t.Fatalf("final AllocatedKbps: naive %d vs memoized %d beyond ±%d", an, am, tol)
	}
}
