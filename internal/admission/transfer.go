package admission

import (
	"sync"

	"colibri/internal/reservation"
)

// TransferSplit implements the transfer-AS EER admission rule of §4.7: "the
// transfer AS between up- and core-SegR needs to distribute the core-SegR's
// bandwidth between all up-SegRs in case more EER bandwidth is requested
// than available in the core-SegR. This is done proportionally to the total
// of all requested EERs (capped at the up-SegR) that compete for the same
// core-SegR."
//
// The split tracks, per core-SegR, the demand arriving from each up-SegR and
// grants each up-SegR at most its proportional share of the core capacity.
// All state is O(#up-SegRs per core-SegR), not O(#EERs).
type TransferSplit struct {
	mu sync.Mutex
	// demand[core][up] = Σ requested EER bandwidth (capped at the up-SegR's
	// own capacity at request time).
	demand map[reservation.ID]map[reservation.ID]uint64
	// total[core] = Σ over ups of demand.
	total map[reservation.ID]uint64
	// granted[core][up] = Σ granted.
	granted map[reservation.ID]map[reservation.ID]uint64
}

// NewTransferSplit builds an empty split state.
func NewTransferSplit() *TransferSplit {
	return &TransferSplit{
		demand:  make(map[reservation.ID]map[reservation.ID]uint64),
		total:   make(map[reservation.ID]uint64),
		granted: make(map[reservation.ID]map[reservation.ID]uint64),
	}
}

// Admit computes the grant for an EER request of reqKbps arriving over
// upSegR and leaving over coreSegR. upCapKbps and coreCapKbps are the
// respective active SegR bandwidths; coreAvailKbps is the remaining free EER
// bandwidth on the core SegR. The returned grant never exceeds any of the
// three, and under contention is capped at the up-SegR's proportional share
// of the core capacity.
func (t *TransferSplit) Admit(coreSegR, upSegR reservation.ID, reqKbps, upCapKbps, coreCapKbps, upAvailKbps, coreAvailKbps uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()

	capped := reqKbps
	if capped > upCapKbps {
		capped = upCapKbps
	}
	if t.demand[coreSegR] == nil {
		t.demand[coreSegR] = make(map[reservation.ID]uint64)
		t.granted[coreSegR] = make(map[reservation.ID]uint64)
	}
	t.demand[coreSegR][upSegR] += capped
	t.total[coreSegR] += capped

	grant := reqKbps
	if grant > upAvailKbps {
		grant = upAvailKbps
	}
	if grant > coreAvailKbps {
		grant = coreAvailKbps
	}
	// Under contention (total demand exceeds the core SegR), cap this
	// up-SegR at its proportional share of the core capacity.
	if tot := t.total[coreSegR]; tot > coreCapKbps {
		fair := coreCapKbps * t.demand[coreSegR][upSegR] / tot
		already := t.granted[coreSegR][upSegR]
		var room uint64
		if fair > already {
			room = fair - already
		}
		if grant > room {
			grant = room
		}
	}
	t.granted[coreSegR][upSegR] += grant
	return grant
}

// Release returns previously admitted demand/grant when an EER (or one of
// its versions) expires.
func (t *TransferSplit) Release(coreSegR, upSegR reservation.ID, demandKbps, grantKbps uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.demand[coreSegR]; m != nil {
		m[upSegR] = subFloor(m[upSegR], demandKbps)
	}
	t.total[coreSegR] = subFloor(t.total[coreSegR], demandKbps)
	if m := t.granted[coreSegR]; m != nil {
		m[upSegR] = subFloor(m[upSegR], grantKbps)
	}
}

// Charge re-adds previously released demand/grant — the inverse of Release,
// for rollbacks that reinstate a version whose charge was already returned.
func (t *TransferSplit) Charge(coreSegR, upSegR reservation.ID, demandKbps, grantKbps uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.demand[coreSegR] == nil {
		t.demand[coreSegR] = make(map[reservation.ID]uint64)
		t.granted[coreSegR] = make(map[reservation.ID]uint64)
	}
	t.demand[coreSegR][upSegR] += demandKbps
	t.total[coreSegR] += demandKbps
	t.granted[coreSegR][upSegR] += grantKbps
}

// DropCore removes all state for an expired core SegR.
func (t *TransferSplit) DropCore(coreSegR reservation.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.demand, coreSegR)
	delete(t.total, coreSegR)
	delete(t.granted, coreSegR)
}

func subFloor(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
