// Package admission implements Colibri's admission algorithms (§4.7):
//
//   - Segment-reservation admission with bounded tube fairness: the capacity
//     of an egress interface is distributed among competing SegRs
//     proportionally to their *adjusted* demand, obtained by (1) limiting the
//     total demand from an ingress interface by that interface's capacity,
//     (2) limiting the demand between an ingress–egress pair by the egress
//     capacity, and (3) limiting the per-source demand at an egress by the
//     egress capacity. Step (1) is what yields botnet-size independence: no
//     matter how many sources an adversary controls, their total adjusted
//     demand is bounded by the physical ingress capacities their requests
//     arrive through.
//
//   - End-to-end-reservation admission at transfer ASes: proportional
//     distribution of a core-SegR's bandwidth among the up-SegRs competing
//     for it.
//
// All aggregates are memoized so one admission runs in O(1) time in the
// number of existing reservations — the property Fig. 3 of the paper
// demonstrates. Scale factors are snapshots taken at admission time and
// refreshed at each renewal; because SegRs are short-lived (~5 min) and
// renewals re-run admission, allocations converge to the fair shares within
// a few renewal cycles (§4.2).
package admission

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// TrafficSplit is the link-capacity split of §3.4.
type TrafficSplit struct {
	BestEffortPct uint8
	ControlPct    uint8
	EERPct        uint8
}

// DefaultSplit is the paper's 20 % / 5 % / 75 % split.
var DefaultSplit = TrafficSplit{BestEffortPct: 20, ControlPct: 5, EERPct: 75}

// EERShare returns the reservable share of a link capacity.
func (s TrafficSplit) EERShare(capKbps uint64) uint64 {
	return capKbps * uint64(s.EERPct) / 100
}

// ControlShare returns the control-traffic share of a link capacity.
func (s TrafficSplit) ControlShare(capKbps uint64) uint64 {
	return capKbps * uint64(s.ControlPct) / 100
}

// Request is one SegR admission request as seen by an on-path AS.
type Request struct {
	ID  reservation.ID
	Src topology.IA
	// In, Eg are the local ingress/egress interfaces; 0 denotes the AS
	// itself (first or last hop of the segment).
	In, Eg topology.IfID
	// MinKbps is the smallest acceptable grant; MaxKbps the demand.
	MinKbps, MaxKbps uint64
	// StartT/ExpT optionally bound the reservation's validity window in Unix
	// seconds (end-exclusive). ExpT == 0 means an untimed reservation that
	// stays charged until released; StartT == 0 means "now". Only the
	// restree implementation uses the window — the memoized and naive
	// implementations charge every reservation until release, which is the
	// same thing for requests whose window covers the query horizon.
	StartT, ExpT uint32
}

// Admission errors.
var (
	ErrBelowMinimum = errors.New("admission: grant below requested minimum")
	ErrUnknownIf    = errors.New("admission: unknown interface")
	ErrZeroDemand   = errors.New("admission: zero demand")
	ErrDuplicate    = errors.New("admission: reservation already admitted")
)

type tubeKey struct{ in, eg topology.IfID }

type srcEgKey struct {
	src topology.IA
	eg  topology.IfID
}

// entry stores the admitted snapshot so Release can subtract exactly what
// Admit added.
type entry struct {
	req   Request
	adj   float64
	grant uint64
}

// State is one AS's SegR admission state. All methods are safe for
// concurrent use.
type State struct {
	mu sync.Mutex

	// capIn/capEg are reservable capacities per interface; interface 0
	// (the AS itself) maps to internal capacity or infinity.
	capIn, capEg map[topology.IfID]float64
	// tubeCap optionally overrides per-(in,eg) capacity (the "local traffic
	// matrix" of §4.7).
	tubeCap map[tubeKey]float64

	demIn   map[topology.IfID]float64 // Σ raw demand per ingress
	demTube map[tubeKey]float64       // Σ raw demand per (in,eg)
	demSrc  map[srcEgKey]float64      // Σ raw demand per (source, eg)
	adjEg   map[topology.IfID]float64 // Σ adjusted demand per egress
	allocEg map[topology.IfID]uint64  // Σ granted per egress

	entries map[reservation.ID]entry
}

// NewState builds admission state for the AS, deriving per-interface
// reservable capacities from the topology and traffic split.
func NewState(as *topology.AS, split TrafficSplit) *State {
	st := &State{
		capIn:   make(map[topology.IfID]float64, len(as.Interfaces)+1),
		capEg:   make(map[topology.IfID]float64, len(as.Interfaces)+1),
		tubeCap: make(map[tubeKey]float64),
		demIn:   make(map[topology.IfID]float64),
		demTube: make(map[tubeKey]float64),
		demSrc:  make(map[srcEgKey]float64),
		adjEg:   make(map[topology.IfID]float64),
		allocEg: make(map[topology.IfID]uint64),
		entries: make(map[reservation.ID]entry),
	}
	for _, id := range as.SortedIfIDs() {
		c := float64(split.EERShare(as.Interfaces[id].CapacityKbps()))
		st.capIn[id] = c
		st.capEg[id] = c
	}
	internal := math.Inf(1)
	if as.InternalCapacityKbps > 0 {
		internal = float64(split.EERShare(as.InternalCapacityKbps))
	}
	st.capIn[0] = internal
	st.capEg[0] = internal
	return st
}

// SetTubeCapKbps overrides the capacity of one ingress→egress tube.
func (st *State) SetTubeCapKbps(in, eg topology.IfID, capKbps uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tubeCap[tubeKey{in, eg}] = float64(capKbps)
}

// AdmitSegR runs the bounded-tube-fairness admission for one request and, if
// the computed grant meets the requested minimum, records the reservation
// and returns the granted bandwidth.
func (st *State) AdmitSegR(req Request) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.admitLocked(req)
}

func (st *State) admitLocked(req Request) (uint64, error) {
	if req.MaxKbps == 0 {
		return 0, ErrZeroDemand
	}
	if _, ok := st.entries[req.ID]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicate, req.ID)
	}
	capIn, ok := st.capIn[req.In]
	if !ok {
		return 0, fmt.Errorf("%w: ingress %d", ErrUnknownIf, req.In)
	}
	capEg, ok := st.capEg[req.Eg]
	if !ok {
		return 0, fmt.Errorf("%w: egress %d", ErrUnknownIf, req.Eg)
	}
	if tc, ok := st.tubeCap[tubeKey{req.In, req.Eg}]; ok && tc < capEg {
		capEg = tc
	}

	d := float64(req.MaxKbps)
	tk := tubeKey{req.In, req.Eg}
	sk := srcEgKey{req.Src, req.Eg}

	// Step 1: ingress cap. The scale factor uses the ingress total
	// including this demand.
	fIn := scale(capIn, st.demIn[req.In]+d)
	// Step 2: tube cap at the egress.
	fTube := scale(capEg, fIn*(st.demTube[tk]+d))
	// Step 3: per-source cap at the egress.
	fSrc := scale(capEg, st.demSrc[sk]+d)

	adj := d * fIn * fTube * fSrc

	// Proportional share of the egress capacity. totalAdj can be zero when
	// the tube has zero capacity (adj scales to 0) and no other demand is
	// present; 0/0 would make share NaN and the min() chain below would
	// pass NaN through uint64 conversion as a huge grant.
	totalAdj := st.adjEg[req.Eg] + adj
	share := 0.0
	if totalAdj > 0 {
		share = capEg * adj / totalAdj
	}
	free := capEg - float64(st.allocEg[req.Eg])
	if free < 0 {
		free = 0
	}
	grant := math.Min(d, math.Min(share, free))
	g := uint64(grant)
	if g < req.MinKbps {
		return 0, fmt.Errorf("%w: computed %d kbps < minimum %d kbps",
			ErrBelowMinimum, g, req.MinKbps)
	}
	// A zero grant with MinKbps == 0 is admitted deliberately: the
	// reservation's adjusted demand enters the aggregates, so incumbents
	// shrink toward fair shares at their next renewal and this
	// reservation's own renewal picks up the freed bandwidth (§4.2).

	st.demIn[req.In] += d
	st.demTube[tk] += d
	st.demSrc[sk] += d
	st.adjEg[req.Eg] += adj
	st.allocEg[req.Eg] += g
	st.entries[req.ID] = entry{req: req, adj: adj, grant: g}
	return g, nil
}

// scale returns min(1, cap/total); an infinite cap yields 1.
func scale(capacity, total float64) float64 {
	if total <= capacity || math.IsInf(capacity, 1) {
		return 1
	}
	return capacity / total
}

// Release removes an admitted reservation, subtracting exactly its admitted
// snapshot from all aggregates. Releasing an unknown ID is a no-op.
func (st *State) Release(id reservation.ID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.releaseLocked(id)
}

func (st *State) releaseLocked(id reservation.ID) {
	e, ok := st.entries[id]
	if !ok {
		return
	}
	d := float64(e.req.MaxKbps)
	tk := tubeKey{e.req.In, e.req.Eg}
	sk := srcEgKey{e.req.Src, e.req.Eg}
	st.demIn[e.req.In] = clampNonNeg(st.demIn[e.req.In] - d)
	st.demTube[tk] = clampNonNeg(st.demTube[tk] - d)
	st.demSrc[sk] = clampNonNeg(st.demSrc[sk] - d)
	st.adjEg[e.req.Eg] = clampNonNeg(st.adjEg[e.req.Eg] - e.adj)
	if st.allocEg[e.req.Eg] >= e.grant {
		st.allocEg[e.req.Eg] -= e.grant
	} else {
		st.allocEg[e.req.Eg] = 0
	}
	delete(st.entries, id)
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// RenewSegR re-admits an existing reservation with fresh scale factors (and
// possibly a new demand), releasing the old snapshot first. On failure the
// old snapshot is restored, so a failed renewal never destroys an active
// reservation.
func (st *State) RenewSegR(req Request) (uint64, error) {
	g, _, err := st.RenewSegRWithUndo(req)
	return g, err
}

// RenewSegRWithUndo is RenewSegR returning an undo closure that restores the
// pre-renewal snapshot — used when a renewal succeeds locally but a
// downstream AS refuses it, so the whole chain must roll back (§3.3's
// temporary-reservation cleanup). undo is nil when the renewal failed (state
// is already restored) or when there was no prior reservation.
func (st *State) RenewSegRWithUndo(req Request) (grant uint64, undo func(), err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old, had := st.entries[req.ID]
	if had {
		st.releaseLocked(req.ID)
	}
	restore := func() {
		// Re-admit the old snapshot verbatim (bypassing the proportional
		// computation to keep the exact previous values).
		d := float64(old.req.MaxKbps)
		st.demIn[old.req.In] += d
		st.demTube[tubeKey{old.req.In, old.req.Eg}] += d
		st.demSrc[srcEgKey{old.req.Src, old.req.Eg}] += d
		st.adjEg[old.req.Eg] += old.adj
		st.allocEg[old.req.Eg] += old.grant
		st.entries[old.req.ID] = old
	}
	g, err := st.admitLocked(req)
	if err != nil {
		if had {
			restore()
		}
		return 0, nil, err
	}
	if !had {
		id := req.ID
		return g, func() {
			st.mu.Lock()
			defer st.mu.Unlock()
			st.releaseLocked(id)
		}, nil
	}
	id := req.ID
	return g, func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		st.releaseLocked(id)
		restore()
	}, nil
}

// AdjustGrant lowers a reservation's recorded grant to the final value
// agreed on the backward pass of a setup (the path-wide minimum), freeing
// the difference at the egress. Raising above the admitted grant is refused.
func (st *State) AdjustGrant(id reservation.ID, finalKbps uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok {
		return fmt.Errorf("admission: unknown reservation %s", id)
	}
	if finalKbps > e.grant {
		return fmt.Errorf("admission: cannot raise grant of %s from %d to %d",
			id, e.grant, finalKbps)
	}
	st.allocEg[e.req.Eg] -= e.grant - finalKbps
	e.grant = finalKbps
	st.entries[id] = e
	return nil
}

// AllocatedKbps returns the total granted bandwidth at an egress.
func (st *State) AllocatedKbps(eg topology.IfID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.allocEg[eg]
}

// GrantOf returns the recorded grant for a reservation (0 if unknown).
func (st *State) GrantOf(id reservation.ID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.entries[id].grant
}

// Len returns the number of admitted reservations.
func (st *State) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}
