package admission

import (
	"errors"
	"math/rand"
	"testing"

	"colibri/internal/restree"
	"colibri/internal/topology"
)

// TestRestreeMatchesMemoized: for a random sequence of untimed admissions,
// renewals and releases, the restree implementation must produce grants
// bit-identical to the memoized one (integer demand sums are exact in both
// representations, and the float adjusted-demand total follows the same
// operation order).
func TestRestreeMatchesMemoized(t *testing.T) {
	as := testAS(t, 3, 100_000)
	mem := NewState(as, DefaultSplit)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{})
	rng := rand.New(rand.NewSource(42))
	var live []Request
	for i := 0; i < 2000; i++ {
		switch {
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			mem.Release(live[k].ID)
			res.Release(live[k].ID)
			live = append(live[:k], live[k+1:]...)
		case len(live) > 0 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			r := live[k]
			r.MaxKbps = uint64(1 + rng.Intn(30_000))
			gm, em := mem.RenewSegR(r)
			gr, er := res.RenewSegR(r)
			if (em == nil) != (er == nil) {
				t.Fatalf("renew %d: memoized err %v, restree err %v", i, em, er)
			}
			if gm != gr {
				t.Fatalf("renew %d: memoized grant %d, restree grant %d", i, gm, gr)
			}
			if em == nil {
				live[k] = r
			}
		default:
			r := req(uint32(i+1), ia(1, topology.ASID(10+rng.Intn(40))),
				topology.IfID(rng.Intn(2)+1), 3, 0, uint64(1+rng.Intn(30_000)))
			gm, em := mem.AdmitSegR(r)
			gr, er := res.AdmitSegR(r)
			if (em == nil) != (er == nil) {
				t.Fatalf("admit %d: memoized err %v, restree err %v", i, em, er)
			}
			if gm != gr {
				t.Fatalf("admit %d: memoized grant %d, restree grant %d", i, gm, gr)
			}
			if em == nil {
				live = append(live, r)
			}
		}
	}
	if mem.Len() != res.Len() {
		t.Errorf("Len: memoized %d vs restree %d", mem.Len(), res.Len())
	}
	if a, b := mem.AllocatedKbps(3), res.AllocatedKbps(3); a != b {
		t.Errorf("AllocatedKbps: memoized %d vs restree %d", a, b)
	}
}

// TestRestreeTimedExpiry: timed reservations stop consuming bandwidth once
// their window ends, without an explicit Release.
func TestRestreeTimedExpiry(t *testing.T) {
	as := testAS(t, 2, 100_000)
	now := uint32(1000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: 4, HorizonEpochs: 64,
		Clock: func() uint32 { return now },
	})
	r1 := req(1, ia(1, 10), 1, 2, 0, 40_000)
	r1.ExpT = now + 60
	if _, err := res.AdmitSegR(r1); err != nil {
		t.Fatalf("admit r1: %v", err)
	}
	if got := res.AllocatedKbps(2); got != 40_000 {
		t.Fatalf("allocated = %d, want 40000", got)
	}
	// Before expiry the second reservation competes with the first.
	r2 := req(2, ia(1, 11), 1, 2, 0, 40_000)
	r2.ExpT = now + 60
	g2, err := res.AdmitSegR(r2)
	if err != nil {
		t.Fatalf("admit r2: %v", err)
	}
	if g2 >= 40_000 {
		t.Fatalf("competing grant = %d, want < 40000", g2)
	}
	// Jump past both expiries: the next admission sees a clean slate.
	now += 120
	if res.Len() != 0 {
		t.Fatalf("Len after expiry = %d, want 0", res.Len())
	}
	r3 := req(3, ia(1, 12), 1, 2, 0, 40_000)
	r3.ExpT = now + 60
	g3, err := res.AdmitSegR(r3)
	if err != nil {
		t.Fatalf("admit r3: %v", err)
	}
	if g3 != 40_000 {
		t.Fatalf("post-expiry grant = %d, want full 40000", g3)
	}
	if got := res.AllocatedKbps(2); got != 40_000 {
		t.Fatalf("allocated after expiry = %d, want 40000", got)
	}
}

// TestRestreeRenewTruncates: renewing a timed reservation moves its charge to
// the new window (seamless transition, §4.2) — the old tail is freed.
func TestRestreeRenewTruncates(t *testing.T) {
	as := testAS(t, 2, 100_000)
	now := uint32(1000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: 4, HorizonEpochs: 64,
		Clock: func() uint32 { return now },
	})
	r := req(1, ia(1, 10), 1, 2, 0, 10_000)
	r.ExpT = now + 40
	if _, err := res.AdmitSegR(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	now += 20
	r.ExpT = now + 40
	if _, err := res.RenewSegR(r); err != nil {
		t.Fatalf("renew: %v", err)
	}
	// The old expiry epoch passes; the renewed reservation must survive.
	now += 25
	if res.Len() != 1 {
		t.Fatalf("Len after old-window expiry = %d, want 1", res.Len())
	}
	now += 20
	if res.Len() != 0 {
		t.Fatalf("Len after renewed-window expiry = %d, want 0", res.Len())
	}
}

func TestRestreeWindowValidation(t *testing.T) {
	as := testAS(t, 2, 100_000)
	now := uint32(10_000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: 4, HorizonEpochs: 32,
		Clock: func() uint32 { return now },
	})
	r := req(1, ia(1, 10), 1, 2, 0, 100)
	r.ExpT = now - 8 // already past
	if _, err := res.AdmitSegR(r); !errors.Is(err, ErrWindow) {
		t.Fatalf("past-window err = %v, want ErrWindow", err)
	}
	r.ExpT = now + 32*4 + 8 // beyond horizon
	if _, err := res.AdmitSegR(r); !errors.Is(err, ErrWindow) {
		t.Fatalf("over-horizon err = %v, want ErrWindow", err)
	}
}

func TestRestreeRenewRollback(t *testing.T) {
	as := testAS(t, 2, 100_000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{})
	r := req(1, ia(1, 10), 1, 2, 0, 5_000)
	g, err := res.AdmitSegR(r)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	// A renewal demanding more than the link with MinKbps above any possible
	// grant must fail and leave the old reservation intact.
	bad := r
	bad.MaxKbps = 90_000
	bad.MinKbps = 90_000
	if _, err := res.RenewSegR(bad); !errors.Is(err, ErrBelowMinimum) {
		t.Fatalf("renew err = %v, want ErrBelowMinimum", err)
	}
	if got := res.GrantOf(r.ID); got != g {
		t.Fatalf("grant after failed renew = %d, want %d", got, g)
	}
	if got := res.AllocatedKbps(2); got != g {
		t.Fatalf("allocated after failed renew = %d, want %d", got, g)
	}
	// Undo of a successful renewal restores the old snapshot too.
	ok := r
	ok.MaxKbps = 7_000
	_, undo, err := res.RenewSegRWithUndo(ok)
	if err != nil {
		t.Fatalf("renew with undo: %v", err)
	}
	undo()
	if got := res.GrantOf(r.ID); got != g {
		t.Fatalf("grant after undo = %d, want %d", got, g)
	}
}

// TestRestreeSteadyStateZeroAlloc: the renewal churn path — the steady state
// of a control plane at fixed population — must not allocate.
func TestRestreeSteadyStateZeroAlloc(t *testing.T) {
	as := testAS(t, 2, 100_000_000)
	now := uint32(100_000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: 4, HorizonEpochs: 128,
		Clock: func() uint32 { return now },
	})
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = req(uint32(i+1), ia(1, topology.ASID(10+i%16)), 1, 2, 0, uint64(100+i))
		reqs[i].ExpT = now + 300
		if _, err := res.AdmitSegR(reqs[i]); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	renewAll := func() {
		now += 30
		for i := range reqs {
			reqs[i].ExpT = now + 300
			if _, err := res.RenewSegR(reqs[i]); err != nil {
				t.Fatal("renew failed")
			}
		}
	}
	// Warm up heap and map capacity through several full renewal waves.
	for w := 0; w < 20; w++ {
		renewAll()
	}
	if n := testing.AllocsPerRun(50, renewAll); n != 0 {
		t.Fatalf("steady-state renewal churn allocates %.1f/run, want 0", n)
	}
}

// TestRestreeDemandProfile exercises the telemetry snapshot iterator.
func TestRestreeDemandProfile(t *testing.T) {
	as := testAS(t, 2, 100_000)
	now := uint32(1000)
	res := NewRestreeState(as, DefaultSplit, RestreeConfig{
		EpochSeconds: 4, HorizonEpochs: 64,
		Clock: func() uint32 { return now },
	})
	r := req(1, ia(1, 10), 1, 2, 0, 9_000)
	r.ExpT = now + 16
	if _, err := res.AdmitSegR(r); err != nil {
		t.Fatalf("admit: %v", err)
	}
	var peak int64
	var epochs int
	res.DemandProfile(1, now, now+16, func(_ restree.Epoch, d int64) {
		epochs++
		if d > peak {
			peak = d
		}
	})
	if epochs != 4 {
		t.Fatalf("profile epochs = %d, want 4", epochs)
	}
	if peak != 9_000 {
		t.Fatalf("profile peak = %d, want 9000", peak)
	}
}
