package admission

import (
	"errors"
	"math"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/restree"
	"colibri/internal/topology"
)

// Restree admission errors.
var (
	// ErrWindow is returned for a timed request whose validity window is
	// empty or longer than the configured horizon.
	ErrWindow = errors.New("admission: reservation window outside restree horizon")
	// ErrRaiseGrant is returned by AdjustGrant when asked to raise a grant
	// above the admitted value.
	ErrRaiseGrant = errors.New("admission: cannot raise grant above admitted value")
)

// RestreeConfig parameterizes RestreeState.
type RestreeConfig struct {
	// EpochSeconds is the time-discretization granularity (default 4 s). A
	// timed reservation is charged from the epoch containing its start to
	// the epoch containing its expiry (rounded up), so demand is over-
	// counted by at most one epoch on either side — never under-counted.
	EpochSeconds uint32
	// HorizonEpochs is the ring size of each demand tree (default 256,
	// rounded up to a power of two). EpochSeconds*HorizonEpochs must cover
	// the longest reservation lifetime; the defaults cover SegR lifetimes
	// (300 s) more than 3×.
	HorizonEpochs int
	// Clock supplies control-plane time in Unix seconds. It drives the
	// automatic expiry of timed reservations and the default start of
	// requests with StartT == 0. A nil clock pins time at 0: timed
	// reservations then never auto-expire and must be released explicitly.
	Clock func() uint32
}

// rsEntry is the admitted snapshot, extended with the charged epoch window.
type rsEntry struct {
	req   Request
	adj   float64
	grant uint64
	// start/end are the charged epochs; timed reservations are also queued
	// on the expiry heap under seq.
	start, end restree.Epoch
	timed      bool
	seq        uint64
}

// rsExp is an expiry-heap element (lazy, like restree.Ledger's).
type rsExp struct {
	end restree.Epoch
	seq uint64
	id  reservation.ID
}

// RestreeState implements bounded-tube-fairness admission with segment-tree
// demand profiles over discretized time (package restree): the demIn, demTube
// and demSrc aggregates of the memoized State become range-max queries over
// the request's validity window, so admission is O(log n) in the horizon and
// — unlike the memoized implementation — expired reservations stop consuming
// bandwidth without an explicit release.
//
// Grant equivalence with *State: the three demand aggregates are sums of
// integer kbps values, which the trees keep exactly (int64) and which float64
// represents exactly below 2⁵³ — so for workloads where every live
// reservation covers the query window (untimed requests, or timed requests
// all starting "now"), the computed grants are bit-identical to the memoized
// implementation's. The adjusted-demand total adjEg is a sum of non-integer
// floats whose value depends on operation order; it stays a scalar updated in
// the same order as State's, preserving exactness. This is what
// FuzzAdmissionEquivalence locks in.
//
// All methods are safe for concurrent use.
type RestreeState struct {
	mu sync.Mutex

	epochSec uint32
	horizon  int
	clock    func() uint32

	capIn, capEg map[topology.IfID]float64
	tubeCap      map[tubeKey]float64

	demIn   map[topology.IfID]*restree.Tree // demand profile per ingress
	demTube map[tubeKey]*restree.Tree       // demand profile per (in,eg)
	demSrc  map[srcEgKey]*restree.Tree      // demand profile per (source,eg)
	adjEg   map[topology.IfID]float64       // Σ adjusted demand per egress
	allocEg map[topology.IfID]uint64        // Σ granted per egress

	entries map[reservation.ID]rsEntry
	seq     uint64
	heap    []rsExp // min-heap by (end, seq); lazy elements like restree.Ledger
}

// NewRestreeState builds restree-backed admission state for the AS,
// deriving per-interface reservable capacities exactly as NewState does.
func NewRestreeState(as *topology.AS, split TrafficSplit, cfg RestreeConfig) *RestreeState {
	if cfg.EpochSeconds == 0 {
		cfg.EpochSeconds = 4
	}
	if cfg.HorizonEpochs == 0 {
		cfg.HorizonEpochs = 256
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() uint32 { return 0 }
	}
	st := &RestreeState{
		epochSec: cfg.EpochSeconds,
		horizon:  cfg.HorizonEpochs,
		clock:    clock,
		capIn:    make(map[topology.IfID]float64, len(as.Interfaces)+1),
		capEg:    make(map[topology.IfID]float64, len(as.Interfaces)+1),
		tubeCap:  make(map[tubeKey]float64),
		demIn:    make(map[topology.IfID]*restree.Tree),
		demTube:  make(map[tubeKey]*restree.Tree),
		demSrc:   make(map[srcEgKey]*restree.Tree),
		adjEg:    make(map[topology.IfID]float64),
		allocEg:  make(map[topology.IfID]uint64),
		entries:  make(map[reservation.ID]rsEntry),
	}
	for _, id := range as.SortedIfIDs() {
		c := float64(split.EERShare(as.Interfaces[id].CapacityKbps()))
		st.capIn[id] = c
		st.capEg[id] = c
	}
	internal := math.Inf(1)
	if as.InternalCapacityKbps > 0 {
		internal = float64(split.EERShare(as.InternalCapacityKbps))
	}
	st.capIn[0] = internal
	st.capEg[0] = internal
	return st
}

// SetTubeCapKbps overrides the capacity of one ingress→egress tube.
func (st *RestreeState) SetTubeCapKbps(in, eg topology.IfID, capKbps uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tubeCap[tubeKey{in, eg}] = float64(capKbps)
}

// window maps a request to its charged epoch interval. Untimed requests
// (ExpT == 0) report timed == false and charge the whole ring.
func (st *RestreeState) window(req Request, now uint32) (start, end restree.Epoch, timed bool, err error) {
	if req.ExpT == 0 {
		return 0, 0, false, nil
	}
	sT := req.StartT
	if sT == 0 {
		sT = now
	}
	start = restree.Epoch(sT / st.epochSec)
	end = restree.Epoch((uint64(req.ExpT) + uint64(st.epochSec) - 1) / uint64(st.epochSec))
	if end <= start || int(end-start) > st.horizon {
		return 0, 0, true, ErrWindow
	}
	return start, end, true, nil
}

// tree lookups; creation is a setup-path cost, the steady state only reads.
func treeFor[K comparable](m map[K]*restree.Tree, k K, horizon int) *restree.Tree {
	t := m[k]
	if t == nil {
		t = restree.NewTree(horizon)
		m[k] = t
	}
	return t
}

// winMax reads a demand profile over the request window (0 for absent trees).
//
//colibri:nomalloc
func winMax[K comparable](m map[K]*restree.Tree, k K, start, end restree.Epoch, timed bool) int64 {
	t := m[k]
	if t == nil {
		return 0
	}
	if timed {
		return t.Max(start, end)
	}
	return t.MaxAll()
}

// charge adds (or with negative delta, removes) demand over an entry window.
func (st *RestreeState) charge(e *rsEntry, delta int64) {
	tIn := treeFor(st.demIn, e.req.In, st.horizon)
	tTube := treeFor(st.demTube, tubeKey{e.req.In, e.req.Eg}, st.horizon)
	tSrc := treeFor(st.demSrc, srcEgKey{e.req.Src, e.req.Eg}, st.horizon)
	if e.timed {
		tIn.Add(e.start, e.end, delta)
		tTube.Add(e.start, e.end, delta)
		tSrc.Add(e.start, e.end, delta)
		return
	}
	tIn.AddAll(delta)
	tTube.AddAll(delta)
	tSrc.AddAll(delta)
}

// AdmitSegR runs bounded-tube-fairness admission over the request's validity
// window and records the reservation on success.
func (st *RestreeState) AdmitSegR(req Request) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.clock()
	st.advanceLocked(now)
	return st.admitLocked(req, now)
}

//colibri:nomalloc
func (st *RestreeState) admitLocked(req Request, now uint32) (uint64, error) {
	if req.MaxKbps == 0 {
		return 0, ErrZeroDemand
	}
	if _, ok := st.entries[req.ID]; ok {
		return 0, ErrDuplicate
	}
	capIn, ok := st.capIn[req.In]
	if !ok {
		return 0, ErrUnknownIf
	}
	capEg, ok := st.capEg[req.Eg]
	if !ok {
		return 0, ErrUnknownIf
	}
	tk := tubeKey{req.In, req.Eg}
	if tc, ok := st.tubeCap[tk]; ok && tc < capEg {
		capEg = tc
	}
	start, end, timed, err := st.window(req, now)
	if err != nil {
		return 0, err
	}

	d := float64(req.MaxKbps)
	sk := srcEgKey{req.Src, req.Eg}

	// The same three-step scale chain as State.admitLocked, with each
	// aggregate answered by a range-max query over the request window
	// instead of a scalar.
	dIn := float64(winMax(st.demIn, req.In, start, end, timed))
	dTube := float64(winMax(st.demTube, tk, start, end, timed))
	dSrc := float64(winMax(st.demSrc, sk, start, end, timed))

	fIn := scale(capIn, dIn+d)
	fTube := scale(capEg, fIn*(dTube+d))
	fSrc := scale(capEg, dSrc+d)
	adj := d * fIn * fTube * fSrc

	totalAdj := st.adjEg[req.Eg] + adj
	share := 0.0
	if totalAdj > 0 {
		share = capEg * adj / totalAdj
	}
	free := capEg - float64(st.allocEg[req.Eg])
	if free < 0 {
		free = 0
	}
	grant := math.Min(d, math.Min(share, free))
	g := uint64(grant)
	if g < req.MinKbps {
		return 0, ErrBelowMinimum
	}

	st.seq++
	e := rsEntry{req: req, adj: adj, grant: g, start: start, end: end, timed: timed, seq: st.seq}
	st.charge(&e, int64(req.MaxKbps))
	st.adjEg[req.Eg] += adj
	st.allocEg[req.Eg] += g
	st.entries[req.ID] = e
	if timed {
		st.heap = append(st.heap, rsExp{end: end, seq: e.seq, id: req.ID})
		st.heapUp(len(st.heap) - 1)
	}
	return g, nil
}

// Release removes an admitted reservation. Unknown IDs (including those
// already auto-expired) are a no-op.
func (st *RestreeState) Release(id reservation.ID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.advanceLocked(st.clock())
	st.releaseLocked(id)
}

//colibri:nomalloc
func (st *RestreeState) releaseLocked(id reservation.ID) {
	e, ok := st.entries[id]
	if !ok {
		return
	}
	st.charge(&e, -int64(e.req.MaxKbps))
	st.adjEg[e.req.Eg] = clampNonNeg(st.adjEg[e.req.Eg] - e.adj)
	if st.allocEg[e.req.Eg] >= e.grant {
		st.allocEg[e.req.Eg] -= e.grant
	} else {
		st.allocEg[e.req.Eg] = 0
	}
	delete(st.entries, id)
	// A timed entry's heap element goes stale and is skipped by advance.
}

// restoreLocked re-admits a snapshot verbatim, bypassing the proportional
// computation (failed-renewal rollback). The entry keeps its seq, so a stale
// heap element left by releaseLocked becomes valid again.
func (st *RestreeState) restoreLocked(old rsEntry) {
	st.charge(&old, int64(old.req.MaxKbps))
	st.adjEg[old.req.Eg] += old.adj
	st.allocEg[old.req.Eg] += old.grant
	st.entries[old.req.ID] = old
}

// advanceLocked releases every timed reservation whose window ended at or
// before now, in (expiry epoch, admission order) order.
//
//colibri:nomalloc
func (st *RestreeState) advanceLocked(now uint32) {
	cur := restree.Epoch(now / st.epochSec)
	for len(st.heap) > 0 && st.heap[0].end <= cur {
		top := st.heap[0]
		st.heapPop()
		e, ok := st.entries[top.id]
		if !ok || e.seq != top.seq {
			continue // stale: renewed, released, or restored under a new seq
		}
		st.releaseLocked(top.id)
	}
}

// RenewSegR re-admits an existing reservation with fresh scale factors and a
// fresh validity window; on failure the old snapshot is restored. Unlike
// RenewSegRWithUndo this path builds no undo closure, keeping the steady-
// state renewal churn allocation-free (cserv.CPlane.RenewBatch runs here).
//
//colibri:nomalloc
func (st *RestreeState) RenewSegR(req Request) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.clock()
	st.advanceLocked(now)
	old, had := st.entries[req.ID]
	if had {
		st.releaseLocked(req.ID)
	}
	g, err := st.admitLocked(req, now)
	if err != nil {
		if had {
			st.restoreLocked(old)
		}
		return 0, err
	}
	return g, nil
}

// RenewSegRWithUndo is RenewSegR returning an undo closure restoring the
// pre-renewal snapshot. The closure must run promptly (within the old
// window), as on every implementation of Admitter.
func (st *RestreeState) RenewSegRWithUndo(req Request) (grant uint64, undo func(), err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.clock()
	st.advanceLocked(now)
	old, had := st.entries[req.ID]
	if had {
		st.releaseLocked(req.ID)
	}
	g, err := st.admitLocked(req, now)
	if err != nil {
		if had {
			st.restoreLocked(old)
		}
		return 0, nil, err
	}
	if !had {
		id := req.ID
		return g, func() {
			st.mu.Lock()
			defer st.mu.Unlock()
			st.releaseLocked(id)
		}, nil
	}
	id := req.ID
	return g, func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		st.releaseLocked(id)
		st.restoreLocked(old)
	}, nil
}

// AdjustGrant lowers a reservation's recorded grant to the final backward-
// pass value, freeing the difference at the egress.
func (st *RestreeState) AdjustGrant(id reservation.ID, finalKbps uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok {
		return reservation.ErrNotFound
	}
	if finalKbps > e.grant {
		return ErrRaiseGrant
	}
	st.allocEg[e.req.Eg] -= e.grant - finalKbps
	e.grant = finalKbps
	st.entries[id] = e
	return nil
}

// AllocatedKbps returns the total granted bandwidth at an egress.
func (st *RestreeState) AllocatedKbps(eg topology.IfID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.allocEg[eg]
}

// GrantOf returns the recorded grant for a reservation (0 if unknown).
func (st *RestreeState) GrantOf(id reservation.ID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.entries[id].grant
}

// Len returns the number of live reservations (after expiring due ones).
func (st *RestreeState) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.advanceLocked(st.clock())
	return len(st.entries)
}

// DemandProfile iterates the per-epoch demand of one ingress interface over
// [fromT, toT) — the telemetry snapshot iterator, exposing the tree contents
// without copying.
func (st *RestreeState) DemandProfile(in topology.IfID, fromT, toT uint32, f func(e restree.Epoch, kbps int64)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.demIn[in]
	if t == nil {
		return
	}
	start := restree.Epoch(fromT / st.epochSec)
	end := restree.Epoch((uint64(toT) + uint64(st.epochSec) - 1) / uint64(st.epochSec))
	if end <= start {
		end = start + 1
	}
	t.Snapshot(start, end, f)
}

// heap helpers: min-heap by (end, seq) with lazy invalidation.

func (st *RestreeState) heapLess(i, j int) bool {
	if st.heap[i].end != st.heap[j].end {
		return st.heap[i].end < st.heap[j].end
	}
	return st.heap[i].seq < st.heap[j].seq
}

//colibri:nomalloc
func (st *RestreeState) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !st.heapLess(i, p) {
			return
		}
		st.heap[i], st.heap[p] = st.heap[p], st.heap[i]
		i = p
	}
}

//colibri:nomalloc
func (st *RestreeState) heapPop() {
	last := len(st.heap) - 1
	st.heap[0] = st.heap[last]
	st.heap[last] = rsExp{}
	st.heap = st.heap[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			return
		}
		if c+1 < last && st.heapLess(c+1, c) {
			c++
		}
		if !st.heapLess(c, i) {
			return
		}
		st.heap[i], st.heap[c] = st.heap[c], st.heap[i]
		i = c
	}
}
