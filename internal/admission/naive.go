package admission

import (
	"fmt"
	"math"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// NaiveState is the reference implementation of the same bounded-tube-
// fairness admission without memoization: every admission recomputes the
// ingress, tube, and per-source aggregates by iterating all existing
// reservations — O(n) per request. It exists to (a) cross-check the memoized
// and restree implementations and (b) quantify, in the ablation benchmarks,
// the design choice that makes Fig. 3's constant-time admission possible
// ("this result required the careful application of memoization", §6.2).
//
// Iteration follows insertion order (the order slice), not map order, so the
// floating-point adjusted-demand sum is deterministic and differential fuzz
// failures reproduce.
type NaiveState struct {
	mu      sync.Mutex
	capIn   map[topology.IfID]float64
	capEg   map[topology.IfID]float64
	tubeCap map[tubeKey]float64
	entries map[reservation.ID]entry
	order   []reservation.ID // insertion order of live entries
	allocEg map[topology.IfID]uint64
}

// NewNaiveState mirrors NewState.
func NewNaiveState(as *topology.AS, split TrafficSplit) *NaiveState {
	st := &NaiveState{
		capIn:   make(map[topology.IfID]float64),
		capEg:   make(map[topology.IfID]float64),
		tubeCap: make(map[tubeKey]float64),
		entries: make(map[reservation.ID]entry),
		allocEg: make(map[topology.IfID]uint64),
	}
	for _, id := range as.SortedIfIDs() {
		c := float64(split.EERShare(as.Interfaces[id].CapacityKbps()))
		st.capIn[id] = c
		st.capEg[id] = c
	}
	st.capIn[0] = math.Inf(1)
	st.capEg[0] = math.Inf(1)
	return st
}

// SetTubeCapKbps overrides the capacity of one ingress→egress tube.
func (st *NaiveState) SetTubeCapKbps(in, eg topology.IfID, capKbps uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tubeCap[tubeKey{in, eg}] = float64(capKbps)
}

// AdmitSegR recomputes all aggregates from scratch, then applies the same
// formulas as State.admitLocked.
func (st *NaiveState) AdmitSegR(req Request) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.admitLocked(req)
}

func (st *NaiveState) admitLocked(req Request) (uint64, error) {
	if req.MaxKbps == 0 {
		return 0, ErrZeroDemand
	}
	if _, ok := st.entries[req.ID]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicate, req.ID)
	}
	capIn, ok := st.capIn[req.In]
	if !ok {
		return 0, fmt.Errorf("%w: ingress %d", ErrUnknownIf, req.In)
	}
	capEg, ok := st.capEg[req.Eg]
	if !ok {
		return 0, fmt.Errorf("%w: egress %d", ErrUnknownIf, req.Eg)
	}
	if tc, ok := st.tubeCap[tubeKey{req.In, req.Eg}]; ok && tc < capEg {
		capEg = tc
	}
	d := float64(req.MaxKbps)

	// The O(n) pass the memoized implementation avoids.
	var demIn, demTube, demSrc, adjEg float64
	for _, id := range st.order {
		e := st.entries[id]
		if e.req.In == req.In {
			demIn += float64(e.req.MaxKbps)
		}
		if e.req.In == req.In && e.req.Eg == req.Eg {
			demTube += float64(e.req.MaxKbps)
		}
		if e.req.Src == req.Src && e.req.Eg == req.Eg {
			demSrc += float64(e.req.MaxKbps)
		}
		if e.req.Eg == req.Eg {
			adjEg += e.adj
		}
	}

	fIn := scale(capIn, demIn+d)
	fTube := scale(capEg, fIn*(demTube+d))
	fSrc := scale(capEg, demSrc+d)
	adj := d * fIn * fTube * fSrc

	totalAdj := adjEg + adj
	share := 0.0
	if totalAdj > 0 {
		share = capEg * adj / totalAdj
	}
	free := capEg - float64(st.allocEg[req.Eg])
	if free < 0 {
		free = 0
	}
	g := uint64(math.Min(d, math.Min(share, free)))
	if g < req.MinKbps {
		return 0, fmt.Errorf("%w: computed %d kbps < minimum %d kbps", ErrBelowMinimum, g, req.MinKbps)
	}
	st.allocEg[req.Eg] += g
	st.entries[req.ID] = entry{req: req, adj: adj, grant: g}
	st.order = append(st.order, req.ID)
	return g, nil
}

// Release removes a reservation.
func (st *NaiveState) Release(id reservation.ID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.releaseLocked(id)
}

func (st *NaiveState) releaseLocked(id reservation.ID) {
	e, ok := st.entries[id]
	if !ok {
		return
	}
	if st.allocEg[e.req.Eg] >= e.grant {
		st.allocEg[e.req.Eg] -= e.grant
	} else {
		st.allocEg[e.req.Eg] = 0
	}
	delete(st.entries, id)
	for i, oid := range st.order {
		if oid == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// RenewSegR re-admits an existing reservation with fresh scale factors; on
// failure the old snapshot is restored.
func (st *NaiveState) RenewSegR(req Request) (uint64, error) {
	g, _, err := st.RenewSegRWithUndo(req)
	return g, err
}

// RenewSegRWithUndo is RenewSegR returning an undo closure that restores the
// pre-renewal snapshot. Restoration re-appends the entry, so its position in
// the naive iteration order moves to the end — the recomputed aggregates are
// the same set-sum either way.
func (st *NaiveState) RenewSegRWithUndo(req Request) (grant uint64, undo func(), err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old, had := st.entries[req.ID]
	if had {
		st.releaseLocked(req.ID)
	}
	restore := func() {
		st.allocEg[old.req.Eg] += old.grant
		st.entries[old.req.ID] = old
		st.order = append(st.order, old.req.ID)
	}
	g, err := st.admitLocked(req)
	if err != nil {
		if had {
			restore()
		}
		return 0, nil, err
	}
	id := req.ID
	if !had {
		return g, func() {
			st.mu.Lock()
			defer st.mu.Unlock()
			st.releaseLocked(id)
		}, nil
	}
	return g, func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		st.releaseLocked(id)
		restore()
	}, nil
}

// AdjustGrant lowers a reservation's recorded grant to the final backward-
// pass value, freeing the difference at the egress.
func (st *NaiveState) AdjustGrant(id reservation.ID, finalKbps uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok {
		return fmt.Errorf("admission: unknown reservation %s", id)
	}
	if finalKbps > e.grant {
		return fmt.Errorf("admission: cannot raise grant of %s from %d to %d", id, e.grant, finalKbps)
	}
	st.allocEg[e.req.Eg] -= e.grant - finalKbps
	e.grant = finalKbps
	st.entries[id] = e
	return nil
}

// AllocatedKbps returns the total granted bandwidth at an egress.
func (st *NaiveState) AllocatedKbps(eg topology.IfID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.allocEg[eg]
}

// GrantOf returns the recorded grant for a reservation (0 if unknown).
func (st *NaiveState) GrantOf(id reservation.ID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.entries[id].grant
}

// Len returns the number of admitted reservations.
func (st *NaiveState) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}
