package admission

import (
	"fmt"
	"math"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// NaiveState is the reference implementation of the same bounded-tube-
// fairness admission without memoization: every admission recomputes the
// ingress, tube, and per-source aggregates by iterating all existing
// reservations — O(n) per request. It exists to (a) cross-check State's
// memoized aggregates and (b) quantify, in the ablation benchmarks, the
// design choice that makes Fig. 3's constant-time admission possible
// ("this result required the careful application of memoization", §6.2).
type NaiveState struct {
	mu      sync.Mutex
	capIn   map[topology.IfID]float64
	capEg   map[topology.IfID]float64
	entries map[reservation.ID]entry
	allocEg map[topology.IfID]uint64
}

// NewNaiveState mirrors NewState.
func NewNaiveState(as *topology.AS, split TrafficSplit) *NaiveState {
	st := &NaiveState{
		capIn:   make(map[topology.IfID]float64),
		capEg:   make(map[topology.IfID]float64),
		entries: make(map[reservation.ID]entry),
		allocEg: make(map[topology.IfID]uint64),
	}
	for _, id := range as.SortedIfIDs() {
		c := float64(split.EERShare(as.Interfaces[id].CapacityKbps()))
		st.capIn[id] = c
		st.capEg[id] = c
	}
	st.capIn[0] = math.Inf(1)
	st.capEg[0] = math.Inf(1)
	return st
}

// AdmitSegR recomputes all aggregates from scratch, then applies the same
// formulas as State.admitLocked.
func (st *NaiveState) AdmitSegR(req Request) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if req.MaxKbps == 0 {
		return 0, ErrZeroDemand
	}
	if _, ok := st.entries[req.ID]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicate, req.ID)
	}
	capIn, ok := st.capIn[req.In]
	if !ok {
		return 0, fmt.Errorf("%w: ingress %d", ErrUnknownIf, req.In)
	}
	capEg, ok := st.capEg[req.Eg]
	if !ok {
		return 0, fmt.Errorf("%w: egress %d", ErrUnknownIf, req.Eg)
	}
	d := float64(req.MaxKbps)

	// The O(n) pass the memoized implementation avoids.
	var demIn, demTube, demSrc, adjEg float64
	for _, e := range st.entries {
		if e.req.In == req.In {
			demIn += float64(e.req.MaxKbps)
		}
		if e.req.In == req.In && e.req.Eg == req.Eg {
			demTube += float64(e.req.MaxKbps)
		}
		if e.req.Src == req.Src && e.req.Eg == req.Eg {
			demSrc += float64(e.req.MaxKbps)
		}
		if e.req.Eg == req.Eg {
			adjEg += e.adj
		}
	}

	fIn := scale(capIn, demIn+d)
	fTube := scale(capEg, fIn*(demTube+d))
	fSrc := scale(capEg, demSrc+d)
	adj := d * fIn * fTube * fSrc

	share := capEg * adj / (adjEg + adj)
	free := capEg - float64(st.allocEg[req.Eg])
	if free < 0 {
		free = 0
	}
	g := uint64(math.Min(d, math.Min(share, free)))
	if g < req.MinKbps {
		return 0, fmt.Errorf("%w: computed %d kbps < minimum %d kbps", ErrBelowMinimum, g, req.MinKbps)
	}
	st.allocEg[req.Eg] += g
	st.entries[req.ID] = entry{req: req, adj: adj, grant: g}
	return g, nil
}

// Release removes a reservation.
func (st *NaiveState) Release(id reservation.ID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok {
		return
	}
	if st.allocEg[e.req.Eg] >= e.grant {
		st.allocEg[e.req.Eg] -= e.grant
	}
	delete(st.entries, id)
}

// Len returns the number of admitted reservations.
func (st *NaiveState) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}
