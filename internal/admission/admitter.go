package admission

import (
	"fmt"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// Admitter is the SegR admission interface the control plane programs
// against. Three implementations exist, validated differentially against each
// other (TestRestreeMatchesMemoized, FuzzAdmissionEquivalence):
//
//   - *State: memoized aggregates, O(1) per admission (the paper's design).
//   - *NaiveState: recomputes aggregates per admission, O(n) — the ablation
//     baseline.
//   - *RestreeState: segment-tree demand profiles over discretized time,
//     O(log n) per admission with automatic expiry of timed reservations.
type Admitter interface {
	// AdmitSegR admits one request, returning the granted bandwidth.
	AdmitSegR(req Request) (uint64, error)
	// RenewSegR re-admits an existing reservation with fresh scale factors;
	// on failure the previous reservation survives untouched.
	RenewSegR(req Request) (uint64, error)
	// RenewSegRWithUndo is RenewSegR returning an undo closure that restores
	// the pre-renewal snapshot (nil when there was nothing to restore).
	RenewSegRWithUndo(req Request) (grant uint64, undo func(), err error)
	// Release removes a reservation; unknown IDs are a no-op.
	Release(id reservation.ID)
	// AdjustGrant lowers a reservation's grant to the backward-pass minimum.
	AdjustGrant(id reservation.ID, finalKbps uint64) error
	// SetTubeCapKbps overrides the capacity of one ingress→egress tube.
	SetTubeCapKbps(in, eg topology.IfID, capKbps uint64)
	// AllocatedKbps returns the total granted bandwidth at an egress.
	AllocatedKbps(eg topology.IfID) uint64
	// GrantOf returns the recorded grant for a reservation (0 if unknown).
	GrantOf(id reservation.ID) uint64
	// Len returns the number of admitted reservations.
	Len() int
}

// Implementation names accepted by NewAdmitter (and cserv.Config /
// cserv.CPlaneConfig).
const (
	ImplMemoized = "memoized"
	ImplNaive    = "naive"
	ImplRestree  = "restree"
)

// NewAdmitter builds the named admission implementation for an AS. The empty
// string selects the memoized default. clock (may be nil) supplies control-
// plane time to implementations that expire timed reservations; the memoized
// and naive implementations ignore it.
func NewAdmitter(impl string, as *topology.AS, split TrafficSplit, clock func() uint32) (Admitter, error) {
	switch impl {
	case "", ImplMemoized:
		return NewState(as, split), nil
	case ImplNaive:
		return NewNaiveState(as, split), nil
	case ImplRestree:
		return NewRestreeState(as, split, RestreeConfig{Clock: clock}), nil
	default:
		return nil, fmt.Errorf("admission: unknown implementation %q", impl)
	}
}

var (
	_ Admitter = (*State)(nil)
	_ Admitter = (*NaiveState)(nil)
	_ Admitter = (*RestreeState)(nil)
)
