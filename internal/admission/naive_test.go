package admission

import (
	"math/rand"
	"testing"

	"colibri/internal/topology"
)

// TestNaiveMatchesMemoized cross-checks the memoized implementation: for a
// random sequence of admissions and releases, both implementations must
// produce identical grants (the memoization is exact, not approximate).
func TestNaiveMatchesMemoized(t *testing.T) {
	as := testAS(t, 3, 100_000)
	fast := NewState(as, DefaultSplit)
	slow := NewNaiveState(as, DefaultSplit)
	rng := rand.New(rand.NewSource(99))
	var live []Request
	for i := 0; i < 1500; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			fast.Release(live[k].ID)
			slow.Release(live[k].ID)
			live = append(live[:k], live[k+1:]...)
			continue
		}
		r := req(uint32(i+1), ia(1, topology.ASID(10+rng.Intn(40))),
			topology.IfID(rng.Intn(2)+1), 3, 0, uint64(1+rng.Intn(20_000)))
		gf, ef := fast.AdmitSegR(r)
		gs, es := slow.AdmitSegR(r)
		if (ef == nil) != (es == nil) {
			t.Fatalf("iteration %d: fast err %v, slow err %v", i, ef, es)
		}
		if gf != gs {
			t.Fatalf("iteration %d: fast grant %d, slow grant %d", i, gf, gs)
		}
		if ef == nil {
			live = append(live, r)
		}
	}
	if fast.Len() != slow.Len() {
		t.Errorf("Len: %d vs %d", fast.Len(), slow.Len())
	}
}

// BenchmarkAblationNaiveVsMemoized quantifies the Fig. 3 design choice: the
// naive O(n) admission vs. the memoized O(1) one at 10 000 existing SegRs.
func BenchmarkAblationNaiveVsMemoized(b *testing.B) {
	populate := func(admit func(Request) (uint64, error)) {
		for i := uint32(0); i < 10_000; i++ {
			r := req(i, ia(1, topology.ASID(10+i%100)), 1, 2, 0, 10)
			if _, err := admit(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	probe := req(1<<30, ia(1, 7), 1, 2, 0, 10)

	b.Run("memoized", func(b *testing.B) {
		st := NewState(testAS(b, 2, 100_000_000), DefaultSplit)
		populate(st.AdmitSegR)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.AdmitSegR(probe); err != nil {
				b.Fatal(err)
			}
			st.Release(probe.ID)
		}
	})
	b.Run("naive", func(b *testing.B) {
		st := NewNaiveState(testAS(b, 2, 100_000_000), DefaultSplit)
		populate(st.AdmitSegR)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.AdmitSegR(probe); err != nil {
				b.Fatal(err)
			}
			st.Release(probe.ID)
		}
	})
	b.Run("restree", func(b *testing.B) {
		st := NewRestreeState(testAS(b, 2, 100_000_000), DefaultSplit, RestreeConfig{})
		populate(st.AdmitSegR)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.AdmitSegR(probe); err != nil {
				b.Fatal(err)
			}
			st.Release(probe.ID)
		}
	})
}
