// Shared token reserves for the sharded data plane.
//
// When policing is split across N per-core shards, dividing a flow's rate by
// N starves bursty flows: RSS pins a flow to one shard, so that shard sees
// the flow's full packet stream but would own only 1/N of its tokens. The
// sharded monitor therefore inverts the split — shard-local buckets hold no
// refill of their own and act as pure claim caches, while the single shared
// Reserve carries the flow's FULL reserved rate and burst. A shard claims
// tokens from the reserve only on local exhaustion (one atomic CAS loop, no
// lock), optionally over-claiming a small chunk so steady traffic touches
// the shared word once every few packets instead of once per packet.
//
// This keeps both invariants at once: the aggregate across shards can never
// exceed the reserved rate (all tokens originate from the one full-rate
// reserve), and a single hot flow pinned to one shard still reaches its full
// reserved rate (that shard can claim everything).

package monitor

import (
	"math"
	"sync"
	"sync/atomic"

	"colibri/internal/reservation"
)

// microPerByte is the reserve's token granularity: tokens are kept in
// integer micro-bytes so that claims and refills are plain atomic int64
// transitions. 1 micro-byte of rounding per claim is far below any packet
// size, and int64 micro-bytes hold ~9.2 TB, far above any burst.
const microPerByte = 1e6

// Reserve is the shared token store of one flow policed across data-plane
// shards. It refills lazily on claim (the claimant that advances lastNs
// credits the elapsed interval) and is entirely lock-free: concurrent
// claimants from different shards contend only on two atomic words.
type Reserve struct {
	// tokens is the current fill in micro-bytes.
	tokens atomic.Int64
	// lastNs is the time of the last refill credit. Written only by Claim
	// (the claimant that wins the CAS advances it).
	lastNs atomic.Int64 //colibri:singlewriter
	// rateBits holds math.Float64bits of the refill rate in micro-bytes per
	// nanosecond (== rateKbps/8, conveniently).
	rateBits atomic.Uint64
	// burstMicro is the capacity in micro-bytes.
	burstMicro atomic.Int64
}

// NewReserve builds a full reserve enforcing the flow's complete reserved
// rate (not rate/N — see the package comment on why the split is inverted).
func NewReserve(rateKbps uint64, nowNs int64) *Reserve {
	r := &Reserve{}
	r.lastNs.Store(nowNs)
	r.SetRate(rateKbps)
	r.tokens.Store(r.burstMicro.Load()) // starts full, like TokenBucket
	return r
}

// SetRate updates the enforced rate and resizes the burst, like
// TokenBucket.SetRate. Rate changes are rare (EER renewals); the clamp below
// is racy against concurrent claims but only ever lowers the fill, which is
// the safe direction.
func (r *Reserve) SetRate(rateKbps uint64) {
	// kbps → micro-bytes per ns: rate * 1000 / 8 / 1e9 * 1e6 = rate / 8.
	r.rateBits.Store(math.Float64bits(float64(rateKbps) / 8))
	burst := int64(BurstBytesFor(rateKbps) * microPerByte)
	r.burstMicro.Store(burst)
	if t := r.tokens.Load(); t > burst {
		r.tokens.Store(burst)
	}
}

// Tokens returns the current fill in bytes (diagnostic; racy by nature).
func (r *Reserve) Tokens() float64 {
	return float64(r.tokens.Load()) / microPerByte
}

// Claim refills the reserve to nowNs and tries to withdraw at least
// needBytes, over-claiming up to chunkBytes extra when available so the
// caller's local cache absorbs the next few packets without touching the
// shared words. It returns the number of bytes granted: 0 if the reserve
// cannot cover needBytes (the packet does not conform anywhere — no other
// shard could have granted it either, since this is the only token source),
// otherwise a value ≥ needBytes.
//
//colibri:nomalloc
func (r *Reserve) Claim(needBytes, chunkBytes float64, nowNs int64) float64 {
	// Refill: whoever CASes lastNs forward owns the elapsed interval and
	// credits it. Timestamps need not be monotone; a stale nowNs credits
	// nothing (same lock-in as TokenBucket.Allow).
	burst := r.burstMicro.Load()
	for {
		last := r.lastNs.Load()
		if nowNs <= last {
			break
		}
		if r.lastNs.CompareAndSwap(last, nowNs) {
			rate := math.Float64frombits(r.rateBits.Load())
			credit := float64(nowNs-last) * rate
			if credit > float64(burst) {
				credit = float64(burst) // long idle: cap at capacity, no int64 overflow
			}
			if t := r.tokens.Add(int64(credit)); t > burst {
				// Clamp overshoot. A concurrent claim between the Add and
				// this correction can transiently read an above-burst fill;
				// the correction only removes the overshoot we added, so
				// tokens never go below what honest accounting allows.
				r.tokens.Add(burst - t)
			}
			break
		}
	}
	need := int64(math.Ceil(needBytes * microPerByte))
	chunk := int64(chunkBytes * microPerByte)
	for {
		cur := r.tokens.Load()
		if cur < need {
			return 0
		}
		take := need + chunk
		if take > cur {
			take = cur
		}
		if r.tokens.CompareAndSwap(cur, cur-take) {
			return float64(take) / microPerByte
		}
	}
}

// ReservePool maps reservation IDs to their shared reserves. All shard
// monitors of one sharded router/gateway share a pool; the pool's lock is
// touched only at flow creation and teardown, never per packet (shard
// buckets cache the *Reserve pointer).
type ReservePool struct {
	mu sync.Mutex
	m  map[reservation.ID]*Reserve
}

// NewReservePool builds an empty pool.
func NewReservePool() *ReservePool {
	return &ReservePool{m: make(map[reservation.ID]*Reserve)}
}

// Get returns the flow's reserve, creating it at the full rateKbps on first
// sight.
func (p *ReservePool) Get(id reservation.ID, rateKbps uint64, nowNs int64) *Reserve {
	p.mu.Lock()
	r, ok := p.m[id]
	if !ok {
		r = NewReserve(rateKbps, nowNs)
		p.m[id] = r
	}
	p.mu.Unlock()
	return r
}

// Forget drops the reserve of an expired reservation.
func (p *ReservePool) Forget(id reservation.ID) {
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

// Len returns the number of tracked reserves.
func (p *ReservePool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}
