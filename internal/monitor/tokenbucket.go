// Package monitor implements Colibri's deterministic monitoring and
// policing (§4.8): per-flow token buckets for exact rate enforcement at the
// source AS's gateway (and for flows escalated by the probabilistic
// detector), and the blocklist of offending source ASes kept by border
// routers.
package monitor

import (
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// TokenBucket enforces a byte rate with a burst allowance. As in the paper,
// it keeps only a timestamp and a counter per flow. It is not safe for
// concurrent use; FlowMonitor provides the locked map around it.
type TokenBucket struct {
	// rate is the refill rate in bytes per nanosecond.
	rate float64
	// burst is the bucket capacity in bytes.
	burst float64
	// tokens is the current fill level in bytes.
	tokens float64
	// lastNs is the time of the last refill.
	lastNs int64
	// rateKbps is the nominal reservation rate, kept for cheap change
	// detection (EER renewals) without re-deriving bytes/ns.
	rateKbps uint64

	// reserve, when non-nil, puts the bucket in shard mode: it never refills
	// itself (tokens act as a local claim cache) and draws from the flow's
	// shared full-rate Reserve on exhaustion, over-claiming up to chunk
	// extra bytes per trip. See reserve.go for why the rate is NOT split /N.
	reserve *Reserve
	// chunk is the over-claim granularity in bytes (0 = exact claims).
	chunk float64
}

// DefaultBurstSeconds sizes a flow's burst allowance relative to its rate:
// the bucket holds this many seconds worth of traffic.
const DefaultBurstSeconds = 0.1

// NewTokenBucket builds a bucket enforcing rateKbps with the given burst (in
// bytes). The bucket starts full.
func NewTokenBucket(rateKbps uint64, burstBytes float64, nowNs int64) *TokenBucket {
	rate := float64(rateKbps) * 1000 / 8 / 1e9 // kbps → bytes per ns
	return &TokenBucket{rate: rate, burst: burstBytes, tokens: burstBytes, lastNs: nowNs, rateKbps: rateKbps}
}

// newShardBucket builds a shard-mode bucket: an empty local cache in front of
// the flow's shared reserve.
func newShardBucket(r *Reserve, rateKbps uint64, chunkBytes float64) *TokenBucket {
	return &TokenBucket{reserve: r, chunk: chunkBytes, rateKbps: rateKbps}
}

// BurstBytesFor returns the default burst size for a rate.
func BurstBytesFor(rateKbps uint64) float64 {
	b := float64(rateKbps) * 1000 / 8 * DefaultBurstSeconds
	if b < 1500 {
		b = 1500 // always allow at least one full-size packet
	}
	return b
}

// Allow refills the bucket to time nowNs and consumes sizeBytes if
// available, reporting whether the packet conforms. Non-conforming packets
// consume nothing ("packets are simply dropped").
//
// Timestamps need not be monotone: a nowNs at or before the last refill
// (clock regression, reordered batches) refills nothing and must not move
// lastNs backwards — a backwards lastNs would let the next in-order packet
// double-refill the interval.
func (tb *TokenBucket) Allow(nowNs int64, sizeBytes uint32) bool {
	if tb.reserve != nil {
		need := float64(sizeBytes)
		if tb.tokens < need {
			tb.tokens += tb.reserve.Claim(need-tb.tokens, tb.chunk, nowNs)
		}
		if tb.tokens < need {
			return false
		}
		tb.tokens -= need
		return true
	}
	if nowNs > tb.lastNs {
		tb.tokens += float64(nowNs-tb.lastNs) * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.lastNs = nowNs
	}
	need := float64(sizeBytes)
	if tb.tokens < need {
		return false
	}
	tb.tokens -= need
	return true
}

// SetRate updates the enforced rate (e.g., after an EER renewal changed the
// reservation bandwidth) and resizes the burst proportionally.
func (tb *TokenBucket) SetRate(rateKbps uint64) {
	tb.rateKbps = rateKbps
	if tb.reserve != nil {
		tb.reserve.SetRate(rateKbps)
		return
	}
	tb.rate = float64(rateKbps) * 1000 / 8 / 1e9
	tb.burst = BurstBytesFor(rateKbps)
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// FlowMonitor performs deterministic per-reservation monitoring: one token
// bucket per reservation ID, with all versions of an EER sharing the bucket.
// It is safe for concurrent use.
type FlowMonitor struct {
	mu    sync.Mutex
	flows map[reservation.ID]*TokenBucket
	// gauge, when set, tracks len(flows); updated under mu. Maintained with
	// deltas (not Set) so that several shard monitors sharing one gauge sum
	// to the true flow count across the sharded data plane.
	gauge *telemetry.Gauge
	// pool, when non-nil, puts the monitor in shard mode: buckets are
	// created as local claim caches over the pool's shared full-rate
	// reserves (see reserve.go).
	pool *ReservePool
	// chunk is the shard-mode over-claim granularity in bytes.
	chunk float64
}

// NewFlowMonitor builds an empty monitor.
func NewFlowMonitor() *FlowMonitor {
	return &FlowMonitor{flows: make(map[reservation.ID]*TokenBucket)}
}

// NewShardFlowMonitor builds the per-shard flow monitor of a sharded data
// plane: buckets hold no tokens of their own and claim from the flow's
// shared reserve in pool (which enforces the full reserved rate), in chunks
// of chunkBytes beyond the immediate deficit (0 = exact claims, byte-for-
// byte equivalent to a single full-rate bucket; larger chunks amortize the
// shared-word traffic at the cost of slightly earlier token commitment).
func NewShardFlowMonitor(pool *ReservePool, chunkBytes float64) *FlowMonitor {
	return &FlowMonitor{
		flows: make(map[reservation.ID]*TokenBucket),
		pool:  pool,
		chunk: chunkBytes,
	}
}

// newBucket creates the right bucket flavor for this monitor.
func (m *FlowMonitor) newBucket(id reservation.ID, rateKbps uint64, nowNs int64) *TokenBucket {
	if m.pool != nil {
		return newShardBucket(m.pool.Get(id, rateKbps, nowNs), rateKbps, m.chunk)
	}
	return NewTokenBucket(rateKbps, BurstBytesFor(rateKbps), nowNs)
}

// SetGauge attaches an occupancy gauge tracking the number of flows this
// monitor contributes; the current count is added immediately and then
// maintained by Allow/Ensure/Forget. Attach each monitor at most once.
func (m *FlowMonitor) SetGauge(g *telemetry.Gauge) {
	m.mu.Lock()
	m.gauge = g
	if g != nil {
		g.Add(int64(len(m.flows)))
	}
	m.mu.Unlock()
}

// Allow checks a packet of sizeBytes on the reservation against rateKbps,
// creating the bucket on first sight and updating the rate when it changed.
func (m *FlowMonitor) Allow(id reservation.ID, rateKbps uint64, sizeBytes uint32, nowNs int64) bool {
	m.mu.Lock()
	tb, ok := m.flows[id]
	if !ok {
		tb = m.newBucket(id, rateKbps, nowNs)
		m.flows[id] = tb
		if m.gauge != nil {
			m.gauge.Inc()
		}
	} else if tb.rateKbps != rateKbps {
		tb.SetRate(rateKbps)
	}
	ok = tb.Allow(nowNs, sizeBytes)
	m.mu.Unlock()
	return ok
}

// AllowBatch checks a batch of same-instant packets under a single lock
// acquisition: packet i belongs to ids[i] at rates[i] kbps and has
// sizes[i] bytes; the verdicts land in allowed[i]. Entries with
// sizes[i] == 0 are holes (no packet) and are skipped with
// allowed[i] = false. All slices must have the same length.
//
// Because the whole batch shares nowNs, each bucket refills at most once
// (TokenBucket.Allow skips refill when the clock has not advanced), so the
// per-packet cost inside the lock is one map lookup and one comparison —
// the amortization the batched gateway pipeline relies on.
//
//colibri:nomalloc
func (m *FlowMonitor) AllowBatch(ids []reservation.ID, rates []uint64, sizes []uint32, nowNs int64, allowed []bool) {
	m.mu.Lock()
	for i := range ids {
		if sizes[i] == 0 {
			allowed[i] = false
			continue
		}
		tb, ok := m.flows[ids[i]]
		if !ok {
			tb = m.newBucket(ids[i], rates[i], nowNs) //colibri:allow(nomalloc) — first packet of a flow only; Ensure pre-creates at install
			m.flows[ids[i]] = tb
			if m.gauge != nil {
				m.gauge.Inc()
			}
		} else if tb.rateKbps != rates[i] {
			tb.SetRate(rates[i])
		}
		allowed[i] = tb.Allow(nowNs, sizes[i])
	}
	m.mu.Unlock()
}

// Ensure pre-creates a flow's bucket (at reservation install time), so the
// per-packet path never allocates.
func (m *FlowMonitor) Ensure(id reservation.ID, rateKbps uint64, nowNs int64) {
	m.mu.Lock()
	if tb, ok := m.flows[id]; ok {
		tb.SetRate(rateKbps)
	} else {
		m.flows[id] = m.newBucket(id, rateKbps, nowNs)
		if m.gauge != nil {
			m.gauge.Inc()
		}
	}
	m.mu.Unlock()
}

// Forget drops the bucket of an expired reservation. In shard mode the
// shared reserve is NOT dropped here (other shards may still hold it); the
// sharded wrapper forgets it from the pool after all shards have let go.
func (m *FlowMonitor) Forget(id reservation.ID) {
	m.mu.Lock()
	if _, ok := m.flows[id]; ok {
		delete(m.flows, id)
		if m.gauge != nil {
			m.gauge.Dec()
		}
	}
	m.mu.Unlock()
}

// Len returns the number of tracked flows.
func (m *FlowMonitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.flows)
}

// Blocklist is the set of source ASes whose reservations are blocked after
// confirmed overuse (§4.8: "as this blocklist is very short … it can be
// implemented as a simple hash set"). Entries can carry an expiry so that
// punishment is finite. Safe for concurrent use.
type Blocklist struct {
	mu      sync.RWMutex
	blocked map[topology.IA]uint32 // IA → expiry (0 = permanent)
}

// NewBlocklist builds an empty blocklist.
func NewBlocklist() *Blocklist {
	return &Blocklist{blocked: make(map[topology.IA]uint32)}
}

// Block adds a source AS until expiry (0 = permanent).
func (b *Blocklist) Block(ia topology.IA, expiry uint32) {
	b.mu.Lock()
	b.blocked[ia] = expiry
	b.mu.Unlock()
}

// Unblock removes a source AS.
func (b *Blocklist) Unblock(ia topology.IA) {
	b.mu.Lock()
	delete(b.blocked, ia)
	b.mu.Unlock()
}

// Blocked reports whether the AS is blocked at time now.
func (b *Blocklist) Blocked(ia topology.IA, now uint32) bool {
	b.mu.RLock()
	exp, ok := b.blocked[ia]
	b.mu.RUnlock()
	if !ok {
		return false
	}
	if exp != 0 && now >= exp {
		b.Unblock(ia)
		return false
	}
	return true
}

// Len returns the number of blocked ASes.
func (b *Blocklist) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blocked)
}

// Each calls fn for every entry under the read lock, in map order (callers
// needing determinism must not depend on iteration order — merging is
// commutative). fn must not call back into the blocklist.
func (b *Blocklist) Each(fn func(ia topology.IA, expiry uint32)) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for ia, exp := range b.blocked {
		fn(ia, exp)
	}
}

// MergeFrom unions src's entries into b, keeping the stricter punishment on
// conflict (permanent beats timed; later expiry beats earlier). It snapshots
// src before locking b, so concurrent MergeFrom calls in opposite directions
// cannot deadlock.
func (b *Blocklist) MergeFrom(src *Blocklist) {
	if src == nil || src == b {
		return
	}
	type entry struct {
		ia  topology.IA
		exp uint32
	}
	var snap []entry
	src.mu.RLock()
	for ia, exp := range src.blocked {
		snap = append(snap, entry{ia, exp})
	}
	src.mu.RUnlock()
	if len(snap) == 0 {
		return
	}
	b.mu.Lock()
	for _, e := range snap {
		cur, ok := b.blocked[e.ia]
		switch {
		case !ok:
			b.blocked[e.ia] = e.exp
		case cur == 0 || e.exp == 0:
			b.blocked[e.ia] = 0
		case e.exp > cur:
			b.blocked[e.ia] = e.exp
		}
	}
	b.mu.Unlock()
}
