package monitor

import (
	"math/rand"
	"sync"
	"testing"

	"colibri/internal/topology"
)

// shardMonitors builds n shard monitors over one shared reserve pool,
// mirroring what a sharded router constructs per core.
func shardMonitors(n int, chunkBytes float64) (*ReservePool, []*FlowMonitor) {
	pool := NewReservePool()
	mons := make([]*FlowMonitor, n)
	for i := range mons {
		mons[i] = NewShardFlowMonitor(pool, chunkBytes)
	}
	return pool, mons
}

// TestHotFlowReachesFullRateOnOneShard is the regression test for the shared
// overflow reserve: RSS pins a flow to ONE shard, so with naive rate/N
// splitting an 8-shard data plane would cap the flow at 1/8 of its
// reservation. With the shared reserve the pinned shard must sustain the
// FULL reserved rate.
func TestHotFlowReachesFullRateOnOneShard(t *testing.T) {
	for _, chunk := range []float64{0, 4096} {
		_, mons := shardMonitors(8, chunk)
		hot := mons[3] // the shard RSS pinned the flow to
		// 8 Mbps = 1 MB/s. 1000-byte packets at exactly 1000 pps conform
		// indefinitely — identical workload to TestTokenBucketConformingRate.
		var dropped int
		for i := 1; i <= 10_000; i++ {
			if !hot.Allow(rid(1), 8_000, 1000, int64(i)*1e6) {
				dropped++
			}
		}
		if dropped != 0 {
			t.Errorf("chunk=%v: hot flow pinned to one of 8 shards dropped %d packets at its reserved rate", chunk, dropped)
		}
	}
}

// TestShardsNeverExceedReservedAggregate: however greedily all shards claim,
// the total admitted across shards cannot exceed rate·T + burst, because
// every token originates from the one full-rate reserve.
func TestShardsNeverExceedReservedAggregate(t *testing.T) {
	for _, chunk := range []float64{0, 4096} {
		_, mons := shardMonitors(8, chunk)
		rng := rand.New(rand.NewSource(7))
		// 8 Mbps for 10 s = 10 MB, plus the 100 ms burst (100 KB).
		const rateKbps = 8_000
		var admitted int64
		horizonNs := int64(10 * 1e9)
		for now := int64(1e6); now <= horizonNs; now += 1e6 {
			// Every ms, every shard tries to push 3 KB (24× the reservation).
			for _, m := range mons {
				sz := uint32(500 + rng.Intn(1000))
				if m.Allow(rid(2), rateKbps, sz, now) {
					admitted += int64(sz)
				}
			}
		}
		limit := int64(rateKbps)*1000/8*10 + int64(BurstBytesFor(rateKbps))
		if admitted > limit {
			t.Errorf("chunk=%v: shards admitted %d bytes, exceeding reserved budget %d", chunk, admitted, limit)
		}
		// Sanity: the policer is not vacuously strict — most of the budget
		// must actually be usable.
		if admitted < limit*9/10 {
			t.Errorf("chunk=%v: shards admitted only %d of %d available bytes", chunk, admitted, limit)
		}
	}
}

// TestShardBucketMatchesSingleBucket: with chunk=0 (exact claims) a single
// shard in front of the reserve must reproduce a plain full-rate TokenBucket
// decision-for-decision, including across clock regressions and rate changes.
func TestShardBucketMatchesSingleBucket(t *testing.T) {
	single := NewFlowMonitor()
	_, mons := shardMonitors(1, 0)
	sharded := mons[0]
	rng := rand.New(rand.NewSource(42))
	now := int64(0)
	rate := uint64(8_000)
	for i := 0; i < 50_000; i++ {
		step := int64(rng.Intn(2_000_000)) - 200_000 // occasional regressions
		now += step
		if rng.Intn(5_000) == 0 {
			rate = uint64(1_000 + rng.Intn(20_000))
		}
		sz := uint32(64 + rng.Intn(1436))
		a := single.Allow(rid(3), rate, sz, now)
		b := sharded.Allow(rid(3), rate, sz, now)
		if a != b {
			t.Fatalf("packet %d (now=%d size=%d rate=%d): single=%v sharded=%v", i, now, sz, rate, a, b)
		}
	}
}

// TestReserveConcurrentClaims hammers one reserve from 8 goroutines (run with
// -race) and checks conservation: total granted ≤ initial burst + refills.
func TestReserveConcurrentClaims(t *testing.T) {
	const rateKbps = 8_000
	r := NewReserve(rateKbps, 0)
	var mu sync.Mutex
	granted := 0.0
	var wg sync.WaitGroup
	const goroutines, claims = 8, 5_000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := 0.0
			for i := 0; i < claims; i++ {
				nowNs := int64(i) * 1e5 // all goroutines share the timeline
				local += r.Claim(float64(64+rng.Intn(1436)), float64(rng.Intn(2048)), nowNs)
			}
			mu.Lock()
			granted += local
			mu.Unlock()
		}(int64(g + 1))
	}
	wg.Wait()
	// Budget: initial burst + rate over the claims' time span, + burst slack
	// for the transient above-burst reads Claim documents.
	span := float64((claims - 1) * 1e5)
	budget := 2*BurstBytesFor(rateKbps) + span*float64(rateKbps)/8/1e6
	if granted > budget {
		t.Fatalf("reserve granted %.0f bytes, conservation budget %.0f", granted, budget)
	}
}

// TestReservePoolLifecycle covers Get-creates-once, Forget, Len.
func TestReservePoolLifecycle(t *testing.T) {
	p := NewReservePool()
	a := p.Get(rid(4), 8_000, 0)
	if b := p.Get(rid(4), 8_000, 0); b != a {
		t.Error("second Get returned a different reserve")
	}
	p.Get(rid(5), 8_000, 0)
	if p.Len() != 2 {
		t.Fatalf("Len=%d, want 2", p.Len())
	}
	p.Forget(rid(4))
	if p.Len() != 1 {
		t.Fatalf("Len after Forget=%d, want 1", p.Len())
	}
	if c := p.Get(rid(4), 8_000, 0); c == a {
		t.Error("Get after Forget returned the forgotten reserve")
	}
}

// TestBlocklistMergeFrom checks the stricter-wins union semantics the sharded
// router's Merge relies on.
func TestBlocklistMergeFrom(t *testing.T) {
	asA, asB, asC, asD := topology.MustIA(1, 1), topology.MustIA(1, 2), topology.MustIA(1, 3), topology.MustIA(1, 4)
	dst := NewBlocklist()
	dst.Block(asA, 100)
	dst.Block(asB, 0) // permanent
	dst.Block(asC, 300)
	src := NewBlocklist()
	src.Block(asA, 200) // later expiry wins
	src.Block(asB, 500) // cannot downgrade permanent
	src.Block(asC, 0)   // permanent wins
	src.Block(asD, 50)  // new entry
	dst.MergeFrom(src)
	dst.MergeFrom(dst) // self-merge is a no-op
	dst.MergeFrom(nil) // nil-merge is a no-op
	want := map[topology.IA]uint32{asA: 200, asB: 0, asC: 0, asD: 50}
	got := map[topology.IA]uint32{}
	dst.Each(func(ia topology.IA, exp uint32) { got[ia] = exp })
	if len(got) != len(want) {
		t.Fatalf("merged blocklist %v, want %v", got, want)
	}
	for ia, exp := range want {
		if got[ia] != exp {
			t.Errorf("entry %v: expiry %d, want %d", ia, got[ia], exp)
		}
	}
}
