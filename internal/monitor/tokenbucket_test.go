package monitor

import (
	"testing"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

func rid(n uint32) reservation.ID {
	return reservation.ID{SrcAS: topology.MustIA(1, 9), Num: n}
}

func TestTokenBucketConformingRate(t *testing.T) {
	// 8 Mbps = 1 MB/s. Sending 1000-byte packets at exactly 1000 pps
	// conforms indefinitely.
	tb := NewTokenBucket(8_000, BurstBytesFor(8_000), 0)
	var dropped int
	for i := 1; i <= 10_000; i++ {
		if !tb.Allow(int64(i)*1e6, 1000) { // one packet per ms
			dropped++
		}
	}
	if dropped != 0 {
		t.Errorf("conforming flow dropped %d packets", dropped)
	}
}

func TestTokenBucketOveruseDropped(t *testing.T) {
	// Same 8 Mbps bucket, but 2× rate: about half must be dropped.
	tb := NewTokenBucket(8_000, BurstBytesFor(8_000), 0)
	var passed int
	const n = 10_000
	for i := 1; i <= n; i++ {
		if tb.Allow(int64(i)*5e5, 1000) { // one packet per 0.5 ms
			passed++
		}
	}
	// Long-run pass rate ≈ 50% (plus one burst's worth).
	if passed < n*45/100 || passed > n*55/100 {
		t.Errorf("passed %d of %d at 2× rate, want ≈ half", passed, n)
	}
}

func TestTokenBucketBurst(t *testing.T) {
	tb := NewTokenBucket(8_000, 10_000, 0)
	// A back-to-back burst within the allowance passes…
	for i := 0; i < 10; i++ {
		if !tb.Allow(1, 1000) {
			t.Fatalf("burst packet %d dropped", i)
		}
	}
	// …the next packet exceeds it.
	if tb.Allow(1, 1000) {
		t.Error("packet beyond burst allowed")
	}
	// After enough refill time, packets pass again (2 ms → 2000 bytes).
	if !tb.Allow(2e6, 1000) {
		t.Error("packet after refill dropped")
	}
}

func TestTokenBucketLongRunRateQuick(t *testing.T) {
	// Property: over a long run, passed bytes never exceed
	// rate×time + burst.
	for _, rateKbps := range []uint64{1000, 8000, 100_000} {
		burst := BurstBytesFor(rateKbps)
		tb := NewTokenBucket(rateKbps, burst, 0)
		var passedBytes float64
		const durNs = int64(2e9)
		step := int64(1e5) // dense 0.1 ms probes of 500-byte packets
		for now := step; now <= durNs; now += step {
			if tb.Allow(now, 500) {
				passedBytes += 500
			}
		}
		limit := float64(rateKbps)*1000/8*float64(durNs)/1e9 + burst + 500
		if passedBytes > limit {
			t.Errorf("rate %d: passed %.0f bytes > limit %.0f", rateKbps, passedBytes, limit)
		}
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	tb := NewTokenBucket(8_000, BurstBytesFor(8_000), 0)
	tb.SetRate(16_000)
	var passed int
	for i := 1; i <= 1000; i++ {
		if tb.Allow(int64(i)*5e5, 1000) { // 2 MB/s offered
			passed++
		}
	}
	if passed < 950 {
		t.Errorf("after doubling the rate, only %d/1000 passed", passed)
	}
}

func TestFlowMonitorIsolatesFlows(t *testing.T) {
	m := NewFlowMonitor()
	// Flow 1 floods; flow 2 conforms. Flow 2 must be unaffected.
	var f2dropped int
	for i := 1; i <= 1000; i++ {
		now := int64(i) * 1e6
		m.Allow(rid(1), 8_000, 1500, now) // 12 Mbps offered on 8 Mbps
		m.Allow(rid(1), 8_000, 1500, now)
		if !m.Allow(rid(2), 8_000, 1000, now) { // exactly 8 Mbps
			f2dropped++
		}
	}
	if f2dropped != 0 {
		t.Errorf("conforming flow lost %d packets to a noisy neighbor", f2dropped)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
	m.Forget(rid(1))
	if m.Len() != 1 {
		t.Errorf("Len after Forget = %d", m.Len())
	}
}

func TestFlowMonitorRateUpdate(t *testing.T) {
	m := NewFlowMonitor()
	now := int64(1e9)
	m.Allow(rid(1), 8_000, 1000, now)
	// Renewal doubled the reservation: the monitor must honor it.
	var passed int
	for i := 1; i <= 1000; i++ {
		if m.Allow(rid(1), 16_000, 1000, now+int64(i)*5e5) {
			passed++
		}
	}
	if passed < 950 {
		t.Errorf("passed %d/1000 after rate increase", passed)
	}
}

func TestBlocklist(t *testing.T) {
	b := NewBlocklist()
	attacker := topology.MustIA(1, 66)
	if b.Blocked(attacker, 100) {
		t.Error("empty blocklist blocks")
	}
	b.Block(attacker, 0)
	if !b.Blocked(attacker, 100) {
		t.Error("permanent block not effective")
	}
	b.Unblock(attacker)
	if b.Blocked(attacker, 100) {
		t.Error("unblock not effective")
	}
	b.Block(attacker, 200)
	if !b.Blocked(attacker, 199) {
		t.Error("timed block not effective before expiry")
	}
	if b.Blocked(attacker, 200) {
		t.Error("timed block effective after expiry")
	}
	if b.Len() != 0 {
		t.Errorf("expired entry not removed, Len = %d", b.Len())
	}
}

func BenchmarkFlowMonitorAllow(b *testing.B) {
	m := NewFlowMonitor()
	for i := uint32(0); i < 1024; i++ {
		m.Allow(rid(i), 8000, 1000, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Allow(rid(uint32(i)%1024), 8000, 1000, int64(i)*1000)
	}
}

// TestTokenBucketClockRegression locks in the non-monotonic-timestamp
// semantics: a packet stamped before the last refill gets no tokens and
// must not move the refill clock backwards (which would let the next
// in-order packet double-refill the interval).
func TestTokenBucketClockRegression(t *testing.T) {
	// 8 Mbps, burst 1500 bytes. rate = 1 byte/µs.
	tb := NewTokenBucket(8_000, 1500, 1e9)
	if !tb.Allow(1e9, 1500) {
		t.Fatal("burst-sized packet did not conform on a full bucket")
	}
	// Bucket is empty. A regressed timestamp must neither refill nor
	// admit.
	if tb.Allow(1e9-5e6, 100) {
		t.Error("packet admitted from an empty bucket on a regressed clock")
	}
	if tb.lastNs != 1e9 {
		t.Errorf("regressed timestamp moved lastNs to %d", tb.lastNs)
	}
	// 1 ms forward refills exactly 1000 bytes — once.
	if !tb.Allow(1e9+1e6, 1000) {
		t.Error("refilled packet dropped")
	}
	if tb.Allow(1e9+1e6, 1) {
		t.Error("over-refill: more than 1000 bytes after 1 ms")
	}
	// Regress again, then return to the same instant: no double refill.
	if tb.Allow(1e9, 1) {
		t.Error("regressed packet admitted")
	}
	if tb.Allow(1e9+1e6, 1) {
		t.Error("interval was refilled twice after a clock regression")
	}
}

// TestFlowMonitorClockRegression exercises the same guarantee through
// Allow and AllowBatch, which share buckets across differently-stamped
// calls.
func TestFlowMonitorClockRegression(t *testing.T) {
	m := NewFlowMonitor()
	id := rid(1)
	// Drain the burst at t=1s.
	if !m.Allow(id, 8_000, uint32(BurstBytesFor(8_000)), 1e9) {
		t.Fatal("burst did not conform")
	}
	// A batch stamped in the past must not refill the drained bucket.
	ids := []reservation.ID{id, id}
	rates := []uint64{8_000, 8_000}
	sizes := []uint32{100, 0} // second entry is a hole
	allowed := make([]bool, 2)
	m.AllowBatch(ids, rates, sizes, 1e9-1e6, allowed)
	if allowed[0] {
		t.Error("regressed batch packet admitted from an empty bucket")
	}
	if allowed[1] {
		t.Error("hole entry reported allowed")
	}
	// Forward progress still refills normally.
	if !m.Allow(id, 8_000, 1000, 1e9+1e6) {
		t.Error("refilled packet dropped after regression")
	}
}
