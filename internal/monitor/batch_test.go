package monitor

import (
	"math/rand"
	"testing"

	"colibri/internal/reservation"
)

// TestAllowBatchMatchesSequential: AllowBatch over random batches — mixed
// flows, rate updates, holes, and repeated IDs within one batch — must
// reach exactly the per-packet decisions of sequential Allow calls on an
// identically driven monitor.
func TestAllowBatchMatchesSequential(t *testing.T) {
	const flows, rounds, batch = 8, 500, 16
	rng := rand.New(rand.NewSource(3))
	mb := NewFlowMonitor()
	ms := NewFlowMonitor()

	rateSet := []uint64{64, 1000, 8000} // small set so SetRate triggers often
	ids := make([]reservation.ID, batch)
	rates := make([]uint64, batch)
	sizes := make([]uint32, batch)
	got := make([]bool, batch)
	nowNs := int64(1_000_000)
	holes, denials := 0, 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < batch; i++ {
			ids[i] = rid(uint32(1 + rng.Intn(flows))) // few flows → repeats within a batch
			rates[i] = rateSet[rng.Intn(len(rateSet))]
			if rng.Intn(8) == 0 {
				sizes[i] = 0 // hole: no packet in this slot
			} else {
				sizes[i] = uint32(1 + rng.Intn(3000))
			}
		}
		mb.AllowBatch(ids, rates, sizes, nowNs, got)
		for i := 0; i < batch; i++ {
			if sizes[i] == 0 {
				holes++
				if got[i] {
					t.Fatalf("round %d slot %d: hole reported as allowed", r, i)
				}
				continue
			}
			want := ms.Allow(ids[i], rates[i], sizes[i], nowNs)
			if got[i] != want {
				t.Fatalf("round %d slot %d: batch %v, sequential %v (id=%v rate=%d size=%d)",
					r, i, got[i], want, ids[i], rates[i], sizes[i])
			}
			if !want {
				denials++
			}
		}
		// Advance unevenly so some rounds refill and some share an instant.
		if rng.Intn(3) > 0 {
			nowNs += int64(rng.Intn(5_000_000))
		}
	}
	if holes == 0 || denials == 0 {
		t.Errorf("fixture too tame: holes=%d denials=%d", holes, denials)
	}
	if mb.Len() != ms.Len() {
		t.Errorf("flow maps diverged: batch %d, sequential %d", mb.Len(), ms.Len())
	}
}
