package cryptoutil

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := Key{1, 2, 3}
	pt := []byte("hop authenticator payload")
	ad := []byte("res-id|hop-3")
	sealed, err := Seal(key, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, sealed, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("roundtrip: %q", got)
	}
}

func TestSealRandomizesNonce(t *testing.T) {
	key := Key{9}
	a, _ := Seal(key, []byte("x"), nil)
	b, _ := Seal(key, []byte("x"), nil)
	if bytes.Equal(a, b) {
		t.Error("two seals of the same plaintext are identical — nonce reuse")
	}
	// Both still open.
	for _, sealed := range [][]byte{a, b} {
		if _, err := Open(key, sealed, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := Key{7}
	ad := []byte("ad")
	sealed, _ := Seal(key, []byte("secret"), ad)

	for i := range sealed {
		cp := append([]byte(nil), sealed...)
		cp[i] ^= 0x80
		if _, err := Open(key, cp, ad); !errors.Is(err, ErrAEADOpen) {
			t.Fatalf("bit flip at %d accepted (err=%v)", i, err)
		}
	}
	// Wrong associated data.
	if _, err := Open(key, sealed, []byte("other")); !errors.Is(err, ErrAEADOpen) {
		t.Errorf("wrong AD accepted: %v", err)
	}
	// Wrong key.
	if _, err := Open(Key{8}, sealed, ad); !errors.Is(err, ErrAEADOpen) {
		t.Errorf("wrong key accepted: %v", err)
	}
	// Too short.
	if _, err := Open(key, sealed[:8], ad); !errors.Is(err, ErrAEADOpen) {
		t.Errorf("short input accepted: %v", err)
	}
}

func TestSealOpenQuick(t *testing.T) {
	key := Key{0xAB}
	f := func(pt, ad []byte) bool {
		sealed, err := Seal(key, pt, ad)
		if err != nil {
			return false
		}
		got, err := Open(key, sealed, ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
