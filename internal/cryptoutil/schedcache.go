package cryptoutil

import (
	"crypto/cipher"
	"sync/atomic"
)

// σ-schedule caching for the data-plane hot path.
//
// A gateway expands every hop authenticator σ_i into a full AES-128 key
// schedule for every packet (SigmaMAC), although σ_i only changes when the
// reservation is renewed. The paper's DPDK pipeline amortizes exactly this
// fixed cost with hardware key expansion; caching the expanded state per
// (reservation, hop) turns it into a one-time cost per renewal epoch.
//
// The cache is tiered. A fill installs the allocation-free software
// schedule inline in the entry, so misses never allocate no matter how the
// workload churns. An entry that then proves hot — promoteAfter further
// hits — is promoted once to a crypto/aes cipher (hardware AES where
// available), whose one heap allocation is amortized over the entry's
// remaining lifetime. Entries that churn through conflicted sets stay on
// the software tier and never allocate.
//
// SchedCache is a bounded, power-of-two sized, 2-way set-associative array
// with second-chance (clock) eviction: each entry carries a reference bit
// that a hit sets and a full-set miss clears, so hot entries survive
// bursts of cold lookups. When a set is full of recently-hit entries, a
// miss is bypassed (Schedule returns nil) instead of evicting — admitting
// it would thrash. Lookups compare the full 64-bit tag and the 32-bit
// epoch, so a stale schedule can never be returned: renewal bumps the
// epoch and the old entry simply stops matching, then ages out through
// its reference bit. Memory is bounded at ≈ 240 B × entries for the
// array, plus ≈ 500 B heap per promoted entry (≤ entries).
//
// A SchedCache is not safe for concurrent use: each worker owns one
// (mirroring the per-lcore schedule tables of DPDK crypto drivers).
type SchedCache struct {
	mask uint64 // set index mask (sets = (len(ents)/2), power of two)
	ents []schedEntry
	// hits/misses are written only by the owning worker's Schedule but may
	// be read by a sharded front end's Merge from another goroutine, so they
	// are atomic (single-writer: a plain Add, no contention; enforced by
	// colibri-vet).
	hits   atomic.Uint64 //colibri:singlewriter
	misses atomic.Uint64 //colibri:singlewriter
}

// promoteAfter is the number of hits after which an entry's σ is expanded
// into a hardware cipher. High enough that entries churning through a
// conflicted set never reach it (their allocation would recur), low
// enough that stable entries promote almost immediately.
const promoteAfter = 16

type schedEntry struct {
	tag   uint64
	epoch uint32
	hcnt  uint16 // hits until promotion (software tier only)
	valid bool
	ref   bool // clock reference bit: set on hit, cleared on full-set miss
	ks    AESSchedule
	blk   cipher.Block // non-nil once promoted to the hardware tier
}

// NewSchedCache builds a cache with at least the requested number of
// entries, rounded up to a power of two (minimum 2).
func NewSchedCache(entries int) *SchedCache {
	n := 2
	for n < entries {
		n <<= 1
	}
	return &SchedCache{mask: uint64(n/2 - 1), ents: make([]schedEntry, n)}
}

// Len returns the cache's entry count (its memory bound in schedules).
func (c *SchedCache) Len() int { return len(c.ents) }

// Stats returns the hit and miss counts since construction.
func (c *SchedCache) Stats() (hits, misses uint64) { return c.hits.Load(), c.misses.Load() }

// mix64 is the splitmix64 finalizer; it spreads dense tags (reservation
// IDs are sequential) across the sets.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Schedule returns the σ-keyed cipher under (tag, epoch), filling a cache
// slot on miss. The caller must guarantee that (tag, epoch) uniquely
// identifies sigma — the gateway uses tag = resID‖hop and the per-install
// epoch, so equal pairs always carry equal keys.
//
// Schedule returns nil when the set is full of recently-hit entries
// (admission bypass): evicting a hot entry for a conflicting tag would
// thrash on every revisit, so the caller is expected to fall back to its
// own software expansion for this lookup. The bypass clears the set's
// reference bits, so entries that stop hitting become evictable and the
// set re-adapts.
//
// The returned cipher is only guaranteed valid until the next Schedule
// call: software-tier entries hand out a pointer into the cache that a
// later fill may overwrite. (Promoted hardware ciphers live on the heap
// and survive eviction, but callers should not rely on telling the tiers
// apart.) Use the cipher before looking up the next tag.
//
//colibri:nomalloc
func (c *SchedCache) Schedule(tag uint64, epoch uint32, sigma *Key) cipher.Block {
	i := (mix64(tag) & c.mask) * 2
	e0, e1 := &c.ents[i], &c.ents[i+1]
	// The ref stores are conditional so steady-state hits stay read-only
	// (an unconditional store dirties the cache line on every probe).
	if e0.valid && e0.tag == tag && e0.epoch == epoch {
		if !e0.ref {
			e0.ref = true
		}
		c.hits.Add(1)
		return e0.block(sigma)
	}
	if e1.valid && e1.tag == tag && e1.epoch == epoch {
		if !e1.ref {
			e1.ref = true
		}
		c.hits.Add(1)
		return e1.block(sigma)
	}
	c.misses.Add(1)
	// Victim: an empty way, else an unreferenced way. When both ways hold
	// recently-hit entries, bypass instead of evicting (second chance for
	// the residents, software fallback for the newcomer).
	var v *schedEntry
	switch {
	case !e0.valid:
		v = e0
	case !e1.valid:
		v = e1
	case !e0.ref:
		v = e0
	case !e1.ref:
		v = e1
	default:
		e0.ref, e1.ref = false, false
		return nil
	}
	v.tag, v.epoch, v.valid, v.ref = tag, epoch, true, true
	v.hcnt, v.blk = 0, nil
	ExpandAES128(&v.ks, sigma)
	return &v.ks
}

// block returns the entry's cipher, promoting it to the hardware tier once
// it has proven hot.
func (e *schedEntry) block(sigma *Key) cipher.Block {
	if e.blk != nil {
		return e.blk
	}
	if e.hcnt < promoteAfter {
		e.hcnt++
		return &e.ks
	}
	e.blk = NewBlock(*sigma)
	return e.blk
}
