package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
)

// CBCMAC is a fixed-input-length AES-CBC-MAC for the data-plane hot path.
//
// Plain CBC-MAC is only secure for fixed-length (or length-prefixed)
// messages; Colibri's hop authenticators (Eq. 4) and hop validation fields
// (Eq. 6) are computed over fixed-layout header fields, so the cheap
// construction is safe here, exactly as in the paper's DPDK implementation.
// The input is zero-padded to a whole number of AES blocks; callers must
// ensure a fixed layout (they do: the inputs are packed structs).
//
// A CBCMAC is not safe for concurrent use.
type CBCMAC struct {
	block cipher.Block
	// x is the CBC chaining scratch block; keeping it in the (already
	// heap-allocated) struct prevents it from escaping per call through the
	// cipher.Block interface.
	x [aes.BlockSize]byte
}

// NewCBCMAC builds a CBC-MAC for the key, caching the AES key schedule.
func NewCBCMAC(key Key) (*CBCMAC, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return &CBCMAC{block: block}, nil
}

// MustCBCMAC is NewCBCMAC for setup code.
func MustCBCMAC(key Key) *CBCMAC {
	m, err := NewCBCMAC(key)
	if err != nil {
		panic(err)
	}
	return m
}

// SumInto computes the CBC-MAC of msg (zero-padded to a block boundary) into
// mac. It performs no heap allocation.
func (m *CBCMAC) SumInto(mac *[MACSize]byte, msg []byte) {
	m.x = [aes.BlockSize]byte{}
	for len(msg) >= aes.BlockSize {
		for i := 0; i < aes.BlockSize; i++ {
			m.x[i] ^= msg[i]
		}
		m.block.Encrypt(m.x[:], m.x[:])
		msg = msg[aes.BlockSize:]
	}
	if len(msg) > 0 {
		for i, b := range msg {
			m.x[i] ^= b
		}
		m.block.Encrypt(m.x[:], m.x[:])
	}
	*mac = m.x
}

// MACOneBlock computes the CBC-MAC of exactly one 16-byte block with the
// given expanded cipher into mac. This is the innermost data-plane operation
// (Eq. 6: V = MAC_σ(Ts ‖ PktSize)), kept separate so the router can call it
// with zero bounds checks.
//
//colibri:nomalloc
func MACOneBlock(block cipher.Block, mac *[MACSize]byte, in *[aes.BlockSize]byte) {
	block.Encrypt(mac[:], in[:])
}

// NewBlock expands an AES-128 key schedule. The data plane derives a fresh
// hop authenticator σ per packet and must then expand it to MAC the
// timestamp block; this helper makes that step explicit and testable.
func NewBlock(key Key) cipher.Block {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // unreachable: key length is fixed
	}
	return block
}
