package cryptoutil

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCMACRFC4493Vectors checks the four official AES-128-CMAC test vectors.
func TestCMACRFC4493Vectors(t *testing.T) {
	key := Key(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	msgFull := mustHex(t,
		"6bc1bee22e409f96e93d7e117393172a"+
			"ae2d8a571e03ac9c9eb76fac45af8e51"+
			"30c81c46a35ce411e5fbc1191a0a52ef"+
			"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		name string
		msg  []byte
		want string
	}{
		{"empty", nil, "bb1d6929e95937287fa37d129b756746"},
		{"16B", msgFull[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40B", msgFull[:40], "dfa66747de9ae63030ca32611497c827"},
		{"64B", msgFull, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	c := MustCMAC(key)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.Sum(nil, tc.msg)
			if want := mustHex(t, tc.want); !bytes.Equal(got, want) {
				t.Errorf("CMAC = %x, want %x", got, want)
			}
		})
	}
}

func TestCMACSumIntoMatchesSum(t *testing.T) {
	c := MustCMAC(Key{1, 2, 3})
	f := func(msg []byte) bool {
		var mac [MACSize]byte
		c.SumInto(&mac, msg)
		return bytes.Equal(mac[:], c.Sum(nil, msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMACDistinguishesMessages(t *testing.T) {
	c := MustCMAC(Key{42})
	seen := make(map[[MACSize]byte][]byte)
	msgs := [][]byte{
		nil, {0}, {0, 0}, {1}, {0x80},
		bytes.Repeat([]byte{0}, 16), bytes.Repeat([]byte{0}, 17),
		[]byte("hello"), []byte("hellp"),
	}
	for _, m := range msgs {
		var mac [MACSize]byte
		c.SumInto(&mac, m)
		if prev, ok := seen[mac]; ok {
			t.Errorf("collision between %x and %x", prev, m)
		}
		seen[mac] = append([]byte(nil), m...)
	}
}

func TestCMACKeySeparation(t *testing.T) {
	a := MustCMAC(Key{1})
	b := MustCMAC(Key{2})
	msg := []byte("same message")
	if bytes.Equal(a.Sum(nil, msg), b.Sum(nil, msg)) {
		t.Error("different keys produced identical MACs")
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	c := MustCMAC(Key{9})
	k1 := c.DeriveKey([]byte("peer-AS-1"))
	k2 := c.DeriveKey([]byte("peer-AS-1"))
	k3 := c.DeriveKey([]byte("peer-AS-2"))
	if k1 != k2 {
		t.Error("derivation not deterministic")
	}
	if k1 == k3 {
		t.Error("different inputs derived the same key")
	}
}

func TestCBCMACFixedLengthMatchesManual(t *testing.T) {
	key := Key{7, 7, 7}
	m := MustCBCMAC(key)
	block := NewBlock(key)

	// One-block message: CBC-MAC = E_K(msg).
	in := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var want, got [MACSize]byte
	block.Encrypt(want[:], in[:])
	m.SumInto(&got, in[:])
	if got != want {
		t.Errorf("one-block CBC-MAC mismatch: %x vs %x", got, want)
	}

	// Two-block message: E_K(E_K(b0) ^ b1).
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	var x [16]byte
	block.Encrypt(x[:], msg[:16])
	for i := 0; i < 16; i++ {
		x[i] ^= msg[16+i]
	}
	block.Encrypt(want[:], x[:])
	m.SumInto(&got, msg)
	if got != want {
		t.Errorf("two-block CBC-MAC mismatch: %x vs %x", got, want)
	}
}

func TestCBCMACPadding(t *testing.T) {
	m := MustCBCMAC(Key{1})
	var a, b [MACSize]byte
	m.SumInto(&a, []byte{1, 2, 3})
	m.SumInto(&b, append([]byte{1, 2, 3}, make([]byte, 13)...))
	// Zero-padding means a 3-byte message and its explicit zero-padded
	// 16-byte form MAC identically — acceptable for fixed-layout inputs,
	// and exactly why CBCMAC must only be used with fixed layouts.
	if a != b {
		t.Error("zero padding should make these equal (fixed-layout assumption)")
	}
}

func TestCBCMACDeterministicQuick(t *testing.T) {
	m := MustCBCMAC(Key{5, 5})
	f := func(msg []byte) bool {
		var a, b [MACSize]byte
		m.SumInto(&a, msg)
		m.SumInto(&b, msg)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if ConstantTimeEqual([]byte{1, 2}, []byte{1, 3}) {
		t.Error("unequal slices reported equal")
	}
	if ConstantTimeEqual([]byte{1, 2}, []byte{1, 2, 3}) {
		t.Error("different lengths reported equal")
	}
}

func BenchmarkCMAC64B(b *testing.B) {
	c := MustCMAC(Key{1})
	msg := make([]byte, 64)
	var mac [MACSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SumInto(&mac, msg)
	}
}

func BenchmarkCBCMAC48B(b *testing.B) {
	m := MustCBCMAC(Key{1})
	msg := make([]byte, 48)
	var mac [MACSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SumInto(&mac, msg)
	}
}

// BenchmarkTwoStepHVF measures the full router-side per-packet crypto: derive
// σ from the AS secret over a 48-byte input, expand σ, MAC one block.
func BenchmarkTwoStepHVF(b *testing.B) {
	m := MustCBCMAC(Key{1})
	authInput := make([]byte, 48)
	var sigma [MACSize]byte
	var tsBlock [16]byte
	var hvf [MACSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SumInto(&sigma, authInput)
		block := NewBlock(Key(sigma))
		MACOneBlock(block, &hvf, &tsBlock)
	}
}
