package cryptoutil

import (
	"crypto/cipher"
	"math/rand"
	"testing"
)

// encryptOne runs a single block through blk into a fresh array.
func encryptOne(blk cipher.Block, src *[16]byte) [16]byte {
	var dst [16]byte
	blk.Encrypt(dst[:], src[:])
	return dst
}

// TestSchedCacheMatchesExpand: a cached cipher must produce the same MAC
// block as a fresh software expansion, across hits, misses, evictions,
// bypasses, and hardware-tier promotions.
func TestSchedCacheMatchesExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewSchedCache(8) // tiny: forces evictions and bypasses
	keys := make([]Key, 64)
	var block [16]byte
	rng.Read(block[:])
	for i := range keys {
		rng.Read(keys[i][:])
	}
	bypasses := 0
	for n := 0; n < 10_000; n++ {
		i := rng.Intn(len(keys))
		blk := c.Schedule(uint64(i), 1, &keys[i])
		if blk == nil {
			bypasses++
			continue
		}
		var ks AESSchedule
		var want [16]byte
		SigmaMAC(&ks, &keys[i], &want, &block)
		if encryptOne(blk, &block) != want {
			t.Fatalf("cipher mismatch for key %d after %d lookups", i, n)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 || bypasses == 0 {
		t.Errorf("over-subscribed cache should hit, miss, and bypass: hits=%d misses=%d bypasses=%d",
			hits, misses, bypasses)
	}
}

// TestSchedCacheEpochInvalidation: bumping the epoch must miss even for an
// identical tag, and the slot must be re-keyed from the new σ — the
// renewal semantics the gateway relies on.
func TestSchedCacheEpochInvalidation(t *testing.T) {
	c := NewSchedCache(16)
	k1 := Key{1}
	k2 := Key{2}
	var block [16]byte
	c.Schedule(7, 1, &k1)
	got := encryptOne(c.Schedule(7, 2, &k2), &block) // renewal: same tag, new epoch, new key
	var ks AESSchedule
	var want [16]byte
	SigmaMAC(&ks, &k2, &want, &block)
	if got != want {
		t.Fatal("epoch bump returned the stale schedule")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", hits, misses)
	}
	// The new epoch now hits.
	c.Schedule(7, 2, &k2)
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("hits=%d after re-lookup, want 1", hits)
	}
}

// TestSchedCacheHotEntriesSurvive: with second-chance eviction and
// admission bypass, an entry re-referenced between conflicting insertions
// keeps hitting.
func TestSchedCacheHotEntriesSurvive(t *testing.T) {
	c := NewSchedCache(2) // one set, two ways
	hot := Key{0xAA}
	c.Schedule(1, 1, &hot)
	for i := uint64(2); i < 100; i++ {
		k := Key{byte(i)}
		c.Schedule(i, 1, &k) // conflicting cold traffic
		c.Schedule(1, 1, &hot)
	}
	h0, _ := c.Stats()
	c.Schedule(1, 1, &hot)
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Error("hot entry evicted despite second chance")
	}
}

// TestSchedCacheAdmissionBypass: a miss on a set whose ways are both
// recently hit must return nil (no eviction, no fill) — and the resident
// entries must still hit afterwards.
func TestSchedCacheAdmissionBypass(t *testing.T) {
	c := NewSchedCache(2) // one set, two ways
	kA, kB, kC := Key{1}, Key{2}, Key{3}
	c.Schedule(10, 1, &kA) // fill sets ref
	c.Schedule(11, 1, &kB)
	if blk := c.Schedule(12, 1, &kC); blk != nil {
		t.Fatal("expected admission bypass on a set full of referenced entries")
	}
	h0, _ := c.Stats()
	c.Schedule(10, 1, &kA)
	c.Schedule(11, 1, &kB)
	if h1, _ := c.Stats(); h1 != h0+2 {
		t.Error("residents evicted by a bypassed miss")
	}
	// With the residents re-referenced, the outsider keeps bypassing.
	if blk := c.Schedule(12, 1, &kC); blk != nil {
		t.Error("expected repeat bypass while residents stay hot")
	}
}

// TestSchedCachePromotion: an entry that keeps hitting is promoted to a
// heap-allocated hardware cipher that produces identical MACs and stays
// usable even after the entry is evicted.
func TestSchedCachePromotion(t *testing.T) {
	c := NewSchedCache(2)
	k := Key{0x42}
	var block [16]byte
	var ks AESSchedule
	var want [16]byte
	SigmaMAC(&ks, &k, &want, &block)
	var blk cipher.Block
	for i := 0; i < promoteAfter+2; i++ {
		blk = c.Schedule(5, 1, &k)
		if got := encryptOne(blk, &block); got != want {
			t.Fatalf("wrong MAC on hit %d", i)
		}
	}
	if _, ok := blk.(*AESSchedule); ok {
		t.Fatalf("entry not promoted after %d hits", promoteAfter+2)
	}
	// Evict the promoted entry by filling the set with new tags (refs are
	// cleared by bypasses, then the ways get replaced).
	for i := uint64(100); i < 120; i++ {
		kk := Key{byte(i)}
		c.Schedule(i, 1, &kk)
		c.Schedule(i+50, 1, &kk)
	}
	if got := encryptOne(blk, &block); got != want {
		t.Error("promoted cipher invalidated by eviction; it must be heap-backed")
	}
}

// TestSchedCacheSizing: capacity rounds up to a power of two with 2 as the
// floor.
func TestSchedCacheSizing(t *testing.T) {
	for _, tc := range []struct{ req, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {1000, 1024}} {
		if got := NewSchedCache(tc.req).Len(); got != tc.want {
			t.Errorf("NewSchedCache(%d).Len() = %d, want %d", tc.req, got, tc.want)
		}
	}
}

// BenchmarkSchedCacheHit measures the hot-path hit (promoted hardware
// tier) vs. a full software expansion.
func BenchmarkSchedCacheHit(b *testing.B) {
	c := NewSchedCache(1024)
	k := Key{1}
	var block, mac [16]byte
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < promoteAfter+2; i++ { // promote before timing
			c.Schedule(1, 1, &k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := c.Schedule(1, 1, &k)
			blk.Encrypt(mac[:], block[:])
		}
	})
	b.Run("expand", func(b *testing.B) {
		b.ReportAllocs()
		var ks AESSchedule
		for i := 0; i < b.N; i++ {
			SigmaMAC(&ks, &k, &mac, &block)
		}
	})
}
