package cryptoutil

import (
	"crypto/cipher"
	"encoding/binary"
)

// Allocation-free AES-128 for the data-plane hot path.
//
// The two-step HVF computation (Eq. 6) uses the per-reservation hop
// authenticator σ as an AES key that changes with every packet at border
// routers. crypto/aes allocates a fresh key schedule per cipher, and at
// millions of packets per second over multi-hundred-megabyte gateway state
// the garbage collector dominates (the live reservation heap gets scanned
// for every few MB allocated). This implementation expands the key into a
// caller-owned schedule and encrypts with classic T-tables — zero
// allocation, deterministic cost. It produces bit-identical output to
// crypto/aes (verified in tests), so gateways and routers may mix the two
// freely.
//
// Only used for σ-keyed single-block MACs; long-lived keys (AS secrets,
// DRKey) keep using crypto/aes with its hardware acceleration.

// AESSchedule is an expanded AES-128 encryption key schedule.
type AESSchedule [44]uint32

// sbox is the AES S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// Encryption T-tables, generated from the S-box at init.
var te0, te1, te2, te3 [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		s := uint32(sbox[i])
		s2 := xtime(byte(s))
		s3 := s2 ^ byte(s)
		w := uint32(s2)<<24 | s<<16 | s<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

var rcon = [10]uint32{
	0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
	0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
}

// ExpandAES128 expands a 16-byte key into the caller's schedule without
// allocating.
//
//colibri:nomalloc
func ExpandAES128(ks *AESSchedule, key *Key) {
	ks[0] = binary.BigEndian.Uint32(key[0:4])
	ks[1] = binary.BigEndian.Uint32(key[4:8])
	ks[2] = binary.BigEndian.Uint32(key[8:12])
	ks[3] = binary.BigEndian.Uint32(key[12:16])
	for i := 4; i < 44; i += 4 {
		t := ks[i-1]
		// RotWord + SubWord + Rcon.
		t = uint32(sbox[byte(t>>16)])<<24 | uint32(sbox[byte(t>>8)])<<16 |
			uint32(sbox[byte(t)])<<8 | uint32(sbox[byte(t>>24)])
		t ^= rcon[i/4-1]
		ks[i] = ks[i-4] ^ t
		ks[i+1] = ks[i-3] ^ ks[i]
		ks[i+2] = ks[i-2] ^ ks[i+1]
		ks[i+3] = ks[i-1] ^ ks[i+2]
	}
}

// EncryptAES128 encrypts one 16-byte block with the expanded schedule,
// without allocating. dst and src may overlap.
//
//colibri:nomalloc
func EncryptAES128(ks *AESSchedule, dst, src *[16]byte) {
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ ks[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ ks[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ ks[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ ks[3]

	var t0, t1, t2, t3 uint32
	k := 4
	for r := 0; r < 9; r++ {
		t0 = te0[byte(s0>>24)] ^ te1[byte(s1>>16)] ^ te2[byte(s2>>8)] ^ te3[byte(s3)] ^ ks[k]
		t1 = te0[byte(s1>>24)] ^ te1[byte(s2>>16)] ^ te2[byte(s3>>8)] ^ te3[byte(s0)] ^ ks[k+1]
		t2 = te0[byte(s2>>24)] ^ te1[byte(s3>>16)] ^ te2[byte(s0>>8)] ^ te3[byte(s1)] ^ ks[k+2]
		t3 = te0[byte(s3>>24)] ^ te1[byte(s0>>16)] ^ te2[byte(s1>>8)] ^ te3[byte(s2)] ^ ks[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
	s0 = uint32(sbox[byte(t0>>24)])<<24 | uint32(sbox[byte(t1>>16)])<<16 |
		uint32(sbox[byte(t2>>8)])<<8 | uint32(sbox[byte(t3)])
	s1 = uint32(sbox[byte(t1>>24)])<<24 | uint32(sbox[byte(t2>>16)])<<16 |
		uint32(sbox[byte(t3>>8)])<<8 | uint32(sbox[byte(t0)])
	s2 = uint32(sbox[byte(t2>>24)])<<24 | uint32(sbox[byte(t3>>16)])<<16 |
		uint32(sbox[byte(t0>>8)])<<8 | uint32(sbox[byte(t1)])
	s3 = uint32(sbox[byte(t3>>24)])<<24 | uint32(sbox[byte(t0>>16)])<<16 |
		uint32(sbox[byte(t1>>8)])<<8 | uint32(sbox[byte(t2)])
	s0 ^= ks[40]
	s1 ^= ks[41]
	s2 ^= ks[42]
	s3 ^= ks[43]
	binary.BigEndian.PutUint32(dst[0:4], s0)
	binary.BigEndian.PutUint32(dst[4:8], s1)
	binary.BigEndian.PutUint32(dst[8:12], s2)
	binary.BigEndian.PutUint32(dst[12:16], s3)
}

// SigmaMAC computes MAC_σ(block) = AES-128_σ(block) without allocating:
// the Eq. (6) step with a per-packet σ key.
//
//colibri:nomalloc
func SigmaMAC(ks *AESSchedule, sigma *Key, mac *[MACSize]byte, block *[16]byte) {
	ExpandAES128(ks, sigma)
	EncryptAES128(ks, mac, block)
}

// AESSchedule implements cipher.Block (encryption only), so an expanded
// software schedule and a crypto/aes cipher are interchangeable behind
// the interface — the tiered SchedCache hands out either.
var _ cipher.Block = (*AESSchedule)(nil)

// BlockSize implements cipher.Block.
func (ks *AESSchedule) BlockSize() int { return 16 }

// Encrypt implements cipher.Block; dst and src must be at least 16 bytes.
func (ks *AESSchedule) Encrypt(dst, src []byte) {
	EncryptAES128(ks, (*[16]byte)(dst), (*[16]byte)(src))
}

// Decrypt implements cipher.Block. The data plane only ever encrypts (the
// CBC-MAC and HVF computations run AES forward), so no decryption
// schedule is kept.
func (ks *AESSchedule) Decrypt(dst, src []byte) {
	panic("cryptoutil: AESSchedule is encrypt-only")
}
