package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// AEAD helpers for the control plane: hop authenticators are returned to the
// source AS "over a channel secured through authenticated encryption with
// associated data" (Eq. 5). AES-GCM under a DRKey-derived key, with the
// nonce prepended to the ciphertext.

const gcmNonceSize = 12

// ErrAEADOpen is returned when decryption or authentication fails.
var ErrAEADOpen = errors.New("cryptoutil: AEAD open failed")

func newGCM(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal encrypts plaintext under key with associated data ad, returning
// nonce ‖ ciphertext.
func Seal(key Key, plaintext, ad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, gcmNonceSize, gcmNonceSize+len(plaintext)+aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, out); err != nil {
		return nil, err
	}
	return aead.Seal(out, out[:gcmNonceSize], plaintext, ad), nil
}

// Open decrypts a Seal output.
func Open(key Key, sealed, ad []byte) ([]byte, error) {
	if len(sealed) < gcmNonceSize {
		return nil, fmt.Errorf("%w: too short", ErrAEADOpen)
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, sealed[:gcmNonceSize], sealed[gcmNonceSize:], ad)
	if err != nil {
		return nil, ErrAEADOpen
	}
	return pt, nil
}
