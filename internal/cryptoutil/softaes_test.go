package cryptoutil

import (
	"crypto/aes"
	"testing"
	"testing/quick"
)

// TestSoftAESMatchesStdlib: the software AES must be bit-identical to
// crypto/aes for random keys and blocks.
func TestSoftAESMatchesStdlib(t *testing.T) {
	f := func(key Key, block [16]byte) bool {
		std, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		var want [16]byte
		std.Encrypt(want[:], block[:])

		var ks AESSchedule
		var got [16]byte
		ExpandAES128(&ks, &key)
		EncryptAES128(&ks, &got, &block)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSoftAESFIPSVector checks the FIPS-197 appendix C.1 test vector.
func TestSoftAESFIPSVector(t *testing.T) {
	key := Key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := [16]byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
		0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	var ks AESSchedule
	var got [16]byte
	ExpandAES128(&ks, &key)
	EncryptAES128(&ks, &got, &pt)
	if got != want {
		t.Errorf("FIPS-197 vector: got %x want %x", got, want)
	}
}

func TestSigmaMACMatchesTwoStep(t *testing.T) {
	sigma := Key{7, 7, 7}
	block := [16]byte{1, 2, 3}
	var ks AESSchedule
	var got [MACSize]byte
	SigmaMAC(&ks, &sigma, &got, &block)

	var want [MACSize]byte
	MACOneBlock(NewBlock(sigma), &want, &block)
	if got != want {
		t.Errorf("SigmaMAC %x != two-step %x", got, want)
	}
}

func BenchmarkSigmaMAC(b *testing.B) {
	sigma := Key{1}
	block := [16]byte{2}
	var ks AESSchedule
	var mac [MACSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SigmaMAC(&ks, &sigma, &mac, &block)
	}
}
