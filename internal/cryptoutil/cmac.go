// Package cryptoutil provides the symmetric-cryptography primitives Colibri
// relies on: AES-CMAC (RFC 4493) for pseudo-random functions and
// control-plane MACs, and an allocation-free AES-CBC-MAC for the data-plane
// hot path (hop authenticators and hop validation fields).
//
// The paper computes all per-packet tags with "the AES-128 block cipher in
// CBC mode through native hardware-accelerated instructions" (§7.1); Go's
// crypto/aes uses AES-NI on amd64, so the per-packet work here matches the
// paper's.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

// KeySize is the AES-128 key size in bytes used throughout Colibri.
const KeySize = 16

// MACSize is the size of an untruncated MAC output.
const MACSize = aes.BlockSize

// Key is a 16-byte AES-128 key.
type Key [KeySize]byte

// CMAC implements the AES-CMAC message-authentication code of RFC 4493. It
// is safe for variable-length messages (unlike plain CBC-MAC) and therefore
// used as the PRF for DRKey derivation and for control-plane payload MACs.
//
// A CMAC value is not safe for concurrent use; each goroutine should own one.
type CMAC struct {
	block  cipher.Block
	k1, k2 [aes.BlockSize]byte
	// x is the CBC chaining scratch block; keeping it in the struct avoids a
	// per-call escape through the cipher.Block interface.
	x [aes.BlockSize]byte
}

// NewCMAC builds a CMAC instance for the given key. The AES key schedule is
// computed once, so instances should be cached and reused where possible.
func NewCMAC(key Key) (*CMAC, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	c := &CMAC{block: block}
	// Subkey generation per RFC 4493 §2.3.
	var l [aes.BlockSize]byte
	block.Encrypt(l[:], l[:])
	dbl(&c.k1, &l)
	dbl(&c.k2, &c.k1)
	return c, nil
}

// MustCMAC is NewCMAC for setup code; it panics on error (which for a
// 16-byte key cannot happen).
func MustCMAC(key Key) *CMAC {
	c, err := NewCMAC(key)
	if err != nil {
		panic(err)
	}
	return c
}

// dbl doubles a 128-bit value in GF(2^128) as required for CMAC subkeys.
func dbl(dst, src *[aes.BlockSize]byte) {
	var carry byte
	for i := aes.BlockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[aes.BlockSize-1] ^= 0x87
	}
}

// Sum appends the CMAC of msg to dst and returns the extended slice. It does
// not retain msg. Passing a dst with sufficient capacity avoids allocation.
func (c *CMAC) Sum(dst, msg []byte) []byte {
	var mac [MACSize]byte
	c.sum(&mac, msg)
	return append(dst, mac[:]...)
}

// SumInto computes the CMAC of msg into mac.
func (c *CMAC) SumInto(mac *[MACSize]byte, msg []byte) {
	c.sum(mac, msg)
}

func (c *CMAC) sum(mac *[MACSize]byte, msg []byte) {
	c.x = [aes.BlockSize]byte{}
	n := len(msg)
	// Process all complete blocks except the last.
	for n > aes.BlockSize {
		for i := 0; i < aes.BlockSize; i++ {
			c.x[i] ^= msg[i]
		}
		c.block.Encrypt(c.x[:], c.x[:])
		msg = msg[aes.BlockSize:]
		n -= aes.BlockSize
	}
	// Last block: complete → XOR K1; partial → pad and XOR K2.
	var last [aes.BlockSize]byte
	if n == aes.BlockSize {
		copy(last[:], msg)
		for i := range last {
			last[i] ^= c.k1[i]
		}
	} else {
		copy(last[:], msg)
		last[n] = 0x80
		for i := range last {
			last[i] ^= c.k2[i]
		}
	}
	for i := range c.x {
		c.x[i] ^= last[i]
	}
	c.block.Encrypt(c.x[:], c.x[:])
	*mac = c.x
}

// DeriveKey uses the CMAC as a PRF to derive a subordinate 16-byte key from
// the input, as DRKey does: K_out = PRF_K(input).
func (c *CMAC) DeriveKey(input []byte) Key {
	var mac [MACSize]byte
	c.sum(&mac, input)
	return Key(mac)
}

// ConstantTimeEqual compares two MAC slices without leaking timing.
func ConstantTimeEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
