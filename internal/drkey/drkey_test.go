package drkey

import (
	"errors"
	"testing"
	"testing/quick"

	"colibri/internal/cryptoutil"
	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

func TestEpochAt(t *testing.T) {
	e := NewEngine(ia(1, 1), cryptoutil.Key{1}, 100)
	ep := e.EpochAt(250)
	if ep.Begin != 200 || ep.End != 300 {
		t.Errorf("EpochAt(250) = %v", ep)
	}
	if !ep.Contains(250) || !ep.Contains(200) || ep.Contains(300) || ep.Contains(199) {
		t.Error("Contains boundaries wrong")
	}
}

func TestSecretValueStablePerEpoch(t *testing.T) {
	e := NewEngine(ia(1, 1), cryptoutil.Key{1}, 100)
	sv1, ep1 := e.SecretValue(210)
	sv2, ep2 := e.SecretValue(299)
	if sv1 != sv2 || ep1 != ep2 {
		t.Error("secret value changed within one epoch")
	}
	sv3, _ := e.SecretValue(300)
	if sv1 == sv3 {
		t.Error("secret value did not rotate at epoch boundary")
	}
	// Going back to a previous epoch re-derives the same value.
	sv4, _ := e.SecretValue(250)
	if sv4 != sv1 {
		t.Error("re-derived secret value differs")
	}
}

func TestLevel1Properties(t *testing.T) {
	e := NewEngine(ia(1, 1), cryptoutil.Key{42}, 1000)
	kB, _ := e.Level1(ia(1, 2), 500)
	kB2, _ := e.Level1(ia(1, 2), 999)
	if kB != kB2 {
		t.Error("level-1 key not stable within epoch")
	}
	kC, _ := e.Level1(ia(1, 3), 500)
	if kB == kC {
		t.Error("level-1 keys for different peers collide")
	}
	e2 := NewEngine(ia(1, 1), cryptoutil.Key{43}, 1000)
	kB3, _ := e2.Level1(ia(1, 2), 500)
	if kB == kB3 {
		t.Error("different masters derive identical keys")
	}
}

func TestLevel1QuickNoCollisions(t *testing.T) {
	e := NewEngine(ia(1, 1), RandomMaster(), 1000)
	f := func(a, b uint32) bool {
		ka, _ := e.Level1(ia(1, topology.ASID(a)), 100)
		kb, _ := e.Level1(ia(1, topology.ASID(b)), 100)
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostKeyDerivation(t *testing.T) {
	base := cryptoutil.Key{7}
	k1 := HostKey(base, 1, 100)
	k2 := HostKey(base, 1, 100)
	k3 := HostKey(base, 1, 101)
	k4 := HostKey(base, 2, 100)
	if k1 != k2 {
		t.Error("host key not deterministic")
	}
	if k1 == k3 || k1 == k4 || k3 == k4 {
		t.Error("host keys collide across host/proto")
	}
}

// directTransport routes fetch requests to in-process servers.
type directTransport map[topology.IA]*Server

func (d directTransport) QueryKeyServer(dst topology.IA, req []byte) ([]byte, error) {
	s, ok := d[dst]
	if !ok {
		return nil, errors.New("no route")
	}
	return s.Handle(req)
}

func setupPair(t *testing.T) (*Engine, *Server, *Store, directTransport, *TrustStore) {
	t.Helper()
	a, b := ia(1, 1), ia(1, 2)
	engA := NewEngine(a, RandomMaster(), 0)
	idA := NewIdentity(a)
	srvA := NewServer(engA, idA)
	trust := NewTrustStore(idA)
	tr := directTransport{a: srvA}
	store := NewStore(b, tr, trust)
	return engA, srvA, store, tr, trust
}

func TestFetchMatchesDerivation(t *testing.T) {
	engA, _, store, _, _ := setupPair(t)
	const now = 1_700_000_000
	got, err := store.Get(engA.IA(), now)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := engA.Level1(ia(1, 2), now)
	if got != want {
		t.Errorf("fetched key %x != derived %x", got, want)
	}
}

func TestStoreCaches(t *testing.T) {
	engA, srvA, store, tr, _ := setupPair(t)
	const now = 1_700_000_000
	if _, err := store.Get(engA.IA(), now); err != nil {
		t.Fatal(err)
	}
	if store.CachedCount() != 1 {
		t.Fatalf("cache count = %d", store.CachedCount())
	}
	// Break the transport: cached epochs must still serve.
	delete(tr, engA.IA())
	if _, err := store.Get(engA.IA(), now+1000); err != nil {
		t.Errorf("cached key not served: %v", err)
	}
	// After epoch expiry the fetch must happen again and fail.
	if _, err := store.Get(engA.IA(), now+2*DefaultEpochSeconds); err == nil {
		t.Error("expected fetch failure after epoch expiry")
	}
	_ = srvA
}

func TestFetchRejectsForgedSignature(t *testing.T) {
	a, b := ia(1, 1), ia(1, 2)
	engA := NewEngine(a, RandomMaster(), 0)
	idA := NewIdentity(a)
	srvA := NewServer(engA, idA)
	// Trust store holds a *different* key for A: the signature must fail.
	wrongID := NewIdentity(a)
	trust := NewTrustStore(wrongID)
	store := NewStore(b, directTransport{a: srvA}, trust)
	if _, err := store.Get(a, 1000); !errors.Is(err, ErrBadSig) {
		t.Errorf("want ErrBadSig, got %v", err)
	}
}

func TestFetchRejectsTamperedResponse(t *testing.T) {
	a, b := ia(1, 1), ia(1, 2)
	engA := NewEngine(a, RandomMaster(), 0)
	idA := NewIdentity(a)
	srvA := NewServer(engA, idA)
	trust := NewTrustStore(idA)
	tamper := transportFunc(func(dst topology.IA, req []byte) ([]byte, error) {
		res, err := srvA.Handle(req)
		if err != nil {
			return nil, err
		}
		res[50] ^= 0xff // flip a ciphertext bit
		return res, nil
	})
	store := NewStore(b, tamper, trust)
	if _, err := store.Get(a, 1000); err == nil {
		t.Error("tampered response accepted")
	}
}

type transportFunc func(dst topology.IA, req []byte) ([]byte, error)

func (f transportFunc) QueryKeyServer(dst topology.IA, req []byte) ([]byte, error) {
	return f(dst, req)
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	engA := NewEngine(ia(1, 1), RandomMaster(), 0)
	srv := NewServer(engA, NewIdentity(ia(1, 1)))
	if _, err := srv.Handle(nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil request: %v", err)
	}
	if _, err := srv.Handle(make([]byte, 10)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("short request: %v", err)
	}
	bad := make([]byte, reqLen) // all-zero X25519 point is low order → rejected
	if _, err := srv.Handle(bad); err == nil {
		t.Error("all-zero public key accepted")
	}
}

func TestPrefetch(t *testing.T) {
	a, b, c := ia(1, 1), ia(1, 2), ia(1, 3)
	engA := NewEngine(a, RandomMaster(), 0)
	engC := NewEngine(c, RandomMaster(), 0)
	idA, idC := NewIdentity(a), NewIdentity(c)
	trust := NewTrustStore(idA, idC)
	tr := directTransport{a: NewServer(engA, idA), c: NewServer(engC, idC)}
	store := NewStore(b, tr, trust)
	if err := store.Prefetch(1000, a, c); err != nil {
		t.Fatal(err)
	}
	if store.CachedCount() != 2 {
		t.Errorf("cache count = %d, want 2", store.CachedCount())
	}
	// Prefetch with one unreachable source reports the error.
	if err := store.Prefetch(1000, ia(9, 9)); err == nil {
		t.Error("expected error for unreachable source")
	}
}

func TestNewServerPanicsOnIAMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewServer(NewEngine(ia(1, 1), RandomMaster(), 0), NewIdentity(ia(1, 2)))
}

func BenchmarkLevel1Derivation(b *testing.B) {
	e := NewEngine(ia(1, 1), RandomMaster(), 0)
	e.SecretValue(1000) // warm the epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Level1(ia(1, topology.ASID(i%1000)), 1000)
	}
}
