package drkey

import (
	"fmt"
	"sync"

	"colibri/internal/cryptoutil"
	"colibri/internal/topology"
)

// Store is the slow-side cache of fetched level-1 keys for one AS. Keys are
// fetched ahead of time and renewed per epoch ("they can be fetched ahead of
// time and only need to be infrequently renewed", §2.3). It is safe for
// concurrent use.
type Store struct {
	local topology.IA
	tr    Transport
	trust *TrustStore

	mu   sync.RWMutex
	keys map[topology.IA]cachedKey
}

type cachedKey struct {
	key   cryptoutil.Key
	epoch Epoch
}

// NewStore builds a key store for the local AS fetching over the transport.
func NewStore(local topology.IA, tr Transport, trust *TrustStore) *Store {
	return &Store{local: local, tr: tr, trust: trust, keys: make(map[topology.IA]cachedKey)}
}

// Get returns K_{src→local} valid at time t, fetching it from src's key
// server on cache miss or epoch expiry.
func (s *Store) Get(src topology.IA, t uint32) (cryptoutil.Key, error) {
	s.mu.RLock()
	c, ok := s.keys[src]
	s.mu.RUnlock()
	if ok && c.epoch.Contains(t) {
		return c.key, nil
	}
	key, ep, err := Fetch(s.tr, s.trust, src, s.local, t)
	if err != nil {
		return cryptoutil.Key{}, fmt.Errorf("drkey: fetching K_{%s→%s}: %w", src, s.local, err)
	}
	if !ep.Contains(t) {
		return cryptoutil.Key{}, fmt.Errorf("drkey: server returned epoch %v not covering %d", ep, t)
	}
	s.mu.Lock()
	s.keys[src] = cachedKey{key: key, epoch: ep}
	s.mu.Unlock()
	return key, nil
}

// Prefetch warms the cache for all given sources at time t, returning the
// first error encountered (but attempting all).
func (s *Store) Prefetch(t uint32, srcs ...topology.IA) error {
	var firstErr error
	for _, src := range srcs {
		if _, err := s.Get(src, t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CachedCount returns the number of cached keys (for tests and metrics).
func (s *Store) CachedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keys)
}
