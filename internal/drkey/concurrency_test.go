package drkey

import (
	"sync"
	"testing"

	"colibri/internal/topology"
)

func TestEpochRolloverConsistency(t *testing.T) {
	// Keys must agree between fast derivation and fetch in *every* epoch,
	// including right at the boundary.
	a, b := ia(1, 1), ia(1, 2)
	engA := NewEngine(a, RandomMaster(), 1000)
	idA := NewIdentity(a)
	trust := NewTrustStore(idA)
	tr := directTransport{a: NewServer(engA, idA)}
	store := NewStore(b, tr, trust)

	for _, when := range []uint32{999, 1000, 1001, 1999, 2000, 5000} {
		fetched, err := store.Get(a, when)
		if err != nil {
			t.Fatalf("t=%d: %v", when, err)
		}
		derived, ep := engA.Level1(b, when)
		if fetched != derived {
			t.Errorf("t=%d (epoch %v): fetched != derived", when, ep)
		}
	}
	// Distinct epochs yield distinct keys.
	k1, _ := engA.Level1(b, 999)
	k2, _ := engA.Level1(b, 1000)
	if k1 == k2 {
		t.Error("keys identical across epoch boundary")
	}
}

// TestStoreConcurrentGet hammers the cache from many goroutines (run with
// -race): concurrent misses and hits must be safe and converge to one
// cached key per source.
func TestStoreConcurrentGet(t *testing.T) {
	const peers = 8
	local := ia(1, 100)
	tr := directTransport{}
	ids := make([]*Identity, 0, peers)
	for i := 1; i <= peers; i++ {
		src := ia(1, topology.ASID(i))
		id := NewIdentity(src)
		ids = append(ids, id)
		tr[src] = NewServer(NewEngine(src, RandomMaster(), 0), id)
	}
	store := NewStore(local, tr, NewTrustStore(ids...))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src := ia(1, topology.ASID(1+(g+i)%peers))
				if _, err := store.Get(src, 1_700_000_000); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if store.CachedCount() != peers {
		t.Errorf("cached %d keys, want %d", store.CachedCount(), peers)
	}
}

// TestEngineConcurrentDerivation: the engine memoizes the current epoch;
// derivations for one epoch from many goroutines must agree. The engine is
// documented as not concurrency-safe for *mutation* across epochs, so all
// goroutines stay in one epoch — the common hot-path pattern.
func TestEngineConcurrentDerivation(t *testing.T) {
	eng := NewEngine(ia(1, 1), RandomMaster(), 0)
	want, _ := eng.Level1(ia(1, 2), 1_700_000_000) // warm the epoch
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, _ := eng.Level1(ia(1, 2), 1_700_000_000)
				if got != want {
					t.Error("derivation mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}
