package drkey

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"colibri/internal/cryptoutil"
	"colibri/internal/topology"
)

// The slow-side fetch protocol: AS B requests K_{A→B} from A's key server.
//
//	Request:  B's IA ‖ B's ephemeral X25519 public key ‖ time
//	Response: epoch ‖ X25519 server public key ‖ nonce ‖
//	          AES-GCM_{shared}(K_{A→B}) ‖ ed25519 signature by A
//
// The shared AES-GCM key is derived from the X25519 agreement, so the
// level-1 key never travels in the clear; the ed25519 signature (verified
// against A's public key from the trust store, standing in for SCION's
// control-plane PKI) authenticates the response. This mirrors Eq. (5)'s
// requirement that keys move only over channels secured with AEAD.

// Wire sizes of the fixed-layout fetch messages.
const (
	reqLen  = 8 + 32 + 4
	resLen  = 8 + 32 + 12 + (16 + 16) + ed25519.SignatureSize
	nonceSz = 12
)

// Errors returned by the fetch protocol.
var (
	ErrBadRequest  = errors.New("drkey: malformed request")
	ErrBadResponse = errors.New("drkey: malformed response")
	ErrBadSig      = errors.New("drkey: response signature invalid")
)

// Identity is the long-term key material of an AS's key server.
type Identity struct {
	IA      topology.IA
	Signer  ed25519.PrivateKey
	Public  ed25519.PublicKey
	ecdhKey *ecdh.PrivateKey
}

// NewIdentity generates fresh long-term keys for an AS.
func NewIdentity(ia topology.IA) *Identity {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	ek, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	return &Identity{IA: ia, Signer: priv, Public: pub, ecdhKey: ek}
}

// TrustStore maps ASes to their ed25519 public keys; it stands in for the
// ISD trust roots of the underlying architecture.
type TrustStore struct {
	keys map[topology.IA]ed25519.PublicKey
}

// NewTrustStore builds a trust store from identities.
func NewTrustStore(ids ...*Identity) *TrustStore {
	ts := &TrustStore{keys: make(map[topology.IA]ed25519.PublicKey, len(ids))}
	for _, id := range ids {
		ts.keys[id.IA] = id.Public
	}
	return ts
}

// Add registers one more AS public key.
func (ts *TrustStore) Add(ia topology.IA, pub ed25519.PublicKey) { ts.keys[ia] = pub }

// PublicKey returns the registered key for the AS, or nil.
func (ts *TrustStore) PublicKey(ia topology.IA) ed25519.PublicKey { return ts.keys[ia] }

// Server answers level-1 key requests for one AS.
type Server struct {
	engine *Engine
	id     *Identity
}

// NewServer builds a key server around the engine and identity (which must
// belong to the same AS).
func NewServer(engine *Engine, id *Identity) *Server {
	if engine.IA() != id.IA {
		panic("drkey: engine and identity IA mismatch")
	}
	return &Server{engine: engine, id: id}
}

// MarshalRequest encodes a fetch request from requester for time t using the
// given ephemeral key.
func MarshalRequest(requester topology.IA, eph *ecdh.PrivateKey, t uint32) []byte {
	buf := make([]byte, reqLen)
	binary.BigEndian.PutUint64(buf[0:8], uint64(requester))
	copy(buf[8:40], eph.PublicKey().Bytes())
	binary.BigEndian.PutUint32(buf[40:44], t)
	return buf
}

// Handle processes a marshaled request and returns the marshaled response.
// The requester IA is taken from the request; in a deployment the transport
// would authenticate it, here the signature binds the key to that IA either
// way (a spoofing requester only obtains a key derived *for the spoofed AS*,
// which is useless without that AS's traffic being attributable to it).
func (s *Server) Handle(req []byte) ([]byte, error) {
	if len(req) != reqLen {
		return nil, ErrBadRequest
	}
	requester := topology.IA(binary.BigEndian.Uint64(req[0:8]))
	clientPub, err := ecdh.X25519().NewPublicKey(req[8:40])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	t := binary.BigEndian.Uint32(req[40:44])

	key, ep := s.engine.Level1(requester, t)

	shared, err := s.id.ecdhKey.ECDH(clientPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	aead, err := newAEAD(shared)
	if err != nil {
		return nil, err
	}
	res := make([]byte, 0, resLen)
	var hdr [8 + 32 + nonceSz]byte
	binary.BigEndian.PutUint32(hdr[0:4], ep.Begin)
	binary.BigEndian.PutUint32(hdr[4:8], ep.End)
	copy(hdr[8:40], s.id.ecdhKey.PublicKey().Bytes())
	if _, err := rand.Read(hdr[40 : 40+nonceSz]); err != nil {
		return nil, err
	}
	res = append(res, hdr[:]...)
	// Associated data binds ciphertext to (server AS, requester AS, epoch).
	ad := associatedData(s.engine.IA(), requester, ep)
	res = aead.Seal(res, hdr[40:40+nonceSz], key[:], ad)
	sig := ed25519.Sign(s.id.Signer, res)
	res = append(res, sig...)
	return res, nil
}

// Transport delivers a marshaled request to the key server of dst and
// returns its marshaled response. Implementations: in-process (tests), the
// netsim message fabric, or a real network client.
type Transport interface {
	QueryKeyServer(dst topology.IA, req []byte) ([]byte, error)
}

// Fetch obtains K_{src→requester} from src's key server via the transport,
// verifying the response signature against the trust store.
func Fetch(tr Transport, ts *TrustStore, src, requester topology.IA, t uint32) (cryptoutil.Key, Epoch, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return cryptoutil.Key{}, Epoch{}, err
	}
	res, err := tr.QueryKeyServer(src, MarshalRequest(requester, eph, t))
	if err != nil {
		return cryptoutil.Key{}, Epoch{}, err
	}
	return openResponse(ts, src, requester, eph, res)
}

func openResponse(ts *TrustStore, src, requester topology.IA, eph *ecdh.PrivateKey, res []byte) (cryptoutil.Key, Epoch, error) {
	var zero cryptoutil.Key
	if len(res) != resLen {
		return zero, Epoch{}, ErrBadResponse
	}
	body, sig := res[:len(res)-ed25519.SignatureSize], res[len(res)-ed25519.SignatureSize:]
	pub := ts.PublicKey(src)
	if pub == nil || !ed25519.Verify(pub, body, sig) {
		return zero, Epoch{}, ErrBadSig
	}
	ep := Epoch{
		Begin: binary.BigEndian.Uint32(body[0:4]),
		End:   binary.BigEndian.Uint32(body[4:8]),
	}
	serverPub, err := ecdh.X25519().NewPublicKey(body[8:40])
	if err != nil {
		return zero, Epoch{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	shared, err := eph.ECDH(serverPub)
	if err != nil {
		return zero, Epoch{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	aead, err := newAEAD(shared)
	if err != nil {
		return zero, Epoch{}, err
	}
	nonce := body[40 : 40+nonceSz]
	ct := body[40+nonceSz:]
	pt, err := aead.Open(nil, nonce, ct, associatedData(src, requester, ep))
	if err != nil {
		return zero, Epoch{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	var key cryptoutil.Key
	copy(key[:], pt)
	return key, ep, nil
}

func associatedData(server, requester topology.IA, ep Epoch) []byte {
	var ad [20]byte
	binary.BigEndian.PutUint64(ad[0:8], uint64(server))
	binary.BigEndian.PutUint64(ad[8:16], uint64(requester))
	binary.BigEndian.PutUint32(ad[16:20], ep.Begin)
	return ad[:]
}

func newAEAD(shared []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(shared[:16])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
