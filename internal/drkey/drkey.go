// Package drkey implements the dynamically-recreatable-key (DRKey)
// infrastructure Colibri uses for line-rate control-plane authentication
// (§2.3 of the paper, and PISKES).
//
// Every AS A holds a per-epoch secret value SV_A from which it derives, with
// one PRF invocation and no state, the symmetric key shared with any other
// AS B:
//
//	K_{A→B} = PRF_{SV_A}(B)
//
// The arrow denotes asymmetry: A derives the key on the fly (faster than a
// memory lookup), while B must fetch it from A's key server over a channel
// protected by public-key cryptography (here: X25519 key agreement +
// AES-GCM, ed25519-signed responses) and cache it for the epoch.
package drkey

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"colibri/internal/cryptoutil"
	"colibri/internal/topology"
)

// DefaultEpochSeconds is the validity period of secret values and level-1
// keys: one day, per the paper ("the validity period of these keys is on the
// order of a day").
const DefaultEpochSeconds = 24 * 60 * 60

// Epoch is a key validity interval [Begin, End) in Unix seconds.
type Epoch struct {
	Begin, End uint32
}

// Contains reports whether t lies inside the epoch.
func (e Epoch) Contains(t uint32) bool { return t >= e.Begin && t < e.End }

func (e Epoch) String() string { return fmt.Sprintf("[%d,%d)", e.Begin, e.End) }

// Engine is one AS's DRKey derivation engine. It owns the AS master secret
// and derives epoch secret values and level-1/level-2 keys. The zero value
// is not usable; construct with NewEngine. Safe for concurrent use (the
// CServ derives keys from concurrent request handlers).
type Engine struct {
	ia        topology.IA
	master    cryptoutil.Key
	epochSecs uint32

	mu          sync.Mutex
	masterCMAC  *cryptoutil.CMAC
	currentSV   cryptoutil.Key
	currentCMAC *cryptoutil.CMAC
	currentEp   Epoch
}

// NewEngine creates a DRKey engine for the AS with the given master secret.
// epochSecs = 0 selects DefaultEpochSeconds.
func NewEngine(ia topology.IA, master cryptoutil.Key, epochSecs uint32) *Engine {
	if epochSecs == 0 {
		epochSecs = DefaultEpochSeconds
	}
	return &Engine{
		ia:         ia,
		master:     master,
		epochSecs:  epochSecs,
		masterCMAC: cryptoutil.MustCMAC(master),
	}
}

// RandomMaster returns a fresh random master secret.
func RandomMaster() cryptoutil.Key {
	var k cryptoutil.Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		panic(err) // crypto/rand failure is not recoverable
	}
	return k
}

// IA returns the engine's AS.
func (e *Engine) IA() topology.IA { return e.ia }

// EpochAt returns the epoch containing time t.
func (e *Engine) EpochAt(t uint32) Epoch {
	begin := t - t%e.epochSecs
	return Epoch{Begin: begin, End: begin + e.epochSecs}
}

// SecretValue returns SV_A for the epoch containing t, derived as
// PRF_master("sv" ‖ epochBegin). The most recent value is memoized.
func (e *Engine) SecretValue(t uint32) (cryptoutil.Key, Epoch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ep := e.secretValueLocked(t)
	return e.currentSV, ep
}

func (e *Engine) secretValueLocked(t uint32) (*cryptoutil.CMAC, Epoch) {
	ep := e.EpochAt(t)
	if ep == e.currentEp && e.currentCMAC != nil {
		return e.currentCMAC, ep
	}
	var input [6]byte
	input[0], input[1] = 's', 'v'
	binary.BigEndian.PutUint32(input[2:], ep.Begin)
	sv := e.masterCMAC.DeriveKey(input[:])
	e.currentSV = sv
	e.currentEp = ep
	e.currentCMAC = cryptoutil.MustCMAC(sv)
	return e.currentCMAC, ep
}

// Level1 derives K_{A→B} for the epoch containing t: PRF_{SV_A}(B ‖ epoch).
// This is the fast-side derivation ("faster than a memory lookup").
func (e *Engine) Level1(dst topology.IA, t uint32) (cryptoutil.Key, Epoch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cmac, ep := e.secretValueLocked(t)
	var input [12]byte
	binary.BigEndian.PutUint64(input[:8], uint64(dst))
	binary.BigEndian.PutUint32(input[8:], ep.Begin)
	return cmac.DeriveKey(input[:]), ep
}

// HostKey derives a protocol/host-specific level-2 key from a level-1 key:
// K_{A→B:H} = PRF_{K_{A→B}}(proto ‖ H). The paper's footnote 2 collapses
// this level for readability; we provide it for completeness.
func HostKey(level1 cryptoutil.Key, proto uint8, host uint32) cryptoutil.Key {
	c := cryptoutil.MustCMAC(level1)
	var input [5]byte
	input[0] = proto
	binary.BigEndian.PutUint32(input[1:], host)
	return c.DeriveKey(input[:])
}
