// Package core assembles the complete Colibri system over a topology: one
// node per AS composed of a Colibri service (control plane), a border
// router, a Colibri gateway, DRKey key server, and the monitoring stack —
// and an end-host API to request reservations and send protected traffic.
//
// It is the integration layer the paper's Fig. 1 depicts: CServs (C)
// handling SegR/EER setup, gateways (G) monitoring and stamping host
// traffic, border routers (B) validating statelessly, and monitors (M)
// policing transit traffic. The root package colibri re-exports this as the
// public API.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"colibri/internal/cryptoutil"
	"colibri/internal/cserv"
	"colibri/internal/drkey"
	"colibri/internal/gateway"
	"colibri/internal/monitor"
	"colibri/internal/ofd"
	"colibri/internal/replay"
	"colibri/internal/router"
	"colibri/internal/segment"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Clock is the network-wide virtual clock in nanoseconds. Tests and
// simulations advance it explicitly; live deployments would back it with
// the synchronized system time of §2.3.
type Clock struct {
	ns atomic.Int64
}

// NewClock starts a clock at the given Unix time in seconds.
func NewClock(unixSec uint32) *Clock {
	c := &Clock{}
	c.ns.Store(int64(unixSec) * 1e9)
	return c
}

// NowNs returns the current time in nanoseconds.
func (c *Clock) NowNs() int64 { return c.ns.Load() }

// NowSec returns the current Unix time in seconds.
func (c *Clock) NowSec() uint32 { return uint32(c.ns.Load() / 1e9) }

// Advance moves the clock forward by d nanoseconds.
func (c *Clock) Advance(dNs int64) { c.ns.Add(dNs) }

// Node is one AS's full Colibri deployment.
type Node struct {
	IA      topology.IA
	AS      *topology.AS
	CServ   *cserv.Service
	Router  *router.Router
	Gateway *gateway.Gateway
	KeySrv  *drkey.Server
	// Telemetry is the AS-wide registry all of the node's components emit
	// through; nil unless Options.Telemetry was set.
	Telemetry *telemetry.Registry

	// routerWorker is the node's default worker for the Network's
	// single-threaded data-plane walk; benches create their own.
	routerWorker *router.Worker
	gwWorker     *gateway.Worker
}

// Options configures NewNetwork.
type Options struct {
	// Clock to use; a fresh one starting at a fixed epoch if nil.
	Clock *Clock
	// EnableReplaySuppression arms the duplicate-suppression system at
	// every border router.
	EnableReplaySuppression bool
	// EnableOFD arms the probabilistic overuse detector at every border
	// router.
	EnableOFD bool
	// RateLimit is the per-source-AS control-plane request budget per
	// second (0 = cserv default).
	RateLimit int
	// Policy assigns intra-AS host policies (nil entries = allow all).
	Policy map[topology.IA]cserv.Policy
	// DiscoverOpts tunes path discovery.
	DiscoverOpts segment.DiscoverOpts
	// WrapTransport, when set, wraps each AS's control-plane transport —
	// the hook chaos experiments use to insert fault injection and/or
	// cserv.RetryTransport between a CServ and the fabric.
	WrapTransport func(ia topology.IA, inner cserv.Transport) cserv.Transport
	// Telemetry creates one telemetry.Registry per AS and wires CServ,
	// router, gateway, and flow monitor into it.
	Telemetry bool
	// CPlaneShards, when > 0 (power of two), backs every AS's CServ with a
	// sharded CPlane admission engine instead of the single-store path.
	CPlaneShards int
	// CPlaneWorkers fans batched renewal waves across this many goroutines
	// per AS (0 or 1 = inline). With more than one worker, call Close when
	// done with the network.
	CPlaneWorkers int
}

// Network is a fully wired multi-AS Colibri deployment.
type Network struct {
	Topo      *topology.Topology
	Registry  *segment.Registry
	Directory *cserv.Directory
	Clock     *Clock

	nodes map[topology.IA]*Node
	hosts map[hostKey]*Host
}

type hostKey struct {
	ia   topology.IA
	addr uint32
}

// DefaultEpoch is the virtual start time of new networks.
const DefaultEpoch = uint32(1_700_000_000)

// NewNetwork builds and wires nodes for every AS of the topology.
func NewNetwork(topo *topology.Topology, opts Options) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.Clock == nil {
		opts.Clock = NewClock(DefaultEpoch)
	}
	n := &Network{
		Topo:      topo,
		Registry:  segment.Discover(topo, opts.DiscoverOpts),
		Directory: cserv.NewDirectory(),
		Clock:     opts.Clock,
		nodes:     make(map[topology.IA]*Node),
		hosts:     make(map[hostKey]*Host),
	}

	ids := make([]*drkey.Identity, 0, len(topo.ASes))
	engines := make(map[topology.IA]*drkey.Engine, len(topo.ASes))
	for _, ia := range topo.SortedIAs() {
		id := drkey.NewIdentity(ia)
		ids = append(ids, id)
		engines[ia] = drkey.NewEngine(ia, drkey.RandomMaster(), 0)
		n.nodes[ia] = &Node{IA: ia, AS: topo.AS(ia), KeySrv: drkey.NewServer(engines[ia], id)}
	}
	trust := drkey.NewTrustStore(ids...)

	for _, ia := range topo.SortedIAs() {
		node := n.nodes[ia]
		if opts.Telemetry {
			node.Telemetry = telemetry.NewRegistry("as " + ia.String())
		}
		// The per-AS data-plane secret K_i, shared by the AS's CServ and
		// border router.
		asSecret := cryptoutil.Key{}
		copy(asSecret[:], secretFor(ia))
		transport := cserv.Transport(n)
		if opts.WrapTransport != nil {
			transport = opts.WrapTransport(ia, transport)
		}
		node.CServ = cserv.New(cserv.Config{
			AS:        topo.AS(ia),
			Topo:      topo,
			Secret:    asSecret,
			Engine:    engines[ia],
			Keys:      drkey.NewStore(ia, n, trust),
			Directory: n.Directory,
			Transport: transport,
			Clock:     n.Clock.NowSec,
			Policy:    opts.Policy[ia],
			RateLimit: opts.RateLimit,
			Telemetry: node.Telemetry,

			CPlaneShards:  opts.CPlaneShards,
			CPlaneWorkers: opts.CPlaneWorkers,
		})
		rcfg := router.Config{IA: ia, Secret: asSecret, Telemetry: node.Telemetry}
		if opts.EnableReplaySuppression {
			rcfg.Replay = replay.New(replay.Config{})
			if node.Telemetry != nil {
				rcfg.Replay.SetGauge(node.Telemetry.Gauge("replay.window_inserts"))
			}
		}
		if opts.EnableOFD {
			rcfg.OFD = ofd.New(ofd.Config{})
			if node.Telemetry != nil {
				rcfg.OFD.SetGauge(node.Telemetry.Gauge("ofd.suspicious"))
			}
		}
		rcfg.Blocklist = monitor.NewBlocklist()
		node.Router = router.New(rcfg)
		node.Gateway = gateway.New(ia)
		if node.Telemetry != nil {
			node.Gateway.EnableTelemetry(node.Telemetry)
		}
		node.routerWorker = node.Router.NewWorker()
		node.gwWorker = node.Gateway.NewWorker()
	}
	return n, nil
}

// secretFor derives a random-per-run AS secret; deterministic derivation is
// unnecessary since routers and CServ of one AS share the same Node.
var networkSecretSeed = func() cryptoutil.Key { return drkey.RandomMaster() }()

func secretFor(ia topology.IA) []byte {
	c := cryptoutil.MustCMAC(networkSecretSeed)
	k := c.DeriveKey([]byte(ia.String()))
	return k[:]
}

// Call implements cserv.Transport over the in-process fabric.
func (n *Network) Call(dst topology.IA, msg []byte) ([]byte, error) {
	node, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("core: no node for %s", dst)
	}
	return node.CServ.HandleMsg(msg)
}

// QueryKeyServer implements drkey.Transport over the in-process fabric.
func (n *Network) QueryKeyServer(dst topology.IA, req []byte) ([]byte, error) {
	node, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("core: no key server for %s", dst)
	}
	return node.KeySrv.Handle(req)
}

// Node returns the node of an AS (nil if unknown).
func (n *Network) Node(ia topology.IA) *Node { return n.nodes[ia] }

// TelemetrySnapshots captures the registry of every AS (in sorted AS order).
// Empty unless the network was built with Options.Telemetry.
func (n *Network) TelemetrySnapshots() []telemetry.Snapshot {
	var snaps []telemetry.Snapshot
	for _, ia := range n.Topo.SortedIAs() {
		if node := n.nodes[ia]; node.Telemetry != nil {
			snaps = append(snaps, node.Telemetry.Snapshot())
		}
	}
	return snaps
}

// Tick runs housekeeping on every node (expiry cleanup, rate-limit windows).
func (n *Network) Tick() {
	now := n.Clock.NowSec()
	for _, ia := range n.Topo.SortedIAs() {
		node := n.nodes[ia]
		node.CServ.Tick()
		node.Gateway.Expire(now)
	}
}

// Close releases per-node resources (CPlane worker pools). Only needed when
// the network was built with Options.CPlaneWorkers > 1.
func (n *Network) Close() {
	for _, ia := range n.Topo.SortedIAs() {
		n.nodes[ia].CServ.Close()
	}
}

// SetupSegR initiates a SegR over the given segment from its first AS.
func (n *Network) SetupSegR(seg *segment.Segment, minKbps, maxKbps uint64) error {
	node, ok := n.nodes[seg.SrcIA()]
	if !ok {
		return fmt.Errorf("core: unknown AS %s", seg.SrcIA())
	}
	_, err := node.CServ.SetupSegment(seg, minKbps, maxKbps)
	return err
}

// AutoSetupSegRs establishes a default mesh of segment reservations at the
// given bandwidth: every non-core AS reserves its up-segments, core ASes
// reserve core-segments between each other, and (acting on behalf of the
// destination ASes, §3.3) down-segments to every non-core AS. This is the
// bootstrap an operator would drive from traffic forecasts.
func (n *Network) AutoSetupSegRs(bwKbps uint64) error {
	var errs []error
	for _, as := range n.Topo.NonCoreASes() {
		for _, seg := range n.Registry.UpSegments(as.IA) {
			if err := n.SetupSegR(seg, 0, bwKbps); err != nil {
				errs = append(errs, err)
			}
		}
		for _, seg := range n.Registry.DownSegments(as.IA) {
			if err := n.SetupSegR(seg, 0, bwKbps); err != nil {
				errs = append(errs, err)
			}
		}
	}
	cores := n.Topo.CoreASes()
	for _, a := range cores {
		for _, b := range cores {
			if a.IA == b.IA {
				continue
			}
			for _, seg := range n.Registry.CoreSegments(a.IA, b.IA) {
				if err := n.SetupSegR(seg, 0, bwKbps); err != nil {
					errs = append(errs, err)
				}
			}
		}
	}
	return errors.Join(errs...)
}
