package core

import (
	"strings"
	"testing"
)

func TestGrantStampAndInject(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ExpiresAt() <= net.Clock.NowSec() {
		t.Error("ExpiresAt in the past")
	}
	g := sess.Grant()
	if g.Res.ResID == 0 || len(g.Path) != 5 || len(g.HopAuths) != 5 {
		t.Fatalf("grant view: %+v", g)
	}
	// A correctly stamped packet is delivered.
	ok := g.Stamp([]byte("valid"), net.Clock.NowNs(), false)
	if err := net.InjectPacket(ok, ia(1, 11)); err != nil {
		t.Fatalf("valid stamp: %v", err)
	}
	if hd.Received != 1 {
		t.Fatalf("received %d", hd.Received)
	}
	// A forged one is not.
	net.Clock.Advance(1e6)
	bad := g.Stamp([]byte("forged"), net.Clock.NowNs(), true)
	err = net.InjectPacket(bad, ia(1, 11))
	if err == nil || !strings.Contains(err.Error(), "hop validation") {
		t.Errorf("forged stamp: %v", err)
	}
	if hd.Received != 1 {
		t.Errorf("forged packet delivered (received %d)", hd.Received)
	}
}
