package core

import (
	"errors"
	"strings"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/cserv"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

// twoISDNet wires the Fig. 1 topology and sets up the SegR mesh.
func twoISDNet(t testing.TB, opts Options) (*Network, *Host, *Host) {
	t.Helper()
	net, err := NewNetwork(topology.TwoISD(topology.LinkSpec{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(1_000_000); err != nil {
		t.Fatal(err)
	}
	hs, err := net.AddHost(ia(1, 11), 0x0a000001)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := net.AddHost(ia(2, 11), 0x14000001)
	if err != nil {
		t.Fatal(err)
	}
	return net, hs, hd
}

func TestEndToEndReservationAndTraffic(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if sess.BandwidthKbps() != 8_000 {
		t.Errorf("bandwidth = %d", sess.BandwidthKbps())
	}
	if sess.PathLen() != 5 {
		t.Errorf("path length = %d", sess.PathLen())
	}
	for i := 0; i < 10; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte("ping")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if hd.Received != 10 {
		t.Errorf("destination received %d packets", hd.Received)
	}
	if string(hd.Inbox[0]) != "ping" {
		t.Errorf("payload %q", hd.Inbox[0])
	}
}

func TestGatewayEnforcesRate(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	// 800 kbps ≈ 100 kB/s: 1000-byte packets every 1 ms are 10× the rate.
	sess, err := hs.RequestEER(hd, 800)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	var sent, dropped int
	for i := 0; i < 2000; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send(payload); err != nil {
			dropped++
		} else {
			sent++
		}
	}
	if dropped == 0 {
		t.Fatal("no gateway drops at 10× the reservation")
	}
	// Delivered goodput must be ≈ the reservation: 2 s × 100 kB/s ≈ 200 kB
	// → ≈ 190 packets of ~1 kB (plus burst).
	if hd.Received > 300 {
		t.Errorf("destination received %d packets, far above the reservation", hd.Received)
	}
}

func TestRenewalSeamless(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// Renew to double bandwidth a few seconds in; traffic continues.
	net.Clock.Advance(5e9)
	if err := sess.Renew(8_000); err != nil {
		t.Fatal(err)
	}
	if sess.BandwidthKbps() != 8_000 {
		t.Errorf("renewed bandwidth = %d", sess.BandwidthKbps())
	}
	if err := sess.Send([]byte("after")); err != nil {
		t.Fatalf("send after renewal: %v", err)
	}
	if hd.Received != 2 {
		t.Errorf("received %d", hd.Received)
	}
}

func TestEERSurvivesSegRVersionSwitch(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	// Renew + activate the underlying up-SegR (initiated by 1-11).
	src := net.Node(ia(1, 11)).CServ
	segID := sess.grant.SegIDs[0]
	ver, _, err := src.RenewSegment(segID, 0, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ActivateSegment(segID, ver); err != nil {
		t.Fatal(err)
	}
	// The existing EER still works (§4.2: "EERs are not affected by a
	// version change of their underlying SegR").
	if err := sess.Send([]byte("still works")); err != nil {
		t.Fatal(err)
	}
	if hd.Received != 1 {
		t.Errorf("received %d", hd.Received)
	}
}

func TestExpiryStopsTraffic(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	net.Clock.Advance((reservation.EERLifetimeSeconds + 1) * 1e9)
	net.Tick()
	if err := sess.Send([]byte("too late")); err == nil {
		t.Fatal("send over expired EER succeeded")
	}
	if hd.Received != 1 {
		t.Errorf("received %d", hd.Received)
	}
}

// TestSpoofedSourceRejected models the §5.1 framing attack: an adversary
// crafts packets claiming the victim's (1-11's) reservation. Without 1-11's
// hop authenticators the HVFs cannot be forged, so border routers drop the
// packets and the victim is never framed.
func TestSpoofedSourceRejected(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	// A gateway only accepts reservations of its own AS.
	evil := net.GatewayOf(ia(1, 3))
	if err := evil.Install(sess.grant.Res, sess.grant.EER, sess.grant.Path, sess.grant.HopAuths); err == nil {
		t.Fatal("gateway of 1-3 accepted a foreign reservation")
	}
	// The adversary forges the header with invented HVFs: the first hop
	// whose HVF is wrong drops the packet.
	pktBuf := rogueBuild(t, sess.grant, make([]byte, 100), net.Clock.NowNs())
	for i := len(pktBuf) - 100 - 20; i < len(pktBuf)-100; i++ {
		pktBuf[i] ^= 0xA5 // corrupt all 5 HVFs
	}
	if err := net.forward(pktBuf, ia(1, 11)); err == nil {
		t.Fatal("packet with forged HVFs delivered")
	} else if !strings.Contains(err.Error(), "hop validation") {
		t.Errorf("unexpected drop reason: %v", err)
	}
	if hd.Received != 0 {
		t.Errorf("destination received %d forged packets", hd.Received)
	}
}

// rogueBuild stamps a data packet directly from the hop authenticators,
// bypassing the gateway's deterministic monitoring — the §4.8 "source AS
// did not perform its monitoring task properly" scenario.
func rogueBuild(t testing.TB, grant *cserv.EERGrant, payload []byte, nowNs int64) []byte {
	t.Helper()
	pkt := packet.Packet{
		Type:    packet.TData,
		CurrHop: 0,
		Res:     grant.Res,
		EER:     grant.EER,
		Ts:      uint64(nowNs),
		Path:    grant.Path,
		HVFs:    make([]byte, len(grant.Path)*packet.HVFLen),
		Payload: payload,
	}
	var in [packet.HVFInputLen]byte
	packet.HVFInput(&in, pkt.Ts, uint32(pkt.Length()))
	for i, a := range grant.HopAuths {
		var mac [cryptoutil.MACSize]byte
		cryptoutil.MACOneBlock(cryptoutil.NewBlock(a), &mac, &in)
		copy(pkt.HVFs[i*packet.HVFLen:], mac[:packet.HVFLen])
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestReplayAttackSuppressed is the §5.1 replay-framing defense end to end:
// with duplicate suppression enabled, re-forwarding a captured packet fails.
func TestReplayAttackSuppressed(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{EnableReplaySuppression: true})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	// Build one packet manually so we can replay the exact bytes.
	node := net.Node(ia(1, 11))
	buf := make([]byte, 512)
	sz, err := node.Gateway.NewWorker().Build(sess.grant.Res.ResID, []byte("x"), buf, net.Clock.NowNs())
	if err != nil {
		t.Fatal(err)
	}
	original := append([]byte(nil), buf[:sz]...)
	if err := net.forward(buf[:sz], ia(1, 11)); err != nil {
		t.Fatal(err)
	}
	// The adversary replays the captured packet moments later.
	net.Clock.Advance(5e6)
	err = net.forward(original, ia(1, 11))
	if err == nil {
		t.Fatal("replayed packet delivered")
	}
	if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("drop reason: %v", err)
	}
	if hd.Received != 1 {
		t.Errorf("received %d", hd.Received)
	}
}

// TestOverusePunished is the §4.8/§5.1 policing pipeline end to end: a
// misbehaving source AS bypasses its own gateway monitoring and floods at
// 100× its reservation; a transit AS's OFD flags the flow, deterministic
// monitoring confirms the overuse, and the source AS is blocklisted.
func TestOverusePunished(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{EnableOFD: true})
	sess, err := hs.RequestEER(hd, 800) // 800 kbps
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	var overuse, blocked bool
	for i := 1; i <= 200_000 && !blocked; i++ {
		net.Clock.Advance(1e5) // 10 000 pps of ~1 kB ≈ 80 Mbps on 800 kbps
		buf := rogueBuild(t, sess.grant, payload, net.Clock.NowNs())
		err := net.forward(buf, ia(1, 11))
		switch {
		case err == nil:
		case strings.Contains(err.Error(), "overuse"):
			overuse = true
		case strings.Contains(err.Error(), "blocklist"):
			blocked = true
		}
	}
	if !overuse {
		t.Fatal("overuse never confirmed by deterministic monitoring")
	}
	if !blocked {
		t.Fatal("rogue source AS never blocklisted")
	}
	// The victim reservation is cut off; legitimate packets are now dropped
	// too — the punishment the paper prescribes for the offending AS.
	if err := sess.Send([]byte("post-block")); err == nil {
		t.Error("blocked source still delivering")
	}
	_ = hd
}

func TestPathChoiceFallback(t *testing.T) {
	// Fill one up-SegR completely; the second EER must succeed via the
	// alternative up-SegR. The shared core and down SegRs are sized at
	// 2 Gbps so only the 1 Gbps up-SegRs can be the bottleneck.
	net, err := NewNetwork(topology.TwoISD(topology.LinkSpec{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range net.Registry.UpSegments(ia(1, 11)) {
		if err := net.SetupSegR(seg, 0, 1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.SetupSegR(net.Registry.CoreSegments(ia(1, 1), ia(2, 1))[0], 0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := net.SetupSegR(net.Registry.DownSegments(ia(2, 11))[0], 0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	hs, err := net.AddHost(ia(1, 11), 1)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := net.AddHost(ia(2, 11), 2)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := net.Node(ia(1, 11)).CServ.SegRsTo(ia(2, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < 2 {
		t.Fatalf("need ≥ 2 chains for this test, got %d", len(chains))
	}
	// Exhaust the first chain's up SegR by a giant EER.
	sess1, err := hs.RequestEER(hd, 900_000)
	if err != nil {
		t.Fatal(err)
	}
	// Next reservation cannot fit on the same SegR (1 Gbps SegRs): it must
	// fall back to another chain — still succeeding.
	sess2, err := hs.RequestEER(hd, 900_000)
	if err != nil {
		t.Fatalf("no fallback path: %v", err)
	}
	if sess1.grant.SegIDs[0] == sess2.grant.SegIDs[0] {
		t.Error("second EER did not use an alternative segment reservation")
	}
	if err := sess2.Send([]byte("via fallback")); err != nil {
		t.Fatal(err)
	}
	if hd.Received != 1 {
		t.Errorf("received %d", hd.Received)
	}
}

func TestControlPlaneSurvivesUnknownAS(t *testing.T) {
	net, _, _ := twoISDNet(t, Options{})
	if _, err := net.Call(ia(9, 9), []byte{1}); err == nil {
		t.Error("call to unknown AS succeeded")
	}
	if _, err := net.QueryKeyServer(ia(9, 9), nil); err == nil {
		t.Error("key query to unknown AS succeeded")
	}
	if _, err := net.AddHost(ia(9, 9), 1); err == nil {
		t.Error("host added to unknown AS")
	}
	if _, err := net.AddHost(ia(1, 11), 0x0a000001); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestForwardDropReasonsSurface(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	// Block the source at the transit router: the drop reason surfaces.
	net.Node(ia(1, 2)).Router.Blocklist().Block(ia(1, 11), 0)
	net.Node(ia(1, 3)).Router.Blocklist().Block(ia(1, 11), 0)
	err = sess.Send([]byte("x"))
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "blocklist") {
		t.Errorf("reason: %v", err)
	}
	_ = router.ErrBlocked
}

func TestLargerGeneratedTopologyEndToEnd(t *testing.T) {
	topo := topology.Generate(topology.GenSpec{
		ISDs: 2, CoresPerISD: 2, ProvidersPerISD: 2, LeavesPerISD: 3,
		ProviderUplinks: 2, LeafUplinks: 2, Seed: 11,
	})
	net, err := NewNetwork(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(100_000); err != nil {
		t.Fatal(err)
	}
	src, err := net.AddHost(ia(1, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := net.AddHost(ia(2, 6), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := src.RequestEER(dst, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Received != 5 {
		t.Errorf("received %d", dst.Received)
	}
}
