package core

import (
	"math/rand"
	"testing"

	"colibri/internal/admission"
	"colibri/internal/topology"
)

// TestInternetScaleScenario drives a 68-AS, 4-ISD Internet-like topology:
// full SegR bootstrap, dozens of concurrent EERs between random leaf pairs,
// protected traffic, and the global §5.1 safety invariant — on every egress
// interface of every AS, admitted SegR bandwidth never exceeds the Colibri
// share of the link.
func TestInternetScaleScenario(t *testing.T) {
	topo := topology.Generate(topology.GenSpec{
		ISDs: 4, CoresPerISD: 3, ProvidersPerISD: 4, LeavesPerISD: 10,
		ProviderUplinks: 2, LeafUplinks: 2, Seed: 42,
	})
	net, err := NewNetwork(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AutoSetupSegRs(50_000); err != nil {
		t.Fatal(err)
	}

	// Attach one host per leaf AS.
	rng := rand.New(rand.NewSource(7))
	var hosts []*Host
	for _, as := range topo.NonCoreASes() {
		// Leaves are the ASes beyond cores+providers: AS numbers > 7.
		if as.IA.AS() <= 7 {
			continue
		}
		h, err := net.AddHost(as.IA, uint32(as.IA.AS()))
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	if len(hosts) != 40 {
		t.Fatalf("%d leaf hosts", len(hosts))
	}

	// 30 random cross-ISD reservations.
	var sessions []*Session
	for len(sessions) < 30 {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src.IA == dst.IA {
			continue
		}
		sess, err := src.RequestEER(dst, uint64(1000+rng.Intn(4000)))
		if err != nil {
			// Some pairs may contend a full SegR; that is a valid refusal,
			// not a test failure — but most must succeed.
			continue
		}
		sessions = append(sessions, sess)
	}

	// Everyone sends; everything arrives.
	for round := 0; round < 5; round++ {
		net.Clock.Advance(1e8)
		for _, s := range sessions {
			if err := s.Send([]byte("payload")); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}
	var received int
	for _, h := range hosts {
		received += h.Received
	}
	if received != 5*len(sessions) {
		t.Errorf("received %d of %d", received, 5*len(sessions))
	}

	// Global safety invariant: no egress interface over-allocated.
	for _, iaKey := range topo.SortedIAs() {
		as := topo.AS(iaKey)
		adm := net.Node(iaKey).CServ.Admission()
		for _, ifID := range as.SortedIfIDs() {
			capK := admission.DefaultSplit.EERShare(as.Interfaces[ifID].CapacityKbps())
			if got := adm.AllocatedKbps(ifID); got > capK {
				t.Errorf("%s egress %d: allocated %d > capacity %d", iaKey, ifID, got, capK)
			}
		}
	}

	// Housekeeping at scale: expire everything and verify stores drain.
	net.Clock.Advance(400e9)
	net.Tick()
	for _, iaKey := range topo.SortedIAs() {
		segs, eers := net.Node(iaKey).CServ.Store().Counts()
		if segs != 0 || eers != 0 {
			t.Errorf("%s: %d SegRs, %d EERs after global expiry", iaKey, segs, eers)
		}
		if n := net.Node(iaKey).CServ.Admission().Len(); n != 0 {
			t.Errorf("%s: admission still tracks %d", iaKey, n)
		}
	}
}
