package core

import (
	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
	"colibri/internal/topology"
)

// GrantView exposes the reservation material the source host's networking
// stack holds after an EER setup: the reservation metadata, the path, and
// the hop authenticators. A malicious or negligent source can use it to
// stamp traffic outside the gateway's monitoring — which is precisely the
// scenario the §4.8 policing machinery exists for, so the experiments and
// examples need this view.
type GrantView struct {
	Res      packet.ResInfo
	EER      packet.EERInfo
	Path     []packet.HopField
	HopAuths []cryptoutil.Key
}

// Grant returns the session's reservation material.
func (s *Session) Grant() GrantView {
	return GrantView{
		Res:      s.grant.Res,
		EER:      s.grant.EER,
		Path:     s.grant.Path,
		HopAuths: s.grant.HopAuths,
	}
}

// Stamp builds a serialized Colibri data packet directly from the grant,
// bypassing the gateway (no monitoring, caller-chosen timestamp). With
// forgeHVFs the validation fields are garbage — unauthentic Colibri traffic.
func (g GrantView) Stamp(payload []byte, tsNs int64, forgeHVFs bool) []byte {
	pkt := packet.Packet{
		Type:    packet.TData,
		Res:     g.Res,
		EER:     g.EER,
		Ts:      uint64(tsNs),
		Path:    g.Path,
		HVFs:    make([]byte, len(g.Path)*packet.HVFLen),
		Payload: payload,
	}
	if forgeHVFs {
		for i := range pkt.HVFs {
			pkt.HVFs[i] = byte(i*37 + 11)
		}
	} else {
		var in [packet.HVFInputLen]byte
		packet.HVFInput(&in, pkt.Ts, uint32(pkt.Length()))
		var mac [cryptoutil.MACSize]byte
		for i, a := range g.HopAuths {
			cryptoutil.MACOneBlock(cryptoutil.NewBlock(a), &mac, &in)
			copy(pkt.HVFs[i*packet.HVFLen:], mac[:packet.HVFLen])
		}
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		panic(err) // the layout above is always serializable
	}
	return buf
}

// InjectPacket pushes a raw serialized Colibri packet into the network at
// the border router of `from` and walks it to delivery or drop — the entry
// point adversaries (and test harnesses) use.
func (n *Network) InjectPacket(buf []byte, from topology.IA) error {
	return n.forward(buf, from)
}
