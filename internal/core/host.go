package core

import (
	"errors"
	"fmt"

	"colibri/internal/cserv"
	"colibri/internal/gateway"
	"colibri/internal/packet"
	"colibri/internal/router"
	"colibri/internal/topology"
)

// Host is an end host attached to an AS. Its networking stack (the
// SCIONDaemon analogue of §3.2) talks to the local CServ for reservations
// and to the local gateway for sending.
type Host struct {
	net  *Network
	IA   topology.IA
	Addr uint32

	// Inbox collects payloads of delivered Colibri packets.
	Inbox [][]byte
	// Received counts delivered packets.
	Received int
	// ReceivedBE counts payloads delivered over the best-effort class after
	// a session fell back (demoted flow or dead reservation, §3.2).
	ReceivedBE int
}

// AddHost attaches a host to an AS.
func (n *Network) AddHost(ia topology.IA, addr uint32) (*Host, error) {
	if n.nodes[ia] == nil {
		return nil, fmt.Errorf("core: unknown AS %s", ia)
	}
	k := hostKey{ia: ia, addr: addr}
	if n.hosts[k] != nil {
		return nil, fmt.Errorf("core: host %d already exists in %s", addr, ia)
	}
	h := &Host{net: n, IA: ia, Addr: addr}
	n.hosts[k] = h
	return h, nil
}

// Session is an established end-to-end reservation from the perspective of
// the source host.
type Session struct {
	src    *Host
	dst    *Host
	grant  *cserv.EERGrant
	keeper *cserv.EERKeeper
}

// Data-plane send errors.
var (
	// ErrDropped wraps the router's reason when a packet died on path.
	ErrDropped = errors.New("core: packet dropped on path")
)

// RequestEER sets up an end-to-end reservation of bwKbps towards dst,
// installs it at the local gateway, and returns the session.
func (h *Host) RequestEER(dst *Host, bwKbps uint64) (*Session, error) {
	node := h.net.nodes[h.IA]
	grant, err := node.CServ.RequestEER(h.Addr, dst.Addr, dst.IA, bwKbps)
	if err != nil {
		return nil, err
	}
	if err := node.Gateway.Install(grant.Res, grant.EER, grant.Path, grant.HopAuths); err != nil {
		return nil, err
	}
	return &Session{src: h, dst: dst, grant: grant}, nil
}

// Renew obtains a new version of the session's EER with the given bandwidth
// and installs it, seamlessly replacing the previous version (§4.2).
func (s *Session) Renew(bwKbps uint64) error {
	node := s.src.net.nodes[s.src.IA]
	grant, err := node.CServ.RenewEER(s.grant, bwKbps)
	if err != nil {
		return err
	}
	if err := node.Gateway.Install(grant.Res, grant.EER, grant.Path, grant.HopAuths); err != nil {
		return err
	}
	s.grant = grant
	return nil
}

// BandwidthKbps returns the session's reserved bandwidth.
func (s *Session) BandwidthKbps() uint64 { return uint64(s.grant.Res.BwKbps) }

// ExpiresAt returns the current version's expiry (Unix seconds).
func (s *Session) ExpiresAt() uint32 { return s.grant.Res.ExpT }

// EnsureFresh renews the session at the current bandwidth if its newest
// version expires within lead seconds — the keep-alive a host's networking
// stack runs so 16-second EERs serve long-lived flows without interruption
// (§4.2). It reports whether a renewal happened.
func (s *Session) EnsureFresh(lead uint32) (bool, error) {
	if s.grant.Res.ExpT > s.src.net.Clock.NowSec()+lead {
		return false, nil
	}
	if err := s.Renew(uint64(s.grant.Res.BwKbps)); err != nil {
		return false, err
	}
	return true, nil
}

// Maintain runs one resilient keep-alive step: like EnsureFresh it renews
// within lead seconds of expiry, but renewal failures degrade gracefully —
// when the newest version is about to die the flow is demoted to
// best-effort at the gateway instead of blackholing, and the next
// successful renewal re-promotes it (§3.2/§4.2). The returned error is the
// renewal failure, if any; the session keeps working either way.
func (s *Session) Maintain(lead uint32) error {
	if s.keeper == nil {
		node := s.src.net.nodes[s.src.IA]
		s.keeper = cserv.NewEERKeeper(node.CServ, node.Gateway, s.grant, lead)
	}
	err := s.keeper.Tick()
	s.grant = s.keeper.Grant()
	return err
}

// Demoted reports whether Maintain has demoted the session to best-effort.
func (s *Session) Demoted() bool { return s.keeper != nil && s.keeper.Demoted() }

// PathLen returns the number of on-path ASes.
func (s *Session) PathLen() int { return len(s.grant.Path) }

// Send pushes one payload through the gateway and the chain of border
// routers to the destination host. It returns the router's reason when any
// AS drops the packet. The walk mirrors Fig. 1c: gateway (monitor + HVFs),
// then one border-router validation per AS.
func (s *Session) Send(payload []byte) error {
	n := s.src.net
	node := n.nodes[s.src.IA]
	buf := make([]byte, 64+len(s.grant.Path)*8+len(payload)+64)
	sz, err := node.gwWorker.Build(s.grant.Res.ResID, payload, buf, n.Clock.NowNs())
	if err != nil {
		return err
	}
	return n.forward(buf[:sz], s.src.IA)
}

// SendOrFallback sends the payload on the reservation, falling back to the
// best-effort class when the reservation cannot carry it (demoted flow,
// expired or uninstalled version). It reports whether the payload travelled
// best-effort. Policing drops (gateway.ErrRateExceeded) and on-path drops
// stay errors: those packets exceeded the contract or died in transit, and
// silently resending them would hide real loss.
func (s *Session) SendOrFallback(payload []byte) (bool, error) {
	err := s.Send(payload)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, gateway.ErrDemoted),
		errors.Is(err, gateway.ErrExpired),
		errors.Is(err, gateway.ErrUnknownRes):
		// Best-effort SCION forwarding is not simulated; fallback is direct
		// delivery into the destination's best-effort inbox.
		s.dst.ReceivedBE++
		return true, nil
	default:
		return false, err
	}
}

// forward walks a serialized packet through border routers starting at the
// given AS until delivery or drop.
func (n *Network) forward(buf []byte, from topology.IA) error {
	cur := from
	for hops := 0; hops <= len(n.nodes)+1; hops++ {
		node := n.nodes[cur]
		verdict, err := node.routerWorker.Process(buf, n.Clock.NowNs())
		if err != nil {
			return fmt.Errorf("%w at %s: %v", ErrDropped, cur, err)
		}
		switch verdict.Action {
		case router.AForward:
			intf := node.AS.Interface(verdict.Egress)
			if intf == nil {
				return fmt.Errorf("%w at %s: no interface %d", ErrDropped, cur, verdict.Egress)
			}
			cur = intf.Neighbor
		case router.ADeliver:
			return n.deliver(cur, verdict.DstHost, buf)
		case router.AControl:
			return fmt.Errorf("%w at %s: unexpected control packet", ErrDropped, cur)
		default:
			return fmt.Errorf("%w at %s", ErrDropped, cur)
		}
	}
	return fmt.Errorf("%w: forwarding loop", ErrDropped)
}

// deliver parses the payload out of the packet and appends it to the host
// inbox.
func (n *Network) deliver(ia topology.IA, addr uint32, buf []byte) error {
	h := n.hosts[hostKey{ia: ia, addr: addr}]
	if h == nil {
		return fmt.Errorf("core: no host %d in %s", addr, ia)
	}
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(buf); err != nil {
		return err
	}
	h.Inbox = append(h.Inbox, append([]byte(nil), pkt.Payload...))
	h.Received++
	return nil
}

// GatewayOf returns the gateway of an AS, for scenarios that install
// reservations directly (experiments, examples).
func (n *Network) GatewayOf(ia topology.IA) *gateway.Gateway { return n.nodes[ia].Gateway }
