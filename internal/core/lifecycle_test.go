package core

import (
	"testing"

	"colibri/internal/reservation"
)

// TestLongLivedFlowAcrossRenewals runs a flow for several EER lifetimes:
// the host keep-alive and the operator's SegR auto-renewal together keep
// traffic flowing with zero interruption.
func TestLongLivedFlowAcrossRenewals(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	var renewals int
	// 90 virtual seconds ≈ 6 EER lifetimes, one send + housekeeping per
	// second.
	for sec := 0; sec < 90; sec++ {
		net.Clock.Advance(1e9)
		// Host keep-alive with a 5 s lead.
		did, err := sess.EnsureFresh(5)
		if err != nil {
			t.Fatalf("t=%ds keep-alive: %v", sec, err)
		}
		if did {
			renewals++
		}
		// Operators renew SegRs nearing expiry (60 s lead on 300 s terms).
		for _, ia := range net.Topo.SortedIAs() {
			if _, err := net.Node(ia).CServ.AutoRenew(60, nil); err != nil {
				t.Fatalf("t=%ds AutoRenew at %s: %v", sec, ia, err)
			}
		}
		net.Tick()
		if err := sess.Send([]byte("tick")); err != nil {
			t.Fatalf("t=%ds send: %v", sec, err)
		}
	}
	if hd.Received != 90 {
		t.Errorf("received %d of 90", hd.Received)
	}
	// ≈ one EER renewal per (16−5) s.
	if renewals < 6 || renewals > 10 {
		t.Errorf("keep-alive renewed %d times", renewals)
	}
}

// TestSegRAutoRenewKeepsVersionsMoving verifies the operator automation:
// after the lead window, SegRs get fresh versions network-wide and old EERs
// stay valid.
func TestSegRAutoRenewKeepsVersionsMoving(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	segID := sess.grant.SegIDs[0]
	before, err := net.Node(ia(1, 11)).CServ.Store().GetSegR(segID)
	if err != nil {
		t.Fatal(err)
	}
	// Capture values: the store hands out live records.
	verBefore, expBefore := before.Active.Ver, before.Active.ExpT

	// Advance into the renewal window of the 300 s SegRs.
	net.Clock.Advance((reservation.SegRLifetimeSeconds - 30) * 1e9)
	var renewedTotal int
	for _, iaKey := range net.Topo.SortedIAs() {
		n, err := net.Node(iaKey).CServ.AutoRenew(60, nil)
		if err != nil {
			t.Fatalf("AutoRenew at %s: %v", iaKey, err)
		}
		renewedTotal += n
	}
	if renewedTotal == 0 {
		t.Fatal("nothing renewed inside the lead window")
	}
	after, err := net.Node(ia(1, 11)).CServ.Store().GetSegR(segID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Active.Ver <= verBefore {
		t.Errorf("version did not advance: %d → %d", verBefore, after.Active.Ver)
	}
	if after.Active.ExpT <= expBefore {
		t.Error("expiry did not advance")
	}
	// A freshly renewed EER over the renewed SegR carries traffic (the old
	// EER version expired long ago with its 16 s lifetime).
	net.Tick()
	if err := sess.Renew(8_000); err != nil {
		t.Fatal(err)
	}
	if err := sess.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if hd.Received != 1 {
		t.Errorf("received %d", hd.Received)
	}
}

// TestAutoRenewSkipsFreshAndPending ensures the automation is idempotent.
func TestAutoRenewSkipsFreshAndPending(t *testing.T) {
	net, _, _ := twoISDNet(t, Options{})
	src := net.Node(ia(1, 11)).CServ
	// Fresh SegRs are outside any reasonable lead: nothing to do.
	n, err := src.AutoRenew(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("renewed %d fresh SegRs", n)
	}
	// With a lead beyond the lifetime everything renews exactly once.
	n, err = src.AutoRenew(reservation.SegRLifetimeSeconds+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing renewed with full-lifetime lead")
	}
	// Immediately again: all versions are fresh now.
	n2, err := src.AutoRenew(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("second pass renewed %d", n2)
	}
}
