package core

import (
	"strings"
	"testing"

	"colibri/internal/telemetry"
)

// TestNetworkTelemetryWiring: with Options.Telemetry every layer of every
// node emits into the AS registry — control-plane counters, gateway
// occupancy and phase histograms, router processed count, and the
// lifecycle tracer.
func TestNetworkTelemetryWiring(t *testing.T) {
	net, hs, hd := twoISDNet(t, Options{Telemetry: true})
	sess, err := hs.RequestEER(hd, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.Clock.Advance(1e6)
		if err := sess.Send([]byte("ping")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	src := net.Node(hs.IA)
	if src.Telemetry == nil {
		t.Fatal("source node has no registry")
	}
	snap := src.Telemetry.Snapshot()
	if got := snap.Counters["cserv.ee_setup_ok"]; got != 1 {
		t.Errorf("cserv.ee_setup_ok = %d, want 1", got)
	}
	if got := snap.Counters["gateway.built"]; got != 10 {
		t.Errorf("gateway.built = %d, want 10", got)
	}
	if got := snap.Gauges["gateway.reservations"]; got != 1 {
		t.Errorf("gateway.reservations = %d, want 1", got)
	}
	if h := snap.Histograms["gateway.hvf_ns"]; h.Count != 10 {
		t.Errorf("gateway.hvf_ns count = %d, want 10", h.Count)
	}
	if got := snap.Counters["router.processed"]; got == 0 {
		t.Error("router.processed = 0, want >0")
	}
	var sawSetup bool
	for _, ev := range snap.Traces["cserv.lifecycle"] {
		if ev.Kind == telemetry.EvEESetup && ev.OK {
			sawSetup = true
		}
	}
	if !sawSetup {
		t.Error("no successful EE-setup event in lifecycle trace")
	}

	// Every AS produced a snapshot, and the text export mentions each.
	snaps := net.TelemetrySnapshots()
	if want := len(net.Topo.SortedIAs()); len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d", len(snaps), want)
	}
	var b strings.Builder
	if err := telemetry.WriteText(&b, snaps...); err != nil {
		t.Fatal(err)
	}
	for _, iaStr := range []string{"as 1-11", "as 2-11"} {
		if !strings.Contains(b.String(), iaStr) {
			t.Errorf("text export missing %q", iaStr)
		}
	}
}

// TestNetworkTelemetryOff: without the option no registries exist and the
// snapshot list is empty (the data plane stays instrument-free).
func TestNetworkTelemetryOff(t *testing.T) {
	net, _, _ := twoISDNet(t, Options{})
	if reg := net.Node(ia(1, 11)).Telemetry; reg != nil {
		t.Error("unexpected registry without Options.Telemetry")
	}
	if snaps := net.TelemetrySnapshots(); len(snaps) != 0 {
		t.Errorf("got %d snapshots, want 0", len(snaps))
	}
}
