package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"colibri/internal/topology"
)

func samplePacket() *Packet {
	return &Packet{
		Type:    TData,
		CurrHop: 1,
		Res: ResInfo{
			SrcAS:  topology.MustIA(1, 11),
			ResID:  42,
			BwKbps: 400_000,
			ExpT:   1_700_000_016,
			Ver:    3,
		},
		EER:     EERInfo{SrcHost: 0x0a000001, DstHost: 0x0a000002},
		Ts:      123456789,
		Path:    []HopField{{In: 0, Eg: 1}, {In: 2, Eg: 3}, {In: 4, Eg: 0}},
		HVFs:    []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Payload: []byte("hello colibri"),
	}
}

func TestSerializeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.Length() {
		t.Errorf("Serialize length %d != Length() %d", len(buf), p.Length())
	}
	var q Packet
	n, err := q.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if q.Type != p.Type || q.CurrHop != p.CurrHop || q.Res != p.Res || q.EER != p.EER || q.Ts != p.Ts {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if !reflect.DeepEqual(q.Path, p.Path) {
		t.Errorf("path mismatch: %v vs %v", q.Path, p.Path)
	}
	if !bytes.Equal(q.HVFs, p.HVFs) || !bytes.Equal(q.Payload, p.Payload) {
		t.Error("HVFs or payload mismatch")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hops := 1 + rng.Intn(MaxHops)
		p := &Packet{
			Type:    Type(1 + rng.Intn(7)),
			CurrHop: uint8(rng.Intn(hops)),
			Res: ResInfo{
				SrcAS:  topology.IA(rng.Uint64()),
				ResID:  rng.Uint32(),
				BwKbps: rng.Uint32(),
				ExpT:   rng.Uint32(),
				Ver:    uint16(rng.Uint32()),
			},
			EER:     EERInfo{SrcHost: rng.Uint32(), DstHost: rng.Uint32()},
			Ts:      rng.Uint64(),
			Path:    make([]HopField, hops),
			HVFs:    make([]byte, hops*HVFLen),
			Payload: make([]byte, rng.Intn(2000)),
		}
		for i := range p.Path {
			p.Path[i] = HopField{In: topology.IfID(rng.Uint32()), Eg: topology.IfID(rng.Uint32())}
		}
		rng.Read(p.HVFs)
		rng.Read(p.Payload)
		buf, err := p.Serialize()
		if err != nil {
			return false
		}
		var q Packet
		if _, err := q.DecodeFromBytes(buf); err != nil {
			return false
		}
		return q.Res == p.Res && q.EER == p.EER && q.Ts == p.Ts &&
			reflect.DeepEqual(q.Path, p.Path) &&
			bytes.Equal(q.HVFs, p.HVFs) && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeReusesBackingArrays(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Serialize()
	var q Packet
	if _, err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	pathPtr := &q.Path[0]
	if _, err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if &q.Path[0] != pathPtr {
		t.Error("decode reallocated the path slice")
	}
	// HVFs alias the buffer.
	q.HVF(0)[0] = 0xEE
	if buf[fixedLen+3*hopFieldLen] != 0xEE {
		t.Error("HVFs do not alias the input buffer")
	}
}

func TestSerializeErrors(t *testing.T) {
	p := samplePacket()
	small := make([]byte, 4)
	if _, err := p.SerializeTo(small); err == nil {
		t.Error("short buffer accepted")
	}
	p2 := *samplePacket()
	p2.Path = nil
	p2.HVFs = nil
	if _, err := p2.Serialize(); err == nil {
		t.Error("empty path accepted")
	}
	p3 := *samplePacket()
	p3.CurrHop = 3
	if _, err := p3.Serialize(); err == nil {
		t.Error("out-of-range CurrHop accepted")
	}
	p4 := *samplePacket()
	p4.HVFs = p4.HVFs[:8]
	if _, err := p4.Serialize(); err == nil {
		t.Error("wrong HVFs length accepted")
	}
	p5 := *samplePacket()
	p5.Path = make([]HopField, MaxHops+1)
	p5.HVFs = make([]byte, (MaxHops+1)*HVFLen)
	if _, err := p5.Serialize(); err == nil {
		t.Error("too many hops accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	var q Packet
	if _, err := q.DecodeFromBytes(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	p := samplePacket()
	buf, _ := p.Serialize()

	bad := append([]byte(nil), buf...)
	bad[0] = 9
	if _, err := q.DecodeFromBytes(bad); err == nil {
		t.Error("bad version accepted")
	}

	bad = append([]byte(nil), buf...)
	bad[4] = 0
	if _, err := q.DecodeFromBytes(bad); err == nil {
		t.Error("zero hops accepted")
	}

	bad = append([]byte(nil), buf...)
	bad[4] = MaxHops + 1
	if _, err := q.DecodeFromBytes(bad); err == nil {
		t.Error("too many hops accepted")
	}

	bad = append([]byte(nil), buf...)
	bad[3] = 7 // CurrHop ≥ hops
	if _, err := q.DecodeFromBytes(bad); err == nil {
		t.Error("bad CurrHop accepted")
	}

	if _, err := q.DecodeFromBytes(buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestSetCurrHopInPlace(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Serialize()
	SetCurrHopInPlace(buf, 2)
	if CurrHopOf(buf) != 2 {
		t.Error("CurrHopOf after SetCurrHopInPlace")
	}
	var q Packet
	if _, err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if q.CurrHop != 2 {
		t.Errorf("decoded CurrHop = %d", q.CurrHop)
	}
}

func TestAuthInputsDiffer(t *testing.T) {
	res := &ResInfo{SrcAS: topology.MustIA(1, 1), ResID: 7, BwKbps: 100, ExpT: 99, Ver: 1}
	eer := &EERInfo{SrcHost: 1, DstHost: 2}

	var a, b [SegAuthLen]byte
	SegAuthInput(&a, res, HopField{In: 1, Eg: 2})
	SegAuthInput(&b, res, HopField{In: 1, Eg: 3})
	if a == b {
		t.Error("SegAuthInput ignores egress interface")
	}
	res2 := *res
	res2.Ver = 2
	SegAuthInput(&b, &res2, HopField{In: 1, Eg: 2})
	if a == b {
		t.Error("SegAuthInput ignores version")
	}

	var e1, e2 [EERAuthLen]byte
	EERAuthInput(&e1, res, eer, HopField{In: 1, Eg: 2})
	eer2 := *eer
	eer2.DstHost = 3
	EERAuthInput(&e2, res, &eer2, HopField{In: 1, Eg: 2})
	if e1 == e2 {
		t.Error("EERAuthInput ignores destination host")
	}

	var h1, h2 [HVFInputLen]byte
	HVFInput(&h1, 100, 64)
	HVFInput(&h2, 100, 65)
	if h1 == h2 {
		t.Error("HVFInput ignores packet size")
	}
	HVFInput(&h2, 101, 64)
	if h1 == h2 {
		t.Error("HVFInput ignores timestamp")
	}
}

func TestAuthInputsClearStaleBytes(t *testing.T) {
	res := &ResInfo{SrcAS: topology.MustIA(1, 1)}
	var a [SegAuthLen]byte
	for i := range a {
		a[i] = 0xFF
	}
	SegAuthInput(&a, res, HopField{})
	for i := 26; i < SegAuthLen; i++ {
		if a[i] != 0 {
			t.Fatal("SegAuthInput left stale padding")
		}
	}
	var e [EERAuthLen]byte
	for i := range e {
		e[i] = 0xFF
	}
	EERAuthInput(&e, res, &EERInfo{}, HopField{})
	for i := 34; i < EERAuthLen; i++ {
		if e[i] != 0 {
			t.Fatal("EERAuthInput left stale padding")
		}
	}
	var h [HVFInputLen]byte
	for i := range h {
		h[i] = 0xFF
	}
	HVFInput(&h, 0, 0)
	for i := 12; i < HVFInputLen; i++ {
		if h[i] != 0 {
			t.Fatal("HVFInput left stale padding")
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		TData: "data", TSegSetupReq: "seg-setup", TSegRenewReq: "seg-renew",
		TSegActivate: "seg-activate", TEESetupReq: "ee-setup",
		TEERenewReq: "ee-renew", TResponse: "response",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q want %q", typ, typ.String(), want)
		}
	}
	if TData.IsControl() {
		t.Error("TData should not be control")
	}
	if !TEESetupReq.IsControl() {
		t.Error("TEESetupReq should be control")
	}
}

func BenchmarkDecode(b *testing.B) {
	p := samplePacket()
	buf, _ := p.Serialize()
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, p.Length())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SerializeTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}
