package packet

import (
	"encoding/binary"
)

// MAC input layouts for the three authenticators of §4.5. All inputs have a
// fixed layout, which is what makes plain CBC-MAC safe here (see
// cryptoutil.CBCMAC).

// SegAuthLen is the byte length of the SegR token input (Eq. 3):
// ResInfo (22 used bytes) ‖ In (2) ‖ Eg (2), zero-padded to 2 AES blocks.
const SegAuthLen = 32

// EERAuthLen is the byte length of the EER hop-authenticator input (Eq. 4):
// ResInfo ‖ EERInfo ‖ (In, Eg), zero-padded to 3 AES blocks.
const EERAuthLen = 48

// HVFInputLen is the byte length of the data-plane HVF input (Eq. 6):
// Ts (8) ‖ PktSize (4), zero-padded to 1 AES block.
const HVFInputLen = 16

// SegAuthInput packs the Eq. (3) MAC input for the hop with interfaces
// (in, eg) into buf:
//
//	V_i^(S) = MAC_{K_i}(ResInfo ‖ (In_i, Eg_i)) [0:ℓ_hvf]
func SegAuthInput(buf *[SegAuthLen]byte, res *ResInfo, hf HopField) {
	packResInfo(buf[:], res)
	binary.BigEndian.PutUint16(buf[22:24], uint16(hf.In))
	binary.BigEndian.PutUint16(buf[24:26], uint16(hf.Eg))
	for i := 26; i < SegAuthLen; i++ {
		buf[i] = 0
	}
}

// EERAuthInput packs the Eq. (4) MAC input:
//
//	σ_i = MAC_{K_i}(ResInfo ‖ EERInfo ‖ (In_i, Eg_i))
func EERAuthInput(buf *[EERAuthLen]byte, res *ResInfo, eer *EERInfo, hf HopField) {
	packResInfo(buf[:], res)
	binary.BigEndian.PutUint32(buf[22:26], eer.SrcHost)
	binary.BigEndian.PutUint32(buf[26:30], eer.DstHost)
	binary.BigEndian.PutUint16(buf[30:32], uint16(hf.In))
	binary.BigEndian.PutUint16(buf[32:34], uint16(hf.Eg))
	for i := 34; i < EERAuthLen; i++ {
		buf[i] = 0
	}
}

// HVFInput packs the Eq. (6) MAC input:
//
//	V_i^(E) = MAC_{σ_i}(Ts ‖ PktSize) [0:ℓ_hvf]
//
// PktSize is the total serialized packet size including the Colibri header,
// so that header-only flooding still consumes reservation budget (§4.8).
func HVFInput(buf *[HVFInputLen]byte, ts uint64, pktSize uint32) {
	binary.BigEndian.PutUint64(buf[0:8], ts)
	binary.BigEndian.PutUint32(buf[8:12], pktSize)
	buf[12], buf[13], buf[14], buf[15] = 0, 0, 0, 0
}

// packResInfo writes the 22 meaningful ResInfo bytes at the start of buf.
func packResInfo(buf []byte, res *ResInfo) {
	binary.BigEndian.PutUint64(buf[0:8], uint64(res.SrcAS))
	binary.BigEndian.PutUint32(buf[8:12], res.ResID)
	binary.BigEndian.PutUint32(buf[12:16], res.BwKbps)
	binary.BigEndian.PutUint32(buf[16:20], res.ExpT)
	binary.BigEndian.PutUint16(buf[20:22], res.Ver)
}
