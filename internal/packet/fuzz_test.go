package packet

import (
	"bytes"
	"testing"

	"colibri/internal/topology"
)

// FuzzDecodeFromBytes: arbitrary input must never panic, and whatever
// decodes successfully must re-serialize to an equivalent packet
// (decode–encode–decode fixpoint).
func FuzzDecodeFromBytes(f *testing.F) {
	p := samplePacket()
	buf, _ := p.Serialize()
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))
	truncated := append([]byte(nil), buf[:len(buf)-3]...)
	f.Add(truncated)
	maxBuf, _ := maxHopPacket().Serialize()
	f.Add(maxBuf)
	f.Add(append(append([]byte(nil), buf...), buf...)) // trailing bytes past one packet

	f.Fuzz(func(t *testing.T, data []byte) {
		var q Packet
		n, err := q.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out := make([]byte, q.Length())
		m, err := q.SerializeTo(out)
		if err != nil {
			t.Fatalf("re-serialize of decoded packet failed: %v", err)
		}
		var q2 Packet
		if _, err := q2.DecodeFromBytes(out[:m]); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.Res != q.Res || q2.EER != q.EER || q2.Ts != q.Ts ||
			q2.Type != q.Type || q2.CurrHop != q.CurrHop ||
			!bytes.Equal(q2.HVFs, q.HVFs) || !bytes.Equal(q2.Payload, q.Payload) {
			t.Fatal("decode–encode–decode not a fixpoint")
		}
	})
}

// maxHopPacket builds a packet at the MaxHops path-length ceiling — the
// largest header the wire format permits.
func maxHopPacket() *Packet {
	p := samplePacket()
	p.Path = make([]HopField, MaxHops)
	for i := range p.Path {
		p.Path[i] = HopField{In: topology.IfID(2 * i), Eg: topology.IfID(2*i + 1)}
	}
	p.HVFs = make([]byte, MaxHops*HVFLen)
	for i := range p.HVFs {
		p.HVFs[i] = byte(i)
	}
	return p
}

// FuzzDecodeStream: decoding a byte stream as a sequence of packets — the
// shape a batched burst arrives in — must never panic, must always make
// progress (no zero-length success), and every decoded packet must
// round-trip. The seeds cover the batch boundaries the burst pipeline
// produces: clean multi-packet concatenations, a truncated final packet,
// and a maximum-size header.
func FuzzDecodeStream(f *testing.F) {
	one, _ := samplePacket().Serialize()
	maxBuf, _ := maxHopPacket().Serialize()
	var burst []byte
	for i := 0; i < 4; i++ { // a 4-packet burst back to back
		burst = append(burst, one...)
	}
	f.Add(burst)
	f.Add(append(append([]byte(nil), one...), one[:len(one)-5]...)) // truncated tail
	f.Add(append(append([]byte(nil), maxBuf...), one...))
	f.Add([]byte{})
	f.Add(one[:1])

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			var q Packet
			n, err := q.DecodeFromBytes(data[off:])
			if err != nil {
				return // rest of the stream is garbage; stop like a receiver would
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("decode at offset %d consumed %d of %d remaining bytes",
					off, n, len(data)-off)
			}
			out := make([]byte, q.Length())
			m, err := q.SerializeTo(out)
			if err != nil {
				t.Fatalf("re-serialize of stream packet at offset %d failed: %v", off, err)
			}
			var q2 Packet
			if k, err := q2.DecodeFromBytes(out[:m]); err != nil || k != m {
				// The canonical re-encoding must decode back in one piece —
				// otherwise a forwarded burst would corrupt at this boundary.
				t.Fatalf("re-decode of stream packet at offset %d: consumed %d of %d, err %v",
					off, k, m, err)
			}
			if q2.Res != q.Res || q2.EER != q.EER || q2.Ts != q.Ts ||
				q2.Type != q.Type || q2.CurrHop != q.CurrHop ||
				!bytes.Equal(q2.HVFs, q.HVFs) || !bytes.Equal(q2.Payload, q.Payload) {
				t.Fatalf("stream packet at offset %d: decode–encode–decode not a fixpoint", off)
			}
			off += n
		}
	})
}
