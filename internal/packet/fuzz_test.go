package packet

import (
	"bytes"
	"testing"
)

// FuzzDecodeFromBytes: arbitrary input must never panic, and whatever
// decodes successfully must re-serialize to an equivalent packet
// (decode–encode–decode fixpoint).
func FuzzDecodeFromBytes(f *testing.F) {
	p := samplePacket()
	buf, _ := p.Serialize()
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))
	truncated := append([]byte(nil), buf[:len(buf)-3]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		var q Packet
		n, err := q.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out := make([]byte, q.Length())
		m, err := q.SerializeTo(out)
		if err != nil {
			t.Fatalf("re-serialize of decoded packet failed: %v", err)
		}
		var q2 Packet
		if _, err := q2.DecodeFromBytes(out[:m]); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.Res != q.Res || q2.EER != q.EER || q2.Ts != q.Ts ||
			q2.Type != q.Type || q2.CurrHop != q.CurrHop ||
			!bytes.Equal(q2.HVFs, q.HVFs) || !bytes.Equal(q2.Payload, q.Payload) {
			t.Fatal("decode–encode–decode not a fixpoint")
		}
	})
}
