// Package packet implements the Colibri packet format of §4.3 (Eq. 2):
//
//	Packet = (Path ‖ ResInfo ‖ EERInfo ‖ Ts ‖ V_0 ‖ … ‖ V_ℓ ‖ Payload)
//
// with Path a list of ingress–egress interface pairs, ResInfo the
// reservation metadata, EERInfo the end-host addresses (zero for segment-
// reservation packets), Ts a high-precision timestamp unique per source, and
// V_i the hop validation field (HVF) of the i-th on-path AS.
//
// The wire layout is fixed-offset so that border routers can validate and
// forward without per-flow state and without allocation: DecodeFromBytes
// borrows from the input buffer and reuses the decoder's slices
// (gopacket-style DecodingLayer discipline).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"colibri/internal/topology"
)

// Type discriminates Colibri packet kinds. All kinds share one header
// layout; control packets carry their request/response payloads opaquely.
type Type uint8

const (
	// TData is an EER data-plane packet.
	TData Type = iota + 1
	// TSegSetupReq is a segment-reservation setup request (best effort).
	TSegSetupReq
	// TSegRenewReq renews an existing SegR (sent over the SegR).
	TSegRenewReq
	// TSegActivate switches a SegR to a pending version (§4.2).
	TSegActivate
	// TEESetupReq is an end-to-end-reservation setup request (over SegRs).
	TEESetupReq
	// TEERenewReq renews an existing EER (sent over the EER).
	TEERenewReq
	// TResponse carries a control-plane response on the reverse path.
	TResponse
)

func (t Type) String() string {
	switch t {
	case TData:
		return "data"
	case TSegSetupReq:
		return "seg-setup"
	case TSegRenewReq:
		return "seg-renew"
	case TSegActivate:
		return "seg-activate"
	case TEESetupReq:
		return "ee-setup"
	case TEERenewReq:
		return "ee-renew"
	case TResponse:
		return "response"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// IsControl reports whether the type is a control-plane packet.
func (t Type) IsControl() bool { return t != TData }

// Wire-format constants.
const (
	// Version is the only supported wire version.
	Version = 1
	// MaxHops bounds the path length (the paper evaluates up to 16 ASes;
	// the current Internet average is 4–5).
	MaxHops = 32
	// HVFLen is ℓ_hvf, the truncated MAC length in packet headers (§4.5).
	HVFLen = 4
	// fixedLen is the length of the fixed header prefix:
	// version(1) type(1) flags(1) currHop(1) pathLen(1) rsvd(1) payLen(2)
	// ResInfo: srcAS(8) resID(4) bw(4) expT(4) ver(2) rsvd(2)
	// EERInfo: srcHost(4) dstHost(4)
	// Ts(8)
	fixedLen = 8 + 24 + 8 + 8
	// hopFieldLen is In(2) ‖ Eg(2).
	hopFieldLen = 4
)

// MaxPayload bounds the payload length encodable in the 16-bit length field.
const MaxPayload = 1<<16 - 1

// ResInfo is the reservation metadata carried in every Colibri packet
// (Eq. 2c). The pair (SrcAS, ResID) identifies a reservation globally.
type ResInfo struct {
	SrcAS  topology.IA
	ResID  uint32
	BwKbps uint32
	ExpT   uint32 // Unix seconds
	Ver    uint16
}

// EERInfo carries the end-host addresses (Eq. 2d); zero for SegR packets.
type EERInfo struct {
	SrcHost uint32
	DstHost uint32
}

// HopField is one ingress–egress interface pair of the packet-carried path.
type HopField struct {
	In, Eg topology.IfID
}

// Packet is the decoded representation. After DecodeFromBytes, HVFs and
// Payload alias the input buffer and Path reuses the packet's own backing
// array; a Packet may be reused across decodes to avoid allocation.
type Packet struct {
	Type    Type
	CurrHop uint8
	Res     ResInfo
	EER     EERInfo
	Ts      uint64

	Path    []HopField
	HVFs    []byte // 4 bytes per hop, aliases the buffer after decode
	Payload []byte
}

// Decode/serialize errors.
var (
	ErrTooShort   = errors.New("packet: buffer too short")
	ErrBadVersion = errors.New("packet: unsupported version")
	ErrBadPath    = errors.New("packet: invalid path length")
	ErrBadCurrHop = errors.New("packet: current hop out of range")
	ErrPayloadLen = errors.New("packet: payload too large")
)

// Length returns the serialized length of the packet.
func (p *Packet) Length() int {
	return DataLen(len(p.Path), len(p.Payload))
}

// DataLen returns the serialized length of a packet with the given hop
// count and payload size, without needing a decoded Packet — used by batch
// builders to size-check and police before assembling anything.
func DataLen(hops, payloadBytes int) int {
	return fixedLen + hops*(hopFieldLen+HVFLen) + payloadBytes
}

// HVF returns the 4-byte hop validation field of hop i (a view, valid until
// the backing buffer is reused).
func (p *Packet) HVF(i int) []byte { return p.HVFs[i*HVFLen : i*HVFLen+HVFLen : i*HVFLen+HVFLen] }

// SerializeTo writes the packet into buf and returns the number of bytes
// written. The buffer must be at least Length() bytes.
func (p *Packet) SerializeTo(buf []byte) (int, error) {
	n := p.Length()
	if len(buf) < n {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrTooShort, n, len(buf))
	}
	hops := len(p.Path)
	if hops == 0 || hops > MaxHops {
		return 0, fmt.Errorf("%w: %d hops", ErrBadPath, hops)
	}
	if int(p.CurrHop) >= hops {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadCurrHop, p.CurrHop, hops)
	}
	if len(p.Payload) > MaxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrPayloadLen, len(p.Payload))
	}
	if len(p.HVFs) != hops*HVFLen {
		return 0, fmt.Errorf("packet: HVFs length %d != %d", len(p.HVFs), hops*HVFLen)
	}
	buf[0] = Version
	buf[1] = byte(p.Type)
	buf[2] = 0 // flags, reserved
	buf[3] = p.CurrHop
	buf[4] = byte(hops)
	buf[5] = 0
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(p.Payload)))
	binary.BigEndian.PutUint64(buf[8:16], uint64(p.Res.SrcAS))
	binary.BigEndian.PutUint32(buf[16:20], p.Res.ResID)
	binary.BigEndian.PutUint32(buf[20:24], p.Res.BwKbps)
	binary.BigEndian.PutUint32(buf[24:28], p.Res.ExpT)
	binary.BigEndian.PutUint16(buf[28:30], p.Res.Ver)
	buf[30], buf[31] = 0, 0
	binary.BigEndian.PutUint32(buf[32:36], p.EER.SrcHost)
	binary.BigEndian.PutUint32(buf[36:40], p.EER.DstHost)
	binary.BigEndian.PutUint64(buf[40:48], p.Ts)
	off := fixedLen
	for _, h := range p.Path {
		binary.BigEndian.PutUint16(buf[off:], uint16(h.In))
		binary.BigEndian.PutUint16(buf[off+2:], uint16(h.Eg))
		off += hopFieldLen
	}
	copy(buf[off:], p.HVFs)
	off += hops * HVFLen
	copy(buf[off:], p.Payload)
	return n, nil
}

// Serialize allocates a buffer of exactly the right size and serializes into
// it. Hot paths should use SerializeTo with a reused buffer instead.
func (p *Packet) Serialize() ([]byte, error) {
	buf := make([]byte, p.Length())
	if _, err := p.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFromBytes parses data into p, reusing p's Path backing array and
// aliasing data for HVFs and Payload. It returns the number of bytes
// consumed.
func (p *Packet) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < fixedLen {
		return 0, ErrTooShort
	}
	if data[0] != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, data[0])
	}
	hops := int(data[4])
	if hops == 0 || hops > MaxHops {
		return 0, fmt.Errorf("%w: %d hops", ErrBadPath, hops)
	}
	payLen := int(binary.BigEndian.Uint16(data[6:8]))
	total := fixedLen + hops*(hopFieldLen+HVFLen) + payLen
	if len(data) < total {
		return 0, fmt.Errorf("%w: need %d, have %d", ErrTooShort, total, len(data))
	}
	p.Type = Type(data[1])
	p.CurrHop = data[3]
	if int(p.CurrHop) >= hops {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadCurrHop, p.CurrHop, hops)
	}
	p.Res.SrcAS = topology.IA(binary.BigEndian.Uint64(data[8:16]))
	p.Res.ResID = binary.BigEndian.Uint32(data[16:20])
	p.Res.BwKbps = binary.BigEndian.Uint32(data[20:24])
	p.Res.ExpT = binary.BigEndian.Uint32(data[24:28])
	p.Res.Ver = binary.BigEndian.Uint16(data[28:30])
	p.EER.SrcHost = binary.BigEndian.Uint32(data[32:36])
	p.EER.DstHost = binary.BigEndian.Uint32(data[36:40])
	p.Ts = binary.BigEndian.Uint64(data[40:48])
	if cap(p.Path) < hops {
		p.Path = make([]HopField, hops)
	} else {
		p.Path = p.Path[:hops]
	}
	off := fixedLen
	for i := 0; i < hops; i++ {
		p.Path[i].In = topology.IfID(binary.BigEndian.Uint16(data[off:]))
		p.Path[i].Eg = topology.IfID(binary.BigEndian.Uint16(data[off+2:]))
		off += hopFieldLen
	}
	p.HVFs = data[off : off+hops*HVFLen]
	off += hops * HVFLen
	p.Payload = data[off : off+payLen]
	return total, nil
}

// SetCurrHopInPlace updates the current-hop byte directly in a serialized
// buffer, the only header mutation a border router performs when forwarding.
func SetCurrHopInPlace(buf []byte, hop uint8) {
	buf[3] = hop
}

// CurrHopOf reads the current-hop byte of a serialized buffer.
func CurrHopOf(buf []byte) uint8 { return buf[3] }

// PeekFlowKey extracts the RSS flow key — ResID ‖ SrcHost — straight from a
// serialized buffer's fixed offsets, without decoding. This is what a
// sharded front end hashes to pick a shard: all packets of one (reservation,
// source host) pair land on the same shard, which pins the per-flow state
// (replay window, OFD budget, token bucket) and preserves per-flow order.
// ok is false if the buffer is shorter than the fixed header; such runts are
// sent to shard 0, whose decoder rejects them properly.
//
//colibri:nomalloc
func PeekFlowKey(buf []byte) (key uint64, ok bool) {
	if len(buf) < fixedLen {
		return 0, false
	}
	return uint64(binary.BigEndian.Uint32(buf[16:20]))<<32 |
		uint64(binary.BigEndian.Uint32(buf[32:36])), true
}
