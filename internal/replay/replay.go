// Package replay implements in-network duplicate suppression (§2.3, §5.1;
// Lee et al., "The Case for In-Network Replay Suppression"): an on-path
// adversary replaying captured, correctly authenticated packets must not be
// able to consume a reservation's bandwidth or frame its owner.
//
// The suppressor keeps two Bloom filters covering adjacent time windows and
// rotates them, so that every packet identifier seen within the freshness
// window is remembered with bounded memory and no per-flow state. Bloom
// false positives drop a small fraction of legitimate packets (tunable);
// false negatives do not occur within the window, so replays are always
// caught.
package replay

import (
	"math"
	"sync"

	"colibri/internal/telemetry"
)

// Config parameterizes the suppressor.
type Config struct {
	// WindowNs is the freshness window; packets older than two windows are
	// rejected by the freshness check before reaching the filter. Default
	// 200 ms (covering the ±0.1 s inter-AS clock skew the paper assumes).
	WindowNs int64
	// ExpectedPackets is the number of packets expected per window; sizes
	// the filter (default 1<<20).
	ExpectedPackets int
	// FalsePositiveRate is the target Bloom FP rate (default 1e-4).
	FalsePositiveRate float64
}

func (c *Config) setDefaults() {
	if c.WindowNs == 0 {
		c.WindowNs = 200 * 1e6
	}
	if c.ExpectedPackets == 0 {
		c.ExpectedPackets = 1 << 20
	}
	if c.FalsePositiveRate == 0 {
		c.FalsePositiveRate = 1e-4
	}
}

// Split scales the config for one of n data-plane shards: RSS pins each
// flow (and hence each packet identifier) to exactly one shard, so a shard's
// filter expects only ExpectedPackets/n insertions per window (floor 1<<10).
// The FP rate is a per-packet property and stays unchanged; n shard filters
// together use the memory of one full-size filter.
func (c Config) Split(n int) Config {
	c.setDefaults()
	if n > 1 {
		c.ExpectedPackets /= n
		if c.ExpectedPackets < 1<<10 {
			c.ExpectedPackets = 1 << 10
		}
	}
	return c
}

// Suppressor detects duplicate packet identifiers within the freshness
// window. Safe for concurrent use.
type Suppressor struct {
	mu       sync.Mutex
	cfg      Config
	cur      *bloom
	prev     *bloom
	curStart int64
	// curIns counts identifiers inserted into cur this window; an exact
	// insert count (unlike a popcount over the filter) is free to maintain.
	curIns int64
	// gauge, when set, mirrors curIns; updated under mu.
	gauge *telemetry.Gauge
}

// SetGauge attaches an occupancy gauge mirroring the number of identifiers
// inserted into the current window's filter; it resets to zero on window
// rotation.
func (s *Suppressor) SetGauge(g *telemetry.Gauge) {
	s.mu.Lock()
	s.gauge = g
	if g != nil {
		g.Set(s.curIns)
	}
	s.mu.Unlock()
}

// Inserted returns the number of identifiers recorded in the current window.
func (s *Suppressor) Inserted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curIns
}

// New builds a suppressor.
func New(cfg Config) *Suppressor {
	cfg.setDefaults()
	m, k := bloomParams(cfg.ExpectedPackets, cfg.FalsePositiveRate)
	return &Suppressor{
		cfg:  cfg,
		cur:  newBloom(m, k),
		prev: newBloom(m, k),
	}
}

// FreshAndUnique checks a packet identified by (the hash of) its unique
// per-source timestamp tuple. It returns false if the identifier was already
// seen within the last two windows (a replay or Bloom false positive), and
// records it otherwise. nowNs drives window rotation.
func (s *Suppressor) FreshAndUnique(id uint64, nowNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nowNs-s.curStart >= s.cfg.WindowNs {
		if nowNs-s.curStart >= 2*s.cfg.WindowNs {
			// Long silence: both windows are stale.
			s.prev.reset()
		} else {
			// The old current window becomes the previous one.
			s.cur, s.prev = s.prev, s.cur
		}
		s.cur.reset()
		s.curStart = nowNs
		s.curIns = 0
		if s.gauge != nil {
			s.gauge.Set(0)
		}
	}
	if s.cur.test(id) || s.prev.test(id) {
		return false
	}
	s.cur.add(id)
	s.curIns++
	if s.gauge != nil {
		s.gauge.Set(s.curIns)
	}
	return true
}

// bloom is a simple double-hashing Bloom filter over uint64 identifiers.
type bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
}

func bloomParams(n int, fp float64) (m uint64, k int) {
	// Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	mf := -float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)
	m = uint64(mf)
	if m < 64 {
		m = 64
	}
	k = int(math.Round(mf / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k
}

func newBloom(m uint64, k int) *bloom {
	return &bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

func (b *bloom) reset() {
	clear(b.bits)
}

// mix derives the two base hashes for double hashing.
func mix(id uint64) (uint64, uint64) {
	h1 := id
	h1 ^= h1 >> 33
	h1 *= 0xFF51AFD7ED558CCD
	h1 ^= h1 >> 33
	h2 := id*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	h2 ^= h2 >> 29
	h2 *= 0xBF58476D1CE4E5B9
	h2 ^= h2 >> 32
	return h1, h2 | 1
}

func (b *bloom) add(id uint64) {
	h1, h2 := mix(id)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloom) test(id uint64) bool {
	h1, h2 := mix(id)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// PacketID builds the suppression identifier from the fields that uniquely
// identify a Colibri packet for a particular source: (SrcAS, ResID, Ts).
func PacketID(srcAS uint64, resID uint32, ts uint64) uint64 {
	x := srcAS ^ uint64(resID)<<17 ^ ts*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return x
}
