package replay

import (
	"math/rand"
	"testing"
)

func TestReplayCaught(t *testing.T) {
	s := New(Config{})
	id := PacketID(0x0001_000000000001, 42, 12345)
	if !s.FreshAndUnique(id, 0) {
		t.Fatal("first sight rejected")
	}
	for i := 0; i < 10; i++ {
		if s.FreshAndUnique(id, int64(i+1)*1e6) {
			t.Fatalf("replay %d accepted", i)
		}
	}
}

func TestDistinctPacketsAccepted(t *testing.T) {
	s := New(Config{ExpectedPackets: 1 << 16})
	rejected := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		id := PacketID(0x0001_000000000001, 42, uint64(i))
		if !s.FreshAndUnique(id, int64(i)*1000) {
			rejected++
		}
	}
	// Bloom false positives only; must be well below 1%.
	if rejected > n/100 {
		t.Errorf("%d of %d distinct packets rejected", rejected, n)
	}
}

func TestReplayCaughtAcrossWindowBoundary(t *testing.T) {
	s := New(Config{WindowNs: 1e8})
	id := PacketID(1, 1, 99)
	if !s.FreshAndUnique(id, 0) {
		t.Fatal("first sight rejected")
	}
	// 1.5 windows later, the identifier lives in the previous filter.
	if s.FreshAndUnique(id, 15e7) {
		t.Error("replay accepted just after window rotation")
	}
}

func TestOldIdentifierForgottenAfterTwoWindows(t *testing.T) {
	s := New(Config{WindowNs: 1e8})
	id := PacketID(1, 1, 99)
	if !s.FreshAndUnique(id, 0) {
		t.Fatal("first sight rejected")
	}
	// After > 2 windows of silence both filters reset: the identifier is
	// forgotten (the freshness check on Ts is what rejects such stale
	// packets upstream).
	if !s.FreshAndUnique(id, 25e7) {
		t.Error("identifier still remembered after two silent windows")
	}
}

func TestRotationKeepsRecentWindow(t *testing.T) {
	s := New(Config{WindowNs: 1e8})
	// Fill window 0 with ids, rotate by sending in window 1, confirm ids
	// from window 0 still rejected while new ones pass.
	ids := make([]uint64, 100)
	for i := range ids {
		ids[i] = PacketID(7, uint32(i), uint64(i))
		if !s.FreshAndUnique(ids[i], int64(i)) {
			t.Fatalf("setup id %d rejected", i)
		}
	}
	now := int64(12e7) // inside window 1
	if !s.FreshAndUnique(PacketID(7, 1000, 1000), now) {
		t.Error("fresh id rejected after rotation")
	}
	for i := range ids {
		if s.FreshAndUnique(ids[i], now) {
			t.Fatalf("window-0 id %d accepted in window 1", i)
		}
	}
}

func TestPacketIDUniqueness(t *testing.T) {
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		id := PacketID(rng.Uint64(), rng.Uint32(), rng.Uint64())
		if seen[id] {
			t.Fatal("PacketID collision in 100k random inputs")
		}
		seen[id] = true
	}
	// Same tuple → same ID (determinism).
	if PacketID(1, 2, 3) != PacketID(1, 2, 3) {
		t.Error("PacketID not deterministic")
	}
	// Ts must matter.
	if PacketID(1, 2, 3) == PacketID(1, 2, 4) {
		t.Error("PacketID ignores Ts")
	}
}

func TestBloomParams(t *testing.T) {
	m, k := bloomParams(1<<20, 1e-4)
	if m == 0 || k < 1 || k > 16 {
		t.Errorf("bloomParams = %d, %d", m, k)
	}
	// Tiny n still yields a usable filter.
	m, k = bloomParams(1, 0.5)
	if m < 64 || k < 1 {
		t.Errorf("tiny bloomParams = %d, %d", m, k)
	}
}

func BenchmarkFreshAndUnique(b *testing.B) {
	s := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.FreshAndUnique(uint64(i), int64(i)*100)
	}
}
