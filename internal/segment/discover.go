package segment

import (
	"fmt"

	"colibri/internal/topology"
)

// Registry holds the discovered segments of a topology, analogous to the
// path servers of the underlying architecture. It is immutable after
// Discover and safe for concurrent reads.
type Registry struct {
	topo *topology.Topology
	// ups maps a non-core AS to its up-segments (AS → core, traversal order
	// AS-first).
	ups map[topology.IA][]*Segment
	// downs maps a non-core AS to its down-segments (core → AS).
	downs map[topology.IA][]*Segment
	// cores maps an ordered core pair (src,dst) to core-segments.
	cores map[[2]topology.IA][]*Segment
}

// DiscoverOpts bounds the discovery effort.
type DiscoverOpts struct {
	// MaxPerPair caps the segments kept per (origin, AS) pair (default 3).
	MaxPerPair int
	// MaxLen caps the number of ASes on one segment (default 8).
	MaxLen int
}

func (o *DiscoverOpts) setDefaults() {
	if o.MaxPerPair == 0 {
		o.MaxPerPair = 3
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8
	}
}

// Discover runs the beaconing fixpoint over the topology and returns the
// segment registry. Core ASes originate beacons; intra-ISD beacons propagate
// over provider→customer links (yielding down-segments, reversed into
// up-segments); core beacons propagate over core links.
func Discover(topo *topology.Topology, opts DiscoverOpts) *Registry {
	opts.setDefaults()
	r := &Registry{
		topo:  topo,
		ups:   make(map[topology.IA][]*Segment),
		downs: make(map[topology.IA][]*Segment),
		cores: make(map[[2]topology.IA][]*Segment),
	}
	r.discoverIntraISD(opts)
	r.discoverCore(opts)
	return r
}

// beacon is an in-flight path-construction beacon: hops in origin→current
// order; the last hop's Eg is filled in when the beacon is extended.
type beacon struct {
	hops []Hop
}

func (b *beacon) current() topology.IA { return b.hops[len(b.hops)-1].IA }

func (b *beacon) visits(ia topology.IA) bool {
	for _, h := range b.hops {
		if h.IA == ia {
			return true
		}
	}
	return false
}

// extend returns a copy of the beacon extended over the given interface of
// the current AS.
func (b *beacon) extend(intf *topology.Interface) *beacon {
	hops := make([]Hop, len(b.hops), len(b.hops)+1)
	copy(hops, b.hops)
	hops[len(hops)-1].Eg = intf.ID
	hops = append(hops, Hop{IA: intf.Neighbor, In: intf.NeighborIf})
	return &beacon{hops: hops}
}

func (b *beacon) segment(typ Type) *Segment {
	hops := make([]Hop, len(b.hops))
	copy(hops, b.hops)
	return &Segment{Type: typ, Hops: hops}
}

// keptSet tracks, per (origin, AS), the accepted beacons, bounded by k.
type keptSet struct {
	k    int
	segs map[[2]topology.IA][]*Segment
	seen map[string]bool
}

func newKeptSet(k int) *keptSet {
	return &keptSet{k: k, segs: make(map[[2]topology.IA][]*Segment), seen: make(map[string]bool)}
}

// offer inserts the candidate if the (origin,at) bucket has room or the
// candidate is shorter than the current worst; returns whether it was kept.
func (ks *keptSet) offer(origin, at topology.IA, cand *Segment) bool {
	fp := cand.Fingerprint()
	if ks.seen[fp] {
		return false
	}
	key := [2]topology.IA{origin, at}
	bucket := ks.segs[key]
	if len(bucket) >= ks.k {
		worst := bucket[len(bucket)-1]
		if len(cand.Hops) >= len(worst.Hops) {
			return false
		}
		delete(ks.seen, worst.Fingerprint())
		bucket = bucket[:len(bucket)-1]
	}
	ks.seen[fp] = true
	bucket = append(bucket, cand)
	sortSegments(bucket)
	ks.segs[key] = bucket
	return true
}

// discoverIntraISD propagates beacons from each ISD's core ASes down
// provider-customer links, within the ISD only.
func (r *Registry) discoverIntraISD(opts DiscoverOpts) {
	kept := newKeptSet(opts.MaxPerPair)
	var queue []*beacon
	for _, core := range r.topo.CoreASes() {
		queue = append(queue, &beacon{hops: []Hop{{IA: core.IA}}})
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		cur := r.topo.AS(b.current())
		if len(b.hops) >= opts.MaxLen {
			continue
		}
		for _, ifID := range cur.SortedIfIDs() {
			intf := cur.Interfaces[ifID]
			if intf.Type != topology.LinkParent {
				continue // only provider→customer propagation
			}
			if intf.Neighbor.ISD() != b.hops[0].IA.ISD() {
				continue // intra-ISD only
			}
			if b.visits(intf.Neighbor) {
				continue
			}
			nb := b.extend(intf)
			seg := nb.segment(Down)
			if kept.offer(seg.SrcIA(), seg.DstIA(), seg) {
				queue = append(queue, nb)
			}
		}
	}
	for key, segs := range kept.segs {
		dst := key[1]
		r.downs[dst] = append(r.downs[dst], segs...)
		for _, s := range segs {
			r.ups[dst] = append(r.ups[dst], s.Reversed(Up))
		}
	}
	for ia := range r.downs {
		sortSegments(r.downs[ia])
		sortSegments(r.ups[ia])
	}
}

// discoverCore propagates beacons between core ASes over core links,
// including across ISDs.
func (r *Registry) discoverCore(opts DiscoverOpts) {
	kept := newKeptSet(opts.MaxPerPair)
	var queue []*beacon
	for _, core := range r.topo.CoreASes() {
		queue = append(queue, &beacon{hops: []Hop{{IA: core.IA}}})
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		cur := r.topo.AS(b.current())
		if len(b.hops) >= opts.MaxLen {
			continue
		}
		for _, ifID := range cur.SortedIfIDs() {
			intf := cur.Interfaces[ifID]
			if intf.Type != topology.LinkCore {
				continue
			}
			if b.visits(intf.Neighbor) {
				continue
			}
			nb := b.extend(intf)
			seg := nb.segment(Core)
			if kept.offer(seg.SrcIA(), seg.DstIA(), seg) {
				queue = append(queue, nb)
			}
		}
	}
	for key, segs := range kept.segs {
		r.cores[key] = segs
		sortSegments(r.cores[key])
	}
}

// UpSegments returns the up-segments originating at the given non-core AS.
func (r *Registry) UpSegments(src topology.IA) []*Segment { return r.ups[src] }

// DownSegments returns the down-segments terminating at the given AS.
func (r *Registry) DownSegments(dst topology.IA) []*Segment { return r.downs[dst] }

// CoreSegments returns core-segments from src to dst (both core ASes).
func (r *Registry) CoreSegments(src, dst topology.IA) []*Segment {
	return r.cores[[2]topology.IA{src, dst}]
}

// Paths enumerates end-to-end paths from src to dst by combining discovered
// segments, shortest first, up to limit (0 = no limit). It covers the cases:
// same AS (no path needed → error), core-to-core, leaf-to-core, core-to-leaf,
// and leaf-to-leaf with up to three segments, including the up+down shortcut
// when both ASes share an ISD core.
func (r *Registry) Paths(src, dst topology.IA, limit int) ([]*Path, error) {
	if src == dst {
		return nil, fmt.Errorf("segment: src and dst are the same AS %s", src)
	}
	srcAS, dstAS := r.topo.AS(src), r.topo.AS(dst)
	if srcAS == nil || dstAS == nil {
		return nil, fmt.Errorf("segment: unknown AS %s or %s", src, dst)
	}
	var paths []*Path
	add := func(segs ...*Segment) {
		if p, err := Join(segs...); err == nil {
			paths = append(paths, p)
		}
	}
	switch {
	case srcAS.Core && dstAS.Core:
		for _, c := range r.CoreSegments(src, dst) {
			add(c)
		}
	case srcAS.Core && !dstAS.Core:
		for _, d := range r.downs[dst] {
			if d.SrcIA() == src {
				add(d)
				continue
			}
			for _, c := range r.CoreSegments(src, d.SrcIA()) {
				add(c, d)
			}
		}
	case !srcAS.Core && dstAS.Core:
		for _, u := range r.ups[src] {
			if u.DstIA() == dst {
				add(u)
				continue
			}
			for _, c := range r.CoreSegments(u.DstIA(), dst) {
				add(u, c)
			}
		}
	default: // leaf to leaf
		for _, u := range r.ups[src] {
			for _, d := range r.downs[dst] {
				if u.DstIA() == d.SrcIA() {
					add(u, d) // shortcut at the shared core
					continue
				}
				for _, c := range r.CoreSegments(u.DstIA(), d.SrcIA()) {
					add(u, c, d)
				}
			}
		}
	}
	sortPaths(paths)
	if limit > 0 && len(paths) > limit {
		paths = paths[:limit]
	}
	return paths, nil
}

func sortPaths(paths []*Path) {
	fingerprint := func(p *Path) string {
		var b []byte
		for _, h := range p.Hops {
			b = fmt.Appendf(b, "%x.%x.%x;", uint64(h.IA), h.In, h.Eg)
		}
		return string(b)
	}
	sortBy(paths, func(a, b *Path) bool {
		if len(a.Hops) != len(b.Hops) {
			return len(a.Hops) < len(b.Hops)
		}
		return fingerprint(a) < fingerprint(b)
	})
}

// sortBy is a tiny generic sort helper.
func sortBy[T any](s []T, less func(a, b T) bool) {
	// insertion sort: path lists are short.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
