// Package segment implements SCION-style path discovery and combination on
// top of the topology substrate: beaconing of up-, down-, and core-segments,
// a registry to look them up, and joining of segments into end-to-end paths.
//
// Colibri's scalability rests on this decomposition (§2.2, §3.3 of the
// paper): segment reservations are made per path segment, never per
// end-to-end path, which bounds their number. The discovery here is a
// centralized fixpoint computation equivalent to SCION's distributed beacon
// propagation; the resulting segment sets are the same.
package segment

import (
	"fmt"
	"sort"
	"strings"

	"colibri/internal/topology"
)

// Type is the segment type, mirroring the three SegR types of §3.3.
type Type uint8

const (
	// Up runs from a non-core AS towards a core AS inside one ISD.
	Up Type = iota
	// Down runs from a core AS towards a non-core AS inside one ISD.
	Down
	// Core runs between core ASes, possibly across ISDs.
	Core
)

func (t Type) String() string {
	switch t {
	case Up:
		return "up"
	case Down:
		return "down"
	case Core:
		return "core"
	default:
		return fmt.Sprintf("segtype(%d)", uint8(t))
	}
}

// Hop is one AS on a segment or path, with the ingress and egress interface
// in traversal direction. In = 0 marks the first AS, Eg = 0 the last.
type Hop struct {
	IA     topology.IA
	In, Eg topology.IfID
}

func (h Hop) String() string {
	return fmt.Sprintf("%d>%s>%d", h.In, h.IA, h.Eg)
}

// Segment is a traversal-ordered sequence of hops of one segment type.
type Segment struct {
	Type Type
	Hops []Hop
}

// SrcIA returns the first AS of the segment.
func (s *Segment) SrcIA() topology.IA { return s.Hops[0].IA }

// DstIA returns the last AS of the segment.
func (s *Segment) DstIA() topology.IA { return s.Hops[len(s.Hops)-1].IA }

// Len returns the number of ASes on the segment.
func (s *Segment) Len() int { return len(s.Hops) }

func (s *Segment) String() string {
	parts := make([]string, len(s.Hops))
	for i, h := range s.Hops {
		parts[i] = h.String()
	}
	return fmt.Sprintf("[%s: %s]", s.Type, strings.Join(parts, " "))
}

// Reversed returns a copy of the segment traversed in the opposite direction
// with the given type (an up-segment reversed is a down-segment and vice
// versa).
func (s *Segment) Reversed(typ Type) *Segment {
	hops := make([]Hop, len(s.Hops))
	for i, h := range s.Hops {
		hops[len(s.Hops)-1-i] = Hop{IA: h.IA, In: h.Eg, Eg: h.In}
	}
	return &Segment{Type: typ, Hops: hops}
}

// Fingerprint returns a string uniquely identifying the hop sequence,
// suitable as a map key.
func (s *Segment) Fingerprint() string {
	var b strings.Builder
	for _, h := range s.Hops {
		fmt.Fprintf(&b, "%x.%x.%x;", uint64(h.IA), h.In, h.Eg)
	}
	return b.String()
}

// Path is a full end-to-end AS-level path.
type Path struct {
	Hops []Hop
	// Segments records which discovered segments were joined, in order.
	// Empty for paths built directly (e.g., intra-AS).
	Segments []*Segment
}

// SrcIA returns the first AS of the path.
func (p *Path) SrcIA() topology.IA { return p.Hops[0].IA }

// DstIA returns the last AS of the path.
func (p *Path) DstIA() topology.IA { return p.Hops[len(p.Hops)-1].IA }

// Len returns the number of on-path ASes.
func (p *Path) Len() int { return len(p.Hops) }

func (p *Path) String() string {
	parts := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		parts[i] = h.String()
	}
	return strings.Join(parts, " ")
}

// Join combines consecutive segments into an end-to-end path. Adjacent
// segments must meet at a common AS (the transfer AS, §4.1); its merged hop
// takes the ingress of the earlier segment's last hop and the egress of the
// later segment's first hop. Valid combinations follow SCION's rules: at
// most one up-, one core-, and one down-segment, in that order.
func Join(segs ...*Segment) (*Path, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("segment: Join needs at least one segment")
	}
	if len(segs) > 3 {
		return nil, fmt.Errorf("segment: at most 3 segments can be joined, got %d", len(segs))
	}
	if err := validOrder(segs); err != nil {
		return nil, err
	}
	p := &Path{Segments: segs}
	p.Hops = append(p.Hops, segs[0].Hops...)
	for i := 1; i < len(segs); i++ {
		next := segs[i]
		lastIdx := len(p.Hops) - 1
		if p.Hops[lastIdx].IA != next.SrcIA() {
			return nil, fmt.Errorf("segment: segments do not meet: %s vs %s",
				p.Hops[lastIdx].IA, next.SrcIA())
		}
		// Merge the junction hop.
		p.Hops[lastIdx].Eg = next.Hops[0].Eg
		p.Hops = append(p.Hops, next.Hops[1:]...)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validOrder enforces the up[,core][,down] composition rule.
func validOrder(segs []*Segment) error {
	rank := func(t Type) int {
		switch t {
		case Up:
			return 0
		case Core:
			return 1
		case Down:
			return 2
		}
		return 3
	}
	prev := -1
	for _, s := range segs {
		r := rank(s.Type)
		if r <= prev {
			return fmt.Errorf("segment: invalid combination order (%v)", types(segs))
		}
		prev = r
	}
	return nil
}

func types(segs []*Segment) []Type {
	out := make([]Type, len(segs))
	for i, s := range segs {
		out[i] = s.Type
	}
	return out
}

// validate checks the path is internally consistent: In=0 only at the start,
// Eg=0 only at the end, no repeated AS (loop freedom).
func (p *Path) validate() error {
	seen := make(map[topology.IA]bool, len(p.Hops))
	for i, h := range p.Hops {
		if seen[h.IA] {
			return fmt.Errorf("segment: path visits AS %s twice", h.IA)
		}
		seen[h.IA] = true
		if (h.In == 0) != (i == 0) {
			return fmt.Errorf("segment: hop %d has In=%d", i, h.In)
		}
		if (h.Eg == 0) != (i == len(p.Hops)-1) {
			return fmt.Errorf("segment: hop %d has Eg=%d", i, h.Eg)
		}
	}
	return nil
}

// VerifyAgainst checks that every hop's interfaces exist in the topology and
// consecutive hops are actually connected. It guards against corrupted or
// forged paths entering the control plane.
func (p *Path) VerifyAgainst(topo *topology.Topology) error {
	for i, h := range p.Hops {
		as := topo.AS(h.IA)
		if as == nil {
			return fmt.Errorf("segment: unknown AS %s", h.IA)
		}
		if h.In != 0 && as.Interface(h.In) == nil {
			return fmt.Errorf("segment: AS %s has no interface %d", h.IA, h.In)
		}
		if h.Eg != 0 {
			intf := as.Interface(h.Eg)
			if intf == nil {
				return fmt.Errorf("segment: AS %s has no interface %d", h.IA, h.Eg)
			}
			if i == len(p.Hops)-1 {
				return fmt.Errorf("segment: last hop has egress %d", h.Eg)
			}
			next := p.Hops[i+1]
			if intf.Neighbor != next.IA || intf.NeighborIf != next.In {
				return fmt.Errorf("segment: hop %d egress does not lead to hop %d", i, i+1)
			}
		}
	}
	return nil
}

// MinCapacityKbps returns the smallest link capacity along the path (the
// physical upper bound for any reservation over it).
func (p *Path) MinCapacityKbps(topo *topology.Topology) uint64 {
	minCap := uint64(0)
	for _, h := range p.Hops {
		if h.Eg == 0 {
			continue
		}
		c := topo.AS(h.IA).Interface(h.Eg).CapacityKbps()
		if minCap == 0 || c < minCap {
			minCap = c
		}
	}
	return minCap
}

// sortSegments orders segments by length then fingerprint for determinism.
func sortSegments(segs []*Segment) {
	sort.Slice(segs, func(i, j int) bool {
		if len(segs[i].Hops) != len(segs[j].Hops) {
			return len(segs[i].Hops) < len(segs[j].Hops)
		}
		return segs[i].Fingerprint() < segs[j].Fingerprint()
	})
}
