package segment

import (
	"strings"
	"testing"

	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

func discoverTwoISD(t *testing.T) (*topology.Topology, *Registry) {
	t.Helper()
	topo := topology.TwoISD(topology.LinkSpec{})
	return topo, Discover(topo, DiscoverOpts{})
}

func TestDiscoverTwoISD(t *testing.T) {
	_, reg := discoverTwoISD(t)

	ups := reg.UpSegments(ia(1, 11))
	if len(ups) == 0 {
		t.Fatal("no up-segments for 1-11")
	}
	for _, u := range ups {
		if u.Type != Up {
			t.Errorf("segment type %v, want up", u.Type)
		}
		if u.SrcIA() != ia(1, 11) {
			t.Errorf("up-segment src %s, want 1-11", u.SrcIA())
		}
	}
	// 1-11 reaches core 1-1 via transit 1-2 or 1-3: two 3-hop up-segments.
	if len(ups) != 2 {
		t.Errorf("got %d up-segments, want 2", len(ups))
	}
	if ups[0].Len() != 3 || ups[0].DstIA() != ia(1, 1) {
		t.Errorf("shortest up-segment = %s", ups[0])
	}

	downs := reg.DownSegments(ia(2, 11))
	if len(downs) == 0 {
		t.Fatal("no down-segments for 2-11")
	}
	if downs[0].SrcIA() != ia(2, 1) || downs[0].DstIA() != ia(2, 11) {
		t.Errorf("down-segment = %s", downs[0])
	}

	cores := reg.CoreSegments(ia(1, 1), ia(2, 1))
	if len(cores) == 0 {
		t.Fatal("no core-segments 1-1 → 2-1")
	}
	if cores[0].Len() != 2 { // 1-1 → 2-1 directly
		t.Errorf("shortest core segment has %d hops: %s", cores[0].Len(), cores[0])
	}
}

func TestDiscoverSymmetry(t *testing.T) {
	_, reg := discoverTwoISD(t)
	// Every up-segment should be the reverse of a down-segment.
	for _, leaf := range []topology.IA{ia(1, 11), ia(2, 11)} {
		ups := reg.UpSegments(leaf)
		downs := reg.DownSegments(leaf)
		if len(ups) != len(downs) {
			t.Fatalf("%s: %d ups vs %d downs", leaf, len(ups), len(downs))
		}
		downFPs := make(map[string]bool)
		for _, d := range downs {
			downFPs[d.Reversed(Up).Fingerprint()] = true
		}
		for _, u := range ups {
			if !downFPs[u.Fingerprint()] {
				t.Errorf("up-segment %s has no matching down-segment", u)
			}
		}
	}
}

func TestJoinFullPath(t *testing.T) {
	topo, reg := discoverTwoISD(t)
	up := reg.UpSegments(ia(1, 11))[0]
	core := reg.CoreSegments(up.DstIA(), ia(2, 1))[0]
	down := reg.DownSegments(ia(2, 11))[0]
	p, err := Join(up, core, down)
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcIA() != ia(1, 11) || p.DstIA() != ia(2, 11) {
		t.Errorf("path endpoints %s → %s", p.SrcIA(), p.DstIA())
	}
	// 1-11, 1-2 (or 1-3), 1-1, 2-1, 2-11
	if p.Len() != 5 {
		t.Errorf("path length %d, want 5: %s", p.Len(), p)
	}
	if err := p.VerifyAgainst(topo); err != nil {
		t.Errorf("VerifyAgainst: %v", err)
	}
	if got := p.MinCapacityKbps(topo); got != topology.DefaultLinkCapacityKbps {
		t.Errorf("MinCapacityKbps = %d", got)
	}
}

func TestJoinRejectsBadOrder(t *testing.T) {
	_, reg := discoverTwoISD(t)
	up := reg.UpSegments(ia(1, 11))[0]
	down := reg.DownSegments(ia(2, 11))[0]
	core := reg.CoreSegments(ia(1, 1), ia(2, 1))[0]

	if _, err := Join(down, up); err == nil {
		t.Error("down,up should be rejected")
	}
	if _, err := Join(core, up); err == nil {
		t.Error("core,up should be rejected")
	}
	if _, err := Join(up, up); err == nil {
		t.Error("up,up should be rejected")
	}
	if _, err := Join(); err == nil {
		t.Error("empty join should be rejected")
	}
	if _, err := Join(up, core, down, down); err == nil {
		t.Error("4 segments should be rejected")
	}
}

func TestJoinRejectsDisconnected(t *testing.T) {
	_, reg := discoverTwoISD(t)
	up := reg.UpSegments(ia(1, 11))[0] // ends at 1-1
	down := reg.DownSegments(ia(2, 11))[0]
	if up.DstIA() == down.SrcIA() {
		t.Skip("segments happen to meet")
	}
	if _, err := Join(up, down); err == nil {
		t.Error("disconnected segments should be rejected")
	}
}

func TestPathsLeafToLeaf(t *testing.T) {
	topo, reg := discoverTwoISD(t)
	paths, err := reg.Paths(ia(1, 11), ia(2, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths 1-11 → 2-11")
	}
	for _, p := range paths {
		if err := p.VerifyAgainst(topo); err != nil {
			t.Errorf("path %s invalid: %v", p, err)
		}
		if p.SrcIA() != ia(1, 11) || p.DstIA() != ia(2, 11) {
			t.Errorf("wrong endpoints: %s", p)
		}
	}
	// Shortest first.
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Len() > paths[i].Len() {
			t.Error("paths not sorted by length")
		}
	}
	// Path diversity: X-Y core link and the direct up through Y exist, so
	// more than one path is expected.
	if len(paths) < 2 {
		t.Errorf("expected path diversity, got %d path(s)", len(paths))
	}
}

func TestPathsCoreToCore(t *testing.T) {
	_, reg := discoverTwoISD(t)
	paths, err := reg.Paths(ia(1, 1), ia(2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no core-to-core paths")
	}
	if paths[0].Len() != 2 {
		t.Errorf("shortest core path length = %d, want 2", paths[0].Len())
	}
}

func TestPathsLimitAndErrors(t *testing.T) {
	_, reg := discoverTwoISD(t)
	if _, err := reg.Paths(ia(1, 11), ia(1, 11), 0); err == nil {
		t.Error("same-AS path request should fail")
	}
	if _, err := reg.Paths(ia(9, 9), ia(1, 11), 0); err == nil {
		t.Error("unknown AS should fail")
	}
	paths, err := reg.Paths(ia(1, 11), ia(2, 11), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("limit=1 returned %d paths", len(paths))
	}
}

func TestPathsLeafToCoreAndBack(t *testing.T) {
	topo, reg := discoverTwoISD(t)
	up, err := reg.Paths(ia(1, 11), ia(2, 1), 0)
	if err != nil || len(up) == 0 {
		t.Fatalf("leaf→core: %v, %d paths", err, len(up))
	}
	down, err := reg.Paths(ia(2, 1), ia(1, 11), 0)
	if err != nil || len(down) == 0 {
		t.Fatalf("core→leaf: %v, %d paths", err, len(down))
	}
	for _, p := range append(up, down...) {
		if err := p.VerifyAgainst(topo); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestPathsOnGeneratedTopology(t *testing.T) {
	topo := topology.Generate(topology.GenSpec{
		ISDs: 2, CoresPerISD: 2, ProvidersPerISD: 2, LeavesPerISD: 3,
		ProviderUplinks: 2, LeafUplinks: 2, Seed: 3,
	})
	reg := Discover(topo, DiscoverOpts{})
	src := ia(1, 5) // first leaf of ISD 1 (2 cores + 2 providers → leaves at 5..7)
	dst := ia(2, 5)
	paths, err := reg.Paths(src, dst, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no inter-ISD leaf paths on generated topology")
	}
	for _, p := range paths {
		if err := p.VerifyAgainst(topo); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestUpDownShortcutSameISD(t *testing.T) {
	// Two leaves under the same core: up+down shortcut join at the core.
	topo := topology.Star(2, topology.LinkSpec{})
	reg := Discover(topo, DiscoverOpts{})
	paths, err := reg.Paths(ia(1, 2), ia(1, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shortcut path between sibling leaves")
	}
	if paths[0].Len() != 3 {
		t.Errorf("shortcut path length = %d, want 3 (%s)", paths[0].Len(), paths[0])
	}
	if err := paths[0].VerifyAgainst(topo); err != nil {
		t.Error(err)
	}
	if len(paths[0].Segments) != 2 {
		t.Errorf("shortcut should use 2 segments, got %d", len(paths[0].Segments))
	}
}

func TestSegmentReversedInvolution(t *testing.T) {
	_, reg := discoverTwoISD(t)
	u := reg.UpSegments(ia(1, 11))[0]
	rr := u.Reversed(Down).Reversed(Up)
	if rr.Fingerprint() != u.Fingerprint() {
		t.Error("Reversed twice is not identity")
	}
}

func TestLinePathLengths(t *testing.T) {
	// Line topologies drive Fig. 5/6 experiments: verify an n-AS line yields
	// an n-hop path from first to last AS.
	for _, n := range []int{2, 4, 8, 16} {
		topo := topology.Line(n, 1, topology.LinkSpec{})
		reg := Discover(topo, DiscoverOpts{MaxLen: 20})
		paths, err := reg.Paths(ia(1, 1), ia(1, topology.ASID(n)), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(paths) == 0 {
			t.Fatalf("n=%d: no path", n)
		}
		if paths[0].Len() != n {
			t.Errorf("n=%d: path length %d", n, paths[0].Len())
		}
	}
}

func TestPathValidateCatchesLoops(t *testing.T) {
	p := &Path{Hops: []Hop{
		{IA: ia(1, 1), Eg: 1},
		{IA: ia(1, 2), In: 1, Eg: 2},
		{IA: ia(1, 1), In: 2},
	}}
	if err := p.validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("expected loop error, got %v", err)
	}
}

func TestTypeString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" || Core.String() != "core" {
		t.Error("Type.String broken")
	}
	if !strings.Contains(Type(9).String(), "9") {
		t.Error("unknown type should include number")
	}
}
