package segment

import (
	"testing"

	"colibri/internal/topology"
)

func TestDiscoverOptsBoundSegments(t *testing.T) {
	// A deep chain with MaxLen 3 must not discover segments longer than 3
	// ASes.
	topo := topology.Line(8, 1, topology.LinkSpec{})
	reg := Discover(topo, DiscoverOpts{MaxLen: 3})
	for leaf := topology.ASID(2); leaf <= 8; leaf++ {
		for _, seg := range reg.UpSegments(ia(1, leaf)) {
			if seg.Len() > 3 {
				t.Errorf("segment %s exceeds MaxLen", seg)
			}
		}
	}
	// The far leaf is unreachable within 3 hops: no up-segments.
	if segs := reg.UpSegments(ia(1, 8)); len(segs) != 0 {
		t.Errorf("leaf 8 has %d segments despite MaxLen 3", len(segs))
	}
}

func TestMaxPerPairKeepsShortest(t *testing.T) {
	// Star of parallel providers: many equal-length ups; MaxPerPair caps
	// how many are kept per (origin, AS) pair.
	topo := topology.New()
	core := topology.MustIA(1, 1)
	leaf := topology.MustIA(1, 99)
	topo.AddAS(core, true)
	topo.AddAS(leaf, false)
	for i := 1; i <= 6; i++ {
		mid := topology.MustIA(1, topology.ASID(i+1))
		topo.AddAS(mid, false)
		topo.MustConnect(core, topology.IfID(i), mid, 1, topology.LinkParent, topology.LinkSpec{})
		topo.MustConnect(mid, 2, leaf, topology.IfID(i), topology.LinkParent, topology.LinkSpec{})
	}
	reg := Discover(topo, DiscoverOpts{MaxPerPair: 2})
	if got := len(reg.UpSegments(leaf)); got != 2 {
		t.Errorf("kept %d up-segments, want 2", got)
	}
}

func TestMinCapacityMixedLinks(t *testing.T) {
	topo := topology.New()
	a, b, c := ia(1, 1), ia(1, 2), ia(1, 3)
	topo.AddAS(a, true)
	topo.AddAS(b, false)
	topo.AddAS(c, false)
	topo.MustConnect(a, 1, b, 1, topology.LinkParent, topology.LinkSpec{CapacityKbps: 10_000})
	topo.MustConnect(b, 2, c, 1, topology.LinkParent, topology.LinkSpec{CapacityKbps: 4_000})
	reg := Discover(topo, DiscoverOpts{})
	paths, err := reg.Paths(a, c, 0)
	if err != nil || len(paths) == 0 {
		t.Fatalf("paths: %v, %d", err, len(paths))
	}
	if got := paths[0].MinCapacityKbps(topo); got != 4_000 {
		t.Errorf("MinCapacityKbps = %d, want 4000 (the bottleneck)", got)
	}
}
