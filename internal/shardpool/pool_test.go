package shardpool

import (
	"sync/atomic"
	"testing"
)

func TestInlineModeRunsInOrder(t *testing.T) {
	var got []int
	p := New(1, func(shard int) { got = append(got, shard) })
	defer p.Close()
	p.Dispatch(4)
	p.Dispatch(2)
	want := []int{0, 1, 2, 3, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

func TestDispatchRunsEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		const n = 64
		var counts [n]atomic.Int32
		p := New(workers, func(shard int) { counts[shard].Add(1) })
		const batches = 10
		for b := 0; b < batches; b++ {
			p.Dispatch(n)
		}
		p.Close()
		for i := range counts {
			if c := counts[i].Load(); c != batches {
				t.Fatalf("workers=%d: shard %d ran %d times, want %d", workers, i, c, batches)
			}
		}
	}
}

func TestDispatchZeroAndPartial(t *testing.T) {
	var ran atomic.Int32
	p := New(4, func(int) { ran.Add(1) })
	defer p.Close()
	p.Dispatch(0)
	if ran.Load() != 0 {
		t.Fatalf("Dispatch(0) ran %d shards", ran.Load())
	}
	p.Dispatch(2) // fewer shards than workers
	if ran.Load() != 2 {
		t.Fatalf("Dispatch(2) ran %d shards, want 2", ran.Load())
	}
}

// TestPanicCarriesShardIndex pins the diagnostic contract: a pooled worker's
// panic surfaces on the dispatcher as a WorkerPanic naming the shard whose
// run tripped it, with the original value preserved.
func TestPanicCarriesShardIndex(t *testing.T) {
	p := New(4, func(shard int) {
		if shard == 5 {
			panic("boom")
		}
	})
	defer p.Close()
	defer func() {
		wp, ok := recover().(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want WorkerPanic", wp)
		}
		if wp.Shard != 5 || wp.Val != "boom" {
			t.Fatalf("WorkerPanic = %+v, want Shard=5 Val=boom", wp)
		}
		if want := "shardpool: panic on shard 5: boom"; wp.Error() != want {
			t.Fatalf("Error() = %q, want %q", wp.Error(), want)
		}
	}()
	p.Dispatch(8)
	t.Fatal("Dispatch returned without re-raising")
}

// TestPanicDuringFinalBarrier is the regression for a panic raised by the
// LAST shard to finish a dispatch — the one whose wg.Done releases the
// barrier. The panicking shard spins until every other shard has completed,
// so the capture races directly with the dispatcher's wg.Wait wake-up; the
// panic must still be observed (the mutex write happens before Done, which
// happens before Wait returns) and must carry the shard index.
func TestPanicDuringFinalBarrier(t *testing.T) {
	const n = 8
	var done atomic.Int32
	p := New(4, func(shard int) {
		if shard != n-1 {
			done.Add(1)
			return
		}
		for done.Load() != n-1 {
			// Spin: shard n-1 must be the final Done of the barrier.
		}
		panic("last shard")
	})
	defer p.Close()
	defer func() {
		wp, ok := recover().(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want WorkerPanic", wp)
		}
		if wp.Shard != n-1 || wp.Val != "last shard" {
			t.Fatalf("WorkerPanic = %+v, want Shard=%d Val=%q", wp, n-1, "last shard")
		}
	}()
	p.Dispatch(n)
	t.Fatal("Dispatch returned without re-raising")
}

func TestPanicReraisedOnDispatcher(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers, func(shard int) {
			if shard == 3 {
				panic("shard 3 blew up")
			}
		})
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: Dispatch did not re-raise the shard panic", workers)
				}
			}()
			p.Dispatch(8)
		}()
		// The pool must stay usable after a captured panic.
		if workers > 1 {
			p.Dispatch(2)
		}
		p.Close()
	}
}
