// Package shardpool runs per-shard work items on a small persistent pool of
// goroutines — the fan-out engine of the sharded data plane (router.Sharded,
// gateway.Sharded). It reuses the worker-pool discipline of the parallel
// netsim engine (internal/netsim/engine_par.go): workers pull shard indices
// from a single work channel (one receive, no select, so no scheduler-order
// dependence leaks into shard state), a WaitGroup forms the batch barrier,
// and worker panics are captured and re-raised on the dispatching goroutine
// so callers see the same panic an inline run would raise.
//
// Shard ownership is the caller's contract: run(shard) must touch only state
// owned by that shard (plus concurrency-safe telemetry). The channel send
// and the WaitGroup barrier establish the happens-before edges that hand a
// shard's state from the dispatcher to a worker and back, so a data-race-free
// run function makes the whole dispatch race-free.
package shardpool

import (
	"fmt"
	"sync"
)

// WorkerPanic is the value Dispatch re-raises when run(shard) panicked on a
// pool worker: the original panic value wrapped with the originating shard
// index, so a crash in a million-flow fan-out names the shard whose state
// tripped it. Inline mode (workers == 1) panics on the caller's goroutine
// with the original value and stack, exactly like a sequential run.
type WorkerPanic struct {
	Shard int // index of the shard whose run panicked
	Val   any // the original panic value
}

func (wp WorkerPanic) Error() string {
	return fmt.Sprintf("shardpool: panic on shard %d: %v", wp.Shard, wp.Val)
}

// Pool dispatches shard indices to a fixed set of workers. Dispatch is not
// safe for concurrent use (one batch at a time, like a data-plane front end);
// the pool goroutines themselves are persistent and idle between batches.
type Pool struct {
	run     func(shard int)
	workers int
	// work is nil in inline mode (workers == 1): Dispatch then runs shards
	// on the calling goroutine, which is both faster and exactly the
	// single-core configuration the normalized benchmarks baseline against.
	work chan int
	wg   sync.WaitGroup

	panicMu  sync.Mutex
	panicVal any
	panicked bool
	closed   bool
}

// New builds a pool of `workers` goroutines executing run. workers < 1 is
// clamped to 1; a one-worker pool spawns no goroutines and runs inline.
// Close releases the goroutines when the pool is no longer needed.
func New(workers int, run func(shard int)) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{run: run, workers: workers}
	if workers == 1 {
		return p
	}
	// Buffered so the dispatcher can enqueue a burst of shards without
	// rendezvousing on each send; workers drain at their own pace.
	p.work = make(chan int, 4*workers)
	for i := 0; i < workers; i++ {
		go p.loop(p.work)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) loop(work <-chan int) {
	for sh := range work {
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.panicMu.Lock()
					if !p.panicked {
						p.panicked = true
						p.panicVal = WorkerPanic{Shard: sh, Val: r}
					}
					p.panicMu.Unlock()
				}
				p.wg.Done()
			}()
			p.run(sh)
		}()
	}
}

// Dispatch runs run(0) … run(n-1) across the pool and returns when all have
// finished. In inline mode the shards run in index order on the caller's
// goroutine; otherwise assignment of shards to workers is scheduling-
// dependent (shard state must not care, per the ownership contract). If any
// run panicked, the first captured panic is re-raised here after the
// barrier, wrapped as a WorkerPanic naming the originating shard.
//
//colibri:nomalloc
func (p *Pool) Dispatch(n int) {
	if p.work == nil {
		for sh := 0; sh < n; sh++ {
			p.run(sh)
		}
		return
	}
	p.wg.Add(n)
	for sh := 0; sh < n; sh++ {
		p.work <- sh
	}
	p.wg.Wait()
	// wg.Wait happens-after every wg.Done, so the plain reads are ordered.
	if p.panicked {
		v := p.panicVal
		p.panicked, p.panicVal = false, nil
		panic(v)
	}
}

// Close stops the pool's goroutines. The pool must be idle (no Dispatch in
// flight); a closed pool must not be dispatched again. Close is idempotent
// but not safe for concurrent use with itself or Dispatch.
func (p *Pool) Close() {
	if p.work != nil && !p.closed {
		p.closed = true
		close(p.work)
	}
}
