// Package ofd implements the probabilistic overuse-flow detector used by
// transit and transfer ASes (§4.8). Following the LOFT/count-min family of
// algorithms the paper builds on, it tracks per-reservation bandwidth usage
// in a small count-min sketch over fixed time windows:
//
//   - Input per packet: the flow label (SrcAS, ResID) and the *normalized*
//     packet size (total size ÷ reservation bandwidth), so that a single
//     sketch monitors reservations of all bandwidths and all versions of an
//     EER share one budget.
//   - A flow whose estimated normalized usage exceeds (1+ε) × window is
//     flagged suspicious. Count-min overestimates but never underestimates,
//     so true overusers above the threshold are always flagged (no false
//     negatives); occasional false positives are resolved by escalation to
//     deterministic token-bucket monitoring, exactly as in the paper.
package ofd

import (
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/telemetry"
)

// Config parameterizes the detector.
type Config struct {
	// Depth is the number of sketch rows (default 4).
	Depth int
	// Width is the number of counters per row (default 4096).
	Width int
	// WindowNs is the measurement window (default 50 ms).
	WindowNs int64
	// Tolerance is ε: a flow is suspicious above (1+ε)×fair usage
	// (default 0.1).
	Tolerance float64
}

func (c *Config) setDefaults() {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Width == 0 {
		c.Width = 4096
	}
	if c.WindowNs == 0 {
		c.WindowNs = 50 * 1e6
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
}

// Split scales the config for one of n data-plane shards: each shard sees
// only its pinned flows, so per-row width shrinks to Width/n (floor 64 to
// keep collision noise bounded on tiny shards) while depth, window, and
// tolerance — which are per-flow properties — stay unchanged. This mirrors
// the capacity/K clone trick of the sharded control plane: n shard sketches
// together hold the memory of one full-size sketch.
func (c Config) Split(n int) Config {
	c.setDefaults()
	if n > 1 {
		c.Width /= n
		if c.Width < 64 {
			c.Width = 64
		}
	}
	return c
}

// Detector is one AS's overuse-flow detector. Safe for concurrent use.
type Detector struct {
	mu        sync.Mutex
	cfg       Config
	counters  []float64 // depth × width, row-major
	seeds     []uint64
	winStart  int64
	threshold float64 // normalized usage limit per window
	// suspicious accumulates flows flagged in the current window; drained
	// by Suspicious().
	suspicious map[reservation.ID]struct{}
	// gauge, when set, mirrors len(suspicious); updated under mu.
	gauge *telemetry.Gauge
}

// SetGauge attaches a gauge mirroring the number of currently flagged
// (not yet drained) suspicious flows.
func (d *Detector) SetGauge(g *telemetry.Gauge) {
	d.mu.Lock()
	d.gauge = g
	if g != nil {
		g.Set(int64(len(d.suspicious)))
	}
	d.mu.Unlock()
}

// Occupancy returns the fraction of nonzero sketch counters in the current
// window — a load signal for sizing Depth×Width.
func (d *Detector) Occupancy() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	nz := 0
	for _, c := range d.counters {
		if c != 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(d.counters))
}

// New builds a detector.
func New(cfg Config) *Detector {
	cfg.setDefaults()
	d := &Detector{
		cfg:        cfg,
		counters:   make([]float64, cfg.Depth*cfg.Width),
		seeds:      make([]uint64, cfg.Depth),
		suspicious: make(map[reservation.ID]struct{}),
	}
	// Fixed odd seeds; distinct per row.
	for i := range d.seeds {
		d.seeds[i] = 0x9E3779B97F4A7C15 * uint64(2*i+1)
	}
	// A conforming flow transmits bw × window bits, i.e. normalized usage
	// equal to the window length in seconds.
	d.threshold = (1 + cfg.Tolerance) * float64(cfg.WindowNs) / 1e9
	return d
}

// hash mixes the flow label with a row seed (splitmix64 finalizer).
func hash(id reservation.ID, seed uint64) uint64 {
	x := uint64(id.SrcAS) ^ (uint64(id.Num) << 32) ^ seed
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Record accounts one packet and reports whether the flow is now suspicious
// in the current window. normSize is packet size in bits divided by the
// reservation bandwidth in bits/second (i.e., seconds of budget consumed).
func (d *Detector) Record(id reservation.ID, normSize float64, nowNs int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if nowNs-d.winStart >= d.cfg.WindowNs {
		clear(d.counters)
		d.winStart = nowNs - (nowNs-d.winStart)%d.cfg.WindowNs
		if nowNs-d.winStart >= d.cfg.WindowNs { // first call or long gap
			d.winStart = nowNs
		}
	}
	est := -1.0
	for row := 0; row < d.cfg.Depth; row++ {
		idx := row*d.cfg.Width + int(hash(id, d.seeds[row])%uint64(d.cfg.Width))
		d.counters[idx] += normSize
		if est < 0 || d.counters[idx] < est {
			est = d.counters[idx]
		}
	}
	if est > d.threshold {
		d.suspicious[id] = struct{}{}
		if d.gauge != nil {
			d.gauge.Set(int64(len(d.suspicious)))
		}
		return true
	}
	return false
}

// Suspicious drains and returns the flows flagged since the last call;
// the caller subjects them to deterministic monitoring.
func (d *Detector) Suspicious() []reservation.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.suspicious) == 0 {
		return nil
	}
	out := make([]reservation.ID, 0, len(d.suspicious))
	for id := range d.suspicious {
		out = append(out, id)
	}
	clear(d.suspicious)
	if d.gauge != nil {
		d.gauge.Set(0)
	}
	return out
}

// NormalizedSize converts a packet size and reservation bandwidth to the
// detector's input unit (seconds of reservation budget).
func NormalizedSize(sizeBytes uint32, bwKbps uint64) float64 {
	if bwKbps == 0 {
		return 0
	}
	return float64(sizeBytes) * 8 / (float64(bwKbps) * 1000)
}
