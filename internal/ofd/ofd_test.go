package ofd

import (
	"testing"

	"colibri/internal/reservation"
	"colibri/internal/topology"
)

func rid(src topology.ASID, n uint32) reservation.ID {
	return reservation.ID{SrcAS: topology.MustIA(1, src), Num: n}
}

// drive sends packets of sizeBytes at the given pps on a reservation of
// bwKbps for durNs, returning whether the flow was ever flagged.
func drive(d *Detector, id reservation.ID, bwKbps uint64, sizeBytes uint32, pps float64, durNs int64) bool {
	flagged := false
	interval := int64(1e9 / pps)
	for now := int64(0); now < durNs; now += interval {
		if d.Record(id, NormalizedSize(sizeBytes, bwKbps), now) {
			flagged = true
		}
	}
	return flagged
}

func TestConformingFlowNotFlagged(t *testing.T) {
	d := New(Config{})
	// 8 Mbps reservation, 1000-byte packets at exactly 1000 pps = 8 Mbps.
	if drive(d, rid(9, 1), 8_000, 1000, 1000, 1e9) {
		t.Error("conforming flow flagged")
	}
	if got := d.Suspicious(); got != nil {
		t.Errorf("Suspicious() = %v", got)
	}
}

func TestOverusingFlowFlagged(t *testing.T) {
	d := New(Config{})
	// 3× overuse must be flagged (count-min never underestimates).
	if !drive(d, rid(9, 1), 8_000, 1000, 3000, 1e9) {
		t.Error("3× overuser not flagged")
	}
	sus := d.Suspicious()
	if len(sus) != 1 || sus[0] != rid(9, 1) {
		t.Errorf("Suspicious() = %v", sus)
	}
	// Drained after the call.
	if d.Suspicious() != nil {
		t.Error("Suspicious() not drained")
	}
}

func TestMildOveruseFlagged(t *testing.T) {
	d := New(Config{Tolerance: 0.1})
	// 50% overuse exceeds the 10% tolerance.
	if !drive(d, rid(9, 1), 8_000, 1000, 1500, 1e9) {
		t.Error("1.5× overuser not flagged")
	}
}

func TestNormalizationAcrossBandwidths(t *testing.T) {
	d := New(Config{})
	// A 100 Mbps reservation at full rate (12500 × 1000B pps) conforms;
	// a 1 Mbps reservation at the same packet rate massively overuses.
	if drive(d, rid(9, 1), 100_000, 1000, 12_500, 5e8) {
		t.Error("full-rate big reservation flagged")
	}
	if !drive(d, rid(9, 2), 1_000, 1000, 12_500, 5e8) {
		t.Error("small reservation at 100× not flagged")
	}
}

func TestManyConformingOneOveruser(t *testing.T) {
	d := New(Config{})
	const flows = 200
	// Interleave: 200 flows at 80 % of their 1 Mbps reservations (100 pps
	// of 1000 B) plus one overuser at 10×.
	interval := int64(1e9 / 100)
	for now := int64(0); now < 1e9; now += interval {
		for f := uint32(0); f < flows; f++ {
			d.Record(rid(9, f), NormalizedSize(1000, 1_000), now)
		}
		for k := 0; k < 10; k++ {
			d.Record(rid(9, 999), NormalizedSize(1000, 1_000), now)
		}
	}
	sus := d.Suspicious()
	found := false
	for _, id := range sus {
		if id == rid(9, 999) {
			found = true
		}
	}
	if !found {
		t.Error("overuser hidden among conforming flows not flagged")
	}
	// Sketch collisions may flag a few innocents (they get escalated to
	// deterministic monitoring and cleared); but not wholesale.
	if len(sus) > flows/4 {
		t.Errorf("%d of %d flows flagged — sketch too small or broken", len(sus), flows)
	}
}

func TestWindowReset(t *testing.T) {
	d := New(Config{WindowNs: 1e7})
	id := rid(9, 1)
	// Burst in one window flags…
	for i := 0; i < 100; i++ {
		d.Record(id, NormalizedSize(1500, 1_000), int64(i))
	}
	if len(d.Suspicious()) == 0 {
		t.Fatal("burst not flagged")
	}
	// …but after the window turns over, the same flow starts clean.
	if d.Record(id, NormalizedSize(1000, 1_000), 5e7) {
		t.Error("flow flagged immediately after window reset")
	}
}

func TestNormalizedSize(t *testing.T) {
	// 1000 bytes on 8 Mbps = 8000 bits / 8e6 bps = 1 ms of budget.
	if got := NormalizedSize(1000, 8_000); got < 0.00099 || got > 0.00101 {
		t.Errorf("NormalizedSize = %v, want 0.001", got)
	}
	if NormalizedSize(1000, 0) != 0 {
		t.Error("zero bandwidth should normalize to 0")
	}
}

func BenchmarkRecord(b *testing.B) {
	d := New(Config{})
	ids := make([]reservation.ID, 1024)
	for i := range ids {
		ids[i] = rid(topology.ASID(i%64), uint32(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Record(ids[i%1024], 0.0001, int64(i)*1000)
	}
}
