// Package workload builds the reservation populations and traffic mixes of
// the paper's evaluation: pre-generated SegRs and EERs with controlled
// source mixes (Figs. 3–4), gateways preloaded with r reservations over
// h-hop paths (Figs. 5–6, App. E), and the three-phase traffic mixes of
// Table 2.
package workload

import (
	"math/rand"

	"colibri/internal/admission"
	"colibri/internal/cryptoutil"
	"colibri/internal/gateway"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/topology"
)

// Epoch is the nominal experiment start time (Unix seconds).
const Epoch = uint32(1_700_000_000)

// EpochNs is Epoch in nanoseconds.
const EpochNs = int64(Epoch) * 1e9

// TransitAS builds a transit AS with n interfaces of the given capacity and
// returns it with a fresh admission state — the unit under test in Fig. 3.
func TransitAS(nIfs int, linkKbps uint64) (*topology.AS, *admission.State) {
	topo := topology.New()
	center := topo.AddAS(topology.MustIA(1, 1), true)
	for i := 1; i <= nIfs; i++ {
		nb := topology.MustIA(1, topology.ASID(i+1))
		topo.AddAS(nb, true)
		topo.MustConnect(topology.MustIA(1, 1), topology.IfID(i), nb, 1,
			topology.LinkCore, topology.LinkSpec{CapacityKbps: linkKbps})
	}
	return center, admission.NewState(center, admission.DefaultSplit)
}

// PopulateSegRs admits n SegRs on the (in, eg) pair of st. A fraction
// `ratio` of them come from srcMain; the rest from distinct other sources —
// the Fig. 3 "ratio" parameter. Demands are chosen small so all fit.
func PopulateSegRs(st *admission.State, n int, ratio float64, srcMain topology.IA, in, eg topology.IfID, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		src := srcMain
		if float64(i%100)/100 >= ratio {
			src = topology.MustIA(srcMain.ISD(), topology.ASID(1000+i))
		}
		req := admission.Request{
			ID:      reservation.ID{SrcAS: src, Num: uint32(i + 1)},
			Src:     src,
			In:      in,
			Eg:      eg,
			MinKbps: 0,
			MaxKbps: uint64(1 + rng.Intn(100)),
		}
		if _, err := st.AdmitSegR(req); err != nil {
			return err
		}
	}
	return nil
}

// EERPopulation is the Fig. 4 fixture: a reservation store holding s SegRs
// from one source (the paper's parameter s) and n EERs admitted over the
// first SegR.
func EERPopulation(s, n int) (*reservation.Store, reservation.ID, error) {
	store := reservation.NewStore(topology.MustIA(1, 1))
	var first reservation.ID
	for i := 0; i < s; i++ {
		id := store.NextID()
		if i == 0 {
			first = id
		}
		segr := &reservation.SegR{
			ID:     id,
			In:     1,
			Eg:     2,
			Active: reservation.Version{Ver: 1, BwKbps: 1 << 40, ExpT: Epoch + 300},
		}
		if err := store.AddSegR(segr); err != nil {
			return nil, first, err
		}
	}
	for i := 0; i < n; i++ {
		eer := &reservation.EER{ID: reservation.ID{SrcAS: topology.MustIA(1, 9), Num: uint32(i + 1)}}
		v := reservation.Version{Ver: 1, BwKbps: 1, ExpT: Epoch + reservation.EERLifetimeSeconds}
		if err := store.AdmitEERVersion(eer, []reservation.ID{first}, v, Epoch); err != nil {
			return nil, first, err
		}
	}
	return store, first, nil
}

// GatewayPopulation is the Figs. 5–6 fixture: a gateway of srcAS preloaded
// with r reservations, each over an h-hop path, with hop authenticators
// consistent with the returned per-AS secrets. It returns the gateway and
// the routers of the on-path ASes (hop order) sharing those secrets.
func GatewayPopulation(r, hops int, rng *rand.Rand) (*gateway.Gateway, []*router.Router) {
	gw, routers, _ := GatewayPopulationWithSecrets(r, hops, rng)
	return gw, routers
}

// GatewayPopulationWithSecrets additionally returns the per-hop AS secrets,
// for building router variants (ablations) over the same population.
func GatewayPopulationWithSecrets(r, hops int, rng *rand.Rand) (*gateway.Gateway, []*router.Router, []cryptoutil.Key) {
	return populate(r, hops, rng, gateway.Options{}, 0)
}

// GatewayPopulationWithOptions is GatewayPopulation with explicit gateway
// options and per-worker router σ-cache sizing — the fixture of the batched
// pipeline benchmarks (cached vs. uncached over the same population).
func GatewayPopulationWithOptions(r, hops int, rng *rand.Rand, gwOpts gateway.Options, sigmaCacheEntries int) (*gateway.Gateway, []*router.Router) {
	gw, routers, _ := populate(r, hops, rng, gwOpts, sigmaCacheEntries)
	return gw, routers
}

func populate(r, hops int, rng *rand.Rand, gwOpts gateway.Options, sigmaCacheEntries int) (*gateway.Gateway, []*router.Router, []cryptoutil.Key) {
	srcAS := topology.MustIA(1, 11)
	gw := gateway.NewWithOptions(srcAS, gwOpts)

	secrets := make([]cryptoutil.Key, hops)
	macs := make([]*cryptoutil.CBCMAC, hops)
	routers := make([]*router.Router, hops)
	for i := range secrets {
		_, _ = rng.Read(secrets[i][:]) // rand.Rand.Read never fails
		macs[i] = cryptoutil.MustCBCMAC(secrets[i])
		routers[i] = router.New(router.Config{
			IA:                topology.MustIA(1, topology.ASID(i+1)),
			Secret:            secrets[i],
			SigmaCacheEntries: sigmaCacheEntries,
		})
	}
	path := make([]packet.HopField, hops)
	for i := range path {
		path[i] = packet.HopField{In: topology.IfID(2 * i), Eg: topology.IfID(2*i + 1)}
	}
	path[0].In = 0
	path[hops-1].Eg = 0

	auths := make([]cryptoutil.Key, hops)
	var in [packet.EERAuthLen]byte
	var out [cryptoutil.MACSize]byte
	for id := 1; id <= r; id++ {
		res := packet.ResInfo{
			SrcAS:  srcAS,
			ResID:  uint32(id),
			BwKbps: 1 << 30, // effectively unmonitored: Figs. 5–6 measure crypto+lookup
			ExpT:   Epoch + reservation.EERLifetimeSeconds,
			Ver:    1,
		}
		eer := packet.EERInfo{SrcHost: 1, DstHost: 2}
		for i := range auths {
			packet.EERAuthInput(&in, &res, &eer, path[i])
			macs[i].SumInto(&out, in[:])
			auths[i] = cryptoutil.Key(out)
		}
		if err := gw.Install(res, eer, path, auths); err != nil {
			panic(err) // population construction bug
		}
	}
	return gw, routers, secrets
}

// RandomResIDs returns n reservation IDs drawn uniformly from [1, r] — the
// paper's worst-case arrival pattern ("packets arrive with random
// reservation IDs").
func RandomResIDs(n, r int, rng *rand.Rand) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(1 + rng.Intn(r))
	}
	return ids
}
