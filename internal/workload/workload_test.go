package workload

import (
	"math/rand"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/topology"
)

func TestTransitAS(t *testing.T) {
	as, st := TransitAS(4, 100_000)
	if len(as.Interfaces) != 4 {
		t.Fatalf("interfaces = %d", len(as.Interfaces))
	}
	if st == nil || st.Len() != 0 {
		t.Fatal("admission state not fresh")
	}
}

func TestPopulateSegRsRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, st := TransitAS(2, 1<<40)
	src := topology.MustIA(1, 500)
	if err := PopulateSegRs(st, 1000, 0.5, src, 1, 2, rng); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1000 {
		t.Errorf("admitted %d", st.Len())
	}
}

func TestEERPopulation(t *testing.T) {
	store, segID, err := EERPopulation(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	segs, eers := store.Counts()
	if segs != 5 || eers != 100 {
		t.Errorf("counts: %d SegRs, %d EERs", segs, eers)
	}
	sr, err := store.GetSegR(segID)
	if err != nil {
		t.Fatal(err)
	}
	if sr.AllocatedEERKbps != 100 {
		t.Errorf("allocated = %d", sr.AllocatedEERKbps)
	}
}

// TestGatewayPopulationInterop is the load-bearing check: packets built by
// the populated gateway must validate at every populated router.
func TestGatewayPopulationInterop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gw, routers := GatewayPopulation(64, 5, rng)
	if gw.Len() != 64 || len(routers) != 5 {
		t.Fatalf("population: %d reservations, %d routers", gw.Len(), len(routers))
	}
	w := gw.NewWorker()
	buf := make([]byte, 512)
	for id := uint32(1); id <= 64; id++ {
		sz, err := w.Build(id, []byte("x"), buf, EpochNs+int64(id))
		if err != nil {
			t.Fatal(err)
		}
		pkt := buf[:sz]
		for hop, rt := range routers {
			packet.SetCurrHopInPlace(pkt, uint8(hop))
			if _, err := rt.NewWorker().Process(pkt, EpochNs); err != nil {
				t.Fatalf("reservation %d hop %d: %v", id, hop, err)
			}
		}
	}
}

func TestRandomResIDsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := RandomResIDs(10_000, 64, rng)
	if len(ids) != 10_000 {
		t.Fatalf("len = %d", len(ids))
	}
	seen := make(map[uint32]bool)
	for _, id := range ids {
		if id < 1 || id > 64 {
			t.Fatalf("id %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) != 64 {
		t.Errorf("only %d distinct IDs drawn", len(seen))
	}
}
