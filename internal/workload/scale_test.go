package workload

import (
	"testing"

	"colibri/internal/topology"
)

func TestBuildRoutesLine(t *testing.T) {
	// Line of 5 ASes: next hop from either end toward the other is always
	// the adjacent AS.
	topo := topology.Line(5, 1, topology.LinkSpec{CapacityKbps: 1000, LatencyNs: 1e6})
	rt := BuildRoutes(topo)
	ias := topo.SortedIAs()
	if got := rt.NextHop(ias[0], ias[4]); got != ias[1] {
		t.Fatalf("NextHop(%s → %s) = %s, want %s", ias[0], ias[4], got, ias[1])
	}
	if got := rt.NextHop(ias[4], ias[0]); got != ias[3] {
		t.Fatalf("NextHop(%s → %s) = %s, want %s", ias[4], ias[0], got, ias[3])
	}
	if got := rt.NextHop(ias[2], ias[2]); got != 0 {
		t.Fatalf("NextHop to self = %s, want zero", got)
	}
}

func TestBuildRoutesGeneratedAllReachable(t *testing.T) {
	topo := topology.Generate(topology.GenSpec{ISDs: 2, Seed: 3})
	rt := BuildRoutes(topo)
	for d := range rt.IAs {
		for c := range rt.IAs {
			if c != d && rt.Next[d][c] < 0 {
				t.Fatalf("%s cannot reach %s", rt.IAs[c], rt.IAs[d])
			}
		}
	}
}

func TestScaleFlowsDeterministic(t *testing.T) {
	topo := topology.Generate(topology.GenSpec{ISDs: 1, ProvidersPerISD: 3, LeavesPerISD: 10, Seed: 9})
	a := ScaleFlows(topo, 50, 42)
	b := ScaleFlows(topo, 50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i].Src == a[i].Dst {
			t.Fatalf("flow %d is a self-loop: %v", i, a[i])
		}
	}
	if c := ScaleFlows(topo, 50, 43); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced identical leading flows")
	}
}
