// scale.go — flow populations and routing for the thousand-AS scale
// experiment: deterministic shortest-path next-hop tables over a generated
// topology, and seeded source/destination flow sets. Everything here is a
// pure function of (topology, seed), so the netsim scenarios built on top of
// it are reproducible across engines and runs.
package workload

import (
	"fmt"

	"colibri/internal/netsim"
	"colibri/internal/topology"
)

// RouteTable holds shortest-path next hops between every AS pair of a
// topology, in dense int32-indexed form so per-packet lookups in the netsim
// hot path are two array indexings (no map, no allocation).
type RouteTable struct {
	// IAs lists the ASes in sorted (deterministic) order; indices below
	// refer to positions in this slice.
	IAs []topology.IA
	// Index inverts IAs.
	Index map[topology.IA]int32
	// Next[dst][cur] is the index of the next AS on a shortest path from
	// cur toward dst (-1 when dst is unreachable or cur == dst).
	Next [][]int32
}

// BuildRoutes computes shortest-path next hops by per-destination BFS over
// the undirected AS graph. Neighbors are expanded in sorted-interface order
// and the first discovered predecessor wins, so the table is a deterministic
// function of the topology alone.
func BuildRoutes(t *topology.Topology) *RouteTable {
	ias := t.SortedIAs()
	rt := &RouteTable{
		IAs:   ias,
		Index: make(map[topology.IA]int32, len(ias)),
		Next:  make([][]int32, len(ias)),
	}
	for i, ia := range ias {
		rt.Index[ia] = int32(i)
	}

	// Dense adjacency in index space, neighbor order deterministic.
	adj := make([][]int32, len(ias))
	for i, ia := range ias {
		for _, n := range t.AS(ia).Neighbors() {
			adj[i] = append(adj[i], rt.Index[n])
		}
	}

	queue := make([]int32, 0, len(ias))
	for d := range ias {
		next := make([]int32, len(ias))
		for i := range next {
			next[i] = -1
		}
		// BFS from the destination; next hop toward d is the BFS parent.
		queue = queue[:0]
		queue = append(queue, int32(d))
		visited := make([]bool, len(ias))
		visited[d] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range adj[cur] {
				if !visited[n] {
					visited[n] = true
					next[n] = cur
					queue = append(queue, n)
				}
			}
		}
		rt.Next[d] = next
	}
	return rt
}

// NextHop returns the next AS on a shortest path from cur toward dst, or
// zero when cur == dst or dst is unreachable.
func (rt *RouteTable) NextHop(cur, dst topology.IA) topology.IA {
	n := rt.Next[rt.Index[dst]][rt.Index[cur]]
	if n < 0 {
		return 0
	}
	return rt.IAs[n]
}

// Flow is one unidirectional end-to-end traffic flow between two ASes.
type Flow struct {
	Src, Dst topology.IA
}

// ScaleFlows draws n distinct-endpoint flows between non-core ASes of the
// topology (falling back to all ASes for tiny graphs), seeded and
// deterministic. Flows spread across the whole topology, which is what makes
// the scale experiment exercise every shard rather than a hot corner.
func ScaleFlows(t *topology.Topology, n int, seed uint64) []Flow {
	pool := make([]topology.IA, 0, len(t.ASes))
	for _, as := range t.NonCoreASes() {
		pool = append(pool, as.IA)
	}
	if len(pool) < 2 {
		pool = t.SortedIAs()
	}
	if len(pool) < 2 {
		panic(fmt.Sprintf("workload: topology too small for flows (%d ASes)", len(pool)))
	}
	rng := netsim.NewRand(seed)
	flows := make([]Flow, n)
	for i := range flows {
		src := pool[rng.Uint64()%uint64(len(pool))]
		dst := pool[rng.Uint64()%uint64(len(pool))]
		for dst == src {
			dst = pool[rng.Uint64()%uint64(len(pool))]
		}
		flows[i] = Flow{Src: src, Dst: dst}
	}
	return flows
}
