// Package router implements the Colibri border router (§4.6): stateless
// validation and forwarding of Colibri packets at line rate. For every EER
// data packet it re-derives the hop authenticator from the AS secret
// (Eq. 4), computes the expected hop validation field (Eq. 6), and compares
// it with the packet — no per-flow or per-reservation state is consulted.
// SegR control packets are validated against the Eq. (3) token instead.
//
// The router composes the protection stack of §4.8/§5: expiry and freshness
// checks, the source-AS blocklist, duplicate suppression, the probabilistic
// overuse-flow detector with escalation to deterministic monitoring, and
// finally the forwarding decision.
package router

import (
	"crypto/cipher"
	"errors"
	"fmt"
	"sync"

	"colibri/internal/cryptoutil"
	"colibri/internal/monitor"
	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/replay"
	"colibri/internal/reservation"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// Action is the router's forwarding decision.
type Action uint8

const (
	// AForward sends the packet out of the egress interface in the verdict.
	AForward Action = iota
	// ADeliver hands the packet to the destination host (last hop).
	ADeliver
	// AControl hands the packet to the local CServ (control traffic over a
	// reservation).
	AControl
	// ADrop discards the packet; the error explains why.
	ADrop
)

// Verdict is the processing result for one packet.
type Verdict struct {
	Action  Action
	Egress  topology.IfID
	DstHost uint32
}

// Drop reasons.
var (
	ErrDecode     = errors.New("router: packet decode failed")
	ErrBadHVF     = errors.New("router: hop validation field mismatch")
	ErrExpired    = errors.New("router: reservation expired")
	ErrStale      = errors.New("router: packet timestamp outside freshness window")
	ErrBlocked    = errors.New("router: source AS is blocklisted")
	ErrReplay     = errors.New("router: duplicate packet suppressed")
	ErrOveruse    = errors.New("router: reservation overuse confirmed")
	ErrBadHop     = errors.New("router: packet's current hop does not belong here")
	ErrBestEffort = errors.New("router: not a reservation-validated packet")
)

// DropReason indexes the router's per-reason drop counters.
type DropReason uint8

// Drop reason indices, in protection-stack order.
const (
	DropDecode DropReason = iota
	DropExpired
	DropStale
	DropBlocked
	DropBadHVF
	DropReplay
	DropOveruse
	DropBestEffort
	numDropReasons
)

// dropErrs maps each reason to its canonical error; Drops() keys are these
// errors' messages, preserving the shape of the old map-based API.
var dropErrs = [numDropReasons]error{
	DropDecode:     ErrDecode,
	DropExpired:    ErrExpired,
	DropStale:      ErrStale,
	DropBlocked:    ErrBlocked,
	DropBadHVF:     ErrBadHVF,
	DropReplay:     ErrReplay,
	DropOveruse:    ErrOveruse,
	DropBestEffort: ErrBestEffort,
}

// DefaultFreshnessNs tolerates the paper's ±0.1 s clock skew plus queueing.
const DefaultFreshnessNs = 500 * 1e6

// Config assembles a Router.
type Config struct {
	IA topology.IA
	// Secret is the AS data-plane secret K_i (shared with the CServ).
	Secret cryptoutil.Key
	// FreshnessNs bounds |now − Ts| (default DefaultFreshnessNs).
	FreshnessNs int64
	// Replay enables duplicate suppression when non-nil.
	Replay *replay.Suppressor
	// OFD enables probabilistic overuse detection when non-nil.
	OFD *ofd.Detector
	// Blocklist holds offending source ASes (created if nil).
	Blocklist *monitor.Blocklist
	// OnOveruse is called when overuse is confirmed for a reservation
	// (reporting to the CServ, §4.8); may be nil.
	OnOveruse func(id reservation.ID)
	// PoliceOnly makes confirmed overuse drop the offending packets
	// (clamping the flow to its reservation) without blocklisting the
	// source AS — the stance of the paper's Table 2 phase 3, where flagged
	// reservations are policed by the token bucket. Default false:
	// confirmed overuse blocks the source AS.
	PoliceOnly bool
	// DetMonitor, when non-nil, replaces the router's private deterministic
	// flow monitor. The sharded data plane injects a shard monitor backed by
	// a shared ReservePool here, so escalated flows of one reservation are
	// policed to the exact aggregate rate across shards (see monitor's
	// reserve.go).
	DetMonitor *monitor.FlowMonitor
	// SigmaCacheEntries, when > 0, gives every worker a private σ-cache of
	// that many entries (rounded up to a power of two): the σ derivation
	// (3-block CBC-MAC) and its AES key schedule are computed once per
	// distinct Eq. (4) input instead of once per packet. Entries store the
	// full MAC input and hits require an exact match, so caching never
	// changes a verdict. Memory ≈ 248 B × entries per worker. Default 0
	// keeps the paper-faithful stateless path.
	SigmaCacheEntries int
	// Telemetry attaches the router's instruments to an AS-wide registry
	// and enables the optional processed-packets counter and the
	// drop-verdict tracer. When nil the router still keeps its per-reason
	// drop counters (served by Drops) but adds no per-packet work on the
	// forwarding path.
	Telemetry *telemetry.Registry
}

// Router is one AS's border-router state shared across workers.
type Router struct {
	ia          topology.IA
	secret      cryptoutil.Key
	freshnessNs int64
	replay      *replay.Suppressor
	det         *ofd.Detector
	blocklist   *monitor.Blocklist
	onOveruse   func(id reservation.ID)
	policeOnly  bool
	sigmaCache  int

	// watch holds flows escalated to deterministic monitoring (§4.8:
	// "suspicious EERs are subjected to deterministic monitoring").
	watchMu sync.RWMutex
	watch   map[reservation.ID]struct{}
	detMon  *monitor.FlowMonitor

	// drops counts processing outcomes per reason. Sharded lock-free
	// counters let drop accounting and Drops() readers proceed without a
	// shared mutex; readers see each counter via an atomic load, so a
	// Drops() copy is consistent (no torn values) under concurrent Process
	// calls.
	drops [numDropReasons]*telemetry.Counter

	// hot holds the optional per-packet instruments (nil when no telemetry
	// registry is configured, keeping the forwarding path increment-free).
	hot *routerHot
}

// routerHot bundles the per-packet instruments behind one nil check. Only
// `processed` is bumped per packet: forwarded = processed − drops is an
// invariant of Process, so Forwarded() derives it instead of paying a
// second atomic add on the hot path.
type routerHot struct {
	processed *telemetry.Counter
	trace     *telemetry.Tracer
}

// New builds a Router.
func New(cfg Config) *Router {
	if cfg.FreshnessNs == 0 {
		cfg.FreshnessNs = DefaultFreshnessNs
	}
	if cfg.Blocklist == nil {
		cfg.Blocklist = monitor.NewBlocklist()
	}
	if cfg.DetMonitor == nil {
		cfg.DetMonitor = monitor.NewFlowMonitor()
	}
	r := &Router{
		ia:          cfg.IA,
		secret:      cfg.Secret,
		freshnessNs: cfg.FreshnessNs,
		replay:      cfg.Replay,
		det:         cfg.OFD,
		blocklist:   cfg.Blocklist,
		onOveruse:   cfg.OnOveruse,
		policeOnly:  cfg.PoliceOnly,
		sigmaCache:  cfg.SigmaCacheEntries,
		watch:       make(map[reservation.ID]struct{}),
		detMon:      cfg.DetMonitor,
	}
	if reg := cfg.Telemetry; reg != nil {
		// One series per DropReason: the suffix set is the closed dropSlug
		// enum, not unbounded input.
		for reason := range r.drops {
			r.drops[reason] = reg.Counter("router.drop." + dropSlug(DropReason(reason))) //colibri:allow(telemetry)
		}
		r.hot = &routerHot{
			processed: reg.Counter("router.processed"),
			trace:     reg.Tracer("router.drops", 0),
		}
	} else {
		for reason := range r.drops {
			r.drops[reason] = telemetry.NewCounter()
		}
	}
	return r
}

// dropSlug names a drop reason for registry instruments.
func dropSlug(reason DropReason) string {
	switch reason {
	case DropDecode:
		return "decode"
	case DropExpired:
		return "expired"
	case DropStale:
		return "stale"
	case DropBlocked:
		return "blocked"
	case DropBadHVF:
		return "bad_hvf"
	case DropReplay:
		return "replay"
	case DropOveruse:
		return "overuse"
	case DropBestEffort:
		return "best_effort"
	default:
		return "other"
	}
}

// Blocklist returns the router's blocklist (shared with policy decisions).
func (r *Router) Blocklist() *monitor.Blocklist { return r.blocklist }

// Suspicious drains and returns the flows the probabilistic detector has
// flagged since the last call (nil when no detector is configured). Flagged
// flows are already on this router's watchlist; a sharded front end uses the
// drain to escalate them on sibling shards too.
func (r *Router) Suspicious() []reservation.ID {
	if r.det == nil {
		return nil
	}
	return r.det.Suspicious()
}

// Watch places a reservation under deterministic monitoring, as happens
// when the probabilistic detector flags it (or when an operator seeds the
// watchlist, as in the paper's Table 2 phase 3).
func (r *Router) Watch(id reservation.ID) {
	r.watchMu.Lock()
	r.watch[id] = struct{}{}
	r.watchMu.Unlock()
}

// Unwatch removes a reservation from deterministic monitoring (a cleared
// false positive).
func (r *Router) Unwatch(id reservation.ID) {
	r.watchMu.Lock()
	delete(r.watch, id)
	r.watchMu.Unlock()
	r.detMon.Forget(id)
}

// Drops returns a copy of the drop counters, keyed by the canonical reason
// message (e.g. ErrBadHVF.Error()). Reasons never observed are omitted.
// Each value is an atomic read of a monotone counter, so the copy is
// consistent under concurrent Process calls.
func (r *Router) Drops() map[string]uint64 {
	out := make(map[string]uint64, len(r.drops))
	for reason, c := range r.drops {
		if v := c.Value(); v > 0 {
			out[dropErrs[reason].Error()] = v
		}
	}
	return out
}

// DropTotal returns the total number of dropped packets across reasons.
func (r *Router) DropTotal() uint64 {
	var sum uint64
	for _, c := range r.drops {
		sum += c.Value()
	}
	return sum
}

// Forwarded returns the number of packets that passed validation (every
// Process call either drops once or reaches the forwarding decision, so
// forwarded = processed − drops). Zero unless telemetry is enabled.
func (r *Router) Forwarded() uint64 {
	if r.hot == nil {
		return 0
	}
	p, d := r.hot.processed.Value(), r.DropTotal()
	if d > p {
		// A drop between the two reads; clamp rather than underflow.
		return 0
	}
	return p - d
}

// dropAcc accumulates a batch's drop counts per reason; ProcessBatch
// flushes it with one counter Add per observed reason instead of one
// atomic increment per dropped packet.
type dropAcc [numDropReasons]uint32

// countDrop accounts one dropped packet into the batch accumulator and,
// when tracing is enabled, records the verdict. decoded tells whether
// w.pkt holds valid reservation info for the trace (false on decode
// failures).
func (w *Worker) countDrop(acc *dropAcc, reason DropReason, nowNs int64, decoded bool) {
	acc[reason]++
	r := w.r
	if r.hot != nil {
		res := ""
		if decoded {
			res = reservation.ID{SrcAS: w.pkt.Res.SrcAS, Num: w.pkt.Res.ResID}.String()
		}
		r.hot.trace.Record(nowNs, telemetry.EvDrop, res, false, dropSlug(reason))
	}
}

// flushDrops folds the batch accumulator into the shared counters.
func (r *Router) flushDrops(acc *dropAcc) {
	for reason, n := range acc {
		if n > 0 {
			r.drops[reason].Add(uint64(n))
		}
	}
}

// Worker holds per-goroutine scratch state; create one per goroutine.
type Worker struct {
	r      *Router
	pkt    packet.Packet
	cbc    *cryptoutil.CBCMAC
	segIn  [packet.SegAuthLen]byte
	eerIn  [packet.EERAuthLen]byte
	hvfIn  [packet.HVFInputLen]byte
	sigma  cryptoutil.Key
	macOut [cryptoutil.MACSize]byte
	ks     cryptoutil.AESSchedule
	// sc caches σ derivations when Config.SigmaCacheEntries > 0.
	sc *sigmaCache
	// watchClean is a per-batch snapshot of "the watchlist is empty": it
	// lets every packet of a batch skip the watchMu read-lock. Escalation
	// by the probabilistic detector mid-batch clears it, so a flow flagged
	// by packet i is policed from packet i+1 on.
	watchClean bool
}

// snapshotWatch refreshes the per-batch watchlist-empty snapshot.
func (w *Worker) snapshotWatch() {
	w.r.watchMu.RLock()
	w.watchClean = len(w.r.watch) == 0
	w.r.watchMu.RUnlock()
}

// NewWorker creates a processing worker.
func (r *Router) NewWorker() *Worker {
	w := &Worker{r: r, cbc: cryptoutil.MustCBCMAC(r.secret)}
	if r.sigmaCache > 0 {
		w.sc = newSigmaCache(r.sigmaCache)
	}
	return w
}

// SigmaCacheStats returns the worker's σ-cache hit/miss counts (zero when
// caching is disabled).
func (w *Worker) SigmaCacheStats() (hits, misses uint64) {
	if w.sc == nil {
		return 0, 0
	}
	return w.sc.stats()
}

// Process validates the serialized Colibri packet in buf at time nowNs and
// returns the forwarding verdict. buf is modified in place only to advance
// the current hop on AForward. Dropped packets return Action ADrop and a
// wrapped reason error. Process is a batch of one — ProcessBatch is the
// primary pipeline.
func (w *Worker) Process(buf []byte, nowNs int64) (Verdict, error) {
	r := w.r
	if r.hot != nil {
		r.hot.processed.Inc()
	}
	w.snapshotWatch()
	var acc dropAcc
	v, err := w.processOne(buf, nowNs, &acc)
	r.flushDrops(&acc)
	return v, err
}

// BatchVerdict is the per-packet outcome of ProcessBatch.
type BatchVerdict struct {
	Verdict
	Err error
}

// ProcessBatch validates a burst of serialized packets at a common instant
// nowNs, writing per-packet outcomes into verdicts (which must be at least
// as long as pkts) and returning the number of packets that passed
// validation. Fixed costs are amortized across the burst: the processed
// counter is bumped once with Add(n) and drop counters are flushed once
// per reason at the end, so the per-packet path touches no shared atomics
// on the happy path.
//
//colibri:nomalloc
func (w *Worker) ProcessBatch(pkts [][]byte, verdicts []BatchVerdict, nowNs int64) int {
	r := w.r
	if len(verdicts) < len(pkts) {
		panic("router: verdicts shorter than pkts") //colibri:allow(nomalloc) — cold misuse guard
	}
	if r.hot != nil {
		r.hot.processed.Add(uint64(len(pkts)))
	}
	w.snapshotWatch()
	var acc dropAcc
	passed := 0
	for i, buf := range pkts {
		v, err := w.processOne(buf, nowNs, &acc)
		verdicts[i] = BatchVerdict{Verdict: v, Err: err}
		if err == nil {
			passed++
		}
	}
	r.flushDrops(&acc)
	return passed
}

// processOne runs the full protection stack for one packet, accounting
// drops into acc. The happy (forward/deliver) path is allocation-free;
// drop paths construct a diagnostic error, which is the only permitted
// allocation (each is individually annotated below).
//
//colibri:nomalloc
func (w *Worker) processOne(buf []byte, nowNs int64, acc *dropAcc) (Verdict, error) {
	r := w.r
	pkt := &w.pkt
	if _, err := pkt.DecodeFromBytes(buf); err != nil {
		w.countDrop(acc, DropDecode, nowNs, false)
		return Verdict{Action: ADrop}, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	idx := int(pkt.CurrHop)
	hop := pkt.Path[idx]

	// Expiry and freshness (§4.6: "checks whether the reservation has not
	// expired yet" and "packet freshness").
	if uint32(nowNs/1e9) >= pkt.Res.ExpT {
		w.countDrop(acc, DropExpired, nowNs, true)
		return Verdict{Action: ADrop}, fmt.Errorf("%w: at %d", ErrExpired, pkt.Res.ExpT) //colibri:allow(nomalloc) — drop-path diagnostic error
	}
	delta := nowNs - int64(pkt.Ts)
	if delta < -r.freshnessNs || delta > r.freshnessNs {
		w.countDrop(acc, DropStale, nowNs, true)
		return Verdict{Action: ADrop}, fmt.Errorf("%w: delta %d ns", ErrStale, delta) //colibri:allow(nomalloc) — drop-path diagnostic error
	}
	// Blocklist (§4.8: "keeping a list of blocked source ASes").
	if r.blocklist.Blocked(pkt.Res.SrcAS, uint32(nowNs/1e9)) {
		w.countDrop(acc, DropBlocked, nowNs, true)
		return Verdict{Action: ADrop}, fmt.Errorf("%w: %s", ErrBlocked, pkt.Res.SrcAS) //colibri:allow(nomalloc) — drop-path diagnostic error
	}

	// Cryptographic validation.
	switch pkt.Type {
	case packet.TData, packet.TEERenewReq:
		// Two-step EER validation (Eqs. 4 and 6). The σ-keyed MAC uses the
		// allocation-free software AES: σ changes per packet, and heap
		// churn from per-packet key schedules would let the GC dominate.
		// With a σ-cache, repeat reservations skip the derivation and the
		// key expansion entirely (exact-input match, so verdicts are
		// unchanged).
		packet.EERAuthInput(&w.eerIn, &pkt.Res, &pkt.EER, hop)
		packet.HVFInput(&w.hvfIn, pkt.Ts, uint32(len(buf)))
		var blk cipher.Block
		if w.sc != nil {
			blk = w.sc.block(&w.eerIn, w.cbc)
		}
		if blk != nil {
			blk.Encrypt(w.macOut[:], w.hvfIn[:])
		} else {
			w.cbc.SumInto((*[cryptoutil.MACSize]byte)(&w.sigma), w.eerIn[:])
			cryptoutil.ExpandAES128(&w.ks, &w.sigma)
			cryptoutil.EncryptAES128(&w.ks, &w.macOut, &w.hvfIn)
		}
		if !cryptoutil.ConstantTimeEqual(w.macOut[:packet.HVFLen], pkt.HVF(idx)) {
			w.countDrop(acc, DropBadHVF, nowNs, true)
			return Verdict{Action: ADrop}, ErrBadHVF
		}
	case packet.TSegRenewReq, packet.TEESetupReq, packet.TResponse:
		// SegR token validation (Eq. 3).
		packet.SegAuthInput(&w.segIn, &pkt.Res, hop)
		w.cbc.SumInto(&w.macOut, w.segIn[:])
		if !cryptoutil.ConstantTimeEqual(w.macOut[:packet.HVFLen], pkt.HVF(idx)) {
			w.countDrop(acc, DropBadHVF, nowNs, true)
			return Verdict{Action: ADrop}, ErrBadHVF
		}
	case packet.TSegSetupReq:
		// Initial SegR setup requests arrive as best-effort traffic and are
		// authenticated at the CServ (§5.3); the router only forwards them.
	default:
		w.countDrop(acc, DropBestEffort, nowNs, true)
		return Verdict{Action: ADrop}, fmt.Errorf("%w: type %v", ErrBestEffort, pkt.Type) //colibri:allow(nomalloc) — drop-path diagnostic error
	}

	id := reservation.ID{SrcAS: pkt.Res.SrcAS, Num: pkt.Res.ResID}

	// Duplicate suppression (§5.1: "all copies of the same packet are
	// discarded").
	if r.replay != nil && pkt.Type == packet.TData {
		if !r.replay.FreshAndUnique(replay.PacketID(uint64(pkt.Res.SrcAS), pkt.Res.ResID, pkt.Ts), nowNs) {
			w.countDrop(acc, DropReplay, nowNs, true)
			return Verdict{Action: ADrop}, ErrReplay
		}
	}

	// Probabilistic monitoring with deterministic escalation (§4.8). The
	// watchlist may also have been seeded via Watch.
	if pkt.Type == packet.TData {
		if r.det != nil {
			norm := ofd.NormalizedSize(uint32(len(buf)), uint64(pkt.Res.BwKbps))
			if r.det.Record(id, norm, nowNs) {
				r.watchMu.Lock()
				r.watch[id] = struct{}{}
				r.watchMu.Unlock()
				w.watchClean = false
			}
		}
		watched := false
		if !w.watchClean {
			r.watchMu.RLock()
			_, watched = r.watch[id]
			r.watchMu.RUnlock()
		}
		if watched && !r.detMon.Allow(id, uint64(pkt.Res.BwKbps), uint32(len(buf)), nowNs) {
			// Overuse established with certainty: police, and unless
			// configured police-only, block and report the source AS.
			if !r.policeOnly {
				r.blocklist.Block(pkt.Res.SrcAS, uint32(nowNs/1e9)+reservation.SegRLifetimeSeconds)
				if r.onOveruse != nil {
					r.onOveruse(id)
				}
			}
			w.countDrop(acc, DropOveruse, nowNs, true)
			return Verdict{Action: ADrop}, fmt.Errorf("%w: %s", ErrOveruse, id) //colibri:allow(nomalloc) — drop-path diagnostic error
		}
	}

	// Forwarding decision.
	if pkt.Type.IsControl() && pkt.Type != packet.TData {
		return Verdict{Action: AControl, Egress: hop.Eg}, nil
	}
	if idx == len(pkt.Path)-1 {
		return Verdict{Action: ADeliver, DstHost: pkt.EER.DstHost}, nil
	}
	packet.SetCurrHopInPlace(buf, pkt.CurrHop+1)
	return Verdict{Action: AForward, Egress: hop.Eg}, nil
}
