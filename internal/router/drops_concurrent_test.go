package router

import (
	"errors"
	"sync"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/telemetry"
)

// TestDropsConcurrent hammers Process from several workers while other
// goroutines read Drops()/DropTotal(), the regression test for the drop
// accounting race (run with -race): counts must be monotone under
// observation and exact at the end.
func TestDropsConcurrent(t *testing.T) {
	n := newTestnet(t, func(i int, cfg *Config) {
		if i == 2 {
			cfg.Telemetry = telemetry.NewRegistry("test")
		}
	})
	// The last-hop router delivers without mutating the buffer, so all
	// workers can share one packet set.
	rt := n.routers[2]

	good := n.buildPacket(t, nil, baseNs)
	packet.SetCurrHopInPlace(good, 2)
	badHVF := append([]byte(nil), good...)
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(badHVF); err != nil {
		t.Fatal(err)
	}
	pkt.HVF(2)[0] ^= 0x01 // aliases badHVF
	garbage := []byte{0xFF, 0x01}

	const writers = 4
	const iters = 2000

	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			w := rt.NewWorker()
			for i := 0; i < iters; i++ {
				if _, err := w.Process(good, baseNs); err != nil {
					t.Errorf("good packet: %v", err)
					return
				}
				if _, err := w.Process(badHVF, baseNs); !errors.Is(err, ErrBadHVF) {
					t.Errorf("bad HVF: %v", err)
					return
				}
				if _, err := w.Process(garbage, baseNs); !errors.Is(err, ErrDecode) {
					t.Errorf("garbage: %v", err)
					return
				}
				if _, err := w.Process(good, baseNs+2*DefaultFreshnessNs); !errors.Is(err, ErrStale) {
					t.Errorf("stale: %v", err)
					return
				}
			}
		}()
	}

	stop := make(chan struct{})
	var readersWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			var lastTotal uint64
			var lastHVF uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tot := rt.DropTotal(); tot < lastTotal {
					t.Errorf("DropTotal went backwards: %d -> %d", lastTotal, tot)
					return
				} else {
					lastTotal = tot
				}
				if hvf := rt.Drops()[ErrBadHVF.Error()]; hvf < lastHVF {
					t.Errorf("bad-HVF count went backwards: %d -> %d", lastHVF, hvf)
					return
				} else {
					lastHVF = hvf
				}
			}
		}()
	}

	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	drops := rt.Drops()
	want := uint64(writers * iters)
	for _, c := range []struct {
		key  string
		want uint64
	}{
		{ErrBadHVF.Error(), want},
		{ErrDecode.Error(), want},
		{ErrStale.Error(), want},
	} {
		if got := drops[c.key]; got != c.want {
			t.Errorf("drops[%q] = %d, want %d", c.key, got, c.want)
		}
	}
	if tot := rt.DropTotal(); tot != 3*want {
		t.Errorf("DropTotal = %d, want %d", tot, 3*want)
	}
}
