package router

import (
	"strings"
	"sync"
	"testing"

	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/replay"
)

// TestConcurrentWorkersFullStack drives a router with the complete
// protection stack (replay suppression + OFD + blocklist) from several
// worker goroutines at once (run with -race). Each worker processes its own
// distinct packet stream.
func TestConcurrentWorkersFullStack(t *testing.T) {
	n := newTestnet(t, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Replay = replay.New(replay.Config{})
			cfg.OFD = ofd.New(ofd.Config{})
		}
	})
	rt := n.routers[1]

	// Pre-build per-worker packet streams with distinct timestamps.
	const workers = 4
	const perWorker = 2000
	streams := make([][][]byte, workers)
	for w := range streams {
		streams[w] = make([][]byte, perWorker)
		for i := range streams[w] {
			ts := uint64(baseNs + int64(w*perWorker+i)*1000)
			buf := buildRaw(t, n, 300, ts, 1)
			streams[w][i] = buf
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := rt.NewWorker()
			for i, buf := range streams[w] {
				_, err := worker.Process(buf, baseNs+int64(w*perWorker+i)*1000)
				if err != nil && !strings.Contains(err.Error(), "overuse") &&
					!strings.Contains(err.Error(), "blocklist") {
					// Overuse/blocklist outcomes are legitimate under the
					// aggregate load; anything else is a bug.
					t.Errorf("worker %d packet %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Replaying any already-seen packet is still caught afterwards.
	if _, err := rt.NewWorker().Process(streams[0][0], baseNs+1e6); err == nil {
		t.Error("replay accepted after concurrent run")
	}
}

// TestWorkerReuseAcrossPacketTypes ensures one worker's scratch state does
// not leak between differently typed packets.
func TestWorkerReuseAcrossPacketTypes(t *testing.T) {
	n := newTestnet(t, nil)
	w := n.routers[1].NewWorker()

	data := n.buildPacket(t, []byte("d"), baseNs)
	packet.SetCurrHopInPlace(data, 1)

	// Interleave data packets with control packets and garbage.
	for i := 0; i < 50; i++ {
		if _, err := w.Process(data, baseNs); err != nil {
			t.Fatalf("iteration %d data: %v", i, err)
		}
		// CurrHop was advanced in place; reset for the next round.
		packet.SetCurrHopInPlace(data, 1)
		if _, err := w.Process([]byte{9, 9, 9}, baseNs); err == nil {
			t.Fatal("garbage accepted")
		}
	}
}
