package router

import (
	"crypto/cipher"
	"encoding/binary"
	"sync/atomic"

	"colibri/internal/cryptoutil"
	"colibri/internal/packet"
)

// Per-worker σ-derivation cache for the border router.
//
// Unlike the gateway — which owns its reservations and can key cached
// schedules by (ResID, hop, epoch) — the router is stateless and derives
// σ from untrusted packet fields (Eq. 4). A cache keyed by a *subset* of
// those fields would be poisonable: an attacker could warm a slot with a
// forged variant of a reservation and have later legitimate packets
// validated against the wrong σ (a false-drop DoS). The cache therefore
// stores the complete 48-byte EERAuthInput and a hit requires an exact
// byte-for-byte match, so a cached σ is always the one this router would
// derive from the packet itself. A hit skips both the 3-block CBC-MAC
// derivation of σ and the AES key expansion.
//
// The cache is tiered like cryptoutil.SchedCache: a fill installs the
// allocation-free software schedule inline, and an entry that proves hot
// (promoteAfter further hits) is promoted once to a crypto/aes cipher
// (hardware AES where available) — the one heap allocation is amortized
// over the entry's remaining lifetime, and churning entries never reach
// it. Layout: power-of-two sets, 2-way associative, second-chance
// (reference-bit) eviction with admission bypass when a set is full of
// hot entries. Memory is bounded at ≈ 300 B × entries for the array plus
// ≈ 500 B heap per promoted entry (≤ entries). Renewals need no explicit
// invalidation: a new version changes the MAC input (Ver/ExpT/bandwidth),
// so it simply occupies a different entry.
type sigmaCache struct {
	mask uint64
	ents []sigmaEntry
	// hits/misses are written only by the owning worker's block() but read
	// by a sharded front end's Merge from another goroutine, so they are
	// atomic (single-writer: a plain Add, no contention; enforced by
	// colibri-vet).
	hits   atomic.Uint64 //colibri:singlewriter
	misses atomic.Uint64 //colibri:singlewriter
}

// promoteAfter mirrors cryptoutil.SchedCache: hits before an entry's σ is
// expanded into a hardware cipher.
const promoteAfter = 16

type sigmaEntry struct {
	in    [packet.EERAuthLen]byte
	hcnt  uint16
	valid bool
	ref   bool
	sigma cryptoutil.Key
	ks    cryptoutil.AESSchedule
	blk   cipher.Block // non-nil once promoted to the hardware tier
}

func newSigmaCache(entries int) *sigmaCache {
	n := 2
	for n < entries {
		n <<= 1
	}
	return &sigmaCache{mask: uint64(n/2 - 1), ents: make([]sigmaEntry, n)}
}

// hashEERInput mixes the fixed-size MAC input word-wise (six 64-bit
// multiply-xorshift rounds — a byte-wise FNV costs 48 dependent multiplies
// on this per-packet path). Collisions only cost a probe mismatch; the
// exact-match check carries all correctness.
func hashEERInput(in *[packet.EERAuthLen]byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < packet.EERAuthLen; i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(in[i:])) * 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	return h
}

// block returns the σ-keyed cipher for the given Eq. (4) MAC input,
// deriving σ with cbc and expanding on miss.
//
// block returns nil when the set is full of recently-hit entries
// (admission bypass, mirroring cryptoutil.SchedCache): the caller derives
// σ itself on its software path, and σ is not derived here. The returned
// cipher is only guaranteed valid until the next call — software-tier
// entries hand out a pointer into the cache that a later fill may
// overwrite.
func (c *sigmaCache) block(in *[packet.EERAuthLen]byte, cbc *cryptoutil.CBCMAC) cipher.Block {
	i := (hashEERInput(in) & c.mask) * 2
	e0, e1 := &c.ents[i], &c.ents[i+1]
	// Conditional ref stores keep steady-state hits read-only (an
	// unconditional store would dirty the cache line on every probe).
	if e0.valid && e0.in == *in {
		if !e0.ref {
			e0.ref = true
		}
		c.hits.Add(1)
		return e0.block()
	}
	if e1.valid && e1.in == *in {
		if !e1.ref {
			e1.ref = true
		}
		c.hits.Add(1)
		return e1.block()
	}
	c.misses.Add(1)
	var v *sigmaEntry
	switch {
	case !e0.valid:
		v = e0
	case !e1.valid:
		v = e1
	case !e0.ref:
		v = e0
	case !e1.ref:
		v = e1
	default:
		e0.ref, e1.ref = false, false
		return nil
	}
	v.in = *in
	v.valid, v.ref = true, true
	v.hcnt, v.blk = 0, nil
	cbc.SumInto((*[cryptoutil.MACSize]byte)(&v.sigma), in[:])
	cryptoutil.ExpandAES128(&v.ks, &v.sigma)
	return &v.ks
}

// block returns the entry's cipher, promoting it to the hardware tier once
// it has proven hot.
func (e *sigmaEntry) block() cipher.Block {
	if e.blk != nil {
		return e.blk
	}
	if e.hcnt < promoteAfter {
		e.hcnt++
		return &e.ks
	}
	e.blk = cryptoutil.NewBlock(e.sigma)
	return e.blk
}

func (c *sigmaCache) stats() (hits, misses uint64) { return c.hits.Load(), c.misses.Load() }
