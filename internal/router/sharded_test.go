package router

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/monitor"
	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/replay"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// The sharded-vs-single-core differential: the same packet stream, with the
// same batch boundaries and clock, must produce element-wise identical
// verdicts (action, egress, destination host, drop reason) and identical
// buffer mutations whether it runs through one Worker or through
// router.Sharded at any worker count. Flow pinning makes this exact: every
// per-flow mechanism (replay window, OFD budget, escalation, policing) sees
// a flow's full, ordered packet stream on exactly one shard.
//
// The stream deliberately exercises the whole protection stack: conforming
// flows (some sharing a ResID across source hosts), overusing flows that get
// flagged by the OFD and policed by the escalated token bucket (through the
// shared reserve on the sharded side), replayed duplicates, stale
// timestamps, expired reservations, a blocklisted source AS, forged HVFs,
// and undecodable runts.

const diffBaseNs = int64(1_700_000_000) * 1e9

// diffFlow is one flow of the differential stream.
type diffFlow struct {
	res    packet.ResInfo
	eer    packet.EERInfo
	sigma  cryptoutil.Key // σ for the router's hop (forged for badHVF flows)
	forged bool           // derive σ under the wrong secret (HVF mismatch)
	dup    bool           // emit every packet twice (replay)
	stale  bool           // timestamps 1 s in the past
	weight int            // packets per batch
	size   int            // payload bytes
}

// diffNet is the generated fixture: a router secret, a hop position, and a
// mixed flow population.
type diffNet struct {
	secret cryptoutil.Key
	ia     topology.IA
	path   []packet.HopField
	hop    int
	flows  []*diffFlow
	// ts hands out per-reservation unique timestamps.
	ts map[uint32]uint64
}

func newDiffNet(seed int64) *diffNet {
	rng := rand.New(rand.NewSource(seed))
	n := &diffNet{
		secret: cryptoutil.Key{0xd1, byte(seed), 0x33},
		ia:     topology.MustIA(1, 1),
		path:   []packet.HopField{{In: 0, Eg: 1}, {In: 2, Eg: 3}, {In: 4, Eg: 0}},
		hop:    1,
		ts:     make(map[uint32]uint64),
	}
	expT := uint32(diffBaseNs/1e9) + reservation.EERLifetimeSeconds
	addFlow := func(resID uint32, host uint32, bwKbps uint32, mut func(*diffFlow)) {
		f := &diffFlow{
			res: packet.ResInfo{
				SrcAS: topology.MustIA(1, 11), ResID: resID,
				BwKbps: bwKbps, ExpT: expT, Ver: 1,
			},
			eer:    packet.EERInfo{SrcHost: host, DstHost: 0x0a00ff01},
			weight: 1 + rng.Intn(2),
			size:   64 + rng.Intn(512),
		}
		if mut != nil {
			mut(f)
		}
		secret := n.secret
		if f.forged {
			secret = cryptoutil.Key{0xee}
		}
		f.sigma = sigmaFor(secret, &f.res, &f.eer, n.path[n.hop])
		n.flows = append(n.flows, f)
	}
	// Conforming flows, unique reservations.
	for i := uint32(0); i < 16; i++ {
		addFlow(100+i, 0x0a000000+i, 1<<20, nil)
	}
	// One reservation shared by three source hosts (conforming — the flow
	// key ResID ‖ host spreads them over shards).
	for h := uint32(0); h < 3; h++ {
		addFlow(400, 0x0a00aa00+h, 1<<20, nil)
	}
	// Overusers: tiny reservations hit with full-size packets every batch —
	// flagged by the OFD, escalated, then policed to their reserved rate.
	for i := uint32(0); i < 4; i++ {
		addFlow(500+i, 0x0a00bb00+i, 800, func(f *diffFlow) {
			f.weight = 2
			f.size = 952 // DataLen(3 hops, 952) = 1024 total bytes
		})
	}
	// Replayed flow: every packet sent twice.
	addFlow(600, 0x0a00cc01, 1<<20, func(f *diffFlow) { f.dup = true })
	// Stale flow: timestamps outside the freshness window.
	addFlow(610, 0x0a00cc02, 1<<20, func(f *diffFlow) { f.stale = true })
	// Expired reservation.
	addFlow(620, 0x0a00cc03, 1<<20, func(f *diffFlow) {
		f.res.ExpT = uint32(diffBaseNs/1e9) - 10
		f.sigma = sigmaFor(n.secret, &f.res, &f.eer, n.path[n.hop])
	})
	// Blocklisted source AS (seeded below in runDifferential).
	addFlow(630, 0x0a00cc04, 1<<20, func(f *diffFlow) {
		f.res.SrcAS = topology.MustIA(1, 66)
		f.sigma = sigmaFor(n.secret, &f.res, &f.eer, n.path[n.hop])
	})
	// Forged HVF: σ computed under the wrong secret.
	addFlow(640, 0x0a00cc05, 1<<20, func(f *diffFlow) { f.forged = true })
	return n
}

// mkPacket serializes one TData packet of the flow, with a valid (or, for
// forged flows, deliberately wrong) HVF at the fixture's hop.
func (n *diffNet) mkPacket(f *diffFlow, ts uint64, payloadLen int) []byte {
	pkt := packet.Packet{
		Type:    packet.TData,
		CurrHop: uint8(n.hop),
		Res:     f.res,
		EER:     f.eer,
		Path:    n.path,
		Ts:      ts,
		Payload: make([]byte, payloadLen),
		HVFs:    make([]byte, len(n.path)*packet.HVFLen),
	}
	size := packet.DataLen(len(n.path), payloadLen)
	var in [packet.HVFInputLen]byte
	packet.HVFInput(&in, ts, uint32(size))
	var ks cryptoutil.AESSchedule
	var mac [cryptoutil.MACSize]byte
	cryptoutil.ExpandAES128(&ks, &f.sigma)
	cryptoutil.EncryptAES128(&ks, &mac, &in)
	copy(pkt.HVFs[n.hop*packet.HVFLen:], mac[:packet.HVFLen])
	buf := make([]byte, size)
	if _, err := pkt.SerializeTo(buf); err != nil {
		panic(err)
	}
	return buf
}

// genBatches produces the master stream: `batches` batches of packets at
// 250 µs spacing, interleaving all flows, with duplicates and junk mixed in.
func (n *diffNet) genBatches(seed int64, batches int) (pkts [][][]byte, times []int64) {
	rng := rand.New(rand.NewSource(seed * 7919))
	for b := 0; b < batches; b++ {
		nowNs := diffBaseNs + int64(b)*250_000
		var batch [][]byte
		seq := uint64(0)
		for _, f := range n.flows {
			for k := 0; k < f.weight; k++ {
				if rng.Intn(8) == 0 { // occasional skip keeps batches uneven
					continue
				}
				// Per-reservation unique, fresh timestamps (shared-ResID
				// flows share the counter so replay IDs never collide).
				ts := uint64(nowNs) + seq<<1 + uint64(n.ts[f.res.ResID]&1)
				n.ts[f.res.ResID]++
				seq++
				if f.stale {
					ts -= 1_000_000_000 // 1 s old ≫ freshness window
				}
				buf := n.mkPacket(f, ts, f.size)
				batch = append(batch, buf)
				if f.dup {
					batch = append(batch, append([]byte(nil), buf...))
				}
			}
		}
		// Junk: a runt and a bad-version packet per batch.
		batch = append(batch, []byte{1, 2, 3})
		bad := n.mkPacket(n.flows[0], uint64(nowNs)+9999, 32)
		bad[0] = 0xEE // wrong version byte
		batch = append(batch, bad)
		pkts = append(pkts, batch)
		times = append(times, nowNs)
	}
	return pkts, times
}

// clone deep-copies a batch (processing mutates forwarded buffers in place).
func cloneBatch(batch [][]byte) [][]byte {
	out := make([][]byte, len(batch))
	for i, b := range batch {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// reasonOf maps a verdict error to its canonical drop-reason index (-1: none).
func reasonOf(err error) int {
	if err == nil {
		return -1
	}
	for i, sentinel := range dropErrs {
		if errors.Is(err, sentinel) {
			return i
		}
	}
	return len(dropErrs)
}

const diffShards = 8

func (n *diffNet) shardedConfig(workers int) ShardedConfig {
	bl := monitor.NewBlocklist()
	bl.Block(topology.MustIA(1, 66), 0)
	return ShardedConfig{
		Router: Config{
			IA: n.ia, Secret: n.secret,
			Blocklist:         bl,
			PoliceOnly:        true,
			SigmaCacheEntries: 128,
		},
		Replay:  &replay.Config{},
		OFD:     &ofd.Config{},
		Shards:  diffShards,
		Workers: workers,
	}
}

// runSequential drives the master stream through a single-core Worker.
func (n *diffNet) runSequential(batches [][][]byte, times []int64) ([][]BatchVerdict, [][][]byte, int) {
	bl := monitor.NewBlocklist()
	bl.Block(topology.MustIA(1, 66), 0)
	r := New(Config{
		IA: n.ia, Secret: n.secret,
		Replay:            replay.New(replay.Config{}),
		OFD:               ofd.New(ofd.Config{}),
		Blocklist:         bl,
		PoliceOnly:        true,
		SigmaCacheEntries: 128,
	})
	w := r.NewWorker()
	var verdicts [][]BatchVerdict
	var bufs [][][]byte
	passed := 0
	for b, batch := range batches {
		cp := cloneBatch(batch)
		v := make([]BatchVerdict, len(cp))
		passed += w.ProcessBatch(cp, v, times[b])
		verdicts = append(verdicts, v)
		bufs = append(bufs, cp)
	}
	return verdicts, bufs, passed
}

func TestShardedDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		n := newDiffNet(seed)
		batches, times := n.genBatches(seed, 60)
		wantV, wantB, wantPassed := n.runSequential(batches, times)

		for _, workers := range []int{1, 2, 4, 8} {
			s := NewSharded(n.shardedConfig(workers))
			passed := 0
			for b, batch := range batches {
				cp := cloneBatch(batch)
				v := make([]BatchVerdict, len(cp))
				passed += s.ProcessBatch(cp, v, times[b])
				if b%4 == 3 {
					s.Merge()
				}
				for i := range v {
					if v[i].Action != wantV[b][i].Action ||
						v[i].Egress != wantV[b][i].Egress ||
						v[i].DstHost != wantV[b][i].DstHost ||
						reasonOf(v[i].Err) != reasonOf(wantV[b][i].Err) {
						t.Fatalf("seed=%d workers=%d batch=%d pkt=%d: sharded %+v (reason %d) != sequential %+v (reason %d)",
							seed, workers, b, i, v[i].Verdict, reasonOf(v[i].Err), wantV[b][i].Verdict, reasonOf(wantV[b][i].Err))
					}
					if !bytes.Equal(cp[i], wantB[b][i]) {
						t.Fatalf("seed=%d workers=%d batch=%d pkt=%d: buffer mutation differs", seed, workers, b, i)
					}
				}
			}
			if passed != wantPassed {
				t.Fatalf("seed=%d workers=%d: sharded passed %d, sequential %d", seed, workers, passed, wantPassed)
			}
			// The stream must actually have exercised the stack.
			drops := s.Drops()
			for _, reason := range []error{ErrReplay, ErrStale, ErrExpired, ErrBlocked, ErrBadHVF, ErrDecode, ErrOveruse} {
				if drops[reason.Error()] == 0 {
					t.Fatalf("seed=%d workers=%d: stream produced no %v drops — fixture lost coverage", seed, workers, reason)
				}
			}
			if hits, _ := s.CacheStats(); hits == 0 {
				t.Fatalf("seed=%d workers=%d: σ-cache saw no hits", seed, workers)
			}
			s.Close()
		}
	}
}

// TestShardedMergeRace drives the stream while Merge, telemetry reads, and
// watch promotion run concurrently from another goroutine — under -race this
// proves the packet path shares no unsynchronized state with the control
// plane, and the final per-flow decisions must still match the sequential
// reference exactly (merges are decision-neutral in police-only mode).
func TestShardedMergeRace(t *testing.T) {
	const seed = 3
	n := newDiffNet(seed)
	batches, times := n.genBatches(seed, 40)
	wantV, _, _ := n.runSequential(batches, times)

	for _, workers := range []int{1, 4, 8} {
		s := NewSharded(n.shardedConfig(workers))
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Merge()
				s.CacheStats()
				s.DropTotal()
				s.Blocklist().Len()
			}
		}()
		for b, batch := range batches {
			cp := cloneBatch(batch)
			v := make([]BatchVerdict, len(cp))
			s.ProcessBatch(cp, v, times[b])
			for i := range v {
				if v[i].Action != wantV[b][i].Action || reasonOf(v[i].Err) != reasonOf(wantV[b][i].Err) {
					t.Fatalf("workers=%d batch=%d pkt=%d: decision changed under concurrent merges: %+v vs %+v",
						workers, b, i, v[i], wantV[b][i])
				}
			}
		}
		close(stop)
		wg.Wait()
		s.Close()
	}
}

// TestShardedWatchUnwatch checks escalation plumbing: Watch applies to all
// shards, Unwatch clears them and releases the shared reserve.
func TestShardedWatchUnwatch(t *testing.T) {
	n := newDiffNet(1)
	s := NewSharded(n.shardedConfig(2))
	defer s.Close()
	id := reservation.ID{SrcAS: topology.MustIA(1, 11), Num: 500}
	s.Watch(id)
	for i, sh := range s.shards {
		sh.r.watchMu.RLock()
		_, ok := sh.r.watch[id]
		sh.r.watchMu.RUnlock()
		if !ok {
			t.Fatalf("shard %d: flow not watched after Watch", i)
		}
	}
	s.Unwatch(id)
	for i, sh := range s.shards {
		sh.r.watchMu.RLock()
		_, ok := sh.r.watch[id]
		sh.r.watchMu.RUnlock()
		if ok {
			t.Fatalf("shard %d: flow still watched after Unwatch", i)
		}
	}
	if s.reserves.Len() != 0 {
		t.Fatalf("reserve pool not drained after Unwatch: %d", s.reserves.Len())
	}
}

// TestShardedBlocklistPromotion: a block earned on one shard becomes visible
// everywhere after Merge.
func TestShardedBlocklistPromotion(t *testing.T) {
	n := newDiffNet(1)
	s := NewSharded(n.shardedConfig(1))
	defer s.Close()
	bad := topology.MustIA(3, 33)
	s.shards[2].r.Blocklist().Block(bad, 0)
	if s.Blocklist().Blocked(bad, 0) {
		t.Fatal("global view saw the block before Merge")
	}
	s.Merge()
	if !s.Blocklist().Blocked(bad, 0) {
		t.Fatal("global view missing the block after Merge")
	}
	for i, sh := range s.shards {
		if !sh.r.Blocklist().Blocked(bad, 0) {
			t.Fatalf("shard %d missing the promoted block", i)
		}
	}
}
