// RSS-style sharded border router: the multi-core face of the data plane.
//
// A Sharded front end hashes every packet's flow key (ResID ‖ src-host,
// peeked from fixed wire offsets without decoding) with a splitmix64
// finalizer to one of a power-of-two set of shards. Each shard owns a
// complete core-local protection stack — its own Router with a private
// replay filter (split per-shard via replay.Config.Split), OFD sketch
// (ofd.Config.Split), blocklist, watchlist, and deterministic flow monitor,
// plus a dedicated Worker with its own σ-schedule cache — so the per-packet
// path touches no mutable state shared between shards. The only cross-shard
// words are (a) the flow-level shared token reserves (one lock-free Reserve
// per escalated reservation, touched only on local token exhaustion; see
// monitor/reserve.go) and (b) the sharded telemetry counters, which are
// lock-free by construction.
//
// Pinning flows to shards is what makes the split exact rather than
// approximate: a flow's replays, duplicates, and usage all land on the one
// shard that holds that flow's state, so per-flow decisions are identical to
// a single-core router's, and per-flow packet order is preserved because one
// shard processes one flow's packets in arrival order. Cross-shard facts —
// blocklist entries earned on one shard, OFD escalations of multi-host
// reservations — propagate at explicit Merge() calls, exactly like the
// periodic RCU-ish reconciliation of a real multi-queue NIC pipeline.
package router

import (
	"runtime"

	"colibri/internal/monitor"
	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/replay"
	"colibri/internal/reservation"
	"colibri/internal/shardpool"
	"colibri/internal/telemetry"
	"colibri/internal/topology"
)

// ShardedConfig assembles a sharded router.
type ShardedConfig struct {
	// Router is the per-shard template (IA, Secret, freshness, policing
	// stance, σ-cache size, telemetry registry). Its Replay, OFD, and
	// DetMonitor fields must be nil: per-shard instances are built from the
	// split configs below. A non-nil Blocklist becomes the global view and
	// seeds every shard.
	Router Config
	// Replay, when non-nil, gives every shard a private suppressor sized by
	// Replay.Split(shards).
	Replay *replay.Config
	// OFD, when non-nil, gives every shard a private detector sized by
	// OFD.Split(shards).
	OFD *ofd.Config
	// Shards is the number of flow shards, rounded up to a power of two
	// (default: Workers rounded up). Fixing Shards explicitly makes every
	// per-flow decision independent of the worker count — the differential
	// tests rely on this.
	Shards int
	// Workers is the number of pool goroutines fanning batches out
	// (default GOMAXPROCS; 1 = inline, no goroutines).
	Workers int
	// ReserveChunkBytes is the over-claim granularity of escalated flows'
	// shard buckets (0 = exact claims, decision-identical to one full-rate
	// bucket; ~a few MTUs amortizes shared-word traffic).
	ReserveChunkBytes float64
}

// shardR is one shard's core-local state plus its scatter/gather scratch,
// owned by the Sharded front end: handed between the dispatching goroutine
// and one pool worker by the Dispatch barrier, never aliased out
// (colibri-vet enforces this).
//
//colibri:shardowned
type shardR struct {
	r *Router
	w *Worker
	// pkts/idx/verdicts are the shard's slice of the current batch: filled
	// by the dispatching goroutine, consumed by the shard's worker, read
	// back after the barrier. Reused across batches.
	pkts     [][]byte
	idx      []int32
	verdicts []BatchVerdict
	passed   int
	nowNs    int64
	// pad keeps neighbouring shards' hot scratch off one cache line.
	_ [64]byte
}

// Sharded fans ProcessBatch out over per-core router shards.
type Sharded struct {
	shards []*shardR
	pool   *shardpool.Pool
	mask   uint64

	// global is the merged blocklist view (also the seed source for shards).
	global *monitor.Blocklist
	// reserves holds the shared full-rate token reserves of escalated flows.
	reserves *monitor.ReservePool

	// cacheHits/cacheMisses, when telemetry is enabled, receive σ-cache
	// hit/miss deltas at every Merge under the stable dashboard names
	// router.cache.{hits,misses}. last* remember what was already pushed.
	cacheHits, cacheMisses *telemetry.Counter
	lastHits, lastMisses   uint64

	hasRegistry bool
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardOf finalizes the flow key with splitmix64 and masks it to a shard.
// The finalizer's avalanche keeps sequential ResIDs from mapping to
// sequential shards.
func shardOf(key, mask uint64) int {
	x := key + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x & mask)
}

// NewSharded builds the sharded router. Close releases its worker pool.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Router.Replay != nil || cfg.Router.OFD != nil || cfg.Router.DetMonitor != nil {
		panic("router: ShardedConfig.Router must not carry Replay/OFD/DetMonitor instances; use the split configs")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	cfg.Shards = nextPow2(cfg.Shards)

	global := cfg.Router.Blocklist
	if global == nil {
		global = monitor.NewBlocklist()
	}
	s := &Sharded{
		shards:      make([]*shardR, cfg.Shards),
		mask:        uint64(cfg.Shards - 1),
		global:      global,
		reserves:    monitor.NewReservePool(),
		hasRegistry: cfg.Router.Telemetry != nil,
	}
	if reg := cfg.Router.Telemetry; reg != nil {
		s.cacheHits = reg.Counter("router.cache.hits")
		s.cacheMisses = reg.Counter("router.cache.misses")
	}
	for i := range s.shards {
		rcfg := cfg.Router
		rcfg.Blocklist = monitor.NewBlocklist()
		rcfg.Blocklist.MergeFrom(global)
		rcfg.DetMonitor = monitor.NewShardFlowMonitor(s.reserves, cfg.ReserveChunkBytes)
		if cfg.Replay != nil {
			rcfg.Replay = replay.New(cfg.Replay.Split(cfg.Shards))
		}
		if cfg.OFD != nil {
			rcfg.OFD = ofd.New(cfg.OFD.Split(cfg.Shards))
		}
		r := New(rcfg)
		s.shards[i] = &shardR{r: r, w: r.NewWorker()}
	}
	s.pool = shardpool.New(cfg.Workers, s.runShard)
	return s
}

// Shards returns the number of flow shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Workers returns the worker-pool size.
func (s *Sharded) Workers() int { return s.pool.Workers() }

// ShardOf returns the shard a serialized packet's flow is pinned to
// (shard 0 for runts that have no readable flow key).
func (s *Sharded) ShardOf(buf []byte) int {
	key, ok := packet.PeekFlowKey(buf)
	if !ok {
		return 0
	}
	return shardOf(key, s.mask)
}

// runShard processes one shard's slice of the current batch on a pool
// worker. All state it touches is owned by that shard (plus lock-free
// telemetry), per the shardpool ownership contract.
func (s *Sharded) runShard(shard int) {
	sh := s.shards[shard]
	if len(sh.pkts) == 0 {
		sh.passed = 0
		return
	}
	sh.passed = sh.w.ProcessBatch(sh.pkts, sh.verdicts, sh.nowNs)
}

// ProcessBatch partitions pkts by flow key, validates every shard's slice on
// the worker pool, and scatters the per-packet outcomes back into verdicts
// (which must be at least as long as pkts) at their original positions. It
// returns the number of packets that passed validation. Per-flow semantics
// match a single-core Worker.ProcessBatch call exactly: a flow's packets are
// processed by its one shard in batch order.
//
//colibri:nomalloc
func (s *Sharded) ProcessBatch(pkts [][]byte, verdicts []BatchVerdict, nowNs int64) int {
	if len(verdicts) < len(pkts) {
		panic("router: verdicts shorter than pkts") //colibri:allow(nomalloc) — cold misuse guard
	}
	for _, sh := range s.shards {
		sh.pkts = sh.pkts[:0]
		sh.idx = sh.idx[:0]
		sh.verdicts = sh.verdicts[:0]
		sh.nowNs = nowNs
	}
	for i, buf := range pkts {
		shard := 0
		if key, ok := packet.PeekFlowKey(buf); ok {
			shard = shardOf(key, s.mask)
		}
		sh := s.shards[shard]
		sh.pkts = append(sh.pkts, buf)    //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		sh.idx = append(sh.idx, int32(i)) //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		if cap(sh.verdicts) < len(sh.pkts) {
			sh.verdicts = append(sh.verdicts[:cap(sh.verdicts)], BatchVerdict{}) //colibri:allow(nomalloc) — amortized scratch growth, steady state reuses capacity
		}
		sh.verdicts = sh.verdicts[:len(sh.pkts)]
	}
	s.pool.Dispatch(len(s.shards))
	passed := 0
	for _, sh := range s.shards {
		for j := range sh.idx {
			verdicts[sh.idx[j]] = sh.verdicts[j]
		}
		passed += sh.passed
	}
	return passed
}

// Watch places a reservation under deterministic monitoring on every shard
// (a multi-host reservation's flows may be pinned to several shards; the
// shared reserve keeps the aggregate at the exact reserved rate).
func (s *Sharded) Watch(id reservation.ID) {
	for _, sh := range s.shards {
		sh.r.Watch(id)
	}
}

// Unwatch clears a reservation from deterministic monitoring everywhere and
// releases its shared reserve.
func (s *Sharded) Unwatch(id reservation.ID) {
	for _, sh := range s.shards {
		sh.r.Unwatch(id)
	}
	s.reserves.Forget(id)
}

// Block blocks a source AS on the global view and every shard immediately
// (operator action; shard-earned blocks propagate at Merge instead).
func (s *Sharded) Block(ia topology.IA, expiry uint32) {
	s.global.Block(ia, expiry)
	for _, sh := range s.shards {
		sh.r.Blocklist().Block(ia, expiry)
	}
}

// Blocklist returns the merged global blocklist view (complete as of the
// last Merge).
func (s *Sharded) Blocklist() *monitor.Blocklist { return s.global }

// Merge reconciles cross-shard state off the packet path: shard-earned
// blocklist entries are promoted to the global view and pushed back to all
// shards, σ-cache hit/miss deltas are folded into the stable
// router.cache.{hits,misses} counters, and freshly flagged OFD suspects are
// drained, escalated to deterministic monitoring on every shard, and
// returned. Call it periodically (it is cheap when nothing changed) or
// whenever a fresh global view is needed. Merge never stalls the packet
// path: shards keep processing against their local state while it runs.
func (s *Sharded) Merge() []reservation.ID {
	// Blocklists: union up, then push down.
	for _, sh := range s.shards {
		s.global.MergeFrom(sh.r.Blocklist())
	}
	for _, sh := range s.shards {
		sh.r.Blocklist().MergeFrom(s.global)
	}

	// σ-cache telemetry (satellite of the sharding work: dashboards keep
	// one hits/misses pair regardless of shard count).
	if s.cacheHits != nil {
		hits, misses := s.CacheStats()
		s.cacheHits.Add(hits - s.lastHits)
		s.cacheMisses.Add(misses - s.lastMisses)
		s.lastHits, s.lastMisses = hits, misses
	}

	// OFD promotion: a flow flagged by its shard's sketch goes under
	// deterministic monitoring on all shards.
	var flagged []reservation.ID
	for _, sh := range s.shards {
		flagged = append(flagged, sh.r.Suspicious()...)
	}
	for _, id := range flagged {
		s.Watch(id)
	}
	return flagged
}

// CacheStats sums the σ-cache hit/miss counts over all shard workers.
func (s *Sharded) CacheStats() (hits, misses uint64) {
	for _, sh := range s.shards {
		h, m := sh.w.SigmaCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Drops returns the per-reason drop counts across all shards.
func (s *Sharded) Drops() map[string]uint64 {
	if s.hasRegistry {
		// Shards share one registry, so the named counters are already
		// global; any shard's view is the total.
		return s.shards[0].r.Drops()
	}
	out := make(map[string]uint64)
	for _, sh := range s.shards {
		for reason, v := range sh.r.Drops() {
			out[reason] += v
		}
	}
	return out
}

// DropTotal returns the total dropped packets across shards.
func (s *Sharded) DropTotal() uint64 {
	if s.hasRegistry {
		return s.shards[0].r.DropTotal()
	}
	var sum uint64
	for _, sh := range s.shards {
		sum += sh.r.DropTotal()
	}
	return sum
}

// Close releases the worker pool. The Sharded must be idle.
func (s *Sharded) Close() { s.pool.Close() }
