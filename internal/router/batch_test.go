package router

import (
	"bytes"
	"fmt"
	"testing"

	"colibri/internal/packet"
	"colibri/internal/replay"
)

// tamperBw rewrites buf in place with the reservation bandwidth doubled —
// an authenticated header field, so the HVFs no longer verify.
func tamperBw(t *testing.T, buf []byte) {
	t.Helper()
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	pkt.Res.BwKbps *= 2
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
}

// TestProcessBatchMatchesSequential: a batch — including invalid packets
// mixed between valid ones — must produce exactly the verdicts and buffer
// mutations of processing the same packets one by one.
func TestProcessBatchMatchesSequential(t *testing.T) {
	withReplay := func(i int, cfg *Config) { cfg.Replay = replay.New(replay.Config{}) }
	nBatch := newTestnet(t, withReplay)
	nSeq := newTestnet(t, withReplay)

	mkSet := func(n *testnet) [][]byte {
		var bufs [][]byte
		for i := 0; i < 12; i++ {
			bufs = append(bufs, n.buildPacket(t, []byte{byte(i)}, baseNs+int64(i)))
		}
		tamperBw(t, bufs[3])                      // header tamper → bad HVF
		bufs[7] = []byte{0xDE, 0xAD}              // garbage
		bufs[9] = append([]byte(nil), bufs[2]...) // replay of packet 2
		return bufs
	}
	// Both testnets are built identically, so the packet sets are
	// byte-identical too.
	setB, setS := mkSet(nBatch), mkSet(nSeq)
	for i := range setB {
		if !bytes.Equal(setB[i], setS[i]) {
			t.Fatalf("fixture packet %d differs between testnets", i)
		}
	}

	wB := nBatch.routers[0].NewWorker()
	wS := nSeq.routers[0].NewWorker()
	verdicts := make([]BatchVerdict, len(setB))
	if got := wB.ProcessBatch(setB, verdicts, baseNs); got != 9 {
		t.Errorf("ProcessBatch passed %d, want 9", got)
	}
	for i := range setS {
		v, err := wS.Process(setS[i], baseNs)
		if verdicts[i].Action != v.Action {
			t.Errorf("pkt %d: batch action %v, sequential %v", i, verdicts[i].Action, v.Action)
		}
		if fmt.Sprint(verdicts[i].Err) != fmt.Sprint(err) {
			t.Errorf("pkt %d: batch err %v, sequential %v", i, verdicts[i].Err, err)
		}
		if !bytes.Equal(setB[i], setS[i]) {
			t.Errorf("pkt %d: batch mutated the buffer differently", i)
		}
	}
}

// TestProcessBatchCachedMatchesUncached: with the σ-derivation cache
// enabled (sized small enough to force evictions and bypasses), every
// verdict must equal the uncached router's — the cache is invisible except
// for speed.
func TestProcessBatchCachedMatchesUncached(t *testing.T) {
	nCached := newTestnet(t, func(i int, cfg *Config) { cfg.SigmaCacheEntries = 2 })
	nPlain := newTestnet(t, nil)

	mk := func(n *testnet) [][]byte {
		var bufs [][]byte
		for i := 0; i < 64; i++ {
			bufs = append(bufs, n.buildPacket(t, []byte{byte(i)}, baseNs+int64(i)*1e6))
		}
		tamperBw(t, bufs[5]) // header tamper → bad HVF
		return bufs
	}
	setC, setP := mk(nCached), mk(nPlain)

	wC := nCached.routers[0].NewWorker()
	wP := nPlain.routers[0].NewWorker()
	vC := make([]BatchVerdict, 8)
	for off := 0; off+8 <= len(setC); off += 8 {
		wC.ProcessBatch(setC[off:off+8], vC, baseNs+int64(off)*1e6)
		for i := 0; i < 8; i++ {
			v, err := wP.Process(setP[off+i], baseNs+int64(off)*1e6)
			if vC[i].Action != v.Action || fmt.Sprint(vC[i].Err) != fmt.Sprint(err) {
				t.Errorf("pkt %d: cached (%v,%v) vs uncached (%v,%v)",
					off+i, vC[i].Action, vC[i].Err, v.Action, err)
			}
		}
	}
	if hits, misses := wC.SigmaCacheStats(); hits == 0 || misses == 0 {
		t.Errorf("σ-cache not exercised: hits=%d misses=%d", hits, misses)
	}
}

// TestProcessBatchVerdictSliceTooShort: the documented panic on a verdict
// slice shorter than the packet slice.
func TestProcessBatchVerdictSliceTooShort(t *testing.T) {
	n := newTestnet(t, nil)
	w := n.routers[0].NewWorker()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on short verdict slice")
		}
	}()
	w.ProcessBatch(make([][]byte, 4), make([]BatchVerdict, 3), baseNs)
}
