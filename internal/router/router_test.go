package router

import (
	"errors"
	"testing"

	"colibri/internal/cryptoutil"
	"colibri/internal/gateway"
	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/replay"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// testnet builds a 3-AS forwarding chain: source AS 1-11 (with gateway),
// transit 1-1, destination 1-2, all sharing one reservation.
type testnet struct {
	secrets map[topology.IA]cryptoutil.Key
	routers []*Router // in path order
	gw      *gateway.Gateway
	res     packet.ResInfo
	eer     packet.EERInfo
	path    []packet.HopField
	ias     []topology.IA
}

const baseNs = int64(1_700_000_000) * 1e9

func sigmaFor(secret cryptoutil.Key, res *packet.ResInfo, eer *packet.EERInfo, hf packet.HopField) cryptoutil.Key {
	var in [packet.EERAuthLen]byte
	packet.EERAuthInput(&in, res, eer, hf)
	var out [cryptoutil.MACSize]byte
	cryptoutil.MustCBCMAC(secret).SumInto(&out, in[:])
	return cryptoutil.Key(out)
}

func newTestnet(t testing.TB, mutate func(i int, cfg *Config)) *testnet {
	t.Helper()
	n := &testnet{
		secrets: make(map[topology.IA]cryptoutil.Key),
		ias: []topology.IA{
			topology.MustIA(1, 11), topology.MustIA(1, 1), topology.MustIA(1, 2),
		},
		path: []packet.HopField{{In: 0, Eg: 1}, {In: 2, Eg: 3}, {In: 4, Eg: 0}},
	}
	n.res = packet.ResInfo{
		SrcAS:  n.ias[0],
		ResID:  7,
		BwKbps: 8_000,
		ExpT:   uint32(baseNs/1e9) + reservation.EERLifetimeSeconds,
		Ver:    1,
	}
	n.eer = packet.EERInfo{SrcHost: 0x0a000001, DstHost: 0x0a000002}
	auths := make([]cryptoutil.Key, len(n.path))
	for i, iaKey := range n.ias {
		n.secrets[iaKey] = cryptoutil.Key{byte(i + 1), 0x77}
		auths[i] = sigmaFor(n.secrets[iaKey], &n.res, &n.eer, n.path[i])
		cfg := Config{IA: iaKey, Secret: n.secrets[iaKey]}
		if mutate != nil {
			mutate(i, &cfg)
		}
		n.routers = append(n.routers, New(cfg))
	}
	n.gw = gateway.New(n.ias[0])
	if err := n.gw.Install(n.res, n.eer, n.path, auths); err != nil {
		t.Fatal(err)
	}
	return n
}

// buildPacket produces one gateway-built packet.
func (n *testnet) buildPacket(t testing.TB, payload []byte, nowNs int64) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	w := n.gw.NewWorker()
	sz, err := w.Build(n.res.ResID, payload, buf, nowNs)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:sz]
}

func TestEndToEndForwarding(t *testing.T) {
	n := newTestnet(t, nil)
	buf := n.buildPacket(t, []byte("payload"), baseNs)

	// Hop 0: source AS border router forwards out of interface 1.
	v, err := n.routers[0].NewWorker().Process(buf, baseNs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != AForward || v.Egress != 1 {
		t.Fatalf("hop 0 verdict %+v", v)
	}
	// Hop 1: transit forwards out of interface 3.
	v, err = n.routers[1].NewWorker().Process(buf, baseNs+1e6)
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != AForward || v.Egress != 3 {
		t.Fatalf("hop 1 verdict %+v", v)
	}
	// Hop 2: destination delivers to DstHost.
	v, err = n.routers[2].NewWorker().Process(buf, baseNs+2e6)
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ADeliver || v.DstHost != n.eer.DstHost {
		t.Fatalf("hop 2 verdict %+v", v)
	}
}

func TestForgedHVFDropped(t *testing.T) {
	n := newTestnet(t, nil)
	buf := n.buildPacket(t, nil, baseNs)
	// Flip one bit in hop 1's HVF region: hop 0 still passes, hop 1 drops.
	var pkt packet.Packet
	if _, err := pkt.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	pkt.HVF(1)[0] ^= 0x01

	if _, err := n.routers[0].NewWorker().Process(buf, baseNs); err != nil {
		t.Fatalf("hop 0: %v", err)
	}
	_, err := n.routers[1].NewWorker().Process(buf, baseNs)
	if !errors.Is(err, ErrBadHVF) {
		t.Fatalf("hop 1: %v, want ErrBadHVF", err)
	}
	if n.routers[1].Drops()[ErrBadHVF.Error()] != 1 {
		t.Error("drop not counted")
	}
}

func TestTamperedSizeDropped(t *testing.T) {
	n := newTestnet(t, nil)
	buf := n.buildPacket(t, []byte("xxxx"), baseNs)
	// Grow the packet (e.g., replay with padding): PktSize is authenticated
	// through the HVF, so this must fail.
	grown := append(append([]byte(nil), buf...), 0)
	_, err := n.routers[0].NewWorker().Process(grown, baseNs)
	if err == nil {
		t.Fatal("grown packet accepted")
	}
}

func TestTamperedHeaderFieldsDropped(t *testing.T) {
	n := newTestnet(t, nil)
	for _, tamper := range []struct {
		name string
		mod  func(p *packet.Packet)
	}{
		{"bandwidth", func(p *packet.Packet) { p.Res.BwKbps *= 2 }},
		{"source AS", func(p *packet.Packet) { p.Res.SrcAS = topology.MustIA(9, 9) }},
		{"dst host", func(p *packet.Packet) { p.EER.DstHost++ }},
		{"egress if", func(p *packet.Packet) { p.Path[0].Eg = 9 }},
		{"version", func(p *packet.Packet) { p.Res.Ver++ }},
	} {
		t.Run(tamper.name, func(t *testing.T) {
			buf := n.buildPacket(t, nil, baseNs)
			var pkt packet.Packet
			if _, err := pkt.DecodeFromBytes(buf); err != nil {
				t.Fatal(err)
			}
			tamper.mod(&pkt)
			out := make([]byte, pkt.Length())
			if _, err := pkt.SerializeTo(out); err != nil {
				t.Fatal(err)
			}
			if _, err := n.routers[0].NewWorker().Process(out, baseNs); !errors.Is(err, ErrBadHVF) {
				t.Errorf("tampered %s: %v, want ErrBadHVF", tamper.name, err)
			}
		})
	}
}

func TestExpiredAndStaleDropped(t *testing.T) {
	n := newTestnet(t, nil)
	buf := n.buildPacket(t, nil, baseNs)
	// After expiry.
	expiredAt := (int64(n.res.ExpT) + 1) * 1e9
	if _, err := n.routers[0].NewWorker().Process(buf, expiredAt); !errors.Is(err, ErrExpired) {
		t.Errorf("expired: %v", err)
	}
	// Stale timestamp (beyond freshness window but before expiry).
	if _, err := n.routers[0].NewWorker().Process(buf, baseNs+2*DefaultFreshnessNs); !errors.Is(err, ErrStale) {
		t.Errorf("stale: %v", err)
	}
	// Future timestamp equally rejected.
	if _, err := n.routers[0].NewWorker().Process(buf, baseNs-2*DefaultFreshnessNs); !errors.Is(err, ErrStale) {
		t.Errorf("future: %v", err)
	}
}

func TestReplaySuppressed(t *testing.T) {
	n := newTestnet(t, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Replay = replay.New(replay.Config{})
		}
	})
	buf := n.buildPacket(t, nil, baseNs)
	packet.SetCurrHopInPlace(buf, 1) // as hop 0's router would have done
	w := n.routers[1].NewWorker()
	if _, err := w.Process(buf, baseNs); err != nil {
		t.Fatal(err)
	}
	// On-path adversary replays the identical (authentic!) packet.
	cp := append([]byte(nil), buf...)
	packet.SetCurrHopInPlace(cp, 1)
	if _, err := w.Process(cp, baseNs+1e6); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: %v", err)
	}
	// A later packet from the gateway (fresh Ts) passes.
	buf2 := n.buildPacket(t, nil, baseNs+2e6)
	packet.SetCurrHopInPlace(buf2, 1)
	if _, err := w.Process(buf2, baseNs+2e6); err != nil {
		t.Errorf("fresh packet after replay: %v", err)
	}
}

func TestBlocklistDrops(t *testing.T) {
	n := newTestnet(t, nil)
	buf := n.buildPacket(t, nil, baseNs)
	n.routers[1].Blocklist().Block(n.res.SrcAS, 0)
	if _, err := n.routers[1].NewWorker().Process(buf, baseNs); !errors.Is(err, ErrBlocked) {
		t.Errorf("blocked source: %v", err)
	}
}

func TestOveruseEscalationAndBlock(t *testing.T) {
	var reported []reservation.ID
	n := newTestnet(t, func(i int, cfg *Config) {
		if i == 1 {
			cfg.OFD = ofd.New(ofd.Config{})
			cfg.OnOveruse = func(id reservation.ID) { reported = append(reported, id) }
		}
	})
	// The source AS "fails" to monitor: we bypass the gateway's token
	// bucket by rebuilding packets with raw HVF computation at 10× rate.
	w := n.routers[1].NewWorker()
	var blocked bool
	sigma := sigmaFor(n.secrets[n.ias[1]], &n.res, &n.eer, n.path[1])
	_ = sigma
	now := baseNs
	var overuseSeen bool
	for i := 0; i < 200_000 && !blocked; i++ {
		// 1000-byte packets on 8 Mbps → conforming interval is 1 ms; send
		// every 100 µs (10×).
		now += 1e5
		buf := buildRaw(t, n, 1000, uint64(now), 1)
		_, err := w.Process(buf, now)
		switch {
		case errors.Is(err, ErrOveruse):
			overuseSeen = true
		case errors.Is(err, ErrBlocked):
			blocked = true
		}
	}
	if !overuseSeen {
		t.Fatal("overuse never confirmed")
	}
	if !blocked {
		t.Fatal("source AS never blocklisted")
	}
	if len(reported) == 0 || reported[0] != (reservation.ID{SrcAS: n.res.SrcAS, Num: n.res.ResID}) {
		t.Errorf("reported = %v", reported)
	}
}

// buildRaw forges a syntactically valid packet with correct HVFs for hop
// `hop` (simulating a source AS that signs but does not police), with the
// payload padded to totalSize.
func buildRaw(t testing.TB, n *testnet, totalSize int, ts uint64, hop uint8) []byte {
	t.Helper()
	pkt := packet.Packet{
		Type:    packet.TData,
		CurrHop: hop,
		Res:     n.res,
		EER:     n.eer,
		Ts:      ts,
		Path:    n.path,
		HVFs:    make([]byte, len(n.path)*packet.HVFLen),
	}
	pad := totalSize - pkt.Length()
	if pad > 0 {
		pkt.Payload = make([]byte, pad)
	}
	size := uint32(pkt.Length())
	var hvfIn [packet.HVFInputLen]byte
	packet.HVFInput(&hvfIn, ts, size)
	for i, iaKey := range n.ias {
		sigma := sigmaFor(n.secrets[iaKey], &n.res, &n.eer, n.path[i])
		var out [cryptoutil.MACSize]byte
		cryptoutil.MACOneBlock(cryptoutil.NewBlock(sigma), &out, &hvfIn)
		copy(pkt.HVFs[i*packet.HVFLen:], out[:packet.HVFLen])
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestControlPacketToCServ(t *testing.T) {
	n := newTestnet(t, nil)
	// A SegR-validated control packet (EE setup over a SegR): token per
	// Eq. 3 with the transit AS's secret.
	res := packet.ResInfo{SrcAS: n.ias[0], ResID: 3, BwKbps: 1000,
		ExpT: uint32(baseNs/1e9) + 300, Ver: 1}
	pkt := packet.Packet{
		Type:    packet.TEESetupReq,
		CurrHop: 1,
		Res:     res,
		Ts:      uint64(baseNs),
		Path:    n.path,
		HVFs:    make([]byte, len(n.path)*packet.HVFLen),
		Payload: []byte("ee-req"),
	}
	for i, iaKey := range n.ias {
		var in [packet.SegAuthLen]byte
		packet.SegAuthInput(&in, &res, n.path[i])
		var out [cryptoutil.MACSize]byte
		cryptoutil.MustCBCMAC(n.secrets[iaKey]).SumInto(&out, in[:])
		copy(pkt.HVFs[i*packet.HVFLen:], out[:packet.HVFLen])
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	v, err := n.routers[1].NewWorker().Process(buf, baseNs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != AControl {
		t.Fatalf("verdict %+v, want AControl", v)
	}
	// Corrupt the validated hop's token: dropped.
	var reparsed packet.Packet
	if _, err := reparsed.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	reparsed.HVF(1)[0] ^= 0xFF // aliases buf
	if _, err := n.routers[1].NewWorker().Process(buf, baseNs); !errors.Is(err, ErrBadHVF) {
		t.Errorf("corrupted token: %v", err)
	}
}

func TestSegSetupReqPassesWithoutHVF(t *testing.T) {
	n := newTestnet(t, nil)
	pkt := packet.Packet{
		Type:    packet.TSegSetupReq,
		CurrHop: 1,
		Res:     packet.ResInfo{SrcAS: n.ias[0], ResID: 9, ExpT: uint32(baseNs/1e9) + 300},
		Ts:      uint64(baseNs),
		Path:    n.path,
		HVFs:    make([]byte, len(n.path)*packet.HVFLen),
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	v, err := n.routers[1].NewWorker().Process(buf, baseNs)
	if err != nil || v.Action != AControl {
		t.Fatalf("initial SegReq: %v %+v", err, v)
	}
}

func TestEERenewalPacketToCServ(t *testing.T) {
	// An EER renewal travels over the existing EER (§4.4): it is validated
	// exactly like a data packet (two-step σ MAC) but handed to the CServ.
	n := newTestnet(t, nil)
	pkt := packet.Packet{
		Type:    packet.TEERenewReq,
		CurrHop: 1,
		Res:     n.res,
		EER:     n.eer,
		Ts:      uint64(baseNs),
		Path:    n.path,
		HVFs:    make([]byte, len(n.path)*packet.HVFLen),
		Payload: []byte("renew-req"),
	}
	var in [packet.HVFInputLen]byte
	packet.HVFInput(&in, pkt.Ts, uint32(pkt.Length()))
	for i, iaKey := range n.ias {
		sigma := sigmaFor(n.secrets[iaKey], &n.res, &n.eer, n.path[i])
		var out [cryptoutil.MACSize]byte
		cryptoutil.MACOneBlock(cryptoutil.NewBlock(sigma), &out, &in)
		copy(pkt.HVFs[i*packet.HVFLen:], out[:packet.HVFLen])
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	v, err := n.routers[1].NewWorker().Process(buf, baseNs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != AControl {
		t.Fatalf("verdict %+v, want AControl", v)
	}
	// A forged renewal (bad σ-derived HVF) is dropped.
	buf[47] ^= 0x01 // flip the low Ts bit: still fresh, HVFs no longer match
	if _, err := n.routers[1].NewWorker().Process(buf, baseNs); !errors.Is(err, ErrBadHVF) {
		t.Errorf("forged renewal: %v", err)
	}
}

func TestGarbageDropped(t *testing.T) {
	n := newTestnet(t, nil)
	if _, err := n.routers[0].NewWorker().Process([]byte{1, 2, 3}, baseNs); err == nil {
		t.Error("garbage accepted")
	}
}
