package qos

import (
	"testing"
)

func TestStrictPriorityOrder(t *testing.T) {
	s := NewScheduler[int](StrictPriority, 0)
	s.Enqueue(1, ClassBE, 100)
	s.Enqueue(2, ClassControl, 100)
	s.Enqueue(3, ClassEER, 100)
	s.Enqueue(4, ClassEER, 100)
	want := []struct {
		v int
		c Class
	}{{3, ClassEER}, {4, ClassEER}, {2, ClassControl}, {1, ClassBE}}
	for i, w := range want {
		v, c, size, ok := s.Dequeue()
		if !ok || v != w.v || c != w.c || size != 100 {
			t.Fatalf("dequeue %d: got (%d,%v,%d,%v), want (%d,%v)", i, v, c, size, ok, w.v, w.c)
		}
	}
	if _, _, _, ok := s.Dequeue(); ok {
		t.Error("dequeue from empty scheduler succeeded")
	}
	if !s.Empty() {
		t.Error("Empty() = false on drained scheduler")
	}
}

func TestTailDropAtLimit(t *testing.T) {
	s := NewScheduler[int](StrictPriority, 1000)
	if !s.Enqueue(1, ClassBE, 600) {
		t.Fatal("first enqueue dropped")
	}
	if s.Enqueue(2, ClassBE, 600) {
		t.Fatal("over-limit enqueue accepted")
	}
	if s.Drops[ClassBE] != 1 {
		t.Errorf("Drops = %d", s.Drops[ClassBE])
	}
	// Other classes have their own budgets.
	if !s.Enqueue(3, ClassEER, 600) {
		t.Error("EER enqueue dropped by BE backlog")
	}
	if s.QueuedBytes(ClassBE) != 600 || s.QueuedBytes(ClassEER) != 600 {
		t.Error("QueuedBytes wrong")
	}
}

func TestDRRApproximatesWeights(t *testing.T) {
	s := NewScheduler[int](DRR, 1<<30)
	// Saturate all classes with equal-size packets.
	const pkt = 1500
	for i := 0; i < 4000; i++ {
		s.Enqueue(i, ClassBE, pkt)
		s.Enqueue(i, ClassControl, pkt)
		s.Enqueue(i, ClassEER, pkt)
	}
	var got [NumClasses]int
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		_, c, _, ok := s.Dequeue()
		if !ok {
			t.Fatal("unexpected empty")
		}
		got[c]++
	}
	// Shares should approximate 20/5/75.
	checkShare := func(c Class, wantPct int) {
		gotPct := got[c] * 100 / rounds
		if gotPct < wantPct-5 || gotPct > wantPct+5 {
			t.Errorf("%v share = %d%%, want ≈%d%%", c, gotPct, wantPct)
		}
	}
	checkShare(ClassBE, 20)
	checkShare(ClassControl, 5)
	checkShare(ClassEER, 75)
}

func TestDRRWorkConserving(t *testing.T) {
	s := NewScheduler[int](DRR, 0)
	// Only best-effort traffic present: it must get everything.
	for i := 0; i < 100; i++ {
		s.Enqueue(i, ClassBE, 1500)
	}
	for i := 0; i < 100; i++ {
		v, c, _, ok := s.Dequeue()
		if !ok || c != ClassBE || v != i {
			t.Fatalf("dequeue %d: (%d,%v,%v)", i, v, c, ok)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassBE.String() != "best-effort" || ClassEER.String() != "colibri-eer" ||
		ClassControl.String() != "colibri-control" {
		t.Error("class names wrong")
	}
}
