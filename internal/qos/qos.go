// Package qos implements the traffic-class isolation of Appendix B: three
// classes — best-effort, Colibri control, and Colibri EER data — separated
// on shared links by priority queueing or class-based weighted fair queueing
// (deficit round robin).
//
// Strict priority for Colibri classes is safe without starving best-effort
// because the CServ's admission guarantees that active reservations never
// exceed the Colibri share of the link (§4.7, App. B footnote); unused
// Colibri bandwidth is scavenged by best-effort traffic automatically
// (work-conserving schedulers).
package qos

import "fmt"

// Class is a traffic class.
type Class uint8

const (
	// ClassBE is best-effort traffic (lowest priority).
	ClassBE Class = iota
	// ClassControl is Colibri control traffic on SegRs.
	ClassControl
	// ClassEER is Colibri EER data traffic (highest priority).
	ClassEER
	// NumClasses is the number of traffic classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassBE:
		return "best-effort"
	case ClassControl:
		return "colibri-control"
	case ClassEER:
		return "colibri-eer"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Policy selects the scheduling discipline.
type Policy uint8

const (
	// StrictPriority serves EER, then control, then best-effort.
	StrictPriority Policy = iota
	// DRR is deficit-round-robin CBWFQ with the §3.4 weights
	// (best-effort 20, control 5, EER 75).
	DRR
)

// item is one queued packet with its accounting size.
type item[T any] struct {
	v    T
	size int
}

// Scheduler is a per-output-port packet scheduler with one FIFO per class.
// It is not safe for concurrent use; the simulator serializes access.
type Scheduler[T any] struct {
	policy Policy
	queues [NumClasses][]item[T]
	bytes  [NumClasses]int
	limit  [NumClasses]int // per-class queue limit in bytes

	// DRR state.
	deficit [NumClasses]int
	quantum [NumClasses]int
	rrNext  Class

	// Drops counts tail drops per class.
	Drops [NumClasses]uint64
}

// DefaultQueueLimitBytes is the per-class queue depth (≈ 4 ms at 40 Gbps).
const DefaultQueueLimitBytes = 20_000_000

// NewScheduler builds a scheduler with the given policy. limitBytes = 0
// selects DefaultQueueLimitBytes.
func NewScheduler[T any](policy Policy, limitBytes int) *Scheduler[T] {
	if limitBytes == 0 {
		limitBytes = DefaultQueueLimitBytes
	}
	s := &Scheduler[T]{policy: policy}
	for c := range s.limit {
		s.limit[c] = limitBytes
	}
	// DRR quanta proportional to the §3.4 split, scaled to ≥ MTU so one
	// round can always send a packet.
	s.quantum[ClassBE] = 20 * 1500
	s.quantum[ClassControl] = 5 * 1500
	s.quantum[ClassEER] = 75 * 1500
	return s
}

// Enqueue adds a packet of the given size, tail-dropping when the class
// queue is full. It reports whether the packet was queued.
func (s *Scheduler[T]) Enqueue(v T, class Class, size int) bool {
	if s.bytes[class]+size > s.limit[class] {
		s.Drops[class]++
		return false
	}
	s.queues[class] = append(s.queues[class], item[T]{v: v, size: size})
	s.bytes[class] += size
	return true
}

// Dequeue returns the next packet to transmit, its class and size, or
// ok=false when all queues are empty. Both policies are work-conserving.
func (s *Scheduler[T]) Dequeue() (v T, class Class, size int, ok bool) {
	switch s.policy {
	case StrictPriority:
		for _, c := range [...]Class{ClassEER, ClassControl, ClassBE} {
			if len(s.queues[c]) > 0 {
				return s.pop(c)
			}
		}
	case DRR:
		if s.Empty() {
			break
		}
		for {
			c := s.rrNext
			if len(s.queues[c]) > 0 {
				head := s.queues[c][0]
				if s.deficit[c] >= head.size {
					s.deficit[c] -= head.size
					return s.pop(c)
				}
				s.deficit[c] += s.quantum[c]
				// Bound credit accumulation for idle-then-busy classes.
				if s.deficit[c] > 4*s.quantum[c]+head.size {
					s.deficit[c] = 4*s.quantum[c] + head.size
				}
			} else {
				s.deficit[c] = 0
			}
			s.rrNext = (c + 1) % NumClasses
		}
	}
	var zero T
	return zero, 0, 0, false
}

func (s *Scheduler[T]) pop(c Class) (T, Class, int, bool) {
	head := s.queues[c][0]
	s.queues[c] = s.queues[c][1:]
	if len(s.queues[c]) == 0 {
		s.queues[c] = nil // release the drained backing array
	}
	s.bytes[c] -= head.size
	return head.v, c, head.size, true
}

// Empty reports whether all queues are empty.
func (s *Scheduler[T]) Empty() bool {
	for c := Class(0); c < NumClasses; c++ {
		if len(s.queues[c]) > 0 {
			return false
		}
	}
	return true
}

// QueuedBytes returns the bytes queued in one class.
func (s *Scheduler[T]) QueuedBytes(c Class) int { return s.bytes[c] }
