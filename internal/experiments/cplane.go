package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/admission"
	"colibri/internal/cserv"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// CPlaneConfig parameterizes the control-plane scaling experiment: for each
// (EER count, admission implementation, shard count) cell a fresh
// cserv.CPlane is driven through SegR setup, EER setup, renewal waves and
// teardown, and the per-operation latencies are reported. The zero value is
// filled in by defaults.
type CPlaneConfig struct {
	// Sizes lists the concurrent-EER counts to sweep (default 1e3, 1e4,
	// 1e5; §6 argues a single CServ handles hundreds of thousands of EERs).
	Sizes []int
	// Impls lists the admission implementations (default naive, memoized,
	// restree — see internal/admission).
	Impls []string
	// Shards lists the CPlane shard counts (default 1, 4, 16).
	Shards []int
	// Waves is the number of full renewal waves measured (default 3).
	Waves int
}

func (c CPlaneConfig) withDefaults() CPlaneConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1_000, 10_000, 100_000}
	}
	if len(c.Impls) == 0 {
		c.Impls = []string{admission.ImplNaive, admission.ImplMemoized, admission.ImplRestree}
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 16}
	}
	if c.Waves == 0 {
		c.Waves = 3
	}
	return c
}

// CPlaneRow is one cell of the sweep.
type CPlaneRow struct {
	Impl   string
	Shards int
	EERs   int
	SegRs  int
	// Per-operation latencies in nanoseconds, measured over whole phases.
	SegSetupNs, EESetupNs, RenewNs, TeardownNs float64
	// RenewPerSec is the renewal throughput (1e9 / RenewNs).
	RenewPerSec float64
	// Rejected counts refused EER setups (should be 0: the capacity is
	// provisioned so the workload fits).
	Rejected uint64
}

// cplaneIfaces is the transit-AS fan-out the experiment admits across.
const cplaneIfaces = 4

// cplaneAS builds the experiment's AS: a core AS with cplaneIfaces links
// whose capacity scales with the SegR count so admission grants the full
// demand of every reservation (the experiment measures control-plane
// throughput, not fairness under contention).
func cplaneAS(segrs int) *topology.AS {
	topo := topology.New()
	center := topology.MustIA(1, 1)
	topo.AddAS(center, true)
	capKbps := uint64(segrs) * 2_000
	if capKbps < 1_000_000 {
		capKbps = 1_000_000
	}
	for i := 1; i <= cplaneIfaces; i++ {
		n := topology.MustIA(1, topology.ASID(100+i))
		topo.AddAS(n, true)
		topo.MustConnect(center, topology.IfID(i), n, 1, topology.LinkCore,
			topology.LinkSpec{CapacityKbps: capKbps})
	}
	return topo.AS(center)
}

// RunCPlane sweeps the control-plane engine. Every cell uses a virtual
// control-plane clock (advanced between renewal waves), so reservation
// expiry is deterministic; elapsed time is measured through the package
// clock seam, so runs under SetClock(StepClock(...)) are byte-identical.
func RunCPlane(cfg CPlaneConfig) ([]CPlaneRow, error) {
	cfg = cfg.withDefaults()
	var rows []CPlaneRow
	for _, size := range cfg.Sizes {
		for _, impl := range cfg.Impls {
			for _, shards := range cfg.Shards {
				row, err := runCPlaneCell(impl, shards, size, cfg.Waves)
				if err != nil {
					return nil, fmt.Errorf("cplane %s/%d shards/%d EERs: %w", impl, shards, size, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runCPlaneCell(impl string, shards, eers, waves int) (CPlaneRow, error) {
	segrs := eers / 10
	if segrs < 1 {
		segrs = 1
	}
	// Virtual control-plane time: advanced explicitly so EER lifetimes
	// behave identically on every host.
	var now uint32 = 1_000_000
	cp, err := cserv.NewCPlane(cserv.CPlaneConfig{
		AS:            cplaneAS(segrs),
		Split:         admission.DefaultSplit,
		Shards:        shards,
		AdmissionImpl: impl,
		Clock:         func() uint32 { return now },
	})
	if err != nil {
		return CPlaneRow{}, err
	}
	src := topology.MustIA(1, 7)
	segID := func(i int) reservation.ID { return reservation.ID{SrcAS: src, Num: uint32(i)} }
	eerID := func(i int) reservation.ID { return reservation.ID{SrcAS: src, Num: uint32(1<<30 | i)} }

	// Phase 1: SegR setup. Each SegR demands 1000 kbps; capacity is
	// provisioned so the grant is the full demand.
	start := nowNs()
	for i := 0; i < segrs; i++ {
		req := admission.Request{
			ID:      segID(i),
			Src:     src,
			In:      topology.IfID(1 + i%cplaneIfaces),
			Eg:      topology.IfID(1 + (i+1)%cplaneIfaces),
			MaxKbps: 1_000,
		}
		if _, err := cp.AddSegR(req); err != nil {
			return CPlaneRow{}, fmt.Errorf("SegR %d: %w", i, err)
		}
	}
	segSetupNs := float64(nowNs()-start) / float64(segrs)

	// Phase 2: EER setup, round-robin over the SegRs, 10 EERs of 100 kbps
	// per 1000-kbps SegR — an exact fit.
	start = nowNs()
	for i := 0; i < eers; i++ {
		if err := cp.SetupEER(eerID(i), segID(i%segrs), 100, now+16); err != nil {
			return CPlaneRow{}, fmt.Errorf("EER %d: %w", i, err)
		}
	}
	eeSetupNs := float64(nowNs()-start) / float64(eers)

	// Phase 3: renewal waves over the full population via RenewBatch. The
	// clock advances 4 s per wave, inside the 16 s EER lifetime.
	items := make([]cserv.EERRenewal, eers)
	results := make([]cserv.RenewResult, eers)
	for i := range items {
		items[i] = cserv.EERRenewal{EER: eerID(i), Seg: segID(i % segrs), BwKbps: 100}
	}
	var renewErr error
	start = nowNs()
	for w := 0; w < waves; w++ {
		now += 4
		for i := range items {
			items[i].ExpT = now + 16
		}
		cp.RenewBatch(items, results)
	}
	renewNs := float64(nowNs()-start) / float64(waves*eers)
	for i := range results {
		if results[i].Err != nil {
			renewErr = fmt.Errorf("renewal %d: %w", i, results[i].Err)
			break
		}
	}
	if renewErr != nil {
		return CPlaneRow{}, renewErr
	}

	// Phase 4: teardown, EERs then SegRs.
	start = nowNs()
	for i := 0; i < eers; i++ {
		cp.TeardownEER(eerID(i), segID(i%segrs))
	}
	for i := 0; i < segrs; i++ {
		if err := cp.TeardownSegR(segID(i)); err != nil {
			return CPlaneRow{}, fmt.Errorf("teardown SegR %d: %w", i, err)
		}
	}
	teardownNs := float64(nowNs()-start) / float64(eers+segrs)

	ct := cp.Counts()
	if ct.SegRs != 0 || ct.EERs != 0 {
		return CPlaneRow{}, fmt.Errorf("engine not drained: %d SegRs, %d EERs", ct.SegRs, ct.EERs)
	}
	row := CPlaneRow{
		Impl: impl, Shards: shards, EERs: eers, SegRs: segrs,
		SegSetupNs: segSetupNs, EESetupNs: eeSetupNs,
		RenewNs: renewNs, TeardownNs: teardownNs,
		Rejected: ct.Rejects,
	}
	if renewNs > 0 {
		row.RenewPerSec = 1e9 / renewNs
	}
	return row, nil
}

// FormatCPlane renders the sweep as a markdown table.
func FormatCPlane(rows []CPlaneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "control-plane scaling: per-op latency through setup/renew/teardown churn\n")
	fmt.Fprintf(&b, "| impl | shards | SegRs | EERs | SegR setup µs | EER setup µs | renew µs | teardown µs | renew/s |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.2f | %.2f | %.2f | %.2f | %.0f |\n",
			r.Impl, r.Shards, r.SegRs, r.EERs,
			r.SegSetupNs/1e3, r.EESetupNs/1e3, r.RenewNs/1e3, r.TeardownNs/1e3,
			r.RenewPerSec)
	}
	return b.String()
}
