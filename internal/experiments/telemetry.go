package experiments

import "colibri/internal/telemetry"

// telemetryReg, when set, is attached to the gateways, routers, and
// simulated ports the experiments build, so a bench run can be observed
// from the inside (per-phase latency histograms, drop counters, queue
// depths). Nil keeps all hot paths instrument-free.
var telemetryReg *telemetry.Registry

// EnableTelemetry routes the instruments of subsequently run experiments
// into reg (nil disables again). Not safe to flip while experiments run.
func EnableTelemetry(reg *telemetry.Registry) { telemetryReg = reg }
