package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"colibri/internal/admission"
	"colibri/internal/netsim"
	"colibri/internal/ofd"
	"colibri/internal/packet"
	"colibri/internal/qos"
	"colibri/internal/replay"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// AblationRow is one measurement of an ablation sweep.
type AblationRow struct {
	Study   string
	Variant string
	Value   float64
	Unit    string
}

// RunAblations quantifies the design choices DESIGN.md calls out:
//
//  1. Admission memoization (the Fig. 3 enabler): memoized vs. naive O(n)
//     recomputation at 10 000 existing SegRs.
//  2. The border router's protection stack: per-packet cost of the bare
//     cryptographic check vs. adding duplicate suppression and the
//     probabilistic overuse detector.
//  3. Scheduler policy (App. B): per-class shares under full saturation
//     with strict priority vs. deficit-round-robin CBWFQ.
func RunAblations(perPoint time.Duration) []AblationRow {
	if perPoint == 0 {
		perPoint = 200 * time.Millisecond
	}
	var rows []AblationRow
	rows = append(rows, ablationAdmission(perPoint)...)
	rows = append(rows, ablationRouterStack(perPoint)...)
	rows = append(rows, ablationScheduler()...)
	return rows
}

func ablationAdmission(perPoint time.Duration) []AblationRow {
	as, _ := workload.TransitAS(2, 100_000_000)
	probe := admission.Request{
		ID:  reservation.ID{SrcAS: topology.MustIA(1, 7), Num: 1 << 30},
		Src: topology.MustIA(1, 7), In: 1, Eg: 2, MaxKbps: 10,
	}
	timeIt := func(admit func(admission.Request) (uint64, error), release func(reservation.ID)) float64 {
		runtime.GC()
		ops := 0
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			for k := 0; k < 64; k++ {
				if _, err := admit(probe); err != nil {
					panic(err)
				}
				release(probe.ID)
			}
			ops += 64
		}
		return float64(nowNs()-start) / float64(ops)
	}
	fast := admission.NewState(as, admission.DefaultSplit)
	slow := admission.NewNaiveState(as, admission.DefaultSplit)
	for i := uint32(0); i < 10_000; i++ {
		r := admission.Request{
			ID:  reservation.ID{SrcAS: topology.MustIA(1, topology.ASID(10+i%100)), Num: i},
			Src: topology.MustIA(1, topology.ASID(10+i%100)), In: 1, Eg: 2, MaxKbps: 10,
		}
		if _, err := fast.AdmitSegR(r); err != nil {
			panic(err)
		}
		if _, err := slow.AdmitSegR(r); err != nil {
			panic(err)
		}
	}
	return []AblationRow{
		{Study: "admission@10k SegRs", Variant: "memoized (Colibri)", Unit: "ns/op",
			Value: timeIt(fast.AdmitSegR, fast.Release)},
		{Study: "admission@10k SegRs", Variant: "naive O(n)", Unit: "ns/op",
			Value: timeIt(slow.AdmitSegR, slow.Release)},
	}
}

func ablationRouterStack(perPoint time.Duration) []AblationRow {
	rng := rand.New(rand.NewSource(21))
	gw, _, secrets := workload.GatewayPopulationWithSecrets(1024, 4, rng)
	variants := []struct {
		name string
		cfg  func(c *router.Config)
	}{
		{"crypto only", func(c *router.Config) {}},
		{"+ replay suppression", func(c *router.Config) { c.Replay = replay.New(replay.Config{}) }},
		{"+ OFD", func(c *router.Config) { c.OFD = ofd.New(ofd.Config{}) }},
		{"+ replay + OFD", func(c *router.Config) {
			c.Replay = replay.New(replay.Config{})
			c.OFD = ofd.New(ofd.Config{})
		}},
	}
	var rows []AblationRow
	for _, v := range variants {
		cfg := router.Config{
			IA:     topology.MustIA(1, 4),
			Secret: secrets[3],
		}
		v.cfg(&cfg)
		rt := router.New(cfg)
		w := rt.NewWorker()
		// Fresh packets per iteration batch so replay suppression sees
		// unique traffic (its steady-state cost, not its drop path).
		gwWorker := gw.NewWorker()
		bufs := make([][]byte, 4096)
		for i := range bufs {
			b := make([]byte, 512)
			sz, err := gwWorker.Build(uint32(1+i%1024), nil, b, workload.EpochNs+int64(i))
			if err != nil {
				panic(err)
			}
			bb := b[:sz]
			packet.SetCurrHopInPlace(bb, 3)
			bufs[i] = bb
		}
		runtime.GC()
		ops := 0
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			for k := 0; k < 256; k++ {
				// Replay filter keyed on Ts: rotate timestamps by rebuilding
				// is too slow, so distinct packets per batch suffice: the
				// window is larger than the batch and duplicates would only
				// *drop* (cheaper); measuring unique-path keeps it honest.
				if _, err := w.Process(bufs[(ops+k)%len(bufs)], workload.EpochNs); err != nil {
					if cfg.Replay == nil {
						panic(err)
					}
				}
			}
			ops += 256
		}
		rows = append(rows, AblationRow{
			Study: "border-router stack", Variant: v.name, Unit: "ns/op",
			Value: float64(nowNs()-start) / float64(ops),
		})
	}
	return rows
}

func ablationScheduler() []AblationRow {
	run := func(policy qos.Policy) [qos.NumClasses]float64 {
		sim := netsim.NewSim()
		sink := netsim.NewCounter()
		port := netsim.NewPort(sim, "out", 40_000_000, 0, policy, sink, 0)
		node := netsim.NodeFunc(func(p *netsim.Packet, _ int) { port.Send(p) })
		const durNs = int64(100e6)
		for _, cls := range []qos.Class{qos.ClassBE, qos.ClassControl, qos.ClassEER} {
			cls := cls
			(&netsim.Source{
				Sim: sim, Dst: node, RateKbps: 40_000_000, PktBytes: 4000, StopNs: durNs,
				Make: func() *netsim.Packet {
					return &netsim.Packet{WireSize: 4000, Class: cls}
				},
			}).Start(0)
		}
		sim.Run(durNs)
		var out [qos.NumClasses]float64
		for c := qos.Class(0); c < qos.NumClasses; c++ {
			out[c] = netsim.GbpsOver(sink.Bytes[c], durNs)
		}
		return out
	}
	strict := run(qos.StrictPriority)
	drr := run(qos.DRR)
	var rows []AblationRow
	for c := qos.Class(0); c < qos.NumClasses; c++ {
		rows = append(rows,
			AblationRow{Study: "scheduler (all classes @40G)", Variant: "strict/" + c.String(),
				Value: strict[c], Unit: "Gbps"},
			AblationRow{Study: "scheduler (all classes @40G)", Variant: "drr/" + c.String(),
				Value: drr[c], Unit: "Gbps"},
		)
	}
	return rows
}

// FormatAblations renders the rows.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations — design choices quantified\n")
	fmt.Fprintf(&b, "%-30s %-26s %12s %-8s\n", "study", "variant", "value", "unit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-26s %12.1f %-8s\n", r.Study, r.Variant, r.Value, r.Unit)
	}
	return b.String()
}
