package experiments

import (
	"sync/atomic"
	"time"
)

// This file is the package's single clock seam. Every experiment measures
// elapsed time through nowNs, so the wall clock is read in exactly one
// audited place: by default measurements are real (the figures report real
// processing times), while tests inject a virtual clock with SetClock to
// make a fixed seed yield byte-identical figure data — the property the
// chaos/fairness experiments and colibri-vet's determinism check protect.

// clockBase anchors the monotonic reading so nowNs never goes backwards
// under wall-clock adjustments.
var clockBase = time.Now() //colibri:allow(determinism) — sole wall-clock anchor

// nowNs returns the current measurement timestamp in nanoseconds. All
// experiment timing must go through this seam.
var nowNs = func() int64 {
	return time.Since(clockBase).Nanoseconds() //colibri:allow(determinism) — sole wall-clock read
}

// SetClock replaces the measurement clock (e.g. with StepClock for
// reproducible figure data) and returns a function restoring the previous
// one. Not safe for use concurrently with running experiments.
func SetClock(f func() int64) (restore func()) {
	old := nowNs
	nowNs = f
	return func() { nowNs = old }
}

// StepClock returns a deterministic virtual clock that advances stepNs on
// every reading, starting at startNs. Under such a clock every timed loop
// runs a fixed number of iterations and every measured duration is exact,
// so two runs with equal seeds produce identical bytes. The step is atomic:
// even Fig. 6's parallel workers stay reproducible, because the number of
// readings below any deadline — and therefore the total operation count —
// is independent of how goroutines interleave them.
func StepClock(startNs, stepNs int64) func() int64 {
	var t atomic.Int64
	t.Store(startNs)
	return func() int64 {
		return t.Add(stepNs)
	}
}
