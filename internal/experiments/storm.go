package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/core"
	"colibri/internal/cryptoutil"
	"colibri/internal/cserv"
	"colibri/internal/netsim"
	"colibri/internal/packet"
	"colibri/internal/topology"
)

// StormConfig parameterizes the renewal-storm scenario: a large fleet of
// EERs, all established in the same virtual second, so their 16 s lifetimes
// expire together and the whole population renews inside one 4 s lead
// window — the §4.2 worst case. Mid-run, the core CServ 2-1 crashes for
// longer than an EER lifetime, so every flow falls back to best-effort
// (§3.2) and must be re-promoted by re-admission once the CServ recovers.
// The same logical run is repeated for each CPlane worker count, measuring
// the batched renewal wave's throughput.
type StormConfig struct {
	// Seed drives the retry jitter; same seed, same run.
	Seed uint64
	// Flows is the EER population (default 1,000,000).
	Flows int
	// BwKbps is the per-flow reservation (default 1 kbps — the storm
	// stresses the control plane's operation rate, not link capacity).
	BwKbps uint64
	// SegRKbps is the SegR bandwidth backing the fleet (default 30 Gbps).
	SegRKbps uint64
	// Shards is the per-AS CPlane shard count (default 8).
	Shards int
	// Workers are the CPlane worker counts to sweep (default 1, 2, 4, 8).
	Workers []int
	// BatchSize caps one renewal wave message (default cserv's 4096).
	BatchSize int
	// LeadS is the keepers' renewal lead time (default 4 s).
	LeadS int
	// CrashFrom/CrashTo bound the CServ 2-1 outage in seconds after
	// establishment (defaults 13 and 31: the window opens right after the
	// first full renewal wave and outlives the renewed versions, forcing
	// demotion of the entire fleet).
	CrashFrom, CrashTo int
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Flows == 0 {
		c.Flows = 1_000_000
	}
	if c.BwKbps == 0 {
		c.BwKbps = 1
	}
	if c.SegRKbps == 0 {
		c.SegRKbps = 30_000_000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.LeadS == 0 {
		c.LeadS = 4
	}
	if c.CrashFrom == 0 && c.CrashTo == 0 {
		c.CrashFrom, c.CrashTo = 13, 31
	}
	return c
}

// StormRow is one worker count's run. The logical outcome (everything except
// the timings and the derived rate) must be identical across rows: the sweep
// varies only how many goroutines process the shard buckets.
type StormRow struct {
	Workers int

	// EstablishNs is the time to admit the whole fleet; StormNs the first
	// full renewal wave (every EER at once, through the batched path);
	// RecoverNs the re-admission wave after the crash.
	EstablishNs int64
	StormNs     int64
	RecoverNs   int64
	// RenewPerSec is Flows / StormNs — the headline renewal throughput.
	RenewPerSec float64

	// StormRenewed counts grants installed by the measured storm wave;
	// Demotions/Promotions the §3.2 fallback and recovery transitions;
	// Failures the failed renewal attempts across the outage.
	StormRenewed uint64
	Demotions    uint64
	Promotions   uint64
	Failures     uint64
	DedupHits    uint64

	// OverAdmitted reports a violated invariant: some AS's CPlane charged
	// more EER bandwidth to a SegR than the SegR's active grant.
	OverAdmitted bool
}

// StormResult aggregates the sweep.
type StormResult struct {
	Config StormConfig
	Rows   []StormRow
}

// stormGW is the minimal gateway the keepers drive; the storm measures
// control-plane behavior, so installs are counted, not executed.
type stormGW struct {
	installs uint64
}

func (g *stormGW) Install(packet.ResInfo, packet.EERInfo, []packet.HopField, []cryptoutil.Key) error {
	g.installs++
	return nil
}
func (g *stormGW) Demote(uint32) bool  { return true }
func (g *stormGW) Promote(uint32) bool { return true }

// RunStorm executes the sweep.
func RunStorm(cfg StormConfig) (*StormResult, error) {
	cfg = cfg.withDefaults()
	res := &StormResult{Config: cfg}
	for _, w := range cfg.Workers {
		row, err := runStormRow(cfg, w)
		if err != nil {
			return nil, fmt.Errorf("storm: workers=%d: %w", w, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runStormRow(cfg StormConfig, workers int) (*StormRow, error) {
	row := &StormRow{Workers: workers}
	topo := topology.TwoISD(topology.LinkSpec{})
	crashIA := topology.MustIA(2, 1)
	armed := false
	plans := make(map[topology.IA]*netsim.FaultPlan)
	var retries []*cserv.RetryTransport
	net, err := core.NewNetwork(topo, core.Options{
		// The whole fleet arrives in single virtual seconds; the per-AS
		// request budget must not be the bottleneck under test.
		RateLimit:     1 << 30,
		CPlaneShards:  cfg.Shards,
		CPlaneWorkers: workers,
		WrapTransport: func(ia topology.IA, inner cserv.Transport) cserv.Transport {
			rt := cserv.NewRetryTransport(
				&chaosTransport{self: ia, inner: inner, plans: plans, armed: &armed},
				cserv.RetryPolicy{Seed: cfg.Seed ^ uint64(ia), DeadlineNs: 300e6},
				nil)
			retries = append(retries, rt)
			return rt
		},
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()
	for _, ia := range topo.SortedIAs() {
		plans[ia] = netsim.NewFaultPlan(cfg.Seed ^ uint64(ia))
	}
	// The chaosTransport reads the clock lazily; wire it now that the
	// network (and its clock) exists.
	for _, rt := range retries {
		rt.Inner.(*chaosTransport).clock = net.Clock
	}
	if err := net.AutoSetupSegRs(cfg.SegRKbps); err != nil {
		return nil, err
	}

	// Establish the fleet in one virtual second, so every lifetime expires
	// in the same second and the whole population renews in one window.
	src := net.Node(topology.MustIA(1, 11)).CServ
	gw := &stormGW{}
	fleet := cserv.NewKeeperFleet(src)
	if cfg.BatchSize > 0 {
		fleet.BatchSize = cfg.BatchSize
	}
	estStart := nowNs()
	for i := 0; i < cfg.Flows; i++ {
		g, gerr := src.RequestEER(uint32(i+1), uint32(1<<20+i), topology.MustIA(2, 11), cfg.BwKbps)
		if gerr != nil {
			return nil, fmt.Errorf("establishing flow %d: %w", i, gerr)
		}
		fleet.Add(cserv.NewEERKeeper(src, gw, g, uint32(cfg.LeadS)))
	}
	row.EstablishNs = nowNs() - estStart

	// Arm the crash and drive virtual seconds. The fleet first renews in
	// full at second 16-LeadS (the measured storm wave), then the outage
	// kills every later wave until the fleet demotes, and the recovery
	// wave re-admits and re-promotes it.
	startNs := net.Clock.NowNs()
	plans[crashIA].AddDown(
		startNs+int64(cfg.CrashFrom)*1e9, startNs+int64(cfg.CrashTo)*1e9)
	armed = true

	end := cfg.CrashTo + 4
	for s := 1; s <= end; s++ {
		net.Clock.Advance(1e9)
		net.Tick()
		installsBefore := gw.installs
		t0 := nowNs()
		failed := fleet.Tick()
		elapsed := nowNs() - t0
		renewed := gw.installs - installsBefore
		row.Failures += uint64(failed)
		if s < cfg.CrashFrom && renewed > row.StormRenewed {
			// The pre-crash full wave: every flow renews at once.
			row.StormRenewed = renewed
			row.StormNs = elapsed
		}
		if s >= cfg.CrashTo && renewed > 0 && row.RecoverNs == 0 {
			row.RecoverNs = elapsed
		}
	}
	if row.StormNs > 0 {
		row.RenewPerSec = float64(row.StormRenewed) / (float64(row.StormNs) / 1e9)
	}

	m := src.Metrics()
	row.Demotions = m.Demotions.Value()
	row.Promotions = m.Promotions.Value()
	for _, ia := range topo.SortedIAs() {
		row.DedupHits += net.Node(ia).CServ.Metrics().DedupHits.Value()
	}
	row.OverAdmitted = stormOverAdmitted(net, topo)
	return row, nil
}

// stormOverAdmitted checks the zero-double-admission invariant: at every AS,
// for every SegR it participates in, the maximum EER bandwidth the sharded
// CPlane charged to the SegR never exceeds the SegR's active grant.
func stormOverAdmitted(net *core.Network, topo *topology.Topology) bool {
	for _, owner := range topo.SortedIAs() {
		for _, segr := range net.Node(owner).CServ.Store().InitiatedSegRs() {
			for _, ia := range topo.SortedIAs() {
				svc := net.Node(ia).CServ
				cp := svc.CPlane()
				if cp == nil {
					continue
				}
				m, ok := cp.SegDemandMax(segr.ID)
				if !ok {
					continue
				}
				local, err := svc.Store().GetSegR(segr.ID)
				if err != nil {
					continue
				}
				if m > local.Active.BwKbps {
					return true
				}
			}
		}
	}
	return false
}

// FormatStorm renders the sweep.
func FormatStorm(r *StormResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "§4.2 — renewal storm through the live CPlane path\n")
	fmt.Fprintf(&b, "scenario: %d EERs renewing in one %d s window, %d shards, CServ 2-1 down [%d s, %d s), seed %d\n",
		c.Flows, c.LeadS, c.Shards, c.CrashFrom, c.CrashTo, c.Seed)
	fmt.Fprintf(&b, "| workers | establish | storm wave | renew/s | recover wave | demotions | re-promotions | dedups | over-admission |\n")
	fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n")
	for _, row := range r.Rows {
		over := "none"
		if row.OverAdmitted {
			over = "VIOLATED"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %.0f | %s | %d | %d | %d | %s |\n",
			row.Workers, fmtNs(row.EstablishNs), fmtNs(row.StormNs), row.RenewPerSec,
			fmtNs(row.RecoverNs), row.Demotions, row.Promotions, row.DedupHits, over)
	}
	return b.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1f ms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f µs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}
