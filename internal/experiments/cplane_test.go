package experiments

import (
	"strings"
	"testing"

	"colibri/internal/admission"
)

// TestCPlaneByteIdentical pins the control-plane sweep to the package's
// determinism contract: under the step clock, two runs of the same grid
// produce byte-identical tables (virtual reservation clock, sorted shard
// iteration, no wall-clock reads outside the seam).
func TestCPlaneByteIdentical(t *testing.T) {
	run := func() string {
		restore := SetClock(StepClock(0, 1000))
		defer restore()
		rows, err := RunCPlane(CPlaneConfig{Sizes: []int{200}, Shards: []int{1, 4}, Waves: 2})
		if err != nil {
			t.Fatal(err)
		}
		return FormatCPlane(rows)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two cplane runs differ under the step clock:\n--- a\n%s--- b\n%s", a, b)
	}
}

func TestCPlaneSweepSanity(t *testing.T) {
	rows, err := RunCPlane(CPlaneConfig{
		Sizes:  []int{500},
		Impls:  []string{admission.ImplMemoized, admission.ImplRestree},
		Shards: []int{4},
		Waves:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Rejected != 0 {
			t.Errorf("%s: %d rejected EER setups, want 0", r.Impl, r.Rejected)
		}
		if r.EERs != 500 || r.SegRs != 50 {
			t.Errorf("%s: population %d EERs / %d SegRs, want 500/50", r.Impl, r.EERs, r.SegRs)
		}
		if r.RenewNs <= 0 || r.RenewPerSec <= 0 {
			t.Errorf("%s: non-positive renewal timing: %+v", r.Impl, r)
		}
	}
	out := FormatCPlane(rows)
	if !strings.Contains(out, "| memoized | 4 | 50 | 500 |") {
		t.Errorf("table missing memoized row:\n%s", out)
	}
}
