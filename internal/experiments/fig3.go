// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 control plane, §7 data plane, Appendix E): each Run
// function reproduces one experiment's parameter sweep and returns rows in
// the same shape the paper reports. The cmd/colibri-bench tool prints them;
// bench_test.go exposes them as testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"colibri/internal/admission"
	"colibri/internal/reservation"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// Fig3Row is one data point of Fig. 3: SegR admission processing time as a
// function of the number of existing SegRs on the same interface pair and
// the fraction sharing the new request's source AS.
type Fig3Row struct {
	Existing  int
	Ratio     float64
	AvgMicros float64
	StdErr    float64
}

// Fig3Defaults mirrors the paper's sweep: 0–10 000 existing SegRs, ratios
// {0, 0.1, 0.5, 0.9}.
var (
	Fig3Existing = []int{0, 2000, 4000, 6000, 8000, 10000}
	Fig3Ratios   = []float64{0, 0.1, 0.5, 0.9}
)

// RunFig3 measures one SegR admission (admit + release, halved) against
// pre-populated admission state, `samples` times per point.
func RunFig3(existing []int, ratios []float64, samples int) []Fig3Row {
	if len(existing) == 0 {
		existing = Fig3Existing
	}
	if len(ratios) == 0 {
		ratios = Fig3Ratios
	}
	if samples == 0 {
		samples = 100
	}
	rng := rand.New(rand.NewSource(3))
	var rows []Fig3Row
	for _, ratio := range ratios {
		for _, n := range existing {
			_, st := workload.TransitAS(2, 100_000_000)
			srcMain := topology.MustIA(1, 500)
			if err := workload.PopulateSegRs(st, n, ratio, srcMain, 1, 2, rng); err != nil {
				panic(err)
			}
			durs := make([]float64, samples)
			for i := range durs {
				req := admission.Request{
					ID:      reservation.ID{SrcAS: srcMain, Num: uint32(1 << 24)},
					Src:     srcMain,
					In:      1,
					Eg:      2,
					MaxKbps: 50,
				}
				start := nowNs()
				if _, err := st.AdmitSegR(req); err != nil {
					panic(err)
				}
				st.Release(req.ID)
				durs[i] = float64(nowNs()-start) / 2 / 1000 // µs per admission
			}
			avg, se := meanStdErr(durs)
			rows = append(rows, Fig3Row{Existing: n, Ratio: ratio, AvgMicros: avg, StdErr: se})
		}
	}
	return rows
}

// FormatFig3 renders the rows as the paper's series (one line per ratio).
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — SegR admission processing time [µs] vs. existing SegRs\n")
	fmt.Fprintf(&b, "%-10s %-8s %-14s %-10s\n", "existing", "ratio", "time [µs]", "stderr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-8.1f %-14.3f %-10.3f\n", r.Existing, r.Ratio, r.AvgMicros, r.StdErr)
	}
	return b.String()
}

// meanStdErr computes a 10 %-trimmed mean and its standard error: single-
// digit-µs measurements on a shared vCPU occasionally catch a scheduler or
// GC hiccup three orders of magnitude above the signal, which an untrimmed
// mean would report as the data point.
func meanStdErr(xs []float64) (mean, stderr float64) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	trim := len(sorted) / 10
	sorted = sorted[trim : len(sorted)-trim]
	for _, x := range sorted {
		mean += x
	}
	mean /= float64(len(sorted))
	var varsum float64
	for _, x := range sorted {
		varsum += (x - mean) * (x - mean)
	}
	if len(sorted) > 1 {
		stderr = math.Sqrt(varsum/float64(len(sorted)-1)) / math.Sqrt(float64(len(sorted)))
	}
	return mean, stderr
}
