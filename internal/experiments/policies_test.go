package experiments

import (
	"strings"
	"testing"

	"colibri/internal/policy"
)

// quickPolicies is the CI-sized head-to-head grid.
func quickPolicies() PoliciesConfig {
	return PoliciesConfig{Flows: 256, Hops: 3, Waves: 3, AttackFlows: 64, Shards: []int{1, 4}}
}

// TestPoliciesOutcomes pins the head-to-head's qualitative results: under
// the boundary flood, bounded-tube and hummingbird keep every legitimate
// flow and admit no attacker, while flyover bleeds flows to the adversary.
func TestPoliciesOutcomes(t *testing.T) {
	restore := SetClock(StepClock(0, 1_000))
	defer restore()
	rows, err := RunPolicies(quickPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 policies × 2 shard counts)", len(rows))
	}
	for _, r := range rows {
		switch r.Policy {
		case policy.NameBoundedTube, policy.NameHummingbird:
			if r.SurvivorPct != 100 {
				t.Errorf("%s/%d: survivors = %.1f%%, want 100%% (protected renewals)",
					r.Policy, r.Shards, r.SurvivorPct)
			}
			if r.AttackAdmitted != 0 {
				t.Errorf("%s/%d: %d attacker setups admitted, want 0",
					r.Policy, r.Shards, r.AttackAdmitted)
			}
		case policy.NameFlyover:
			if r.SurvivorPct >= 100 {
				t.Errorf("flyover/%d: survivors = %.1f%%, want < 100%% (boundary race lost)",
					r.Shards, r.SurvivorPct)
			}
			if r.AttackAdmitted == 0 {
				t.Errorf("flyover/%d: no attacker admitted — the flood should land", r.Shards)
			}
		}
		if r.HopOps == 0 || r.UtilizationPct <= 0 || r.UtilizationPct > 100 {
			t.Errorf("%s/%d: implausible cell %+v", r.Policy, r.Shards, r)
		}
	}
}

// TestPoliciesDeterministic: under a stepped virtual clock two full runs
// render byte-identical tables — the colibri-bench reproducibility bar.
func TestPoliciesDeterministic(t *testing.T) {
	cfg := quickPolicies()
	render := func() string {
		restore := SetClock(StepClock(0, 1_000))
		defer restore()
		rows, err := RunPolicies(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return FormatPolicies(rows)
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("head-to-head not byte-identical under StepClock:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	for _, want := range []string{"bounded-tube", "flyover", "hummingbird"} {
		if !strings.Contains(a, want) {
			t.Errorf("table missing %q:\n%s", want, a)
		}
	}
}
