package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/netsim"
	"colibri/internal/qos"
)

// DoCRow reports the §5.3 denial-of-capability experiment: the delivery
// rate of control-plane messages across a link flooded with best-effort
// traffic, by message protection level.
type DoCRow struct {
	Kind      string
	Class     string
	Offered   int
	Delivered int
}

// RunDoC floods a 40 Gbps link at 10× with best-effort traffic and sends
// 1 000 initial SegR setup requests (best-effort class — their only
// protection is optional prioritization, App. B) and 1 000 renewal/EER
// requests (Colibri control class, riding existing SegRs — §5.3 "renewal
// requests can be sent over this reservation and are thus isolated from
// flooding attacks"). It returns the delivery counts.
func RunDoC() []DoCRow {
	sim := netsim.NewSim()
	sink := netsim.NewCounter()
	port := netsim.NewPort(sim, "out", 40_000_000, 0, qos.StrictPriority, sink, 0)
	node := netsim.NodeFunc(func(p *netsim.Packet, _ int) { port.Send(p) })

	const durNs = int64(200e6)
	const msgBytes = 400
	const msgs = 1000

	// 400 Gbps best-effort flood (a volumetric DDoS, §5.3).
	(&netsim.Source{
		Sim: sim, Dst: node, RateKbps: 400_000_000, PktBytes: 4000, StopNs: durNs,
		Make: func() *netsim.Packet {
			return &netsim.Packet{WireSize: 4000, Class: qos.ClassBE, Meta: "flood"}
		},
	}).Start(0)
	// Control messages, evenly spread over the window.
	interval := durNs / msgs
	for i := 0; i < msgs; i++ {
		at := int64(i) * interval
		sim.At(at, func() {
			node.Receive(&netsim.Packet{WireSize: msgBytes, Class: qos.ClassBE, Meta: "setup"}, 0)
			node.Receive(&netsim.Packet{WireSize: msgBytes, Class: qos.ClassControl, Meta: "renewal"}, 0)
		})
	}
	sim.Run(durNs + 50e6) // small drain margin for queued control traffic
	return []DoCRow{
		{Kind: "initial SegReq", Class: "best-effort", Offered: msgs,
			Delivered: int(sink.ByLabel["setup"] / msgBytes)},
		{Kind: "renewal over SegR", Class: "colibri-control", Offered: msgs,
			Delivered: int(sink.ByLabel["renewal"] / msgBytes)},
	}
}

// FormatDoC renders the rows.
func FormatDoC(rows []DoCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3 — denial-of-capability protection under a 10× best-effort flood\n")
	fmt.Fprintf(&b, "%-20s %-18s %-9s %-10s\n", "message kind", "traffic class", "offered", "delivered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-18s %-9d %-10d\n", r.Kind, r.Class, r.Offered, r.Delivered)
	}
	return b.String()
}
