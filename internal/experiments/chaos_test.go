package experiments

import (
	"strings"
	"testing"
)

// reducedChaos keeps the suite fast: 2 flows for 25 s with a 17 s crash —
// still longer than the 16 s EER lifetime, so demotion must happen.
var reducedChaos = ChaosConfig{
	Seed: 7, Loss: 0.05, Seconds: 25, Flows: 2, PktPerSec: 2,
	CrashFrom: 4, CrashTo: 21,
}

func TestChaosScenario(t *testing.T) {
	r, err := RunChaos(reducedChaos)
	if err != nil {
		t.Fatal(err)
	}
	// The §3.2 contract: no packet is blackholed — delivery happens on the
	// reservation or as best-effort.
	if r.Blackholed != 0 {
		t.Errorf("%d packets blackholed", r.Blackholed)
	}
	if r.DeliveredBE == 0 {
		t.Error("no best-effort fallback despite a crash longer than the EER lifetime")
	}
	if r.Demotions == 0 || r.Promotions == 0 {
		t.Errorf("demotions=%d promotions=%d, want both > 0", r.Demotions, r.Promotions)
	}
	if r.Promotions < r.Demotions {
		t.Errorf("demotions=%d promotions=%d: flows not restored after restart",
			r.Demotions, r.Promotions)
	}
	if r.Retries == 0 || r.InjectedDrops == 0 {
		t.Errorf("retries=%d injected=%d, want both > 0", r.Retries, r.InjectedDrops)
	}
	out := FormatChaos(r)
	if !strings.Contains(out, "zero blackholed") {
		t.Errorf("format verdict missing:\n%s", out)
	}
}

// Same seed, same run: the chaos scenario is a reproducible bug report.
func TestChaosDeterminism(t *testing.T) {
	a, err := RunChaos(reducedChaos)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(reducedChaos)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("two runs with the same seed differ:\n%+v\n%+v", a, b)
	}
	if FormatChaos(a) != FormatChaos(b) {
		t.Errorf("formatted chaos reports are not byte-identical:\n--- a\n%s--- b\n%s",
			FormatChaos(a), FormatChaos(b))
	}
}
