package experiments

import (
	"strings"
	"testing"

	"colibri/internal/netsim"
)

// smallScale keeps unit-test runs fast: one 50-AS ISD, short duration.
func smallScale() ScaleConfig {
	return ScaleConfig{
		ASes:       50,
		Flows:      60,
		DurationNs: 10e6,
		Seed:       5,
		Workers:    []int{2},
	}
}

// TestScaleEquivalence proves the generated thousand-AS-style scenario —
// hierarchical topology, shortest-path forwarding, seeded flows, faulty
// links — is bit-identical under both engines, via the same differential
// harness the experiment's Verify knob uses.
func TestScaleEquivalence(t *testing.T) {
	cfg := smallScale()
	cfg.Loss = 0.02
	cfg.JitterNs = 2e5
	r, err := netsim.RunBoth(0, 4, ScaleScenario(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if r.SeqEvents < 1000 {
		t.Fatalf("scenario too small: %d events", r.SeqEvents)
	}
	if !strings.Contains(r.SeqDigest, "pkts=") || strings.Contains(r.SeqDigest, "pkts=0 ") {
		t.Fatalf("no traffic delivered: %s", r.SeqDigest)
	}
}

// TestRunScaleDeterministic pins the whole experiment, clock included:
// under a stepped virtual clock, two RunScale invocations must produce
// byte-identical formatted output.
func TestRunScaleDeterministic(t *testing.T) {
	run := func() string {
		restore := SetClock(StepClock(0, 1e6))
		defer restore()
		r, err := RunScale(smallScale())
		if err != nil {
			t.Fatal(err)
		}
		return FormatScale(r)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("RunScale not deterministic under virtual clock:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
	if !strings.Contains(a, "| seq |") || !strings.Contains(a, "| par/2 |") {
		t.Fatalf("missing engine rows:\n%s", a)
	}
}

// TestRunScaleVerify exercises the Verify knob end to end.
func TestRunScaleVerify(t *testing.T) {
	cfg := smallScale()
	cfg.Verify = true
	r, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("Verified flag not set")
	}
	if r.Shards != 50 {
		t.Fatalf("shards = %d, want 50 (one per AS)", r.Shards)
	}
	if r.Rows[0].Pkts == 0 || r.Rows[0].Events == 0 {
		t.Fatalf("empty baseline row: %+v", r.Rows[0])
	}
	for _, row := range r.Rows[1:] {
		if row.Events != r.Rows[0].Events || row.Pkts != r.Rows[0].Pkts {
			t.Fatalf("engine rows disagree on simulated work: %+v vs %+v", r.Rows[0], row)
		}
	}
}
