package experiments

import (
	"errors"
	"fmt"
	"strings"

	"colibri/internal/core"
	"colibri/internal/cserv"
	"colibri/internal/netsim"
	"colibri/internal/topology"
)

// ChaosConfig parameterizes the graceful-degradation chaos scenario: EER
// sessions across the two-ISD topology while the control plane suffers
// random message loss and a mid-run CServ crash. The zero value is filled
// in by defaults (5 % loss, a 20 s crash of the core CServ 2-1 — longer
// than the 16 s EER lifetime, so renewal cannot outwait it).
type ChaosConfig struct {
	// Seed drives every random decision; same seed, same run.
	Seed uint64
	// Loss is the per-control-message drop probability in [0, 1], applied
	// independently to the request and response leg of every hop call.
	Loss float64
	// Seconds is the run length in virtual seconds.
	Seconds int
	// Flows is the number of concurrent EER sessions 1-11 → 2-11.
	Flows int
	// PktPerSec is the data packets each flow offers per second.
	PktPerSec int
	// CrashIA's CServ is unreachable during [CrashFrom, CrashTo) seconds
	// from the start (CrashFrom == CrashTo disables the crash).
	CrashIA            topology.IA
	CrashFrom, CrashTo int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Loss == 0 {
		c.Loss = 0.05
	}
	if c.Seconds == 0 {
		c.Seconds = 45
	}
	if c.Flows == 0 {
		c.Flows = 4
	}
	if c.PktPerSec == 0 {
		c.PktPerSec = 5
	}
	if c.CrashIA == 0 {
		c.CrashIA = topology.MustIA(2, 1)
		if c.CrashFrom == 0 && c.CrashTo == 0 {
			c.CrashFrom, c.CrashTo = 10, 30
		}
	}
	return c
}

// ChaosResult aggregates one chaos run.
type ChaosResult struct {
	Config ChaosConfig

	// Data-plane accounting. Every offered packet must be delivered on the
	// reservation or fall back to best-effort; Blackholed counts the ones
	// that did neither.
	Offered           int
	DeliveredReserved int
	DeliveredBE       int
	Blackholed        int

	// Control-plane accounting.
	RenewalFailures uint64 // failed Maintain ticks across all flows
	Demotions       uint64 // flows dropped to best-effort
	Promotions      uint64 // flows restored to their reserved class
	Retries         uint64 // control-message re-sends
	Timeouts        uint64 // requests that hit their deadline
	Exhausted       uint64 // requests that ran out of attempts
	DedupHits       uint64 // retried requests answered idempotently
	InjectedDrops   uint64 // control messages killed by loss or crash
}

// chaos transport errors (distinct so logs tell loss from crash).
var (
	errChaosLost = errors.New("chaos: control message lost")
	errChaosDown = errors.New("chaos: cserv down")
)

// chaosTransport injects faults into one AS's control-plane transport:
// requests are dropped by the destination AS's inbound fault plan (loss or
// crash window), and responses by the calling AS's own plan — a lost
// response leaves every downstream hop committed, which is exactly the
// partial failure the dedup paths must absorb.
type chaosTransport struct {
	self  topology.IA
	inner cserv.Transport
	clock *core.Clock
	plans map[topology.IA]*netsim.FaultPlan
	armed *bool
}

func (c *chaosTransport) Call(dst topology.IA, msg []byte) ([]byte, error) {
	if *c.armed && !c.plans[dst].Admit(c.clock.NowNs()) {
		if !c.plans[dst].Up(c.clock.NowNs()) {
			return nil, errChaosDown
		}
		return nil, errChaosLost
	}
	resp, err := c.inner.Call(dst, msg)
	if err != nil {
		return nil, err
	}
	if *c.armed && !c.plans[c.self].Admit(c.clock.NowNs()) {
		return nil, errChaosLost
	}
	return resp, nil
}

// RunChaos executes the scenario: establish sessions fault-free, arm the
// faults, then drive one virtual second at a time — each flow runs its
// resilient keep-alive (core.Session.Maintain) and offers data packets via
// SendOrFallback. The §3.2 contract under test: every packet is delivered
// on the reservation or as best-effort, never blackholed, and flows demoted
// during the crash are re-promoted after the restart.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	res := &ChaosResult{Config: cfg}

	topo := topology.TwoISD(topology.LinkSpec{})
	armed := false
	plans := make(map[topology.IA]*netsim.FaultPlan)
	var retries []*cserv.RetryTransport
	net, err := core.NewNetwork(topo, core.Options{
		Telemetry: true,
		WrapTransport: func(ia topology.IA, inner cserv.Transport) cserv.Transport {
			rt := cserv.NewRetryTransport(
				&chaosTransport{self: ia, inner: inner, plans: plans, armed: &armed},
				// A 300 ms deadline makes requests into a crashed AS fail
				// by deadline rather than by attempt budget, so both
				// failure paths are exercised.
				cserv.RetryPolicy{Seed: cfg.Seed ^ uint64(ia), DeadlineNs: 300e6},
				nil)
			retries = append(retries, rt)
			return rt
		},
	})
	if err != nil {
		return nil, err
	}
	for _, ia := range topo.SortedIAs() {
		plans[ia] = netsim.NewFaultPlan(cfg.Seed ^ uint64(ia)).SetLoss(cfg.Loss)
	}
	// The chaosTransport reads the clock lazily; set it now that the
	// network (and its clock) exists.
	for _, rt := range retries {
		rt.Inner.(*chaosTransport).clock = net.Clock
	}

	// Fault-free establishment.
	if err := net.AutoSetupSegRs(1_000_000); err != nil {
		return nil, err
	}
	src, err := net.AddHost(topology.MustIA(1, 11), 0x0a000001)
	if err != nil {
		return nil, err
	}
	dst, err := net.AddHost(topology.MustIA(2, 11), 0x14000001)
	if err != nil {
		return nil, err
	}
	sessions := make([]*core.Session, cfg.Flows)
	for i := range sessions {
		if sessions[i], err = src.RequestEER(dst, 8_000); err != nil {
			return nil, fmt.Errorf("chaos: establishing flow %d: %w", i, err)
		}
	}

	// Arm the faults: loss everywhere, the crash window on the target.
	startNs := net.Clock.NowNs()
	if cfg.CrashTo > cfg.CrashFrom {
		plans[cfg.CrashIA].AddDown(
			startNs+int64(cfg.CrashFrom)*1e9, startNs+int64(cfg.CrashTo)*1e9)
	}
	armed = true

	payload := []byte("chaos-probe")
	for s := 0; s < cfg.Seconds; s++ {
		net.Clock.Advance(1e9)
		net.Tick()
		for _, sess := range sessions {
			if merr := sess.Maintain(6); merr != nil {
				res.RenewalFailures++
			}
			for p := 0; p < cfg.PktPerSec; p++ {
				res.Offered++
				be, serr := sess.SendOrFallback(payload)
				switch {
				case serr != nil:
					res.Blackholed++
				case be:
					res.DeliveredBE++
				default:
					res.DeliveredReserved++
				}
			}
		}
	}

	srcMetrics := net.Node(src.IA).CServ.Metrics()
	res.Demotions = srcMetrics.Demotions.Value()
	res.Promotions = srcMetrics.Promotions.Value()
	for _, ia := range topo.SortedIAs() {
		res.DedupHits += net.Node(ia).CServ.Metrics().DedupHits.Value()
		res.InjectedDrops += plans[ia].LossDrops + plans[ia].DownDrops
	}
	for _, rt := range retries {
		res.Retries += rt.Retries.Value()
		res.Timeouts += rt.Timeouts.Value()
		res.Exhausted += rt.Exhausted.Value()
	}
	if res.DeliveredReserved+res.DeliveredBE+res.Blackholed != res.Offered {
		return res, fmt.Errorf("chaos: accounting mismatch: %d+%d+%d != %d",
			res.DeliveredReserved, res.DeliveredBE, res.Blackholed, res.Offered)
	}
	return res, nil
}

// FormatChaos renders one run.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "§3.2 — graceful degradation under control-plane chaos\n")
	fmt.Fprintf(&b, "scenario: %d flows, %d s, %.0f%% message loss, CServ %s down [%d s, %d s), seed %d\n",
		c.Flows, c.Seconds, c.Loss*100, c.CrashIA, c.CrashFrom, c.CrashTo, c.Seed)
	fmt.Fprintf(&b, "%-22s %d\n", "offered packets", r.Offered)
	fmt.Fprintf(&b, "%-22s %d\n", "delivered (reserved)", r.DeliveredReserved)
	fmt.Fprintf(&b, "%-22s %d\n", "delivered (best-eff.)", r.DeliveredBE)
	fmt.Fprintf(&b, "%-22s %d\n", "blackholed", r.Blackholed)
	fmt.Fprintf(&b, "%-22s %d injected drops, %d retries, %d timeouts, %d exhausted, %d dedup hits\n",
		"control plane", r.InjectedDrops, r.Retries, r.Timeouts, r.Exhausted, r.DedupHits)
	fmt.Fprintf(&b, "%-22s %d failed renewals, %d demotions, %d re-promotions\n",
		"failover", r.RenewalFailures, r.Demotions, r.Promotions)
	if r.Blackholed == 0 {
		fmt.Fprintf(&b, "verdict: zero blackholed packets — every flow kept its reservation or degraded to best-effort\n")
	} else {
		fmt.Fprintf(&b, "verdict: VIOLATION — %d packets were neither delivered nor degraded\n", r.Blackholed)
	}
	return b.String()
}
