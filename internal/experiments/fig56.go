package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colibri/internal/cryptoutil"
	"colibri/internal/gateway"
	"colibri/internal/packet"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// Fig5Row is one data point of Fig. 5: single-core gateway forwarding
// performance as a function of path length and installed reservations.
type Fig5Row struct {
	Hops         int
	Reservations int
	Mpps         float64
}

// Fig5/6 default sweeps, as in the paper.
var (
	Fig5Hops         = []int{2, 4, 8, 16}
	Fig5Reservations = []int{1, 1 << 10, 1 << 15, 1 << 17, 1 << 20}
	Fig6Workers      = []int{1, 2, 4, 8, 16}
)

// RunFig5 measures gateway packet construction (lookup, monitoring, Ts,
// HVFs, serialization) with zero-payload packets and uniformly random
// reservation IDs — the paper's worst-case arrival pattern — for the given
// measurement duration per point.
func RunFig5(hops, reservations []int, perPoint time.Duration) []Fig5Row {
	if len(hops) == 0 {
		hops = Fig5Hops
	}
	if len(reservations) == 0 {
		reservations = Fig5Reservations
	}
	if perPoint == 0 {
		perPoint = 300 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(5))
	var rows []Fig5Row
	for _, h := range hops {
		for _, r := range reservations {
			gw, _ := workload.GatewayPopulation(r, h, rng)
			if telemetryReg != nil {
				gw.EnableTelemetry(telemetryReg)
			}
			ids := workload.RandomResIDs(1<<16, r, rng)
			w := gw.NewWorker()
			out := make([]byte, 2048)
			// Warm up and clear garbage left by population building, so the
			// timed loop does not pay earlier allocations' collection.
			runtime.GC()
			for i := 0; i < 1000; i++ {
				mustBuild(w.Build(ids[i%len(ids)], nil, out, workload.EpochNs+int64(i)))
			}
			ops := 0
			now := workload.EpochNs
			start := nowNs()
			for nowNs()-start < perPoint.Nanoseconds() {
				for k := 0; k < 512; k++ {
					now++
					mustBuild(w.Build(ids[(ops+k)%len(ids)], nil, out, now))
				}
				ops += 512
			}
			elapsed := float64(nowNs()-start) / 1e9
			rows = append(rows, Fig5Row{Hops: h, Reservations: r, Mpps: float64(ops) / elapsed / 1e6})
		}
	}
	return rows
}

func mustBuild(n int, err error) {
	if err != nil {
		panic(err)
	}
}

// FormatFig5 renders the rows as the paper's series (one line per r).
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — gateway forwarding performance [Mpps], one worker\n")
	fmt.Fprintf(&b, "%-8s %-14s %-10s\n", "hops", "reservations", "Mpps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-14d %-10.3f\n", r.Hops, r.Reservations, r.Mpps)
	}
	return b.String()
}

// Fig6Row is one data point of Fig. 6: gateway or border-router throughput
// versus the number of parallel workers. On a multi-core machine workers
// map to cores; on this reproduction's host the worker sweep measures
// scalability of the shared-state design (lock behaviour), with per-core
// linearity documented in EXPERIMENTS.md.
type Fig6Row struct {
	Component    string // "gateway" or "border-router"
	Workers      int
	Reservations int // gateway only
	Mpps         float64
}

// RunFig6 measures the gateway (4-hop paths, several r) and the stateless
// border router with 1–16 parallel workers.
func RunFig6(workers []int, gwReservations []int, perPoint time.Duration) []Fig6Row {
	if len(workers) == 0 {
		workers = Fig6Workers
	}
	if len(gwReservations) == 0 {
		gwReservations = []int{1, 1 << 15, 1 << 20}
	}
	if perPoint == 0 {
		perPoint = 300 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(6))
	var rows []Fig6Row

	// Border router: stateless verification of last-hop packets (delivery
	// does not mutate the buffer, so one packet set serves all workers).
	gw, routers := workload.GatewayPopulation(1024, 4, rng)
	last := routers[3]
	pkts := buildLastHopPackets(gw, 1024, 4, 4096)
	for _, nw := range workers {
		mpps := parallelRate(nw, perPoint, func() func() {
			w := last.NewWorker()
			i := 0
			return func() {
				buf := pkts[i%len(pkts)]
				if _, err := w.Process(buf, workload.EpochNs); err != nil {
					panic(err)
				}
				i++
			}
		})
		rows = append(rows, Fig6Row{Component: "border-router", Workers: nw, Mpps: mpps})
	}

	// Gateway: 4-hop paths, sweep r.
	for _, r := range gwReservations {
		gw, _ := workload.GatewayPopulation(r, 4, rng)
		if telemetryReg != nil {
			gw.EnableTelemetry(telemetryReg)
		}
		ids := workload.RandomResIDs(1<<16, r, rng)
		for _, nw := range workers {
			var seq atomic.Int64
			mpps := parallelRate(nw, perPoint, func() func() {
				w := gw.NewWorker()
				out := make([]byte, 2048)
				i := int(seq.Add(1)) * 7919
				return func() {
					now := workload.EpochNs + int64(i)
					mustBuild(w.Build(ids[i%len(ids)], nil, out, now))
					i++
				}
			})
			rows = append(rows, Fig6Row{Component: "gateway", Workers: nw, Reservations: r, Mpps: mpps})
		}
	}
	return rows
}

// buildLastHopPackets builds n serialized packets over the gateway's
// reservations, advanced to their final hop (the border router there
// delivers without mutating the buffer, so workers can share the set).
func buildLastHopPackets(gw *gateway.Gateway, r, hops, n int) [][]byte {
	w := gw.NewWorker()
	pkts := make([][]byte, n)
	for i := range pkts {
		buf := make([]byte, 512)
		sz, err := w.Build(uint32(1+i%r), nil, buf, workload.EpochNs+int64(i))
		if err != nil {
			panic(err)
		}
		b := buf[:sz]
		packet.SetCurrHopInPlace(b, uint8(hops-1))
		pkts[i] = b
	}
	return pkts
}

// parallelRate runs nw workers for roughly d each and returns aggregate
// Mops.
func parallelRate(nw int, d time.Duration, mkWorker func() func()) float64 {
	runtime.GC()
	var total atomic.Int64
	var wg sync.WaitGroup
	start := nowNs()
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := mkWorker()
			ops := 0
			for nowNs()-start < d.Nanoseconds() {
				for k := 0; k < 256; k++ {
					op()
				}
				ops += 256
			}
			total.Add(int64(ops))
		}()
	}
	wg.Wait()
	elapsed := float64(nowNs()-start) / 1e9
	return float64(total.Load()) / elapsed / 1e6
}

// Fig6ShardedRow is one data point of the RSS-sharded data-plane sweep: the
// batched multi-core pipeline (router.Sharded / gateway.Sharded) at a given
// worker count. PerWorker is Mpps normalized by min(workers, GOMAXPROCS) —
// the effective concurrency — so a flat PerWorker series is the scaling
// claim on a multi-core host, while on a single-CPU host it measures
// fan-out overhead only.
type Fig6ShardedRow struct {
	Component string // "gateway" or "border-router"
	Workers   int
	Mpps      float64
	PerWorker float64
}

// Fig6ShardedWorkers is the default worker sweep of the sharded pipeline
// (overridable from colibri-bench with -workers).
var Fig6ShardedWorkers = []int{1, 2, 4, 8}

// RunFig6Sharded measures the RSS-sharded batched pipelines — border-router
// validation via router.Sharded.ProcessBatch and gateway construction via
// gateway.Sharded.BuildBatch — across worker counts. Shards is fixed at 8
// so flow placement (and every per-flow decision) is identical at every
// sweep point; only the degree of parallelism varies.
func RunFig6Sharded(workers []int, perPoint time.Duration) []Fig6ShardedRow {
	if len(workers) == 0 {
		workers = Fig6ShardedWorkers
	}
	if perPoint == 0 {
		perPoint = 300 * time.Millisecond
	}
	const r, hops, shards, batch = 1 << 10, 4, 8, 256
	rng := rand.New(rand.NewSource(6))
	var rows []Fig6ShardedRow

	normalize := func(mpps float64, nw int) float64 {
		eff := nw
		if p := runtime.GOMAXPROCS(0); eff > p {
			eff = p
		}
		return mpps / float64(eff)
	}

	// Border router: one shared last-hop packet set (validation does not
	// mutate the buffer), a fresh sharded router per worker count.
	gw, _, secrets := workload.GatewayPopulationWithSecrets(r, hops, rng)
	pkts := buildLastHopPackets(gw, r, hops, 4096)
	for _, nw := range workers {
		sh := router.NewSharded(router.ShardedConfig{
			Router: router.Config{
				IA:                topology.MustIA(1, hops),
				Secret:            secrets[hops-1],
				SigmaCacheEntries: 4 * r,
				Telemetry:         telemetryReg,
			},
			Shards:  shards,
			Workers: nw,
		})
		verdicts := make([]router.BatchVerdict, batch)
		runtime.GC()
		for s := 0; s < 20; s++ { // σ-cache warm-up past the promotion threshold
			for i := 0; i+batch <= len(pkts); i += batch {
				sh.ProcessBatch(pkts[i:i+batch], verdicts, workload.EpochNs)
			}
		}
		ops := 0
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			off := ops % (len(pkts) - batch + 1)
			if n := sh.ProcessBatch(pkts[off:off+batch], verdicts, workload.EpochNs); n != batch {
				panic(verdicts[0].Err)
			}
			ops += batch
		}
		elapsed := float64(nowNs()-start) / 1e9
		mpps := float64(ops) / elapsed / 1e6
		rows = append(rows, Fig6ShardedRow{Component: "border-router", Workers: nw, Mpps: mpps, PerWorker: normalize(mpps, nw)})
		sh.Merge() // fold per-shard σ-cache stats into router.cache.{hits,misses}
		sh.Close()
	}

	// Gateway: fresh sharded gateway per worker count, 4-hop paths.
	for _, nw := range workers {
		sg := gateway.NewSharded(topology.MustIA(1, 11),
			gateway.Options{SchedCacheEntries: 4 * r * hops / shards}, shards, nw)
		if telemetryReg != nil {
			sg.EnableTelemetry(telemetryReg)
		}
		installShardedPopulation(sg, r, hops, rng)
		ids := workload.RandomResIDs(1<<16, r, rng)
		reqs := make([]gateway.BuildReq, batch)
		outs := make([]gateway.BuildRes, batch)
		for i := range reqs {
			reqs[i].Out = make([]byte, 2048)
		}
		fill := func(base int) {
			for j := range reqs {
				reqs[j].ResID = ids[(base+j)%len(ids)]
			}
		}
		runtime.GC()
		for base := 0; base < len(ids); base += batch { // σ-cache warm-up
			fill(base)
			sg.BuildBatch(reqs, outs, workload.EpochNs)
		}
		ops := 0
		now := workload.EpochNs
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			now++
			fill(ops)
			if n := sg.BuildBatch(reqs, outs, now); n != batch {
				panic(outs[0].Err)
			}
			ops += batch
		}
		elapsed := float64(nowNs()-start) / 1e9
		mpps := float64(ops) / elapsed / 1e6
		rows = append(rows, Fig6ShardedRow{Component: "gateway", Workers: nw, Mpps: mpps, PerWorker: normalize(mpps, nw)})
		sg.Merge() // fold per-shard σ-cache stats into gateway.cache.{hits,misses}
		sg.Close()
	}
	return rows
}

// installShardedPopulation fills a sharded gateway with r reservations over
// hops-long paths (arbitrary hop authenticators: construction-only fixtures
// never verify downstream).
func installShardedPopulation(sg *gateway.Sharded, r, hops int, rng *rand.Rand) {
	path := make([]packet.HopField, hops)
	for i := range path {
		path[i] = packet.HopField{In: topology.IfID(2 * i), Eg: topology.IfID(2*i + 1)}
	}
	auths := make([]cryptoutil.Key, hops)
	for i := range auths {
		_, _ = rng.Read(auths[i][:])
	}
	for id := 1; id <= r; id++ {
		res := packet.ResInfo{
			SrcAS:  topology.MustIA(1, 11),
			ResID:  uint32(id),
			BwKbps: 1 << 30,
			ExpT:   workload.Epoch + reservation.EERLifetimeSeconds,
			Ver:    1,
		}
		if err := sg.Install(res, packet.EERInfo{SrcHost: 1, DstHost: 2}, path, auths); err != nil {
			panic(err)
		}
	}
}

// FormatFig6Sharded renders the sharded-pipeline rows.
func FormatFig6Sharded(rows []Fig6ShardedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 (sharded) — RSS multi-core pipeline [Mpps] vs. workers, 8 shards\n")
	fmt.Fprintf(&b, "%-16s %-9s %-10s %-12s\n", "component", "workers", "Mpps", "Mpps/worker")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-9d %-10.3f %-12.3f\n", r.Component, r.Workers, r.Mpps, r.PerWorker)
	}
	return b.String()
}

// FormatFig6 renders the rows.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — throughput [Mpps] vs. parallel workers\n")
	fmt.Fprintf(&b, "%-16s %-9s %-14s %-10s\n", "component", "workers", "reservations", "Mpps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-9d %-14d %-10.3f\n", r.Component, r.Workers, r.Reservations, r.Mpps)
	}
	return b.String()
}
