package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// The experiment tests verify the *shape* the paper reports, on reduced
// parameter grids so the suite stays fast; cmd/colibri-bench runs the full
// sweeps.

func TestFig3ConstantTime(t *testing.T) {
	rows := RunFig3([]int{0, 5000}, []float64{0, 0.5}, 50)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[[2]int]float64{}
	for _, r := range rows {
		byKey[[2]int{r.Existing, int(r.Ratio * 10)}] = r.AvgMicros
		if r.AvgMicros <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		// Paper: well under 1500 µs; ours is far faster.
		if r.AvgMicros > 1500 {
			t.Errorf("admission slower than the paper's bound: %+v", r)
		}
	}
	// 5000 existing SegRs must not meaningfully slow admission (allow 20×
	// slack for timer noise at sub-µs scales).
	if byKey[[2]int{5000, 0}] > 20*byKey[[2]int{0, 0}]+5 {
		t.Errorf("admission not constant-time: %v", byKey)
	}
	if !strings.Contains(FormatFig3(rows), "Fig. 3") {
		t.Error("FormatFig3 header missing")
	}
}

func TestFig4ConstantTime(t *testing.T) {
	rows := RunFig4([]int{10, 10_000}, []int{1, 1000}, 50)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var small, large float64
	for _, r := range rows {
		if r.SegRs == 1 && r.ExistingEERs == 10 {
			small = r.AvgMicros
		}
		if r.SegRs == 1000 && r.ExistingEERs == 10_000 {
			large = r.AvgMicros
		}
		if r.AvgMicros > 500 {
			t.Errorf("EER admission above the paper's 500 µs scale: %+v", r)
		}
	}
	if large > 20*small+5 {
		t.Errorf("EER admission not constant-time: small %.3f µs vs large %.3f µs", small, large)
	}
	if !strings.Contains(FormatFig4(rows), "Fig. 4") {
		t.Error("FormatFig4 header missing")
	}
}

func TestFig5Shape(t *testing.T) {
	rows := RunFig5([]int{2, 8}, []int{1, 1 << 12}, 50*time.Millisecond)
	get := func(h, r int) float64 {
		for _, row := range rows {
			if row.Hops == h && row.Reservations == r {
				return row.Mpps
			}
		}
		t.Fatalf("missing row %d/%d", h, r)
		return 0
	}
	// More hops → more HVFs → lower rate.
	if get(2, 1) <= get(8, 1) {
		t.Errorf("rate did not decrease with path length: %v vs %v", get(2, 1), get(8, 1))
	}
	// Order-of-magnitude floor: the paper's DPDK gateway does ≥ 0.4 Mpps
	// per core in its worst case; our pure-Go AES key expansion per hop is
	// costlier, so require ≥ 0.2 Mpps at 8 hops / 2^12 (see EXPERIMENTS.md
	// for the absolute-number discussion). Skipped under the race
	// detector's ~20× instrumentation.
	if !raceEnabled && get(8, 1<<12) < 0.2 {
		t.Errorf("gateway below the worst-case floor: %.3f Mpps", get(8, 1<<12))
	}
	if !strings.Contains(FormatFig5(rows), "Fig. 5") {
		t.Error("FormatFig5 header missing")
	}
}

func TestFig6RunsAndReports(t *testing.T) {
	rows := RunFig6([]int{1, 2}, []int{1 << 10}, 50*time.Millisecond)
	var br, gwFound bool
	for _, r := range rows {
		if r.Mpps <= 0 {
			t.Errorf("non-positive rate: %+v", r)
		}
		if r.Component == "border-router" {
			br = true
		}
		if r.Component == "gateway" {
			gwFound = true
		}
	}
	if !br || !gwFound {
		t.Error("missing component rows")
	}
	if !strings.Contains(FormatFig6(rows), "Fig. 6") {
		t.Error("FormatFig6 header missing")
	}
}

func TestTable2Protection(t *testing.T) {
	rows := RunTable2()
	get := func(phase int, class string) Table2Row {
		for _, r := range rows {
			if r.Phase == phase && r.Class == class {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", phase, class)
		return Table2Row{}
	}
	near := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

	for phase := 1; phase <= 3; phase++ {
		// Reservation 2 always receives its full 0.8 Gbps.
		if r := get(phase, "Reservation 2"); !near(r.Output, 0.8, 0.05) {
			t.Errorf("phase %d: reservation 2 output %.3f Gbps", phase, r.Output)
		}
		// Best effort scavenges the rest of the 40 Gbps output (≈38.7).
		if r := get(phase, "Best effort"); r.Output < 35 || r.Output > 39.5 {
			t.Errorf("phase %d: best effort output %.3f Gbps", phase, r.Output)
		}
	}
	// Phases 1–2: reservation 1 receives its 0.4 Gbps.
	for phase := 1; phase <= 2; phase++ {
		if r := get(phase, "Reservation 1"); !near(r.Output, 0.4, 0.05) {
			t.Errorf("phase %d: reservation 1 output %.3f Gbps", phase, r.Output)
		}
	}
	// Phase 2–3: unauthentic Colibri is filtered to zero.
	for phase := 2; phase <= 3; phase++ {
		if r := get(phase, "Colibri unauth."); r.Output != 0 {
			t.Errorf("phase %d: unauthentic output %.3f Gbps", phase, r.Output)
		}
	}
	// Phase 3: the overusing reservation 1 is clamped to ≈ its guarantee.
	if r := get(3, "Reservation 1"); r.Output > 0.55 || r.Output < 0.3 {
		t.Errorf("phase 3: overuser clamped to %.3f Gbps, want ≈0.4", r.Output)
	}
	if !strings.Contains(FormatTable2(rows), "Table 2") {
		t.Error("FormatTable2 header missing")
	}
}

func TestAppendixEPayloadIndependence(t *testing.T) {
	rows := RunAppendixE([]int{0, 1000}, 50*time.Millisecond)
	rate := map[string]map[int]float64{}
	for _, r := range rows {
		if rate[r.Component] == nil {
			rate[r.Component] = map[int]float64{}
		}
		rate[r.Component][r.PayloadBytes] = r.Mpps
	}
	for comp, byPayload := range rate {
		r0, r1000 := byPayload[0], byPayload[1000]
		if r0 <= 0 || r1000 <= 0 {
			t.Fatalf("%s: non-positive rates", comp)
		}
		// Payload size must not change the rate by more than ~2× (the paper
		// reports full independence; we allow copy-cost slack).
		ratio := r0 / r1000
		if ratio < 0.5 || ratio > 2.5 {
			t.Errorf("%s: payload dependence: %.3f vs %.3f Mpps", comp, r0, r1000)
		}
	}
	if !strings.Contains(FormatAppE(rows), "Appendix E") {
		t.Error("FormatAppE header missing")
	}
}
