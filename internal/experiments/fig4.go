package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/reservation"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// Fig4Row is one data point of Fig. 4: EER admission processing time at a
// transit AS as a function of the number of existing EERs sharing the same
// SegR and the number of SegRs sharing the same source AS (s).
type Fig4Row struct {
	ExistingEERs int
	SegRs        int
	AvgMicros    float64
	StdErr       float64
}

// Fig4Defaults mirrors the paper's sweep: 10¹–10⁵ EERs, s ∈ {1, 5000,
// 10000}.
var (
	Fig4Existing = []int{10, 100, 1000, 10_000, 100_000}
	Fig4SegRs    = []int{1, 5000, 10_000}
)

// RunFig4 measures one EER admission (admit + remove, halved) at a transit
// AS against a pre-populated reservation store.
func RunFig4(existing, segrs []int, samples int) []Fig4Row {
	if len(existing) == 0 {
		existing = Fig4Existing
	}
	if len(segrs) == 0 {
		segrs = Fig4SegRs
	}
	if samples == 0 {
		samples = 100
	}
	var rows []Fig4Row
	for _, s := range segrs {
		for _, n := range existing {
			store, segID, err := workload.EERPopulation(s, n)
			if err != nil {
				panic(err)
			}
			durs := make([]float64, samples)
			id := reservation.ID{SrcAS: topology.MustIA(1, 77), Num: 1 << 24}
			for i := range durs {
				v := reservation.Version{Ver: 1, BwKbps: 1, ExpT: workload.Epoch + 16}
				start := nowNs()
				if err := store.AdmitEERVersion(&reservation.EER{ID: id}, []reservation.ID{segID}, v, workload.Epoch); err != nil {
					panic(err)
				}
				if err := store.RemoveEERVersion(id, 1); err != nil {
					panic(err)
				}
				durs[i] = float64(nowNs()-start) / 2 / 1000
			}
			avg, se := meanStdErr(durs)
			rows = append(rows, Fig4Row{ExistingEERs: n, SegRs: s, AvgMicros: avg, StdErr: se})
		}
	}
	return rows
}

// FormatFig4 renders the rows as the paper's series (one line per s).
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — EER admission processing time [µs] at a transit AS\n")
	fmt.Fprintf(&b, "%-12s %-8s %-14s %-10s\n", "EERs", "s", "time [µs]", "stderr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-8d %-14.3f %-10.3f\n", r.ExistingEERs, r.SegRs, r.AvgMicros, r.StdErr)
	}
	return b.String()
}
