package experiments

import "testing"

// smallStorm is the CI-sized storm: enough flows to fill several batch
// waves, small enough to run in seconds.
func smallStorm(workers []int) StormConfig {
	return StormConfig{
		Seed:      11,
		Flows:     2_000,
		BatchSize: 512,
		Workers:   workers,
	}
}

// TestStormFailover drives the renewal storm end to end and checks the §3.2
// / §4.2 contract: the full fleet renews in one wave through the batched
// path, the crash demotes every flow exactly once, the recovery re-promotes
// every flow, and no AS ever over-admits a SegR.
func TestStormFailover(t *testing.T) {
	restore := SetClock(StepClock(0, 1000))
	defer restore()
	res, err := RunStorm(smallStorm([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	flows := uint64(res.Config.Flows)
	if row.StormRenewed != flows {
		t.Errorf("storm wave renewed %d of %d flows", row.StormRenewed, flows)
	}
	if row.Demotions != flows {
		t.Errorf("Demotions = %d, want %d (whole fleet falls back)", row.Demotions, flows)
	}
	if row.Promotions != flows {
		t.Errorf("Promotions = %d, want %d (whole fleet re-promoted)", row.Promotions, flows)
	}
	if row.Failures == 0 {
		t.Error("no failed renewal attempts despite the crash window")
	}
	if row.OverAdmitted {
		t.Error("over-admission: a CPlane charged a SegR beyond its active bandwidth")
	}
	if row.RenewPerSec <= 0 {
		t.Errorf("RenewPerSec = %f", row.RenewPerSec)
	}
}

// TestStormWorkersEquivalent pins the logical outcome across the worker
// sweep: parallelizing the shard buckets must not change a single decision.
func TestStormWorkersEquivalent(t *testing.T) {
	restore := SetClock(StepClock(0, 1000))
	defer restore()
	res, err := RunStorm(smallStorm([]int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	base := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if row.StormRenewed != base.StormRenewed || row.Demotions != base.Demotions ||
			row.Promotions != base.Promotions || row.Failures != base.Failures ||
			row.DedupHits != base.DedupHits || row.OverAdmitted != base.OverAdmitted {
			t.Errorf("workers=%d diverges from workers=%d:\n%+v\n%+v",
				row.Workers, base.Workers, row, base)
		}
	}
}

// TestStormDeterministic pins seed-determinism of the whole scenario,
// including the formatted report, under the step clock.
func TestStormDeterministic(t *testing.T) {
	run := func() string {
		restore := SetClock(StepClock(0, 1000))
		defer restore()
		res, err := RunStorm(smallStorm([]int{2}))
		if err != nil {
			t.Fatal(err)
		}
		return FormatStorm(res)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two seeded storm runs differ under the step clock:\n--- a\n%s--- b\n%s", a, b)
	}
}
