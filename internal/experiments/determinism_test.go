package experiments

import (
	"testing"
	"time"
)

// These tests pin the property colibri-vet's determinism check protects:
// with the virtual step clock injected through the package's clock seam, a
// fixed seed makes a full experiment run — including its formatted figure
// data — byte-identical across runs. Any wall-clock read or unordered map
// iteration sneaking into the measurement path breaks them.

func TestFig3ByteIdentical(t *testing.T) {
	run := func() string {
		restore := SetClock(StepClock(0, 1500))
		defer restore()
		return FormatFig3(RunFig3([]int{0, 200}, []float64{0, 0.5}, 30))
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two seeded Fig3 runs differ under the step clock:\n--- a\n%s--- b\n%s", a, b)
	}
}

func TestFig5ByteIdentical(t *testing.T) {
	run := func() string {
		// One clock read per 512-packet burst: a 1 ms step ends each point
		// after ~50 bursts regardless of host speed.
		restore := SetClock(StepClock(0, int64(time.Millisecond)))
		defer restore()
		return FormatFig5(RunFig5([]int{2}, []int{16}, 50*time.Millisecond))
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two seeded Fig5 runs differ under the step clock:\n--- a\n%s--- b\n%s", a, b)
	}
}
