package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"colibri/internal/packet"
	"colibri/internal/workload"
)

// AppERow is one data point of Appendix E: gateway and border-router packet
// rate as a function of payload size (the paper's claim: forwarding is not
// influenced by the payload size).
type AppERow struct {
	Component    string
	PayloadBytes int
	Mpps         float64
}

// AppEPayloads mirrors the appendix's sweep (jumbo frames included).
var AppEPayloads = []int{0, 100, 500, 1000, 1500}

// RunAppendixE measures single-worker gateway construction and border-router
// validation for each payload size, with 2^15 installed reservations as in
// the appendix.
func RunAppendixE(payloads []int, perPoint time.Duration) []AppERow {
	if len(payloads) == 0 {
		payloads = AppEPayloads
	}
	if perPoint == 0 {
		perPoint = 200 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(14))
	const r = 1 << 15
	const hops = 4
	gw, routers := workload.GatewayPopulation(r, hops, rng)
	ids := workload.RandomResIDs(1<<16, r, rng)
	var rows []AppERow

	for _, p := range payloads {
		payload := make([]byte, p)
		w := gw.NewWorker()
		out := make([]byte, 4096)
		runtime.GC() // keep earlier allocations' collection out of the timing
		ops := 0
		now := workload.EpochNs
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			for k := 0; k < 256; k++ {
				now++
				mustBuild(w.Build(ids[(ops+k)%len(ids)], payload, out, now))
			}
			ops += 256
		}
		rows = append(rows, AppERow{Component: "gateway", PayloadBytes: p,
			Mpps: float64(ops) / (float64(nowNs()-start) / 1e9) / 1e6})
	}

	for _, p := range payloads {
		// Pre-build last-hop packets with this payload size.
		payload := make([]byte, p)
		w := gw.NewWorker()
		pkts := make([][]byte, 2048)
		for i := range pkts {
			buf := make([]byte, 4096)
			sz, err := w.Build(ids[i%len(ids)], payload, buf, workload.EpochNs+int64(i))
			if err != nil {
				panic(err)
			}
			b := buf[:sz]
			packet.SetCurrHopInPlace(b, hops-1)
			pkts[i] = b
		}
		rw := routers[hops-1].NewWorker()
		runtime.GC()
		ops := 0
		start := nowNs()
		for nowNs()-start < perPoint.Nanoseconds() {
			for k := 0; k < 256; k++ {
				if _, err := rw.Process(pkts[(ops+k)%len(pkts)], workload.EpochNs); err != nil {
					panic(err)
				}
			}
			ops += 256
		}
		rows = append(rows, AppERow{Component: "border-router", PayloadBytes: p,
			Mpps: float64(ops) / (float64(nowNs()-start) / 1e9) / 1e6})
	}
	return rows
}

// FormatAppE renders the rows.
func FormatAppE(rows []AppERow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix E — forwarding rate [Mpps] vs. payload size (r = 2^15)\n")
	fmt.Fprintf(&b, "%-16s %-14s %-10s\n", "component", "payload [B]", "Mpps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-14d %-10.3f\n", r.Component, r.PayloadBytes, r.Mpps)
	}
	return b.String()
}
