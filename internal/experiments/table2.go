package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"colibri/internal/cryptoutil"
	"colibri/internal/netsim"
	"colibri/internal/packet"
	"colibri/internal/qos"
	"colibri/internal/reservation"
	"colibri/internal/router"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// Table2Row is one measurement row of Table 2: per-phase, per-traffic-class
// input rates on the three ports and the delivered output rate, in Gbps.
type Table2Row struct {
	Phase  int
	Class  string
	Inputs [3]float64
	Output float64
}

// Table 2 fixed parameters, as in the paper: three 40 Gbps input ports, one
// 40 Gbps output, reservations of 0.4 and 0.8 Gbps.
const (
	t2LinkKbps = 40_000_000
	t2Res1Kbps = 400_000
	t2Res2Kbps = 800_000
	t2PktBytes = 4000 // jumbo frames keep the event count tractable
	// Measurement starts after a warm-up so that the token-bucket burst
	// allowance of freshly watched flows does not inflate phase-3 rates.
	t2WarmNs    = int64(150e6)
	t2MeasureNs = int64(400e6)
	// t2Burst coalesces same-link same-tick transmissions so the
	// simulation drives the batched data-plane APIs (Worker.ProcessBatch)
	// and the event heap shrinks by the burst factor. Rates are
	// burst-invariant: sources stretch the tick interval, ports sum
	// serialization times.
	t2Burst = 8
)

// stamper builds authentic Colibri packets for one reservation directly
// from the hop authenticators (the traffic generator plays remote source
// ASes; in phase 3 it deliberately exceeds the reservation, modelling a
// source AS that fails its monitoring duty).
type stamper struct {
	res    packet.ResInfo
	eer    packet.EERInfo
	path   []packet.HopField
	auths  []cryptoutil.Key
	seq    uint64
	lastTs uint64
	label  string
	valid  bool // false: random HVFs (unauthentic Colibri traffic)
	rng    *rand.Rand
}

func (s *stamper) make(nowNs int64) *netsim.Packet {
	// Ts must be unique per source even when a burst of packets is
	// stamped on the same virtual tick.
	ts := uint64(nowNs)
	if ts <= s.lastTs {
		ts = s.lastTs + 1
	}
	s.lastTs = ts
	s.seq++
	pkt := packet.Packet{
		Type:    packet.TData,
		CurrHop: 1, // validated at the router under test
		Res:     s.res,
		EER:     s.eer,
		Ts:      ts,
		Path:    s.path,
		HVFs:    make([]byte, len(s.path)*packet.HVFLen),
	}
	pad := t2PktBytes - pkt.Length()
	pkt.Payload = make([]byte, pad)
	if s.valid {
		var in [packet.HVFInputLen]byte
		packet.HVFInput(&in, pkt.Ts, uint32(pkt.Length()))
		for i, a := range s.auths {
			var mac [cryptoutil.MACSize]byte
			cryptoutil.MACOneBlock(cryptoutil.NewBlock(a), &mac, &in)
			copy(pkt.HVFs[i*packet.HVFLen:], mac[:packet.HVFLen])
		}
	} else {
		_, _ = s.rng.Read(pkt.HVFs) // rand.Rand.Read never fails
	}
	buf := make([]byte, pkt.Length())
	if _, err := pkt.SerializeTo(buf); err != nil {
		panic(err)
	}
	return &netsim.Packet{Header: buf, WireSize: len(buf), Class: qos.ClassEER, Meta: s.label}
}

// newStamper derives a reservation's authenticators for the router secret.
func newStamper(secret cryptoutil.Key, resID uint32, bwKbps uint32, label string, valid bool, rng *rand.Rand) *stamper {
	s := &stamper{
		res: packet.ResInfo{
			SrcAS:  topology.MustIA(1, topology.ASID(10+resID)),
			ResID:  resID,
			BwKbps: bwKbps,
			ExpT:   workload.Epoch + reservation.SegRLifetimeSeconds,
			Ver:    1,
		},
		eer:   packet.EERInfo{SrcHost: 1, DstHost: 2},
		path:  []packet.HopField{{Eg: 1}, {In: 1, Eg: 2}, {In: 1}},
		label: label,
		valid: valid,
		rng:   rng,
	}
	var in [packet.EERAuthLen]byte
	var out [cryptoutil.MACSize]byte
	cbc := cryptoutil.MustCBCMAC(secret)
	s.auths = make([]cryptoutil.Key, len(s.path))
	for i := range s.path {
		packet.EERAuthInput(&in, &s.res, &s.eer, s.path[i])
		cbc.SumInto(&out, in[:])
		s.auths[i] = cryptoutil.Key(out)
	}
	return s
}

// t2Phase describes the offered load of one phase: rates in kbps per input
// port and class.
type t2Phase struct {
	res1Rate    uint64 // port 0
	res2Rate    uint64 // port 1
	beRates     [3]uint64
	unauthRate  uint64 // port 2
	watchSeeded bool   // phase 3: reservations already under det. monitoring
}

// RunTable2 reproduces the three phases of Table 2 and returns the rows in
// the paper's order.
func RunTable2() []Table2Row {
	phases := []t2Phase{
		{res1Rate: t2Res1Kbps, res2Rate: t2Res2Kbps,
			beRates: [3]uint64{0, 39_200_000, 40_000_000}},
		{res1Rate: t2Res1Kbps, res2Rate: t2Res2Kbps,
			beRates: [3]uint64{0, 39_200_000, 20_000_000}, unauthRate: 20_000_000},
		{res1Rate: 40_000_000 /* overusing! */, res2Rate: t2Res2Kbps,
			beRates: [3]uint64{0, 39_200_000, 20_000_000}, unauthRate: 20_000_000,
			watchSeeded: true},
	}
	var rows []Table2Row
	for pi, ph := range phases {
		out := runT2Phase(ph)
		gbps := func(label string) float64 {
			return netsim.GbpsOver(out.ByLabel[label], t2MeasureNs)
		}
		inG := func(kbps uint64) float64 { return float64(kbps) / 1e6 }
		rows = append(rows,
			Table2Row{Phase: pi + 1, Class: "Reservation 1",
				Inputs: [3]float64{inG(ph.res1Rate), 0, 0}, Output: gbps("res1")},
			Table2Row{Phase: pi + 1, Class: "Reservation 2",
				Inputs: [3]float64{0, inG(ph.res2Rate), 0}, Output: gbps("res2")},
			Table2Row{Phase: pi + 1, Class: "Best effort",
				Inputs: [3]float64{inG(ph.beRates[0]), inG(ph.beRates[1]), inG(ph.beRates[2])},
				Output: gbps("be")},
		)
		if ph.unauthRate > 0 {
			rows = append(rows, Table2Row{Phase: pi + 1, Class: "Colibri unauth.",
				Inputs: [3]float64{0, 0, inG(ph.unauthRate)}, Output: gbps("unauth")})
		}
	}
	return rows
}

// runT2Phase simulates one phase and returns the output counter.
func runT2Phase(ph t2Phase) *netsim.Counter {
	sim := netsim.NewSim()
	rng := rand.New(rand.NewSource(2))
	secret := cryptoutil.Key{0x42}
	rt := router.New(router.Config{
		IA:         topology.MustIA(1, 1),
		Secret:     secret,
		PoliceOnly: true,
		Telemetry:  telemetryReg,
	})
	worker := rt.NewWorker()

	sink := netsim.NewCounter()
	outPort := netsim.NewPort(sim, "out", t2LinkKbps, 0, qos.StrictPriority, sink, 0)
	outPort.SetBurst(t2Burst)
	if telemetryReg != nil {
		probe := netsim.NewProbe(sim, telemetryReg, 1e6)
		probe.Watch(outPort)
		probe.Start(t2WarmNs + t2MeasureNs)
	}

	// The router node: validate Colibri packets, classify, enqueue.
	// Bursts arriving via ReceiveBatch run through the batched validation
	// pipeline (Worker.ProcessBatch).
	routerNode := &t2RouterNode{worker: worker, sim: sim, out: outPort}

	st1 := newStamper(secret, 1, t2Res1Kbps, "res1", true, rng)
	st2 := newStamper(secret, 2, t2Res2Kbps, "res2", true, rng)
	stU := newStamper(secret, 3, t2Res2Kbps, "unauth", false, rng)
	if ph.watchSeeded {
		rt.Watch(reservation.ID{SrcAS: st1.res.SrcAS, Num: st1.res.ResID})
		rt.Watch(reservation.ID{SrcAS: st2.res.SrcAS, Num: st2.res.ResID})
	}

	addSrc := func(port int, rate uint64, mk func() *netsim.Packet) {
		if rate == 0 {
			return
		}
		(&netsim.Source{
			Sim: sim, Dst: routerNode, DstPort: port,
			RateKbps: rate, PktBytes: t2PktBytes, StopNs: t2WarmNs + t2MeasureNs,
			Make: mk, Burst: t2Burst,
		}).Start(0)
	}
	addSrc(0, ph.res1Rate, func() *netsim.Packet { return st1.make(workload.EpochNs + sim.Now()) })
	addSrc(1, ph.res2Rate, func() *netsim.Packet { return st2.make(workload.EpochNs + sim.Now()) })
	addSrc(2, ph.unauthRate, func() *netsim.Packet { return stU.make(workload.EpochNs + sim.Now()) })
	for port, rate := range ph.beRates {
		addSrc(port, rate, func() *netsim.Packet {
			return &netsim.Packet{WireSize: t2PktBytes, Class: qos.ClassBE, Meta: "be"}
		})
	}
	sim.Run(t2WarmNs)
	sink.Reset()
	sim.Run(t2WarmNs + t2MeasureNs)
	return sink
}

// t2RouterNode is the router under test as a simulator node: Colibri
// packets run the protection stack, surviving packets (and best-effort
// traffic, which the router only classifies) are enqueued on the output
// port. Bursts are validated through ProcessBatch.
type t2RouterNode struct {
	worker   *router.Worker
	sim      *netsim.Sim
	out      *netsim.Port
	hdrs     [][]byte
	verdicts []router.BatchVerdict
	eer      []*netsim.Packet
}

func (n *t2RouterNode) Receive(pkt *netsim.Packet, _ int) {
	if pkt.Class == qos.ClassEER {
		if _, err := n.worker.Process(pkt.Header, workload.EpochNs+n.sim.Now()); err != nil {
			return // dropped: unauthentic, overuse, …
		}
	}
	n.out.Send(pkt)
}

// ReceiveBatch implements netsim.BatchNode: Colibri packets of the burst
// are validated in one ProcessBatch call.
func (n *t2RouterNode) ReceiveBatch(pkts []*netsim.Packet, _ int) {
	n.hdrs = n.hdrs[:0]
	n.eer = n.eer[:0]
	for _, pkt := range pkts {
		if pkt.Class == qos.ClassEER {
			n.hdrs = append(n.hdrs, pkt.Header)
			n.eer = append(n.eer, pkt)
		} else {
			n.out.Send(pkt)
		}
	}
	if len(n.hdrs) == 0 {
		return
	}
	if cap(n.verdicts) < len(n.hdrs) {
		n.verdicts = make([]router.BatchVerdict, len(n.hdrs))
	}
	n.verdicts = n.verdicts[:len(n.hdrs)]
	n.worker.ProcessBatch(n.hdrs, n.verdicts, workload.EpochNs+n.sim.Now())
	for i, pkt := range n.eer {
		if n.verdicts[i].Err == nil {
			n.out.Send(pkt)
		}
	}
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — data-plane protection [Gbps]\n")
	fmt.Fprintf(&b, "%-7s %-16s %-8s %-8s %-8s %-8s\n",
		"phase", "traffic class", "in 1", "in 2", "in 3", "output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-16s %-8.3f %-8.3f %-8.3f %-8.3f\n",
			r.Phase, r.Class, r.Inputs[0], r.Inputs[1], r.Inputs[2], r.Output)
	}
	return b.String()
}
