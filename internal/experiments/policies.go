package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/policy"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

// The reservation-model head-to-head: the same workload — a population of
// legitimate flows renewing forever on one multi-hop path while an
// adversary floods fresh setups at every renewal instant (the §5.3 DoC
// shape) — driven through each reservation model behind policy.Policy:
//
//   - bounded-tube (the paper): renewals replace the version in place with
//     a lead, so the flood never finds freed bandwidth;
//   - flyover (hop-local, short lifetimes): a renewal IS a fresh setup, so
//     it cannot lead (the overlap would double-charge a full hop) and must
//     race the flood at the expiry boundary — and loses, first-come-first-
//     served;
//   - hummingbird (path-decoupled time slices): an early renewal books the
//     NEXT slice at the current one's end, so the flood probes an
//     already-sold window.
//
// Each cell reports the control-plane cost (setup and renewal latency, hop
// operations) and the outcome under attack (admitted attacker setups,
// surviving legitimate flows, tube utilization). Timings go through the
// package clock seam, so runs under SetClock(StepClock(...)) are
// byte-identical; reservation time is a virtual uint32 clock.

// PoliciesConfig parameterizes the head-to-head. The zero value is filled
// in by defaults.
type PoliciesConfig struct {
	// Flows is the legitimate flow population (default 2000; keep it a
	// multiple of 4×max(Shards) so every tube stripe fits exactly).
	Flows int
	// Hops is the path length (default 4).
	Hops int
	// Waves is the number of 4 s renewal waves under attack (default 6).
	Waves int
	// AttackFlows is the adversary's fresh setups per wave (default 500).
	AttackFlows int
	// Policies lists the models to sweep (default all).
	Policies []string
	// Shards lists the per-AS engine shard counts (default 1, 4).
	Shards []int
}

func (c PoliciesConfig) withDefaults() PoliciesConfig {
	if c.Flows == 0 {
		c.Flows = 2000
	}
	if c.Hops == 0 {
		c.Hops = 4
	}
	if c.Waves == 0 {
		c.Waves = 6
	}
	if c.AttackFlows == 0 {
		c.AttackFlows = 500
	}
	if len(c.Policies) == 0 {
		c.Policies = policy.Names()
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4}
	}
	return c
}

// PoliciesRow is one cell of the sweep.
type PoliciesRow struct {
	Policy string
	Shards int
	Flows  int
	// SetupNs and RenewNs are per-operation latencies over whole phases.
	SetupNs, RenewNs float64
	// HopOps counts every per-hop engine operation the model issued — the
	// inter-domain control-plane load.
	HopOps uint64
	// AttackAdmitted is the total number of adversary setups admitted.
	AttackAdmitted int
	// SurvivorPct is the share of legitimate flows still holding their
	// reservation after the last wave.
	SurvivorPct float64
	// UtilizationPct is peak charged demand over granted tube bandwidth at
	// the end of the run.
	UtilizationPct float64
}

// policiesB is the per-flow demand quantum (kbps).
const policiesB = 100

// policiesPath builds the experiment's linear path (see policy tests for
// the interface convention: in 1, out 2 at every on-path AS).
func policiesPath(hops int, capKbps uint64) ([]*topology.AS, []policy.Hop) {
	topo := topology.New()
	for i := 0; i <= hops+1; i++ {
		topo.AddAS(topology.MustIA(1, topology.ASID(i+1)), true)
	}
	for i := 0; i <= hops; i++ {
		topo.MustConnect(topology.MustIA(1, topology.ASID(i+1)), 2,
			topology.MustIA(1, topology.ASID(i+2)), 1,
			topology.LinkCore, topology.LinkSpec{CapacityKbps: capKbps})
	}
	ases := make([]*topology.AS, hops)
	path := make([]policy.Hop, hops)
	for i := 0; i < hops; i++ {
		a := topo.AS(topology.MustIA(1, topology.ASID(i+2)))
		ases[i] = a
		path[i] = policy.Hop{IA: a.IA, In: 1, Eg: 2}
	}
	return ases, path
}

// RunPolicies sweeps the reservation models over the shard counts.
func RunPolicies(cfg PoliciesConfig) ([]PoliciesRow, error) {
	cfg = cfg.withDefaults()
	var rows []PoliciesRow
	for _, name := range cfg.Policies {
		for _, shards := range cfg.Shards {
			row, err := runPoliciesCell(name, shards, cfg)
			if err != nil {
				return nil, fmt.Errorf("policies %s/%d shards: %w", name, shards, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runPoliciesCell(name string, shards int, cfg PoliciesConfig) (PoliciesRow, error) {
	src := topology.MustIA(1, 99)
	legitID := func(i int) reservation.ID { return reservation.ID{SrcAS: src, Num: uint32(i)} }
	attackID := func(w, i int) reservation.ID {
		return reservation.ID{SrcAS: src, Num: uint32(1<<19 | w*cfg.AttackFlows + i)}
	}
	demand := uint64(cfg.Flows) * policiesB
	// Links far above the tube demand, so the per-shard capacity split never
	// starves a stripe and the provisioned tubes are the binding constraint.
	ases, path := policiesPath(cfg.Hops, demand*8)

	var now uint32 = 1_000_000
	pol, err := policy.New(name, policy.Config{
		ASes:   ases,
		Shards: shards,
		Clock:  func() uint32 { return now },
	})
	if err != nil {
		return PoliciesRow{}, err
	}
	defer pol.Close()
	if err := pol.Provision(path, demand); err != nil {
		return PoliciesRow{}, err
	}

	// Phase 1: the legitimate population fills the tubes exactly.
	start := nowNs()
	for i := 0; i < cfg.Flows; i++ {
		if _, err := pol.Setup(legitID(i), path, policiesB); err != nil {
			return PoliciesRow{}, fmt.Errorf("legit setup %d: %w", i, err)
		}
	}
	setupNs := float64(nowNs()-start) / float64(cfg.Flows)

	// Phase 2: renewal waves under attack. Every model renews once per 4 s
	// wave. Bounded-tube and hummingbird renew with a 2 s lead (in-place
	// replacement / advance booking make that free); a flyover renewal is a
	// fresh setup whose overlap would double-charge the full tubes, so it
	// can only fire at the expiry boundary — AFTER the adversary's flood,
	// which models the DoC race it cannot win by construction.
	live := make([]reservation.ID, cfg.Flows)
	for i := range live {
		live[i] = legitID(i)
	}
	attackAdmitted := 0
	var renewNs, renewOps float64
	renewWave := func() {
		grants := make([]uint64, len(live))
		errs := make([]error, len(live))
		start := nowNs()
		pol.RenewWave(live, grants, errs)
		renewNs += float64(nowNs() - start)
		renewOps += float64(len(live))
		kept := live[:0]
		for i, id := range live {
			if errs[i] == nil {
				kept = append(kept, id)
			}
		}
		live = kept
	}
	for w := 0; w < cfg.Waves; w++ {
		now += 2
		if name != policy.NameFlyover {
			renewWave()
		}
		now += 2 // the expiry boundary: freed bandwidth, if any, is up for grabs
		for i := 0; i < cfg.AttackFlows; i++ {
			if _, err := pol.Setup(attackID(w, i), path, policiesB); err == nil {
				attackAdmitted++
			}
		}
		if name == policy.NameFlyover {
			renewWave()
		}
		pol.Tick()
	}

	// Outcome: survivors and tube utilization from the conservation audit.
	var peak, granted uint64
	for _, a := range pol.Audit(now, now+32) {
		for _, s := range a.Segs {
			peak += s.PeakKbps
			granted += s.GrantKbps
		}
	}
	row := PoliciesRow{
		Policy: name, Shards: shards, Flows: cfg.Flows,
		SetupNs:        setupNs,
		HopOps:         pol.Counts().HopOps,
		AttackAdmitted: attackAdmitted,
		SurvivorPct:    100 * float64(len(live)) / float64(cfg.Flows),
	}
	if renewOps > 0 {
		row.RenewNs = renewNs / renewOps
	}
	if granted > 0 {
		row.UtilizationPct = 100 * float64(peak) / float64(granted)
	}
	return row, nil
}

// FormatPolicies renders the sweep as a markdown table.
func FormatPolicies(rows []PoliciesRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reservation models head-to-head: renewal cost and DoC-flood outcome per policy\n")
	fmt.Fprintf(&b, "| policy | shards | flows | setup µs | renew µs | hop ops | attack admits | survivors %% | util %% |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %.2f | %d | %d | %.1f | %.1f |\n",
			r.Policy, r.Shards, r.Flows, r.SetupNs/1e3, r.RenewNs/1e3,
			r.HopOps, r.AttackAdmitted, r.SurvivorPct, r.UtilizationPct)
	}
	return b.String()
}
