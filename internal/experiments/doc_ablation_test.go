package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestDoCProtection(t *testing.T) {
	rows := RunDoC()
	var setup, renewal DoCRow
	for _, r := range rows {
		switch r.Kind {
		case "initial SegReq":
			setup = r
		case "renewal over SegR":
			renewal = r
		}
	}
	// Renewals over existing reservations are fully isolated from the flood.
	if renewal.Delivered < renewal.Offered*99/100 {
		t.Errorf("renewals delivered %d of %d under flood", renewal.Delivered, renewal.Offered)
	}
	// Best-effort setup requests suffer badly under the 10x flood.
	if setup.Delivered >= setup.Offered/2 {
		t.Errorf("setups delivered %d of %d — flood had no effect?", setup.Delivered, setup.Offered)
	}
	if !strings.Contains(FormatDoC(rows), "denial-of-capability") {
		t.Error("FormatDoC header missing")
	}
}

func TestAblationsRun(t *testing.T) {
	rows := RunAblations(30 * time.Millisecond)
	byStudyVariant := map[string]float64{}
	for _, r := range rows {
		byStudyVariant[r.Study+"/"+r.Variant] = r.Value
	}
	memo := byStudyVariant["admission@10k SegRs/memoized (Colibri)"]
	naive := byStudyVariant["admission@10k SegRs/naive O(n)"]
	if memo <= 0 || naive <= 0 {
		t.Fatal("missing admission rows")
	}
	if naive < 20*memo {
		t.Errorf("naive (%0.f ns) not much slower than memoized (%0.f ns)", naive, memo)
	}
	// Protection stack adds bounded overhead (< 4x of bare crypto).
	bare := byStudyVariant["border-router stack/crypto only"]
	full := byStudyVariant["border-router stack/+ replay + OFD"]
	if bare <= 0 || full <= 0 {
		t.Fatal("missing router-stack rows")
	}
	if full > 4*bare {
		t.Errorf("full stack %0.f ns vs bare %0.f ns — overhead too large", full, bare)
	}
	// Scheduler shares: strict gives EER everything under saturation; DRR
	// approximates 20/5/75.
	if byStudyVariant["scheduler (all classes @40G)/strict/colibri-eer"] < 35 {
		t.Error("strict priority did not give EER the link")
	}
	drrBE := byStudyVariant["scheduler (all classes @40G)/drr/best-effort"]
	if drrBE < 5 || drrBE > 12 {
		t.Errorf("DRR best-effort share %.1f Gbps, want ~8", drrBE)
	}
	if !strings.Contains(FormatAblations(rows), "Ablations") {
		t.Error("FormatAblations header missing")
	}
}
