package experiments

import (
	"fmt"
	"strings"

	"colibri/internal/netsim"
	"colibri/internal/qos"
	"colibri/internal/topology"
	"colibri/internal/workload"
)

// ScaleConfig parameterizes the thousand-AS scale experiment: a generated
// hierarchical topology, one netsim shard per AS, seeded end-to-end flows
// routed hop-by-hop over shortest paths, and an engine sweep (sequential
// baseline plus a list of parallel worker counts). The zero value is filled
// in by defaults (100 ASes, 2 flows per AS, 50 virtual ms).
type ScaleConfig struct {
	// ASes is the approximate topology size; the generator rounds to whole
	// ISDs of 50 ASes (2 cores, 8 providers, 40 leaves).
	ASes int
	// Flows is the number of end-to-end flows (default 2 per AS).
	Flows int
	// RateKbps and PktBytes shape each flow's offered load.
	RateKbps uint64
	PktBytes int
	// DurationNs is the virtual-time length of the run.
	DurationNs int64
	// Seed drives topology choice, flow endpoints, classes, and faults.
	Seed uint64
	// Loss and JitterNs, when non-zero, attach a fault plan to every
	// inter-AS link.
	Loss     float64
	JitterNs int64
	// Workers lists the parallel worker counts to sweep after the
	// sequential baseline (default 1, 2, 4, 8).
	Workers []int
	// Verify first proves the configured scenario bit-identical under both
	// engines with the netsim.RunBoth differential harness.
	Verify bool
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.ASes <= 0 {
		c.ASes = 100
	}
	if c.Flows <= 0 {
		c.Flows = 2 * c.ASes
	}
	if c.RateKbps == 0 {
		c.RateKbps = 8_000
	}
	if c.PktBytes == 0 {
		c.PktBytes = 500
	}
	if c.DurationNs == 0 {
		c.DurationNs = 50e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	return c
}

// scaleSpec sizes the topology generator to roughly n ASes.
func scaleSpec(n int, seed uint64) topology.GenSpec {
	isds := (n + 49) / 50
	if isds < 1 {
		isds = 1
	}
	return topology.GenSpec{
		ISDs:            isds,
		CoresPerISD:     2,
		ProvidersPerISD: 8,
		LeavesPerISD:    40,
		Seed:            int64(seed),
	}
}

// BuildScale constructs the scale scenario into s — one shard per AS, one
// port per directed inter-AS adjacency (capacity and latency from the
// topology link), a shortest-path forwarding node per AS, and a seeded
// source per flow — and returns a function reporting the totals delivered
// to flow destinations (valid after the run).
func BuildScale(cfg ScaleConfig, s *netsim.Sim) (delivered func() (pkts, bytes, drops uint64)) {
	cfg = cfg.withDefaults()
	topo := topology.Generate(scaleSpec(cfg.ASes, cfg.Seed))
	rt := workload.BuildRoutes(topo)
	flows := workload.ScaleFlows(topo, cfg.Flows, cfg.Seed+1)
	n := len(rt.IAs)

	shards := make([]*netsim.Shard, n)
	shards[0] = s.Root()
	for i := 1; i < n; i++ {
		shards[i] = s.NewShard()
	}

	// One port per directed adjacency; towards[i] pairs (neighbor index,
	// port) — linear scan beats a map for the handful of neighbors an AS
	// has, and stays allocation-free per packet.
	type hop struct {
		nbr  int32
		port *netsim.Port
	}
	towards := make([][]hop, n)
	sinkPkts := make([]uint64, n)
	sinkBytes := make([]uint64, n)
	lost := make([]uint64, n) // packets with no route (should stay 0)
	routers := make([]netsim.Node, n)
	var ports []*netsim.Port

	for i := 0; i < n; i++ {
		i := int32(i)
		routers[i] = netsim.NodeFunc(func(pkt *netsim.Packet, _ int) {
			dst := pkt.Meta.(int32)
			if dst == i {
				sinkPkts[i]++
				sinkBytes[i] += uint64(pkt.WireSize)
				return
			}
			next := rt.Next[dst][i]
			if next < 0 {
				lost[i]++
				return
			}
			for _, h := range towards[i] {
				if h.nbr == next {
					h.port.Send(pkt)
					return
				}
			}
			lost[i]++
		})
	}

	for i, ia := range rt.IAs {
		as := topo.AS(ia)
		seen := make(map[int32]bool)
		for _, ifid := range as.SortedIfIDs() {
			intf := as.Interface(ifid)
			j := rt.Index[intf.Neighbor]
			if seen[j] {
				continue // parallel links: first (lowest-ifid) one carries
			}
			seen[j] = true
			p := netsim.NewShardPort(shards[i], fmt.Sprintf("as%d.if%d", i, ifid),
				intf.Link.CapacityKbps, intf.Link.LatencyNs, qos.StrictPriority,
				routers[j], shards[j], 0)
			if cfg.Loss > 0 || cfg.JitterNs > 0 {
				p.SetFaults(netsim.NewFaultPlan(cfg.Seed ^ uint64(i)<<20 ^ uint64(j)).
					SetLoss(cfg.Loss).SetJitter(cfg.JitterNs))
			}
			towards[i] = append(towards[i], hop{nbr: j, port: p})
			ports = append(ports, p)
		}
	}
	_ = ports

	for fi, f := range flows {
		srcIdx := rt.Index[f.Src]
		dstIdx := rt.Index[f.Dst]
		rng := netsim.NewRand(cfg.Seed*2654435761 + uint64(fi))
		src := &netsim.Source{
			Sim:      s,
			Dst:      routers[srcIdx],
			Shard:    shards[srcIdx],
			RateKbps: cfg.RateKbps,
			PktBytes: cfg.PktBytes,
			StopNs:   cfg.DurationNs,
			Make: func() *netsim.Packet {
				return &netsim.Packet{
					WireSize: cfg.PktBytes,
					Class:    qos.Class(rng.Uint64() % uint64(qos.NumClasses)),
					Meta:     dstIdx,
				}
			},
		}
		// Stagger starts inside the first millisecond, seeded.
		src.Start(1 + int64(rng.Uint64()%1_000_000))
	}

	return func() (pkts, bytes, drops uint64) {
		for i := 0; i < n; i++ {
			pkts += sinkPkts[i]
			bytes += sinkBytes[i]
			drops += lost[i]
		}
		for _, p := range ports {
			for _, d := range p.Drops() {
				drops += d
			}
		}
		return
	}
}

// ScaleScenario adapts BuildScale to the netsim differential-harness
// Scenario shape; the digest covers delivered totals (the trace comparison
// inside RunBoth is the strong per-event check).
func ScaleScenario(cfg ScaleConfig) netsim.Scenario {
	return func(s *netsim.Sim) func() string {
		delivered := BuildScale(cfg, s)
		return func() string {
			pkts, bytes, drops := delivered()
			return fmt.Sprintf("pkts=%d bytes=%d drops=%d", pkts, bytes, drops)
		}
	}
}

// ScaleRow is one engine datapoint of the scale sweep.
type ScaleRow struct {
	Mode    string // "seq" or "par/N"
	Workers int
	Events  uint64
	Pkts    uint64
	WallNs  int64
	// EventsPerSec and Mpps are wall-clock throughputs; Speedup is
	// relative to the sequential baseline.
	EventsPerSec float64
	Mpps         float64
	Speedup      float64
}

// ScaleResult is the full scale-experiment output.
type ScaleResult struct {
	ASes, Shards, Flows int
	Rows                []ScaleRow
	Verified            bool
}

// RunScale measures sequential vs parallel engine throughput on the
// configured topology: one sequential baseline, then one run per worker
// count, all simulating the identical scenario (and, with cfg.Verify,
// first proven bit-identical via RunBoth). Wall time is read through the
// package clock seam, so tests can make the figures deterministic.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{ASes: cfg.ASes, Flows: cfg.Flows}

	if cfg.Verify {
		if _, err := netsim.RunBoth(0, cfg.Workers[len(cfg.Workers)-1], ScaleScenario(cfg)); err != nil {
			return nil, fmt.Errorf("seq/par equivalence: %w", err)
		}
		res.Verified = true
	}

	measure := func(mode string, workers int) ScaleRow {
		s := netsim.NewSim()
		if telemetryReg != nil {
			s.SetTelemetry(telemetryReg)
		}
		delivered := BuildScale(cfg, s)
		res.Shards = s.NumShards()
		start := nowNs()
		if workers == 0 {
			s.Run(0)
		} else {
			s.RunParallel(0, workers)
		}
		wall := nowNs() - start
		if wall < 1 {
			wall = 1
		}
		pkts, _, _ := delivered()
		return ScaleRow{
			Mode:         mode,
			Workers:      workers,
			Events:       s.Executed(),
			Pkts:         pkts,
			WallNs:       wall,
			EventsPerSec: float64(s.Executed()) / float64(wall) * 1e9,
			Mpps:         float64(pkts) * 1e3 / float64(wall),
		}
	}

	base := measure("seq", 0)
	base.Speedup = 1
	res.Rows = append(res.Rows, base)
	for _, w := range cfg.Workers {
		row := measure(fmt.Sprintf("par/%d", w), w)
		row.Speedup = float64(base.WallNs) / float64(row.WallNs)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatScale renders the sweep as a markdown table.
func FormatScale(r *ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: %d ASes (%d shards), %d flows%s\n\n",
		r.ASes, r.Shards, r.Flows,
		map[bool]string{true: ", seq/par verified bit-identical", false: ""}[r.Verified])
	fmt.Fprint(&b, "| engine | events | pkts delivered | wall ms | events/s | Mpps | speedup |\n")
	fmt.Fprint(&b, "|--------|--------|----------------|---------|----------|------|--------|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %.1f | %.2fM | %.3f | %.2fx |\n",
			row.Mode, row.Events, row.Pkts, float64(row.WallNs)/1e6,
			row.EventsPerSec/1e6, row.Mpps, row.Speedup)
	}
	return b.String()
}
