//go:build race

package experiments

// raceEnabled reports whether the race detector is active; performance-floor
// assertions are skipped under its ~20× instrumentation overhead.
const raceEnabled = true
