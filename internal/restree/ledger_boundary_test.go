package restree

import "testing"

// Regression tests for the ledger's conservative epoch discretization: a
// window [startT, expT) in seconds is charged over [floor(startT/E),
// ceil(expT/E)) in epochs. The policy layer's time-sliced models
// (Hummingbird slices, flyover generations) lean on two consequences:
//
//   - a window whose endpoints sit ON epoch boundaries is charged exactly,
//     with no widening — so back-to-back slices [t, t+L) and [t+L, t+2L)
//     concatenate seamlessly, never double-charging the handover epoch;
//   - a window whose endpoints sit OFF the boundaries is widened outward
//     (floor the start, ceil the end), so demand is over-counted but never
//     under-counted.
//
// Every case here is an off-by-one that once broken would silently turn
// "conservative" into "leaky".

// TestEpochBoundaryRounding pins EpochOf (floor) and the ceil used by
// window/MaxDemand via observable charges.
func TestEpochBoundaryRounding(t *testing.T) {
	l := NewLedger[int](16, 4)
	if got := l.EpochOf(7); got != 1 {
		t.Errorf("EpochOf(7) = %d, want 1 (floor)", got)
	}
	if got := l.EpochOf(8); got != 2 {
		t.Errorf("EpochOf(8) = %d, want 2 (exact boundary starts its own epoch)", got)
	}
	if got := l.epochCeil(8); got != 2 {
		t.Errorf("epochCeil(8) = %d, want 2 (exact boundary does NOT widen)", got)
	}
	if got := l.epochCeil(9); got != 3 {
		t.Errorf("epochCeil(9) = %d, want 3 (one second past widens a full epoch)", got)
	}
	if got := l.epochCeil(0); got != 0 {
		t.Errorf("epochCeil(0) = %d, want 0", got)
	}
}

// TestAlignedWindowIsExact: endpoints on epoch boundaries charge exactly
// [startT, expT) and nothing outside it.
func TestAlignedWindowIsExact(t *testing.T) {
	l := NewLedger[int](16, 4)
	if err := l.Reserve(1, 8, 16, 100); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   uint32
		want int64
	}{
		{7, 0}, {8, 100}, {11, 100}, {12, 100}, {15, 100}, {16, 0}, {19, 0},
	} {
		if got := l.DemandAt(tc.at); got != tc.want {
			t.Errorf("DemandAt(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
	if got := l.MaxDemand(0, 8); got != 0 {
		t.Errorf("MaxDemand before the window = %d, want 0", got)
	}
	if got := l.MaxDemand(16, 32); got != 0 {
		t.Errorf("MaxDemand after the window = %d, want 0", got)
	}
}

// TestUnalignedWindowWidensOutward: off-boundary endpoints are floored and
// ceiled, so the charge covers MORE seconds than requested — never fewer.
func TestUnalignedWindowWidensOutward(t *testing.T) {
	l := NewLedger[int](16, 4)
	if err := l.Reserve(1, 9, 15, 100); err != nil { // requested [9, 15)
		t.Fatal(err)
	}
	// Charged [8, 16): the widening covers the requested seconds plus the
	// partial epochs on both sides.
	for _, tc := range []struct {
		at   uint32
		want int64
	}{
		{7, 0}, {8, 100}, {9, 100}, {14, 100}, {15, 100}, {16, 0},
	} {
		if got := l.DemandAt(tc.at); got != tc.want {
			t.Errorf("DemandAt(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

// TestSeamlessSliceConcatenation: back-to-back slices under different keys
// (the Hummingbird renewal shape: next slice anchored at the END of the
// current one) hand over on the boundary with no double-charged epoch.
func TestSeamlessSliceConcatenation(t *testing.T) {
	l := NewLedger[int](32, 4)
	if err := l.Reserve(1, 8, 16, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(2, 16, 24, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(3, 24, 32, 100); err != nil {
		t.Fatal(err)
	}
	if got := l.MaxDemand(8, 32); got != 100 {
		t.Errorf("MaxDemand over three seamless slices = %d, want 100 (no handover double-charge)", got)
	}
	if got := l.DemandAt(16); got != 100 {
		t.Errorf("DemandAt(handover 16) = %d, want 100", got)
	}
	if got := l.DemandAt(24); got != 100 {
		t.Errorf("DemandAt(handover 24) = %d, want 100", got)
	}
}

// TestOverlappingSlicesDoubleChargeTheSharedEpoch: slices that miss the
// boundary by one second DO stack on the shared epoch — that over-count is
// the conservative behavior (and the flyover early-renewal cost).
func TestOverlappingSlicesDoubleChargeTheSharedEpoch(t *testing.T) {
	l := NewLedger[int](32, 4)
	if err := l.Reserve(1, 8, 16, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(2, 15, 23, 100); err != nil { // one second early
		t.Fatal(err)
	}
	if got := l.DemandAt(15); got != 200 {
		t.Errorf("DemandAt(15) = %d, want 200 (epoch [12,16) charged by both)", got)
	}
	if got := l.DemandAt(12); got != 200 {
		t.Errorf("DemandAt(12) = %d, want 200 (floor widening reaches back to 12)", got)
	}
	if got := l.DemandAt(16); got != 100 {
		t.Errorf("DemandAt(16) = %d, want 100 (only the second slice)", got)
	}
}

// TestWidthOneWindows: the narrowest windows, aligned and not.
func TestWidthOneWindows(t *testing.T) {
	l := NewLedger[int](16, 4)
	// Sub-epoch window [9, 10) still charges its whole epoch [8, 12).
	if err := l.Reserve(1, 9, 10, 50); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   uint32
		want int64
	}{
		{7, 0}, {8, 50}, {11, 50}, {12, 0},
	} {
		if got := l.DemandAt(tc.at); got != tc.want {
			t.Errorf("DemandAt(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
	// A one-epoch aligned window right after it: no overlap.
	if err := l.Reserve(2, 12, 16, 50); err != nil {
		t.Fatal(err)
	}
	if got := l.MaxDemand(8, 16); got != 50 {
		t.Errorf("MaxDemand(8,16) = %d, want 50", got)
	}
}

// TestEmptyAndOversizedWindows: degenerate windows are refused, and the
// horizon check counts widened epochs, not seconds.
func TestEmptyAndOversizedWindows(t *testing.T) {
	l := NewLedger[int](8, 4) // horizon: 8 epochs = 32 s
	if err := l.Reserve(1, 8, 8, 10); err != ErrWindow {
		t.Errorf("empty window err = %v, want ErrWindow", err)
	}
	if err := l.Reserve(1, 9, 8, 10); err != ErrWindow {
		t.Errorf("inverted window err = %v, want ErrWindow", err)
	}
	// [8, 9) is sub-second-count but non-empty after widening: allowed.
	if err := l.Reserve(1, 8, 9, 10); err != nil {
		t.Errorf("[8,9) err = %v, want nil (widens to one epoch)", err)
	}
	l.Teardown(1)
	// Exactly the horizon: allowed.
	if err := l.Reserve(2, 0, 32, 10); err != nil {
		t.Errorf("horizon-wide window err = %v, want nil", err)
	}
	l.Teardown(2)
	// One second past the horizon: the ceil widens to 9 epochs — refused.
	if err := l.Reserve(3, 0, 33, 10); err != ErrWindow {
		t.Errorf("horizon+1s err = %v, want ErrWindow (ceil widening counts)", err)
	}
	// Unaligned start claws back a whole epoch: [3, 33) is 30 s of request
	// but floor(3)..ceil(33) = 9 epochs — refused.
	if err := l.Reserve(3, 3, 33, 10); err != ErrWindow {
		t.Errorf("unaligned horizon err = %v, want ErrWindow (floor widening counts)", err)
	}
}

// TestAdvanceAtTheBoundary: an entry charged over [start, end) epochs is
// released exactly when the clock's epoch reaches `end` — not an epoch
// early, not an epoch late.
func TestAdvanceAtTheBoundary(t *testing.T) {
	l := NewLedger[int](16, 4)
	if err := l.Reserve(1, 8, 16, 100); err != nil {
		t.Fatal(err)
	}
	if n := l.Advance(15); n != 0 {
		t.Errorf("Advance(15) released %d, want 0 (final epoch [12,16) still running)", n)
	}
	if got := l.DemandAt(15); got != 100 {
		t.Errorf("DemandAt(15) after early Advance = %d, want 100", got)
	}
	if n := l.Advance(16); n != 1 {
		t.Errorf("Advance(16) released %d, want 1 (epoch 4 reached the entry's end)", n)
	}
	if got := l.MaxDemand(8, 32); got != 0 {
		t.Errorf("MaxDemand after release = %d, want 0", got)
	}
	if err := l.Renew(1, 16, 24, 100); err != ErrUnknown {
		t.Errorf("Renew after release err = %v, want ErrUnknown", err)
	}
	// Unaligned expiry: [8, 17) is charged through epoch [16, 20), so the
	// entry survives Advance(19) and dies at Advance(20).
	if err := l.Reserve(2, 8, 17, 100); err != nil {
		t.Fatal(err)
	}
	if n := l.Advance(19); n != 0 {
		t.Errorf("Advance(19) released %d, want 0 (ceil-widened tail epoch)", n)
	}
	if n := l.Advance(20); n != 1 {
		t.Errorf("Advance(20) released %d, want 1", n)
	}
}

// TestRenewTruncatesAtTakeover: a renewal replaces the old charge in one
// step — where the versions would overlap, the epoch is charged once.
func TestRenewTruncatesAtTakeover(t *testing.T) {
	l := NewLedger[int](16, 4)
	if err := l.Reserve(1, 8, 16, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(1, 12, 20, 100); err != nil {
		t.Fatal(err)
	}
	if got := l.DemandAt(12); got != 100 {
		t.Errorf("DemandAt(12) = %d, want 100 (old version fully replaced, not stacked)", got)
	}
	if got := l.DemandAt(8); got != 0 {
		t.Errorf("DemandAt(8) = %d, want 0 (pre-takeover charge withdrawn)", got)
	}
	if got := l.DemandAt(19); got != 100 {
		t.Errorf("DemandAt(19) = %d, want 100 (renewed tail)", got)
	}
}
