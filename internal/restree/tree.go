// Package restree implements the time-based bandwidth-reservation data
// structure of Brodnik & Nilsson ("A Data Structure for a Time-Based
// Bandwidth Reservations Problem"), adapted to Colibri's control plane:
//
// Time is discretized into fixed-width epochs. A segment tree over one
// "horizon" of epochs supports adding a bandwidth demand over an epoch
// interval and querying the maximum aggregate demand over any interval, both
// in O(log n). Each tree node carries a pending add that applies to its whole
// subtree (range-add without push-down) and the maximum over the subtree
// including that add, so updates never allocate and never touch more than
// 2·log n nodes.
//
// Admission over a request window [start, exp) then becomes a single
// MaxDemand query instead of a recomputation over all live reservations —
// this is what turns Colibri's §4 bounded-tube admission into an O(log n)
// operation (package admission's RestreeState) and what lets the sharded
// CServ (cserv.CPlane) absorb millions of end-to-end reservations.
//
// The leaf array is a ring: absolute epoch e maps to leaf e mod n. A tree
// therefore represents any sliding window of at most n consecutive epochs.
// Correctness does not require zeroing stale leaves: every interval that is
// added is later subtracted exactly once (on teardown, renewal truncation, or
// expiry), so a leaf's value is always the sum of the *live* intervals
// covering its current absolute epoch.
package restree

// Epoch is an absolute, non-negative epoch number (time divided by the epoch
// width). Intervals are half-open: [start, end).
type Epoch int64

// Tree is a range-add / range-max segment tree over a ring of epochs. The
// zero value is not usable; use NewTree. Not safe for concurrent use —
// callers (admission shards) hold their own locks.
type Tree struct {
	n   int     // number of leaves, power of two
	add []int64 // pending add per node, applied to the whole subtree
	mx  []int64 // max over the subtree, including add at and below the node
}

// NewTree returns a tree spanning at least the given number of epochs
// (rounded up to a power of two, minimum 2).
func NewTree(epochs int) *Tree {
	n := 2
	for n < epochs {
		n <<= 1
	}
	return &Tree{n: n, add: make([]int64, 2*n), mx: make([]int64, 2*n)}
}

// Epochs returns the number of epochs the tree spans (its ring size).
func (t *Tree) Epochs() int { return t.n }

// check panics on malformed intervals; misuse is a programming error and the
// constant-string panic keeps the hot path allocation-free. It stays out of
// line so the panic values are not attributed to the nomalloc-annotated
// callers (escape analysis reports even statically-allocated panic strings
// as escaping).
//
//go:noinline
func (t *Tree) check(start, end Epoch) {
	if start < 0 {
		panic("restree: negative epoch")
	}
	if end <= start {
		panic("restree: empty or inverted interval")
	}
	if int(end-start) > t.n {
		panic("restree: interval exceeds tree horizon")
	}
}

// wrap maps the absolute interval [start, end) onto one or two leaf-index
// ranges; the second range is empty (l2 == r2 == 0) when the interval does
// not wrap around the ring.
func (t *Tree) wrap(start, end Epoch) (l1, r1, l2, r2 int) {
	span := int(end - start)
	l1 = int(start) & (t.n - 1)
	if l1+span <= t.n {
		return l1, l1 + span, 0, 0
	}
	return l1, t.n, 0, l1 + span - t.n
}

// Add adds delta to every epoch in [start, end). The interval span must be
// positive and at most Epochs().
//
//colibri:nomalloc
func (t *Tree) Add(start, end Epoch, delta int64) {
	t.check(start, end)
	l1, r1, l2, r2 := t.wrap(start, end)
	t.update(1, 0, t.n, l1, r1, delta)
	if l2 < r2 {
		t.update(1, 0, t.n, l2, r2, delta)
	}
}

// AddAll adds delta to every epoch of the ring in O(1) — the representation
// of an untimed reservation.
//
//colibri:nomalloc
func (t *Tree) AddAll(delta int64) {
	t.add[1] += delta
	t.mx[1] += delta
}

// Max returns the maximum aggregate over [start, end).
//
//colibri:nomalloc
func (t *Tree) Max(start, end Epoch) int64 {
	t.check(start, end)
	l1, r1, l2, r2 := t.wrap(start, end)
	m := t.query(1, 0, t.n, l1, r1)
	if l2 < r2 {
		if m2 := t.query(1, 0, t.n, l2, r2); m2 > m {
			m = m2
		}
	}
	return m
}

// MaxAll returns the maximum aggregate over the whole ring in O(1).
//
//colibri:nomalloc
func (t *Tree) MaxAll() int64 { return t.mx[1] }

// At returns the aggregate demand at a single epoch.
//
//colibri:nomalloc
func (t *Tree) At(e Epoch) int64 { return t.Max(e, e+1) }

// Snapshot calls f for every epoch in [start, end) with the epoch's aggregate
// demand, in ascending epoch order — the telemetry iterator. It allocates
// nothing itself; f must not mutate the tree.
func (t *Tree) Snapshot(start, end Epoch, f func(e Epoch, demand int64)) {
	t.check(start, end)
	for e := start; e < end; e++ {
		f(e, t.At(e))
	}
}

// update adds delta over leaf range [l, r) below node (covering [lo, hi)).
func (t *Tree) update(node, lo, hi, l, r int, delta int64) {
	if r <= lo || hi <= l {
		return
	}
	if l <= lo && hi <= r {
		t.add[node] += delta
		t.mx[node] += delta
		return
	}
	mid := (lo + hi) >> 1
	t.update(2*node, lo, mid, l, r, delta)
	t.update(2*node+1, mid, hi, l, r, delta)
	m := t.mx[2*node]
	if t.mx[2*node+1] > m {
		m = t.mx[2*node+1]
	}
	t.mx[node] = m + t.add[node]
}

// query returns the max over the intersection of [l, r) with the node's
// range [lo, hi); the intersection is non-empty by construction.
func (t *Tree) query(node, lo, hi, l, r int) int64 {
	if l <= lo && hi <= r {
		return t.mx[node]
	}
	mid := (lo + hi) >> 1
	if r <= mid {
		return t.query(2*node, lo, mid, l, r) + t.add[node]
	}
	if l >= mid {
		return t.query(2*node+1, mid, hi, l, r) + t.add[node]
	}
	a := t.query(2*node, lo, mid, l, r)
	if b := t.query(2*node+1, mid, hi, l, r); b > a {
		a = b
	}
	return a + t.add[node]
}
