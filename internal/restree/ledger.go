package restree

import "errors"

// Ledger errors. Sentinels (no fmt wrapping) keep the steady-state path
// allocation-free.
var (
	// ErrExists is returned by Reserve for a key that already holds a
	// reservation.
	ErrExists = errors.New("restree: reservation already exists")
	// ErrUnknown is returned by Renew for a key with no live reservation.
	ErrUnknown = errors.New("restree: unknown reservation")
	// ErrWindow is returned when a reservation's validity window is empty or
	// longer than the ledger horizon.
	ErrWindow = errors.New("restree: invalid reservation window")
)

// lentry is one live reservation: its charged epoch interval and bandwidth.
type lentry struct {
	start, end Epoch
	bw         int64
	seq        uint64
}

// lexp is one expiry-heap element. Heap entries are lazy: a renewal or
// teardown leaves the old element in place, and Advance discards elements
// whose seq no longer matches the live entry.
type lexp[K comparable] struct {
	end Epoch
	seq uint64
	key K
}

// Ledger tracks a set of keyed, time-bounded bandwidth reservations over one
// Tree: Reserve/Renew/Teardown update the demand profile in O(log n),
// MaxDemand answers the admission query for a window, and Advance releases
// expired reservations deterministically in (expiry epoch, admission order)
// order. Not safe for concurrent use.
type Ledger[K comparable] struct {
	tree     *Tree
	epochSec uint32
	entries  map[K]lentry
	seq      uint64
	heap     []lexp[K] // min-heap by (end, seq)
}

// NewLedger builds a ledger over a tree of at least `epochs` epochs, each
// epochSeconds wide (minimum 1).
func NewLedger[K comparable](epochs int, epochSeconds uint32) *Ledger[K] {
	if epochSeconds == 0 {
		epochSeconds = 1
	}
	return &Ledger[K]{
		tree:     NewTree(epochs),
		epochSec: epochSeconds,
		entries:  make(map[K]lentry),
	}
}

// EpochOf returns the epoch containing time t (Unix seconds).
func (l *Ledger[K]) EpochOf(t uint32) Epoch { return Epoch(t / l.epochSec) }

// epochCeil rounds t up to an epoch boundary, so a reservation stays charged
// until the whole epoch containing its expiry has passed (conservative
// discretization: demand is never under-counted).
func (l *Ledger[K]) epochCeil(t uint32) Epoch {
	return Epoch((uint64(t) + uint64(l.epochSec) - 1) / uint64(l.epochSec))
}

// window maps [startT, expT) in seconds to a validated epoch interval.
func (l *Ledger[K]) window(startT, expT uint32) (Epoch, Epoch, error) {
	start := l.EpochOf(startT)
	end := l.epochCeil(expT)
	if end <= start || int(end-start) > l.tree.Epochs() {
		return 0, 0, ErrWindow
	}
	return start, end, nil
}

// Reserve charges bw over the window [startT, expT) under the given key.
//
//colibri:nomalloc
func (l *Ledger[K]) Reserve(key K, startT, expT uint32, bw int64) error {
	if _, ok := l.entries[key]; ok {
		return ErrExists
	}
	start, end, err := l.window(startT, expT)
	if err != nil {
		return err
	}
	l.tree.Add(start, end, bw)
	l.seq++
	l.entries[key] = lentry{start: start, end: end, bw: bw, seq: l.seq}
	l.heap = append(l.heap, lexp[K]{end: end, seq: l.seq, key: key})
	l.siftUp(len(l.heap) - 1)
	return nil
}

// Renew replaces the key's charge with a new window and bandwidth — the
// seamless transition of §4.2: the old version is truncated at the moment the
// renewal takes over, so overlapping versions are never double-charged.
//
//colibri:nomalloc
func (l *Ledger[K]) Renew(key K, startT, expT uint32, bw int64) error {
	e, ok := l.entries[key]
	if !ok {
		return ErrUnknown
	}
	start, end, err := l.window(startT, expT)
	if err != nil {
		return err
	}
	l.tree.Add(e.start, e.end, -e.bw)
	l.tree.Add(start, end, bw)
	l.seq++
	l.entries[key] = lentry{start: start, end: end, bw: bw, seq: l.seq}
	l.heap = append(l.heap, lexp[K]{end: end, seq: l.seq, key: key})
	l.siftUp(len(l.heap) - 1)
	return nil
}

// Teardown removes the key's charge; it reports whether the key was live.
//
//colibri:nomalloc
func (l *Ledger[K]) Teardown(key K) bool {
	e, ok := l.entries[key]
	if !ok {
		return false
	}
	l.tree.Add(e.start, e.end, -e.bw)
	delete(l.entries, key)
	return true
}

// Get returns the live charge for a key.
func (l *Ledger[K]) Get(key K) (bw int64, ok bool) {
	e, ok := l.entries[key]
	return e.bw, ok
}

// MaxDemand returns the maximum aggregate demand over the window
// [fromT, toT) — the admission query.
//
//colibri:nomalloc
func (l *Ledger[K]) MaxDemand(fromT, toT uint32) int64 {
	start := l.EpochOf(fromT)
	end := l.epochCeil(toT)
	if end <= start {
		end = start + 1
	}
	return l.tree.Max(start, end)
}

// DemandAt returns the aggregate demand at time t.
//
//colibri:nomalloc
func (l *Ledger[K]) DemandAt(t uint32) int64 { return l.tree.At(l.EpochOf(t)) }

// Advance releases every reservation whose window ended at or before `now`,
// in (expiry epoch, admission order) order, and returns how many were
// released. A reservation charged over [start, end) expires once the epoch
// containing `now` has reached end.
//
//colibri:nomalloc
func (l *Ledger[K]) Advance(now uint32) int {
	cur := l.EpochOf(now)
	released := 0
	for len(l.heap) > 0 && l.heap[0].end <= cur {
		top := l.heap[0]
		l.popHeap()
		e, ok := l.entries[top.key]
		if !ok || e.seq != top.seq {
			continue // stale element left by a renewal or teardown
		}
		l.tree.Add(e.start, e.end, -e.bw)
		delete(l.entries, top.key)
		released++
	}
	return released
}

// Len returns the number of live reservations.
func (l *Ledger[K]) Len() int { return len(l.entries) }

// Snapshot iterates the demand profile over [fromT, toT) per epoch — the
// telemetry iterator.
func (l *Ledger[K]) Snapshot(fromT, toT uint32, f func(e Epoch, demand int64)) {
	start := l.EpochOf(fromT)
	end := l.epochCeil(toT)
	if end <= start {
		end = start + 1
	}
	l.tree.Snapshot(start, end, f)
}

// less orders heap elements by (end, seq); seq is unique per element.
func (l *Ledger[K]) less(i, j int) bool {
	if l.heap[i].end != l.heap[j].end {
		return l.heap[i].end < l.heap[j].end
	}
	return l.heap[i].seq < l.heap[j].seq
}

func (l *Ledger[K]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !l.less(i, p) {
			return
		}
		l.heap[i], l.heap[p] = l.heap[p], l.heap[i]
		i = p
	}
}

func (l *Ledger[K]) popHeap() {
	last := len(l.heap) - 1
	l.heap[0] = l.heap[last]
	var zero lexp[K]
	l.heap[last] = zero
	l.heap = l.heap[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			return
		}
		if c+1 < last && l.less(c+1, c) {
			c++
		}
		if !l.less(c, i) {
			return
		}
		l.heap[i], l.heap[c] = l.heap[c], l.heap[i]
		i = c
	}
}
