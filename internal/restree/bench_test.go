package restree

import (
	"fmt"
	"testing"
)

func BenchmarkTreeAddMax(b *testing.B) {
	for _, epochs := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("epochs=%d", epochs), func(b *testing.B) {
			tr := NewTree(epochs)
			b.ReportAllocs()
			e := Epoch(0)
			span := Epoch(epochs - 8)
			for i := 0; i < b.N; i++ {
				tr.Add(e, e+span, 100)
				_ = tr.Max(e, e+span)
				tr.Add(e, e+span, -100)
				e++
			}
		})
	}
}

func BenchmarkLedgerChurn(b *testing.B) {
	for _, keys := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			l := NewLedger[int](64, 1)
			now := uint32(100)
			for k := 0; k < keys; k++ {
				if err := l.Reserve(k, now, now+16, int64(k%1000+1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % keys
				if k == 0 {
					now += 8
					l.Advance(now)
				}
				if err := l.Renew(k, now, now+16, int64(k%1000+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
