package restree

import (
	"math/rand"
	"testing"
)

// refRing is the brute-force reference: a plain ring of per-epoch sums.
type refRing struct {
	n    int
	vals []int64
}

func newRefRing(n int) *refRing { return &refRing{n: n, vals: make([]int64, n)} }

func (r *refRing) add(start, end Epoch, delta int64) {
	for e := start; e < end; e++ {
		r.vals[int(e)%r.n] += delta
	}
}

func (r *refRing) max(start, end Epoch) int64 {
	m := r.vals[int(start)%r.n]
	for e := start; e < end; e++ {
		if v := r.vals[int(e)%r.n]; v > m {
			m = v
		}
	}
	return m
}

// TestTreeMatchesBruteForce drives random balanced add/subtract intervals
// (including ring-wrapping ones) and checks every Max/At query against the
// reference ring.
func TestTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const epochs = 64
	tr := NewTree(epochs)
	if tr.Epochs() != epochs {
		t.Fatalf("Epochs() = %d, want %d", tr.Epochs(), epochs)
	}
	ref := newRefRing(tr.Epochs())

	type ival struct {
		start, end Epoch
		bw         int64
	}
	var live []ival
	base := Epoch(0)
	for op := 0; op < 5000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			// Add an interval starting in the current window.
			start := base + Epoch(rng.Intn(8))
			span := Epoch(1 + rng.Intn(tr.Epochs()-9))
			bw := int64(1 + rng.Intn(1000))
			tr.Add(start, start+span, bw)
			ref.add(start, start+span, bw)
			live = append(live, ival{start, start + span, bw})
		default:
			// Remove a random live interval (balanced subtraction).
			i := rng.Intn(len(live))
			iv := live[i]
			tr.Add(iv.start, iv.end, -iv.bw)
			ref.add(iv.start, iv.end, -iv.bw)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Advance the window occasionally, dropping intervals that ended.
		if rng.Intn(8) == 0 {
			base += Epoch(rng.Intn(4))
			kept := live[:0]
			for _, iv := range live {
				if iv.end <= base {
					tr.Add(iv.start, iv.end, -iv.bw)
					ref.add(iv.start, iv.end, -iv.bw)
					continue
				}
				kept = append(kept, iv)
			}
			live = kept
		}
		// Random window query anchored at the current base.
		qs := base + Epoch(rng.Intn(4))
		qe := qs + Epoch(1+rng.Intn(tr.Epochs()-5))
		if got, want := tr.Max(qs, qe), ref.max(qs, qe); got != want {
			t.Fatalf("op %d: Max(%d,%d) = %d, want %d", op, qs, qe, got, want)
		}
		if got, want := tr.At(qs), ref.max(qs, qs+1); got != want {
			t.Fatalf("op %d: At(%d) = %d, want %d", op, qs, got, want)
		}
	}
}

func TestTreeAddAll(t *testing.T) {
	tr := NewTree(16)
	tr.AddAll(100)
	tr.Add(3, 7, 50)
	if got := tr.MaxAll(); got != 150 {
		t.Fatalf("MaxAll = %d, want 150", got)
	}
	if got := tr.Max(8, 12); got != 100 {
		t.Fatalf("Max outside timed interval = %d, want 100", got)
	}
	if got := tr.At(4); got != 150 {
		t.Fatalf("At(4) = %d, want 150", got)
	}
	tr.AddAll(-100)
	tr.Add(3, 7, -50)
	if got := tr.MaxAll(); got != 0 {
		t.Fatalf("MaxAll after balanced removal = %d, want 0", got)
	}
}

func TestTreeWrapAround(t *testing.T) {
	tr := NewTree(8)
	// [14, 19) wraps: leaves 6,7,0,1,2.
	tr.Add(14, 19, 5)
	if got := tr.Max(14, 19); got != 5 {
		t.Fatalf("wrapped Max = %d, want 5", got)
	}
	if got := tr.At(16); got != 5 {
		t.Fatalf("At(16) = %d, want 5 (leaf 0)", got)
	}
	// Epoch 19..22 (leaves 3,4,5) are uncovered.
	if got := tr.Max(19, 22); got != 0 {
		t.Fatalf("Max over uncovered = %d, want 0", got)
	}
	tr.Add(14, 19, -5)
	if got := tr.MaxAll(); got != 0 {
		t.Fatalf("MaxAll after removal = %d, want 0", got)
	}
}

func TestTreeSnapshot(t *testing.T) {
	tr := NewTree(8)
	tr.Add(2, 5, 7)
	var epochs []Epoch
	var vals []int64
	tr.Snapshot(1, 6, func(e Epoch, d int64) {
		epochs = append(epochs, e)
		vals = append(vals, d)
	})
	wantE := []Epoch{1, 2, 3, 4, 5}
	wantV := []int64{0, 7, 7, 7, 0}
	for i := range wantE {
		if epochs[i] != wantE[i] || vals[i] != wantV[i] {
			t.Fatalf("snapshot[%d] = (%d,%d), want (%d,%d)", i, epochs[i], vals[i], wantE[i], wantV[i])
		}
	}
}

func TestTreePanicsOnBadInterval(t *testing.T) {
	tr := NewTree(8)
	for _, tc := range []struct {
		name       string
		start, end Epoch
	}{
		{"empty", 4, 4},
		{"inverted", 5, 3},
		{"too-long", 0, 9},
		{"negative", -1, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Add(%d,%d) did not panic", tc.name, tc.start, tc.end)
				}
			}()
			tr.Add(tc.start, tc.end, 1)
		}()
	}
}

// TestTreeZeroAlloc verifies the steady-state operations allocate nothing.
func TestTreeZeroAlloc(t *testing.T) {
	tr := NewTree(128)
	e := Epoch(1000)
	if n := testing.AllocsPerRun(100, func() {
		tr.Add(e, e+75, 500)
		_ = tr.Max(e, e+75)
		_ = tr.At(e + 10)
		tr.Add(e, e+75, -500)
		e += 3
	}); n != 0 {
		t.Fatalf("steady-state tree ops allocate %.1f/op, want 0", n)
	}
}
