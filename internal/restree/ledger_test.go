package restree

import (
	"errors"
	"testing"
)

func TestLedgerReserveRenewTeardown(t *testing.T) {
	l := NewLedger[uint64](64, 4)

	if err := l.Reserve(1, 100, 116, 500); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Reserve(1, 100, 116, 500); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Reserve err = %v, want ErrExists", err)
	}
	if err := l.Renew(2, 100, 116, 10); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Renew unknown err = %v, want ErrUnknown", err)
	}
	if got := l.MaxDemand(100, 116); got != 500 {
		t.Fatalf("MaxDemand = %d, want 500", got)
	}
	if err := l.Reserve(2, 104, 120, 300); err != nil {
		t.Fatalf("Reserve 2: %v", err)
	}
	// Overlap [104,116) carries both.
	if got := l.MaxDemand(100, 120); got != 800 {
		t.Fatalf("MaxDemand overlap = %d, want 800", got)
	}
	// Renewal truncates: key 1 moves to [108, 124) at 400 — the old tail
	// [108,116) must not double-charge.
	if err := l.Renew(1, 108, 124, 400); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if got := l.MaxDemand(108, 120); got != 700 {
		t.Fatalf("MaxDemand after renew = %d, want 700 (400+300)", got)
	}
	if !l.Teardown(2) {
		t.Fatal("Teardown(2) = false, want true")
	}
	if l.Teardown(2) {
		t.Fatal("second Teardown(2) = true, want false")
	}
	if got := l.MaxDemand(100, 124); got != 400 {
		t.Fatalf("MaxDemand after teardown = %d, want 400", got)
	}
	if bw, ok := l.Get(1); !ok || bw != 400 {
		t.Fatalf("Get(1) = (%d,%v), want (400,true)", bw, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestLedgerWindowValidation(t *testing.T) {
	l := NewLedger[int](16, 4)
	if err := l.Reserve(1, 100, 100, 5); !errors.Is(err, ErrWindow) {
		t.Fatalf("empty window err = %v, want ErrWindow", err)
	}
	if err := l.Reserve(1, 100, 100+16*4+1, 5); !errors.Is(err, ErrWindow) {
		t.Fatalf("over-horizon window err = %v, want ErrWindow", err)
	}
}

// TestLedgerAdvance checks expiry at exact epoch boundaries: a reservation
// over [startT, expT) with epoch width 4 is charged through the epoch
// containing expT-1 and released once now reaches ceil(expT/4)*4.
func TestLedgerAdvance(t *testing.T) {
	l := NewLedger[int](64, 4)
	if err := l.Reserve(1, 100, 114, 10); err != nil { // epochs [25, 29)
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Reserve(2, 100, 116, 20); err != nil { // epochs [25, 29)
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Reserve(3, 100, 130, 40); err != nil { // epochs [25, 33)
		t.Fatalf("Reserve: %v", err)
	}
	if n := l.Advance(115); n != 0 {
		t.Fatalf("Advance(115) released %d, want 0 (epoch 28 < end 29)", n)
	}
	// now=116 is epoch 29: both [25,29) reservations expire, in admission
	// order.
	if n := l.Advance(116); n != 2 {
		t.Fatalf("Advance(116) released %d, want 2", n)
	}
	if got := l.MaxDemand(116, 130); got != 40 {
		t.Fatalf("MaxDemand after advance = %d, want 40", got)
	}
	if n := l.Advance(132); n != 1 {
		t.Fatalf("Advance(132) released %d, want 1", n)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
}

// TestLedgerAdvanceSkipsStale: renewing leaves a stale heap element behind;
// Advance must not release the renewed reservation at the old expiry.
func TestLedgerAdvanceSkipsStale(t *testing.T) {
	l := NewLedger[int](64, 1)
	if err := l.Reserve(1, 10, 20, 5); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Renew(1, 15, 40, 5); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if n := l.Advance(25); n != 0 {
		t.Fatalf("Advance(25) released %d, want 0 (renewed to 40)", n)
	}
	if n := l.Advance(40); n != 1 {
		t.Fatalf("Advance(40) released %d, want 1", n)
	}
}

func TestLedgerSnapshot(t *testing.T) {
	l := NewLedger[int](16, 2)
	if err := l.Reserve(1, 4, 8, 9); err != nil { // epochs [2,4)
		t.Fatalf("Reserve: %v", err)
	}
	var got []int64
	l.Snapshot(2, 10, func(e Epoch, d int64) { got = append(got, d) })
	want := []int64{0, 9, 9, 0} // epochs 1..4
	if len(got) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestLedgerZeroAllocSteadyState: a renew/advance churn loop at fixed
// population must not allocate (the heap reuses capacity freed by pops).
func TestLedgerZeroAllocSteadyState(t *testing.T) {
	l := NewLedger[int](64, 1)
	now := uint32(100)
	for k := 0; k < 32; k++ {
		if err := l.Reserve(k, now, now+16, int64(10+k)); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	// Warm up heap capacity through a few full renewal waves.
	for w := 0; w < 4; w++ {
		now += 8
		l.Advance(now)
		for k := 0; k < 32; k++ {
			if err := l.Renew(k, now, now+16, int64(10+k)); err != nil {
				t.Fatalf("warmup Renew: %v", err)
			}
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		now += 8
		l.Advance(now)
		for k := 0; k < 32; k++ {
			if err := l.Renew(k, now, now+16, int64(10+k)); err != nil {
				t.Fatal("Renew failed")
			}
		}
		_ = l.MaxDemand(now, now+16)
	}); n != 0 {
		t.Fatalf("steady-state ledger churn allocates %.1f/run, want 0", n)
	}
}
