package policy

import "testing"

// FuzzPolicyEquivalence fuzzes the overlap region of the three reservation
// models: random op tapes (setups, boundary renewals, teardowns, clock
// advances, lazy-expiry ticks) over random shard counts, slot counts and
// lifetimes must produce identical admit/refuse decisions, identical grants,
// identical surviving flow sets and a byte-identical conservation audit.
// The seeds mirror FuzzAdmissionEquivalence's corpus shape: epoch-boundary
// tapes (renewals landing exactly when the old window lapses) and
// zero-grant tapes (a full tube refusing everything) are the two regions
// where the models' arithmetic is most likely to drift apart.
func FuzzPolicyEquivalence(f *testing.F) {
	// Epoch-boundary seed: fill the tube, advance exactly one lifetime,
	// renew everything at the boundary, then admit into freed space.
	f.Add([]byte{
		0, 1, 0, 0, // shards=1, slots=2, life=4
		0, 0, 0, 0, // setup
		0, 0, 0, 0, // setup
		6, 0, 0, 0, // advance +4 (the exact boundary)
		3, 0, 0, 0, // renew
		3, 0, 0, 0, // renew
		0, 0, 0, 0, // setup (refused: tube full)
		7, 0, 0, 0, // tick
	})
	// Zero-grant seed: a one-slot tube refusing a burst, then recovering.
	f.Add([]byte{
		0, 0, 0, 0, // shards=1, slots=1, life=4
		0, 0, 0, 0, // setup (admitted)
		0, 0, 0, 0, // setup (refused)
		0, 0, 0, 0, // setup (refused)
		6, 1, 0, 0, // advance +8 (slot lapsed unrenewed)
		7, 0, 0, 0, // tick (prunes the lapsed flow)
		0, 0, 0, 0, // setup (admitted into recovered space)
	})
	// Contention seed: renewal races a competing setup at the boundary.
	f.Add([]byte{
		0, 0, 0, 0, // shards=1, slots=1, life=4
		0, 0, 0, 0, // setup
		6, 0, 0, 0, // advance +4
		0, 0, 0, 0, // setup (thief: lands first, takes the slot)
		3, 0, 0, 0, // renew (refused, flow dies)
		7, 0, 0, 0, // tick
	})
	// Churn seed: interleaved teardowns, late renewals and sharded engines.
	f.Add([]byte{
		2, 3, 1, 0, // shards=4, slots=4, life=8
		0, 0, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 0,
		5, 1, 0, 0, // teardown the second flow
		6, 2, 0, 0, // advance +12 (past expiry, no tick)
		3, 0, 0, 0, // late renewal
		0, 0, 0, 0,
		7, 0, 0, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		runPolicyDiff(t, data)
	})
}

// TestPolicyEquivalenceSeeds replays deterministic pseudo-random tapes
// through the differential harness so the overlap-region guarantee is
// exercised on every plain `go test` run, not only under the fuzzer.
func TestPolicyEquivalenceSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1337, 99991} {
		seed := seed
		t.Run(string(rune('a'+seed%26)), func(t *testing.T) {
			// Splitmix-style LCG tape: deterministic across runs/platforms.
			state := seed
			next := func() byte {
				state = state*6364136223846793005 + 1442695040888963407
				return byte(state >> 33)
			}
			tape := make([]byte, 4+4*96)
			for i := range tape {
				tape[i] = next()
			}
			runPolicyDiff(t, tape)
		})
	}
}
