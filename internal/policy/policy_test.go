package policy

import (
	"errors"
	"testing"

	"colibri/internal/cserv"
	"colibri/internal/reservation"
	"colibri/internal/topology"
)

func ia(isd topology.ISD, as topology.ASID) topology.IA { return topology.MustIA(isd, as) }

// chainTopo builds a linear path of `hops` on-path ASes, every link capKbps.
// On-path AS i has interface 1 toward the upstream neighbor and interface 2
// toward the downstream one; the path enters at 1 and leaves at 2.
func chainTopo(t testing.TB, hops int, capKbps uint64) ([]*topology.AS, []Hop) {
	t.Helper()
	topo := topology.New()
	// ASes 1..hops are on-path; 0 (source side) and hops+1 (sink side) are
	// the stub neighbors terminating the first and last links.
	for i := 0; i <= hops+1; i++ {
		topo.AddAS(ia(1, topology.ASID(i+1)), true)
	}
	for i := 0; i <= hops; i++ {
		topo.MustConnect(ia(1, topology.ASID(i+1)), 2, ia(1, topology.ASID(i+2)), 1,
			topology.LinkCore, topology.LinkSpec{CapacityKbps: capKbps})
	}
	ases := make([]*topology.AS, hops)
	path := make([]Hop, hops)
	for i := 0; i < hops; i++ {
		a := topo.AS(ia(1, topology.ASID(i+2)))
		ases[i] = a
		path[i] = Hop{IA: a.IA, In: 1, Eg: 2}
	}
	return ases, path
}

// flowID numbers a test flow from the source AS.
func flowID(n uint32) reservation.ID {
	return reservation.ID{SrcAS: topology.MustIA(1, 99), Num: n}
}

// peakAt returns the summed PeakKbps over all tube SegRs of one AS.
func peakAt(aud []ASAudit, ia topology.IA) uint64 {
	var total uint64
	for _, a := range aud {
		if a.IA != ia {
			continue
		}
		for _, s := range a.Segs {
			total += s.PeakKbps
		}
	}
	return total
}

// newPolicy builds the named model over the chain with a manual clock.
func newPolicy(t testing.TB, name string, ases []*topology.AS, life uint32, now *uint32) Policy {
	t.Helper()
	p, err := New(name, Config{
		ASes:        ases,
		LifetimeSec: life,
		Clock:       func() uint32 { return *now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestBoundedTubeSetupRollback: an end-to-end refusal releases the hops
// admitted before the refusing one.
func TestBoundedTubeSetupRollback(t *testing.T) {
	ases, path := chainTopo(t, 2, 16_000) // 12 Mbps reservable per hop
	now := uint32(1_000)
	p := newPolicy(t, NameBoundedTube, ases, 16, &now)
	// Hop 2's tube is provisioned far smaller than hop 1's.
	if err := p.Provision(path[:1], 12_000); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(path[1:], 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Setup(flowID(1), path, 1_000); !errors.Is(err, cserv.ErrInsufficient) {
		t.Fatalf("setup err = %v, want ErrInsufficient", err)
	}
	aud := p.Audit(now, now+64)
	if got := peakAt(aud, path[0].IA); got != 0 {
		t.Errorf("hop 1 still charged %d kbps after rollback", got)
	}
	if ct := p.Counts(); ct.Flows != 0 || ct.Refusals != 1 {
		t.Errorf("counts = %+v, want 0 flows / 1 refusal", ct)
	}
}

// TestFlyoverPartialSetupLeavesHopsCharged: hop-local semantics have no
// rollback — the admitted hop keeps its flyover until the short lifetime
// lapses.
func TestFlyoverPartialSetupLeavesHopsCharged(t *testing.T) {
	ases, path := chainTopo(t, 2, 16_000)
	now := uint32(1_000)
	p := newPolicy(t, NameFlyover, ases, 4, &now)
	if err := p.Provision(path[:1], 12_000); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(path[1:], 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Setup(flowID(1), path, 1_000); !errors.Is(err, cserv.ErrInsufficient) {
		t.Fatalf("setup err = %v, want ErrInsufficient", err)
	}
	if got := peakAt(p.Audit(now, now+4), path[0].IA); got != 1_000 {
		t.Errorf("hop 1 charge = %d, want the stray flyover's 1000 kbps", got)
	}
	// The stray flyover lapses with its lifetime; nothing leaks.
	now += 8
	p.Tick()
	if got := peakAt(p.Audit(now, now+4), path[0].IA); got != 0 {
		t.Errorf("hop 1 charge after expiry = %d, want 0", got)
	}
}

// TestRenewalProtection is the §5.3 story head-to-head on a one-slot hop.
// Bounded-tube renews EARLY with in-place replacement: the old charge is
// released and the slot re-booked [now, now+life) while the flow still holds
// it, so an attacker probing at the old expiry finds the window taken.
// Flyover cannot renew early on a full hop (see the double-charge test
// below), so its renewal waits for the boundary — where a competing setup
// that lands first steals the freed slot.
func TestRenewalProtection(t *testing.T) {
	t.Run(NameBoundedTube, func(t *testing.T) {
		// 1 slot: 1334 kbps link => 1000 kbps reservable (75%).
		ases, path := chainTopo(t, 1, 1_334)
		now := uint32(1_000)
		p := newPolicy(t, NameBoundedTube, ases, 4, &now)
		if err := p.Provision(path, 1_000); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Setup(flowID(1), path, 1_000); err != nil {
			t.Fatal(err)
		}
		now += 2 // renew with 2 s lead: replacement covers [1002, 1006)
		if _, err := p.Renew(flowID(1)); err != nil {
			t.Fatalf("early renew refused: %v", err)
		}
		now += 2 // the old expiry instant: attacker probes [1004, 1008)
		if _, err := p.Setup(flowID(2), path, 1_000); !errors.Is(err, cserv.ErrInsufficient) {
			t.Errorf("attacker err = %v, want ErrInsufficient (incumbent kept its slot)", err)
		}
	})
	t.Run(NameFlyover, func(t *testing.T) {
		ases, path := chainTopo(t, 1, 1_334)
		now := uint32(1_000)
		p := newPolicy(t, NameFlyover, ases, 4, &now)
		if err := p.Provision(path, 1_000); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Setup(flowID(1), path, 1_000); err != nil {
			t.Fatal(err)
		}
		// At the boundary the attacker's setup lands first and wins.
		now += 4
		_, attErr := p.Setup(flowID(2), path, 1_000)
		_, renErr := p.Renew(flowID(1))
		if attErr != nil || !errors.Is(renErr, cserv.ErrInsufficient) {
			t.Errorf("attacker err = %v, renew err = %v; want attacker stole the slot", attErr, renErr)
		}
	})
}

// TestHummingbirdEarlyRenewBooksAhead: renewing before the slice lapses
// anchors the next slice at the current one's END, so a competitor probing
// that window finds it taken — the model's answer to the flyover race.
func TestHummingbirdEarlyRenewBooksAhead(t *testing.T) {
	ases, path := chainTopo(t, 1, 1_334)
	now := uint32(1_000)
	p := newPolicy(t, NameHummingbird, ases, 4, &now)
	if err := p.Provision(path, 1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Setup(flowID(1), path, 1_000); err != nil {
		t.Fatal(err)
	}
	// Renew two seconds early: slice 1 covers [1004, 1008) from now on.
	now += 2
	if _, err := p.Renew(flowID(1)); err != nil {
		t.Fatal(err)
	}
	now += 2
	if _, err := p.Setup(flowID(2), path, 1_000); !errors.Is(err, cserv.ErrInsufficient) {
		t.Errorf("competitor err = %v, want ErrInsufficient (window booked ahead)", err)
	}
	// The slices concatenate without double-charging the handover epoch.
	if got := peakAt(p.Audit(1_000, 1_008), path[0].IA); got != 1_000 {
		t.Errorf("peak over both slices = %d, want 1000 (seamless handover)", got)
	}
}

// TestFlyoverEarlyRenewDoubleCharges: the contrast case — a flyover renewal
// is a fresh setup anchored at now, so renewing early needs the overlap
// window twice and a full hop refuses it.
func TestFlyoverEarlyRenewDoubleCharges(t *testing.T) {
	ases, path := chainTopo(t, 1, 1_334)
	now := uint32(1_000)
	p := newPolicy(t, NameFlyover, ases, 4, &now)
	if err := p.Provision(path, 1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Setup(flowID(1), path, 1_000); err != nil {
		t.Fatal(err)
	}
	now += 2
	if _, err := p.Renew(flowID(1)); !errors.Is(err, cserv.ErrInsufficient) {
		t.Errorf("early renew err = %v, want ErrInsufficient (overlap double-charge)", err)
	}
}

// TestRenewWaveMatchesRenew: bounded-tube's shard-major batched wave gives
// per-flow outcomes identical to sequential Renew calls.
func TestRenewWaveMatchesRenew(t *testing.T) {
	const flows = 64
	build := func(shards int) (Policy, *uint32) {
		// Generous links: per-shard capacity splits must not starve any
		// stripe whatever the SegR-to-shard hash deals out.
		ases, path := chainTopo(t, 3, 2_000_000)
		now := new(uint32)
		*now = 1_000
		p, err := New(NameBoundedTube, Config{
			ASes: ases, Shards: shards, Stripes: 8, LifetimeSec: 16,
			Clock: func() uint32 { return *now },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		if err := p.Provision(path, 120_000); err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < flows; i++ {
			if _, err := p.Setup(flowID(i), path, 1_000); err != nil {
				t.Fatalf("setup %d: %v", i, err)
			}
		}
		return p, now
	}
	seq, seqNow := build(4)
	bat, batNow := build(4)
	ids := make([]reservation.ID, flows)
	for i := range ids {
		ids[i] = flowID(uint32(i))
	}
	grants := make([]uint64, flows)
	errs := make([]error, flows)
	for w := 0; w < 3; w++ {
		*seqNow += 4
		*batNow += 4
		bat.RenewWave(ids, grants, errs)
		for i, id := range ids {
			g, err := seq.Renew(id)
			if g != grants[i] || (err == nil) != (errs[i] == nil) {
				t.Fatalf("wave %d flow %d: batch (%d, %v) != sequential (%d, %v)",
					w, i, grants[i], errs[i], g, err)
			}
		}
	}
	sc, bc := seq.Counts(), bat.Counts()
	if sc.Renews != bc.Renews || sc.Refusals != bc.Refusals || sc.Flows != bc.Flows {
		t.Errorf("counts diverge: sequential %+v vs batched %+v", sc, bc)
	}
}

// TestTeardownDrainsEngines: after teardown every model leaves zero EER
// records behind on every engine.
func TestTeardownDrainsEngines(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			ases, path := chainTopo(t, 2, 16_000)
			now := uint32(1_000)
			p := newPolicy(t, name, ases, 4, &now)
			if err := p.Provision(path, 12_000); err != nil {
				t.Fatal(err)
			}
			for i := uint32(0); i < 5; i++ {
				if _, err := p.Setup(flowID(i), path, 1_000); err != nil {
					t.Fatal(err)
				}
			}
			now += 4
			for i := uint32(0); i < 5; i++ {
				if _, err := p.Renew(flowID(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint32(0); i < 5; i++ {
				p.Teardown(flowID(i))
			}
			now += 16
			p.Tick()
			ct := p.Counts()
			if ct.Engine.EERs != 0 || ct.Flows != 0 {
				t.Errorf("%s: engines not drained: %+v", name, ct)
			}
			for _, a := range p.Audit(now, now+64) {
				for _, s := range a.Segs {
					if s.PeakKbps != 0 || s.LiveEERs != 0 {
						t.Errorf("%s: %s seg %s still charged: %+v", name, a.IA, s.Seg, s)
					}
				}
			}
		})
	}
}
