// hummingbird.go — the Hummingbird reservation model (Wüst et al.) behind
// the Policy interface: reservations decoupled from paths and sliced in
// time. Each hop sells bandwidth × time-slice grants over fine-grained
// epochs (1 s by default, vs the bounded-tube 4 s); a flow's next slice is
// anchored at the END of its current slice, not at "now", so renewing early
// books the bandwidth ahead of competing setups, and back-to-back slices
// concatenate seamlessly on the restree ledger — the handover epoch is never
// double-charged (the conservative floor/ceil widening regression suite in
// internal/restree pins the boundary arithmetic this depends on). Like
// flyover, acquisition is hop-local with no cross-hop atomicity; unlike
// flyover, a refused slice can be retried idempotently (the hops that
// already sold it answer with a dedup, not a second charge).
package policy

import (
	"sort"
	"sync"

	"colibri/internal/reservation"
	"colibri/internal/restree"
)

// hbSlice is one time slice possibly still charged at the hops.
type hbSlice struct {
	idx, expT uint32
}

// hbFlow is the source's record of one Hummingbird-protected flow.
type hbFlow struct {
	path   []Hop
	stripe int
	bw     uint64
	next   uint32 // index of the next slice to buy
	endT   uint32 // end of the last fully-acquired slice
	slices []hbSlice
}

// Hummingbird implements the path-decoupled time-sliced model. Safe for
// concurrent use.
type Hummingbird struct {
	*substrate
	fmu   sync.Mutex
	flows map[reservation.ID]*hbFlow
}

// NewHummingbird builds the time-sliced model: 1 s epochs (fine slicing is
// the model's point), a 512-epoch ledger ring so the fine epochs still
// cover SegR-scale windows, and a 4 s default slice.
func NewHummingbird(cfg Config) (*Hummingbird, error) {
	s, err := newSubstrate(cfg.withDefaults(1, 512, 4))
	if err != nil {
		return nil, err
	}
	return &Hummingbird{substrate: s, flows: make(map[reservation.ID]*hbFlow)}, nil
}

// Name returns "hummingbird".
func (p *Hummingbird) Name() string { return NameHummingbird }

// Provision admits the per-hop tube SegRs.
func (p *Hummingbird) Provision(path []Hop, demandKbps uint64) error {
	return p.provision(path, demandKbps)
}

// acquireSlice buys one slice [startT, expT) hop-locally; restree.ErrExists
// is an idempotent retry of a slice a hop already sold. It returns how many
// hops sold the slice and the first refusing hop's error.
func (p *Hummingbird) acquireSlice(flow reservation.ID, fl *hbFlow, idx, startT, expT uint32) (int, error) {
	id := flow.Derived(idx)
	sold := 0
	var firstErr error
	for _, h := range fl.path {
		err := p.planes[h.IA].SetupEERAt(id, tubeSegID(h, fl.stripe), fl.bw, startT, expT)
		p.addHopOps(1)
		if err != nil && err != restree.ErrExists {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sold++
	}
	return sold, firstErr
}

// Setup buys the flow's first slice [now, now+slice) at every hop. A
// refusal at any hop refuses the flow; admitted hops keep the slice until
// it lapses (hop-local semantics, as in flyover).
func (p *Hummingbird) Setup(flow reservation.ID, path []Hop, bwKbps uint64) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if _, dup := p.flows[flow]; dup {
		return 0, ErrFlowExists
	}
	p.mu.Lock()
	err := p.checkPathLocked(path)
	stripe := stripeOf(flow, p.stripes)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	now := p.clock()
	expT := now + p.life
	fl := &hbFlow{path: append([]Hop(nil), path...), stripe: stripe, bw: bwKbps}
	if _, err := p.acquireSlice(flow, fl, 0, now, expT); err != nil {
		p.noteRefusal()
		return 0, err
	}
	fl.next, fl.endT = 1, expT
	fl.slices = []hbSlice{{idx: 0, expT: expT}}
	p.flows[flow] = fl
	p.noteSetup()
	return bwKbps, nil
}

// Renew buys the flow's next slice, anchored at the end of the current one
// — NOT at now. Renewing before the current slice lapses therefore reserves
// the future window immediately, which is what shields an on-time
// Hummingbird renewal from competing setups (they probe the same window and
// find it taken). A late renewal re-anchors at now: the missed window is
// gone and is not charged. A refused slice leaves the flow on its current
// slice and can be retried — hops that already sold the slice dedup.
func (p *Hummingbird) Renew(flow reservation.ID) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return 0, ErrUnknownFlow
	}
	now := p.clock()
	fl.pruneSlices(now)
	startT := fl.endT
	if startT < now {
		startT = now
	}
	expT := startT + p.life
	sold, err := p.acquireSlice(flow, fl, fl.next, startT, expT)
	if sold > 0 {
		fl.slices = append(fl.slices, hbSlice{idx: fl.next, expT: expT})
	}
	if err != nil {
		p.noteRefusal()
		return 0, err
	}
	fl.next++
	fl.endT = expT
	p.noteRenew()
	return fl.bw, nil
}

// RenewWave renews per flow: each slice is an independent per-hop grant
// (the model has no in-place replacement to batch shard-major).
func (p *Hummingbird) RenewWave(flows []reservation.ID, grants []uint64, errs []error) {
	renewWaveSeq(p, flows, grants, errs)
}

// Teardown releases every possibly-live slice at every hop.
func (p *Hummingbird) Teardown(flow reservation.ID) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return
	}
	for _, s := range fl.slices {
		id := flow.Derived(s.idx)
		for _, h := range fl.path {
			p.planes[h.IA].TeardownEER(id, tubeSegID(h, fl.stripe))
		}
		p.addHopOps(uint64(len(fl.path)))
	}
	delete(p.flows, flow)
}

// Tick advances lazy expiry on every engine and drops flows whose last
// slice has lapsed.
func (p *Hummingbird) Tick() int {
	n := p.tick()
	now := p.clock()
	p.fmu.Lock()
	ids := make([]reservation.ID, 0, len(p.flows))
	for id := range p.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		fl := p.flows[id]
		fl.pruneSlices(now)
		if len(fl.slices) == 0 {
			delete(p.flows, id)
		}
	}
	p.fmu.Unlock()
	return n
}

// pruneSlices drops slices whose window has lapsed.
func (fl *hbFlow) pruneSlices(now uint32) {
	kept := fl.slices[:0]
	for _, s := range fl.slices {
		if s.expT > now {
			kept = append(kept, s)
		}
	}
	fl.slices = kept
}

// Counts snapshots the aggregate outcomes.
func (p *Hummingbird) Counts() Counts {
	p.fmu.Lock()
	n := len(p.flows)
	p.fmu.Unlock()
	return p.counts(n)
}

// Audit snapshots the conservation rows of every AS.
func (p *Hummingbird) Audit(fromT, toT uint32) []ASAudit { return p.audit(fromT, toT) }

// Close releases the engines' worker pools.
func (p *Hummingbird) Close() { p.close() }

// forget drops the source's record without touching the engines (the crash
// seam; see BoundedTube.forget).
func (p *Hummingbird) forget(flow reservation.ID) {
	p.fmu.Lock()
	delete(p.flows, flow)
	p.fmu.Unlock()
}
