// boundedtube.go — the paper's reservation model behind the Policy
// interface: end-to-end atomic setup across every on-path hop with rollback
// on refusal (§3.3's temporary-reservation cleanup), and in-place version
// replacement at renewal (§4.2) — the old charge is released before the free
// bandwidth is probed, so an on-time renewal never loses its slot to a
// competing setup, and a refused renewal falls back to the still-valid
// previous version.
package policy

import (
	"sync"

	"colibri/internal/cserv"
	"colibri/internal/reservation"
	"colibri/internal/restree"
	"colibri/internal/topology"
)

// btFlow is the initiator's record of one bounded-tube EER.
type btFlow struct {
	path   []Hop
	stripe int
	bw     uint64
	expT   uint32
}

// BoundedTube implements the paper's bounded-tube-fairness reservation
// model. Safe for concurrent use.
type BoundedTube struct {
	*substrate
	fmu   sync.Mutex
	flows map[reservation.ID]*btFlow
}

// NewBoundedTube builds the paper's model: 4 s epochs, 16 s EER lifetimes.
func NewBoundedTube(cfg Config) (*BoundedTube, error) {
	s, err := newSubstrate(cfg.withDefaults(4, 128, reservation.EERLifetimeSeconds))
	if err != nil {
		return nil, err
	}
	return &BoundedTube{substrate: s, flows: make(map[reservation.ID]*btFlow)}, nil
}

// Name returns "bounded-tube".
func (p *BoundedTube) Name() string { return NameBoundedTube }

// Provision admits the per-hop tube SegRs.
func (p *BoundedTube) Provision(path []Hop, demandKbps uint64) error {
	return p.provision(path, demandKbps)
}

// Setup admits the flow at every hop atomically: a refusal anywhere tears
// the already-admitted hops back down and reports the refusing hop's error.
// An engine-level duplicate (restree.ErrExists) at a hop is an idempotent
// retry hitting committed state and counts as admitted there.
func (p *BoundedTube) Setup(flow reservation.ID, path []Hop, bwKbps uint64) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if _, dup := p.flows[flow]; dup {
		return 0, ErrFlowExists
	}
	p.mu.Lock()
	err := p.checkPathLocked(path)
	stripe := stripeOf(flow, p.stripes)
	p.mu.Unlock()
	if err != nil {
		return 0, err
	}
	now := p.clock()
	expT := now + p.life
	for i, h := range path {
		err := p.planes[h.IA].SetupEER(flow, tubeSegID(h, stripe), bwKbps, expT)
		p.addHopOps(1)
		if err != nil && err != restree.ErrExists {
			// Roll the chain back: release the hops admitted so far.
			for j := i - 1; j >= 0; j-- {
				p.planes[path[j].IA].TeardownEER(flow, tubeSegID(path[j], stripe))
			}
			p.addHopOps(uint64(i))
			p.noteRefusal()
			return 0, err
		}
	}
	p.flows[flow] = &btFlow{path: append([]Hop(nil), path...), stripe: stripe, bw: bwKbps, expT: expT}
	p.noteSetup()
	return bwKbps, nil
}

// Renew replaces the flow's version at every hop for another lifetime. The
// grant is the path-wide minimum of the per-hop grants (each hop grants
// min(requested, free) after releasing the old version's charge); a refusal
// at any hop reports the error while the refusing hop falls back to the
// previous version until it expires.
func (p *BoundedTube) Renew(flow reservation.ID) (uint64, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return 0, ErrUnknownFlow
	}
	now := p.clock()
	expT := now + p.life
	granted := fl.bw
	for _, h := range fl.path {
		g, err := p.planes[h.IA].RenewEER(flow, tubeSegID(h, fl.stripe), fl.bw, expT)
		p.addHopOps(1)
		if err != nil {
			p.noteRefusal()
			return 0, err
		}
		if g < granted {
			granted = g
		}
	}
	fl.expT = expT
	p.noteRenew()
	return granted, nil
}

// RenewWave renews the flows shard-major: items are bucketed per AS and
// handed to cserv.RenewBatch, which takes each shard's lock once per wave
// instead of once per renewal. The per-flow outcomes are identical to
// calling Renew in slice order.
func (p *BoundedTube) RenewWave(flows []reservation.ID, grants []uint64, errs []error) {
	if len(flows) != len(grants) || len(flows) != len(errs) {
		panic("policy: RenewWave slice length mismatch")
	}
	p.fmu.Lock()
	defer p.fmu.Unlock()
	now := p.clock()
	expT := now + p.life
	items := make(map[topology.IA][]cserv.EERRenewal, len(p.order))
	idx := make(map[topology.IA][]int, len(p.order))
	var ops uint64
	for i, f := range flows {
		grants[i], errs[i] = 0, nil
		fl, ok := p.flows[f]
		if !ok {
			errs[i] = ErrUnknownFlow
			continue
		}
		grants[i] = fl.bw
		for _, h := range fl.path {
			items[h.IA] = append(items[h.IA], cserv.EERRenewal{
				EER: f, Seg: tubeSegID(h, fl.stripe), BwKbps: fl.bw, ExpT: expT,
			})
			idx[h.IA] = append(idx[h.IA], i)
			ops++
		}
	}
	p.addHopOps(ops)
	for _, ia := range p.order {
		its := items[ia]
		if len(its) == 0 {
			continue
		}
		res := make([]cserv.RenewResult, len(its))
		p.planes[ia].RenewBatch(its, res)
		for j := range res {
			i := idx[ia][j]
			if res[j].Err != nil {
				if errs[i] == nil {
					errs[i] = res[j].Err
				}
				continue
			}
			if res[j].Granted < grants[i] {
				grants[i] = res[j].Granted
			}
		}
	}
	for i, f := range flows {
		if errs[i] != nil {
			grants[i] = 0
			if errs[i] != ErrUnknownFlow {
				p.noteRefusal()
			}
			continue
		}
		p.flows[f].expT = expT
		p.noteRenew()
	}
}

// Teardown releases the flow at every hop.
func (p *BoundedTube) Teardown(flow reservation.ID) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	fl, ok := p.flows[flow]
	if !ok {
		return
	}
	for _, h := range fl.path {
		p.planes[h.IA].TeardownEER(flow, tubeSegID(h, fl.stripe))
	}
	p.addHopOps(uint64(len(fl.path)))
	delete(p.flows, flow)
}

// Tick advances lazy expiry on every engine and drops lapsed flow records.
func (p *BoundedTube) Tick() int {
	n := p.tick()
	now := p.clock()
	p.fmu.Lock()
	for id, fl := range p.flows {
		if fl.expT <= now {
			delete(p.flows, id)
		}
	}
	p.fmu.Unlock()
	return n
}

// Counts snapshots the aggregate outcomes.
func (p *BoundedTube) Counts() Counts {
	p.fmu.Lock()
	n := len(p.flows)
	p.fmu.Unlock()
	return p.counts(n)
}

// Audit snapshots the conservation rows of every AS.
func (p *BoundedTube) Audit(fromT, toT uint32) []ASAudit { return p.audit(fromT, toT) }

// Close releases the engines' worker pools.
func (p *BoundedTube) Close() { p.close() }

// forget drops the initiator's record without touching the engines — the
// crash seam of the conservation property test: the source loses its state,
// the per-hop charges survive until expiry, and retried setups must dedup.
func (p *BoundedTube) forget(flow reservation.ID) {
	p.fmu.Lock()
	delete(p.flows, flow)
	p.fmu.Unlock()
}
